//! Quickstart: complex band structure of bulk aluminium at one energy.
//!
//! Builds the real-space Hamiltonian of an Al(100) cell, solves the CBS
//! quadratic eigenvalue problem with the Sakurai-Sugiura method at the
//! estimated Fermi energy, and prints the resulting complex wave numbers.
//!
//! Run with: `cargo run --release --example quickstart`

use cbs::core::{compute_cbs_with, SsConfig};
use cbs::dft::{
    bulk_al_100, fermi_energy, grid_for_structure, BlockHamiltonian, HamiltonianParams,
};
use cbs::parallel::RayonExecutor;

fn main() {
    // 1. Structure and real-space grid (coarse spacing to keep this instant).
    let structure = bulk_al_100(1);
    let grid = grid_for_structure(&structure, 0.95);
    println!(
        "Al(100): {} atoms, grid {}x{}x{} = {} points",
        structure.natoms(),
        grid.nx,
        grid.ny,
        grid.nz,
        grid.npoints()
    );

    // 2. Kohn-Sham blocks H00 / H01 (kinetic + local + non-local projectors).
    let h = BlockHamiltonian::build(grid, &structure, HamiltonianParams::default());
    let ef = fermi_energy(&h, structure.valence_electrons(), 3);
    println!("estimated Fermi energy: {ef:.4} Ha");

    // 3. Solve the QEP at E = EF with the Sakurai-Sugiura method, fanning
    //    the N_int x N_rh shifted solves out over the rayon executor (the
    //    serial executor gives bit-identical results).
    let config = SsConfig { n_rh: 8, ..SsConfig::small() };
    let run = compute_cbs_with(&h.h00(), &h.h01(), h.period(), &[ef], &config, &RayonExecutor);

    println!("\n  Re k [1/bohr]   Im k [1/bohr]   |lambda|   type");
    for p in &run.cbs.points {
        println!(
            "  {:>12.6}   {:>12.6}   {:>8.5}   {}",
            p.k_re,
            p.k_im,
            p.lambda.abs(),
            if p.propagating { "propagating" } else { "evanescent" }
        );
    }
    println!(
        "\n{} propagating and {} evanescent states at E = EF; {} BiCG iterations total.",
        run.cbs.propagating().count(),
        run.cbs.evanescent().count(),
        run.stats.total_bicg_iterations
    );
}
