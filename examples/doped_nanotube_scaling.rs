//! BN-doped nanotube supercells and the hierarchical parallelism: builds a
//! doped supercell, measures the per-iteration BiCG cost of its QEP operator,
//! and uses the calibrated Oakforest-PACS model to show how the three
//! parallel layers would share 2048 nodes.
//!
//! Run with: `cargo run --release --example doped_nanotube_scaling`

use cbs::core::{QepProblem, SsConfig};
use cbs::dft::{
    bn_dope, carbon_nanotube, grid_for_structure, supercell_z, BlockHamiltonian, HamiltonianParams,
};
use cbs::parallel::{
    measure_bicg_iteration_cost, MachineModel, ParallelLayout, PerformanceModel, WorkloadModel,
};

fn main() {
    // A small doped supercell that fits comfortably on one core; the model
    // extrapolates to the paper's 1024-atom system.
    let base = carbon_nanotube(8, 0, 4.0);
    let doped = bn_dope(&supercell_z(&base, 2), 4, 7);
    let grid = grid_for_structure(&doped, 1.2);
    println!("{}: {} atoms, {} grid points", doped.name, doped.natoms(), grid.npoints());
    let h = BlockHamiltonian::build(grid, &doped, HamiltonianParams::default());

    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, 0.2, h.period());
    let config = SsConfig::paper();
    let z = config.contour().outer_points()[0].z;
    let op = problem.operator(z);
    let seconds = measure_bicg_iteration_cost(&op, 30, 3);
    let per_point = seconds / (30.0 * h.dim() as f64);
    println!("measured BiCG cost: {per_point:.3e} s per grid point per iteration");

    let model = PerformanceModel {
        machine: MachineModel::oakforest_pacs(),
        workload: WorkloadModel {
            dimension: h.dim() * 16, // extrapolate to the 1024-atom cell
            nnz_per_row: h.nnz() as f64 / h.dim() as f64,
            plane_size: h.grid.nx * h.grid.ny,
            nf: h.fd.nf,
            n_int: 32,
            n_rh: 16,
            bicg_iterations: 2000.0,
            seconds_per_point_iteration: per_point,
            convergence_spread: 0.2,
        },
    };

    println!("\n   nodes   layout (rhs x quad x domains)   predicted time [s]   speed-up");
    let mut first = None;
    for &nodes in &[4usize, 16, 64, 256, 1024, 2048] {
        let layout = ParallelLayout::assign(nodes * 4, 16, 32); // 4 processes per node
        let t = model.predict(&layout).total();
        let f = *first.get_or_insert(t);
        println!(
            "   {:>5}   {:>3} x {:>3} x {:>3}              {:>12.1}   {:>7.1}",
            nodes,
            layout.rhs_groups,
            layout.quadrature_groups,
            layout.domains,
            t,
            f / t
        );
    }
    println!("\nUpper layers are filled first (no communication); only beyond");
    println!("N_rh x N_int processes does the domain decomposition start to carry load.");
}
