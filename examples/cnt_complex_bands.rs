//! Complex band structure of a semiconducting (8,0) carbon nanotube over an
//! energy window around the Fermi level — the kind of data used to predict
//! tunnelling decay lengths in nanotube devices.
//!
//! Run with: `cargo run --release --example cnt_complex_bands`

use cbs::core::{compute_cbs_with, SsConfig};
use cbs::dft::{
    carbon_nanotube, fermi_energy, grid_for_structure, BlockHamiltonian, HamiltonianParams,
};
use cbs::grid::FdOrder;
use cbs::parallel::RayonExecutor;

fn main() {
    let tube = carbon_nanotube(8, 0, 4.0);
    // Coarse grid: this example is about the workflow, not convergence.
    let grid = grid_for_structure(&tube, 1.15);
    println!("{}: {} atoms, {} grid points", tube.name, tube.natoms(), grid.npoints());

    let h = BlockHamiltonian::build(
        grid,
        &tube,
        HamiltonianParams { fd: FdOrder::new(4), include_nonlocal: true },
    );
    let ef =
        if grid.npoints() <= 800 { fermi_energy(&h, tube.valence_electrons(), 3) } else { 0.2 };

    let energies: Vec<f64> = (0..7).map(|i| ef - 0.06 + 0.02 * i as f64).collect();
    let config = SsConfig { n_int: 16, n_mm: 6, n_rh: 6, ..SsConfig::paper() };
    let run = compute_cbs_with(&h.h00(), &h.h01(), h.period(), &energies, &config, &RayonExecutor);

    println!("\n   E - EF [Ha]   channels   smallest |Im k| of evanescent states [1/bohr]");
    for (i, &e) in run.cbs.energies.iter().enumerate() {
        let channels = run.cbs.at_energy(i).filter(|p| p.propagating).count();
        let min_decay = run
            .cbs
            .at_energy(i)
            .filter(|p| !p.propagating)
            .map(|p| p.k_im.abs())
            .fold(f64::INFINITY, f64::min);
        println!("   {:>10.4}   {:>8}   {:>12.6}", e - ef, channels, min_decay);
    }
    println!("\nThe smallest |Im k| is the slowest-decaying evanescent mode: it controls");
    println!("the tunnelling current through a barrier made of this material.");
}
