//! Energy sweep: the `cbs-sweep` orchestrator on a small Al(100) cell.
//!
//! Runs the same scan twice — cold (flat task pool, every energy solved
//! from scratch; bit-identical to the per-energy `compute_cbs` loop) and
//! warm-started with adaptive band-edge refinement — and prints the BiCG
//! iteration savings, the refined energies and the channel counts.  Also
//! demonstrates checkpointing: the warm sweep writes a checkpoint after
//! every completed energy and the example resumes it to show the
//! bit-identical restart path.
//!
//! Run with: `cargo run --release --example energy_sweep`

use cbs::core::SsConfig;
use cbs::dft::{
    band_structure, bulk_al_100, fermi_energy, grid_for_structure, BlockHamiltonian,
    HamiltonianParams,
};
use cbs::parallel::RayonExecutor;
use cbs::sweep::{sweep_cbs, BandEdgeRefiner, EnergyOrigin, EnergySweep, RunOptions, SweepConfig};

fn main() {
    // 1. Structure, grid, Kohn-Sham blocks (coarse spacing: instant build).
    let structure = bulk_al_100(1);
    let grid = grid_for_structure(&structure, 0.95);
    let h = BlockHamiltonian::build(grid, &structure, HamiltonianParams::default());
    let ef = fermi_energy(&h, structure.valence_electrons(), 3);
    println!("Al(100): {} atoms, {} grid points, EF ≈ {ef:.4} Ha", structure.natoms(), h.dim());

    // 2. A scan window around the Fermi energy.
    let n_energies = 6;
    let energies: Vec<f64> =
        (0..n_energies).map(|i| ef - 0.06 + 0.12 * i as f64 / (n_energies - 1) as f64).collect();
    let ss =
        SsConfig { n_int: 8, n_mm: 4, n_rh: 4, bicg_max_iterations: 2_000, ..SsConfig::small() };

    // 3. Cold reference: one flat round, no cross-energy reuse.
    let (h00, h01) = (h.h00(), h.h01());
    let cold = sweep_cbs(&h00, &h01, h.period(), &energies, &SweepConfig::cold(ss), &RayonExecutor);

    // 4. Warm-started sweep with band-edge-driven refinement.  SweepConfig
    //    knobs: `initial_round` sizes the cold anchor round of the dyadic
    //    wavefront, `max_refinements` budgets the extra energies,
    //    `min_refine_spacing` stops the bisection, `seed_bank_capacity`
    //    bounds the donor memory.
    let config = SweepConfig {
        initial_round: 2,
        min_refine_spacing: 1e-3,
        ..SweepConfig::new(ss).with_refinement(4)
    };
    let bands = band_structure(&h, 13, 8);
    let refiner = BandEdgeRefiner::new(&bands);
    let sweep = EnergySweep::new(&h00, &h01, h.period(), config);
    let cp_path = std::env::temp_dir().join("cbs_energy_sweep_example.cp");
    let warm = sweep
        .run_with(
            &energies,
            &RayonExecutor,
            RunOptions {
                checkpoint_path: Some(&cp_path),
                predicate: Some(&refiner),
                ..RunOptions::default()
            },
        )
        .expect("checkpoint I/O")
        .expect_complete("no energy budget set");

    println!(
        "\ncold sweep: {} BiCG iterations over {} energies ({:.0} per energy)",
        cold.stats.total_bicg_iterations,
        cold.cbs.energies.len(),
        cold.stats.total_bicg_iterations as f64 / cold.cbs.energies.len() as f64,
    );
    println!(
        "warm sweep: {} BiCG iterations ({} warm / {} cold) over {} energies ({} refined, {:.0} per energy)",
        warm.stats.total_bicg_iterations,
        warm.stats.warm_bicg_iterations,
        warm.stats.cold_bicg_iterations,
        warm.cbs.energies.len(),
        warm.stats.refined_energies,
        warm.stats.total_bicg_iterations as f64 / warm.cbs.energies.len() as f64,
    );

    println!("\n   E [Ha]      channels   states   origin");
    for (i, (e, channels)) in warm.cbs.channel_counts().into_iter().enumerate() {
        let origin = match warm.records[i].origin {
            EnergyOrigin::Initial(_) => "initial",
            EnergyOrigin::Refined { .. } => "refined",
        };
        println!("   {e:>8.4}   {channels:>8}   {:>6}   {origin}", warm.cbs.at_energy(i).count());
    }

    // 5. Resume the finished checkpoint: everything is already done, so
    //    this is a no-op returning the same band structure bit for bit.
    let cp = cbs::sweep::SweepCheckpoint::load(&cp_path).expect("load checkpoint");
    let resumed = sweep
        .run_with(
            &energies,
            &RayonExecutor,
            RunOptions { resume: Some(cp), ..RunOptions::default() },
        )
        .expect("resume")
        .expect_complete("nothing left to solve");
    assert_eq!(resumed.cbs.points.len(), warm.cbs.points.len());
    for (a, b) in resumed.cbs.points.iter().zip(&warm.cbs.points) {
        assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
        assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
    }
    println!("\ncheckpoint resume reproduced all {} points bit-identically", warm.cbs.points.len());
    std::fs::remove_file(&cp_path).ok();
}
