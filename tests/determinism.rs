//! Deterministic-parallelism regression tests: the Sakurai-Sugiura solver
//! must produce **bit-identical** results whichever `TaskExecutor` runs the
//! shifted solves.  This is the contract that makes the threaded fan-out
//! freely substitutable for the serial path (and, later, distributed
//! backends for the threaded one) without revalidating any physics.

use rand::SeedableRng;

use cbs::core::{compute_cbs, compute_cbs_with, solve_qep_with, QepProblem, SsConfig};
use cbs::linalg::{c64, CMatrix};
use cbs::parallel::{RayonExecutor, SerialExecutor};
use cbs::sparse::DenseOp;

fn random_blocks(n: usize, seed: u64) -> (CMatrix, CMatrix) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let a = CMatrix::random(n, n, &mut rng);
    let h00 = (&a + &a.adjoint()).scale(c64(0.5, 0.0));
    let h01 = CMatrix::random(n, n, &mut rng).scale(c64(0.35, 0.0));
    (h00, h01)
}

/// `SsConfig::small()` (majority stop enabled, as in the paper preset):
/// serial and rayon executors must agree on every projected moment bit and
/// every recovered eigenvalue.
#[test]
fn rayon_executor_reproduces_serial_solve_exactly() {
    let n = 14;
    let (h00, h01) = random_blocks(n, 91);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let qep = QepProblem::new(&op00, &op01, 0.1, 1.0);
    let config = SsConfig::small();

    let serial = solve_qep_with(&qep, &config, &SerialExecutor);
    let rayon = solve_qep_with(&qep, &config, &RayonExecutor);

    // Bit-identical projected moments µ̂_k.
    assert_eq!(serial.projected_moments.len(), 2 * config.n_mm);
    assert_eq!(serial.projected_moments.len(), rayon.projected_moments.len());
    for (k, (ms, mr)) in serial.projected_moments.iter().zip(&rayon.projected_moments).enumerate() {
        for r in 0..config.n_rh {
            for c in 0..config.n_rh {
                let (a, b) = (ms[(r, c)], mr[(r, c)]);
                assert!(
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                    "µ̂_{k}[{r},{c}] differs between executors: {a:?} vs {b:?}"
                );
            }
        }
    }

    // Identical recovered eigenvalues (and everything derived from them).
    assert!(!serial.eigenpairs.is_empty(), "test problem found no eigenpairs");
    assert_eq!(serial.eigenpairs.len(), rayon.eigenpairs.len());
    for (ps, pr) in serial.eigenpairs.iter().zip(&rayon.eigenpairs) {
        assert!(
            ps.lambda.re.to_bits() == pr.lambda.re.to_bits()
                && ps.lambda.im.to_bits() == pr.lambda.im.to_bits(),
            "eigenvalue differs between executors: {:?} vs {:?}",
            ps.lambda,
            pr.lambda
        );
        assert_eq!(ps.residual.to_bits(), pr.residual.to_bits());
    }
    assert_eq!(serial.numerical_rank, rayon.numerical_rank);
    assert_eq!(serial.total_bicg_iterations, rayon.total_bicg_iterations);
    assert_eq!(serial.total_matvecs, rayon.total_matvecs);

    // Histories survive the fan-out in job order.
    assert_eq!(serial.solve_histories.len(), config.n_int * config.n_rh);
    for (hs, hr) in serial.solve_histories.iter().zip(&rayon.solve_histories) {
        assert_eq!(hs.residuals, hr.residuals);
        assert_eq!(hs.stop_reason, hr.stop_reason);
    }
}

/// The energy-sweep driver inherits the guarantee, and the executor-less
/// `compute_cbs` is exactly the serial path.
#[test]
fn cbs_sweep_is_executor_independent() {
    let n = 10;
    let (h00, h01) = random_blocks(n, 92);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let energies = [-0.2, 0.0, 0.2];
    let config = SsConfig { n_rh: 6, n_mm: 4, ..SsConfig::small() };

    let default_run = compute_cbs(&op00, &op01, 1.6, &energies, &config);
    let serial = compute_cbs_with(&op00, &op01, 1.6, &energies, &config, &SerialExecutor);
    let rayon = compute_cbs_with(&op00, &op01, 1.6, &energies, &config, &RayonExecutor);

    assert!(!serial.cbs.points.is_empty(), "sweep found no CBS points");
    for run in [&default_run, &rayon] {
        assert_eq!(serial.cbs.points.len(), run.cbs.points.len());
        for (a, b) in serial.cbs.points.iter().zip(&run.cbs.points) {
            assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
            assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
            assert_eq!(a.k_re.to_bits(), b.k_re.to_bits());
            assert_eq!(a.k_im.to_bits(), b.k_im.to_bits());
            assert_eq!(a.propagating, b.propagating);
        }
        assert_eq!(serial.stats.total_bicg_iterations, run.stats.total_bicg_iterations);
    }
}
