//! Trace-neutrality and attribution tests of the `cbs-trace` span layer:
//!
//! * recording a session changes **nothing** — the fig6-style Al(100) solve
//!   is bitwise identical with tracing off and on, and the sweep's
//!   checkpoint kill/resume cycle stays bit-identical while a session
//!   records;
//! * the serial and rayon executors agree bit-for-bit under a live
//!   `TraceLevel::Iter` session (per-iteration events do not perturb the
//!   solves they observe);
//! * the session's per-stage aggregation reproduces the attribution columns
//!   of `CbsStatistics` (CPU-ns counters and span-merged wall-ns);
//! * the Chrome trace-event export is well-formed.

use std::sync::Mutex;

use rand::SeedableRng;

use cbs::core::{compute_cbs_with, SsConfig};
use cbs::dft::{bulk_al_100, grid_for_structure, BlockHamiltonian, HamiltonianParams};
use cbs::linalg::{c64, CMatrix};
use cbs::parallel::{RayonExecutor, SerialExecutor};
use cbs::sparse::DenseOp;
use cbs::sweep::{EnergySweep, RunOptions, RunOutcome, SweepCheckpoint, SweepConfig, SweepResult};
use cbs::trace::{Stage, TraceLevel, TraceSession};

/// `cbs_trace` sessions are process-global and exclusive; every test here
/// needs sole ownership of the recorder — including the untraced control
/// runs, which must not record into a neighbour's live session.
static SESSION_GATE: Mutex<()> = Mutex::new(());

fn al100() -> BlockHamiltonian {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, 1.1);
    BlockHamiltonian::build(grid, &s, HamiltonianParams::default())
}

fn al_ss() -> SsConfig {
    SsConfig { n_int: 8, n_mm: 4, n_rh: 4, bicg_max_iterations: 400, ..SsConfig::small() }
}

fn random_blocks(n: usize, seed: u64) -> (CMatrix, CMatrix) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let a = CMatrix::random(n, n, &mut rng);
    let h00 = (&a + &a.adjoint()).scale(c64(0.5, 0.0));
    let h01 = CMatrix::random(n, n, &mut rng).scale(c64(0.35, 0.0));
    (h00, h01)
}

fn assert_same_points(
    a: &cbs::core::ComplexBandStructure,
    b: &cbs::core::ComplexBandStructure,
    what: &str,
) {
    assert_eq!(a.points.len(), b.points.len(), "{what}: point count differs");
    for (p, q) in a.points.iter().zip(&b.points) {
        assert_eq!(p.energy_index, q.energy_index, "{what}");
        assert_eq!(p.lambda.re.to_bits(), q.lambda.re.to_bits(), "{what}");
        assert_eq!(p.lambda.im.to_bits(), q.lambda.im.to_bits(), "{what}");
        assert_eq!(p.k_re.to_bits(), q.k_re.to_bits(), "{what}");
        assert_eq!(p.k_im.to_bits(), q.k_im.to_bits(), "{what}");
        assert_eq!(p.propagating, q.propagating, "{what}");
        assert_eq!(p.residual.to_bits(), q.residual.to_bits(), "{what}");
    }
}

fn assert_same_sweep(a: &SweepResult, b: &SweepResult) {
    assert_same_points(&a.cbs, &b.cbs, "sweep");
    assert_eq!(a.stats.total_bicg_iterations, b.stats.total_bicg_iterations);
    assert_eq!(a.stats.total_matvecs, b.stats.total_matvecs);
    assert_eq!(a.stats.warm_bicg_iterations, b.stats.warm_bicg_iterations);
    assert_eq!(a.stats.cold_bicg_iterations, b.stats.cold_bicg_iterations);
}

/// Tracing the fig6-style Al(100) solve changes nothing: results are
/// bitwise identical with the recorder off and on, the traced run fills the
/// wall-ns attribution (the untraced run leaves it zero), and the session
/// actually captured the solve's spans.
#[test]
fn al100_solve_is_bitwise_identical_with_tracing_on_and_off() {
    let _gate = SESSION_GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let h = al100();
    let (h00, h01) = (h.h00(), h.h01());
    let energies = [0.05, 0.11];
    let config = al_ss();

    let off = compute_cbs_with(&h00, &h01, h.period(), &energies, &config, &SerialExecutor);
    assert!(!off.cbs.points.is_empty(), "Al(100) test solve found no CBS points");
    assert_eq!(off.stats.kernel_wall_ns, 0, "untraced run must not fill wall-ns");
    assert_eq!(off.stats.precond_wall_ns, 0);
    assert_eq!(off.stats.extraction_wall_ns, 0);

    let session = TraceSession::begin(TraceLevel::Stage).expect("another session is live");
    let on = compute_cbs_with(&h00, &h01, h.period(), &energies, &config, &SerialExecutor);
    let report = session.finish();

    assert_same_points(&off.cbs, &on.cbs, "traced vs untraced");
    assert_eq!(off.stats.total_bicg_iterations, on.stats.total_bicg_iterations);
    assert_eq!(off.stats.total_matvecs, on.stats.total_matvecs);
    // The always-on CPU counters agree run-to-run on identical work.
    assert_eq!(off.stats.kernel_ns > 0, on.stats.kernel_ns > 0);

    assert!(on.stats.kernel_wall_ns > 0, "traced run must fill kernel wall-ns");
    assert!(on.stats.extraction_wall_ns > 0, "traced run must fill extraction wall-ns");
    assert!(!report.spans.is_empty(), "session recorded no spans");
    assert!(report.spans.iter().any(|s| s.stage == Stage::Solve));
    assert!(report.spans.iter().any(|s| s.stage == Stage::Kernel));
    assert!(report.iters.is_empty(), "Stage-level session must not record iteration events");
}

/// Serial and rayon executors agree bit-for-bit while an iteration-level
/// session records — the per-iteration residual events observe the solves
/// without perturbing them, on either executor, and both executors' threads
/// deliver events into the same session.
#[test]
fn serial_and_rayon_agree_under_iter_level_session() {
    let _gate = SESSION_GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let h = al100();
    let (h00, h01) = (h.h00(), h.h01());
    let energies = [0.05, 0.11];
    // The config's `trace` knob raises the level; neither it nor the
    // session may change results.
    let config = SweepConfig::cold(SsConfig { trace: TraceLevel::Iter, ..al_ss() });
    let sweep = EnergySweep::new(&h00, &h01, h.period(), config);

    let session = TraceSession::begin(TraceLevel::Iter).expect("another session is live");
    let serial = sweep.run(&energies, &SerialExecutor);
    let rayon = sweep.run(&energies, &RayonExecutor);
    let report = session.finish();

    assert_same_sweep(&serial, &rayon);
    assert!(!report.iters.is_empty(), "Iter-level session recorded no iteration events");
    assert!(report.iters.iter().all(|e| e.residual.is_finite()));
    let labels: Vec<&str> = report.threads.iter().map(|&(_, l)| l).collect();
    assert!(labels.contains(&"serial"), "serial executor thread missing from {labels:?}");
    // The vendored rayon shim spawns scoped workers only when the machine
    // has more than one hardware thread; on a single-CPU host it runs
    // inline on the (already-registered) calling thread.
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if hw > 1 {
        assert!(labels.contains(&"rayon"), "rayon worker threads missing from {labels:?}");
    }
}

/// A checkpointed sweep killed partway and resumed while a session records
/// is bit-identical to an uninterrupted untraced run: tracing is invisible
/// to the checkpoint fingerprint and the resume path.
#[test]
fn kill_resume_with_tracing_is_bit_identical() {
    let _gate = SESSION_GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let (h00, h01) = random_blocks(10, 77);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let energies: Vec<f64> = (0..12).map(|i| -0.25 + 0.05 * i as f64).collect();
    let ss = SsConfig {
        n_int: 16,
        n_mm: 4,
        n_rh: 6,
        bicg_tolerance: 1e-11,
        residual_cutoff: 1e-6,
        ..SsConfig::small()
    };
    let config = SweepConfig { initial_round: 4, ..SweepConfig::new(ss) };
    let sweep = EnergySweep::new(&op00, &op01, 1.5, config);

    let uninterrupted = sweep.run(&energies, &SerialExecutor);

    let dir = std::env::temp_dir().join(format!("cbs_trace_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.cp");

    let session = TraceSession::begin(TraceLevel::Stage).expect("another session is live");
    let outcome = sweep
        .run_with(
            &energies,
            &SerialExecutor,
            RunOptions {
                checkpoint_path: Some(&path),
                max_new_energies: Some(5),
                ..RunOptions::default()
            },
        )
        .unwrap();
    let RunOutcome::Interrupted(_) = outcome else { panic!("budget of 5 should interrupt") };
    let resumed = sweep
        .run_with(
            &energies,
            &SerialExecutor,
            RunOptions {
                resume: Some(SweepCheckpoint::load(&path).unwrap()),
                ..RunOptions::default()
            },
        )
        .unwrap()
        .expect_complete("resume must finish");
    let report = session.finish();

    assert_same_sweep(&uninterrupted, &resumed);
    assert!(report.spans.iter().any(|s| s.stage == Stage::Solve), "no solve spans recorded");
    // The traced resumed run fills wall-ns; the untraced control left it 0.
    // (Extraction, not Kernel: the dense test operator bypasses the sparse
    // kernel paths, but every energy runs the instrumented extraction.)
    assert_eq!(uninterrupted.stats.extraction_wall_ns, 0);
    assert!(resumed.stats.extraction_wall_ns > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// The session's per-stage aggregation is the same accounting
/// `CbsStatistics` reports: the span-summed CPU-ns match the counter-based
/// `kernel_ns`/`precond_ns`/`extraction_ns` and the merged wall-ns match
/// the `*_wall_ns` fields, within 5%.  The Chrome export of the same
/// session is structurally well-formed.
#[test]
fn aggregation_matches_stats_and_chrome_export_is_well_formed() {
    let _gate = SESSION_GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let h = al100();
    let (h00, h01) = (h.h00(), h.h01());
    let energies = [0.05, 0.11];
    let config = al_ss();

    let session = TraceSession::begin(TraceLevel::Stage).expect("another session is live");
    let run = compute_cbs_with(&h00, &h01, h.period(), &energies, &config, &SerialExecutor);
    let report = session.finish();
    let agg = report.stage_totals();

    let close = |a: u64, b: u64, what: &str| {
        let hi = a.max(b) as f64;
        let lo = a.min(b) as f64;
        // Sub-millisecond stages are clock-granularity noise; skip those.
        if hi >= 1e6 {
            assert!((hi - lo) / hi <= 0.05, "{what}: {a} vs {b} ns differ by >5%");
        }
    };
    close(agg.cpu(Stage::Kernel), run.stats.kernel_ns, "kernel cpu");
    close(
        agg.cpu(Stage::IluFactor) + agg.cpu(Stage::TriSweep),
        run.stats.precond_ns,
        "precond cpu",
    );
    close(agg.cpu(Stage::Extraction), run.stats.extraction_ns, "extraction cpu");
    close(agg.wall(Stage::Kernel), run.stats.kernel_wall_ns, "kernel wall");
    close(
        agg.wall(Stage::IluFactor) + agg.wall(Stage::TriSweep),
        run.stats.precond_wall_ns,
        "precond wall",
    );
    close(agg.wall(Stage::Extraction), run.stats.extraction_wall_ns, "extraction wall");
    // Serial run: wall == cpu per stage (no overlap to merge away).
    assert!(agg.wall(Stage::Kernel) <= agg.cpu(Stage::Kernel));

    let mut buf = Vec::new();
    report.write_chrome_trace(&mut buf).unwrap();
    let text = String::from_utf8(buf).expect("chrome trace must be UTF-8");
    assert!(text.contains("\"traceEvents\""));
    assert!(text.contains("\"name\": \"solve\""));
    assert!(text.contains("\"name\": \"kernel\""));
    assert!(text.contains("\"name\": \"extraction\""));
    assert_eq!(text.matches('{').count(), text.matches('}').count(), "unbalanced braces");
    assert_eq!(text.matches('[').count(), text.matches(']').count(), "unbalanced brackets");
}
