//! Determinism and acceptance tests of the `cbs-sweep` orchestrator:
//!
//! * a cold sweep is bit-identical to the per-energy `compute_cbs` loop,
//!   on the serial *and* rayon executors;
//! * a warm-started sweep is bit-identical across executors and uses
//!   strictly fewer BiCG iterations than the cold loop on a fig6-style
//!   (≥ 32 energies) scan;
//! * a checkpointed sweep killed partway through resumes to a result
//!   bit-identical to an uninterrupted run;
//! * adaptive refinement inserts midpoints only where the channel count
//!   changes, within budget, deterministically.

use rand::SeedableRng;

use cbs::core::{compute_cbs, SsConfig};
use cbs::linalg::{c64, CMatrix};
use cbs::parallel::{RayonExecutor, SerialExecutor};
use cbs::sparse::DenseOp;
use cbs::sweep::{
    sweep_cbs, EnergyOrigin, RunOptions, RunOutcome, SweepCheckpoint, SweepConfig, SweepResult,
};

fn random_blocks(n: usize, seed: u64) -> (CMatrix, CMatrix) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let a = CMatrix::random(n, n, &mut rng);
    let h00 = (&a + &a.adjoint()).scale(c64(0.5, 0.0));
    let h01 = CMatrix::random(n, n, &mut rng).scale(c64(0.35, 0.0));
    (h00, h01)
}

fn test_ss() -> SsConfig {
    SsConfig {
        n_int: 16,
        n_mm: 4,
        n_rh: 6,
        bicg_tolerance: 1e-11,
        residual_cutoff: 1e-6,
        ..SsConfig::small()
    }
}

fn assert_same_cbs(a: &SweepResult, b: &SweepResult) {
    assert_eq!(a.cbs.energies.len(), b.cbs.energies.len());
    for (x, y) in a.cbs.energies.iter().zip(&b.cbs.energies) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.cbs.points.len(), b.cbs.points.len());
    for (p, q) in a.cbs.points.iter().zip(&b.cbs.points) {
        assert_eq!(p.energy_index, q.energy_index);
        assert_eq!(p.lambda.re.to_bits(), q.lambda.re.to_bits());
        assert_eq!(p.lambda.im.to_bits(), q.lambda.im.to_bits());
        assert_eq!(p.k_re.to_bits(), q.k_re.to_bits());
        assert_eq!(p.k_im.to_bits(), q.k_im.to_bits());
        assert_eq!(p.propagating, q.propagating);
        assert_eq!(p.residual.to_bits(), q.residual.to_bits());
    }
    assert_eq!(a.stats.total_bicg_iterations, b.stats.total_bicg_iterations);
    assert_eq!(a.stats.total_matvecs, b.stats.total_matvecs);
    assert_eq!(a.stats.warm_bicg_iterations, b.stats.warm_bicg_iterations);
    assert_eq!(a.stats.cold_bicg_iterations, b.stats.cold_bicg_iterations);
    assert_eq!(a.stats.refined_energies, b.stats.refined_energies);
}

/// Cold flattened sweep == per-energy loop, bit for bit, on both executors.
#[test]
fn cold_sweep_reproduces_per_energy_loop_on_both_executors() {
    let (h00, h01) = random_blocks(10, 71);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let energies = [-0.3, -0.1, 0.1, 0.3];
    let cold = SweepConfig::cold(test_ss());

    let loop_run = compute_cbs(&op00, &op01, 1.6, &energies, &test_ss());
    assert!(!loop_run.cbs.points.is_empty(), "test problem found no CBS points");

    let serial = sweep_cbs(&op00, &op01, 1.6, &energies, &cold, &SerialExecutor);
    let rayon = sweep_cbs(&op00, &op01, 1.6, &energies, &cold, &RayonExecutor);
    assert_same_cbs(&serial, &rayon);

    assert_eq!(serial.cbs.points.len(), loop_run.cbs.points.len());
    for (p, q) in serial.cbs.points.iter().zip(&loop_run.cbs.points) {
        assert_eq!(p.energy_index, q.energy_index);
        assert_eq!(p.lambda.re.to_bits(), q.lambda.re.to_bits());
        assert_eq!(p.lambda.im.to_bits(), q.lambda.im.to_bits());
        assert_eq!(p.k_re.to_bits(), q.k_re.to_bits());
        assert_eq!(p.k_im.to_bits(), q.k_im.to_bits());
    }
    assert_eq!(serial.stats.total_bicg_iterations, loop_run.stats.total_bicg_iterations);
}

/// Fig6-style acceptance: on a ≥ 32-energy scan, the warm-started sweep
/// reports fewer total BiCG iterations than the cold loop, stays
/// executor-independent, and finds the same physics (same per-energy point
/// counts, matching eigenvalues within the solver tolerance).
#[test]
fn warm_sweep_beats_cold_loop_on_fig6_style_scan() {
    let (h00, h01) = random_blocks(12, 72);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let n_energies = 32;
    let energies: Vec<f64> =
        (0..n_energies).map(|i| -0.3 + 0.6 * i as f64 / (n_energies - 1) as f64).collect();
    let ss = test_ss();

    let cold = sweep_cbs(&op00, &op01, 1.6, &energies, &SweepConfig::cold(ss), &SerialExecutor);
    let warm_cfg = SweepConfig { initial_round: 4, ..SweepConfig::new(ss) };
    let warm = sweep_cbs(&op00, &op01, 1.6, &energies, &warm_cfg, &SerialExecutor);

    // Fewer iterations in total, with the split recorded in CbsStatistics.
    assert!(
        warm.stats.total_bicg_iterations < cold.stats.total_bicg_iterations,
        "warm {} >= cold {}",
        warm.stats.total_bicg_iterations,
        cold.stats.total_bicg_iterations
    );
    assert!(warm.stats.warm_started_solves > 0);
    assert_eq!(
        warm.stats.warm_bicg_iterations + warm.stats.cold_bicg_iterations,
        warm.stats.total_bicg_iterations
    );
    // The warm-started solves are cheaper per solve than the cold ones.
    let warm_rate = warm.stats.warm_bicg_iterations as f64 / warm.stats.warm_started_solves as f64;
    let cold_rate = cold.stats.total_bicg_iterations as f64 / cold.stats.cold_solves as f64;
    assert!(warm_rate < cold_rate, "warm {warm_rate:.1} it/solve vs cold {cold_rate:.1}");

    // Same physics: identical point counts per energy, eigenvalues within
    // the solver tolerance of the cold run's.
    assert_eq!(warm.cbs.points.len(), cold.cbs.points.len());
    for (i, _) in energies.iter().enumerate() {
        let wp: Vec<_> = warm.cbs.at_energy(i).collect();
        let cp: Vec<_> = cold.cbs.at_energy(i).collect();
        assert_eq!(wp.len(), cp.len(), "point count differs at energy {i}");
        for (w, c) in wp.iter().zip(&cp) {
            assert!(
                (w.lambda - c.lambda).abs() < 1e-6,
                "λ drifted: {:?} vs {:?}",
                w.lambda,
                c.lambda
            );
            assert_eq!(w.propagating, c.propagating);
        }
    }

    // Executor independence of the warm-started sweep.
    let warm_rayon = sweep_cbs(&op00, &op01, 1.6, &energies, &warm_cfg, &RayonExecutor);
    assert_same_cbs(&warm, &warm_rayon);
}

/// Kill a checkpointed sweep partway, resume it, and get bit-identical
/// results — including when the interruption lands mid-round.
#[test]
fn checkpointed_sweep_resumes_bit_identically() {
    let (h00, h01) = random_blocks(10, 73);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let energies: Vec<f64> = (0..12).map(|i| -0.25 + 0.05 * i as f64).collect();
    let config = SweepConfig { initial_round: 4, ..SweepConfig::new(test_ss()) };
    let sweep = cbs::sweep::EnergySweep::new(&op00, &op01, 1.5, config);

    let uninterrupted = sweep.run(&energies, &SerialExecutor);

    let dir = std::env::temp_dir().join(format!("cbs_sweep_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.cp");

    for kill_after in [3usize, 7] {
        // Run until the kill point, checkpointing each energy.
        let outcome = sweep
            .run_with(
                &energies,
                &SerialExecutor,
                RunOptions {
                    checkpoint_path: Some(&path),
                    max_new_energies: Some(kill_after),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let cp = match outcome {
            RunOutcome::Interrupted(cp) => cp,
            RunOutcome::Complete(_) => panic!("budget of {kill_after} should interrupt"),
        };
        assert_eq!(cp.records.len(), kill_after);

        // The on-disk checkpoint equals the returned one.
        let from_disk = SweepCheckpoint::load(&path).unwrap();
        assert_eq!(from_disk.records.len(), cp.records.len());
        assert_eq!(from_disk.fingerprint, cp.fingerprint);

        // Resume from disk and compare against the uninterrupted run.
        let resumed = sweep
            .run_with(
                &energies,
                &SerialExecutor,
                RunOptions { resume: Some(from_disk), ..RunOptions::default() },
            )
            .unwrap()
            .expect_complete("resume must finish");
        assert_same_cbs(&uninterrupted, &resumed);
    }

    // Resuming under a different configuration is refused.
    let other = cbs::sweep::EnergySweep::new(
        &op00,
        &op01,
        1.5,
        SweepConfig { initial_round: 2, ..*sweep.config() },
    );
    let cp = SweepCheckpoint::load(&path).unwrap();
    assert!(other
        .run_with(
            &energies,
            &SerialExecutor,
            RunOptions { resume: Some(cp), ..RunOptions::default() }
        )
        .is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// Resume stays bit-identical even once the seed bank's capacity eviction
/// kicks in: donors are chosen from completed batches only, and a mid-batch
/// kill must not let the killed batch's own donations evict the donors its
/// remaining members would have used.
#[test]
fn resume_is_bit_identical_under_seed_bank_eviction() {
    let (h00, h01) = random_blocks(10, 75);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let energies: Vec<f64> = (0..16).map(|i| -0.3 + 0.04 * i as f64).collect();
    // Tiny bank: every completion evicts, so any donor-selection dependence
    // on where a previous run was killed would show up bitwise.
    let config =
        SweepConfig { initial_round: 4, seed_bank_capacity: 2, ..SweepConfig::new(test_ss()) };
    let sweep = cbs::sweep::EnergySweep::new(&op00, &op01, 1.5, config);
    let uninterrupted = sweep.run(&energies, &SerialExecutor);
    assert!(uninterrupted.stats.warm_started_solves > 0);

    let dir = std::env::temp_dir().join(format!("cbs_sweep_evict_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.cp");
    // Kill points chosen to land mid-round of the 4/4/8 wavefront rounds.
    for kill_after in [2usize, 6, 11, 15] {
        let outcome = sweep
            .run_with(
                &energies,
                &SerialExecutor,
                RunOptions {
                    checkpoint_path: Some(&path),
                    max_new_energies: Some(kill_after),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let RunOutcome::Interrupted(_) = outcome else { panic!("should interrupt") };
        let resumed = sweep
            .run_with(
                &energies,
                &SerialExecutor,
                RunOptions {
                    resume: Some(SweepCheckpoint::load(&path).unwrap()),
                    ..RunOptions::default()
                },
            )
            .unwrap()
            .expect_complete("resume must finish");
        assert_same_cbs(&uninterrupted, &resumed);
        // The donor choices themselves must match, not just the physics.
        for (a, b) in uninterrupted.records.iter().zip(&resumed.records) {
            assert_eq!(
                a.seeded_from.map(f64::to_bits),
                b.seeded_from.map(f64::to_bits),
                "donor differs at E = {} after kill at {kill_after}",
                a.energy
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A sliced (partitioned-contour) sweep killed mid-round resumes from its
/// v5 checkpoint to results bit-identical with an uninterrupted run, on
/// both executors; the slice policy is part of the resume fingerprint; and
/// pre-slicing v3 checkpoints are refused with the dedicated
/// `IncompatibleVersion` error instead of a mis-split seed bank.
#[test]
fn sliced_sweep_kill_resume_is_bit_identical_and_v3_is_refused() {
    use cbs::core::SlicePolicy;
    let (h00, h01) = random_blocks(10, 76);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let energies: Vec<f64> = (0..8).map(|i| -0.2 + 0.05 * i as f64).collect();
    let ss =
        SsConfig { slice: SlicePolicy { radial_nodes: 6, ..SlicePolicy::sectors(2) }, ..test_ss() };
    let config = SweepConfig { initial_round: 4, ..SweepConfig::new(ss) };
    let sweep = cbs::sweep::EnergySweep::new(&op00, &op01, 1.5, config);

    let uninterrupted = sweep.run(&energies, &SerialExecutor);
    assert!(!uninterrupted.cbs.points.is_empty(), "sliced sweep found nothing");
    // Executor independence of the sliced warm-started sweep.
    let rayon = sweep.run(&energies, &RayonExecutor);
    assert_same_cbs(&uninterrupted, &rayon);
    // The slice policy participates in the fingerprint: the same sweep
    // without slicing must not be resumable from this checkpoint.
    let single_cfg = SweepConfig { initial_round: 4, ..SweepConfig::new(test_ss()) };
    assert_ne!(config.fingerprint(1.5), single_cfg.fingerprint(1.5));

    let dir = std::env::temp_dir().join(format!("cbs_sliced_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.cp");
    // Kill mid-round (the first wavefront round holds 4 energies).
    for kill_after in [2usize, 5] {
        let outcome = sweep
            .run_with(
                &energies,
                &SerialExecutor,
                RunOptions {
                    checkpoint_path: Some(&path),
                    max_new_energies: Some(kill_after),
                    ..RunOptions::default()
                },
            )
            .unwrap();
        let RunOutcome::Interrupted(_) = outcome else { panic!("budget should interrupt") };
        let resumed = sweep
            .run_with(
                &energies,
                &SerialExecutor,
                RunOptions {
                    resume: Some(SweepCheckpoint::load(&path).unwrap()),
                    ..RunOptions::default()
                },
            )
            .unwrap()
            .expect_complete("resume must finish");
        assert_same_cbs(&uninterrupted, &resumed);
        for (a, b) in uninterrupted.records.iter().zip(&resumed.records) {
            assert_eq!(a.stats, b.stats, "per-energy counters differ at E = {}", a.energy);
        }
    }

    // The checkpoint on disk is v5; a v3 (pre-slicing) one is refused with
    // the dedicated error, not parsed into a mis-split seed bank.
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.starts_with("cbs-sweep-checkpoint v5"), "unexpected magic in {path:?}");
    let v3 = text.replacen("cbs-sweep-checkpoint v5", "cbs-sweep-checkpoint v3", 1);
    match cbs::sweep::SweepCheckpoint::parse(&v3) {
        Err(cbs::sweep::CheckpointError::IncompatibleVersion { found }) => {
            assert_eq!(found, "cbs-sweep-checkpoint v3");
        }
        other => panic!("v3 checkpoint accepted or misclassified: {other:?}"),
    }
    // Resuming the sliced sweep under a different slice count is refused
    // through the fingerprint.
    let other_cfg = SweepConfig {
        initial_round: 4,
        ..SweepConfig::new(SsConfig {
            slice: SlicePolicy { radial_nodes: 6, ..SlicePolicy::sectors(4) },
            ..test_ss()
        })
    };
    let other = cbs::sweep::EnergySweep::new(&op00, &op01, 1.5, other_cfg);
    let cp = SweepCheckpoint::load(&path).unwrap();
    assert!(matches!(
        other.run_with(
            &energies,
            &SerialExecutor,
            RunOptions { resume: Some(cp), ..RunOptions::default() }
        ),
        Err(cbs::sweep::CheckpointError::Mismatch(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// Adaptive refinement bisects exactly the intervals where the propagating
/// channel count changes, respects its budget, and stays deterministic.
#[test]
fn refinement_bisects_channel_count_changes_within_budget() {
    let (h00, h01) = random_blocks(12, 74);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let energies: Vec<f64> = (0..9).map(|i| -0.4 + 0.1 * i as f64).collect();
    let budget = 6;
    let config = SweepConfig {
        initial_round: 4,
        min_refine_spacing: 1e-3,
        ..SweepConfig::new(test_ss()).with_refinement(budget)
    };
    let run = sweep_cbs(&op00, &op01, 1.6, &energies, &config, &SerialExecutor);

    let refined: Vec<_> =
        run.records.iter().filter(|r| matches!(r.origin, EnergyOrigin::Refined { .. })).collect();
    assert_eq!(run.stats.refined_energies, refined.len());
    assert!(refined.len() <= budget);
    // The base grid had at least one channel-count change, so something was
    // refined (otherwise this test exercises nothing).
    assert!(!refined.is_empty(), "no interval triggered refinement");
    for r in &refined {
        match r.origin {
            EnergyOrigin::Refined { lo, hi } => {
                assert!((r.energy - 0.5 * (lo + hi)).abs() < 1e-14, "not a midpoint");
                assert!(hi - lo > config.min_refine_spacing);
            }
            _ => unreachable!(),
        }
    }
    // Energies stay sorted with the refined points merged in, and every
    // point's energy_index is consistent.
    for w in run.cbs.energies.windows(2) {
        assert!(w[0] < w[1]);
    }
    for p in &run.cbs.points {
        assert_eq!(run.cbs.energies[p.energy_index].to_bits(), p.energy.to_bits());
    }
    // Determinism: an identical run makes identical refinement decisions.
    let again = sweep_cbs(&op00, &op01, 1.6, &energies, &config, &RayonExecutor);
    assert_same_cbs(&run, &again);
}
