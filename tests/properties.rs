//! Property-based tests (proptest) on the cross-crate invariants: operator
//! adjoint consistency of the QEP, contour filtering, and the equivalence of
//! domain-decomposed and serial operator application for arbitrary
//! decompositions.

use proptest::prelude::*;

use cbs::core::{QepProblem, RingContour};
use cbs::grid::{DomainDecomposition, FdOrder, Grid3};
use cbs::linalg::{c64, CMatrix, CVector, Complex64};
use cbs::parallel::DomainDecomposedOp;
use cbs::sparse::{CooBuilder, CsrMatrix, DenseOp, LinearOperator};

fn laplacian_like(grid: Grid3, diag: f64) -> CsrMatrix {
    let n = grid.npoints();
    let mut b = CooBuilder::new(n, n);
    for (i, j, k, row) in grid.iter_points() {
        b.push(row, row, c64(diag, 0.0));
        for (di, dj, dk) in [(1isize, 0isize, 0isize), (0, 1, 0), (0, 0, 1)] {
            for sign in [-1isize, 1] {
                let ii = grid.wrap_x(i as isize + sign * di);
                let jj = grid.wrap_y(j as isize + sign * dj);
                let kk = (k as isize + sign * dk).rem_euclid(grid.nz as isize) as usize;
                b.push(row, grid.index(ii, jj, kk), c64(-1.0, 0.0));
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ⟨P(z)x, y⟩ = ⟨x, P(1/z̄)y⟩ for random Hermitian H00, arbitrary H01 and
    /// arbitrary shifts: the identity behind the paper's dual-system trick.
    #[test]
    fn qep_adjoint_identity_holds_for_random_blocks(
        seed in 0u64..1000,
        zre in -2.0f64..2.0,
        zim in -2.0f64..2.0,
        energy in -1.0f64..1.0,
    ) {
        prop_assume!(zre * zre + zim * zim > 0.05);
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = 8;
        let a = CMatrix::random(n, n, &mut rng);
        let h00 = &a + &a.adjoint();
        let h01 = CMatrix::random(n, n, &mut rng);
        let op00 = DenseOp::new(h00);
        let op01 = DenseOp::new(h01);
        let qep = QepProblem::new(&op00, &op01, energy, 1.0);
        let z = c64(zre, zim);
        let x = CVector::random(n, &mut rng);
        let y = CVector::random(n, &mut rng);
        let mut px = vec![Complex64::ZERO; n];
        qep.apply(z, x.as_slice(), &mut px);
        let mut py = vec![Complex64::ZERO; n];
        qep.apply_adjoint(z, y.as_slice(), &mut py);
        let lhs = CVector::from_vec(px).dot(&y);
        let rhs = x.dot(&CVector::from_vec(py));
        let scale = 1.0 + lhs.abs().max(rhs.abs());
        prop_assert!((lhs - rhs).abs() < 1e-10 * scale);
    }

    /// The ring-contour quadrature acts as a band-pass filter on moments:
    /// ≈ λ^k inside the annulus, ≈ 0 outside.
    #[test]
    fn contour_filters_poles_correctly(
        radius in 0.05f64..3.0,
        angle in 0.0f64..std::f64::consts::TAU,
        k in 0usize..5,
    ) {
        // Stay away from the contour circles themselves.
        prop_assume!((radius - 0.5).abs() > 0.08 && (radius - 2.0).abs() > 0.25);
        let contour = RingContour::new(0.5, 96);
        let lambda = Complex64::polar(radius, angle);
        let got = contour.filter_value(k, lambda);
        if radius > 0.5 && radius < 2.0 {
            let want = lambda.powi(k as i32);
            prop_assert!((got - want).abs() < 1e-3 * (1.0 + want.abs()),
                "inside: got {got:?} want {want:?}");
        } else {
            prop_assert!(got.abs() < 2e-2, "outside: got {got:?}");
        }
    }

    /// Domain-decomposed application equals the serial matvec for any
    /// decomposition shape.
    #[test]
    fn domain_decomposition_is_exact(
        ndx in 1usize..3,
        ndy in 1usize..3,
        ndz in 1usize..5,
        seed in 0u64..1000,
        diag in 4.0f64..10.0,
    ) {
        use rand::SeedableRng;
        let grid = Grid3::isotropic(4, 4, 8, 0.5);
        let m = laplacian_like(grid, diag);
        let dd = DomainDecomposition::new(grid, ndx, ndy, ndz);
        let op = DomainDecomposedOp::new(m.clone(), dd, FdOrder::new(1));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let x = CVector::random(grid.npoints(), &mut rng);
        let y_dd = op.apply_vec(&x);
        let y_serial = m.matvec(&x);
        prop_assert!((&y_dd - &y_serial).norm() < 1e-11 * (1.0 + y_serial.norm()));
    }

    /// The fused block kernels of every operator in the QEP hot path
    /// (`CsrMatrix`, `LowRankOp`, `ShiftedOp`, `QepOperator`) are
    /// bit-identical to column-by-column application — the invariant the
    /// block dual-BiCG's determinism guarantees rest on.
    #[test]
    fn apply_block_is_bitwise_column_equivalent(
        seed in 0u64..1000,
        nvecs in 1usize..6,
        zre in -2.0f64..2.0,
        zim in -2.0f64..2.0,
    ) {
        prop_assume!(zre * zre + zim * zim > 0.05);
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let grid = Grid3::isotropic(3, 3, 4, 0.5);
        let n = grid.npoints();
        let csr = laplacian_like(grid, 5.0);
        let mut lr = cbs::sparse::LowRankOp::new(n, n);
        for _ in 0..3 {
            let ket = cbs::sparse::SparseVec::new(vec![
                (rand::Rng::gen_range(&mut rng, 0..n), c64(0.4, -0.6)),
                (rand::Rng::gen_range(&mut rng, 0..n), c64(-0.2, 0.3)),
            ]);
            let bra = cbs::sparse::SparseVec::new(vec![
                (rand::Rng::gen_range(&mut rng, 0..n), c64(0.7, 0.1)),
            ]);
            lr.push(ket, bra, c64(rand::Rng::gen_range(&mut rng, -1.0..1.0), 0.4));
        }
        let z = c64(zre, zim);
        let shifted = cbs::sparse::ShiftedOp::new(&csr, z);
        let qep = QepProblem::new(&csr, &lr, 0.2, 1.0);
        let qep_op = qep.operator(z);

        let x: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
        let mut block = vec![Complex64::ZERO; n * nvecs];
        let mut col = vec![Complex64::ZERO; n];
        macro_rules! check {
            ($op:expr, $name:literal) => {
                $op.apply_block(&x, &mut block, nvecs);
                for c in 0..nvecs {
                    $op.apply(&x[c * n..(c + 1) * n], &mut col);
                    prop_assert!(block[c * n..(c + 1) * n] == col[..],
                        "{} column {} differs", $name, c);
                }
                $op.apply_adjoint_block(&x, &mut block, nvecs);
                for c in 0..nvecs {
                    $op.apply_adjoint(&x[c * n..(c + 1) * n], &mut col);
                    prop_assert!(block[c * n..(c + 1) * n] == col[..],
                        "{} adjoint column {} differs", $name, c);
                }
            };
        }
        check!(&csr, "CsrMatrix");
        check!(&lr, "LowRankOp");
        check!(&shifted, "ShiftedOp");
        check!(&qep_op, "QepOperator");
    }

    /// Adjoint consistency of the block path: `⟨Y, A X⟩ = ⟨A† Y, X⟩`
    /// column-wise for the QEP operator applied through slabs.
    #[test]
    fn block_adjoint_identity_holds(
        seed in 0u64..1000,
        nvecs in 1usize..5,
        zre in -1.5f64..1.5,
        zim in -1.5f64..1.5,
        energy in -1.0f64..1.0,
    ) {
        prop_assume!(zre * zre + zim * zim > 0.05);
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = 8;
        let a = CMatrix::random(n, n, &mut rng);
        let h00 = &a + &a.adjoint();
        let h01 = CMatrix::random(n, n, &mut rng);
        let op00 = DenseOp::new(h00);
        let op01 = DenseOp::new(h01);
        let qep = QepProblem::new(&op00, &op01, energy, 1.0);
        let op = qep.operator(c64(zre, zim));
        let x: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
        let y: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
        let mut ax = vec![Complex64::ZERO; n * nvecs];
        op.apply_block(&x, &mut ax, nvecs);
        let mut aty = vec![Complex64::ZERO; n * nvecs];
        op.apply_adjoint_block(&y, &mut aty, nvecs);
        for c in 0..nvecs {
            let r = c * n..(c + 1) * n;
            // ⟨y_c, A x_c⟩ vs ⟨A† y_c, x_c⟩
            let lhs: Complex64 = ax[r.clone()].iter().zip(&y[r.clone()])
                .map(|(axi, yi)| yi.conj() * *axi).sum();
            let rhs: Complex64 = x[r.clone()].iter().zip(&aty[r.clone()])
                .map(|(xi, ayi)| ayi.conj() * *xi).sum();
            let scale = 1.0 + lhs.abs().max(rhs.abs());
            prop_assert!((lhs - rhs).abs() < 1e-10 * scale,
                "column {} adjoint defect: {:?} vs {:?}", c, lhs, rhs);
        }
    }

    /// Extraction robustness: whatever the (n_int, n_mm, n_rh, λ_min,
    /// energy) combination, `extract_from_moments` (via `solve_qep`) never
    /// emits a non-finite eigenvalue or residual, every returned pair lies
    /// inside the contour annulus, and the `(|λ|, arg λ)` sort key is a
    /// total order on the returned set — the invariants downstream
    /// consumers (classification, refinement, checkpoints) rely on.
    #[test]
    fn extraction_emits_only_finite_ordered_in_annulus_pairs(
        seed in 0u64..500,
        energy in -1.0f64..1.0,
        n_int in 4usize..12,
        n_mm in 1usize..4,
        n_rh in 1usize..4,
        lambda_min in 0.3f64..0.7,
    ) {
        use rand::SeedableRng;
        use cbs::core::{solve_qep, SsConfig};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = 6;
        let a = CMatrix::random(n, n, &mut rng);
        let h00 = &a + &a.adjoint();
        let h01 = CMatrix::random(n, n, &mut rng).scale(c64(0.3, 0.0));
        let op00 = DenseOp::new(h00);
        let op01 = DenseOp::new(h01);
        let qep = QepProblem::new(&op00, &op01, energy, 1.0);
        let config = SsConfig {
            n_int,
            n_mm,
            n_rh,
            lambda_min,
            bicg_tolerance: 1e-10,
            bicg_max_iterations: 2_000,
            residual_cutoff: 1e-4,
            majority_stop: false,
            ..SsConfig::small()
        };
        let result = solve_qep(&qep, &config);
        let contour = config.contour();
        for p in &result.eigenpairs {
            prop_assert!(
                p.lambda.re.is_finite() && p.lambda.im.is_finite(),
                "non-finite eigenvalue {:?}", p.lambda
            );
            prop_assert!(
                p.residual.is_finite() && p.residual >= 0.0,
                "bad residual {}", p.residual
            );
            prop_assert!(
                contour.contains(p.lambda, 0.0),
                "pair outside the annulus: {:?}", p.lambda
            );
        }
        // The sort key is totally ordered over the whole returned set (no
        // NaN keys hiding behind partial_cmp)...
        let keys: Vec<(f64, f64)> =
            result.eigenpairs.iter().map(|p| (p.lambda.abs(), p.lambda.arg())).collect();
        for (i, ka) in keys.iter().enumerate() {
            for kb in &keys[i + 1..] {
                prop_assert!(ka.partial_cmp(kb).is_some(), "incomparable sort keys");
            }
        }
        // ... and the returned order respects it.
        for w in keys.windows(2) {
            prop_assert!(
                w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Greater),
                "sort order violated: {:?} before {:?}", w[0], w[1]
            );
        }
    }

    /// λ → k → λ round-trips through the Brillouin-zone folding.
    #[test]
    fn lambda_k_roundtrip(
        radius in 0.5f64..2.0,
        angle in -std::f64::consts::PI..std::f64::consts::PI,
        period in 0.5f64..10.0,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let n = 4;
        let a = CMatrix::random(n, n, &mut rng);
        let op00 = DenseOp::new(&a + &a.adjoint());
        let op01 = DenseOp::new(CMatrix::random(n, n, &mut rng));
        let qep = QepProblem::new(&op00, &op01, 0.0, period);
        let lambda = Complex64::polar(radius, angle);
        let (k_re, k_im) = qep.lambda_to_k(lambda);
        let back = Complex64::new(0.0, 1.0) * c64(k_re, k_im) * period;
        let reconstructed = back.exp();
        prop_assert!((reconstructed - lambda).abs() < 1e-10 * (1.0 + lambda.abs()));
    }
}
