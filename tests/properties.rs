//! Property-based tests (proptest) on the cross-crate invariants: operator
//! adjoint consistency of the QEP, contour filtering, and the equivalence of
//! domain-decomposed and serial operator application for arbitrary
//! decompositions.

use proptest::prelude::*;

use cbs::core::{QepProblem, RingContour};
use cbs::grid::{DomainDecomposition, FdOrder, Grid3};
use cbs::linalg::{c64, CMatrix, CVector, Complex64};
use cbs::parallel::DomainDecomposedOp;
use cbs::sparse::{CooBuilder, CsrMatrix, DenseOp, LinearOperator};

fn laplacian_like(grid: Grid3, diag: f64) -> CsrMatrix {
    let n = grid.npoints();
    let mut b = CooBuilder::new(n, n);
    for (i, j, k, row) in grid.iter_points() {
        b.push(row, row, c64(diag, 0.0));
        for (di, dj, dk) in [(1isize, 0isize, 0isize), (0, 1, 0), (0, 0, 1)] {
            for sign in [-1isize, 1] {
                let ii = grid.wrap_x(i as isize + sign * di);
                let jj = grid.wrap_y(j as isize + sign * dj);
                let kk = (k as isize + sign * dk).rem_euclid(grid.nz as isize) as usize;
                b.push(row, grid.index(ii, jj, kk), c64(-1.0, 0.0));
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ⟨P(z)x, y⟩ = ⟨x, P(1/z̄)y⟩ for random Hermitian H00, arbitrary H01 and
    /// arbitrary shifts: the identity behind the paper's dual-system trick.
    #[test]
    fn qep_adjoint_identity_holds_for_random_blocks(
        seed in 0u64..1000,
        zre in -2.0f64..2.0,
        zim in -2.0f64..2.0,
        energy in -1.0f64..1.0,
    ) {
        prop_assume!(zre * zre + zim * zim > 0.05);
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = 8;
        let a = CMatrix::random(n, n, &mut rng);
        let h00 = &a + &a.adjoint();
        let h01 = CMatrix::random(n, n, &mut rng);
        let op00 = DenseOp::new(h00);
        let op01 = DenseOp::new(h01);
        let qep = QepProblem::new(&op00, &op01, energy, 1.0);
        let z = c64(zre, zim);
        let x = CVector::random(n, &mut rng);
        let y = CVector::random(n, &mut rng);
        let mut px = vec![Complex64::ZERO; n];
        qep.apply(z, x.as_slice(), &mut px);
        let mut py = vec![Complex64::ZERO; n];
        qep.apply_adjoint(z, y.as_slice(), &mut py);
        let lhs = CVector::from_vec(px).dot(&y);
        let rhs = x.dot(&CVector::from_vec(py));
        let scale = 1.0 + lhs.abs().max(rhs.abs());
        prop_assert!((lhs - rhs).abs() < 1e-10 * scale);
    }

    /// The ring-contour quadrature acts as a band-pass filter on moments:
    /// ≈ λ^k inside the annulus, ≈ 0 outside.
    #[test]
    fn contour_filters_poles_correctly(
        radius in 0.05f64..3.0,
        angle in 0.0f64..std::f64::consts::TAU,
        k in 0usize..5,
    ) {
        // Stay away from the contour circles themselves.
        prop_assume!((radius - 0.5).abs() > 0.08 && (radius - 2.0).abs() > 0.25);
        let contour = RingContour::new(0.5, 96);
        let lambda = Complex64::polar(radius, angle);
        let got = contour.filter_value(k, lambda);
        if radius > 0.5 && radius < 2.0 {
            let want = lambda.powi(k as i32);
            prop_assert!((got - want).abs() < 1e-3 * (1.0 + want.abs()),
                "inside: got {got:?} want {want:?}");
        } else {
            prop_assert!(got.abs() < 2e-2, "outside: got {got:?}");
        }
    }

    /// Domain-decomposed application equals the serial matvec for any
    /// decomposition shape.
    #[test]
    fn domain_decomposition_is_exact(
        ndx in 1usize..3,
        ndy in 1usize..3,
        ndz in 1usize..5,
        seed in 0u64..1000,
        diag in 4.0f64..10.0,
    ) {
        use rand::SeedableRng;
        let grid = Grid3::isotropic(4, 4, 8, 0.5);
        let m = laplacian_like(grid, diag);
        let dd = DomainDecomposition::new(grid, ndx, ndy, ndz);
        let op = DomainDecomposedOp::new(m.clone(), dd, FdOrder::new(1));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let x = CVector::random(grid.npoints(), &mut rng);
        let y_dd = op.apply_vec(&x);
        let y_serial = m.matvec(&x);
        prop_assert!((&y_dd - &y_serial).norm() < 1e-11 * (1.0 + y_serial.norm()));
    }

    /// λ → k → λ round-trips through the Brillouin-zone folding.
    #[test]
    fn lambda_k_roundtrip(
        radius in 0.5f64..2.0,
        angle in -std::f64::consts::PI..std::f64::consts::PI,
        period in 0.5f64..10.0,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let n = 4;
        let a = CMatrix::random(n, n, &mut rng);
        let op00 = DenseOp::new(&a + &a.adjoint());
        let op01 = DenseOp::new(CMatrix::random(n, n, &mut rng));
        let qep = QepProblem::new(&op00, &op01, 0.0, period);
        let lambda = Complex64::polar(radius, angle);
        let (k_re, k_im) = qep.lambda_to_k(lambda);
        let back = Complex64::new(0.0, 1.0) * c64(k_re, k_im) * period;
        let reconstructed = back.exp();
        prop_assert!((reconstructed - lambda).abs() < 1e-10 * (1.0 + lambda.abs()));
    }
}
