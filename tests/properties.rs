//! Property-based tests (proptest) on the cross-crate invariants: operator
//! adjoint consistency of the QEP, contour filtering, the equivalence of
//! domain-decomposed and serial operator application for arbitrary
//! decompositions, and the auto-tuning cost model's prediction invariants
//! (finite/positive, workload-monotone, graceful degenerate fallback).

use proptest::prelude::*;

use cbs::core::{
    merge_claimed, ContourPartition, QepEigenpair, QepProblem, RingContour, SlicePolicy,
};
use cbs::grid::{DomainDecomposition, FdOrder, Grid3};
use cbs::linalg::{c64, CMatrix, CVector, Complex64};
use cbs::parallel::DomainDecomposedOp;
use cbs::sparse::{
    AssembledPattern, CooBuilder, CsrMatrix, DenseOp, KernelLayout, LinearOperator, Preconditioner,
};

/// Circular distance from angle `t` to the arc `[lo, hi]` (all radians,
/// arbitrary branch).
fn angular_distance_to_sector(t: f64, lo: f64, hi: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let span = hi - lo;
    let offset = (t - lo).rem_euclid(tau);
    if offset <= span {
        0.0
    } else {
        // Nearest of the two boundaries, the short way around.
        (offset - span).min(tau - offset)
    }
}

/// A random square complex CSR matrix with a dominant diagonal and `per_row`
/// extra off-diagonal entries per row (duplicates fold together).
fn random_csr(n: usize, per_row: usize, rng: &mut rand_chacha::ChaCha8Rng) -> CsrMatrix {
    use rand::Rng;
    let mut b = CooBuilder::new(n, n);
    for row in 0..n {
        b.push(row, row, c64(rng.gen_range(2.0..6.0), rng.gen_range(-0.5..0.5)));
        for _ in 0..per_row {
            b.push(
                row,
                rng.gen_range(0..n),
                c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
            );
        }
    }
    b.build()
}

fn laplacian_like(grid: Grid3, diag: f64) -> CsrMatrix {
    let n = grid.npoints();
    let mut b = CooBuilder::new(n, n);
    for (i, j, k, row) in grid.iter_points() {
        b.push(row, row, c64(diag, 0.0));
        for (di, dj, dk) in [(1isize, 0isize, 0isize), (0, 1, 0), (0, 0, 1)] {
            for sign in [-1isize, 1] {
                let ii = grid.wrap_x(i as isize + sign * di);
                let jj = grid.wrap_y(j as isize + sign * dj);
                let kk = (k as isize + sign * dk).rem_euclid(grid.nz as isize) as usize;
                b.push(row, grid.index(ii, jj, kk), c64(-1.0, 0.0));
            }
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ⟨P(z)x, y⟩ = ⟨x, P(1/z̄)y⟩ for random Hermitian H00, arbitrary H01 and
    /// arbitrary shifts: the identity behind the paper's dual-system trick.
    #[test]
    fn qep_adjoint_identity_holds_for_random_blocks(
        seed in 0u64..1000,
        zre in -2.0f64..2.0,
        zim in -2.0f64..2.0,
        energy in -1.0f64..1.0,
    ) {
        prop_assume!(zre * zre + zim * zim > 0.05);
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = 8;
        let a = CMatrix::random(n, n, &mut rng);
        let h00 = &a + &a.adjoint();
        let h01 = CMatrix::random(n, n, &mut rng);
        let op00 = DenseOp::new(h00);
        let op01 = DenseOp::new(h01);
        let qep = QepProblem::new(&op00, &op01, energy, 1.0);
        let z = c64(zre, zim);
        let x = CVector::random(n, &mut rng);
        let y = CVector::random(n, &mut rng);
        let mut px = vec![Complex64::ZERO; n];
        qep.apply(z, x.as_slice(), &mut px);
        let mut py = vec![Complex64::ZERO; n];
        qep.apply_adjoint(z, y.as_slice(), &mut py);
        let lhs = CVector::from_vec(px).dot(&y);
        let rhs = x.dot(&CVector::from_vec(py));
        let scale = 1.0 + lhs.abs().max(rhs.abs());
        prop_assert!((lhs - rhs).abs() < 1e-10 * scale);
    }

    /// The ring-contour quadrature acts as a band-pass filter on moments:
    /// ≈ λ^k inside the annulus, ≈ 0 outside.
    #[test]
    fn contour_filters_poles_correctly(
        radius in 0.05f64..3.0,
        angle in 0.0f64..std::f64::consts::TAU,
        k in 0usize..5,
    ) {
        // Stay away from the contour circles themselves.
        prop_assume!((radius - 0.5).abs() > 0.08 && (radius - 2.0).abs() > 0.25);
        let contour = RingContour::new(0.5, 96);
        let lambda = Complex64::polar(radius, angle);
        let got = contour.filter_value(k, lambda);
        if radius > 0.5 && radius < 2.0 {
            let want = lambda.powi(k as i32);
            prop_assert!((got - want).abs() < 1e-3 * (1.0 + want.abs()),
                "inside: got {got:?} want {want:?}");
        } else {
            prop_assert!(got.abs() < 2e-2, "outside: got {got:?}");
        }
    }

    /// Domain-decomposed application equals the serial matvec for any
    /// decomposition shape.
    #[test]
    fn domain_decomposition_is_exact(
        ndx in 1usize..3,
        ndy in 1usize..3,
        ndz in 1usize..5,
        seed in 0u64..1000,
        diag in 4.0f64..10.0,
    ) {
        use rand::SeedableRng;
        let grid = Grid3::isotropic(4, 4, 8, 0.5);
        let m = laplacian_like(grid, diag);
        let dd = DomainDecomposition::new(grid, ndx, ndy, ndz);
        let op = DomainDecomposedOp::new(m.clone(), dd, FdOrder::new(1));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let x = CVector::random(grid.npoints(), &mut rng);
        let y_dd = op.apply_vec(&x);
        let y_serial = m.matvec(&x);
        prop_assert!((&y_dd - &y_serial).norm() < 1e-11 * (1.0 + y_serial.norm()));
    }

    /// The fused block kernels of every operator in the QEP hot path
    /// (`CsrMatrix`, `LowRankOp`, `ShiftedOp`, `QepOperator`) are
    /// bit-identical to column-by-column application — the invariant the
    /// block dual-BiCG's determinism guarantees rest on.
    #[test]
    fn apply_block_is_bitwise_column_equivalent(
        seed in 0u64..1000,
        nvecs in 1usize..6,
        zre in -2.0f64..2.0,
        zim in -2.0f64..2.0,
    ) {
        prop_assume!(zre * zre + zim * zim > 0.05);
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let grid = Grid3::isotropic(3, 3, 4, 0.5);
        let n = grid.npoints();
        let csr = laplacian_like(grid, 5.0);
        let mut lr = cbs::sparse::LowRankOp::new(n, n);
        for _ in 0..3 {
            let ket = cbs::sparse::SparseVec::new(vec![
                (rand::Rng::gen_range(&mut rng, 0..n), c64(0.4, -0.6)),
                (rand::Rng::gen_range(&mut rng, 0..n), c64(-0.2, 0.3)),
            ]);
            let bra = cbs::sparse::SparseVec::new(vec![
                (rand::Rng::gen_range(&mut rng, 0..n), c64(0.7, 0.1)),
            ]);
            lr.push(ket, bra, c64(rand::Rng::gen_range(&mut rng, -1.0..1.0), 0.4));
        }
        let z = c64(zre, zim);
        let shifted = cbs::sparse::ShiftedOp::new(&csr, z);
        let qep = QepProblem::new(&csr, &lr, 0.2, 1.0);
        let qep_op = qep.operator(z);

        let x: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
        let mut block = vec![Complex64::ZERO; n * nvecs];
        let mut col = vec![Complex64::ZERO; n];
        macro_rules! check {
            ($op:expr, $name:literal) => {
                $op.apply_block(&x, &mut block, nvecs);
                for c in 0..nvecs {
                    $op.apply(&x[c * n..(c + 1) * n], &mut col);
                    prop_assert!(block[c * n..(c + 1) * n] == col[..],
                        "{} column {} differs", $name, c);
                }
                $op.apply_adjoint_block(&x, &mut block, nvecs);
                for c in 0..nvecs {
                    $op.apply_adjoint(&x[c * n..(c + 1) * n], &mut col);
                    prop_assert!(block[c * n..(c + 1) * n] == col[..],
                        "{} adjoint column {} differs", $name, c);
                }
            };
        }
        check!(&csr, "CsrMatrix");
        check!(&lr, "LowRankOp");
        check!(&shifted, "ShiftedOp");
        check!(&qep_op, "QepOperator");
    }

    /// Kernel-layout equivalence for the assembled shifted operator on
    /// arbitrary sparsity: the default `Interleaved` layout's block kernels
    /// stay **bitwise** identical to column-by-column application, and the
    /// opt-in `Split` (planar/FMA) layout agrees with `Interleaved`
    /// columnwise to 1e-14 relative — in both apply directions.
    #[test]
    fn assembled_kernel_layouts_agree_for_random_sparsity(
        seed in 0u64..1000,
        n in 6usize..60,
        per_row in 1usize..5,
        nvecs in 1usize..6,
        zre in -2.0f64..2.0,
        zim in -2.0f64..2.0,
        energy in -1.0f64..1.0,
    ) {
        prop_assume!(zre * zre + zim * zim > 0.05);
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let h00 = random_csr(n, per_row, &mut rng);
        let h01 = random_csr(n, per_row, &mut rng);
        let inter = AssembledPattern::build(&h00, &h01).with_layout(KernelLayout::Interleaved);
        let split = AssembledPattern::build(&h00, &h01).with_layout(KernelLayout::Split);
        let z = c64(zre, zim);
        let op_i = inter.assemble(energy, z);
        let op_s = split.assemble(energy, z);

        let x: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
        let mut yi = vec![Complex64::ZERO; n * nvecs];
        let mut ys = vec![Complex64::ZERO; n * nvecs];
        let mut col = vec![Complex64::ZERO; n];
        macro_rules! check {
            ($fwd:ident, $one:ident, $name:literal) => {
                op_i.$fwd(&x, &mut yi, nvecs);
                op_s.$fwd(&x, &mut ys, nvecs);
                for c in 0..nvecs {
                    let r = c * n..(c + 1) * n;
                    // Default layout: block ≡ per-column, bitwise.
                    op_i.$one(&x[r.clone()], &mut col);
                    prop_assert!(yi[r.clone()] == col[..],
                        "{} interleaved column {} not bitwise", $name, c);
                    // Split layout: columnwise 1e-14 relative agreement.
                    let scale = yi[r.clone()]
                        .iter()
                        .map(|v| v.abs())
                        .fold(1.0f64, f64::max);
                    for (a, b) in yi[r.clone()].iter().zip(&ys[r]) {
                        prop_assert!((*a - *b).abs() <= 1e-14 * scale,
                            "{} split column {} drifted: {:?} vs {:?}", $name, c, a, b);
                    }
                }
            };
        }
        check!(apply_block, apply, "forward");
        check!(apply_adjoint_block, apply_adjoint, "adjoint");
    }

    /// Blocked multi-RHS and parallel level-scheduled triangular sweeps are
    /// bitwise identical to the sequential per-column reference, for
    /// arbitrary sparsity, slab widths and `CBS_TRI_PAR` thresholds — the
    /// contract that keeps the parallel-sweep knob out of the checkpoint
    /// fingerprint.
    #[test]
    fn blocked_and_parallel_tri_sweeps_are_bitwise_sequential(
        seed in 0u64..1000,
        n in 6usize..60,
        per_row in 1usize..5,
        nvecs in 1usize..6,
        threshold in 1usize..8,
        zre in -2.0f64..2.0,
        zim in -2.0f64..2.0,
        energy in -1.0f64..1.0,
    ) {
        prop_assume!(zre * zre + zim * zim > 0.05);
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let h00 = random_csr(n, per_row, &mut rng);
        let h01 = random_csr(n, per_row, &mut rng);
        let pattern = AssembledPattern::build(&h00, &h01);
        let op = pattern.assemble(energy, c64(zre, zim));
        let r: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();

        // Sequential per-column reference (parallel mode forced off).
        let reference = op.ilu0().with_tri_par(None);
        let mut z_ref = vec![Complex64::ZERO; n * nvecs];
        let mut zt_ref = vec![Complex64::ZERO; n * nvecs];
        for c in 0..nvecs {
            reference.solve(&r[c * n..(c + 1) * n], &mut z_ref[c * n..(c + 1) * n]);
            reference.solve_adjoint(&r[c * n..(c + 1) * n], &mut zt_ref[c * n..(c + 1) * n]);
        }

        // Blocked sweeps, serial and parallel (threshold 1 parallelizes
        // every level), must reproduce the reference bit for bit.
        for par in [None, Some(threshold), Some(1)] {
            let ilu = op.ilu0().with_tri_par(par);
            let mut z = vec![Complex64::ZERO; n * nvecs];
            ilu.solve_block(&r, &mut z, nvecs);
            prop_assert!(z == z_ref, "blocked sweep (par={:?}) not bitwise", par);
            ilu.solve_adjoint_block(&r, &mut z, nvecs);
            prop_assert!(z == zt_ref, "blocked adjoint sweep (par={:?}) not bitwise", par);
            let mut col = vec![Complex64::ZERO; n];
            for c in 0..nvecs {
                ilu.solve(&r[c * n..(c + 1) * n], &mut col);
                prop_assert!(col[..] == z_ref[c * n..(c + 1) * n],
                    "single-column sweep (par={:?}) column {} not bitwise", par, c);
                ilu.solve_adjoint(&r[c * n..(c + 1) * n], &mut col);
                prop_assert!(col[..] == zt_ref[c * n..(c + 1) * n],
                    "single-column adjoint sweep (par={:?}) column {} not bitwise", par, c);
            }
        }
    }

    /// Adjoint consistency of the block path: `⟨Y, A X⟩ = ⟨A† Y, X⟩`
    /// column-wise for the QEP operator applied through slabs.
    #[test]
    fn block_adjoint_identity_holds(
        seed in 0u64..1000,
        nvecs in 1usize..5,
        zre in -1.5f64..1.5,
        zim in -1.5f64..1.5,
        energy in -1.0f64..1.0,
    ) {
        prop_assume!(zre * zre + zim * zim > 0.05);
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = 8;
        let a = CMatrix::random(n, n, &mut rng);
        let h00 = &a + &a.adjoint();
        let h01 = CMatrix::random(n, n, &mut rng);
        let op00 = DenseOp::new(h00);
        let op01 = DenseOp::new(h01);
        let qep = QepProblem::new(&op00, &op01, energy, 1.0);
        let op = qep.operator(c64(zre, zim));
        let x: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
        let y: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
        let mut ax = vec![Complex64::ZERO; n * nvecs];
        op.apply_block(&x, &mut ax, nvecs);
        let mut aty = vec![Complex64::ZERO; n * nvecs];
        op.apply_adjoint_block(&y, &mut aty, nvecs);
        for c in 0..nvecs {
            let r = c * n..(c + 1) * n;
            // ⟨y_c, A x_c⟩ vs ⟨A† y_c, x_c⟩
            let lhs: Complex64 = ax[r.clone()].iter().zip(&y[r.clone()])
                .map(|(axi, yi)| yi.conj() * *axi).sum();
            let rhs: Complex64 = x[r.clone()].iter().zip(&aty[r.clone()])
                .map(|(xi, ayi)| ayi.conj() * *xi).sum();
            let scale = 1.0 + lhs.abs().max(rhs.abs());
            prop_assert!((lhs - rhs).abs() < 1e-10 * scale,
                "column {} adjoint defect: {:?} vs {:?}", c, lhs, rhs);
        }
    }

    /// Extraction robustness: whatever the (n_int, n_mm, n_rh, λ_min,
    /// energy) combination, `extract_from_moments` (via `solve_qep`) never
    /// emits a non-finite eigenvalue or residual, every returned pair lies
    /// inside the contour annulus, and the `(|λ|, arg λ)` sort key is a
    /// total order on the returned set — the invariants downstream
    /// consumers (classification, refinement, checkpoints) rely on.
    #[test]
    fn extraction_emits_only_finite_ordered_in_annulus_pairs(
        seed in 0u64..500,
        energy in -1.0f64..1.0,
        n_int in 4usize..12,
        n_mm in 1usize..4,
        n_rh in 1usize..4,
        lambda_min in 0.3f64..0.7,
    ) {
        use rand::SeedableRng;
        use cbs::core::{solve_qep, SsConfig};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let n = 6;
        let a = CMatrix::random(n, n, &mut rng);
        let h00 = &a + &a.adjoint();
        let h01 = CMatrix::random(n, n, &mut rng).scale(c64(0.3, 0.0));
        let op00 = DenseOp::new(h00);
        let op01 = DenseOp::new(h01);
        let qep = QepProblem::new(&op00, &op01, energy, 1.0);
        let config = SsConfig {
            n_int,
            n_mm,
            n_rh,
            lambda_min,
            bicg_tolerance: 1e-10,
            bicg_max_iterations: 2_000,
            residual_cutoff: 1e-4,
            majority_stop: false,
            ..SsConfig::small()
        };
        let result = solve_qep(&qep, &config);
        let contour = config.contour();
        for p in &result.eigenpairs {
            prop_assert!(
                p.lambda.re.is_finite() && p.lambda.im.is_finite(),
                "non-finite eigenvalue {:?}", p.lambda
            );
            prop_assert!(
                p.residual.is_finite() && p.residual >= 0.0,
                "bad residual {}", p.residual
            );
            prop_assert!(
                contour.contains(p.lambda, 0.0),
                "pair outside the annulus: {:?}", p.lambda
            );
        }
        // The sort key is totally ordered over the whole returned set (no
        // NaN keys hiding behind partial_cmp)...
        let keys: Vec<(f64, f64)> =
            result.eigenpairs.iter().map(|p| (p.lambda.abs(), p.lambda.arg())).collect();
        for (i, ka) in keys.iter().enumerate() {
            for kb in &keys[i + 1..] {
                prop_assert!(ka.partial_cmp(kb).is_some(), "incomparable sort keys");
            }
        }
        // ... and the returned order respects it.
        for w in keys.windows(2) {
            prop_assert!(
                w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Greater),
                "sort order violated: {:?} before {:?}", w[0], w[1]
            );
        }
    }

    /// Contour partition geometry: for any (angular x radial) slicing of
    /// any valid annulus, the claim cells tile the annulus **exactly** —
    /// every in-annulus λ is claimed by exactly one slice, that slice's
    /// integration contour strictly contains it, and any *other* slice
    /// whose integration region reaches λ does so only through its guard
    /// band (no overlap beyond the configured guards).
    #[test]
    fn partition_claim_cells_tile_the_annulus_exactly(
        angular in 1usize..6,
        radial in 1usize..4,
        lambda_min in 0.3f64..0.7,
        n_int in 4usize..24,
        radius_t in 0.02f64..0.98,
        angle in 0.0f64..std::f64::consts::TAU,
    ) {
        let contour = RingContour::new(lambda_min, n_int);
        let policy = SlicePolicy { angular, radial, ..SlicePolicy::single() };
        let p = ContourPartition::try_new(contour, policy).expect("valid policy");
        prop_assert!(p.len() == policy.slice_count());

        // A strictly in-annulus sample point.
        let t_max = -lambda_min.ln();
        let log_r = -t_max + 2.0 * t_max * radius_t;
        let lambda = Complex64::polar(log_r.exp(), angle);
        prop_assert!(contour.contains(lambda, 0.0));

        let claimants: Vec<usize> =
            (0..p.len()).filter(|&s| p.slices()[s].claims(lambda)).collect();
        prop_assert!(claimants.len() == 1, "λ = {:?} claimed by {:?}", lambda, &claimants);
        let owner = claimants[0];
        prop_assert!(p.claimant(lambda) == Some(owner));
        prop_assert!(
            p.slices()[owner].region().contains_integration(lambda, 0.0),
            "claimed λ = {:?} outside its own integration contour", lambda
        );

        // Overlap discipline: a non-owning slice may only reach λ through
        // its guard bands.
        let eps = 1e-9;
        for (s, slice) in p.slices().iter().enumerate() {
            if s == owner || !slice.region().contains_integration(lambda, 0.0) {
                continue;
            }
            let r = slice.region();
            let ang_ok = r.full_circle
                || angular_distance_to_sector(lambda.arg(), r.theta_lo, r.theta_hi)
                    <= r.guard + eps;
            let log_lambda = lambda.abs().ln();
            let rad_guard_lo = (r.r_lo.ln() - r.int_r_lo.ln()).max(0.0);
            let rad_guard_hi = (r.int_r_hi.ln() - r.r_hi.ln()).max(0.0);
            let rad_ok = (log_lambda >= r.r_lo.ln() - rad_guard_lo - eps)
                && (log_lambda <= r.r_hi.ln() + rad_guard_hi + eps);
            prop_assert!(
                ang_ok && rad_ok,
                "slice {} reaches λ = {:?} beyond its guard bands", s, lambda
            );
        }
    }

    /// Merge dedup invariants: merging is idempotent (re-merging the merged
    /// set changes nothing) and permutation-invariant (any input order
    /// yields the bitwise-identical merged set) — the property that makes
    /// the merged union independent of slice execution order.
    #[test]
    fn merge_dedup_is_idempotent_and_permutation_invariant(
        seed in 0u64..2000,
        n_states in 1usize..12,
        dup_every in 1usize..4,
        merge_tol in 1e-10f64..1e-6,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        // Synthetic claimed candidates: well-separated "true" states, some
        // of which appear again from a neighbouring slice with a
        // sub-tolerance perturbation and its own residual.
        let mut claimed: Vec<(usize, QepEigenpair)> = Vec::new();
        for i in 0..n_states {
            // Spacing far beyond merge_tol so distinct states never fuse.
            let lambda = Complex64::polar(
                0.6 + 0.1 * (i % 8) as f64,
                0.37 + 0.7 * i as f64,
            );
            let residual = rng.gen_range(1e-14..1e-7);
            claimed.push((
                i % 3,
                QepEigenpair { lambda, psi: CVector::zeros(1), residual },
            ));
            if i % dup_every == 0 {
                // A duplicate within tolerance, from another slice.
                let jitter = 0.3 * merge_tol * (1.0 + lambda.abs());
                let dup = QepEigenpair {
                    lambda: lambda + c64(jitter, -0.5 * jitter),
                    psi: CVector::zeros(1),
                    residual: rng.gen_range(1e-14..1e-7),
                };
                claimed.push(((i % 3) + 1, dup));
            }
        }

        let (merged, dropped) = merge_claimed(claimed.clone(), merge_tol);
        // Every duplicate was dropped, keeping the lower residual of each
        // fused pair.
        prop_assert!(merged.len() + dropped == claimed.len());
        prop_assert!(merged.len() == n_states);
        for (i, a) in merged.iter().enumerate() {
            for b in &merged[i + 1..] {
                prop_assert!(
                    (a.lambda - b.lambda).abs() > merge_tol,
                    "near-duplicates survived the merge"
                );
            }
        }

        // Idempotence: re-merging the merged set is the identity.
        let again_input: Vec<(usize, QepEigenpair)> =
            merged.iter().cloned().map(|p| (0usize, p)).collect();
        let (again, dropped_again) = merge_claimed(again_input, merge_tol);
        prop_assert!(dropped_again == 0usize);
        prop_assert!(again.len() == merged.len());
        for (a, b) in again.iter().zip(&merged) {
            prop_assert!(a.lambda.re.to_bits() == b.lambda.re.to_bits());
            prop_assert!(a.lambda.im.to_bits() == b.lambda.im.to_bits());
            prop_assert!(a.residual.to_bits() == b.residual.to_bits());
        }

        // Permutation invariance: a seeded shuffle of the input yields the
        // bitwise-identical merged set.
        let mut shuffled = claimed;
        for i in (1..shuffled.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            shuffled.swap(i, j);
        }
        let (merged_shuffled, dropped_shuffled) = merge_claimed(shuffled, merge_tol);
        prop_assert!(dropped_shuffled == dropped);
        prop_assert!(merged_shuffled.len() == merged.len());
        for (a, b) in merged_shuffled.iter().zip(&merged) {
            prop_assert!(a.lambda.re.to_bits() == b.lambda.re.to_bits());
            prop_assert!(a.lambda.im.to_bits() == b.lambda.im.to_bits());
            prop_assert!(a.residual.to_bits() == b.residual.to_bits());
        }
    }

    /// λ → k → λ round-trips through the Brillouin-zone folding.
    #[test]
    fn lambda_k_roundtrip(
        radius in 0.5f64..2.0,
        angle in -std::f64::consts::PI..std::f64::consts::PI,
        period in 0.5f64..10.0,
    ) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let n = 4;
        let a = CMatrix::random(n, n, &mut rng);
        let op00 = DenseOp::new(&a + &a.adjoint());
        let op01 = DenseOp::new(CMatrix::random(n, n, &mut rng));
        let qep = QepProblem::new(&op00, &op01, 0.0, period);
        let lambda = Complex64::polar(radius, angle);
        let (k_re, k_im) = qep.lambda_to_k(lambda);
        let back = Complex64::new(0.0, 1.0) * c64(k_re, k_im) * period;
        let reconstructed = back.exp();
        prop_assert!((reconstructed - lambda).abs() < 1e-10 * (1.0 + lambda.abs()));
    }

    /// Cost-model sanity over arbitrary valid calibration samples: every
    /// prediction is finite and strictly positive, and at a fixed policy
    /// cell predictions are monotone in both operator nonzeros and scan
    /// energy count — more work never predicts a shorter sweep.
    #[test]
    fn cost_model_predictions_are_finite_positive_and_monotone(
        per_rhs_bit in 0u8..2,
        precond in 0u8..4,
        dim in 8usize..4096,
        per_row in 1usize..64,
        n_rh in 1usize..16,
        energies in 1usize..64,
        iterations in 1u64..100_000,
        traversals in 0u64..100_000,
        wall_us in 1u64..10_000_000,
        extraction_frac in 0.0f64..0.9,
        w_energies in 1usize..512,
        w_nnz_scale in 1usize..8,
    ) {
        use cbs::parallel::{CalibrationSample, CellId, CostModel, WorkloadSpec};
        let cell = CellId { per_rhs: per_rhs_bit == 1, precond, slices: 1 };
        let nnz = dim * per_row;
        let wall_ns = wall_us * 1_000;
        let sample = CalibrationSample {
            cell,
            dimension: dim,
            nnz,
            n_rh,
            energies,
            iterations,
            traversals,
            assemblies: 0,
            wall_ns,
            kernel_wall_ns: 0,
            precond_wall_ns: 0,
            extraction_wall_ns: (wall_ns as f64 * extraction_frac) as u64,
        };
        let model = CostModel::fit(&[sample]).expect("valid sample must fit");
        let w = WorkloadSpec { dimension: dim, nnz: nnz * w_nnz_scale, n_rh, energies: w_energies };
        let t = model.predict(cell, &w).expect("fitted cell must predict");
        prop_assert!(t.is_finite() && t > 0.0, "prediction {t} is not finite-positive");
        let t_more_nnz = model.predict(cell, &WorkloadSpec { nnz: w.nnz * 2, ..w }).unwrap();
        prop_assert!(t_more_nnz >= t, "doubling nnz shrank the prediction: {t_more_nnz} < {t}");
        let t_more_e =
            model.predict(cell, &WorkloadSpec { energies: w.energies * 2, ..w }).unwrap();
        prop_assert!(t_more_e >= t, "doubling energies shrank the prediction: {t_more_e} < {t}");
        // The slice tuner always returns a usable count, whatever the
        // workload shape.
        let s = model.tune_slices(cell, &w, 8, 0.10);
        prop_assert!((1..=8).contains(&s), "slice tuner returned {s}");
    }

    /// Degenerate calibration data never panics the tuner: `fit` refuses
    /// empty and all-invalid sample sets (any required-nonzero axis zeroed),
    /// and `resolve_auto(None)` falls back to the default fixed policy cell
    /// with `auto` cleared.
    #[test]
    fn degenerate_samples_fall_back_to_the_default_cell(
        per_rhs_bit in 0u8..2,
        precond in 0u8..4,
        dim in 1usize..64,
        zero_field in 0usize..4,
    ) {
        use cbs::core::SsConfig;
        use cbs::parallel::{CalibrationSample, CellId, CostModel};
        let mut s = CalibrationSample {
            cell: CellId { per_rhs: per_rhs_bit == 1, precond, slices: 1 },
            dimension: dim,
            nnz: dim * 7,
            n_rh: 2,
            energies: 1,
            iterations: 100,
            traversals: 50,
            assemblies: 0,
            wall_ns: 1_000_000,
            kernel_wall_ns: 0,
            precond_wall_ns: 0,
            extraction_wall_ns: 0,
        };
        prop_assert!(s.is_valid());
        match zero_field {
            0 => s.iterations = 0,
            1 => s.wall_ns = 0,
            2 => s.dimension = 0,
            _ => s.nnz = 0,
        }
        prop_assert!(!s.is_valid());
        prop_assert!(CostModel::fit(&[s]).is_none(), "degenerate sample must not fit");
        prop_assert!(CostModel::fit(&[]).is_none(), "empty sample set must not fit");

        // The sweep-side contract on a failed fit: a concrete default cell,
        // auto cleared, so the checkpoint always records what actually ran.
        let resolved = SsConfig::auto().resolve_auto(None);
        let default = SsConfig::default();
        prop_assert!(!resolved.auto, "fallback must clear auto");
        prop_assert!(resolved.block == default.block, "fallback block is not the default");
        prop_assert!(resolved.precond == default.precond, "fallback precond is not the default");
        prop_assert!(
            resolved.slice.slice_count() == default.slice.slice_count(),
            "fallback slicing is not the default"
        );
    }
}
