//! Regression tests of the block (multi-vector) data path: the per-node
//! block jobs must reproduce the per-rhs path exactly, cut the operator
//! traversal count, and preserve every determinism guarantee the per-rhs
//! path established (serial ≡ rayon bitwise, warm sweep kill/resume
//! bit-identity).

use rand::SeedableRng;

use cbs::core::{solve_qep_with, BlockPolicy, QepProblem, SsConfig};
use cbs::dft::{bulk_al_100, grid_for_structure, BlockHamiltonian, HamiltonianParams};
use cbs::linalg::{c64, CMatrix};
use cbs::parallel::{RayonExecutor, SerialExecutor};
use cbs::sparse::DenseOp;
use cbs::sweep::{sweep_cbs, RunOptions, RunOutcome, SweepCheckpoint, SweepConfig};

fn random_blocks(n: usize, seed: u64) -> (CMatrix, CMatrix) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let a = CMatrix::random(n, n, &mut rng);
    let h00 = (&a + &a.adjoint()).scale(c64(0.5, 0.0));
    let h01 = CMatrix::random(n, n, &mut rng).scale(c64(0.35, 0.0));
    (h00, h01)
}

/// The fig6 Al(100) system at the bench resolution.
fn fig6_hamiltonian() -> BlockHamiltonian {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, 1.5);
    BlockHamiltonian::build(
        grid,
        &s,
        HamiltonianParams { fd: cbs::grid::FdOrder::new(1), include_nonlocal: true },
    )
}

fn fig6_config(block: BlockPolicy) -> SsConfig {
    SsConfig { n_int: 8, n_mm: 4, n_rh: 4, bicg_max_iterations: 400, block, ..SsConfig::small() }
}

/// Per-node block solves on the fig6 Al(100) system reproduce the per-rhs
/// eigenvalues (the issue's ≤ 1e-10 bound holds with margin: the paths are
/// bit-identical) while cutting the operator-traversal count by ≈ N_rh×.
#[test]
fn fig6_block_path_matches_per_rhs_path_and_cuts_traversals() {
    let h = fig6_hamiltonian();
    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, 0.15, h.period());

    let per_rhs = solve_qep_with(&problem, &fig6_config(BlockPolicy::PerRhs), &SerialExecutor);
    let per_node = solve_qep_with(&problem, &fig6_config(BlockPolicy::PerNode), &SerialExecutor);

    assert!(!per_rhs.eigenpairs.is_empty(), "fig6 config found no eigenpairs");
    assert_eq!(per_rhs.eigenpairs.len(), per_node.eigenpairs.len());
    for (a, b) in per_rhs.eigenpairs.iter().zip(&per_node.eigenpairs) {
        assert!(
            (a.lambda - b.lambda).abs() <= 1e-10,
            "block eigenvalue drifted: {:?} vs {:?}",
            a.lambda,
            b.lambda
        );
        assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
        assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
        assert_eq!(a.residual.to_bits(), b.residual.to_bits());
    }
    // Identical per-column work...
    assert_eq!(per_rhs.total_bicg_iterations, per_node.total_bicg_iterations);
    assert_eq!(per_rhs.total_matvecs, per_node.total_matvecs);
    // ... with the per-rhs path traversing the operator storage once per
    // matvec (x3 for the matrix-free P(z), which walks H00/H01/H01†), and
    // the per-node path fusing each iteration's N_rh matvecs into one
    // weighted traversal (deflation means slow columns can push the ratio
    // slightly below N_rh, never below N_rh - 1 on this system).
    let n_rh = 4;
    eprintln!(
        "fig6 traversals: per-rhs {} vs per-node {} ({:.2}x reduction)",
        per_rhs.total_traversals,
        per_node.total_traversals,
        per_rhs.total_traversals as f64 / per_node.total_traversals as f64
    );
    assert_eq!(per_rhs.total_traversals, 3 * per_rhs.total_matvecs);
    assert!(
        per_rhs.total_traversals >= (n_rh - 1) * per_node.total_traversals,
        "traversal reduction below (N_rh - 1)x: per-node {} vs per-rhs {}",
        per_node.total_traversals,
        per_rhs.total_traversals
    );
}

/// Serial and rayon executors stay bitwise identical within each policy on
/// the fig6 system.
#[test]
fn fig6_per_node_policy_is_executor_independent() {
    let h = fig6_hamiltonian();
    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, 0.15, h.period());
    let config = fig6_config(BlockPolicy::PerNode);

    let serial = solve_qep_with(&problem, &config, &SerialExecutor);
    let rayon = solve_qep_with(&problem, &config, &RayonExecutor);

    for (ms, mr) in serial.projected_moments.iter().zip(&rayon.projected_moments) {
        for r in 0..config.n_rh {
            for c in 0..config.n_rh {
                assert_eq!(ms[(r, c)].re.to_bits(), mr[(r, c)].re.to_bits());
                assert_eq!(ms[(r, c)].im.to_bits(), mr[(r, c)].im.to_bits());
            }
        }
    }
    assert_eq!(serial.eigenpairs.len(), rayon.eigenpairs.len());
    for (a, b) in serial.eigenpairs.iter().zip(&rayon.eigenpairs) {
        assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
        assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
    }
    assert_eq!(serial.total_traversals, rayon.total_traversals);
}

/// On small dense systems the two policies agree bit-for-bit through the
/// whole solver (moments, eigenvalues, histories), with and without the
/// majority-stop rule.
#[test]
fn block_policies_agree_bitwise_on_dense_systems() {
    let (h00, h01) = random_blocks(12, 81);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let qep = QepProblem::new(&op00, &op01, 0.1, 1.0);
    for majority in [false, true] {
        let base = SsConfig { n_rh: 6, n_mm: 4, majority_stop: majority, ..SsConfig::small() };
        let per_rhs =
            solve_qep_with(&qep, &SsConfig { block: BlockPolicy::PerRhs, ..base }, &SerialExecutor);
        let per_node = solve_qep_with(
            &qep,
            &SsConfig { block: BlockPolicy::PerNode, ..base },
            &SerialExecutor,
        );
        assert_eq!(per_rhs.eigenpairs.len(), per_node.eigenpairs.len());
        assert!(!per_rhs.eigenpairs.is_empty());
        for (a, b) in per_rhs.eigenpairs.iter().zip(&per_node.eigenpairs) {
            assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
            assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
        }
        for (ha, hb) in per_rhs.solve_histories.iter().zip(&per_node.solve_histories) {
            assert_eq!(ha.residuals, hb.residuals);
            assert_eq!(ha.matvecs, hb.matvecs);
        }
        assert_eq!(per_rhs.total_bicg_iterations, per_node.total_bicg_iterations);
    }
}

/// The warm-started sweep is policy-invariant, and a killed per-node block
/// sweep resumes bit-identically — including its traversal counters.
#[test]
fn warm_block_sweep_is_policy_invariant_and_resumes_bit_identically() {
    let (h00, h01) = random_blocks(10, 82);
    let op00 = DenseOp::new(h00);
    let op01 = DenseOp::new(h01);
    let energies: Vec<f64> = (0..10).map(|i| -0.25 + 0.05 * i as f64).collect();
    let ss = SsConfig {
        n_int: 16,
        n_mm: 4,
        n_rh: 6,
        bicg_tolerance: 1e-11,
        residual_cutoff: 1e-6,
        ..SsConfig::small()
    };
    let config = |block: BlockPolicy| SweepConfig {
        initial_round: 4,
        ..SweepConfig::new(SsConfig { block, ..ss })
    };

    let per_node =
        sweep_cbs(&op00, &op01, 1.5, &energies, &config(BlockPolicy::PerNode), &SerialExecutor);
    let per_rhs =
        sweep_cbs(&op00, &op01, 1.5, &energies, &config(BlockPolicy::PerRhs), &SerialExecutor);
    assert_eq!(per_node.cbs.points.len(), per_rhs.cbs.points.len());
    for (a, b) in per_node.cbs.points.iter().zip(&per_rhs.cbs.points) {
        assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
        assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
        assert_eq!(a.k_im.to_bits(), b.k_im.to_bits());
    }
    assert_eq!(per_node.stats.total_bicg_iterations, per_rhs.stats.total_bicg_iterations);
    assert_eq!(per_node.stats.total_matvecs, per_rhs.stats.total_matvecs);
    assert!(per_node.stats.operator_traversals * 2 < per_rhs.stats.operator_traversals);
    // A block-policy switch is *not* part of the checkpoint fingerprint —
    // the results are bitwise identical, so resuming across it is sound.
    assert_eq!(
        config(BlockPolicy::PerNode).fingerprint(1.5),
        config(BlockPolicy::PerRhs).fingerprint(1.5)
    );

    // Kill the per-node sweep partway, resume, compare bit-for-bit.
    let sweep = cbs::sweep::EnergySweep::new(&op00, &op01, 1.5, config(BlockPolicy::PerNode));
    let dir = std::env::temp_dir().join(format!("cbs_block_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.cp");
    let outcome = sweep
        .run_with(
            &energies,
            &SerialExecutor,
            RunOptions {
                checkpoint_path: Some(&path),
                max_new_energies: Some(5),
                ..RunOptions::default()
            },
        )
        .unwrap();
    let RunOutcome::Interrupted(_) = outcome else { panic!("budget of 5 should interrupt") };
    let resumed = sweep
        .run_with(
            &energies,
            &SerialExecutor,
            RunOptions {
                resume: Some(SweepCheckpoint::load(&path).unwrap()),
                ..RunOptions::default()
            },
        )
        .unwrap()
        .expect_complete("resume must finish");
    assert_eq!(per_node.cbs.points.len(), resumed.cbs.points.len());
    for (a, b) in per_node.cbs.points.iter().zip(&resumed.cbs.points) {
        assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
        assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
        assert_eq!(a.residual.to_bits(), b.residual.to_bits());
    }
    assert_eq!(per_node.stats.total_bicg_iterations, resumed.stats.total_bicg_iterations);
    assert_eq!(per_node.stats.operator_traversals, resumed.stats.operator_traversals);
    for (a, b) in per_node.records.iter().zip(&resumed.records) {
        assert_eq!(a.stats, b.stats, "per-energy counters differ after resume at E = {}", a.energy);
    }
    std::fs::remove_dir_all(&dir).ok();
}
