//! Cross-crate integration tests: structure → grid → Hamiltonian → QEP →
//! Sakurai-Sugiura CBS, cross-checked against the conventional band
//! structure and the OBM baseline.  These exercise the full pipeline the
//! paper's experiments rely on, at a resolution small enough for CI.

use cbs::core::{compute_cbs, solve_qep, QepProblem, SsConfig, PROPAGATING_TOLERANCE};
use cbs::dft::{
    band_structure, bulk_al_100, fermi_energy, grid_for_structure, BlockHamiltonian,
    HamiltonianParams,
};
use cbs::grid::FdOrder;
use cbs::linalg::Complex64;
use cbs::obm::{obm_solve, ObmConfig};
use cbs::sparse::LinearOperator;

fn al_hamiltonian(spacing: f64, nf: usize) -> BlockHamiltonian {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, spacing);
    BlockHamiltonian::build(
        grid,
        &s,
        HamiltonianParams { fd: FdOrder::new(nf), include_nonlocal: true },
    )
}

/// The real-k solutions of the CBS must land on the conventional band
/// structure (the paper's Figure 6 accuracy statement).
#[test]
fn cbs_real_branch_agrees_with_conventional_bands() {
    let h = al_hamiltonian(1.3, 2);
    let s = bulk_al_100(1);
    let ef = fermi_energy(&h, s.valence_electrons(), 3);
    let config = SsConfig {
        n_int: 24,
        n_mm: 6,
        n_rh: 8,
        bicg_tolerance: 1e-11,
        residual_cutoff: 1e-5,
        majority_stop: false,
        ..SsConfig::paper()
    };
    let energies = [ef - 0.05, ef, ef + 0.05];
    let run = compute_cbs(&h.h00(), &h.h01(), h.period(), &energies, &config);
    assert!(!run.cbs.points.is_empty(), "no CBS solutions found near EF");

    // Coarse sanity curve (plotting reference) ...
    let bands = band_structure(&h, 25, 30.min(h.dim()));
    assert!(bands.min_energy() < ef && bands.max_energy() > ef);
    // ... and an exact check: every propagating CBS state (E, k) must be an
    // eigenvalue of the Bloch Hamiltonian evaluated at that exact k.
    let mut checked = 0;
    for p in run.cbs.propagating() {
        let hk = h.bloch_hamiltonian_dense(p.k_re);
        let evals = cbs::linalg::eigenvalues(&hk).expect("Bloch diagonalization failed");
        let d = evals.iter().map(|e| (e.re - p.energy).abs()).fold(f64::INFINITY, f64::min);
        assert!(
            d < 1e-4,
            "propagating state at E={} k={} is {d} Ha away from the exact band energy",
            p.energy,
            p.k_re
        );
        checked += 1;
    }
    // Metallic aluminium must have propagating states at the Fermi energy.
    assert!(checked > 0, "no propagating states found for a metal at EF");
    // Every solution is classified one way or the other.
    assert_eq!(run.cbs.points.len(), run.cbs.propagating().count() + run.cbs.evanescent().count());
}

/// The Sakurai-Sugiura solver and the OBM baseline must agree on the
/// eigenvalues inside the annulus (the correctness premise of Figure 4).
#[test]
fn ss_and_obm_agree_on_the_annulus_spectrum() {
    let h = al_hamiltonian(1.45, 1);
    let energy = 0.15;
    let config = SsConfig {
        n_int: 24,
        n_mm: 6,
        n_rh: 8,
        bicg_tolerance: 1e-11,
        residual_cutoff: 1e-5,
        majority_stop: false,
        ..SsConfig::paper()
    };
    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, energy, h.period());
    let ss = solve_qep(&problem, &config);
    let obm = obm_solve(&h.h00_csr(), &h.h01_csr(), energy, &ObmConfig::default());

    let close = |a: Complex64, b: Complex64| (a - b).abs() < 2e-5 * (1.0 + b.abs());
    let mut compared = 0;
    for p in &ss.eigenpairs {
        if p.lambda.abs() < 0.55 || p.lambda.abs() > 1.8 {
            continue;
        }
        assert!(
            obm.lambdas.iter().any(|&l| close(l, p.lambda)),
            "SS found {:?} which OBM missed ({:?})",
            p.lambda,
            obm.lambdas
        );
        compared += 1;
    }
    assert!(compared > 0, "nothing to compare between SS and OBM");
}

/// Eigenpairs returned by the full pipeline satisfy the QEP to the
/// advertised residual and respect the λ ↔ 1/λ̄ symmetry.
#[test]
fn full_pipeline_eigenpairs_are_consistent() {
    let h = al_hamiltonian(1.35, 2);
    let energy = 0.1;
    let config = SsConfig {
        n_int: 24,
        n_mm: 6,
        n_rh: 8,
        residual_cutoff: 1e-5,
        majority_stop: false,
        ..SsConfig::paper()
    };
    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, energy, h.period());
    let ss = solve_qep(&problem, &config);
    assert!(!ss.eigenpairs.is_empty());
    for p in &ss.eigenpairs {
        assert!(p.residual < 1e-5);
        // Propagating ⇔ |λ| = 1 within tolerance.
        let prop = (p.lambda.abs() - 1.0).abs() < PROPAGATING_TOLERANCE;
        let (k_re, k_im) = problem.lambda_to_k(p.lambda);
        if prop {
            assert!(k_im.abs() < 1e-5);
        } else {
            assert!(k_im.abs() > 0.0);
        }
        assert!(k_re.is_finite());
    }
    // Histories exist for every (quadrature point, rhs) pair.
    assert_eq!(ss.solve_histories.len(), config.n_int * config.n_rh);
    // Memory of the matrix-free operator is far below dense storage.
    let dense = h.dim() * h.dim() * std::mem::size_of::<Complex64>();
    assert!(h.h00().memory_bytes() * 5 < dense);
}

/// The majority-stop load-balancing rule must not change the computed
/// spectrum (only the work distribution).
#[test]
fn majority_stop_rule_preserves_the_spectrum() {
    let h = al_hamiltonian(1.45, 1);
    let energy = 0.1;
    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, energy, h.period());
    let base = SsConfig {
        n_int: 16,
        n_mm: 6,
        n_rh: 6,
        residual_cutoff: 1e-5,
        majority_stop: false,
        ..SsConfig::paper()
    };
    let with_rule = SsConfig { majority_stop: true, ..base };
    let a = solve_qep(&problem, &base);
    let b = solve_qep(&problem, &with_rule);
    assert_eq!(a.eigenpairs.len(), b.eigenpairs.len());
    for (pa, pb) in a.eigenpairs.iter().zip(&b.eigenpairs) {
        assert!((pa.lambda - pb.lambda).abs() < 1e-6 * (1.0 + pa.lambda.abs()));
    }
}
