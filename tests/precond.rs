//! Acceptance tests of the assembled-shifted-operator fast path and the
//! ILU(0)-preconditioned dual BiCG (`PrecondPolicy`):
//!
//! * counter-locked: on the fig6 Al(100) system the assembled operator
//!   performs exactly 1/3 of the matrix-free storage traversals per BiCG
//!   iteration (one CSR walk instead of H₀₀ + H₀₁ + H₀₁†);
//! * ILU(0) preconditioning reduces the total BiCG iteration count at equal
//!   tolerance while finding the same physics;
//! * serial and rayon executors stay bit-identical within every policy;
//! * the default `MatrixFree` path is bitwise unchanged, pattern attached
//!   or not;
//! * an assembled warm sweep checkpoints and resumes bit-identically, and
//!   the precond policy is part of the resume fingerprint.

use rand::SeedableRng;

use cbs::core::{solve_qep_with, PrecondPolicy, QepProblem, SsConfig};
use cbs::dft::{bulk_al_100, grid_for_structure, BlockHamiltonian, HamiltonianParams};
use cbs::linalg::{c64, CMatrix};
use cbs::parallel::{RayonExecutor, SerialExecutor};
use cbs::sparse::{AssembledPattern, CsrMatrix};
use cbs::sweep::{EnergySweep, RunOptions, RunOutcome, SweepCheckpoint, SweepConfig};

/// The fig6 Al(100) system at the bench resolution.
fn fig6_hamiltonian() -> BlockHamiltonian {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, 1.5);
    BlockHamiltonian::build(
        grid,
        &s,
        HamiltonianParams { fd: cbs::grid::FdOrder::new(1), include_nonlocal: true },
    )
}

fn fig6_config(precond: PrecondPolicy) -> SsConfig {
    SsConfig { n_int: 8, n_mm: 4, n_rh: 4, bicg_max_iterations: 400, precond, ..SsConfig::small() }
}

/// Counter-locked traversal ratio: with the iteration count pinned (a
/// tolerance no solve can reach), the assembled path must perform *exactly*
/// one third of the matrix-free path's solve-phase storage traversals — per
/// iteration, per node, in total.
#[test]
fn fig6_assembled_traversals_per_iteration_are_one_third_of_matrix_free() {
    let h = fig6_hamiltonian();
    let pattern = h.qep_pattern();
    let h00 = h.h00();
    let h01 = h.h01();
    let pinned = |precond| SsConfig {
        bicg_tolerance: 1e-300,
        bicg_max_iterations: 12,
        majority_stop: false,
        ..fig6_config(precond)
    };

    let mf_problem = QepProblem::new(&h00, &h01, 0.15, h.period());
    let mf = solve_qep_with(&mf_problem, &pinned(PrecondPolicy::MatrixFree), &SerialExecutor);
    let asm_problem = QepProblem::new(&h00, &h01, 0.15, h.period()).with_pattern(&pattern);
    let asm = solve_qep_with(&asm_problem, &pinned(PrecondPolicy::Assembled), &SerialExecutor);

    // Identical iteration structure...
    assert!(mf.total_bicg_iterations > 0);
    assert_eq!(mf.total_bicg_iterations, asm.total_bicg_iterations);
    // ... and exactly 3x fewer solve-phase traversals (extraction residual
    // checks run matrix-free under every policy, so they are subtracted).
    let mf_solve = mf.total_traversals - mf.extraction_traversals;
    let asm_solve = asm.total_traversals - asm.extraction_traversals;
    eprintln!(
        "fig6 solve traversals: matrix-free {mf_solve} vs assembled {asm_solve} \
         over {} iterations",
        mf.total_bicg_iterations
    );
    assert_eq!(asm_solve * 3, mf_solve, "assembled path must cut traversals exactly 3x");
    // Per-iteration statement of the acceptance criterion.
    let mf_rate = mf_solve as f64 / mf.total_bicg_iterations as f64;
    let asm_rate = asm_solve as f64 / asm.total_bicg_iterations as f64;
    assert!(asm_rate <= mf_rate / 3.0 + 1e-12, "assembled {asm_rate} vs matrix-free {mf_rate}");
    // Assembly accounting: one refill per quadrature node, none matrix-free.
    assert_eq!(asm.operator_assemblies, 8);
    assert_eq!(mf.operator_assemblies, 0);
}

/// Physics parity and the iteration-count lever: the assembled and
/// ILU(0)-preconditioned policies find the matrix-free eigenpairs, and the
/// preconditioner reduces the total BiCG iteration count at equal tolerance.
#[test]
fn fig6_ilu_cuts_iterations_and_policies_agree_on_the_physics() {
    let h = fig6_hamiltonian();
    let pattern = h.qep_pattern();
    let h00 = h.h00();
    let h01 = h.h01();
    let solve = |precond| {
        let problem = QepProblem::new(&h00, &h01, 0.15, h.period()).with_pattern(&pattern);
        solve_qep_with(&problem, &fig6_config(precond), &SerialExecutor)
    };
    let mf = solve(PrecondPolicy::MatrixFree);
    let asm = solve(PrecondPolicy::Assembled);
    let ilu = solve(PrecondPolicy::AssembledIlu0);

    assert!(!mf.eigenpairs.is_empty(), "fig6 config found no eigenpairs");
    for other in [&asm, &ilu] {
        assert_eq!(mf.eigenpairs.len(), other.eigenpairs.len());
        for (a, b) in mf.eigenpairs.iter().zip(&other.eigenpairs) {
            assert!(
                (a.lambda - b.lambda).abs() <= 1e-8 * (1.0 + a.lambda.abs()),
                "eigenvalue drifted across policies: {:?} vs {:?}",
                a.lambda,
                b.lambda
            );
        }
    }
    // The iteration-count lever, at equal tolerance.
    eprintln!(
        "fig6 BiCG iterations: matrix-free {} / assembled {} / assembled-ilu0 {}",
        mf.total_bicg_iterations, asm.total_bicg_iterations, ilu.total_bicg_iterations
    );
    assert!(
        ilu.total_bicg_iterations < asm.total_bicg_iterations,
        "ILU(0) did not reduce iterations: {} vs unpreconditioned {}",
        ilu.total_bicg_iterations,
        asm.total_bicg_iterations
    );
    assert!(ilu.total_bicg_iterations < mf.total_bicg_iterations);
}

/// Serial and rayon executors are bit-identical within every policy.
#[test]
fn fig6_every_policy_is_executor_independent_bitwise() {
    let h = fig6_hamiltonian();
    let pattern = h.qep_pattern();
    let (pattern_sparse, projector) = h.qep_factored();
    let h00 = h.h00();
    let h01 = h.h01();
    for precond in [
        PrecondPolicy::MatrixFree,
        PrecondPolicy::Assembled,
        PrecondPolicy::AssembledIlu0,
        PrecondPolicy::AssembledIlu0Smw,
    ] {
        let config = fig6_config(precond);
        // The SMW policy is only distinct with a projector attached — give
        // it the factored problem so the correction is actually exercised.
        let problem = if precond == PrecondPolicy::AssembledIlu0Smw {
            QepProblem::new(&h00, &h01, 0.15, h.period())
                .with_pattern(&pattern_sparse)
                .with_projector(&projector)
        } else {
            QepProblem::new(&h00, &h01, 0.15, h.period()).with_pattern(&pattern)
        };
        let serial = solve_qep_with(&problem, &config, &SerialExecutor);
        let rayon = solve_qep_with(&problem, &config, &RayonExecutor);
        for (ms, mr) in serial.projected_moments.iter().zip(&rayon.projected_moments) {
            for r in 0..config.n_rh {
                for c in 0..config.n_rh {
                    assert_eq!(ms[(r, c)].re.to_bits(), mr[(r, c)].re.to_bits(), "{precond:?}");
                    assert_eq!(ms[(r, c)].im.to_bits(), mr[(r, c)].im.to_bits(), "{precond:?}");
                }
            }
        }
        assert_eq!(serial.eigenpairs.len(), rayon.eigenpairs.len());
        for (a, b) in serial.eigenpairs.iter().zip(&rayon.eigenpairs) {
            assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits(), "{precond:?}");
            assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits(), "{precond:?}");
        }
        assert_eq!(serial.total_traversals, rayon.total_traversals, "{precond:?}");
        assert_eq!(serial.operator_assemblies, rayon.operator_assemblies, "{precond:?}");
    }
}

/// The default `MatrixFree` policy is bitwise unchanged: attaching a
/// pattern (or not) must not perturb a single bit of its results.
#[test]
fn matrix_free_policy_is_bitwise_unchanged_by_pattern_attachment() {
    let h = fig6_hamiltonian();
    let pattern = h.qep_pattern();
    let h00 = h.h00();
    let h01 = h.h01();
    let config = fig6_config(PrecondPolicy::MatrixFree);

    let bare_problem = QepProblem::new(&h00, &h01, 0.15, h.period());
    let bare = solve_qep_with(&bare_problem, &config, &SerialExecutor);
    let with_problem = QepProblem::new(&h00, &h01, 0.15, h.period()).with_pattern(&pattern);
    let with = solve_qep_with(&with_problem, &config, &SerialExecutor);

    assert_eq!(bare.eigenpairs.len(), with.eigenpairs.len());
    for (a, b) in bare.eigenpairs.iter().zip(&with.eigenpairs) {
        assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
        assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
        assert_eq!(a.residual.to_bits(), b.residual.to_bits());
    }
    for (ms, mw) in bare.projected_moments.iter().zip(&with.projected_moments) {
        for r in 0..config.n_rh {
            for c in 0..config.n_rh {
                assert_eq!(ms[(r, c)].re.to_bits(), mw[(r, c)].re.to_bits());
                assert_eq!(ms[(r, c)].im.to_bits(), mw[(r, c)].im.to_bits());
            }
        }
    }
    assert_eq!(bare.total_matvecs, with.total_matvecs);
    assert_eq!(bare.total_traversals, with.total_traversals);
    assert_eq!(bare.operator_assemblies, 0);
    assert_eq!(with.operator_assemblies, 0);
}

/// The factored-projector assembled path (sparse-only pattern + low-rank
/// tail) finds the same physics as the dense-expansion pattern on fig6
/// Al(100), for both assembled policies — while carrying strictly fewer
/// stored entries through every refill and ILU(0) sweep.
#[test]
fn fig6_factored_projector_agrees_with_dense_expansion() {
    let h = fig6_hamiltonian();
    let pattern_full = h.qep_pattern();
    let (pattern_sparse, projector) = h.qep_factored();
    assert!(!projector.is_empty(), "fig6 must carry non-local projectors");
    assert!(
        pattern_sparse.nnz() < pattern_full.nnz(),
        "sparse-only pattern must be smaller than the projector-expanded one \
         ({} vs {})",
        pattern_sparse.nnz(),
        pattern_full.nnz()
    );
    let h00 = h.h00();
    let h01 = h.h01();
    for precond in [PrecondPolicy::Assembled, PrecondPolicy::AssembledIlu0] {
        let full_problem =
            QepProblem::new(&h00, &h01, 0.15, h.period()).with_pattern(&pattern_full);
        let full = solve_qep_with(&full_problem, &fig6_config(precond), &SerialExecutor);
        let fact_problem = QepProblem::new(&h00, &h01, 0.15, h.period())
            .with_pattern(&pattern_sparse)
            .with_projector(&projector);
        let fact = solve_qep_with(&fact_problem, &fig6_config(precond), &SerialExecutor);
        assert!(!full.eigenpairs.is_empty(), "{precond:?}: expansion found no eigenpairs");
        assert_eq!(
            full.eigenpairs.len(),
            fact.eigenpairs.len(),
            "{precond:?}: factored path changed the accepted set"
        );
        for (a, b) in full.eigenpairs.iter().zip(&fact.eigenpairs) {
            assert!(
                (a.lambda - b.lambda).abs() <= 1e-8 * (1.0 + a.lambda.abs()),
                "{precond:?}: eigenvalue drifted: {:?} vs {:?}",
                a.lambda,
                b.lambda
            );
        }
        // Both count as assembled runs (one refill per quadrature node).
        assert_eq!(fact.operator_assemblies, full.operator_assemblies);
    }
}

/// The SMW-complete preconditioner (`PrecondPolicy::AssembledIlu0Smw`):
/// on fig6 Al(100) with the factored projector attached, it finds the same
/// physics as ILU(0) over the dense-expanded pattern — the configuration
/// whose preconditioner also sees all of `P(z)` — and it does not converge
/// slower than the tail-blind plain ILU(0) on the same factored problem.
#[test]
fn fig6_smw_preconditioner_agrees_with_dense_expanded_ilu() {
    let h = fig6_hamiltonian();
    let pattern_full = h.qep_pattern();
    let (pattern_sparse, projector) = h.qep_factored();
    assert!(!projector.is_empty(), "fig6 must carry non-local projectors");
    let h00 = h.h00();
    let h01 = h.h01();

    // Reference: ILU(0) of the dense-expanded CSR (projector folded into
    // the pattern, so the factorization covers the full operator).
    let full_problem = QepProblem::new(&h00, &h01, 0.15, h.period()).with_pattern(&pattern_full);
    let full =
        solve_qep_with(&full_problem, &fig6_config(PrecondPolicy::AssembledIlu0), &SerialExecutor);

    // Factored problem, solved with the tail-blind ILU(0) and with the
    // SMW completion.
    let solve_factored = |precond| {
        let problem = QepProblem::new(&h00, &h01, 0.15, h.period())
            .with_pattern(&pattern_sparse)
            .with_projector(&projector);
        solve_qep_with(&problem, &fig6_config(precond), &SerialExecutor)
    };
    let plain = solve_factored(PrecondPolicy::AssembledIlu0);
    let smw = solve_factored(PrecondPolicy::AssembledIlu0Smw);

    assert!(!full.eigenpairs.is_empty(), "dense-expansion reference found no eigenpairs");
    for (name, run) in [("plain", &plain), ("smw", &smw)] {
        assert_eq!(
            full.eigenpairs.len(),
            run.eigenpairs.len(),
            "{name}: factored path changed the accepted set"
        );
        for (a, b) in full.eigenpairs.iter().zip(&run.eigenpairs) {
            assert!(
                (a.lambda - b.lambda).abs() <= 1e-8 * (1.0 + a.lambda.abs()),
                "{name}: eigenvalue drifted: {:?} vs {:?}",
                a.lambda,
                b.lambda
            );
        }
    }
    eprintln!(
        "fig6 BiCG iterations: dense-expanded ilu0 {} / factored ilu0 {} / factored smw {}",
        full.total_bicg_iterations, plain.total_bicg_iterations, smw.total_bicg_iterations
    );
    // Folding the tail into the preconditioner must not cost iterations
    // relative to ignoring it.
    assert!(
        smw.total_bicg_iterations <= plain.total_bicg_iterations,
        "SMW completion increased iterations: {} vs plain {}",
        smw.total_bicg_iterations,
        plain.total_bicg_iterations
    );
    // Same per-node assembly accounting as every assembled policy.
    assert_eq!(smw.operator_assemblies, plain.operator_assemblies);
}

fn random_csr_blocks(n: usize, seed: u64) -> (CsrMatrix, CsrMatrix) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let a = CMatrix::random(n, n, &mut rng);
    let h00 = (&a + &a.adjoint()).scale(c64(0.5, 0.0));
    let h01 = CMatrix::random(n, n, &mut rng).scale(c64(0.35, 0.0));
    (CsrMatrix::from_dense(&h00, 0.0), CsrMatrix::from_dense(&h01, 0.0))
}

/// An ILU-preconditioned warm sweep checkpoints and resumes bit-identically,
/// and switching the precond policy is refused on resume (it is part of the
/// fingerprint — unlike the block policy, it changes the results).
#[test]
fn assembled_warm_sweep_resumes_bit_identically_and_fingerprints_the_policy() {
    let (h00, h01) = random_csr_blocks(10, 91);
    let pattern = AssembledPattern::build(&h00, &h01);
    let energies: Vec<f64> = (0..10).map(|i| -0.25 + 0.05 * i as f64).collect();
    let ss = SsConfig {
        n_int: 16,
        n_mm: 4,
        n_rh: 6,
        bicg_tolerance: 1e-11,
        residual_cutoff: 1e-6,
        precond: PrecondPolicy::AssembledIlu0,
        ..SsConfig::small()
    };
    let config = SweepConfig { initial_round: 4, ..SweepConfig::new(ss) };
    let sweep = EnergySweep::new(&h00, &h01, 1.5, config).with_pattern(pattern.clone());

    let uninterrupted = sweep.run(&energies, &SerialExecutor);
    assert!(!uninterrupted.cbs.points.is_empty());
    assert!(uninterrupted.stats.operator_assemblies > 0);

    let dir = std::env::temp_dir().join(format!("cbs_precond_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sweep.cp");
    let outcome = sweep
        .run_with(
            &energies,
            &SerialExecutor,
            RunOptions {
                checkpoint_path: Some(&path),
                max_new_energies: Some(5),
                ..RunOptions::default()
            },
        )
        .unwrap();
    let RunOutcome::Interrupted(_) = outcome else { panic!("budget of 5 should interrupt") };
    let resumed = sweep
        .run_with(
            &energies,
            &SerialExecutor,
            RunOptions {
                resume: Some(SweepCheckpoint::load(&path).unwrap()),
                ..RunOptions::default()
            },
        )
        .unwrap()
        .expect_complete("resume must finish");
    assert_eq!(uninterrupted.cbs.points.len(), resumed.cbs.points.len());
    for (a, b) in uninterrupted.cbs.points.iter().zip(&resumed.cbs.points) {
        assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
        assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
        assert_eq!(a.residual.to_bits(), b.residual.to_bits());
    }
    assert_eq!(uninterrupted.stats.total_bicg_iterations, resumed.stats.total_bicg_iterations);
    assert_eq!(uninterrupted.stats.operator_traversals, resumed.stats.operator_traversals);
    assert_eq!(uninterrupted.stats.operator_assemblies, resumed.stats.operator_assemblies);
    for (a, b) in uninterrupted.records.iter().zip(&resumed.records) {
        assert_eq!(a.stats, b.stats, "per-energy counters differ after resume at E = {}", a.energy);
    }

    // The precond policy is fingerprinted: resuming under a different one
    // is refused instead of silently changing the results.
    let other_config = SweepConfig {
        ss: SsConfig { precond: PrecondPolicy::MatrixFree, ..ss },
        ..*sweep.config()
    };
    assert_ne!(sweep.config().fingerprint(1.5), other_config.fingerprint(1.5));
    let other = EnergySweep::new(&h00, &h01, 1.5, other_config);
    let cp = SweepCheckpoint::load(&path).unwrap();
    assert!(other
        .run_with(
            &energies,
            &SerialExecutor,
            RunOptions { resume: Some(cp), ..RunOptions::default() }
        )
        .is_err());
    std::fs::remove_dir_all(&dir).ok();
}
