//! Policy-regression tier for calibrated auto-tuning (`SsConfig::auto()` /
//! `CBS_AUTO=1`):
//!
//! * an auto-tuned sweep on the fig6 Al(100) system is **bitwise** the
//!   fixed configuration its probe selects — the probe solves are
//!   throwaway (no warm-start contamination) and the committed cell is the
//!   only thing that feeds back;
//! * the probe→commit decision is deterministic across the serial and
//!   rayon executors (the probe itself always runs serially) and replays
//!   bit-identically on kill/resume (the decision is recorded in the v5
//!   checkpoint, never re-probed);
//! * at bench scale the cost model never selects `S > 1` — the known
//!   crossover fact from `BENCH_sweep.json` (a 2-sector partition costs
//!   ~2.9x wall because the solve volume at least doubles while extraction
//!   is a fraction of a percent of the sweep).

use cbs::core::SsConfig;
use cbs::dft::{bulk_al_100, grid_for_structure, BlockHamiltonian, HamiltonianParams};
use cbs::parallel::{
    CalibrationSample, CellId, CostModel, RayonExecutor, SerialExecutor, TaskExecutor, WorkloadSpec,
};
use cbs::sweep::{EnergySweep, RunOptions, RunOutcome, SweepConfig, SweepResult};

/// The fig6 Al(100) system at the regression-test resolution (identical to
/// `tests/cross_validate.rs`).
fn fig6_hamiltonian() -> BlockHamiltonian {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, 1.5);
    BlockHamiltonian::build(
        grid,
        &s,
        HamiltonianParams { fd: cbs::grid::FdOrder::new(1), include_nonlocal: true },
    )
}

/// A sweep-affordable configuration with auto-tuning on.
fn auto_ss() -> SsConfig {
    SsConfig {
        n_int: 8,
        n_mm: 4,
        n_rh: 4,
        bicg_max_iterations: 2_000,
        residual_cutoff: 1e-6,
        auto: true,
        ..SsConfig::small()
    }
}

fn fig6_energies() -> Vec<f64> {
    (0..4).map(|i| 0.05 + 0.04 * i as f64).collect()
}

fn run_auto<E: TaskExecutor>(
    h: &BlockHamiltonian,
    config: SweepConfig,
    executor: &E,
    opts: RunOptions<'_>,
) -> Result<RunOutcome, cbs::sweep::CheckpointError> {
    let h00 = h.h00();
    let h01 = h.h01();
    let (pattern, projector) = h.qep_factored();
    EnergySweep::new(&h00, &h01, h.period(), config)
        .with_pattern(pattern)
        .with_projector(projector)
        .run_with(&fig6_energies(), executor, opts)
}

fn assert_same_cbs(a: &SweepResult, b: &SweepResult, what: &str) {
    assert_eq!(a.cbs.energies.len(), b.cbs.energies.len(), "{what}: energy count");
    for (x, y) in a.cbs.energies.iter().zip(&b.cbs.energies) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: energy differs");
    }
    assert_eq!(a.cbs.points.len(), b.cbs.points.len(), "{what}: point count");
    for (p, q) in a.cbs.points.iter().zip(&b.cbs.points) {
        assert_eq!(p.energy_index, q.energy_index, "{what}: energy_index");
        assert_eq!(p.lambda.re.to_bits(), q.lambda.re.to_bits(), "{what}: Re λ");
        assert_eq!(p.lambda.im.to_bits(), q.lambda.im.to_bits(), "{what}: Im λ");
        assert_eq!(p.k_re.to_bits(), q.k_re.to_bits(), "{what}: Re k");
        assert_eq!(p.k_im.to_bits(), q.k_im.to_bits(), "{what}: Im k");
        assert_eq!(p.propagating, q.propagating, "{what}: propagating");
        assert_eq!(p.residual.to_bits(), q.residual.to_bits(), "{what}: residual");
    }
    assert_eq!(a.stats.total_bicg_iterations, b.stats.total_bicg_iterations, "{what}: iters");
    assert_eq!(a.stats.operator_traversals, b.stats.operator_traversals, "{what}: traversals");
    assert_eq!(a.stats.operator_assemblies, b.stats.operator_assemblies, "{what}: assemblies");
}

/// (a) `SsConfig::auto()` on fig6 Al(100) is bit-identical to the fixed
/// configuration its probe selects: the probe decides, then gets out of the
/// way.
#[test]
fn auto_sweep_is_bitwise_the_fixed_cell_it_selects() {
    let h = fig6_hamiltonian();
    let config = SweepConfig { initial_round: 2, ..SweepConfig::new(auto_ss()) };

    let auto_run = run_auto(&h, config, &SerialExecutor, RunOptions::default())
        .expect("no checkpoint I/O")
        .expect_complete("no budget set");
    let decision = auto_run.auto.clone().expect("auto sweep must commit a decision");
    assert!(decision.probe.len() >= 2, "probe must measure at least two candidate cells");
    // Probe counters are the deterministic leg of every sample.
    for s in &decision.probe {
        assert!(s.iterations > 0, "probe sample with zero iterations");
        assert!(s.wall_ns > 0, "probe sample with zero wall");
    }

    // The fixed configuration the decision resolves to, run without any
    // probing, must reproduce the auto sweep bit for bit.
    let fixed_ss = auto_ss().resolve_auto(Some(decision.cell()));
    assert!(!fixed_ss.auto, "resolved configuration must have auto cleared");
    let fixed_config = SweepConfig { initial_round: 2, ..SweepConfig::new(fixed_ss) };
    let fixed_run = run_auto(&h, fixed_config, &SerialExecutor, RunOptions::default())
        .expect("no checkpoint I/O")
        .expect_complete("no budget set");
    assert!(fixed_run.auto.is_none(), "fixed sweep must not probe");
    assert_same_cbs(&auto_run, &fixed_run, "auto vs selected fixed cell");
}

/// (b) The probe→commit decision is deterministic across executors, and a
/// killed auto sweep resumes from its v5 checkpoint bit-identically —
/// replaying the recorded decision instead of re-probing.
#[test]
fn auto_decision_is_deterministic_across_executors_and_kill_resume() {
    let h = fig6_hamiltonian();
    let config = SweepConfig { initial_round: 2, ..SweepConfig::new(auto_ss()) };

    let serial = run_auto(&h, config, &SerialExecutor, RunOptions::default())
        .expect("no checkpoint I/O")
        .expect_complete("no budget set");
    let rayon = run_auto(&h, config, &RayonExecutor, RunOptions::default())
        .expect("no checkpoint I/O")
        .expect_complete("no budget set");
    let cell_serial = serial.auto.as_ref().expect("serial decision").cell();
    let cell_rayon = rayon.auto.as_ref().expect("rayon decision").cell();
    assert_eq!(cell_serial, cell_rayon, "probe decision differs across executors");
    assert_same_cbs(&serial, &rayon, "serial vs rayon auto sweep");

    // Kill after two energies, resume from the checkpoint: the resumed run
    // must not re-probe (same committed cell bit for bit) and the final
    // result must equal the uninterrupted one exactly.
    let dir = std::env::temp_dir().join("cbs_auto_tune_resume_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("auto.ckpt");
    let outcome = run_auto(
        &h,
        config,
        &SerialExecutor,
        RunOptions {
            checkpoint_path: Some(&path),
            max_new_energies: Some(2),
            ..RunOptions::default()
        },
    )
    .expect("checkpoint I/O");
    let cp = match outcome {
        RunOutcome::Interrupted(cp) => cp,
        RunOutcome::Complete(_) => panic!("budget of 2 on a 4-energy grid must interrupt"),
    };
    let recorded = cp.auto.clone().expect("interrupted auto sweep must checkpoint its decision");
    let resumed = run_auto(
        &h,
        config,
        &SerialExecutor,
        RunOptions { resume: Some(cp), checkpoint_path: Some(&path), ..RunOptions::default() },
    )
    .expect("checkpoint I/O")
    .expect_complete("resume must finish the grid");
    // Replay, not re-probe: probe samples (wall-ns included) carry over
    // unchanged, which only a replay can guarantee.
    assert_eq!(resumed.auto.as_ref(), Some(&recorded), "resume must replay the recorded decision");
    assert_eq!(recorded.cell(), cell_serial, "kill/resume decision differs from uninterrupted");
    assert_same_cbs(&serial, &resumed, "uninterrupted vs kill/resume auto sweep");

    // A fixed-policy checkpoint cannot be resumed into an auto sweep.
    let fixed_ss = auto_ss().resolve_auto(Some(cell_serial));
    let fixed_config = SweepConfig { initial_round: 2, ..SweepConfig::new(fixed_ss) };
    let fixed_path = dir.join("fixed.ckpt");
    let fixed_outcome = run_auto(
        &h,
        fixed_config,
        &SerialExecutor,
        RunOptions {
            checkpoint_path: Some(&fixed_path),
            max_new_energies: Some(2),
            ..RunOptions::default()
        },
    )
    .expect("checkpoint I/O");
    let fixed_cp = match fixed_outcome {
        RunOutcome::Interrupted(cp) => cp,
        RunOutcome::Complete(_) => panic!("budget of 2 on a 4-energy grid must interrupt"),
    };
    assert!(fixed_cp.auto.is_none());
    let refused = run_auto(
        &h,
        config,
        &SerialExecutor,
        RunOptions { resume: Some(fixed_cp), ..RunOptions::default() },
    );
    assert!(
        matches!(refused, Err(cbs::sweep::CheckpointError::Mismatch(_))),
        "fixed checkpoint resumed into an auto sweep must be refused"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The `CBS_AUTO=1` env knob drives a sweep whose `SsConfig` never set
/// `auto` programmatically: the sweep probes, commits a cell, and the
/// decision matches what `SsConfig::auto()` would have picked (same
/// memoized probe).  Exercised by the CI policy-matrix `auto` cell, which
/// runs exactly this test with the knob exported; without the knob the
/// test is a no-op so the default tiers stay knob-free.
#[test]
fn cbs_auto_env_knob_drives_the_sweep() {
    if cbs::trace::knob::<u64>("CBS_AUTO").is_none_or(|v| v == 0) {
        return; // the CI auto cell sets CBS_AUTO=1; nothing to check here
    }
    let h = fig6_hamiltonian();
    let knob_ss = SsConfig { auto: false, ..auto_ss() };
    assert!(knob_ss.auto_enabled(), "CBS_AUTO=1 must enable auto-tuning");
    let config = SweepConfig { initial_round: 2, ..SweepConfig::new(knob_ss) };
    let run = run_auto(&h, config, &SerialExecutor, RunOptions::default())
        .expect("no checkpoint I/O")
        .expect_complete("no budget set");
    let knob_cell = run.auto.expect("knob-driven sweep must commit a decision").cell();

    let explicit = SweepConfig { initial_round: 2, ..SweepConfig::new(auto_ss()) };
    let explicit_run = run_auto(&h, explicit, &SerialExecutor, RunOptions::default())
        .expect("no checkpoint I/O")
        .expect_complete("no budget set");
    assert_eq!(
        explicit_run.auto.expect("explicit auto sweep must commit a decision").cell(),
        knob_cell,
        "env knob and SsConfig::auto() must commit the same cell"
    );
}

/// (c) At bench scale the model never selects `S > 1`: fed the measured
/// shape of `BENCH_sweep.json` (ILU(0) cold sweep 0.47 s wall of which
/// extraction is ~3.3 ms — 0.7%), slicing's doubled solve volume can never
/// be paid for by cubic extraction shrinkage.
#[test]
fn bench_scale_model_never_selects_slices() {
    // The tracked bench numbers: Al(100) 8-energy cold ILU(0) sweep.
    let cell = CellId { per_rhs: false, precond: 2, slices: 1 };
    let sample = CalibrationSample {
        cell,
        dimension: 1620,
        nnz: 37 * 1620,
        n_rh: 4,
        energies: 8,
        iterations: 8220,
        traversals: 4216,
        assemblies: 64,
        wall_ns: 470_000_000,
        kernel_wall_ns: 150_000_000,
        precond_wall_ns: 120_000_000,
        extraction_wall_ns: 3_300_000,
    };
    let model = CostModel::fit(&[sample]).expect("valid sample must fit");
    let w = WorkloadSpec { dimension: 1620, nnz: 37 * 1620, n_rh: 4, energies: 8 };
    for max_s in [2, 4, 8] {
        assert_eq!(
            model.tune_slices(cell, &w, max_s, 0.10),
            1,
            "bench-scale workload must never slice (max_s = {max_s})"
        );
    }
    // And end-to-end: the committed decision of a real auto sweep on the
    // fig6 system stays single-contour.
    let h = fig6_hamiltonian();
    let config = SweepConfig { initial_round: 2, ..SweepConfig::new(auto_ss()) };
    let run = run_auto(&h, config, &SerialExecutor, RunOptions::default())
        .expect("no checkpoint I/O")
        .expect_complete("no budget set");
    assert_eq!(run.auto.expect("decision").slices, 1, "auto sweep must not slice at this scale");
}
