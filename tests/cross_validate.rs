//! Cross-validation harness of the sliced (partitioned-contour)
//! Sakurai-Sugiura pipeline against the monolithic single contour on the
//! fig6 Al(100) system:
//!
//! * `S = 1` sliced ≡ `solve_qep_with` **bitwise** (eigenvalues, moments,
//!   counters);
//! * `S ∈ {2, 4, 8}` merged eigenvalue sets agree with the single contour
//!   to ≤ 1e-10 on the interior annulus, with every per-slice subspace
//!   strictly smaller than the monolithic one;
//! * the agreement holds over the
//!   `{BlockPolicy} x {PrecondPolicy} x {serial, rayon}` matrix, with
//!   serial ≡ rayon and per-node ≡ per-rhs **bitwise** within each policy;
//! * sliced and single-contour spectra both agree with the OBM baseline;
//! * an env-driven entry point (`CBS_EXECUTOR` / `CBS_BLOCK` /
//!   `CBS_PRECOND` / `CBS_SLICES`) lets CI exercise any single combination
//!   of the policy matrix.

use cbs::core::{
    solve_qep_sliced_with, solve_qep_with, BlockPolicy, PrecondPolicy, QepProblem, SlicePolicy,
    SsConfig, SsResult,
};
use cbs::dft::{bulk_al_100, grid_for_structure, BlockHamiltonian, HamiltonianParams};
use cbs::linalg::Complex64;
use cbs::obm::{obm_solve, ObmConfig};
use cbs::parallel::{ExecutorChoice, RayonExecutor, SerialExecutor};

/// The fig6 Al(100) system at the regression-test resolution (identical to
/// `tests/block_determinism.rs`).
fn fig6_hamiltonian() -> BlockHamiltonian {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, 1.5);
    BlockHamiltonian::build(
        grid,
        &s,
        HamiltonianParams { fd: cbs::grid::FdOrder::new(1), include_nonlocal: true },
    )
}

/// Solver parameters tight enough that the ≤ 1e-10 cross-validation bound
/// is meaningful: the eigenvalue agreement between two different
/// floating-point trajectories is limited by extraction conditioning times
/// the solver tolerance.
fn fig6_config() -> SsConfig {
    SsConfig {
        n_int: 16,
        n_mm: 6,
        n_rh: 6,
        delta: 1e-13,
        bicg_tolerance: 1e-13,
        bicg_max_iterations: 3_000,
        residual_cutoff: 1e-6,
        ..SsConfig::small()
    }
}

/// Slices with arcs resolved at 32 Gauss-Legendre nodes (the fig6 config's
/// `N_int = 16` is tuned for the separable full-circle trapezoid; the
/// non-periodic sector arcs need the extra resolution to push quadrature
/// error below the 1e-10 bound).
fn sectors(s: usize) -> SlicePolicy {
    SlicePolicy { arc_nodes: Some(32), ..SlicePolicy::sectors(s) }
}

fn interior(l: Complex64) -> bool {
    l.abs() > 0.55 && l.abs() < 1.8
}

/// Every interior eigenvalue of `a` is matched by one of `b` within `tol`.
fn assert_interior_sets_match(a: &SsResult, b: &SsResult, tol: f64, what: &str) {
    let mut compared = 0;
    for p in a.eigenpairs.iter().filter(|p| interior(p.lambda)) {
        let best =
            b.eigenpairs.iter().map(|q| (q.lambda - p.lambda).abs()).fold(f64::INFINITY, f64::min);
        assert!(best <= tol, "{what}: λ = {:?} unmatched (best distance {best:.2e})", p.lambda);
        compared += 1;
    }
    assert!(compared > 0, "{what}: nothing to compare");
}

fn assert_bitwise_eigenpairs(a: &SsResult, b: &SsResult, what: &str) {
    assert_eq!(a.eigenpairs.len(), b.eigenpairs.len(), "{what}: pair count differs");
    for (p, q) in a.eigenpairs.iter().zip(&b.eigenpairs) {
        assert_eq!(p.lambda.re.to_bits(), q.lambda.re.to_bits(), "{what}: Re λ differs");
        assert_eq!(p.lambda.im.to_bits(), q.lambda.im.to_bits(), "{what}: Im λ differs");
        assert_eq!(p.residual.to_bits(), q.residual.to_bits(), "{what}: residual differs");
    }
}

/// `S = 1` sliced pipeline ≡ the monolithic engine path, bit for bit, on
/// the real fig6 system — pooled dispatch, generalized accumulator, merge
/// and all.
#[test]
fn fig6_single_slice_is_bitwise_the_single_contour() {
    let h = fig6_hamiltonian();
    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, 0.35, h.period());
    let config = fig6_config();
    assert!(config.slice.is_single());

    let single = solve_qep_with(&problem, &config, &SerialExecutor);
    let sliced = solve_qep_sliced_with(&problem, &config, &SerialExecutor);
    assert!(!single.eigenpairs.is_empty());
    assert_bitwise_eigenpairs(&single, &sliced, "S=1 sliced vs engine");
    for (ma, mb) in single.projected_moments.iter().zip(&sliced.projected_moments) {
        for r in 0..config.n_rh {
            for c in 0..config.n_rh {
                assert_eq!(ma[(r, c)].re.to_bits(), mb[(r, c)].re.to_bits());
                assert_eq!(ma[(r, c)].im.to_bits(), mb[(r, c)].im.to_bits());
            }
        }
    }
    assert_eq!(single.total_bicg_iterations, sliced.total_bicg_iterations);
    assert_eq!(single.total_matvecs, sliced.total_matvecs);
    assert_eq!(single.total_traversals, sliced.total_traversals);
    assert_eq!(single.numerical_rank, sliced.numerical_rank);
}

/// The headline acceptance bound: for `S ∈ {2, 4, 8}` the merged sliced
/// eigenpair set matches the single contour to ≤ 1e-10 in both directions
/// (no misses, no spurious states), with per-slice subspaces strictly
/// smaller than the monolithic one and the slice-resolved counters
/// populated.
#[test]
fn fig6_sliced_sets_match_single_contour_to_1e10() {
    let h = fig6_hamiltonian();
    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, 0.35, h.period());
    let config = fig6_config();
    let single = solve_qep_with(&problem, &config, &SerialExecutor);
    assert!(single.eigenpairs.iter().filter(|p| interior(p.lambda)).count() >= 4);

    for s in [2usize, 4, 8] {
        let cfg = SsConfig { slice: sectors(s), ..config };
        let sliced = solve_qep_sliced_with(&problem, &cfg, &SerialExecutor);
        assert_interior_sets_match(&single, &sliced, 1e-10, &format!("S={s}: single→sliced"));
        assert_interior_sets_match(&sliced, &single, 1e-10, &format!("S={s}: sliced→single"));

        // Slice-resolved counters: one row per slice, subspaces strictly
        // below the monolithic N_mm x N_rh, real per-slice work recorded.
        assert_eq!(sliced.slice_stats.len(), s);
        for st in &sliced.slice_stats {
            assert!(
                st.subspace_size < config.subspace_size(),
                "S={s}: slice {} subspace {} not strictly smaller than {}",
                st.slice,
                st.subspace_size,
                config.subspace_size()
            );
            assert!(st.bicg_iterations > 0, "S={s}: slice {} reports no iterations", st.slice);
            assert!(st.traversals > 0, "S={s}: slice {} reports no traversals", st.slice);
            assert!(st.solves > 0 && st.nodes > 0);
        }
        let slice_iters: usize = sliced.slice_stats.iter().map(|t| t.bicg_iterations).sum();
        assert_eq!(slice_iters, sliced.total_bicg_iterations);
    }
}

/// The policy matrix: `{per-node, per-rhs} x {matrix-free, assembled,
/// assembled-ilu0} x {serial, rayon}`, at `S = 4`.  Within each
/// `(precond)` cell all four `(block, executor)` variants must be
/// **bitwise identical** (block policies and executors do not change
/// results), and each cell's sliced set matches its own single-contour
/// reference to ≤ 1e-10.
#[test]
fn fig6_policy_matrix_cross_validation() {
    let h = fig6_hamiltonian();
    let h00 = h.h00();
    let h01 = h.h01();
    let pattern = h.qep_pattern();
    // A cheaper spectrum (2 propagating states) keeps the 12-run matrix
    // affordable; the richer-spectrum agreement is covered above.
    let config = SsConfig { n_mm: 4, n_rh: 4, ..fig6_config() };

    for precond in
        [PrecondPolicy::MatrixFree, PrecondPolicy::Assembled, PrecondPolicy::AssembledIlu0]
    {
        let problem = QepProblem::new(&h00, &h01, 0.15, h.period()).with_pattern(&pattern);
        let single = solve_qep_with(&problem, &SsConfig { precond, ..config }, &SerialExecutor);
        assert!(!single.eigenpairs.is_empty());

        let mut reference: Option<SsResult> = None;
        for block in [BlockPolicy::PerNode, BlockPolicy::PerRhs] {
            let cfg = SsConfig { precond, block, slice: sectors(4), ..config };
            for rayon in [false, true] {
                let sliced = if rayon {
                    solve_qep_sliced_with(&problem, &cfg, &RayonExecutor)
                } else {
                    solve_qep_sliced_with(&problem, &cfg, &SerialExecutor)
                };
                let what = format!(
                    "{}/{}/{}",
                    precond.name(),
                    block.name(),
                    if rayon { "rayon" } else { "serial" }
                );
                assert_interior_sets_match(&single, &sliced, 1e-10, &what);
                assert_interior_sets_match(&sliced, &single, 1e-10, &what);
                match &reference {
                    None => reference = Some(sliced),
                    Some(r) => assert_bitwise_eigenpairs(r, &sliced, &what),
                }
            }
        }
    }
}

/// Sliced and single-contour spectra both land on the OBM transfer-matrix
/// baseline — the paper's Figure 4 correctness premise extends to the
/// partitioned contour.
#[test]
fn fig6_sliced_and_single_agree_with_obm() {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, 1.45);
    let h = BlockHamiltonian::build(
        grid,
        &s,
        HamiltonianParams { fd: cbs::grid::FdOrder::new(1), include_nonlocal: true },
    );
    let energy = 0.15;
    let config = SsConfig { majority_stop: false, ..fig6_config() };
    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, energy, h.period());

    let single = solve_qep_with(&problem, &config, &SerialExecutor);
    let sliced =
        solve_qep_sliced_with(&problem, &SsConfig { slice: sectors(4), ..config }, &SerialExecutor);
    let obm = obm_solve(&h.h00_csr(), &h.h01_csr(), energy, &ObmConfig::default());

    let close = |a: Complex64, b: Complex64| (a - b).abs() < 2e-5 * (1.0 + b.abs());
    let mut compared = 0;
    for (name, result) in [("single", &single), ("sliced", &sliced)] {
        for p in result.eigenpairs.iter().filter(|p| interior(p.lambda)) {
            assert!(
                obm.lambdas.iter().any(|&l| close(l, p.lambda)),
                "{name} found {:?} which OBM missed",
                p.lambda
            );
            compared += 1;
        }
    }
    assert!(compared > 0, "nothing to compare against OBM");
    // And the two SS variants see the same spectrum.
    assert_interior_sets_match(&single, &sliced, 1e-10, "single vs sliced (OBM system)");
}

/// Env-driven single-combination entry point for the CI policy-matrix job:
/// `CBS_EXECUTOR` / `CBS_BLOCK` / `CBS_PRECOND` / `CBS_SLICES` select the
/// cell (defaults: serial / per-node / matrix-free / 4 slices).
#[test]
fn policy_matrix_cell_from_env() {
    let h = fig6_hamiltonian();
    let h00 = h.h00();
    let h01 = h.h01();
    let pattern = h.qep_pattern();
    let (pattern_sparse, projector) = h.qep_factored();
    let block = BlockPolicy::from_env("CBS_BLOCK");
    let precond = PrecondPolicy::from_env("CBS_PRECOND");
    let slice = match SlicePolicy::from_env("CBS_SLICES") {
        p if p.is_single() => sectors(4),
        p => SlicePolicy { arc_nodes: Some(32), ..p },
    };
    let config = SsConfig { n_mm: 4, n_rh: 4, block, precond, ..fig6_config() };
    // The SMW cell needs the factored problem (sparse-only pattern plus
    // projector tail) for the completion to be distinct from plain ILU(0).
    let problem = if precond == PrecondPolicy::AssembledIlu0Smw {
        QepProblem::new(&h00, &h01, 0.15, h.period())
            .with_pattern(&pattern_sparse)
            .with_projector(&projector)
    } else {
        QepProblem::new(&h00, &h01, 0.15, h.period()).with_pattern(&pattern)
    };

    let rayon = ExecutorChoice::from_env("CBS_EXECUTOR") == ExecutorChoice::Rayon;
    let sliced_cfg = SsConfig { slice, ..config };
    let (single, sliced) = if rayon {
        (
            solve_qep_with(&problem, &config, &RayonExecutor),
            solve_qep_sliced_with(&problem, &sliced_cfg, &RayonExecutor),
        )
    } else {
        (
            solve_qep_with(&problem, &config, &SerialExecutor),
            solve_qep_sliced_with(&problem, &sliced_cfg, &SerialExecutor),
        )
    };
    let what = format!(
        "env cell {}/{}/{}/{}",
        if rayon { "rayon" } else { "serial" },
        block.name(),
        precond.name(),
        sliced_cfg.slice.name()
    );
    assert!(!single.eigenpairs.is_empty(), "{what}: single contour found nothing");
    assert_interior_sets_match(&single, &sliced, 1e-10, &what);
    assert_interior_sets_match(&sliced, &single, 1e-10, &what);
}
