//! # cbs — complex band structures with the Sakurai-Sugiura method
//!
//! Facade crate of the workspace reproducing Iwase, Futamura, Imakura,
//! Sakurai and Ono, *"Efficient and Scalable Calculation of Complex Band
//! Structure using Sakurai-Sugiura Method"* (SC'17).
//!
//! It re-exports the member crates under stable names and is the dependency
//! used by the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`).
//!
//! ```no_run
//! use cbs::dft::{bulk_al_100, grid_for_structure, BlockHamiltonian, HamiltonianParams};
//! use cbs::core::{compute_cbs_with, SsConfig};
//! use cbs::parallel::RayonExecutor;
//!
//! let structure = bulk_al_100(1);
//! let grid = grid_for_structure(&structure, 0.9);
//! let h = BlockHamiltonian::build(grid, &structure, HamiltonianParams::default());
//! // The N_int x N_rh shifted solves fan out over the chosen executor;
//! // `compute_cbs` (no executor argument) is the serial shorthand and
//! // produces bit-identical results.
//! let run = compute_cbs_with(&h.h00(), &h.h01(), h.period(), &[0.1], &SsConfig::small(), &RayonExecutor);
//! println!("{} states found", run.cbs.points.len());
//! ```

#![warn(missing_docs)]

/// Dense complex linear algebra substrate (re-export of `cbs-linalg`).
pub use cbs_linalg as linalg;

/// Sparse matrices and matrix-free operators (re-export of `cbs-sparse`).
pub use cbs_sparse as sparse;

/// Structured tracing: span recorder, per-stage attribution, Chrome trace
/// export (re-export of `cbs-trace`).
pub use cbs_trace as trace;

/// Real-space grids, stencils and domain decomposition (re-export of `cbs-grid`).
pub use cbs_grid as grid;

/// Kohn-Sham Hamiltonian substrate (re-export of `cbs-dft`).
pub use cbs_dft as dft;

/// Iterative solvers (re-export of `cbs-solver`).
pub use cbs_solver as solver;

/// The Sakurai-Sugiura CBS solver (re-export of `cbs-core`).
pub use cbs_core as core;

/// The OBM / transfer-matrix baseline (re-export of `cbs-obm`).
pub use cbs_obm as obm;

/// Hierarchical parallel runtime and performance model (re-export of `cbs-parallel`).
pub use cbs_parallel as parallel;

/// Batched, warm-started, adaptive energy-sweep orchestration (re-export of
/// `cbs-sweep`).
pub use cbs_sweep as sweep;
