//! The three-layer parallel hierarchy of the Sakurai-Sugiura method
//! (paper §3.3 and Figure 3):
//!
//! * **top layer** — the `N_rh` right-hand sides are independent,
//! * **middle layer** — the `N_int` quadrature points are independent,
//! * **bottom layer** — each linear solve is domain-decomposed over the grid.
//!
//! `ParallelLayout` describes how many processes are assigned to each layer;
//! `ParallelLayout::assign` implements the paper's rule that upper layers are
//! filled first because they need no communication.

use serde::{Deserialize, Serialize};

/// Assignment of processes to the three layers (plus threads inside each
/// bottom-layer process, the "OpenMP" threads of Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelLayout {
    /// Process groups across right-hand sides (top layer).
    pub rhs_groups: usize,
    /// Process groups across quadrature points (middle layer).
    pub quadrature_groups: usize,
    /// Processes per linear solve, i.e. domains of the grid decomposition
    /// (bottom layer, `N_dm` in the paper).
    pub domains: usize,
    /// Threads per process (intra-node shared-memory parallelism).
    pub threads_per_process: usize,
}

impl ParallelLayout {
    /// A fully serial layout.
    pub fn serial() -> Self {
        Self { rhs_groups: 1, quadrature_groups: 1, domains: 1, threads_per_process: 1 }
    }

    /// Total number of MPI-like processes.
    pub fn total_processes(&self) -> usize {
        self.rhs_groups * self.quadrature_groups * self.domains
    }

    /// Total number of cores used.
    pub fn total_cores(&self) -> usize {
        self.total_processes() * self.threads_per_process
    }

    /// The paper's assignment rule: given `processes` processes and the
    /// problem parameters, fill the top layer first (no communication, best
    /// load balance), then the middle layer, and only then the bottom layer.
    pub fn assign(processes: usize, n_rh: usize, n_int: usize) -> Self {
        assert!(processes >= 1);
        let rhs_groups = processes.min(n_rh);
        let remaining = processes / rhs_groups;
        let quadrature_groups = remaining.min(n_int);
        let domains = (remaining / quadrature_groups).max(1);
        Self { rhs_groups, quadrature_groups, domains, threads_per_process: 1 }
    }

    /// Work items (quadrature point, right-hand side) handled by process
    /// group `(rhs_group, quad_group)` under a block-cyclic distribution.
    pub fn work_items(
        &self,
        rhs_group: usize,
        quad_group: usize,
        n_rh: usize,
        n_int: usize,
    ) -> Vec<(usize, usize)> {
        let mut items = Vec::new();
        let mut j = quad_group;
        while j < n_int {
            let mut r = rhs_group;
            while r < n_rh {
                items.push((j, r));
                r += self.rhs_groups;
            }
            j += self.quadrature_groups;
        }
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_multiply() {
        let l = ParallelLayout {
            rhs_groups: 16,
            quadrature_groups: 32,
            domains: 4,
            threads_per_process: 17,
        };
        assert_eq!(l.total_processes(), 2048);
        assert_eq!(l.total_cores(), 2048 * 17);
    }

    #[test]
    fn assignment_fills_top_layer_first() {
        // Fewer processes than N_rh: everything goes to the top layer.
        let l = ParallelLayout::assign(8, 16, 32);
        assert_eq!((l.rhs_groups, l.quadrature_groups, l.domains), (8, 1, 1));
        // Exactly N_rh * N_int: top and middle saturated, no domains.
        let l = ParallelLayout::assign(16 * 32, 16, 32);
        assert_eq!((l.rhs_groups, l.quadrature_groups, l.domains), (16, 32, 1));
        // More than N_rh * N_int: the excess goes to the bottom layer.
        let l = ParallelLayout::assign(16 * 32 * 4, 16, 32);
        assert_eq!((l.rhs_groups, l.quadrature_groups, l.domains), (16, 32, 4));
    }

    #[test]
    fn work_items_cover_everything_exactly_once() {
        let n_rh = 6;
        let n_int = 8;
        let l = ParallelLayout {
            rhs_groups: 3,
            quadrature_groups: 4,
            domains: 1,
            threads_per_process: 1,
        };
        let mut seen = vec![vec![0usize; n_rh]; n_int];
        for q in 0..l.quadrature_groups {
            for r in 0..l.rhs_groups {
                for (j, rhs) in l.work_items(r, q, n_rh, n_int) {
                    seen[j][rhs] += 1;
                }
            }
        }
        assert!(seen.iter().flatten().all(|&c| c == 1));
    }

    #[test]
    fn serial_layout() {
        let l = ParallelLayout::serial();
        assert_eq!(l.total_processes(), 1);
        let items = l.work_items(0, 0, 4, 4);
        assert_eq!(items.len(), 16);
    }
}
