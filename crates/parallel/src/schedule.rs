//! Sweep-level scheduling policy: the order in which the independent
//! per-energy solve groups of a multi-energy scan are released into the
//! executor's task pool.
//!
//! A scan over `n` energies is a batch of `n` independent solve groups, but
//! *when* each group runs matters for two competing goals:
//!
//! * **Flattening** — the more groups run in one batch, the better a wide
//!   machine is saturated even when a single group's `N_int x N_rh` grid is
//!   small.  The extreme is [`SweepSchedule::Flat`]: everything in one round.
//! * **Warm starting** — a group can reuse the solutions of an
//!   already-*completed* neighbour as Krylov initial guesses, but only if
//!   some neighbour completed in an earlier round.  The extreme is fully
//!   sequential execution: maximal reuse, no flattening.
//!
//! [`SweepSchedule::Wavefront`] is the compromise: a dyadic
//! (coarse-to-fine) ordering.  Round 0 solves a strided skeleton of the
//! grid cold; every later round halves the stride, so each new index sits
//! exactly halfway between two completed ones.  Rounds grow geometrically
//! (the last round is `n/2` groups — plenty of flattening) while the
//! seed distance shrinks to a single grid step.
//!
//! The policy is pure index arithmetic — deterministic, independent of the
//! executor — which is what keeps warm-started sweeps bit-identical across
//! serial and threaded execution.

/// How a sweep's per-energy solve groups are released into rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepSchedule {
    /// All groups in one round: maximal task-pool flattening, no
    /// cross-energy reuse (every solve runs cold).
    Flat,
    /// Dyadic coarse-to-fine rounds: round 0 is a cold strided skeleton of
    /// at most `initial_round` groups, each later round bisects the stride.
    Wavefront {
        /// Upper bound on the size of the first (cold) round.
        initial_round: usize,
    },
}

impl SweepSchedule {
    /// Partition the indices `0..n` into execution rounds.  Every index
    /// appears exactly once; indices in round `r` may seed from any index
    /// of rounds `< r`.
    pub fn rounds(&self, n: usize) -> Vec<Vec<usize>> {
        if n == 0 {
            return Vec::new();
        }
        match *self {
            SweepSchedule::Flat | SweepSchedule::Wavefront { initial_round: 0 } => {
                vec![(0..n).collect()]
            }
            SweepSchedule::Wavefront { initial_round } => {
                // Smallest power-of-two stride whose skeleton fits the
                // first-round budget.
                let mut stride = 1usize;
                while n.div_ceil(stride) > initial_round {
                    stride *= 2;
                }
                let mut rounds = vec![(0..n).step_by(stride).collect::<Vec<_>>()];
                let mut half = stride / 2;
                while half >= 1 {
                    let round: Vec<usize> = (half..n).step_by(2 * half).collect();
                    if !round.is_empty() {
                        rounds.push(round);
                    }
                    half /= 2;
                }
                rounds
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(rounds: &[Vec<usize>], n: usize) {
        let mut all: Vec<usize> = rounds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "rounds must partition 0..{n}");
    }

    #[test]
    fn flat_is_one_round() {
        let rounds = SweepSchedule::Flat.rounds(7);
        assert_eq!(rounds.len(), 1);
        assert_partition(&rounds, 7);
    }

    #[test]
    fn wavefront_partitions_and_bounds_first_round() {
        for n in [1usize, 2, 3, 8, 13, 32, 33, 100] {
            for budget in [1usize, 2, 4, 8] {
                let s = SweepSchedule::Wavefront { initial_round: budget };
                let rounds = s.rounds(n);
                assert_partition(&rounds, n);
                assert!(
                    rounds[0].len() <= budget.max(1),
                    "n={n} budget={budget}: first round {:?}",
                    rounds[0]
                );
            }
        }
    }

    #[test]
    fn wavefront_indices_have_nearby_completed_neighbours() {
        let s = SweepSchedule::Wavefront { initial_round: 4 };
        let n = 33;
        let rounds = s.rounds(n);
        let mut completed = vec![false; n];
        for (r, round) in rounds.iter().enumerate() {
            if r > 0 {
                for &i in round {
                    // Some completed index within the current dyadic stride.
                    let near = (0..n).filter(|&j| completed[j]).map(|j| i.abs_diff(j)).min();
                    let stride = rounds[0].get(1).copied().unwrap_or(n).min(n);
                    assert!(
                        near.unwrap() <= stride,
                        "round {r} index {i}: nearest completed at distance {near:?}"
                    );
                }
            }
            for &i in round {
                completed[i] = true;
            }
        }
    }

    #[test]
    fn zero_budget_degenerates_to_flat() {
        assert_eq!(
            SweepSchedule::Wavefront { initial_round: 0 }.rounds(5),
            SweepSchedule::Flat.rounds(5)
        );
        assert!(SweepSchedule::Flat.rounds(0).is_empty());
    }
}
