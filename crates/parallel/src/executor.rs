//! Functional (threaded) execution of the parallel layers.
//!
//! On this machine the threads share one physical core, so these executors
//! demonstrate *correctness* of the decompositions (identical results to the
//! serial path, explicit halo bookkeeping) and provide the measured
//! per-iteration costs that calibrate the performance model; the cluster-
//! scale wall-clock numbers of Figures 8-10 come from `perf_model`.

use rayon::prelude::*;

use cbs_grid::{DomainDecomposition, FdOrder};
use cbs_linalg::{CVector, Complex64};
use cbs_solver::{bicg_dual, BicgResult, SolverOptions};
use cbs_sparse::{CsrMatrix, LinearOperator};

/// Pluggable execution strategy for a batch of independent tasks — the seam
/// between the algorithmic layers (the `N_int x N_rh` shifted solves of the
/// Sakurai-Sugiura method, the right-hand-side fan-out, …) and how they are
/// actually scheduled.
///
/// The contract all implementations must obey: results come back **in input
/// order**, and `map` is invoked exactly once per task.  Nothing about
/// *when* or *where* each task runs is specified, which is what lets the
/// same engine code run serially, across threads, or (in later stages)
/// across nodes.
pub trait TaskExecutor: Sync {
    /// Short human-readable name for reports and logs.
    fn name(&self) -> &'static str;

    /// Apply `map` to every task, returning results in input order.
    fn execute<T, R, F>(&self, tasks: Vec<T>, map: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync;

    /// Apply `map` to every task and fold the results **in input order** on
    /// the calling thread.
    ///
    /// The default materializes the whole mapped batch first (a parallel
    /// executor cannot hand results over in order without buffering), but
    /// implementations that run in input order anyway — [`SerialExecutor`]
    /// — override it to stream with a single live result.  Memory-sensitive
    /// reductions (the Sakurai-Sugiura moment accumulation over
    /// `N_int x N_rh` solution vectors) go through this entry point so the
    /// serial path keeps its O(1)-results footprint.
    fn execute_fold<T, R, A, F, G>(&self, tasks: Vec<T>, map: F, init: A, fold: G) -> A
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        self.execute(tasks, map).into_iter().fold(init, fold)
    }
}

/// Runs tasks one after another on the calling thread, in input order.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialExecutor;

impl TaskExecutor for SerialExecutor {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn execute<T, R, F>(&self, tasks: Vec<T>, map: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        cbs_trace::label_thread("serial");
        tasks.into_iter().map(map).collect()
    }

    fn execute_fold<T, R, A, F, G>(&self, tasks: Vec<T>, map: F, init: A, mut fold: G) -> A
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        cbs_trace::label_thread("serial");
        // Streaming: one mapped result alive at a time.
        tasks.into_iter().fold(init, |acc, t| fold(acc, map(t)))
    }
}

/// Runs tasks on the rayon thread pool.  Collection order equals input
/// order (indexed parallel collect), so any engine whose per-task work is
/// deterministic produces results bit-identical to [`SerialExecutor`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RayonExecutor;

impl TaskExecutor for RayonExecutor {
    fn name(&self) -> &'static str {
        "rayon"
    }

    fn execute<T, R, F>(&self, tasks: Vec<T>, map: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        // Register each worker in the trace thread registry before it runs
        // its first task; the vendored rayon shim joins its scoped workers
        // before the dispatch returns, so their buffers are flushed (and
        // the labels drained) by the time the caller reads the session.
        tasks
            .into_par_iter()
            .map(|t| {
                cbs_trace::label_thread("rayon");
                map(t)
            })
            .collect()
    }
}

/// Executor selection for binaries and benches.  `TaskExecutor` is not
/// object-safe (its `execute` is generic), so runtime selection goes
/// through this enum and a `match` at the call site.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutorChoice {
    /// Run on the calling thread.
    #[default]
    Serial,
    /// Run on the rayon thread pool.
    Rayon,
}

impl ExecutorChoice {
    /// Read the choice from an environment variable (`"rayon"` selects the
    /// threaded executor, `"serial"` the calling thread; unset keeps the
    /// serial default and a malformed value warns once and does the same,
    /// via [`cbs_trace::knob()`]).
    pub fn from_env(var: &str) -> Self {
        cbs_trace::knob(var).unwrap_or_default()
    }

    /// The executor's report name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Serial => SerialExecutor.name(),
            Self::Rayon => RayonExecutor.name(),
        }
    }
}

impl cbs_trace::Knob for ExecutorChoice {
    fn parse_knob(value: &str) -> Option<Self> {
        if value.eq_ignore_ascii_case("rayon") {
            Some(Self::Rayon)
        } else if value.eq_ignore_ascii_case("serial") {
            Some(Self::Serial)
        } else {
            None
        }
    }
}

/// A sparse operator whose matrix-vector product is executed domain by
/// domain (the bottom parallel layer), with the halo traffic made explicit.
pub struct DomainDecomposedOp {
    matrix: CsrMatrix,
    decomposition: DomainDecomposition,
    owned: Vec<Vec<usize>>,
    halo: Vec<Vec<usize>>,
}

impl DomainDecomposedOp {
    /// Wrap a square CSR matrix with a domain decomposition of its rows.
    pub fn new(matrix: CsrMatrix, decomposition: DomainDecomposition, fd: FdOrder) -> Self {
        assert_eq!(matrix.nrows(), decomposition.grid.npoints());
        assert_eq!(matrix.ncols(), decomposition.grid.npoints());
        let owned: Vec<Vec<usize>> =
            (0..decomposition.n_domains()).map(|d| decomposition.owned_indices(d)).collect();
        let halo: Vec<Vec<usize>> =
            (0..decomposition.n_domains()).map(|d| decomposition.halo_indices(d, fd)).collect();
        Self { matrix, decomposition, owned, halo }
    }

    /// Number of domains.
    pub fn n_domains(&self) -> usize {
        self.decomposition.n_domains()
    }

    /// Total number of values exchanged between domains per application
    /// (one "halo exchange" of the bottom layer).
    pub fn halo_volume(&self) -> usize {
        self.halo.iter().map(std::vec::Vec::len).sum()
    }

    /// Access the wrapped matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.matrix
    }
}

impl LinearOperator for DomainDecomposedOp {
    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }
    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        // Each domain computes the rows it owns; the read-only input slice
        // plays the role of the halo-exchanged ghost values (the exchange
        // volume is reported by `halo_volume`).
        let results: Vec<(usize, Vec<Complex64>)> = self
            .owned
            .par_iter()
            .enumerate()
            .map(|(d, rows)| {
                let mut local = vec![Complex64::ZERO; rows.len()];
                for (slot, &row) in rows.iter().enumerate() {
                    let mut acc = Complex64::ZERO;
                    for (col, val) in self.matrix.row_entries(row) {
                        acc += val * x[col];
                    }
                    local[slot] = acc;
                }
                (d, local)
            })
            .collect();
        for (d, local) in results {
            for (slot, &row) in self.owned[d].iter().enumerate() {
                y[row] = local[slot];
            }
        }
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        // The adjoint of a row-partitioned operator needs a reduction over
        // domains; keep it simple and correct via the serial kernel (the
        // QEP operator only ever needs the adjoint of H01, which is applied
        // through the same row-partitioned path in production).
        self.matrix.matvec_adjoint_into(x, y);
    }
    fn memory_bytes(&self) -> usize {
        self.matrix.storage_bytes()
    }
}

/// Solve the systems of one quadrature point for all right-hand sides in
/// parallel (the top layer): embarrassingly parallel, no communication.
pub fn solve_rhs_parallel<A: LinearOperator + Sync + ?Sized>(
    op: &A,
    rhs: &[CVector],
    opts: &SolverOptions,
) -> Vec<BicgResult> {
    RayonExecutor.execute(rhs.iter().collect(), |b| bicg_dual(op, b, b, opts, None))
}

/// Solve a batch of (shift, right-hand side) tasks in parallel across both
/// the middle (quadrature) and top (right-hand side) layers.  The operator
/// factory builds `P(z_j)` for task `j`.
pub fn solve_tasks_parallel<'a, F, O>(
    tasks: &[(usize, CVector)],
    make_operator: F,
    opts: &SolverOptions,
) -> Vec<BicgResult>
where
    F: Fn(usize) -> O + Sync,
    O: LinearOperator + 'a,
{
    RayonExecutor.execute(tasks.iter().collect(), |(j, b)| {
        let op = make_operator(*j);
        bicg_dual(&op, b, b, opts, None)
    })
}

/// Measure the wall-clock seconds of `iterations` BiCG iterations on the
/// given operator — the calibration measurement that anchors the
/// performance model (and the quantity reported in the paper's Table 2).
pub fn measure_bicg_iteration_cost<A: LinearOperator + ?Sized>(
    op: &A,
    iterations: usize,
    seed: u64,
) -> f64 {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let b = CVector::random(op.dim(), &mut rng);
    let opts = SolverOptions {
        tolerance: 1e-300, // never converge: run exactly `iterations` steps
        max_iterations: iterations,
        record_history: false,
    };
    let start = std::time::Instant::now(); // cbs-audit: allow(D002) reason="calibration measurement for the Table 2 performance model; never feeds solver decisions"
    let _ = bicg_dual(op, &b, &b, &opts, None);
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_grid::Grid3;
    use cbs_linalg::c64;
    use cbs_sparse::CooBuilder;
    use rand::SeedableRng;

    fn laplacian_like(grid: Grid3) -> CsrMatrix {
        let n = grid.npoints();
        let mut b = CooBuilder::new(n, n);
        for (i, j, k, row) in grid.iter_points() {
            b.push(row, row, c64(6.0, 0.1));
            for (di, dj, dk) in [(1isize, 0isize, 0isize), (0, 1, 0), (0, 0, 1)] {
                let ii = grid.wrap_x(i as isize + di);
                let jj = grid.wrap_y(j as isize + dj);
                let kk = (k as isize + dk).rem_euclid(grid.nz as isize) as usize;
                b.push(row, grid.index(ii, jj, kk), c64(-1.0, 0.0));
                let ii2 = grid.wrap_x(i as isize - di);
                let jj2 = grid.wrap_y(j as isize - dj);
                let kk2 = (k as isize - dk).rem_euclid(grid.nz as isize) as usize;
                b.push(row, grid.index(ii2, jj2, kk2), c64(-1.0, 0.0));
            }
        }
        b.build()
    }

    #[test]
    fn domain_decomposed_matvec_matches_serial() {
        let grid = Grid3::isotropic(6, 6, 8, 0.5);
        let m = laplacian_like(grid);
        let dd = DomainDecomposition::along_z(grid, 4);
        let op = DomainDecomposedOp::new(m.clone(), dd, FdOrder::new(1));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(701);
        let x = CVector::random(grid.npoints(), &mut rng);
        let y_par = op.apply_vec(&x);
        let y_ser = m.matvec(&x);
        assert!((&y_par - &y_ser).norm() < 1e-12);
        assert_eq!(op.n_domains(), 4);
        assert!(op.halo_volume() > 0);
    }

    #[test]
    fn parallel_rhs_solves_match_sequential() {
        let grid = Grid3::isotropic(4, 4, 6, 0.5);
        let m = laplacian_like(grid);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(702);
        let rhs: Vec<CVector> = (0..4).map(|_| CVector::random(grid.npoints(), &mut rng)).collect();
        let opts = SolverOptions::default().with_tolerance(1e-11);
        let par = solve_rhs_parallel(&m, &rhs, &opts);
        for (b, r) in rhs.iter().zip(&par) {
            assert!(r.history.converged());
            let seq = bicg_dual(&m, b, b, &opts, None);
            assert!((&r.x - &seq.x).norm() < 1e-9);
        }
    }

    #[test]
    fn task_parallel_solves_with_per_task_shifts() {
        let grid = Grid3::isotropic(4, 4, 4, 0.5);
        let m = laplacian_like(grid);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(703);
        let tasks: Vec<(usize, CVector)> =
            (0..3).map(|j| (j, CVector::random(grid.npoints(), &mut rng))).collect();
        let opts = SolverOptions::default().with_tolerance(1e-11);
        let shifts = [c64(0.5, 0.2), c64(-0.3, 0.6), c64(1.0, -0.4)];
        let results =
            solve_tasks_parallel(&tasks, |j| cbs_sparse::ShiftedOp::new(&m, shifts[j]), &opts);
        assert_eq!(results.len(), 3);
        for ((j, b), r) in tasks.iter().zip(&results) {
            assert!(r.history.converged());
            // Verify against a direct solve with the same shift.
            let op = cbs_sparse::ShiftedOp::new(&m, shifts[*j]);
            let seq = bicg_dual(&op, b, b, &opts, None);
            assert!((&r.x - &seq.x).norm() < 1e-9);
        }
    }

    #[test]
    fn calibration_measurement_is_positive_and_scales() {
        let grid = Grid3::isotropic(5, 5, 5, 0.5);
        let m = laplacian_like(grid);
        let t10 = measure_bicg_iteration_cost(&m, 10, 1);
        let t100 = measure_bicg_iteration_cost(&m, 100, 1);
        assert!(t10 > 0.0);
        assert!(t100 > t10, "more iterations must take longer ({t100} vs {t10})");
    }
}
