//! Analytic performance model of the hierarchical Sakurai-Sugiura solver on
//! an Oakforest-PACS-like cluster.
//!
//! This machine has a single physical core, so wall-clock scaling to 2048
//! nodes cannot be measured directly.  Instead (see `DESIGN.md`) the model
//! below combines
//!
//! * a *measured* per-grid-point, per-iteration compute cost (calibrated by
//!   the harness from actual BiCG runs on this machine),
//! * the *exact* communication volumes of the bottom layer taken from the
//!   domain-decomposition geometry (halo planes per iteration, global
//!   reductions per iteration),
//! * the paper's observed load-imbalance of the middle layer (convergence of
//!   the BiCG iteration varies slightly across quadrature points),
//!
//! to predict the strong-scaling curves of Figures 8-10 and the intra-node
//! sweep of Table 2.

use serde::{Deserialize, Serialize};

use crate::hierarchy::ParallelLayout;

/// Hardware parameters of one node and of the interconnect.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MachineModel {
    /// Cores per node (Xeon Phi 7250: 68).
    pub cores_per_node: usize,
    /// Sustained per-core throughput relative to the calibration core
    /// (the KNL core is slower per-core than a desktop Xeon; < 1).
    pub core_speed_ratio: f64,
    /// Parallel efficiency lost per doubling of threads inside a node
    /// (memory-bandwidth saturation of the many-core processor).
    pub thread_efficiency: f64,
    /// Point-to-point message latency (seconds).
    pub network_latency: f64,
    /// Point-to-point bandwidth (bytes/second).
    pub network_bandwidth: f64,
    /// Latency of a global reduction among `p` processes is modelled as
    /// `allreduce_latency * log2(p)`.
    pub allreduce_latency: f64,
}

impl MachineModel {
    /// Parameters approximating an Oakforest-PACS node (Intel Xeon Phi 7250,
    /// Omni-Path interconnect).
    pub fn oakforest_pacs() -> Self {
        Self {
            cores_per_node: 68,
            core_speed_ratio: 0.35,
            thread_efficiency: 0.85,
            network_latency: 2.0e-6,
            network_bandwidth: 12.5e9,
            allreduce_latency: 3.0e-6,
        }
    }
}

/// Workload parameters of one Sakurai-Sugiura solve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Hamiltonian dimension (grid points).
    pub dimension: usize,
    /// Average non-zeros per row of the sparse blocks.
    pub nnz_per_row: f64,
    /// Lateral plane size `Nx * Ny` (halo planes exchanged per iteration).
    pub plane_size: usize,
    /// Finite-difference half-width (halo depth).
    pub nf: usize,
    /// Number of quadrature points (`N_int`).
    pub n_int: usize,
    /// Number of right-hand sides (`N_rh`).
    pub n_rh: usize,
    /// Average BiCG iterations needed per linear system.
    pub bicg_iterations: f64,
    /// Measured time of one BiCG iteration per grid point on the
    /// calibration core (seconds); supplied by the harness.
    pub seconds_per_point_iteration: f64,
    /// Relative spread of BiCG iteration counts across quadrature points
    /// (drives the middle-layer load imbalance; the paper observes ~10-25%).
    pub convergence_spread: f64,
}

/// Predicted timing of one configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PredictedTime {
    /// Time spent in local computation (seconds).
    pub compute_seconds: f64,
    /// Time spent in halo exchanges (seconds).
    pub halo_seconds: f64,
    /// Time spent in global reductions (seconds).
    pub reduction_seconds: f64,
    /// Extra time from load imbalance across the middle layer (seconds).
    pub imbalance_seconds: f64,
}

impl PredictedTime {
    /// Total predicted wall-clock time.
    pub fn total(&self) -> f64 {
        self.compute_seconds + self.halo_seconds + self.reduction_seconds + self.imbalance_seconds
    }
}

/// The performance model: machine + workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PerformanceModel {
    /// Hardware description.
    pub machine: MachineModel,
    /// Workload description.
    pub workload: WorkloadModel,
}

impl PerformanceModel {
    /// Predict the wall-clock time of the linear-solve phase (step 1 of the
    /// algorithm, the dominant cost) under a given layout.
    pub fn predict(&self, layout: &ParallelLayout) -> PredictedTime {
        let w = &self.workload;
        let m = &self.machine;

        // Work per process: the (N_int x N_rh) systems are distributed over
        // the top and middle layers; each system costs `bicg_iterations`
        // iterations over `dimension / domains` local points.
        let systems_total = (w.n_int * w.n_rh) as f64;
        let systems_per_group = (w.n_int as f64 / layout.quadrature_groups as f64).ceil()
            * (w.n_rh as f64 / layout.rhs_groups as f64).ceil();
        let local_points = w.dimension as f64 / layout.domains as f64;

        // Per-iteration, per-point compute time on one KNL process with
        // `threads_per_process` threads (imperfect thread scaling).
        let thread_speedup = effective_threads(layout.threads_per_process, m.thread_efficiency);
        let point_time = w.seconds_per_point_iteration / (m.core_speed_ratio * thread_speedup);

        // Boundary overhead of the domain decomposition: duplicated stencil
        // work, packing/unpacking and extra memory traffic proportional to
        // the halo-to-interior ratio.  This is what makes over-decomposing a
        // small grid (Table 2, N_dm = 64 on 20 z-planes) counter-productive.
        let halo_points = 2.0 * (w.nf * w.plane_size) as f64;
        let boundary_overhead =
            if layout.domains > 1 { 1.0 + 0.05 * halo_points / local_points } else { 1.0 };

        let compute_seconds =
            systems_per_group * w.bicg_iterations * local_points * point_time * boundary_overhead;

        // Halo exchange: 2 matrix-vector products per BiCG iteration, each
        // exchanging `nf` planes with up to two neighbours (z decomposition).
        let halo_seconds = if layout.domains > 1 {
            let bytes = (w.plane_size * w.nf * 16) as f64; // Complex64 = 16 B
            let per_exchange = 2.0 * (m.network_latency + bytes / m.network_bandwidth);
            systems_per_group * w.bicg_iterations * 2.0 * per_exchange
        } else {
            0.0
        };

        // Global reductions: 2 inner products + 1 norm per matrix-vector pair
        // per iteration across the `domains` processes of one solve.
        let reduction_seconds = if layout.domains > 1 {
            let per_reduction = m.allreduce_latency * (layout.domains as f64).log2().max(1.0);
            systems_per_group * w.bicg_iterations * 3.0 * per_reduction
        } else {
            0.0
        };

        // Middle-layer load imbalance: the slowest quadrature point in a
        // group determines its finish time.  With `g` points per group the
        // expected maximum of the iteration spread grows roughly with the
        // fraction of points handled per group.
        let quad_per_group = (w.n_int as f64 / layout.quadrature_groups as f64).ceil();
        let imbalance_factor = w.convergence_spread * (1.0 - quad_per_group / w.n_int as f64);
        let imbalance_seconds = compute_seconds * imbalance_factor;

        // Normalize so that the serial layout reproduces the full workload.
        let _ = systems_total;
        PredictedTime { compute_seconds, halo_seconds, reduction_seconds, imbalance_seconds }
    }

    /// Predicted speed-up of `layout` relative to the serial layout.
    pub fn speedup(&self, layout: &ParallelLayout) -> f64 {
        let serial = self.predict(&ParallelLayout::serial()).total();
        serial / self.predict(layout).total()
    }

    /// Strong-scaling sweep of one layer keeping the others fixed; returns
    /// `(processes_in_layer, predicted_total_seconds, speedup_vs_first)`.
    pub fn scaling_sweep(
        &self,
        base: ParallelLayout,
        layer: ScalingLayer,
        counts: &[usize],
    ) -> Vec<(usize, f64, f64)> {
        let mut out = Vec::with_capacity(counts.len());
        let mut first_time = None;
        for &c in counts {
            let mut layout = base;
            match layer {
                ScalingLayer::RightHandSides => layout.rhs_groups = c,
                ScalingLayer::Quadrature => layout.quadrature_groups = c,
                ScalingLayer::Domain => layout.domains = c,
            }
            let t = self.predict(&layout).total();
            let f = *first_time.get_or_insert(t);
            out.push((c, t, f / t));
        }
        out
    }

    /// Predict the elapsed time of `iterations` BiCG iterations on a single
    /// 64-core node split between `threads` OpenMP threads and `domains`
    /// MPI domains (the paper's Table 2).
    pub fn intranode_time(&self, threads: usize, domains: usize, iterations: f64) -> f64 {
        let layout = ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 1,
            domains,
            threads_per_process: threads,
        };
        let mut model = *self;
        // Table 2 measures a single linear system.
        model.workload.n_int = 1;
        model.workload.n_rh = 1;
        model.workload.bicg_iterations = iterations;
        // Intra-node "messages" are memory copies: far lower latency.
        model.machine.network_latency = 3.0e-7;
        model.machine.allreduce_latency = 4.0e-7;
        model.machine.network_bandwidth = 80.0e9;
        model.predict(&layout).total()
    }
}

/// Which layer a scaling sweep varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingLayer {
    /// Top layer (right-hand sides).
    RightHandSides,
    /// Middle layer (quadrature points).
    Quadrature,
    /// Bottom layer (domain decomposition).
    Domain,
}

/// Effective speedup of `t` threads with per-doubling efficiency `eff`.
fn effective_threads(t: usize, eff: f64) -> f64 {
    if t <= 1 {
        return 1.0;
    }
    let doublings = (t as f64).log2();
    (t as f64) * eff.powf(doublings)
}

/// A reasonable default workload for quick experiments; the harness
/// overrides the measured fields.
pub fn default_workload(dimension: usize, plane_size: usize) -> WorkloadModel {
    WorkloadModel {
        dimension,
        nnz_per_row: 25.0,
        plane_size,
        nf: 4,
        n_int: 32,
        n_rh: 16,
        bicg_iterations: 500.0,
        seconds_per_point_iteration: 2.0e-8,
        convergence_spread: 0.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PerformanceModel {
        PerformanceModel {
            machine: MachineModel::oakforest_pacs(),
            workload: default_workload(72 * 72 * 20, 72 * 72),
        }
    }

    #[test]
    fn top_layer_scales_almost_ideally() {
        let m = model();
        let base = ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 2,
            domains: 1,
            threads_per_process: 68,
        };
        let sweep = m.scaling_sweep(base, ScalingLayer::RightHandSides, &[1, 2, 4, 8, 16]);
        for (i, &(p, _, s)) in sweep.iter().enumerate() {
            let ideal = p as f64 / sweep[0].0 as f64;
            assert!(s > 0.9 * ideal, "top layer speedup {s} at p={p} (ideal {ideal})");
            if i > 0 {
                assert!(s > sweep[i - 1].2, "speedup must increase");
            }
        }
    }

    #[test]
    fn bottom_layer_is_less_efficient_than_top_layer() {
        let m = model();
        let top = m.speedup(&ParallelLayout {
            rhs_groups: 16,
            quadrature_groups: 1,
            domains: 1,
            threads_per_process: 1,
        });
        let bottom = m.speedup(&ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 1,
            domains: 16,
            threads_per_process: 1,
        });
        assert!(top > bottom, "top {top} should beat bottom {bottom}");
        assert!(bottom > 1.0, "bottom layer must still help ({bottom})");
    }

    #[test]
    fn middle_layer_efficiency_between_top_and_bottom() {
        let m = model();
        let top = m.speedup(&ParallelLayout {
            rhs_groups: 16,
            quadrature_groups: 1,
            domains: 1,
            threads_per_process: 1,
        });
        let mid = m.speedup(&ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 16,
            domains: 1,
            threads_per_process: 1,
        });
        let bottom = m.speedup(&ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 1,
            domains: 16,
            threads_per_process: 1,
        });
        assert!(top >= mid, "top {top} >= middle {mid}");
        assert!(mid > bottom, "middle {mid} > bottom {bottom}");
    }

    #[test]
    fn larger_systems_scale_better_in_the_bottom_layer() {
        // The paper observes that domain decomposition becomes more efficient
        // as the system grows (communication surface / volume shrinks).
        let small = PerformanceModel {
            machine: MachineModel::oakforest_pacs(),
            workload: default_workload(72 * 72 * 20, 72 * 72),
        };
        let large = PerformanceModel {
            machine: MachineModel::oakforest_pacs(),
            workload: default_workload(72 * 72 * 640, 72 * 72),
        };
        let layout = ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 1,
            domains: 16,
            threads_per_process: 1,
        };
        assert!(large.speedup(&layout) > small.speedup(&layout));
    }

    #[test]
    fn intranode_sweep_has_an_interior_optimum() {
        // Table 2: neither pure-OpenMP nor pure-MPI is optimal on 64 cores.
        let m = model();
        let splits: Vec<(usize, usize)> =
            vec![(1, 64), (2, 32), (4, 16), (8, 8), (16, 4), (32, 2), (64, 1)];
        let times: Vec<f64> = splits.iter().map(|&(t, d)| m.intranode_time(t, d, 1000.0)).collect();
        let best = times.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(
            best > 0 && best < splits.len() - 1,
            "optimum should be interior, got index {best}: {times:?}"
        );
    }

    #[test]
    fn effective_threads_monotone_but_sublinear() {
        assert_eq!(effective_threads(1, 0.9), 1.0);
        let t4 = effective_threads(4, 0.9);
        let t8 = effective_threads(8, 0.9);
        assert!(t4 > 1.0 && t8 > t4);
        assert!(t8 < 8.0);
    }
}
