//! Performance models of the hierarchical Sakurai-Sugiura solver: the
//! analytic cluster model behind the paper's scaling figures, and the
//! **measured-sample [`CostModel`]** behind policy auto-tuning.
//!
//! # The calibrated cost model (auto-tuning)
//!
//! [`CostModel`] is fitted from [`CalibrationSample`]s — per-policy-cell
//! measurements combining the storage-honest solver counters
//! (`operator_traversals`, `operator_assemblies`, the cold/warm iteration
//! split) with per-stage wall-ns from `cbs-trace` span aggregation — and
//! predicts the wall-clock of a sweep per `(block, precond, slices)` cell
//! for a given workload ([`WorkloadSpec`]: system size, operator nonzeros,
//! `N_rh`, energy count).  `cbs-sweep`'s calibration probe produces the
//! samples by running the first scan energy under 2–3 candidate cells; the
//! model commits the remainder of the sweep to the predicted winner.
//!
//! Decision discipline, because probe wall-clocks are noisy while the
//! solver counters are bit-deterministic:
//!
//! * candidate cells are ranked in a fixed priority order and a challenger
//!   only displaces the incumbent when its predicted wall-clock wins by a
//!   configurable hysteresis margin ([`CostModel::best_cell`]), so the
//!   ranking is stable against timing jitter whenever the real gap between
//!   cells exceeds the margin;
//! * the committed decision is recorded in the sweep checkpoint (format
//!   v5), so a killed sweep *replays* the recorded cell instead of
//!   re-probing — resume never re-decides.
//!
//! The slice-count tuner ([`CostModel::tune_slices`]) models a partitioned
//! contour as `S` independent solves over the shrunken per-slice source
//! block (`N_rh → max(2, ceil(2 N_rh / S))`, the `slice_ss_config` rule)
//! with extraction shrinking cubically in the per-slice subspace (the
//! Hankel SVD term): `S > 1` is only selected when the predicted
//! extraction shrinkage beats the extra solve volume, which at bench scale
//! it never does (`BENCH_sweep.json`: S = 2 costs ~2.9x wall).
//!
//! # The analytic cluster model (scaling figures)
//!
//! This machine has a single physical core, so wall-clock scaling to 2048
//! nodes cannot be measured directly.  Instead (see `DESIGN.md`)
//! [`PerformanceModel`] combines
//!
//! * a *measured* per-grid-point, per-iteration compute cost (calibrated by
//!   the harness from actual BiCG runs on this machine),
//! * the *exact* communication volumes of the bottom layer taken from the
//!   domain-decomposition geometry (halo planes per iteration, global
//!   reductions per iteration),
//! * the paper's observed load-imbalance of the middle layer (convergence of
//!   the BiCG iteration varies slightly across quadrature points),
//!
//! to predict the strong-scaling curves of Figures 8-10 and the intra-node
//! sweep of Table 2.

use serde::{Deserialize, Serialize};

use crate::hierarchy::ParallelLayout;

/// One `(block, precond, slices)` policy cell, identified by neutral
/// discriminants (this crate sits below `cbs-core` in the crate graph, so
/// the policy enums themselves cannot appear here).  The discriminants
/// match `cbs_core`'s: `per_rhs` is the `BlockPolicy` choice, `precond` is
/// `PrecondPolicy as u8` (0 matrix-free, 1 assembled, 2 ILU(0), 3
/// ILU(0)+SMW), `slices` the angular slice count (1 = single contour).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId {
    /// `true` for per-rhs single-vector jobs, `false` for fused per-node
    /// block solves.
    pub per_rhs: bool,
    /// `PrecondPolicy` discriminant (0–3).
    pub precond: u8,
    /// Angular slice count of the contour partition (1 = single).
    pub slices: u32,
}

/// One measured calibration sample: the deterministic solver counters plus
/// the wall-clock (total and per-stage, when a `cbs-trace` session
/// recorded) of a probe run under one policy cell.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CalibrationSample {
    /// The policy cell the sample was measured under.
    pub cell: CellId,
    /// Hamiltonian dimension of the probed system.
    pub dimension: usize,
    /// Nonzeros of the operator (assembled pattern nnz, or `dimension²`
    /// for dense/matrix-free operators).
    pub nnz: usize,
    /// Right-hand sides of the probe solve.
    pub n_rh: usize,
    /// Scan energies covered by the sample (the probe uses 1).
    pub energies: usize,
    /// BiCG iterations (bit-deterministic per cell).
    pub iterations: u64,
    /// Operator-storage traversals (the block/assembled data-path counter).
    pub traversals: u64,
    /// Numeric pattern refills (zero under matrix-free).
    pub assemblies: u64,
    /// Measured wall-clock of the sample (nanoseconds).
    pub wall_ns: u64,
    /// Kernel-stage wall-ns from span aggregation; zero when untraced.
    pub kernel_wall_ns: u64,
    /// Preconditioner-stage (ILU factor + triangular sweep) wall-ns; zero
    /// when untraced.
    pub precond_wall_ns: u64,
    /// Extraction-stage wall-ns; zero when untraced.
    pub extraction_wall_ns: u64,
}

impl CalibrationSample {
    /// A sample the model can fit: every workload axis nonzero and a
    /// positive, finite wall-clock.
    pub fn is_valid(&self) -> bool {
        self.dimension > 0
            && self.nnz > 0
            && self.n_rh > 0
            && self.energies > 0
            && self.iterations > 0
            && self.wall_ns > 0
    }
}

/// The workload a prediction is asked for.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Hamiltonian dimension.
    pub dimension: usize,
    /// Operator nonzeros.
    pub nnz: usize,
    /// Right-hand sides per energy.
    pub n_rh: usize,
    /// Scan energies in the sweep.
    pub energies: usize,
}

impl WorkloadSpec {
    /// A workload the model can predict for (every axis nonzero).
    pub fn is_valid(&self) -> bool {
        self.dimension > 0 && self.nnz > 0 && self.n_rh > 0 && self.energies > 0
    }
}

/// Per-cell unit costs fitted from one or more samples.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
struct CellFit {
    /// Solve-phase nanoseconds per `(energy x nnz x rhs)` unit of work.
    solve_unit: f64,
    /// Extraction nanoseconds per energy.
    extraction_per_energy: f64,
    /// Samples folded into this fit (running mean).
    samples: u32,
}

/// A cost model fitted from measured [`CalibrationSample`]s.
///
/// A pure function of its samples: identical sample sets (in order) fit to
/// identical models and make identical decisions — the property the
/// sweep-level probe-replay determinism tests rest on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Fitted cells in first-seen sample order — the candidate priority
    /// order [`best_cell`](Self::best_cell)'s hysteresis respects.
    cells: Vec<(CellId, CellFit)>,
}

impl CostModel {
    /// Fit a model from measured samples.  Invalid samples (zero counters,
    /// zero wall) are skipped; multiple samples of one cell fold into a
    /// running mean.  Returns `None` when no valid sample remains — the
    /// caller's cue to fall back to the default policy cell.
    pub fn fit(samples: &[CalibrationSample]) -> Option<Self> {
        let mut cells: Vec<(CellId, CellFit)> = Vec::new();
        for s in samples {
            if !s.is_valid() {
                continue;
            }
            // The solve phase is everything that is not extraction; clamp
            // at 1 ns so a (mis-)traced sample whose extraction spans cover
            // the whole wall still fits a positive solve unit.
            let solve_wall = (s.wall_ns.saturating_sub(s.extraction_wall_ns)).max(1) as f64;
            let volume = (s.energies * s.nnz * s.n_rh) as f64;
            let solve_unit = solve_wall / volume;
            let extraction_per_energy = s.extraction_wall_ns as f64 / s.energies as f64;
            if !solve_unit.is_finite() || solve_unit <= 0.0 || !extraction_per_energy.is_finite() {
                continue;
            }
            match cells.iter_mut().find(|(c, _)| *c == s.cell) {
                Some((_, fit)) => {
                    let n = fit.samples as f64;
                    fit.solve_unit = (fit.solve_unit * n + solve_unit) / (n + 1.0);
                    fit.extraction_per_energy =
                        (fit.extraction_per_energy * n + extraction_per_energy) / (n + 1.0);
                    fit.samples += 1;
                }
                None => {
                    cells.push((s.cell, CellFit { solve_unit, extraction_per_energy, samples: 1 }));
                }
            }
        }
        if cells.is_empty() {
            None
        } else {
            Some(Self { cells })
        }
    }

    /// The fitted cells, in candidate priority (first-seen) order.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells.iter().map(|(c, _)| *c)
    }

    /// Predicted wall-clock (nanoseconds) of running `w` under `cell`.
    ///
    /// `energies x (solve_unit x nnz x n_rh + extraction_per_energy)` —
    /// strictly positive and finite for any valid workload, and monotone
    /// non-decreasing in `nnz` and in `energies` at a fixed cell (the
    /// structural invariants the workspace proptests lock).  `None` when
    /// the cell was never fitted or the workload is degenerate.
    pub fn predict(&self, cell: CellId, w: &WorkloadSpec) -> Option<f64> {
        if !w.is_valid() {
            return None;
        }
        let (_, fit) = self.cells.iter().find(|(c, _)| *c == cell)?;
        let per_energy = fit.solve_unit * (w.nnz * w.n_rh) as f64 + fit.extraction_per_energy;
        Some(w.energies as f64 * per_energy)
    }

    /// Pick the cheapest fitted cell for `w` with hysteresis: cells are
    /// visited in fit (candidate priority) order and a challenger only
    /// displaces the incumbent when its predicted wall-clock is at least
    /// `margin` (e.g. `0.10` = 10%) below the incumbent's — timing jitter
    /// smaller than the margin cannot flip the decision.
    pub fn best_cell(&self, w: &WorkloadSpec, margin: f64) -> Option<CellId> {
        let mut best: Option<(CellId, f64)> = None;
        for (cell, _) in &self.cells {
            let Some(t) = self.predict(*cell, w) else { continue };
            best = match best {
                None => Some((*cell, t)),
                Some((bc, bt)) if t < bt * (1.0 - margin) => {
                    let _ = bc;
                    Some((*cell, t))
                }
                keep => keep,
            };
        }
        best.map(|(c, _)| c)
    }

    /// The slice-count tuner: starting from single-contour `cell`, predict
    /// the wall-clock of partitioning the contour into `S` sectors for
    /// `S in 2..=max_slices` and return the winner — `1` unless a sliced
    /// variant beats the single contour by at least `margin`.
    ///
    /// The sliced prediction mirrors the engine's shrinkage rule
    /// (`slice_ss_config`): each of the `S` slices solves its own full
    /// quadrature grid over `n_rh_s = clamp(ceil(2 n_rh / S), 2, n_rh-1)`
    /// right-hand sides (solve volume `S x n_rh_s >= 2 n_rh` — always at
    /// least doubled), while extraction shrinks cubically with the
    /// per-slice subspace (the Hankel SVD term).  Slicing therefore only
    /// wins when extraction dominates the solve phase, which at bench
    /// scale it never does.
    pub fn tune_slices(&self, cell: CellId, w: &WorkloadSpec, max_slices: u32, margin: f64) -> u32 {
        let Some(single) = self.predict(cell, w) else { return 1 };
        let Some((_, fit)) = self.cells.iter().find(|(c, _)| *c == cell) else { return 1 };
        if !w.is_valid() {
            return 1;
        }
        let mut best = (1u32, single);
        for s in 2..=max_slices.max(1) {
            let n_rh_s =
                (2 * w.n_rh).div_ceil(s as usize).max(2).min(w.n_rh.saturating_sub(1).max(1));
            let shrink = n_rh_s as f64 / w.n_rh as f64;
            let solve = fit.solve_unit * (w.nnz * n_rh_s) as f64 * s as f64;
            let extraction = fit.extraction_per_energy * s as f64 * shrink.powi(3);
            let sliced = w.energies as f64 * (solve + extraction);
            if sliced < best.1 * (1.0 - margin) {
                best = (s, sliced);
            }
        }
        best.0
    }
}

/// Hardware parameters of one node and of the interconnect.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MachineModel {
    /// Cores per node (Xeon Phi 7250: 68).
    pub cores_per_node: usize,
    /// Sustained per-core throughput relative to the calibration core
    /// (the KNL core is slower per-core than a desktop Xeon; < 1).
    pub core_speed_ratio: f64,
    /// Parallel efficiency lost per doubling of threads inside a node
    /// (memory-bandwidth saturation of the many-core processor).
    pub thread_efficiency: f64,
    /// Point-to-point message latency (seconds).
    pub network_latency: f64,
    /// Point-to-point bandwidth (bytes/second).
    pub network_bandwidth: f64,
    /// Latency of a global reduction among `p` processes is modelled as
    /// `allreduce_latency * log2(p)`.
    pub allreduce_latency: f64,
}

impl MachineModel {
    /// Parameters approximating an Oakforest-PACS node (Intel Xeon Phi 7250,
    /// Omni-Path interconnect).
    pub fn oakforest_pacs() -> Self {
        Self {
            cores_per_node: 68,
            core_speed_ratio: 0.35,
            thread_efficiency: 0.85,
            network_latency: 2.0e-6,
            network_bandwidth: 12.5e9,
            allreduce_latency: 3.0e-6,
        }
    }
}

/// Workload parameters of one Sakurai-Sugiura solve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WorkloadModel {
    /// Hamiltonian dimension (grid points).
    pub dimension: usize,
    /// Average non-zeros per row of the sparse blocks.
    pub nnz_per_row: f64,
    /// Lateral plane size `Nx * Ny` (halo planes exchanged per iteration).
    pub plane_size: usize,
    /// Finite-difference half-width (halo depth).
    pub nf: usize,
    /// Number of quadrature points (`N_int`).
    pub n_int: usize,
    /// Number of right-hand sides (`N_rh`).
    pub n_rh: usize,
    /// Average BiCG iterations needed per linear system.
    pub bicg_iterations: f64,
    /// Measured time of one BiCG iteration per grid point on the
    /// calibration core (seconds); supplied by the harness.
    pub seconds_per_point_iteration: f64,
    /// Relative spread of BiCG iteration counts across quadrature points
    /// (drives the middle-layer load imbalance; the paper observes ~10-25%).
    pub convergence_spread: f64,
}

/// Predicted timing of one configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PredictedTime {
    /// Time spent in local computation (seconds).
    pub compute_seconds: f64,
    /// Time spent in halo exchanges (seconds).
    pub halo_seconds: f64,
    /// Time spent in global reductions (seconds).
    pub reduction_seconds: f64,
    /// Extra time from load imbalance across the middle layer (seconds).
    pub imbalance_seconds: f64,
}

impl PredictedTime {
    /// Total predicted wall-clock time.
    pub fn total(&self) -> f64 {
        self.compute_seconds + self.halo_seconds + self.reduction_seconds + self.imbalance_seconds
    }
}

/// The performance model: machine + workload.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PerformanceModel {
    /// Hardware description.
    pub machine: MachineModel,
    /// Workload description.
    pub workload: WorkloadModel,
}

impl PerformanceModel {
    /// Predict the wall-clock time of the linear-solve phase (step 1 of the
    /// algorithm, the dominant cost) under a given layout.
    pub fn predict(&self, layout: &ParallelLayout) -> PredictedTime {
        let w = &self.workload;
        let m = &self.machine;

        // Work per process: the (N_int x N_rh) systems are distributed over
        // the top and middle layers; each system costs `bicg_iterations`
        // iterations over `dimension / domains` local points.
        let systems_total = (w.n_int * w.n_rh) as f64;
        let systems_per_group = (w.n_int as f64 / layout.quadrature_groups as f64).ceil()
            * (w.n_rh as f64 / layout.rhs_groups as f64).ceil();
        let local_points = w.dimension as f64 / layout.domains as f64;

        // Per-iteration, per-point compute time on one KNL process with
        // `threads_per_process` threads (imperfect thread scaling).
        let thread_speedup = effective_threads(layout.threads_per_process, m.thread_efficiency);
        let point_time = w.seconds_per_point_iteration / (m.core_speed_ratio * thread_speedup);

        // Boundary overhead of the domain decomposition: duplicated stencil
        // work, packing/unpacking and extra memory traffic proportional to
        // the halo-to-interior ratio.  This is what makes over-decomposing a
        // small grid (Table 2, N_dm = 64 on 20 z-planes) counter-productive.
        let halo_points = 2.0 * (w.nf * w.plane_size) as f64;
        let boundary_overhead =
            if layout.domains > 1 { 1.0 + 0.05 * halo_points / local_points } else { 1.0 };

        let compute_seconds =
            systems_per_group * w.bicg_iterations * local_points * point_time * boundary_overhead;

        // Halo exchange: 2 matrix-vector products per BiCG iteration, each
        // exchanging `nf` planes with up to two neighbours (z decomposition).
        let halo_seconds = if layout.domains > 1 {
            let bytes = (w.plane_size * w.nf * 16) as f64; // Complex64 = 16 B
            let per_exchange = 2.0 * (m.network_latency + bytes / m.network_bandwidth);
            systems_per_group * w.bicg_iterations * 2.0 * per_exchange
        } else {
            0.0
        };

        // Global reductions: 2 inner products + 1 norm per matrix-vector pair
        // per iteration across the `domains` processes of one solve.
        let reduction_seconds = if layout.domains > 1 {
            let per_reduction = m.allreduce_latency * (layout.domains as f64).log2().max(1.0);
            systems_per_group * w.bicg_iterations * 3.0 * per_reduction
        } else {
            0.0
        };

        // Middle-layer load imbalance: the slowest quadrature point in a
        // group determines its finish time.  With `g` points per group the
        // expected maximum of the iteration spread grows roughly with the
        // fraction of points handled per group.
        let quad_per_group = (w.n_int as f64 / layout.quadrature_groups as f64).ceil();
        let imbalance_factor = w.convergence_spread * (1.0 - quad_per_group / w.n_int as f64);
        let imbalance_seconds = compute_seconds * imbalance_factor;

        // Normalize so that the serial layout reproduces the full workload.
        let _ = systems_total;
        PredictedTime { compute_seconds, halo_seconds, reduction_seconds, imbalance_seconds }
    }

    /// Predicted speed-up of `layout` relative to the serial layout.
    pub fn speedup(&self, layout: &ParallelLayout) -> f64 {
        let serial = self.predict(&ParallelLayout::serial()).total();
        serial / self.predict(layout).total()
    }

    /// Strong-scaling sweep of one layer keeping the others fixed; returns
    /// `(processes_in_layer, predicted_total_seconds, speedup_vs_first)`.
    pub fn scaling_sweep(
        &self,
        base: ParallelLayout,
        layer: ScalingLayer,
        counts: &[usize],
    ) -> Vec<(usize, f64, f64)> {
        let mut out = Vec::with_capacity(counts.len());
        let mut first_time = None;
        for &c in counts {
            let mut layout = base;
            match layer {
                ScalingLayer::RightHandSides => layout.rhs_groups = c,
                ScalingLayer::Quadrature => layout.quadrature_groups = c,
                ScalingLayer::Domain => layout.domains = c,
            }
            let t = self.predict(&layout).total();
            let f = *first_time.get_or_insert(t);
            out.push((c, t, f / t));
        }
        out
    }

    /// Predict the elapsed time of `iterations` BiCG iterations on a single
    /// 64-core node split between `threads` OpenMP threads and `domains`
    /// MPI domains (the paper's Table 2).
    pub fn intranode_time(&self, threads: usize, domains: usize, iterations: f64) -> f64 {
        let layout = ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 1,
            domains,
            threads_per_process: threads,
        };
        let mut model = *self;
        // Table 2 measures a single linear system.
        model.workload.n_int = 1;
        model.workload.n_rh = 1;
        model.workload.bicg_iterations = iterations;
        // Intra-node "messages" are memory copies: far lower latency.
        model.machine.network_latency = 3.0e-7;
        model.machine.allreduce_latency = 4.0e-7;
        model.machine.network_bandwidth = 80.0e9;
        model.predict(&layout).total()
    }
}

/// Which layer a scaling sweep varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScalingLayer {
    /// Top layer (right-hand sides).
    RightHandSides,
    /// Middle layer (quadrature points).
    Quadrature,
    /// Bottom layer (domain decomposition).
    Domain,
}

/// Effective speedup of `t` threads with per-doubling efficiency `eff`.
fn effective_threads(t: usize, eff: f64) -> f64 {
    if t <= 1 {
        return 1.0;
    }
    let doublings = (t as f64).log2();
    (t as f64) * eff.powf(doublings)
}

/// A reasonable default workload for quick experiments; the harness
/// overrides the measured fields.
pub fn default_workload(dimension: usize, plane_size: usize) -> WorkloadModel {
    WorkloadModel {
        dimension,
        nnz_per_row: 25.0,
        plane_size,
        nf: 4,
        n_int: 32,
        n_rh: 16,
        bicg_iterations: 500.0,
        seconds_per_point_iteration: 2.0e-8,
        convergence_spread: 0.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PerformanceModel {
        PerformanceModel {
            machine: MachineModel::oakforest_pacs(),
            workload: default_workload(72 * 72 * 20, 72 * 72),
        }
    }

    #[test]
    fn top_layer_scales_almost_ideally() {
        let m = model();
        let base = ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 2,
            domains: 1,
            threads_per_process: 68,
        };
        let sweep = m.scaling_sweep(base, ScalingLayer::RightHandSides, &[1, 2, 4, 8, 16]);
        for (i, &(p, _, s)) in sweep.iter().enumerate() {
            let ideal = p as f64 / sweep[0].0 as f64;
            assert!(s > 0.9 * ideal, "top layer speedup {s} at p={p} (ideal {ideal})");
            if i > 0 {
                assert!(s > sweep[i - 1].2, "speedup must increase");
            }
        }
    }

    #[test]
    fn bottom_layer_is_less_efficient_than_top_layer() {
        let m = model();
        let top = m.speedup(&ParallelLayout {
            rhs_groups: 16,
            quadrature_groups: 1,
            domains: 1,
            threads_per_process: 1,
        });
        let bottom = m.speedup(&ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 1,
            domains: 16,
            threads_per_process: 1,
        });
        assert!(top > bottom, "top {top} should beat bottom {bottom}");
        assert!(bottom > 1.0, "bottom layer must still help ({bottom})");
    }

    #[test]
    fn middle_layer_efficiency_between_top_and_bottom() {
        let m = model();
        let top = m.speedup(&ParallelLayout {
            rhs_groups: 16,
            quadrature_groups: 1,
            domains: 1,
            threads_per_process: 1,
        });
        let mid = m.speedup(&ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 16,
            domains: 1,
            threads_per_process: 1,
        });
        let bottom = m.speedup(&ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 1,
            domains: 16,
            threads_per_process: 1,
        });
        assert!(top >= mid, "top {top} >= middle {mid}");
        assert!(mid > bottom, "middle {mid} > bottom {bottom}");
    }

    #[test]
    fn larger_systems_scale_better_in_the_bottom_layer() {
        // The paper observes that domain decomposition becomes more efficient
        // as the system grows (communication surface / volume shrinks).
        let small = PerformanceModel {
            machine: MachineModel::oakforest_pacs(),
            workload: default_workload(72 * 72 * 20, 72 * 72),
        };
        let large = PerformanceModel {
            machine: MachineModel::oakforest_pacs(),
            workload: default_workload(72 * 72 * 640, 72 * 72),
        };
        let layout = ParallelLayout {
            rhs_groups: 1,
            quadrature_groups: 1,
            domains: 16,
            threads_per_process: 1,
        };
        assert!(large.speedup(&layout) > small.speedup(&layout));
    }

    #[test]
    fn intranode_sweep_has_an_interior_optimum() {
        // Table 2: neither pure-OpenMP nor pure-MPI is optimal on 64 cores.
        let m = model();
        let splits: Vec<(usize, usize)> =
            vec![(1, 64), (2, 32), (4, 16), (8, 8), (16, 4), (32, 2), (64, 1)];
        let times: Vec<f64> = splits.iter().map(|&(t, d)| m.intranode_time(t, d, 1000.0)).collect();
        let best = times.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(
            best > 0 && best < splits.len() - 1,
            "optimum should be interior, got index {best}: {times:?}"
        );
    }

    #[test]
    fn effective_threads_monotone_but_sublinear() {
        assert_eq!(effective_threads(1, 0.9), 1.0);
        let t4 = effective_threads(4, 0.9);
        let t8 = effective_threads(8, 0.9);
        assert!(t4 > 1.0 && t8 > t4);
        assert!(t8 < 8.0);
    }

    // ---- calibrated cost model -------------------------------------------

    fn cell(precond: u8) -> CellId {
        CellId { per_rhs: false, precond, slices: 1 }
    }

    fn sample(precond: u8, wall_ns: u64, extraction_wall_ns: u64) -> CalibrationSample {
        CalibrationSample {
            cell: cell(precond),
            dimension: 512,
            nnz: 18 * 512,
            n_rh: 4,
            energies: 1,
            iterations: 1000,
            traversals: 4000,
            assemblies: 8,
            wall_ns,
            kernel_wall_ns: wall_ns / 2,
            precond_wall_ns: wall_ns / 4,
            extraction_wall_ns,
        }
    }

    #[test]
    fn cost_model_prefers_the_measured_winner() {
        // Shapes mirror BENCH_sweep.json: ILU(0) roughly halves the
        // matrix-free wall; assembled sits in between.
        let m = CostModel::fit(&[
            sample(0, 120_000_000, 400_000),
            sample(1, 90_000_000, 400_000),
            sample(2, 55_000_000, 400_000),
        ])
        .unwrap();
        let w = WorkloadSpec { dimension: 512, nnz: 18 * 512, n_rh: 4, energies: 8 };
        assert_eq!(m.best_cell(&w, 0.10), Some(cell(2)));
    }

    #[test]
    fn hysteresis_keeps_the_incumbent_inside_the_margin() {
        // 5% apart: the challenger does not clear the 10% margin, so the
        // first-fitted (priority) cell wins regardless of jitter sign.
        let m = CostModel::fit(&[sample(1, 100_000_000, 400_000), sample(2, 95_000_000, 400_000)])
            .unwrap();
        let w = WorkloadSpec { dimension: 512, nnz: 18 * 512, n_rh: 4, energies: 8 };
        assert_eq!(m.best_cell(&w, 0.10), Some(cell(1)));
    }

    #[test]
    fn predictions_scale_with_workload() {
        let m = CostModel::fit(&[sample(2, 55_000_000, 400_000)]).unwrap();
        let w1 = WorkloadSpec { dimension: 512, nnz: 18 * 512, n_rh: 4, energies: 1 };
        let w8 = WorkloadSpec { energies: 8, ..w1 };
        let wide = WorkloadSpec { nnz: 36 * 512, ..w1 };
        let p1 = m.predict(cell(2), &w1).unwrap();
        assert!(p1.is_finite() && p1 > 0.0);
        assert!(m.predict(cell(2), &w8).unwrap() >= p1);
        assert!(m.predict(cell(2), &wide).unwrap() >= p1);
    }

    #[test]
    fn fit_skips_degenerate_samples_and_reports_none_when_empty() {
        let dead = CalibrationSample { wall_ns: 0, ..sample(1, 0, 0) };
        assert!(CostModel::fit(&[dead]).is_none());
        assert!(CostModel::fit(&[]).is_none());
        // One valid sample among garbage still fits.
        let m = CostModel::fit(&[dead, sample(1, 100_000_000, 400_000)]).unwrap();
        assert_eq!(m.cells().count(), 1);
    }

    #[test]
    fn slice_tuner_never_slices_when_solve_dominates() {
        // Bench-scale shape: extraction is ~0.3% of wall, so the doubled
        // solve volume of any S>1 partition can never pay for itself.
        let m = CostModel::fit(&[sample(2, 55_000_000, 165_000)]).unwrap();
        let w = WorkloadSpec { dimension: 512, nnz: 18 * 512, n_rh: 4, energies: 8 };
        assert_eq!(m.tune_slices(cell(2), &w, 4, 0.10), 1);
    }

    #[test]
    fn slice_tuner_engages_when_extraction_dominates() {
        // A synthetic extraction-bound sample: cubically shrinking the
        // Hankel work across slices beats the extra solve volume.
        let m = CostModel::fit(&[sample(2, 100_000_000, 99_900_000)]).unwrap();
        let w = WorkloadSpec { dimension: 512, nnz: 18 * 512, n_rh: 16, energies: 8 };
        assert!(m.tune_slices(cell(2), &w, 4, 0.10) > 1);
    }
}
