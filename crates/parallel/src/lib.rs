//! # cbs-parallel
//!
//! The hierarchical parallel runtime of the paper's method:
//!
//! * [`ParallelLayout`] — process assignment to the three layers (right-hand
//!   sides → quadrature points → grid domains), with the paper's
//!   top-layer-first rule,
//! * [`TaskExecutor`] with [`SerialExecutor`] / [`RayonExecutor`] — the
//!   pluggable, order-preserving batch-execution seam the Sakurai-Sugiura
//!   shifted-solve engine in `cbs-core` fans out through,
//! * [`SweepSchedule`] — the sweep-level release policy (flat vs dyadic
//!   wavefront) that `cbs-sweep` uses to trade task-pool flattening against
//!   cross-energy warm-start reuse,
//! * [`DomainDecomposedOp`], [`solve_rhs_parallel`], [`solve_tasks_parallel`]
//!   — threaded, functionally exact execution of the layers (validated
//!   against the serial path),
//! * [`PerformanceModel`] — a calibrated analytic model of an
//!   Oakforest-PACS-like cluster used to produce the strong-scaling curves
//!   of Figures 8-10 and the intra-node sweep of Table 2 on hardware that
//!   cannot run 139,264 cores (see `DESIGN.md` for the substitution),
//! * [`CostModel`] — the measured-sample cost model behind
//!   `SsConfig::auto()`: fitted from calibration-probe counters and
//!   trace wall-ns, it predicts sweep wall-clock per policy cell and picks
//!   the winner with hysteresis so noisy timings cannot flip the decision.

#![warn(missing_docs)]

pub mod executor;
pub mod hierarchy;
pub mod perf_model;
pub mod schedule;

pub use executor::{
    measure_bicg_iteration_cost, solve_rhs_parallel, solve_tasks_parallel, DomainDecomposedOp,
    ExecutorChoice, RayonExecutor, SerialExecutor, TaskExecutor,
};
pub use hierarchy::ParallelLayout;
pub use perf_model::{
    default_workload, CalibrationSample, CellId, CostModel, MachineModel, PerformanceModel,
    PredictedTime, ScalingLayer, WorkloadModel, WorkloadSpec,
};
pub use schedule::SweepSchedule;
