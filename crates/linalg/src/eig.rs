//! Dense non-Hermitian complex eigensolver: Hessenberg reduction followed by
//! the shifted QR algorithm (complex Schur form), with eigenvector recovery
//! by triangular back-substitution.
//!
//! This replaces LAPACK's `ZGEEV`/`ZHSEQR` for the small dense problems that
//! appear in the Sakurai-Sugiura post-processing (the reduced `m̂ x m̂`
//! standard eigenproblem) and inside the generalized eigensolver used by the
//! OBM baseline.

use crate::complex::{c64, Complex64};
use crate::matrix::CMatrix;
use crate::vector::CVector;
use crate::LinalgError;

/// Result of a dense eigendecomposition: `A v_i = λ_i v_i`.
#[derive(Clone, Debug)]
pub struct Eigen {
    /// Eigenvalues (unordered).
    pub values: Vec<Complex64>,
    /// Right eigenvectors as the columns of an `n x n` matrix, each
    /// normalized to unit 2-norm.  Column `i` corresponds to `values[i]`.
    pub vectors: CMatrix,
}

/// Unitary similarity reduction to upper Hessenberg form: `A = Q H Q†`.
///
/// Returns `(H, Q)`.
pub fn hessenberg(a: &CMatrix) -> (CMatrix, CMatrix) {
    assert!(a.is_square(), "hessenberg: matrix must be square");
    let n = a.nrows();
    let mut h = a.clone();
    let mut q = CMatrix::identity(n);

    for k in 0..n.saturating_sub(2) {
        // Householder vector annihilating column k below row k+1.
        let mut v = CVector::zeros(n);
        let mut norm_sq = 0.0;
        for i in (k + 1)..n {
            v[i] = h[(i, k)];
            norm_sq += v[i].norm_sqr();
        }
        let norm = norm_sq.sqrt();
        if norm == 0.0 {
            continue;
        }
        let x0 = v[k + 1];
        let phase = if x0.abs() > 0.0 { x0 / Complex64::real(x0.abs()) } else { Complex64::ONE };
        let alpha = -phase * norm;
        v[k + 1] -= alpha;
        let vnorm_sq: f64 = ((k + 1)..n).map(|i| v[i].norm_sqr()).sum();
        if vnorm_sq == 0.0 {
            continue;
        }
        let tau = 2.0 / vnorm_sq;

        // H <- P H P with P = I - tau v v† (Hermitian, unitary).
        // Left application: rows k+1..n of all columns.
        for j in 0..n {
            let mut dot = Complex64::ZERO;
            for i in (k + 1)..n {
                dot += v[i].conj() * h[(i, j)];
            }
            let s = dot * tau;
            for i in (k + 1)..n {
                let vi = v[i];
                h[(i, j)] -= s * vi;
            }
        }
        // Right application: columns k+1..n of all rows.
        for i in 0..n {
            let mut dot = Complex64::ZERO;
            for j in (k + 1)..n {
                dot += h[(i, j)] * v[j];
            }
            let s = dot * tau;
            for j in (k + 1)..n {
                h[(i, j)] -= s * v[j].conj();
            }
        }
        // Accumulate Q <- Q P.
        for i in 0..n {
            let mut dot = Complex64::ZERO;
            for j in (k + 1)..n {
                dot += q[(i, j)] * v[j];
            }
            let s = dot * tau;
            for j in (k + 1)..n {
                q[(i, j)] -= s * v[j].conj();
            }
        }
    }
    // Clean tiny subdiagonal garbage below the first subdiagonal.
    for i in 0..n {
        for j in 0..i.saturating_sub(1) {
            h[(i, j)] = Complex64::ZERO;
        }
    }
    (h, q)
}

/// A complex Givens rotation `G = [[c, s], [-s̄, c]]` with real `c`,
/// chosen so that `G† [a; b] = [r; 0]`.
#[derive(Clone, Copy, Debug)]
struct Givens {
    c: Complex64,
    s: Complex64,
}

impl Givens {
    fn compute(a: Complex64, b: Complex64) -> (Self, Complex64) {
        let norm = (a.norm_sqr() + b.norm_sqr()).sqrt();
        if norm == 0.0 {
            return (Self { c: Complex64::ONE, s: Complex64::ZERO }, Complex64::ZERO);
        }
        // Unitary U = (1/r) [[ā, b̄], [-b, a]] maps [a;b] -> [r;0].
        let c = a.conj() / norm;
        let s = b.conj() / norm;
        (Self { c, s }, Complex64::real(norm))
    }

    /// Apply `U` from the left to rows (i, j) of `m`, columns `from..to`.
    fn apply_left(&self, m: &mut CMatrix, i: usize, j: usize, from: usize, to: usize) {
        for col in from..to {
            let a = m[(i, col)];
            let b = m[(j, col)];
            m[(i, col)] = self.c * a + self.s * b;
            m[(j, col)] = -(self.s.conj()) * a + self.c.conj() * b;
        }
    }

    /// Apply `U†` from the right to columns (i, j) of `m`, rows `from..to`.
    fn apply_right(&self, m: &mut CMatrix, i: usize, j: usize, from: usize, to: usize) {
        for row in from..to {
            let a = m[(row, i)];
            let b = m[(row, j)];
            m[(row, i)] = a * self.c.conj() + b * self.s.conj();
            m[(row, j)] = -(a * self.s) + b * self.c;
        }
    }
}

/// Complex Schur decomposition `A = Z T Z†` with `T` upper triangular.
///
/// Returns `(T, Z)`.  Fails only if the QR iteration does not converge within
/// the iteration budget (which signals a defective input such as NaNs).
pub fn schur(a: &CMatrix) -> Result<(CMatrix, CMatrix), LinalgError> {
    assert!(a.is_square(), "schur: matrix must be square");
    let n = a.nrows();
    if n == 0 {
        return Ok((CMatrix::zeros(0, 0), CMatrix::zeros(0, 0)));
    }
    let (mut t, mut z) = hessenberg(a);
    let eps = f64::EPSILON;
    let max_total_iters = 80 * n.max(1);
    let mut iters_since_deflation = 0usize;
    let mut total_iters = 0usize;

    // Active window is rows/cols [0, hi]; deflate from the bottom.
    let mut hi = n - 1;
    loop {
        // Deflate all negligible subdiagonals inside the window.
        loop {
            if hi == 0 {
                return Ok((t, z));
            }
            let small = eps * (t[(hi - 1, hi - 1)].abs() + t[(hi, hi)].abs() + 1e-300);
            if t[(hi, hi - 1)].abs() <= small {
                t[(hi, hi - 1)] = Complex64::ZERO;
                hi -= 1;
                iters_since_deflation = 0;
            } else {
                break;
            }
        }
        if hi == 0 {
            return Ok((t, z));
        }
        // Find the start `lo` of the unreduced block ending at `hi`.
        let mut lo = hi;
        while lo > 0 {
            let small = eps * (t[(lo - 1, lo - 1)].abs() + t[(lo, lo)].abs() + 1e-300);
            if t[(lo, lo - 1)].abs() <= small {
                t[(lo, lo - 1)] = Complex64::ZERO;
                break;
            }
            lo -= 1;
        }

        if total_iters >= max_total_iters {
            return Err(LinalgError::NoConvergence { iterations: total_iters });
        }
        total_iters += 1;
        iters_since_deflation += 1;

        // Wilkinson shift from the trailing 2x2 block, with an exceptional
        // (ad-hoc) shift every 12 stalled iterations.
        let shift = if iters_since_deflation.is_multiple_of(12) {
            // Exceptional shift: perturb away from the stalling pattern with a
            // complex offset proportional to the nearby subdiagonal scale.
            let mag = t[(hi, hi - 1)].abs() + if hi >= 2 { t[(hi - 1, hi - 2)].abs() } else { 0.0 };
            t[(hi, hi)] + c64(0.75 * mag, 0.4375 * mag)
        } else {
            wilkinson_shift(t[(hi - 1, hi - 1)], t[(hi - 1, hi)], t[(hi, hi - 1)], t[(hi, hi)])
        };

        // One explicit single-shift QR sweep on the window [lo, hi].
        for i in lo..=hi {
            t[(i, i)] -= shift;
        }
        let mut rotations = Vec::with_capacity(hi - lo);
        for k in lo..hi {
            let (g, r) = Givens::compute(t[(k, k)], t[(k + 1, k)]);
            t[(k, k)] = r;
            t[(k + 1, k)] = Complex64::ZERO;
            g.apply_left(&mut t, k, k + 1, k + 1, n);
            rotations.push((k, g));
        }
        for &(k, g) in &rotations {
            // RQ step: multiply by U† on the right.
            g.apply_right(&mut t, k, k + 1, 0, (k + 2).min(hi + 1));
            g.apply_right(&mut z, k, k + 1, 0, n);
        }
        for i in lo..=hi {
            t[(i, i)] += shift;
        }
    }
}

fn wilkinson_shift(a: Complex64, b: Complex64, c: Complex64, d: Complex64) -> Complex64 {
    // Eigenvalue of [[a, b], [c, d]] closest to d.
    let tr = a + d;
    let det = a * d - b * c;
    let disc = (tr * tr - det * 4.0).sqrt();
    let l1 = (tr + disc) * 0.5;
    let l2 = (tr - disc) * 0.5;
    if (l1 - d).abs() < (l2 - d).abs() {
        l1
    } else {
        l2
    }
}

/// Eigenvalues only (diagonal of the Schur factor).
pub fn eigenvalues(a: &CMatrix) -> Result<Vec<Complex64>, LinalgError> {
    let (t, _) = schur(a)?;
    Ok((0..a.nrows()).map(|i| t[(i, i)]).collect())
}

/// Full eigendecomposition with right eigenvectors.
pub fn eigen(a: &CMatrix) -> Result<Eigen, LinalgError> {
    let n = a.nrows();
    let (t, z) = schur(a)?;
    let values: Vec<Complex64> = (0..n).map(|i| t[(i, i)]).collect();
    let mut vectors = CMatrix::zeros(n, n);

    // For each eigenvalue λ_i solve (T - λ_i) y = 0 by back substitution
    // (y_i = 1, entries above filled in), then map back with Z.
    let scale = t.fro_norm().max(1.0);
    for (i, &lambda) in values.iter().enumerate() {
        let mut y = CVector::zeros(n);
        y[i] = Complex64::ONE;
        for j in (0..i).rev() {
            let mut acc = Complex64::ZERO;
            for k in (j + 1)..=i {
                acc += t[(j, k)] * y[k];
            }
            let mut denom = t[(j, j)] - lambda;
            // Guard clustered/repeated eigenvalues: perturb the denominator
            // at the level of round-off relative to the matrix scale.
            if denom.abs() < f64::EPSILON * scale {
                denom = Complex64::real(f64::EPSILON * scale);
            }
            y[j] = -acc / denom;
        }
        let mut v = CVector::zeros(n);
        for r in 0..n {
            let mut acc = Complex64::ZERO;
            for k in 0..=i {
                acc += z[(r, k)] * y[k];
            }
            v[r] = acc;
        }
        let (v, _) = v.normalized();
        vectors.set_column(i, &v);
    }
    Ok(Eigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn residual(a: &CMatrix, lambda: Complex64, v: &CVector) -> f64 {
        let av = a.matvec(v);
        let lv = v * lambda;
        (&av - &lv).norm() / (a.fro_norm() * v.norm()).max(1e-300)
    }

    #[test]
    fn hessenberg_preserves_similarity() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        let a = CMatrix::random(8, 8, &mut rng);
        let (h, q) = hessenberg(&a);
        // A = Q H Q†
        let recon = q.matmul(&h).matmul(&q.adjoint());
        assert!((&recon - &a).fro_norm() < 1e-11 * a.fro_norm());
        // Q unitary
        let gram = q.adjoint_mul(&q);
        assert!((&gram - &CMatrix::identity(8)).fro_norm() < 1e-11);
        // H upper Hessenberg
        for i in 0..8usize {
            for j in 0..i.saturating_sub(1) {
                assert!(h[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn schur_form_is_triangular_and_similar() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(32);
        let a = CMatrix::random(10, 10, &mut rng);
        let (t, z) = schur(&a).unwrap();
        for i in 0..10 {
            for j in 0..i {
                assert!(t[(i, j)].abs() < 1e-10 * a.fro_norm(), "T not triangular at ({i},{j})");
            }
        }
        let recon = z.matmul(&t).matmul(&z.adjoint());
        assert!((&recon - &a).fro_norm() < 1e-9 * a.fro_norm());
        let gram = z.adjoint_mul(&z);
        assert!((&gram - &CMatrix::identity(10)).fro_norm() < 1e-10);
    }

    #[test]
    fn eigenvalues_of_diagonal_matrix() {
        let d = CMatrix::from_diag(&[c64(1.0, 0.0), c64(2.0, 0.5), c64(-3.0, 1.0)]);
        let mut vals = eigenvalues(&d).unwrap();
        vals.sort_by(|a, b| a.re.partial_cmp(&b.re).unwrap());
        assert!((vals[0] - c64(-3.0, 1.0)).abs() < 1e-12);
        assert!((vals[1] - c64(1.0, 0.0)).abs() < 1e-12);
        assert!((vals[2] - c64(2.0, 0.5)).abs() < 1e-12);
    }

    #[test]
    fn eigen_pairs_satisfy_definition() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(33);
        let a = CMatrix::random(12, 12, &mut rng);
        let e = eigen(&a).unwrap();
        for i in 0..12 {
            let r = residual(&a, e.values[i], &e.vectors.column(i));
            assert!(r < 1e-8, "eigenpair {i} residual {r}");
        }
    }

    #[test]
    fn eigenvalues_match_trace_and_determinant() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(34);
        let a = CMatrix::random(7, 7, &mut rng);
        let vals = eigenvalues(&a).unwrap();
        let sum: Complex64 = vals.iter().copied().sum();
        assert!((sum - a.trace()).abs() < 1e-9 * a.fro_norm());
        let prod: Complex64 = vals.iter().copied().product();
        let det = crate::lu::LuDecomposition::new(&a).unwrap().determinant();
        assert!((prod - det).abs() < 1e-7 * det.abs().max(1.0));
    }

    #[test]
    fn known_two_by_two_eigenvalues() {
        // [[0, 1], [-1, 0]] has eigenvalues ±i.
        let a = CMatrix::from_rows(&[
            vec![c64(0.0, 0.0), c64(1.0, 0.0)],
            vec![c64(-1.0, 0.0), c64(0.0, 0.0)],
        ]);
        let mut vals = eigenvalues(&a).unwrap();
        vals.sort_by(|a, b| a.im.partial_cmp(&b.im).unwrap());
        assert!((vals[0] - c64(0.0, -1.0)).abs() < 1e-12);
        assert!((vals[1] - c64(0.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn hermitian_matrix_has_real_eigenvalues() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(35);
        let b = CMatrix::random(9, 9, &mut rng);
        let a = &b + &b.adjoint();
        let vals = eigenvalues(&a).unwrap();
        for v in vals {
            assert!(v.im.abs() < 1e-9 * a.fro_norm(), "imag part {v:?}");
        }
    }

    #[test]
    fn upper_triangular_input_is_fixed_point() {
        let a = CMatrix::from_rows(&[
            vec![c64(1.0, 1.0), c64(2.0, 0.0), c64(3.0, 0.0)],
            vec![c64(0.0, 0.0), c64(4.0, -1.0), c64(5.0, 0.0)],
            vec![c64(0.0, 0.0), c64(0.0, 0.0), c64(6.0, 2.0)],
        ]);
        let vals = eigenvalues(&a).unwrap();
        let mut expected = [c64(1.0, 1.0), c64(4.0, -1.0), c64(6.0, 2.0)];
        // match each expected value to the closest computed one
        for e in expected.iter_mut() {
            let best = vals.iter().map(|v| (*v - *e).abs()).fold(f64::INFINITY, f64::min);
            assert!(best < 1e-10);
        }
    }
}
