//! # cbs-linalg
//!
//! Dense complex linear algebra substrate for the complex-band-structure
//! (CBS) / Sakurai-Sugiura workspace.
//!
//! The SC17 paper this workspace reproduces relies on LAPACK/MKL for its
//! dense kernels (`ZGGEV` for the OBM baseline, SVD and small eigensolves in
//! the Sakurai-Sugiura post-processing).  This crate provides those
//! operations from scratch:
//!
//! * [`Complex64`] — the complex scalar used everywhere,
//! * [`CVector`] / [`CMatrix`] — dense vectors and row-major matrices,
//! * [`LuDecomposition`] — LU with partial pivoting (solve / inverse / det),
//! * [`QrDecomposition`] — Householder QR and least squares,
//! * [`eig`] — Hessenberg + shifted-QR complex Schur form and eigenpairs,
//! * [`svd()`] — one-sided Jacobi SVD,
//! * [`generalized_eigen`] — `A x = λ B x` by shift-and-invert reduction.
//!
//! All dense problems in this workspace are small (≲ a few thousand rows), so
//! the implementations favour robustness and clarity; the large sparse
//! operators live in `cbs-sparse` and are only ever applied matrix-free.

#![warn(missing_docs)]

pub mod complex;
pub mod eig;
pub mod geig;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod svd;
pub mod vector;

pub use complex::{c64, Complex64};
pub use eig::{eigen, eigenvalues, hessenberg, schur, Eigen};
pub use geig::{generalized_eigen, generalized_residual, GeneralizedEigen, GeneralizedEigenpair};
pub use lu::{inverse, solve, LuDecomposition};
pub use matrix::CMatrix;
pub use qr::{orthonormalize_columns, QrDecomposition};
pub use svd::{svd, Svd};
pub use vector::CVector;

/// Errors produced by the dense linear algebra routines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinalgError {
    /// A square matrix was required.
    NotSquare {
        /// Number of rows of the offending matrix.
        nrows: usize,
        /// Number of columns of the offending matrix.
        ncols: usize,
    },
    /// The matrix is (numerically) singular.
    Singular {
        /// Index of the zero pivot.
        pivot: usize,
    },
    /// An iterative process failed to converge.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// Generic shape error.
    InvalidDimensions {
        /// Human-readable description of the constraint that was violated.
        context: &'static str,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotSquare { nrows, ncols } => {
                write!(f, "matrix is not square ({nrows} x {ncols})")
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NoConvergence { iterations } => {
                write!(f, "iteration failed to converge after {iterations} steps")
            }
            LinalgError::InvalidDimensions { context } => {
                write!(f, "invalid dimensions: {context}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
