//! LU factorization with partial pivoting for dense complex matrices, plus
//! the derived solve / inverse / determinant operations.
//!
//! Used by the generalized eigensolver (shift-invert reduction) and by small
//! dense solves inside the Sakurai-Sugiura post-processing.  Matrices on this
//! path are at most a few thousand rows, so the classical right-looking
//! algorithm is adequate.

use crate::complex::Complex64;
use crate::matrix::CMatrix;
use crate::vector::CVector;
use crate::LinalgError;

/// LU factorization `P A = L U` of a square complex matrix.
#[derive(Clone, Debug)]
pub struct LuDecomposition {
    /// Packed factors: strictly-lower part stores `L` (unit diagonal
    /// implicit), upper triangle stores `U`.
    lu: CMatrix,
    /// Row permutation: row `i` of the factored matrix came from row
    /// `perm[i]` of the original.
    perm: Vec<usize>,
    /// Sign of the permutation (+1/-1), needed for the determinant.
    perm_sign: f64,
    /// Dimension.
    n: usize,
}

impl LuDecomposition {
    /// Factor a square matrix.  Fails on dimension mismatch or exact
    /// singularity (zero pivot).
    pub fn new(a: &CMatrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        let n = a.nrows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivoting: pick the largest |a_ik| for i >= k.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if pmax == 0.0 {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == Complex64::ZERO {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= m * ukj;
                }
            }
        }
        Ok(Self { lu, perm, perm_sign, n })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solve `A x = b` for a single right-hand side.
    pub fn solve(&self, b: &CVector) -> CVector {
        assert_eq!(b.len(), self.n, "solve: rhs length mismatch");
        let mut x = CVector::zeros(self.n);
        // Apply permutation and forward-substitute L y = P b.
        for i in 0..self.n {
            let mut acc = b[self.perm[i]];
            for j in 0..i {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back-substitute U x = y.
        for i in (0..self.n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..self.n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        x
    }

    /// Solve `A X = B` for a block of right-hand sides (column-wise).
    pub fn solve_matrix(&self, b: &CMatrix) -> CMatrix {
        assert_eq!(b.nrows(), self.n, "solve_matrix: rhs rows mismatch");
        let mut out = CMatrix::zeros(self.n, b.ncols());
        for j in 0..b.ncols() {
            let col = self.solve(&b.column(j));
            out.set_column(j, &col);
        }
        out
    }

    /// Solve the adjoint system `A† x = b` using the same factorization
    /// (`A† = U† L† P`, so solve `U† y = b`, `L† z = y`, `x = Pᵀ z`).
    pub fn solve_adjoint(&self, b: &CVector) -> CVector {
        assert_eq!(b.len(), self.n, "solve_adjoint: rhs length mismatch");
        let n = self.n;
        // Forward substitution with U† (lower triangular with conj pivots).
        let mut y = CVector::zeros(n);
        for i in 0..n {
            let mut acc = b[i];
            for j in 0..i {
                acc -= self.lu[(j, i)].conj() * y[j];
            }
            y[i] = acc / self.lu[(i, i)].conj();
        }
        // Back substitution with L† (unit upper triangular).
        let mut z = CVector::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.lu[(j, i)].conj() * z[j];
            }
            z[i] = acc;
        }
        // Undo the permutation: x[perm[i]] = z[i].
        let mut x = CVector::zeros(n);
        for i in 0..n {
            x[self.perm[i]] = z[i];
        }
        x
    }

    /// Explicit inverse (prefer `solve` when possible).
    pub fn inverse(&self) -> CMatrix {
        self.solve_matrix(&CMatrix::identity(self.n))
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> Complex64 {
        let mut det = Complex64::real(self.perm_sign);
        for i in 0..self.n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Crude reciprocal-condition estimate from the pivot magnitudes:
    /// `min|u_ii| / max|u_ii|`.  Cheap and adequate for diagnostics.
    pub fn rcond_estimate(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi: f64 = 0.0;
        for i in 0..self.n {
            let p = self.lu[(i, i)].abs();
            lo = lo.min(p);
            hi = hi.max(p);
        }
        if hi == 0.0 {
            0.0
        } else {
            lo / hi
        }
    }
}

/// Convenience wrapper: solve `A x = b` once.
pub fn solve(a: &CMatrix, b: &CVector) -> Result<CVector, LinalgError> {
    Ok(LuDecomposition::new(a)?.solve(b))
}

/// Convenience wrapper: compute the inverse of `A`.
pub fn inverse(a: &CMatrix) -> Result<CMatrix, LinalgError> {
    Ok(LuDecomposition::new(a)?.inverse())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use rand::SeedableRng;

    fn random_matrix(n: usize, seed: u64) -> CMatrix {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        CMatrix::random(n, n, &mut rng)
    }

    #[test]
    fn solve_recovers_known_solution() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let a = CMatrix::random(12, 12, &mut rng);
        let x_true = CVector::random(12, &mut rng);
        let b = a.matvec(&x_true);
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b);
        let err = (&x - &x_true).norm() / x_true.norm();
        assert!(err < 1e-10, "relative error {err}");
    }

    #[test]
    fn adjoint_solve_recovers_known_solution() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let a = CMatrix::random(10, 10, &mut rng);
        let x_true = CVector::random(10, &mut rng);
        let b = a.adjoint().matvec(&x_true);
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve_adjoint(&b);
        let err = (&x - &x_true).norm() / x_true.norm();
        assert!(err < 1e-10, "relative error {err}");
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = random_matrix(8, 13);
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        let defect = (&prod - &CMatrix::identity(8)).fro_norm();
        assert!(defect < 1e-10, "defect {defect}");
    }

    #[test]
    fn determinant_of_triangular_matrix() {
        let mut a = CMatrix::identity(3);
        a[(0, 0)] = c64(2.0, 0.0);
        a[(1, 1)] = c64(0.0, 1.0);
        a[(2, 2)] = c64(3.0, 0.0);
        a[(0, 2)] = c64(5.0, -1.0); // upper entry does not change det
        let det = LuDecomposition::new(&a).unwrap().determinant();
        assert!((det - c64(0.0, 6.0)).abs() < 1e-12);
    }

    #[test]
    fn determinant_changes_sign_under_row_swap() {
        let a = CMatrix::from_rows(&[
            vec![c64(0.0, 0.0), c64(1.0, 0.0)],
            vec![c64(1.0, 0.0), c64(0.0, 0.0)],
        ]);
        let det = LuDecomposition::new(&a).unwrap().determinant();
        assert!((det - c64(-1.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = CMatrix::zeros(4, 4);
        assert!(matches!(LuDecomposition::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = CMatrix::zeros(3, 4);
        assert!(matches!(LuDecomposition::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn block_solve_matches_column_solves() {
        let a = random_matrix(6, 14);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(15);
        let b = CMatrix::random(6, 3, &mut rng);
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve_matrix(&b);
        for j in 0..3 {
            let xj = lu.solve(&b.column(j));
            assert!((&x.column(j) - &xj).norm() < 1e-12);
        }
    }
}
