//! Dense complex vectors and the BLAS-1 style kernels used by the iterative
//! solvers (dot products with conjugation, axpy, norms, scaling).
//!
//! Vectors are plain `Vec<Complex64>` wrapped in a newtype so that algebraic
//! operations read naturally at call sites while the raw storage stays
//! available as a slice for the matrix-free operators.

use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::complex::{c64, Complex64};

/// A dense complex vector.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CVector {
    data: Vec<Complex64>,
}

impl CVector {
    /// A zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![Complex64::ZERO; n] }
    }

    /// Wrap an existing buffer.
    pub fn from_vec(data: Vec<Complex64>) -> Self {
        Self { data }
    }

    /// A vector from real entries.
    pub fn from_real(data: &[f64]) -> Self {
        Self { data: data.iter().map(|&x| Complex64::real(x)).collect() }
    }

    /// Unit basis vector `e_i` of length `n`.
    pub fn unit(n: usize, i: usize) -> Self {
        let mut v = Self::zeros(n);
        v[i] = Complex64::ONE;
        v
    }

    /// Number of entries.
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no entries.
    #[inline(always)]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the storage.
    #[inline(always)]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable view of the storage.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consume and return the underlying buffer.
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Iterate over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, Complex64> {
        self.data.iter()
    }

    /// Fill with zeros (keeps the allocation).
    pub fn set_zero(&mut self) {
        self.data.iter_mut().for_each(|z| *z = Complex64::ZERO);
    }

    /// Euclidean (2-)norm.
    pub fn norm(&self) -> f64 {
        nrm2(&self.data)
    }

    /// Conjugated inner product `⟨self, other⟩ = self† · other`.
    pub fn dot(&self, other: &Self) -> Complex64 {
        dotc(&self.data, &other.data)
    }

    /// Unconjugated (bilinear) product `selfᵀ · other`.
    pub fn dotu(&self, other: &Self) -> Complex64 {
        dotu(&self.data, &other.data)
    }

    /// In-place scaling by a complex scalar.
    pub fn scale(&mut self, alpha: Complex64) {
        scal(alpha, &mut self.data);
    }

    /// `self += alpha * x`.
    pub fn axpy(&mut self, alpha: Complex64, x: &Self) {
        axpy(alpha, &x.data, &mut self.data);
    }

    /// Elementwise complex conjugate.
    pub fn conj(&self) -> Self {
        Self { data: self.data.iter().map(|z| z.conj()).collect() }
    }

    /// Return a normalized copy together with the original norm.
    pub fn normalized(&self) -> (Self, f64) {
        let n = self.norm();
        let mut v = self.clone();
        if n > 0.0 {
            v.scale(Complex64::real(1.0 / n));
        }
        (v, n)
    }

    /// Maximum absolute entry.
    pub fn amax(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Random vector with entries uniform in the unit square `[-1,1]^2`,
    /// using the caller's RNG so results are reproducible.
    pub fn random<R: rand::Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        Self {
            data: (0..n).map(|_| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))).collect(),
        }
    }
}

impl Index<usize> for CVector {
    type Output = Complex64;
    #[inline(always)]
    fn index(&self, i: usize) -> &Complex64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVector {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut Complex64 {
        &mut self.data[i]
    }
}

impl Add<&CVector> for &CVector {
    type Output = CVector;
    fn add(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len());
        CVector { data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a + *b).collect() }
    }
}

impl Sub<&CVector> for &CVector {
    type Output = CVector;
    fn sub(self, rhs: &CVector) -> CVector {
        assert_eq!(self.len(), rhs.len());
        CVector { data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a - *b).collect() }
    }
}

impl Neg for &CVector {
    type Output = CVector;
    fn neg(self) -> CVector {
        CVector { data: self.data.iter().map(|z| -*z).collect() }
    }
}

impl Mul<Complex64> for &CVector {
    type Output = CVector;
    fn mul(self, rhs: Complex64) -> CVector {
        CVector { data: self.data.iter().map(|z| *z * rhs).collect() }
    }
}

impl AddAssign<&CVector> for CVector {
    fn add_assign(&mut self, rhs: &CVector) {
        assert_eq!(self.len(), rhs.len());
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
    }
}

impl SubAssign<&CVector> for CVector {
    fn sub_assign(&mut self, rhs: &CVector) {
        assert_eq!(self.len(), rhs.len());
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= *b;
        }
    }
}

impl FromIterator<Complex64> for CVector {
    fn from_iter<I: IntoIterator<Item = Complex64>>(iter: I) -> Self {
        Self { data: iter.into_iter().collect() }
    }
}

// ---------------------------------------------------------------------------
// Slice-level kernels (BLAS-1 analogues) — these are the hot inner loops of
// every Krylov iteration, so they are kept free of bounds checks in the body
// by iterating over zipped slices.
// ---------------------------------------------------------------------------

/// Conjugated dot product `x† · y`.
#[inline]
pub fn dotc(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    assert_eq!(x.len(), y.len(), "dotc: length mismatch");
    let mut acc = Complex64::ZERO;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += a.conj() * *b;
    }
    acc
}

/// Unconjugated dot product `xᵀ · y`.
#[inline]
pub fn dotu(x: &[Complex64], y: &[Complex64]) -> Complex64 {
    assert_eq!(x.len(), y.len(), "dotu: length mismatch");
    let mut acc = Complex64::ZERO;
    for (a, b) in x.iter().zip(y.iter()) {
        acc += *a * *b;
    }
    acc
}

/// Euclidean norm of a complex slice.
#[inline]
pub fn nrm2(x: &[Complex64]) -> f64 {
    let mut acc = 0.0f64;
    for z in x {
        acc += z.norm_sqr();
    }
    acc.sqrt()
}

/// `y += alpha * x`.
#[inline]
pub fn axpy(alpha: Complex64, x: &[Complex64], y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * *xi;
    }
}

/// `y = alpha * x + y * beta`.
#[inline]
pub fn axpby(alpha: Complex64, x: &[Complex64], beta: Complex64, y: &mut [Complex64]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi = alpha * *xi + beta * *yi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scal(alpha: Complex64, x: &mut [Complex64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Copy `x` into `y`.
#[inline]
pub fn copy(x: &[Complex64], y: &mut [Complex64]) {
    y.copy_from_slice(x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let v = CVector::zeros(4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.norm(), 0.0);
        let e = CVector::unit(3, 1);
        assert_eq!(e[0], Complex64::ZERO);
        assert_eq!(e[1], Complex64::ONE);
        assert_eq!(e.norm(), 1.0);
    }

    #[test]
    fn dot_products() {
        let x = CVector::from_vec(vec![c64(1.0, 2.0), c64(0.0, -1.0)]);
        let y = CVector::from_vec(vec![c64(3.0, 0.0), c64(1.0, 1.0)]);
        // x† y = (1-2i)(3) + (0+1i)(1+i) = 3 - 6i + i - 1 = 2 - 5i
        assert_eq!(x.dot(&y), c64(2.0, -5.0));
        // xᵀ y = (1+2i)(3) + (0-1i)(1+i) = 3 + 6i - i + 1 = 4 + 5i
        assert_eq!(x.dotu(&y), c64(4.0, 5.0));
        // ⟨x,x⟩ is real and equals ||x||²
        let xx = x.dot(&x);
        assert!((xx.im).abs() < 1e-15);
        assert!((xx.re - x.norm().powi(2)).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_scale() {
        let x = CVector::from_vec(vec![c64(1.0, 0.0), c64(0.0, 1.0)]);
        let mut y = CVector::from_vec(vec![c64(2.0, 0.0), c64(0.0, 2.0)]);
        y.axpy(c64(0.0, 1.0), &x);
        assert_eq!(y[0], c64(2.0, 1.0));
        assert_eq!(y[1], c64(-1.0, 2.0));
        y.scale(Complex64::real(2.0));
        assert_eq!(y[0], c64(4.0, 2.0));
    }

    #[test]
    fn vector_operators() {
        let a = CVector::from_vec(vec![c64(1.0, 1.0), c64(2.0, 0.0)]);
        let b = CVector::from_vec(vec![c64(0.5, -1.0), c64(1.0, 1.0)]);
        let s = &a + &b;
        assert_eq!(s[0], c64(1.5, 0.0));
        let d = &a - &b;
        assert_eq!(d[1], c64(1.0, -1.0));
        let m = &a * c64(0.0, 1.0);
        assert_eq!(m[0], c64(-1.0, 1.0));
    }

    #[test]
    fn normalized_has_unit_norm() {
        let v = CVector::from_vec(vec![c64(3.0, 0.0), c64(0.0, 4.0)]);
        let (u, n) = v.normalized();
        assert!((n - 5.0).abs() < 1e-15);
        assert!((u.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn axpby_kernel() {
        let x = vec![c64(1.0, 0.0); 3];
        let mut y = vec![c64(0.0, 1.0); 3];
        axpby(Complex64::real(2.0), &x, Complex64::real(0.5), &mut y);
        for z in &y {
            assert_eq!(*z, c64(2.0, 0.5));
        }
    }

    #[test]
    fn random_is_reproducible() {
        use rand::SeedableRng;
        let mut r1 = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut r2 = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let a = CVector::random(16, &mut r1);
        let b = CVector::random(16, &mut r2);
        assert_eq!(a, b);
        // each component lies in [-1,1), so the modulus is at most sqrt(2)
        assert!(a.amax() <= std::f64::consts::SQRT_2 + 1e-12);
    }
}
