//! Double-precision complex scalar type used throughout the workspace.
//!
//! The whole library is built without external numerical dependencies, so the
//! complex type is implemented here from scratch.  It is a plain `Copy` pair
//! of `f64`s with the usual field operations, the elementary functions needed
//! by the contour quadrature (`exp`, `ln`, `sqrt`, `powi`) and a few
//! convenience constructors (`polar`, `cis`).

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number with `f64` real and imaginary parts.
///
/// `#[repr(C)]` guarantees the `(re, im)` field order in memory, so slices
/// of `Complex64` can be reinterpreted as interleaved `f64` pairs — the
/// SIMD tile kernels in `cbs-sparse` rely on this.
#[repr(C)]
#[derive(Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor: `c64(re, im)`.
#[inline(always)]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Create a new complex number from real and imaginary parts.
    #[inline(always)]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real complex number.
    #[inline(always)]
    pub const fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// A purely imaginary complex number.
    #[inline(always)]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// `r * exp(i*theta)`.
    #[inline]
    pub fn polar(r: f64, theta: f64) -> Self {
        Self { re: r * theta.cos(), im: r * theta.sin() }
    }

    /// Unit-modulus complex exponential `exp(i*theta)`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline(always)]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared modulus `|z|^2`.
    #[inline(always)]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed with `hypot` for robustness against
    /// overflow/underflow of the squares.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self { re: self.re / d, im: -self.im / d }
    }

    /// Scale by a real factor.
    #[inline(always)]
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }

    /// Complex exponential.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Self { re: r * self.im.cos(), im: r * self.im.sin() }
    }

    /// Principal branch of the natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Self { re: self.abs().ln(), im: self.arg() }
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        // Stable formulation avoiding cancellation (Kahan).
        if self.re == 0.0 && self.im == 0.0 {
            return Self::ZERO;
        }
        let m = self.abs();
        let re = ((m + self.re) * 0.5).sqrt();
        let im_mag = ((m - self.re) * 0.5).sqrt();
        Self { re, im: if self.im >= 0.0 { im_mag } else { -im_mag } }
    }

    /// Integer power by repeated squaring (negative exponents allowed).
    pub fn powi(self, n: i32) -> Self {
        if n == 0 {
            return Self::ONE;
        }
        let mut base = if n > 0 { self } else { self.inv() };
        let mut e = n.unsigned_abs();
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base *= base;
            e >>= 1;
        }
        acc
    }

    /// Complex power `z^w = exp(w ln z)`.
    pub fn powc(self, w: Self) -> Self {
        (w * self.ln()).exp()
    }

    /// `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Fused multiply-add: `self * b + c` (not hardware-fused, but a single
    /// expression that the optimizer can contract).
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        self * b + c
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:e}{:+e}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}{:+.*}i", prec, self.re, prec, self.im)
        } else {
            write!(f, "{}{:+}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline(always)]
    fn from(re: f64) -> Self {
        Self { re, im: 0.0 }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn neg(self) -> Complex64 {
        c64(-self.re, -self.im)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn add(self, rhs: Complex64) -> Complex64 {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn sub(self, rhs: Complex64) -> Complex64 {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline(always)]
    fn mul(self, rhs: Complex64) -> Complex64 {
        c64(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        // Smith's algorithm for robust complex division.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let d = rhs.re + rhs.im * r;
            c64((self.re + self.im * r) / d, (self.im - self.re * r) / d)
        } else {
            let r = rhs.re / rhs.im;
            let d = rhs.re * r + rhs.im;
            c64((self.re * r + self.im) / d, (self.im * r - self.re) / d)
        }
    }
}

macro_rules! impl_scalar_ops {
    ($($t:ty),*) => {$(
        impl Add<$t> for Complex64 {
            type Output = Complex64;
            #[inline(always)]
            fn add(self, rhs: $t) -> Complex64 { c64(self.re + rhs as f64, self.im) }
        }
        impl Sub<$t> for Complex64 {
            type Output = Complex64;
            #[inline(always)]
            fn sub(self, rhs: $t) -> Complex64 { c64(self.re - rhs as f64, self.im) }
        }
        impl Mul<$t> for Complex64 {
            type Output = Complex64;
            #[inline(always)]
            fn mul(self, rhs: $t) -> Complex64 { c64(self.re * rhs as f64, self.im * rhs as f64) }
        }
        impl Div<$t> for Complex64 {
            type Output = Complex64;
            #[inline(always)]
            fn div(self, rhs: $t) -> Complex64 { c64(self.re / rhs as f64, self.im / rhs as f64) }
        }
        impl Mul<Complex64> for $t {
            type Output = Complex64;
            #[inline(always)]
            fn mul(self, rhs: Complex64) -> Complex64 { c64(self as f64 * rhs.re, self as f64 * rhs.im) }
        }
        impl Add<Complex64> for $t {
            type Output = Complex64;
            #[inline(always)]
            fn add(self, rhs: Complex64) -> Complex64 { c64(self as f64 + rhs.re, rhs.im) }
        }
        impl Sub<Complex64> for $t {
            type Output = Complex64;
            #[inline(always)]
            fn sub(self, rhs: Complex64) -> Complex64 { c64(self as f64 - rhs.re, -rhs.im) }
        }
    )*};
}

impl_scalar_ops!(f64);

impl AddAssign for Complex64 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline(always)]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline(always)]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign<f64> for Complex64 {
    #[inline(always)]
    fn div_assign(&mut self, rhs: f64) {
        self.re /= rhs;
        self.im /= rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |a, b| a + *b)
    }
}

impl Product for Complex64 {
    fn product<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-13;

    fn close(a: Complex64, b: Complex64) -> bool {
        (a - b).abs() < EPS * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn arithmetic_identities() {
        let z = c64(3.0, -4.0);
        assert!(close(z + Complex64::ZERO, z));
        assert!(close(z * Complex64::ONE, z));
        assert!(close(z - z, Complex64::ZERO));
        assert!(close(z / z, Complex64::ONE));
        assert!(close(z * z.inv(), Complex64::ONE));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn conjugation_and_modulus() {
        let z = c64(1.5, 2.5);
        assert!(close(z * z.conj(), Complex64::real(z.norm_sqr())));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = c64(2.0, -7.0);
        let b = c64(-3.0, 0.25);
        assert!(close(a / b, a * b.inv()));
    }

    #[test]
    fn division_extreme_magnitudes() {
        let a = c64(1e200, 1e200);
        let b = c64(2e200, 0.0);
        let q = a / b;
        assert!((q.re - 0.5).abs() < 1e-12);
        assert!((q.im - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exp_and_ln_roundtrip() {
        let z = c64(0.3, -1.2);
        assert!(close(z.exp().ln(), z));
        // Euler's identity.
        assert!((Complex64::imag(std::f64::consts::PI).exp() + Complex64::ONE).abs() < 1e-15);
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (0.0, 2.0), (-1.0, 0.0), (3.0, -4.0), (-5.0, 12.0)] {
            let z = c64(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt({z:?})^2 = {:?}", s * s);
            assert!(s.re >= 0.0, "principal branch has non-negative real part");
        }
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let z = c64(0.9, 0.4);
        let mut acc = Complex64::ONE;
        for n in 0..8 {
            assert!(close(z.powi(n), acc));
            acc *= z;
        }
        assert!(close(z.powi(-3), (z * z * z).inv()));
    }

    #[test]
    fn polar_and_cis() {
        let z = Complex64::polar(2.0, 0.75);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.75).abs() < EPS);
        assert!(close(Complex64::cis(0.75).scale(2.0), z));
    }

    #[test]
    fn sum_and_product_iterators() {
        let v = [c64(1.0, 1.0), c64(2.0, -1.0), c64(-0.5, 0.25)];
        let s: Complex64 = v.iter().sum();
        assert!(close(s, c64(2.5, 0.25)));
        let p: Complex64 = v.iter().copied().product();
        assert!(close(p, c64(1.0, 1.0) * c64(2.0, -1.0) * c64(-0.5, 0.25)));
    }

    #[test]
    fn display_formatting() {
        let z = c64(1.25, -0.5);
        assert_eq!(format!("{z:.2}"), "1.25-0.50i");
    }
}
