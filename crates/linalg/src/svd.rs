//! Singular value decomposition of dense complex matrices by one-sided
//! Jacobi rotations.
//!
//! The Sakurai-Sugiura method needs the SVD of the block Hankel matrix
//! (dimension `N_rh * N_mm`, i.e. on the order of 100) to perform the
//! low-rank filtering with threshold `δ`; one-sided Jacobi is simple, very
//! accurate for small singular values, and entirely adequate at this size.

use crate::complex::Complex64;
use crate::matrix::CMatrix;
use crate::vector::CVector;
use crate::LinalgError;

/// Thin singular value decomposition `A = U Σ V†`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, `m x r` where `r = min(m, n)`.
    pub u: CMatrix,
    /// Singular values in non-increasing order (length `r`).
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `n x r`.
    pub v: CMatrix,
}

impl Svd {
    /// Number of singular values above `threshold * sigma_max` (the paper's
    /// numerical-rank criterion with threshold `δ`).
    pub fn numerical_rank(&self, threshold: f64) -> usize {
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        if smax == 0.0 {
            return 0;
        }
        self.singular_values.iter().take_while(|&&s| s > threshold * smax).count()
    }

    /// Reconstruct `A` from the factors (mostly for testing).
    pub fn reconstruct(&self) -> CMatrix {
        let r = self.singular_values.len();
        let mut us = self.u.clone();
        for j in 0..r {
            let s = self.singular_values[j];
            for i in 0..us.nrows() {
                us[(i, j)] *= s;
            }
        }
        us.matmul(&self.v.adjoint())
    }
}

/// Compute the thin SVD of `a` by one-sided Jacobi.
///
/// Works for any shape; for `m < n` the decomposition is computed on the
/// adjoint and the factors are swapped back.
pub fn svd(a: &CMatrix) -> Result<Svd, LinalgError> {
    let (m, n) = (a.nrows(), a.ncols());
    if m < n {
        let t = svd(&a.adjoint())?;
        return Ok(Svd { u: t.v, singular_values: t.singular_values, v: t.u });
    }
    if n == 0 {
        return Ok(Svd {
            u: CMatrix::zeros(m, 0),
            singular_values: vec![],
            v: CMatrix::zeros(0, 0),
        });
    }

    // Work on the columns of `work`; accumulate the right rotations in `v`.
    let mut work = a.clone();
    let mut v = CMatrix::identity(n);
    let tol = 1e-14;
    let max_sweeps = 60;
    let mut converged = false;

    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for the column pair.
                let mut app = 0.0f64;
                let mut aqq = 0.0f64;
                let mut apq = Complex64::ZERO;
                for i in 0..m {
                    let cp = work[(i, p)];
                    let cq = work[(i, q)];
                    app += cp.norm_sqr();
                    aqq += cq.norm_sqr();
                    apq += cp.conj() * cq;
                }
                let denom = (app * aqq).sqrt();
                if denom == 0.0 || apq.abs() <= tol * denom {
                    continue;
                }
                off = off.max(apq.abs() / denom);

                // Phase that makes the off-diagonal Gram entry real positive.
                let phase = apq / Complex64::real(apq.abs());
                let g = apq.abs();
                // Real Jacobi rotation for [[app, g], [g, aqq]].
                let tau = (aqq - app) / (2.0 * g);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                // Column update: q-column first absorbs the phase conjugate so
                // the pair becomes effectively real, then the plane rotation.
                //   new_p = c * a_p - s * (a_q * conj(phase))
                //   new_q = s * a_p + c * (a_q * conj(phase))
                let ph = phase.conj();
                for i in 0..m {
                    let cp = work[(i, p)];
                    let cq = work[(i, q)] * ph;
                    work[(i, p)] = cp * c - cq * s;
                    work[(i, q)] = cp * s + cq * c;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)] * ph;
                    v[(i, p)] = vp * c - vq * s;
                    v[(i, q)] = vp * s + vq * c;
                }
            }
        }
        if off <= tol {
            converged = true;
            break;
        }
    }
    if !converged {
        // One-sided Jacobi essentially always converges; reaching the sweep
        // budget indicates pathological input (NaN/Inf).
        if work.as_slice().iter().any(|z| !z.is_finite()) {
            return Err(LinalgError::NoConvergence { iterations: max_sweeps });
        }
    }

    // Extract singular values and left vectors, then sort descending.
    let mut cols: Vec<(f64, CVector, CVector)> = (0..n)
        .map(|j| {
            let col = work.column(j);
            let sigma = col.norm();
            let u = if sigma > 0.0 {
                let mut u = col.clone();
                u.scale(Complex64::real(1.0 / sigma));
                u
            } else {
                CVector::zeros(m)
            };
            (sigma, u, v.column(j))
        })
        .collect();
    cols.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    let mut u_mat = CMatrix::zeros(m, n);
    let mut v_mat = CMatrix::zeros(n, n);
    let mut sv = Vec::with_capacity(n);
    for (j, (sigma, uj, vj)) in cols.into_iter().enumerate() {
        sv.push(sigma);
        u_mat.set_column(j, &uj);
        v_mat.set_column(j, &vj);
    }
    Ok(Svd { u: u_mat, singular_values: sv, v: v_mat })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use rand::SeedableRng;

    #[test]
    fn reconstruction_of_random_matrix() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for &(m, n) in &[(6usize, 6usize), (9, 4), (4, 9)] {
            let a = CMatrix::random(m, n, &mut rng);
            let s = svd(&a).unwrap();
            let err = (&s.reconstruct() - &a).fro_norm() / a.fro_norm();
            assert!(err < 1e-11, "({m},{n}) reconstruction error {err}");
        }
    }

    #[test]
    fn singular_vectors_are_orthonormal() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        let a = CMatrix::random(8, 5, &mut rng);
        let s = svd(&a).unwrap();
        let gu = s.u.adjoint_mul(&s.u);
        let gv = s.v.adjoint_mul(&s.v);
        assert!((&gu - &CMatrix::identity(5)).fro_norm() < 1e-10);
        assert!((&gv - &CMatrix::identity(5)).fro_norm() < 1e-10);
    }

    #[test]
    fn singular_values_sorted_and_nonnegative() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(43);
        let a = CMatrix::random(7, 7, &mut rng);
        let s = svd(&a).unwrap();
        for w in s.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(s.singular_values.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = CMatrix::from_diag(&[c64(3.0, 0.0), c64(0.0, -4.0), c64(1.0, 0.0)]);
        let s = svd(&a).unwrap();
        assert!((s.singular_values[0] - 4.0).abs() < 1e-12);
        assert!((s.singular_values[1] - 3.0).abs() < 1e-12);
        assert!((s.singular_values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_deficient_matrix_detected() {
        // Build a rank-2 matrix of size 6x6.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(44);
        let b = CMatrix::random(6, 2, &mut rng);
        let c = CMatrix::random(2, 6, &mut rng);
        let a = b.matmul(&c);
        let s = svd(&a).unwrap();
        assert_eq!(s.numerical_rank(1e-10), 2);
        assert!(s.singular_values[2] < 1e-10 * s.singular_values[0]);
    }

    #[test]
    fn frobenius_norm_matches_singular_values() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(45);
        let a = CMatrix::random(5, 8, &mut rng);
        let s = svd(&a).unwrap();
        let fro_sv: f64 = s.singular_values.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((fro_sv - a.fro_norm()).abs() < 1e-10);
    }

    #[test]
    fn zero_matrix() {
        let a = CMatrix::zeros(4, 3);
        let s = svd(&a).unwrap();
        assert!(s.singular_values.iter().all(|&x| x == 0.0));
        assert_eq!(s.numerical_rank(1e-12), 0);
    }
}
