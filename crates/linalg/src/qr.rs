//! Householder QR factorization for dense complex matrices.
//!
//! Used for orthonormalizing subspace bases (e.g. the recovered eigenvector
//! blocks of the Sakurai-Sugiura method) and for least-squares solves in the
//! diagnostics.

use crate::complex::Complex64;
use crate::matrix::CMatrix;
use crate::vector::CVector;
use crate::LinalgError;

/// Compact-WY-free Householder QR: stores the reflectors and `R`.
#[derive(Clone, Debug)]
pub struct QrDecomposition {
    /// Householder vectors, one per column eliminated (length `m`, leading
    /// zeros below the pivot row).
    reflectors: Vec<CVector>,
    /// The scalar `tau` for each reflector (`H = I - tau v v†`).
    taus: Vec<Complex64>,
    /// Upper-triangular factor, shape `(min(m,n), n)`.
    r: CMatrix,
    m: usize,
    n: usize,
}

impl QrDecomposition {
    /// Factor an `m x n` matrix with `m >= n`.
    pub fn new(a: &CMatrix) -> Result<Self, LinalgError> {
        let (m, n) = (a.nrows(), a.ncols());
        if m < n {
            return Err(LinalgError::InvalidDimensions { context: "QR requires nrows >= ncols" });
        }
        let mut work = a.clone();
        let mut reflectors = Vec::with_capacity(n);
        let mut taus = Vec::with_capacity(n);

        for k in 0..n {
            // Build the Householder vector from column k, rows k..m.
            let mut v = CVector::zeros(m);
            let mut norm_sq = 0.0;
            for i in k..m {
                v[i] = work[(i, k)];
                norm_sq += v[i].norm_sqr();
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                reflectors.push(CVector::zeros(m));
                taus.push(Complex64::ZERO);
                continue;
            }
            let x0 = v[k];
            // alpha = -sign(x0) * ||x||, with complex sign = x0/|x0|.
            let phase =
                if x0.abs() > 0.0 { x0 / Complex64::real(x0.abs()) } else { Complex64::ONE };
            let alpha = -phase * norm;
            v[k] -= alpha;
            let vnorm_sq: f64 = (k..m).map(|i| v[i].norm_sqr()).sum();
            let tau =
                if vnorm_sq > 0.0 { Complex64::real(2.0 / vnorm_sq) } else { Complex64::ZERO };

            // Apply H = I - tau v v† to the remaining columns of `work`.
            for j in k..n {
                let mut dot = Complex64::ZERO;
                for i in k..m {
                    dot += v[i].conj() * work[(i, j)];
                }
                let s = tau * dot;
                for i in k..m {
                    let vi = v[i];
                    work[(i, j)] -= s * vi;
                }
            }
            reflectors.push(v);
            taus.push(tau);
        }

        let r = work.block(0, 0, n, n);
        Ok(Self { reflectors, taus, r, m, n })
    }

    /// The upper-triangular factor `R` (n x n).
    pub fn r(&self) -> &CMatrix {
        &self.r
    }

    /// Apply `Q†` to a vector of length `m`.
    pub fn apply_q_adjoint(&self, x: &CVector) -> CVector {
        assert_eq!(x.len(), self.m);
        let mut y = x.clone();
        for (v, &tau) in self.reflectors.iter().zip(&self.taus) {
            if tau == Complex64::ZERO {
                continue;
            }
            let mut dot = Complex64::ZERO;
            for i in 0..self.m {
                dot += v[i].conj() * y[i];
            }
            let s = tau * dot;
            for i in 0..self.m {
                y[i] -= s * v[i];
            }
        }
        y
    }

    /// Apply `Q` to a vector of length `m`.
    pub fn apply_q(&self, x: &CVector) -> CVector {
        assert_eq!(x.len(), self.m);
        let mut y = x.clone();
        for (v, &tau) in self.reflectors.iter().zip(&self.taus).rev() {
            if tau == Complex64::ZERO {
                continue;
            }
            // Q = H_1 H_2 ... H_n with Hermitian H_k, so applying in reverse
            // order gives Q x.
            let mut dot = Complex64::ZERO;
            for i in 0..self.m {
                dot += v[i].conj() * y[i];
            }
            let s = tau * dot;
            for i in 0..self.m {
                y[i] -= s * v[i];
            }
        }
        y
    }

    /// Explicit thin `Q` (m x n) with orthonormal columns.
    pub fn thin_q(&self) -> CMatrix {
        let mut q = CMatrix::zeros(self.m, self.n);
        for j in 0..self.n {
            let e = CVector::unit(self.m, j);
            q.set_column(j, &self.apply_q(&e));
        }
        q
    }

    /// Least-squares solve `min ||A x - b||` via `R x = Q† b`.
    pub fn solve_least_squares(&self, b: &CVector) -> Result<CVector, LinalgError> {
        let qtb = self.apply_q_adjoint(b);
        let mut x = CVector::zeros(self.n);
        for i in (0..self.n).rev() {
            let mut acc = qtb[i];
            for j in (i + 1)..self.n {
                acc -= self.r[(i, j)] * x[j];
            }
            let d = self.r[(i, i)];
            if d.abs() < 1e-300 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = acc / d;
        }
        Ok(x)
    }
}

/// Orthonormalize the columns of `a` (thin Q of its QR factorization).
pub fn orthonormalize_columns(a: &CMatrix) -> Result<CMatrix, LinalgError> {
    Ok(QrDecomposition::new(a)?.thin_q())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn qr_reconstructs_matrix() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(21);
        let a = CMatrix::random(8, 5, &mut rng);
        let qr = QrDecomposition::new(&a).unwrap();
        let q = qr.thin_q();
        let recon = q.matmul(qr.r());
        assert!((&recon - &a).fro_norm() < 1e-11 * a.fro_norm().max(1.0));
    }

    #[test]
    fn thin_q_has_orthonormal_columns() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(22);
        let a = CMatrix::random(9, 4, &mut rng);
        let q = orthonormalize_columns(&a).unwrap();
        let gram = q.adjoint_mul(&q);
        assert!((&gram - &CMatrix::identity(4)).fro_norm() < 1e-11);
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(23);
        let a = CMatrix::random(6, 6, &mut rng);
        let qr = QrDecomposition::new(&a).unwrap();
        for i in 0..6 {
            for j in 0..i {
                assert!(qr.r()[(i, j)].abs() < 1e-12);
            }
        }
    }

    #[test]
    fn least_squares_on_square_system() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(24);
        let a = CMatrix::random(7, 7, &mut rng);
        let x_true = CVector::random(7, &mut rng);
        let b = a.matvec(&x_true);
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        assert!((&x - &x_true).norm() / x_true.norm() < 1e-10);
    }

    #[test]
    fn least_squares_on_overdetermined_system() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(25);
        let a = CMatrix::random(10, 4, &mut rng);
        let x_true = CVector::random(4, &mut rng);
        let b = a.matvec(&x_true);
        let qr = QrDecomposition::new(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        // Consistent system: exact recovery.
        assert!((&x - &x_true).norm() / x_true.norm() < 1e-10);
    }

    #[test]
    fn q_adjoint_is_inverse_of_q() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(26);
        let a = CMatrix::random(8, 8, &mut rng);
        let qr = QrDecomposition::new(&a).unwrap();
        let x = CVector::random(8, &mut rng);
        let roundtrip = qr.apply_q_adjoint(&qr.apply_q(&x));
        assert!((&roundtrip - &x).norm() < 1e-11);
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = CMatrix::zeros(3, 5);
        assert!(QrDecomposition::new(&a).is_err());
    }
}
