//! Dense complex matrices (row-major) with the operations needed by the
//! Sakurai-Sugiura reduction (small Hankel/moment matrices) and by the dense
//! OBM baseline: products, adjoints, sub-blocks, norms.
//!
//! Dimensions in this workspace are small for the dense path (at most a few
//! thousand), so clarity is favoured over cache blocking; the `matmul` kernel
//! nevertheless uses the i-k-j loop order so the inner loop is a contiguous
//! axpy.

use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::complex::{c64, Complex64};
use crate::vector::CVector;

/// Dense row-major complex matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Zero matrix of shape `(nrows, ncols)`.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, data: vec![Complex64::ZERO; nrows * ncols] }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Build from a function of the `(row, col)` index.
    pub fn from_fn(
        nrows: usize,
        ncols: usize,
        mut f: impl FnMut(usize, usize) -> Complex64,
    ) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                data.push(f(i, j));
            }
        }
        Self { nrows, ncols, data }
    }

    /// Build from nested row data (each inner slice is a row).
    pub fn from_rows(rows: &[Vec<Complex64>]) -> Self {
        let nrows = rows.len();
        let ncols = if nrows > 0 { rows[0].len() } else { 0 };
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self { nrows, ncols, data }
    }

    /// Build a matrix whose columns are the given vectors.
    pub fn from_columns(cols: &[CVector]) -> Self {
        let ncols = cols.len();
        let nrows = if ncols > 0 { cols[0].len() } else { 0 };
        let mut m = Self::zeros(nrows, ncols);
        for (j, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), nrows, "ragged columns");
            for i in 0..nrows {
                m[(i, j)] = c[i];
            }
        }
        m
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(d: &[Complex64]) -> Self {
        let n = d.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Random matrix with entries uniform in the unit square, for tests and
    /// for the Sakurai-Sugiura source block `V`.
    pub fn random<R: rand::Rng + ?Sized>(nrows: usize, ncols: usize, rng: &mut R) -> Self {
        Self::from_fn(nrows, ncols, |_, _| c64(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
    }

    /// Number of rows.
    #[inline(always)]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline(always)]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `true` if the matrix is square.
    #[inline(always)]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Raw row-major storage.
    #[inline(always)]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable raw row-major storage.
    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// A row as a slice.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[Complex64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// A row as a mutable slice.
    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [Complex64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Extract column `j` as a vector.
    pub fn column(&self, j: usize) -> CVector {
        (0..self.nrows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrite column `j` with the entries of `v`.
    pub fn set_column(&mut self, j: usize, v: &CVector) {
        assert_eq!(v.len(), self.nrows);
        for i in 0..self.nrows {
            self[(i, j)] = v[i];
        }
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose (Hermitian adjoint).
    pub fn adjoint(&self) -> Self {
        Self::from_fn(self.ncols, self.nrows, |i, j| self[(j, i)].conj())
    }

    /// Elementwise conjugate.
    pub fn conj(&self) -> Self {
        Self {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|z| z.conj()).collect(),
        }
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &CVector) -> CVector {
        assert_eq!(x.len(), self.ncols, "matvec: dimension mismatch");
        let mut y = CVector::zeros(self.nrows);
        for i in 0..self.nrows {
            let row = self.row(i);
            let mut acc = Complex64::ZERO;
            for (a, b) in row.iter().zip(x.as_slice()) {
                acc += *a * *b;
            }
            y[i] = acc;
        }
        y
    }

    /// Adjoint matrix-vector product `A† x`.
    pub fn matvec_adj(&self, x: &CVector) -> CVector {
        assert_eq!(x.len(), self.nrows, "matvec_adj: dimension mismatch");
        let mut y = CVector::zeros(self.ncols);
        for i in 0..self.nrows {
            let xi = x[i].conj();
            let row = self.row(i);
            for (j, a) in row.iter().enumerate() {
                y[j] += (xi * *a).conj();
            }
        }
        y
    }

    /// Matrix product `A * B` with an axpy-style inner loop.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.ncols, other.nrows, "matmul: dimension mismatch");
        let mut out = Self::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == Complex64::ZERO {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                for (o, b) in orow.iter_mut().zip(brow) {
                    *o += aik * *b;
                }
            }
        }
        out
    }

    /// `A† * B` without forming the adjoint explicitly.
    pub fn adjoint_mul(&self, other: &Self) -> Self {
        assert_eq!(self.nrows, other.nrows, "adjoint_mul: dimension mismatch");
        let mut out = Self::zeros(self.ncols, other.ncols);
        for k in 0..self.nrows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, aik) in arow.iter().enumerate() {
                let aki = aik.conj();
                if aki == Complex64::ZERO {
                    continue;
                }
                let orow = out.row_mut(i);
                for (o, b) in orow.iter_mut().zip(brow) {
                    *o += aki * *b;
                }
            }
        }
        out
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&self, alpha: Complex64) -> Self {
        Self {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|z| *z * alpha).collect(),
        }
    }

    /// Contiguous sub-block `[r0..r0+nr, c0..c0+nc]`.
    pub fn block(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> Self {
        assert!(r0 + nr <= self.nrows && c0 + nc <= self.ncols, "block out of bounds");
        Self::from_fn(nr, nc, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Copy `src` into the block with upper-left corner `(r0, c0)`.
    pub fn set_block(&mut self, r0: usize, c0: usize, src: &Self) {
        assert!(
            r0 + src.nrows <= self.nrows && c0 + src.ncols <= self.ncols,
            "set_block out of bounds"
        );
        for i in 0..src.nrows {
            for j in 0..src.ncols {
                self[(r0 + i, c0 + j)] = src[(i, j)];
            }
        }
    }

    /// Keep the first `k` columns.
    pub fn take_columns(&self, k: usize) -> Self {
        self.block(0, 0, self.nrows, k)
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn amax(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// `||A - A†||_F`, zero for Hermitian matrices.
    pub fn hermiticity_defect(&self) -> f64 {
        assert!(self.is_square());
        let mut acc = 0.0;
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                acc += (self[(i, j)] - self[(j, i)].conj()).norm_sqr();
            }
        }
        acc.sqrt()
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square());
        (0..self.nrows).map(|i| self[(i, i)]).sum()
    }

    /// Approximate memory footprint of the storage in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Complex64>()
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        &mut self.data[i * self.ncols + j]
    }
}

impl Add<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.nrows, self.ncols), (rhs.nrows, rhs.ncols));
        CMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a + *b).collect(),
        }
    }
}

impl Sub<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.nrows, self.ncols), (rhs.nrows, rhs.ncols));
        CMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| *a - *b).collect(),
        }
    }
}

impl Mul<&CMatrix> for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn approx_eq(a: &CMatrix, b: &CMatrix, tol: f64) -> bool {
        (a - b).fro_norm() <= tol * (1.0 + a.fro_norm().max(b.fro_norm()))
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let a = CMatrix::random(5, 5, &mut rng);
        let i = CMatrix::identity(5);
        assert!(approx_eq(&a.matmul(&i), &a, 1e-14));
        assert!(approx_eq(&i.matmul(&a), &a, 1e-14));
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let a = CMatrix::random(4, 6, &mut rng);
        let x = CVector::random(6, &mut rng);
        let y = a.matvec(&x);
        let xm = CMatrix::from_columns(&[x]);
        let ym = a.matmul(&xm);
        for i in 0..4 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-13);
        }
    }

    #[test]
    fn adjoint_consistency() {
        // ⟨A x, y⟩ = ⟨x, A† y⟩
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let a = CMatrix::random(5, 7, &mut rng);
        let x = CVector::random(7, &mut rng);
        let y = CVector::random(5, &mut rng);
        let lhs = a.matvec(&x).dot(&y);
        let rhs = x.dot(&a.matvec_adj(&y));
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn adjoint_mul_matches_explicit() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let a = CMatrix::random(6, 3, &mut rng);
        let b = CMatrix::random(6, 4, &mut rng);
        assert!(approx_eq(&a.adjoint_mul(&b), &a.adjoint().matmul(&b), 1e-13));
    }

    #[test]
    fn block_roundtrip() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let a = CMatrix::random(6, 6, &mut rng);
        let blk = a.block(1, 2, 3, 4);
        let mut b = CMatrix::zeros(6, 6);
        b.set_block(1, 2, &blk);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(b[(1 + i, 2 + j)], a[(1 + i, 2 + j)]);
            }
        }
    }

    #[test]
    fn hermiticity_defect_detects_structure() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let a = CMatrix::random(5, 5, &mut rng);
        let h = &a + &a.adjoint();
        assert!(h.hermiticity_defect() < 1e-13);
        assert!(a.hermiticity_defect() > 1e-3);
    }

    #[test]
    fn columns_and_diag() {
        let d = CMatrix::from_diag(&[c64(1.0, 0.0), c64(0.0, 2.0)]);
        assert_eq!(d[(1, 1)], c64(0.0, 2.0));
        assert_eq!(d[(0, 1)], Complex64::ZERO);
        let c = d.column(1);
        assert_eq!(c[0], Complex64::ZERO);
        assert_eq!(c[1], c64(0.0, 2.0));
        assert_eq!(d.trace(), c64(1.0, 2.0));
    }

    #[test]
    fn transpose_and_adjoint_relationship() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let a = CMatrix::random(3, 5, &mut rng);
        assert!(approx_eq(&a.adjoint(), &a.transpose().conj(), 1e-15));
        assert!(approx_eq(&a.adjoint().adjoint(), &a, 1e-15));
    }
}
