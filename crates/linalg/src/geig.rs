//! Dense generalized eigensolver `A x = λ B x` for complex matrices.
//!
//! LAPACK's QZ (`ZGGEV`) — what the paper's OBM baseline uses — is replaced
//! by a shift-and-invert reduction: pick a shift `σ` that makes `A - σ B`
//! nonsingular, form `M = (A - σ B)⁻¹ B`, solve the standard eigenproblem
//! `M y = θ y`, and map back through `λ = σ + 1/θ`.  Eigenvalues at infinity
//! (from a singular `B`) appear as `θ ≈ 0` and are reported as such.
//!
//! This is mathematically equivalent for the finite spectrum and is robust
//! enough for the interface problems produced by the OBM method, whose
//! coupling blocks are often numerically singular.

use crate::complex::{c64, Complex64};
use crate::eig::eigen;
use crate::lu::LuDecomposition;
use crate::matrix::CMatrix;
use crate::vector::CVector;
use crate::LinalgError;

/// One generalized eigenpair.
#[derive(Clone, Debug)]
pub struct GeneralizedEigenpair {
    /// The eigenvalue `λ`; `None` encodes an eigenvalue at infinity
    /// (`θ` numerically indistinguishable from zero).
    pub value: Option<Complex64>,
    /// The (right) eigenvector, unit 2-norm.
    pub vector: CVector,
}

/// Result of the generalized eigendecomposition.
#[derive(Clone, Debug)]
pub struct GeneralizedEigen {
    /// All `n` eigenpairs (finite and infinite).
    pub pairs: Vec<GeneralizedEigenpair>,
    /// The shift that was actually used.
    pub shift: Complex64,
}

impl GeneralizedEigen {
    /// Only the finite eigenvalues together with their vectors.
    pub fn finite_pairs(&self) -> impl Iterator<Item = (Complex64, &CVector)> {
        self.pairs.iter().filter_map(|p| p.value.map(|v| (v, &p.vector)))
    }
}

/// Threshold below which `θ` is treated as an eigenvalue at infinity.
const THETA_INF_TOL: f64 = 1e-12;

/// Solve `A x = λ B x`.
///
/// Shift candidates are tried in order until `A - σ B` factors successfully;
/// the candidates are scaled by the matrix norms so the routine is invariant
/// under rescaling of the problem.
pub fn generalized_eigen(a: &CMatrix, b: &CMatrix) -> Result<GeneralizedEigen, LinalgError> {
    if !a.is_square() || !b.is_square() || a.nrows() != b.nrows() {
        return Err(LinalgError::InvalidDimensions {
            context: "generalized_eigen requires square A, B of equal size",
        });
    }
    let n = a.nrows();
    if n == 0 {
        return Ok(GeneralizedEigen { pairs: vec![], shift: Complex64::ZERO });
    }
    let scale = (a.fro_norm() / (n as f64).sqrt()).max(b.fro_norm() / (n as f64).sqrt()).max(1e-30);

    // A handful of generic shifts (irrational direction avoids hitting
    // eigenvalues of structured problems).
    let candidates = [
        c64(0.0, 0.0),
        c64(0.6180339887, 0.3141592653),
        c64(-0.7320508075, 0.5772156649),
        c64(std::f64::consts::SQRT_2, -0.8660254037),
        c64(-2.2360679775, -1.7320508075),
    ];

    let mut last_err = LinalgError::Singular { pivot: 0 };
    for cand in candidates {
        let sigma = cand * scale;
        // S = A - sigma B
        let s = &(*a).clone() - &b.scale(sigma);
        match LuDecomposition::new(&s) {
            Ok(lu) => {
                if lu.rcond_estimate() < 1e-13 {
                    last_err = LinalgError::Singular { pivot: 0 };
                    continue;
                }
                let m = lu.solve_matrix(b);
                // A poorly conditioned shift can stall the QR iteration;
                // fall through to the next candidate instead of giving up.
                let e = match eigen(&m) {
                    Ok(e) => e,
                    Err(err) => {
                        last_err = err;
                        continue;
                    }
                };
                let mut pairs = Vec::with_capacity(n);
                for i in 0..n {
                    let theta = e.values[i];
                    let vector = e.vectors.column(i);
                    let value =
                        if theta.abs() < THETA_INF_TOL { None } else { Some(sigma + theta.inv()) };
                    pairs.push(GeneralizedEigenpair { value, vector });
                }
                return Ok(GeneralizedEigen { pairs, shift: sigma });
            }
            Err(e) => {
                last_err = e;
            }
        }
    }
    Err(last_err)
}

/// Relative residual `||A x - λ B x|| / ((||A|| + |λ| ||B||) ||x||)` of a
/// generalized eigenpair — used by callers to filter spurious solutions.
pub fn generalized_residual(a: &CMatrix, b: &CMatrix, lambda: Complex64, x: &CVector) -> f64 {
    let ax = a.matvec(x);
    let bx = b.matvec(x);
    let mut r = ax.clone();
    r.axpy(-lambda, &bx);
    let denom = (a.fro_norm() + lambda.abs() * b.fro_norm()) * x.norm();
    if denom == 0.0 {
        r.norm()
    } else {
        r.norm() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn reduces_to_standard_problem_when_b_is_identity() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(51);
        let a = CMatrix::random(8, 8, &mut rng);
        let b = CMatrix::identity(8);
        let ge = generalized_eigen(&a, &b).unwrap();
        let mut gvals: Vec<Complex64> = ge.finite_pairs().map(|(v, _)| v).collect();
        let mut svals = crate::eig::eigenvalues(&a).unwrap();
        assert_eq!(gvals.len(), 8);
        let key = |z: &Complex64| (z.re, z.im);
        gvals.sort_by(|x, y| key(x).partial_cmp(&key(y)).unwrap());
        svals.sort_by(|x, y| key(x).partial_cmp(&key(y)).unwrap());
        for (g, s) in gvals.iter().zip(&svals) {
            assert!((*g - *s).abs() < 1e-7 * (1.0 + s.abs()), "{g:?} vs {s:?}");
        }
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(52);
        let a = CMatrix::random(10, 10, &mut rng);
        let b = CMatrix::random(10, 10, &mut rng);
        let ge = generalized_eigen(&a, &b).unwrap();
        let mut count = 0;
        for (lambda, x) in ge.finite_pairs() {
            let r = generalized_residual(&a, &b, lambda, x);
            assert!(r < 1e-7, "residual {r} for λ = {lambda:?}");
            count += 1;
        }
        assert!(count >= 9, "expected almost all eigenvalues finite, got {count}");
    }

    #[test]
    fn singular_b_produces_infinite_eigenvalues() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(53);
        let a = CMatrix::random(6, 6, &mut rng);
        // B with rank 4: last two columns/rows zero.
        let mut b = CMatrix::random(6, 6, &mut rng);
        for i in 0..6 {
            b[(i, 4)] = Complex64::ZERO;
            b[(i, 5)] = Complex64::ZERO;
            b[(4, i)] = Complex64::ZERO;
            b[(5, i)] = Complex64::ZERO;
        }
        let ge = generalized_eigen(&a, &b).unwrap();
        let infinite = ge.pairs.iter().filter(|p| p.value.is_none()).count();
        assert!(infinite >= 2, "expected at least two infinite eigenvalues, got {infinite}");
        for (lambda, x) in ge.finite_pairs() {
            assert!(generalized_residual(&a, &b, lambda, x) < 1e-6);
        }
    }

    #[test]
    fn diagonal_pencil_has_elementwise_ratios() {
        let a = CMatrix::from_diag(&[c64(2.0, 0.0), c64(6.0, 0.0), c64(-1.0, 1.0)]);
        let b = CMatrix::from_diag(&[c64(1.0, 0.0), c64(2.0, 0.0), c64(1.0, 0.0)]);
        let ge = generalized_eigen(&a, &b).unwrap();
        let mut vals: Vec<Complex64> = ge.finite_pairs().map(|(v, _)| v).collect();
        vals.sort_by(|x, y| x.re.partial_cmp(&y.re).unwrap());
        assert!((vals[0] - c64(-1.0, 1.0)).abs() < 1e-9);
        assert!((vals[1] - c64(2.0, 0.0)).abs() < 1e-9);
        assert!((vals[2] - c64(3.0, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = CMatrix::zeros(3, 3);
        let b = CMatrix::zeros(4, 4);
        assert!(generalized_eigen(&a, &b).is_err());
    }
}
