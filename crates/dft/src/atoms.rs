//! Chemical elements, empirical pseudopotential parameters and atomic
//! structures.
//!
//! The paper obtains its Kohn-Sham potential from the (non-public) RSPACE
//! code.  As documented in `DESIGN.md`, this workspace substitutes an
//! *empirical* norm-conserving-style pseudopotential: a short-ranged
//! Gaussian local part plus separable Kleinman-Bylander s/p projectors.
//! The parameters below are not fitted to experiment — they are chosen so
//! that the resulting Hamiltonians have the same structure (sparsity,
//! Hermiticity, localized non-local blocks) and qualitatively reasonable
//! band widths, which is what the eigensolver experiments exercise.

use serde::{Deserialize, Serialize};

/// Chemical elements used by the paper's test systems.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Element {
    /// Aluminium (bulk electrode material).
    Al,
    /// Carbon (nanotubes).
    C,
    /// Boron (dopant).
    B,
    /// Nitrogen (dopant).
    N,
}

/// Parameters of one Kleinman-Bylander projector channel.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct KbChannel {
    /// Angular momentum (0 = s, 1 = p).
    pub l: usize,
    /// Kleinman-Bylander energy (hartree); the coupling strength of the
    /// separable term `E_kb |p⟩⟨p|`.
    pub energy: f64,
    /// Gaussian width of the projector (bohr).
    pub width: f64,
}

/// Empirical pseudopotential parameters of an element.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PseudoParams {
    /// Number of valence electrons contributed to the Fermi-level estimate.
    pub valence: f64,
    /// Depth of the Gaussian local potential well (hartree, negative).
    pub local_depth: f64,
    /// Width of the Gaussian local potential (bohr).
    pub local_width: f64,
    /// Repulsive core correction amplitude (hartree, positive).
    pub core_height: f64,
    /// Width of the repulsive core correction (bohr).
    pub core_width: f64,
    /// Kleinman-Bylander channels (s and p).
    pub channels: [KbChannel; 2],
    /// Cut-off radius of the non-local projectors (bohr).
    pub projector_cutoff: f64,
}

impl Element {
    /// Short chemical symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            Element::Al => "Al",
            Element::C => "C",
            Element::B => "B",
            Element::N => "N",
        }
    }

    /// Empirical pseudopotential parameters (see module docs for caveats).
    pub fn pseudo(&self) -> PseudoParams {
        match self {
            Element::Al => PseudoParams {
                valence: 3.0,
                local_depth: -0.85,
                local_width: 1.9,
                core_height: 0.35,
                core_width: 0.9,
                channels: [
                    KbChannel { l: 0, energy: 0.55, width: 1.35 },
                    KbChannel { l: 1, energy: 0.30, width: 1.55 },
                ],
                projector_cutoff: 2.8,
            },
            Element::C => PseudoParams {
                valence: 4.0,
                local_depth: -1.90,
                local_width: 1.15,
                core_height: 0.60,
                core_width: 0.55,
                channels: [
                    KbChannel { l: 0, energy: 0.95, width: 0.85 },
                    KbChannel { l: 1, energy: 0.50, width: 1.00 },
                ],
                projector_cutoff: 2.2,
            },
            Element::B => PseudoParams {
                valence: 3.0,
                local_depth: -1.55,
                local_width: 1.25,
                core_height: 0.50,
                core_width: 0.60,
                channels: [
                    KbChannel { l: 0, energy: 0.80, width: 0.95 },
                    KbChannel { l: 1, energy: 0.42, width: 1.10 },
                ],
                projector_cutoff: 2.3,
            },
            Element::N => PseudoParams {
                valence: 5.0,
                local_depth: -2.25,
                local_width: 1.05,
                core_height: 0.70,
                core_width: 0.50,
                channels: [
                    KbChannel { l: 0, energy: 1.05, width: 0.80 },
                    KbChannel { l: 1, energy: 0.58, width: 0.92 },
                ],
                projector_cutoff: 2.1,
            },
        }
    }
}

/// One atom: element plus Cartesian position in bohr.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    /// Chemical species.
    pub element: Element,
    /// Cartesian position (bohr) inside the cell: `x, y ∈ [0, Lx/Ly)`,
    /// `z ∈ [0, a)` where `a` is the period along the transport direction.
    pub position: [f64; 3],
}

impl Atom {
    /// Convenience constructor.
    pub fn new(element: Element, position: [f64; 3]) -> Self {
        Self { element, position }
    }
}

/// An atomic structure: the atoms of one unit cell of a 1-D periodic system,
/// plus the cell extents.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AtomicStructure {
    /// Human-readable name (used in benchmark output).
    pub name: String,
    /// Atoms of the unit cell.
    pub atoms: Vec<Atom>,
    /// Lateral cell extents `(Lx, Ly)` in bohr.
    pub lateral: (f64, f64),
    /// Period along the transport (z) direction in bohr.
    pub period: f64,
}

impl AtomicStructure {
    /// Number of atoms in the unit cell.
    pub fn natoms(&self) -> usize {
        self.atoms.len()
    }

    /// Total number of valence electrons per unit cell.
    pub fn valence_electrons(&self) -> f64 {
        self.atoms.iter().map(|a| a.element.pseudo().valence).sum()
    }

    /// Counts per element, in a stable order (for reporting).
    pub fn composition(&self) -> Vec<(Element, usize)> {
        let mut counts: Vec<(Element, usize)> = Vec::new();
        for a in &self.atoms {
            if let Some(e) = counts.iter_mut().find(|(el, _)| *el == a.element) {
                e.1 += 1;
            } else {
                counts.push((a.element, 1));
            }
        }
        counts
    }

    /// Verify every atom sits inside the declared cell.
    pub fn validate(&self) -> Result<(), String> {
        for (i, a) in self.atoms.iter().enumerate() {
            let [x, y, z] = a.position;
            if !(0.0..self.lateral.0).contains(&x)
                || !(0.0..self.lateral.1).contains(&y)
                || !(0.0..self.period).contains(&z)
            {
                return Err(format!(
                    "atom {i} ({}) at ({x:.3}, {y:.3}, {z:.3}) lies outside the cell \
                     {:.3} x {:.3} x {:.3}",
                    a.element.symbol(),
                    self.lateral.0,
                    self.lateral.1,
                    self.period
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_parameters_are_physical() {
        for e in [Element::Al, Element::C, Element::B, Element::N] {
            let p = e.pseudo();
            assert!(p.valence > 0.0);
            assert!(p.local_depth < 0.0, "{}: local part must be attractive", e.symbol());
            assert!(p.local_width > 0.0 && p.core_width > 0.0);
            assert!(p.projector_cutoff > 0.0);
            assert_eq!(p.channels[0].l, 0);
            assert_eq!(p.channels[1].l, 1);
            for ch in p.channels {
                assert!(ch.energy > 0.0 && ch.width > 0.0);
            }
        }
    }

    #[test]
    fn composition_and_valence() {
        let s = AtomicStructure {
            name: "test".into(),
            atoms: vec![
                Atom::new(Element::C, [1.0, 1.0, 0.5]),
                Atom::new(Element::C, [2.0, 1.0, 0.5]),
                Atom::new(Element::N, [1.5, 2.0, 1.0]),
            ],
            lateral: (5.0, 5.0),
            period: 3.0,
        };
        assert_eq!(s.natoms(), 3);
        assert_eq!(s.valence_electrons(), 4.0 + 4.0 + 5.0);
        let comp = s.composition();
        assert_eq!(comp, vec![(Element::C, 2), (Element::N, 1)]);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn validation_catches_out_of_cell_atoms() {
        let s = AtomicStructure {
            name: "bad".into(),
            atoms: vec![Atom::new(Element::C, [6.0, 1.0, 0.5])],
            lateral: (5.0, 5.0),
            period: 3.0,
        };
        assert!(s.validate().is_err());
    }
}
