//! Conventional (real-k) band structures and Fermi-level estimation.
//!
//! These are the red reference curves of the paper's Figure 6: for a real
//! wave number `k` the Bloch Hamiltonian `H(k) = H₀₀ + e^{ika} H₀₁ +
//! e^{-ika} H₀₁†` is Hermitian and its eigenvalues `E_n(k)` form the
//! ordinary band structure.  The complex-band-structure solver must
//! reproduce these bands wherever `|λ| = 1`.
//!
//! The dense diagonalization used here is only intended for the moderate
//! grids of the serial tests; the large-system experiments never need it.

use cbs_linalg::eigenvalues;

use crate::hamiltonian::BlockHamiltonian;

/// A sampled band structure: energies (hartree) for each k-point.
#[derive(Clone, Debug)]
pub struct BandStructure {
    /// The sampled wave numbers (1/bohr), each in `[-π/a, π/a]`.
    pub kpoints: Vec<f64>,
    /// For each k-point, the sorted band energies (lowest `n_bands`).
    pub bands: Vec<Vec<f64>>,
}

impl BandStructure {
    /// Smallest sampled energy.
    pub fn min_energy(&self) -> f64 {
        self.bands.iter().flatten().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sampled energy.
    pub fn max_energy(&self) -> f64 {
        self.bands.iter().flatten().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Distance from `energy` to the nearest band value at the k-point
    /// closest to `k` — used to verify the real-k solutions of the CBS.
    ///
    /// An empty band list (no k-points, or no bands at the matched
    /// k-point) has no nearest band: the distance is `f64::INFINITY`.
    pub fn distance_to_bands(&self, k: f64, energy: f64) -> f64 {
        let Some((idx, _)) = self
            .kpoints
            .iter()
            .enumerate()
            .map(|(i, &kk)| (i, (kk - k).abs()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        else {
            return f64::INFINITY;
        };
        self.bands[idx].iter().map(|&e| (e - energy).abs()).fold(f64::INFINITY, f64::min)
    }

    /// The band-edge energies: for each band index, the minimum and maximum
    /// of `E_n(k)` over the sampled k-points.  Sorted ascending,
    /// deduplicated within `tol`.
    ///
    /// Band edges are where propagating channels open and close, i.e. where
    /// the CBS channel count jumps — exactly the energies an adaptive sweep
    /// wants to resolve.
    pub fn band_edges(&self, tol: f64) -> Vec<f64> {
        let n_bands = self.bands.iter().map(std::vec::Vec::len).max().unwrap_or(0);
        let mut edges = Vec::new();
        for band in 0..n_bands {
            let values = self.bands.iter().filter_map(|b| b.get(band).copied());
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for v in values {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if lo.is_finite() {
                edges.push(lo);
                edges.push(hi);
            }
        }
        edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        edges.dedup_by(|a, b| (*a - *b).abs() <= tol);
        edges
    }

    /// `true` when at least one band edge lies in the half-open interval
    /// `(lo, hi]` — the refinement predicate an adaptive energy sweep uses
    /// to decide whether an interval brackets the opening or closing of a
    /// channel and deserves bisection.
    ///
    /// The upper endpoint is **inclusive**: sweep grids are closed sets of
    /// sampled energies, and with a fully open interval an edge landing
    /// exactly on a grid energy would satisfy neither `(E_{i-1}, E_i)` nor
    /// `(E_i, E_{i+1})`, silently skipping that channel opening.  Half-open
    /// attribution assigns such an edge to exactly one interval (the one
    /// below it) — bracketed once, never twice, never zero times.
    pub fn brackets_band_edge(&self, e_lo: f64, e_hi: f64) -> bool {
        edges_bracket(&self.band_edges(0.0), e_lo, e_hi)
    }
}

/// `true` when at least one of `edges` lies in the half-open interval
/// `(lo, hi]` spanned by `e_lo`/`e_hi` (orientation-agnostic) — the single
/// source of the bracketing convention, shared by
/// [`BandStructure::brackets_band_edge`] and the sweep's `BandEdgeRefiner`
/// (which queries a precomputed edge list) so the two cannot
/// desynchronize.
pub fn edges_bracket(edges: &[f64], e_lo: f64, e_hi: f64) -> bool {
    let (lo, hi) = if e_lo <= e_hi { (e_lo, e_hi) } else { (e_hi, e_lo) };
    edges.iter().any(|&edge| edge > lo && edge <= hi)
}

/// Compute the lowest `n_bands` bands on `nk` uniformly spaced k-points in
/// `[0, π/a]` by dense diagonalization of the Bloch Hamiltonian.
pub fn band_structure(h: &BlockHamiltonian, nk: usize, n_bands: usize) -> BandStructure {
    assert!(nk >= 2, "need at least two k-points");
    let a = h.period();
    let kmax = std::f64::consts::PI / a;
    let kpoints: Vec<f64> = (0..nk).map(|i| kmax * i as f64 / (nk - 1) as f64).collect();
    let bands = kpoints
        .iter()
        .map(|&k| {
            let hk = h.bloch_hamiltonian_dense(k);
            let mut evals: Vec<f64> = eigenvalues(&hk)
                .expect("Bloch Hamiltonian diagonalization failed")
                .into_iter()
                .map(|z| z.re)
                .collect();
            evals.sort_by(|x, y| x.partial_cmp(y).unwrap());
            evals.truncate(n_bands.min(evals.len()));
            evals
        })
        .collect();
    BandStructure { kpoints, bands }
}

/// Estimate the Fermi energy by filling the lowest states with the valence
/// electrons of the structure (two electrons per Bloch state, k-averaged).
///
/// `n_electrons` is the number of valence electrons per unit cell; the
/// returned value is the energy of the highest occupied state averaged with
/// the lowest unoccupied one (mid-gap for insulators, band energy for
/// metals).
pub fn fermi_energy(h: &BlockHamiltonian, n_electrons: f64, nk: usize) -> f64 {
    let n_occupied_per_k = (n_electrons / 2.0).ceil() as usize;
    let bs = band_structure(h, nk.max(2), n_occupied_per_k + 2);
    // Collect the n_occ-th and (n_occ+1)-th levels over k and take the
    // overall HOMO / LUMO.
    let mut homo = f64::NEG_INFINITY;
    let mut lumo = f64::INFINITY;
    for bands in &bs.bands {
        if n_occupied_per_k >= 1 && bands.len() >= n_occupied_per_k {
            homo = homo.max(bands[n_occupied_per_k - 1]);
        }
        if bands.len() > n_occupied_per_k {
            lumo = lumo.min(bands[n_occupied_per_k]);
        }
    }
    if homo.is_finite() && lumo.is_finite() {
        0.5 * (homo + lumo)
    } else if homo.is_finite() {
        homo
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::{Atom, AtomicStructure, Element};
    use crate::hamiltonian::{BlockHamiltonian, HamiltonianParams};
    use cbs_grid::{FdOrder, Grid3};

    fn small_hamiltonian() -> BlockHamiltonian {
        let s = AtomicStructure {
            name: "chain".into(),
            atoms: vec![Atom::new(Element::C, [1.2, 1.2, 1.2])],
            lateral: (2.4, 2.4),
            period: 2.4,
        };
        let grid = Grid3::isotropic(4, 4, 4, 0.6);
        BlockHamiltonian::build(
            grid,
            &s,
            HamiltonianParams { fd: FdOrder::new(2), include_nonlocal: true },
        )
    }

    #[test]
    fn bands_are_sorted_and_bounded() {
        let h = small_hamiltonian();
        let bs = band_structure(&h, 5, 6);
        assert_eq!(bs.kpoints.len(), 5);
        for bands in &bs.bands {
            assert_eq!(bands.len(), 6);
            for w in bands.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
        assert!(bs.min_energy() < bs.max_energy());
        // With the (repulsive) non-local projectors switched off, the single
        // attractive atom per cell must produce at least one bound band below
        // the free-electron bottom (0).
        let s = AtomicStructure {
            name: "chain".into(),
            atoms: vec![Atom::new(Element::C, [1.2, 1.2, 1.2])],
            lateral: (2.4, 2.4),
            period: 2.4,
        };
        let grid = Grid3::isotropic(4, 4, 4, 0.6);
        let h_local = BlockHamiltonian::build(
            grid,
            &s,
            HamiltonianParams { fd: FdOrder::new(2), include_nonlocal: false },
        );
        let bs_local = band_structure(&h_local, 3, 4);
        assert!(bs_local.min_energy() < 0.0, "lowest band {}", bs_local.min_energy());
    }

    #[test]
    fn bands_are_periodic_in_k_direction_symmetry() {
        // E(k) = E(-k) because the Hamiltonian blocks satisfy H10 = H01†.
        let h = small_hamiltonian();
        let a = h.period();
        for &k in &[0.2, 0.7] {
            let hp = h.bloch_hamiltonian_dense(k / a);
            let hm = h.bloch_hamiltonian_dense(-k / a);
            let mut ep: Vec<f64> = eigenvalues(&hp).unwrap().into_iter().map(|z| z.re).collect();
            let mut em: Vec<f64> = eigenvalues(&hm).unwrap().into_iter().map(|z| z.re).collect();
            ep.sort_by(|x, y| x.partial_cmp(y).unwrap());
            em.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for (a, b) in ep.iter().zip(&em) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn fermi_energy_lies_within_band_range() {
        let h = small_hamiltonian();
        let ef = fermi_energy(&h, 4.0, 3);
        let bs = band_structure(&h, 3, 8);
        assert!(ef >= bs.min_energy() && ef <= bs.max_energy(), "EF = {ef}");
    }

    #[test]
    fn distance_to_bands_of_empty_structure_is_infinite() {
        // Regression: an empty band list used to panic in the k-point
        // `expect`; it must report "infinitely far from any band" instead.
        let empty = BandStructure { kpoints: Vec::new(), bands: Vec::new() };
        assert_eq!(empty.distance_to_bands(0.3, 0.1), f64::INFINITY);
        // A k-point with no band values is equally bandless.
        let hollow = BandStructure { kpoints: vec![0.0], bands: vec![Vec::new()] };
        assert_eq!(hollow.distance_to_bands(0.0, 0.1), f64::INFINITY);
        assert!(empty.band_edges(0.0).is_empty());
        assert!(!empty.brackets_band_edge(-1.0, 1.0));
    }

    #[test]
    fn band_edges_bracket_channel_openings() {
        // Two hand-built bands: band 0 spans [-1.0, -0.2], band 1 spans
        // [0.4, 0.9].
        let bs = BandStructure {
            kpoints: vec![0.0, 0.5, 1.0],
            bands: vec![vec![-1.0, 0.4], vec![-0.6, 0.9], vec![-0.2, 0.7]],
        };
        let edges = bs.band_edges(0.0);
        assert_eq!(edges, vec![-1.0, -0.2, 0.4, 0.9]);
        // The gap (-0.2, 0.4) contains no edge; intervals crossing an edge do.
        assert!(!bs.brackets_band_edge(-0.15, 0.35));
        assert!(bs.brackets_band_edge(-0.3, -0.1), "crosses the band-0 top");
        assert!(bs.brackets_band_edge(0.35, 0.45), "crosses the band-1 bottom");
        // Orientation-agnostic; an empty interval brackets nothing.
        assert!(bs.brackets_band_edge(0.45, 0.35));
        assert!(!bs.brackets_band_edge(0.4, 0.4));
        // Dedup tolerance merges nearly equal edges.
        let merged = bs.band_edges(0.7);
        assert!(merged.len() < edges.len());
    }

    #[test]
    fn edge_exactly_on_a_grid_energy_is_bracketed_once() {
        // Regression: with strict inequalities at both ends, an edge landing
        // exactly on a sweep grid energy was bracketed by *neither*
        // neighbouring interval and adaptive refinement skipped the channel
        // opening.  The half-open `(lo, hi]` convention assigns it to the
        // interval below, exactly once.
        let bs = BandStructure {
            kpoints: vec![0.0, 0.5, 1.0],
            bands: vec![vec![-1.0, 0.4], vec![-0.6, 0.9], vec![-0.2, 0.7]],
        };
        // Grid energies 0.3, 0.4, 0.5: the band-1 bottom edge sits exactly
        // on the middle grid point.
        assert!(bs.band_edges(0.0).contains(&0.4));
        assert!(bs.brackets_band_edge(0.3, 0.4), "interval below the on-grid edge must trigger");
        assert!(!bs.brackets_band_edge(0.4, 0.5), "interval above must not double-count it");
        // Reversed orientation behaves identically.
        assert!(bs.brackets_band_edge(0.4, 0.3));
    }

    #[test]
    fn distance_to_bands_is_zero_on_a_band() {
        let h = small_hamiltonian();
        let bs = band_structure(&h, 4, 5);
        let k = bs.kpoints[2];
        let e = bs.bands[2][1];
        assert!(bs.distance_to_bands(k, e) < 1e-14);
        assert!(bs.distance_to_bands(k, e + 0.3) > 0.1);
    }
}
