//! Conventional (real-k) band structures and Fermi-level estimation.
//!
//! These are the red reference curves of the paper's Figure 6: for a real
//! wave number `k` the Bloch Hamiltonian `H(k) = H₀₀ + e^{ika} H₀₁ +
//! e^{-ika} H₀₁†` is Hermitian and its eigenvalues `E_n(k)` form the
//! ordinary band structure.  The complex-band-structure solver must
//! reproduce these bands wherever `|λ| = 1`.
//!
//! The dense diagonalization used here is only intended for the moderate
//! grids of the serial tests; the large-system experiments never need it.

use cbs_linalg::eigenvalues;

use crate::hamiltonian::BlockHamiltonian;

/// A sampled band structure: energies (hartree) for each k-point.
#[derive(Clone, Debug)]
pub struct BandStructure {
    /// The sampled wave numbers (1/bohr), each in `[-π/a, π/a]`.
    pub kpoints: Vec<f64>,
    /// For each k-point, the sorted band energies (lowest `n_bands`).
    pub bands: Vec<Vec<f64>>,
}

impl BandStructure {
    /// Smallest sampled energy.
    pub fn min_energy(&self) -> f64 {
        self.bands.iter().flatten().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Largest sampled energy.
    pub fn max_energy(&self) -> f64 {
        self.bands.iter().flatten().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Distance from `energy` to the nearest band value at the k-point
    /// closest to `k` — used to verify the real-k solutions of the CBS.
    pub fn distance_to_bands(&self, k: f64, energy: f64) -> f64 {
        let (idx, _) = self
            .kpoints
            .iter()
            .enumerate()
            .map(|(i, &kk)| (i, (kk - k).abs()))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("band structure has at least one k-point");
        self.bands[idx].iter().map(|&e| (e - energy).abs()).fold(f64::INFINITY, f64::min)
    }
}

/// Compute the lowest `n_bands` bands on `nk` uniformly spaced k-points in
/// `[0, π/a]` by dense diagonalization of the Bloch Hamiltonian.
pub fn band_structure(h: &BlockHamiltonian, nk: usize, n_bands: usize) -> BandStructure {
    assert!(nk >= 2, "need at least two k-points");
    let a = h.period();
    let kmax = std::f64::consts::PI / a;
    let kpoints: Vec<f64> = (0..nk).map(|i| kmax * i as f64 / (nk - 1) as f64).collect();
    let bands = kpoints
        .iter()
        .map(|&k| {
            let hk = h.bloch_hamiltonian_dense(k);
            let mut evals: Vec<f64> = eigenvalues(&hk)
                .expect("Bloch Hamiltonian diagonalization failed")
                .into_iter()
                .map(|z| z.re)
                .collect();
            evals.sort_by(|x, y| x.partial_cmp(y).unwrap());
            evals.truncate(n_bands.min(evals.len()));
            evals
        })
        .collect();
    BandStructure { kpoints, bands }
}

/// Estimate the Fermi energy by filling the lowest states with the valence
/// electrons of the structure (two electrons per Bloch state, k-averaged).
///
/// `n_electrons` is the number of valence electrons per unit cell; the
/// returned value is the energy of the highest occupied state averaged with
/// the lowest unoccupied one (mid-gap for insulators, band energy for
/// metals).
pub fn fermi_energy(h: &BlockHamiltonian, n_electrons: f64, nk: usize) -> f64 {
    let n_occupied_per_k = (n_electrons / 2.0).ceil() as usize;
    let bs = band_structure(h, nk.max(2), n_occupied_per_k + 2);
    // Collect the n_occ-th and (n_occ+1)-th levels over k and take the
    // overall HOMO / LUMO.
    let mut homo = f64::NEG_INFINITY;
    let mut lumo = f64::INFINITY;
    for bands in &bs.bands {
        if n_occupied_per_k >= 1 && bands.len() >= n_occupied_per_k {
            homo = homo.max(bands[n_occupied_per_k - 1]);
        }
        if bands.len() > n_occupied_per_k {
            lumo = lumo.min(bands[n_occupied_per_k]);
        }
    }
    if homo.is_finite() && lumo.is_finite() {
        0.5 * (homo + lumo)
    } else if homo.is_finite() {
        homo
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::{Atom, AtomicStructure, Element};
    use crate::hamiltonian::{BlockHamiltonian, HamiltonianParams};
    use cbs_grid::{FdOrder, Grid3};

    fn small_hamiltonian() -> BlockHamiltonian {
        let s = AtomicStructure {
            name: "chain".into(),
            atoms: vec![Atom::new(Element::C, [1.2, 1.2, 1.2])],
            lateral: (2.4, 2.4),
            period: 2.4,
        };
        let grid = Grid3::isotropic(4, 4, 4, 0.6);
        BlockHamiltonian::build(
            grid,
            &s,
            HamiltonianParams { fd: FdOrder::new(2), include_nonlocal: true },
        )
    }

    #[test]
    fn bands_are_sorted_and_bounded() {
        let h = small_hamiltonian();
        let bs = band_structure(&h, 5, 6);
        assert_eq!(bs.kpoints.len(), 5);
        for bands in &bs.bands {
            assert_eq!(bands.len(), 6);
            for w in bands.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
        assert!(bs.min_energy() < bs.max_energy());
        // With the (repulsive) non-local projectors switched off, the single
        // attractive atom per cell must produce at least one bound band below
        // the free-electron bottom (0).
        let s = AtomicStructure {
            name: "chain".into(),
            atoms: vec![Atom::new(Element::C, [1.2, 1.2, 1.2])],
            lateral: (2.4, 2.4),
            period: 2.4,
        };
        let grid = Grid3::isotropic(4, 4, 4, 0.6);
        let h_local = BlockHamiltonian::build(
            grid,
            &s,
            HamiltonianParams { fd: FdOrder::new(2), include_nonlocal: false },
        );
        let bs_local = band_structure(&h_local, 3, 4);
        assert!(bs_local.min_energy() < 0.0, "lowest band {}", bs_local.min_energy());
    }

    #[test]
    fn bands_are_periodic_in_k_direction_symmetry() {
        // E(k) = E(-k) because the Hamiltonian blocks satisfy H10 = H01†.
        let h = small_hamiltonian();
        let a = h.period();
        for &k in &[0.2, 0.7] {
            let hp = h.bloch_hamiltonian_dense(k / a);
            let hm = h.bloch_hamiltonian_dense(-k / a);
            let mut ep: Vec<f64> = eigenvalues(&hp).unwrap().into_iter().map(|z| z.re).collect();
            let mut em: Vec<f64> = eigenvalues(&hm).unwrap().into_iter().map(|z| z.re).collect();
            ep.sort_by(|x, y| x.partial_cmp(y).unwrap());
            em.sort_by(|x, y| x.partial_cmp(y).unwrap());
            for (a, b) in ep.iter().zip(&em) {
                assert!((a - b).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn fermi_energy_lies_within_band_range() {
        let h = small_hamiltonian();
        let ef = fermi_energy(&h, 4.0, 3);
        let bs = band_structure(&h, 3, 8);
        assert!(ef >= bs.min_energy() && ef <= bs.max_energy(), "EF = {ef}");
    }

    #[test]
    fn distance_to_bands_is_zero_on_a_band() {
        let h = small_hamiltonian();
        let bs = band_structure(&h, 4, 5);
        let k = bs.kpoints[2];
        let e = bs.bands[2][1];
        assert!(bs.distance_to_bands(k, e) < 1e-14);
        assert!(bs.distance_to_bands(k, e + 0.3) > 0.1);
    }
}
