//! Evaluation of the empirical pseudopotential on the real-space grid:
//! the Gaussian local potential and the separable Kleinman-Bylander
//! projectors (s and p channels).
//!
//! All functions are short-ranged by construction (see `DESIGN.md`), so a
//! single shell of periodic images along the transport direction and the
//! lateral minimum-image convention are sufficient.

use cbs_grid::Grid3;
use cbs_linalg::Complex64;
use cbs_sparse::SparseVec;

use crate::atoms::{Atom, KbChannel};

/// Local pseudopotential of one atom at distance `r` (bohr): an attractive
/// Gaussian well with a repulsive Gaussian core correction,
/// `v(r) = D exp(-(r/w)²) + C exp(-(r/wc)²)` with `D < 0 < C`.
pub fn local_potential(atom: &Atom, r: f64) -> f64 {
    let p = atom.element.pseudo();
    p.local_depth * (-(r / p.local_width).powi(2)).exp()
        + p.core_height * (-(r / p.core_width).powi(2)).exp()
}

/// Radius beyond which the local potential of any supported element is below
/// 10⁻¹⁰ hartree and can be neglected.
pub fn local_cutoff(atom: &Atom) -> f64 {
    let p = atom.element.pseudo();
    // exp(-(r/w)^2) < 1e-10  =>  r > w * sqrt(10 ln 10)
    let decades = (10.0_f64 * std::f64::consts::LN_10).sqrt();
    p.local_width.max(p.core_width) * decades
}

/// Value of a Kleinman-Bylander projector of channel `ch` at displacement
/// `d = r_grid - r_atom` (bohr).
///
/// * s channel (`l = 0`): `N exp(-r²/(2w²))`
/// * p channels (`l = 1`, `m = 0, ±1` represented by the Cartesian x/y/z
///   forms): `N (d_α / w) exp(-r²/(2w²))`
///
/// The normalization `N` is fixed so that the projector has unit L² norm in
/// the continuum; on the grid the discrete norm differs slightly, which only
/// rescales the empirical KB energies.
pub fn projector_value(ch: &KbChannel, m: usize, d: [f64; 3]) -> f64 {
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    let w = ch.width;
    let gauss = (-r2 / (2.0 * w * w)).exp();
    match ch.l {
        0 => {
            // (pi^(3/4) w^(3/2))^-1 normalizes the 3-D Gaussian.
            let n = 1.0 / (std::f64::consts::PI.powf(0.75) * w.powf(1.5));
            n * gauss
        }
        1 => {
            let n = (2.0_f64).sqrt() / (std::f64::consts::PI.powf(0.75) * w.powf(2.5));
            n * d[m] * gauss
        }
        l => panic!("unsupported angular momentum l={l}"),
    }
}

/// Number of projectors contributed by one channel (1 for s, 3 for p).
pub fn channel_multiplicity(ch: &KbChannel) -> usize {
    match ch.l {
        0 => 1,
        1 => 3,
        _ => panic!("unsupported angular momentum"),
    }
}

/// Evaluate one projector of `atom` (shifted along z by `z_shift` cells) on
/// all grid points within its cutoff, returning a sparse vector over the
/// home-cell grid.  Lateral periodicity is handled with the minimum-image
/// convention.  Returns an empty vector when the shifted atom is out of
/// range of the home cell entirely.
pub fn projector_on_grid(
    grid: &Grid3,
    atom: &Atom,
    ch: &KbChannel,
    m: usize,
    z_shift: f64,
) -> SparseVec {
    let p = atom.element.pseudo();
    let cutoff = p.projector_cutoff;
    let center = [atom.position[0], atom.position[1], atom.position[2] + z_shift];
    // Quick reject: if the z range of the sphere misses the cell entirely.
    if center[2] + cutoff < 0.0 || center[2] - cutoff > grid.lz() {
        return SparseVec::empty();
    }
    let mut entries = Vec::new();
    let k_lo = (((center[2] - cutoff) / grid.hz).floor().max(0.0)) as usize;
    let k_hi = ((((center[2] + cutoff) / grid.hz).ceil()) as usize).min(grid.nz.saturating_sub(1));
    for k in k_lo..=k_hi {
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                let pos = grid.position(i, j, k);
                let mut d = grid.min_image_xy(center, pos);
                // z is open within the cell: no wrapping.
                d[2] = pos[2] - center[2];
                let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                if r <= cutoff {
                    // The factor sqrt(dv) makes the discrete bra-ket
                    // ⟨p|ψ⟩ = Σ_j p̃_j* ψ_j approximate the volume-weighted
                    // integral ∫ p*(r) ψ(r) d³r, so the Kleinman-Bylander
                    // energies are grid-spacing independent.
                    let v = projector_value(ch, m, d) * grid.dv().sqrt();
                    if v != 0.0 {
                        entries.push((grid.index(i, j, k), Complex64::real(v)));
                    }
                }
            }
        }
    }
    SparseVec::new(entries)
}

/// Total local potential of a set of atoms evaluated at every grid point,
/// including the periodic images in the previous/next cell along z and the
/// lateral minimum images.
pub fn local_potential_on_grid(grid: &Grid3, atoms: &[Atom]) -> Vec<f64> {
    let mut v = vec![0.0f64; grid.npoints()];
    let lz = grid.lz();
    for atom in atoms {
        let cutoff = local_cutoff(atom);
        // Include every periodic image along z whose cutoff sphere can touch
        // the home cell (the local tail may be longer-ranged than one period).
        let shells = (cutoff / lz).ceil() as i64 + 1;
        for shell in -shells..=shells {
            let z_shift = shell as f64 * lz;
            let center = [atom.position[0], atom.position[1], atom.position[2] + z_shift];
            if center[2] + cutoff < 0.0 || center[2] - cutoff > lz {
                continue;
            }
            let k_lo = (((center[2] - cutoff) / grid.hz).floor().max(0.0)) as usize;
            let k_hi =
                ((((center[2] + cutoff) / grid.hz).ceil()) as usize).min(grid.nz.saturating_sub(1));
            for k in k_lo..=k_hi {
                for j in 0..grid.ny {
                    for i in 0..grid.nx {
                        let pos = grid.position(i, j, k);
                        let mut d = grid.min_image_xy(center, pos);
                        d[2] = pos[2] - center[2];
                        let r = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
                        if r <= cutoff {
                            v[grid.index(i, j, k)] += local_potential(atom, r);
                        }
                    }
                }
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::Element;

    #[test]
    fn local_potential_is_attractive_at_origin_and_decays() {
        let a = Atom::new(Element::C, [0.0, 0.0, 0.0]);
        assert!(local_potential(&a, 0.0) < 0.0 + Element::C.pseudo().core_height.abs());
        assert!(local_potential(&a, 1.5) < 0.0);
        let far = local_potential(&a, local_cutoff(&a));
        assert!(far.abs() < 1e-9);
    }

    #[test]
    fn projector_values_have_expected_symmetry() {
        let ch_s = KbChannel { l: 0, energy: 1.0, width: 0.9 };
        let ch_p = KbChannel { l: 1, energy: 0.5, width: 1.0 };
        // s projector is even under inversion.
        let d = [0.3, -0.2, 0.4];
        let dm = [-0.3, 0.2, -0.4];
        assert!((projector_value(&ch_s, 0, d) - projector_value(&ch_s, 0, dm)).abs() < 1e-14);
        // p projector is odd.
        for m in 0..3 {
            assert!((projector_value(&ch_p, m, d) + projector_value(&ch_p, m, dm)).abs() < 1e-14);
        }
        // p_x vanishes on the x = 0 plane.
        assert_eq!(projector_value(&ch_p, 0, [0.0, 0.5, 0.7]), 0.0);
        assert_eq!(channel_multiplicity(&ch_s), 1);
        assert_eq!(channel_multiplicity(&ch_p), 3);
    }

    #[test]
    fn projector_on_grid_is_localized() {
        let grid = Grid3::isotropic(12, 12, 12, 0.6);
        let atom = Atom::new(Element::C, [3.6, 3.6, 3.6]);
        let ch = Element::C.pseudo().channels[0];
        let p = projector_on_grid(&grid, &atom, &ch, 0, 0.0);
        assert!(p.nnz() > 0);
        assert!(p.nnz() < grid.npoints(), "projector must not cover the whole grid");
        // All support within the cutoff sphere.
        let cutoff = Element::C.pseudo().projector_cutoff;
        for (idx, _) in p.iter() {
            let (i, j, k) = grid.coords(idx);
            let pos = grid.position(i, j, k);
            let d = grid.min_image_xy(atom.position, pos);
            let dz = pos[2] - atom.position[2];
            let r = (d[0] * d[0] + d[1] * d[1] + dz * dz).sqrt();
            assert!(r <= cutoff + 1e-12);
        }
    }

    #[test]
    fn shifted_projector_out_of_range_is_empty() {
        let grid = Grid3::isotropic(10, 10, 10, 0.5);
        let atom = Atom::new(Element::C, [2.5, 2.5, 2.5]);
        let ch = Element::C.pseudo().channels[0];
        // Shift by +2 cells: far outside.
        let p = projector_on_grid(&grid, &atom, &ch, 0, 2.0 * grid.lz());
        assert!(p.is_empty());
    }

    #[test]
    fn projector_spills_into_neighbor_cell_window() {
        let grid = Grid3::isotropic(10, 10, 8, 0.5); // lz = 4.0
        let ch = Element::C.pseudo().channels[0];
        // Atom near the top of the cell: its next-cell image (shift -lz from
        // that image's frame == evaluating the atom shifted by -lz) has
        // support near the bottom of the window.
        let atom = Atom::new(Element::C, [2.5, 2.5, 3.7]);
        let spill = projector_on_grid(&grid, &atom, &ch, 0, -grid.lz());
        assert!(!spill.is_empty(), "projector of the shifted image should reach the window");
        // And all its support must be near z = 0.
        for (idx, _) in spill.iter() {
            let (_, _, k) = grid.coords(idx);
            assert!(
                (k as f64) * grid.hz
                    <= Element::C.pseudo().projector_cutoff - (grid.lz() - 3.7) + 1e-9
            );
        }
    }

    #[test]
    fn local_potential_grid_includes_periodic_images() {
        // lz = 4.  Atom at the very bottom: points near the top must feel
        // its image through the periodic wrap.
        let grid = Grid3::isotropic(8, 8, 8, 0.5);
        let atoms = [Atom::new(Element::C, [2.0, 2.0, 0.1])];
        let v = local_potential_on_grid(&grid, &atoms);
        let near = v[grid.index(4, 4, 0)];
        let top = v[grid.index(4, 4, 7)]; // z = 3.5, distance to image at 4.1 is 0.6
        assert!(near < -0.5, "potential near the atom should be deep, got {near}");
        assert!(top < -0.1, "potential near the periodic image should be felt, got {top}");
    }

    #[test]
    fn local_potential_lateral_minimum_image() {
        let grid = Grid3::isotropic(8, 8, 8, 0.5); // lx = 4
        let atoms = [Atom::new(Element::C, [0.0, 2.0, 2.0])];
        let v = local_potential_on_grid(&grid, &atoms);
        // The points at x = 0.5 and x = 3.5 are both 0.5 bohr away from the
        // atom (the latter through the periodic boundary) and must feel the
        // same potential.
        let wrapped = v[grid.index(7, 4, 4)];
        let direct = v[grid.index(1, 4, 4)];
        assert!((wrapped - direct).abs() < 1e-10 * direct.abs());
        assert!(wrapped < -0.5);
    }
}
