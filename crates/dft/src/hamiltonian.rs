//! Assembly of the periodic block Hamiltonian on the real-space grid.
//!
//! For a 1-D periodic system the Kohn-Sham Hamiltonian is block tridiagonal
//! in the unit-cell index `n`:
//!
//! ```text
//!  H = ⎡ ...                         ⎤
//!      ⎢  H₁₀  H₀₀  H₀₁              ⎥
//!      ⎢       H₁₀  H₀₀  H₀₁         ⎥     with  H₁₀ = H₀₁†
//!      ⎣ ...                         ⎦
//! ```
//!
//! `H₀₀` collects the kinetic stencil inside the cell (with periodic wrap in
//! the lateral x/y directions), the local pseudopotential (diagonal) and the
//! non-local projector terms whose bra and ket both live in the cell.
//! `H₀₁` collects the kinetic stencil legs that cross the upper z boundary
//! and the projector terms whose support straddles it.
//!
//! Both blocks are kept in two pieces: an explicit CSR matrix (kinetic +
//! local) and a factored low-rank operator (non-local projectors), so the
//! operator application stays O(N) in time and memory — the property the
//! paper's method depends on.

use serde::{Deserialize, Serialize};

use cbs_grid::{CellShift, FdOrder, Grid3, KINETIC_PREFACTOR};
use cbs_linalg::{CMatrix, Complex64};
use cbs_sparse::{CooBuilder, CsrMatrix, LinearOperator, LowRankOp};

use crate::atoms::AtomicStructure;
use crate::pseudopotential::{channel_multiplicity, local_potential_on_grid, projector_on_grid};

/// Options controlling the Hamiltonian assembly.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HamiltonianParams {
    /// Finite-difference half-width (the paper uses `N_f = 4`).
    pub fd: FdOrder,
    /// Include the separable non-local projectors.
    pub include_nonlocal: bool,
}

impl Default for HamiltonianParams {
    fn default() -> Self {
        Self { fd: FdOrder::PAPER, include_nonlocal: true }
    }
}

/// The two independent blocks `H₀₀`, `H₀₁` of the periodic Hamiltonian,
/// each split into a sparse (kinetic + local) and a low-rank (non-local)
/// part.
#[derive(Clone, Debug)]
pub struct BlockHamiltonian {
    /// The real-space grid of one unit cell.
    pub grid: Grid3,
    /// Finite-difference order used for the Laplacian.
    pub fd: FdOrder,
    /// Name of the underlying structure (for reports).
    pub label: String,
    h00_sparse: CsrMatrix,
    h01_sparse: CsrMatrix,
    vnl00: LowRankOp,
    vnl01: LowRankOp,
}

/// A view of one Hamiltonian block (`sparse + low-rank`) as a single
/// matrix-free [`LinearOperator`].
pub struct BlockOp<'a> {
    sparse: &'a CsrMatrix,
    lowrank: &'a LowRankOp,
    scratch_rows: usize,
}

impl LinearOperator for BlockOp<'_> {
    fn nrows(&self) -> usize {
        self.sparse.nrows()
    }
    fn ncols(&self) -> usize {
        self.sparse.ncols()
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.apply_block(x, y, 1);
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.apply_adjoint_block(x, y, 1);
    }
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        self.sparse.matvec_block_into(x, y, nvecs);
        if self.lowrank.rank() > 0 {
            cbs_sparse::with_scratch(self.scratch_rows * nvecs, |tmp| {
                self.lowrank.apply_block(x, tmp, nvecs);
                for (yi, ti) in y.iter_mut().zip(tmp.iter()) {
                    *yi += *ti;
                }
            });
        }
    }
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        self.sparse.matvec_adjoint_block_into(x, y, nvecs);
        if self.lowrank.rank() > 0 {
            cbs_sparse::with_scratch(self.sparse.ncols() * nvecs, |tmp| {
                self.lowrank.apply_adjoint_block(x, tmp, nvecs);
                for (yi, ti) in y.iter_mut().zip(tmp.iter()) {
                    *yi += *ti;
                }
            });
        }
    }
    fn memory_bytes(&self) -> usize {
        self.sparse.storage_bytes() + self.lowrank.memory_bytes()
    }
}

impl BlockHamiltonian {
    /// Assemble the blocks for `structure` discretized on `grid`.
    ///
    /// Panics if the finite-difference stencil or the projector cutoff would
    /// couple beyond nearest-neighbour cells (`nf > nz`, or cutoff ≥ period),
    /// because then the block-tridiagonal form (and the QEP) would not hold.
    pub fn build(grid: Grid3, structure: &AtomicStructure, params: HamiltonianParams) -> Self {
        structure.validate().expect("invalid atomic structure");
        assert!(
            params.fd.nf <= grid.nz,
            "finite-difference half-width {} exceeds nz = {}",
            params.fd.nf,
            grid.nz
        );
        let n = grid.npoints();
        let mut b00 = CooBuilder::new(n, n);
        let mut b01 = CooBuilder::new(n, n);
        let est = n * (6 * params.fd.nf + 1);
        b00.reserve(est);

        // --- Kinetic energy: -1/2 ∇² with the high-order stencil. ---
        for axis in 0..3usize {
            let h = [grid.hx, grid.hy, grid.hz][axis];
            let stencil = cbs_grid::laplacian_stencil_1d(params.fd.nf, h);
            for (i, j, k, row) in grid.iter_points() {
                for &(off, w) in &stencil {
                    let weight = Complex64::real(KINETIC_PREFACTOR * w);
                    match axis {
                        0 => {
                            let ii = grid.wrap_x(i as isize + off);
                            b00.push(row, grid.index(ii, j, k), weight);
                        }
                        1 => {
                            let jj = grid.wrap_y(j as isize + off);
                            b00.push(row, grid.index(i, jj, k), weight);
                        }
                        _ => {
                            let (shift, kk) = grid.neighbor_z(k, off);
                            let col = grid.index(i, j, kk);
                            match shift {
                                CellShift::Same => b00.push(row, col, weight),
                                CellShift::Next => b01.push(row, col, weight),
                                // Previous-cell legs belong to H₁₀ = H₀₁†
                                // and are not stored separately.
                                CellShift::Previous => {}
                            }
                        }
                    }
                }
            }
        }

        // --- Local pseudopotential: diagonal of H₀₀. ---
        let vloc = local_potential_on_grid(&grid, &structure.atoms);
        for (idx, &v) in vloc.iter().enumerate() {
            if v != 0.0 {
                b00.push(idx, idx, Complex64::real(v));
            }
        }

        // --- Non-local projectors (separable Kleinman-Bylander form). ---
        let mut vnl00 = LowRankOp::new(n, n);
        let mut vnl01 = LowRankOp::new(n, n);
        if params.include_nonlocal {
            let lz = grid.lz();
            for atom in &structure.atoms {
                let pseudo = atom.element.pseudo();
                assert!(
                    pseudo.projector_cutoff < lz,
                    "projector cutoff {} of {} must be smaller than the period {} \
                     (otherwise the Hamiltonian couples beyond nearest-neighbour cells)",
                    pseudo.projector_cutoff,
                    atom.element.symbol(),
                    lz
                );
                for ch in &pseudo.channels {
                    for m in 0..channel_multiplicity(ch) {
                        // Projector of the atom and of its images in the
                        // previous / next cell, evaluated on the home window.
                        let p_m1 = projector_on_grid(&grid, atom, ch, m, -lz);
                        let p_0 = projector_on_grid(&grid, atom, ch, m, 0.0);
                        let p_p1 = projector_on_grid(&grid, atom, ch, m, lz);
                        let e = Complex64::real(ch.energy);
                        // H00 gets |P_s⟩⟨P_s| for every image that touches the cell.
                        for p in [&p_m1, &p_0, &p_p1] {
                            if !p.is_empty() {
                                vnl00.push((*p).clone(), (*p).clone(), e);
                            }
                        }
                        // H01 gets |P_s⟩⟨P_{s-1}| for s = 0 (atom spilling up)
                        // and s = +1 (next-cell image spilling down).
                        if !p_0.is_empty() && !p_m1.is_empty() {
                            vnl01.push(p_0.clone(), p_m1.clone(), e);
                        }
                        if !p_p1.is_empty() && !p_0.is_empty() {
                            vnl01.push(p_p1.clone(), p_0.clone(), e);
                        }
                    }
                }
            }
        }

        Self {
            grid,
            fd: params.fd,
            label: structure.name.clone(),
            h00_sparse: b00.build(),
            h01_sparse: b01.build(),
            vnl00,
            vnl01,
        }
    }

    /// Dimension of the blocks (number of grid points).
    pub fn dim(&self) -> usize {
        self.grid.npoints()
    }

    /// Matrix-free view of `H₀₀`.
    pub fn h00(&self) -> BlockOp<'_> {
        BlockOp { sparse: &self.h00_sparse, lowrank: &self.vnl00, scratch_rows: self.dim() }
    }

    /// Matrix-free view of `H₀₁`.
    pub fn h01(&self) -> BlockOp<'_> {
        BlockOp { sparse: &self.h01_sparse, lowrank: &self.vnl01, scratch_rows: self.dim() }
    }

    /// Explicit CSR form of `H₀₀` (kinetic + local + projectors expanded).
    pub fn h00_csr(&self) -> CsrMatrix {
        if self.vnl00.rank() == 0 {
            self.h00_sparse.clone()
        } else {
            self.h00_sparse.add_scaled(Complex64::ONE, &self.vnl00.to_csr())
        }
    }

    /// Explicit CSR form of `H₀₁`.
    pub fn h01_csr(&self) -> CsrMatrix {
        if self.vnl01.rank() == 0 {
            self.h01_sparse.clone()
        } else {
            self.h01_sparse.add_scaled(Complex64::ONE, &self.vnl01.to_csr())
        }
    }

    /// The assembled-operator pattern of this Hamiltonian's QEP: the union
    /// sparsity of `H₀₀ ∪ H₀₁ ∪ H₀₁†` (projectors expanded into CSR) from
    /// which `P(z)` is materialized per quadrature node by numeric refill —
    /// the backend of `PrecondPolicy::Assembled` / `AssembledIlu0`.  One
    /// pattern serves every scan energy, so build it once per Hamiltonian.
    pub fn qep_pattern(&self) -> cbs_sparse::AssembledPattern {
        cbs_sparse::AssembledPattern::build(&self.h00_csr(), &self.h01_csr())
    }

    /// The factored assembled backend of this Hamiltonian's QEP: the union
    /// pattern of the **sparse-only** blocks (kinetic + local potential —
    /// no projector expansion) paired with the non-local projectors kept in
    /// factored low-rank form.  Compared to [`qep_pattern`](Self::qep_pattern)
    /// the pattern is smaller (no `nnz(ket)·nnz(bra)` fill per projector
    /// term), so the per-node refill and the ILU(0) sweeps are cheaper,
    /// while the projector tail is applied at its natural O(rank · nnz)
    /// cost.  Attach both to the problem (`with_pattern` + `with_projector`)
    /// — the pattern alone would silently drop the projectors.
    pub fn qep_factored(&self) -> (cbs_sparse::AssembledPattern, cbs_sparse::FactoredProjector) {
        (
            cbs_sparse::AssembledPattern::build(&self.h00_sparse, &self.h01_sparse),
            cbs_sparse::FactoredProjector::new(self.vnl00.clone(), self.vnl01.clone()),
        )
    }

    /// Memory footprint of the sparse representation in bytes — the quantity
    /// compared against the dense OBM storage in the paper's Figure 4(b).
    pub fn memory_bytes(&self) -> usize {
        self.h00_sparse.storage_bytes()
            + self.h01_sparse.storage_bytes()
            + self.vnl00.memory_bytes()
            + self.vnl01.memory_bytes()
    }

    /// Number of stored matrix entries across all pieces.
    pub fn nnz(&self) -> usize {
        self.h00_sparse.nnz() + self.h01_sparse.nnz()
    }

    /// Rows of `H₀₁` that contain at least one non-zero (the "upper
    /// interface" degrees of freedom), needed by the OBM baseline.
    pub fn h01_row_support(&self) -> Vec<usize> {
        let csr = self.h01_csr();
        (0..csr.nrows()).filter(|&i| csr.row_entries(i).next().is_some()).collect()
    }

    /// Columns of `H₀₁` with at least one non-zero (the "lower interface" of
    /// the next cell).
    pub fn h01_col_support(&self) -> Vec<usize> {
        let csr = self.h01_csr();
        let mut mark = vec![false; csr.ncols()];
        for i in 0..csr.nrows() {
            for (j, _) in csr.row_entries(i) {
                mark[j] = true;
            }
        }
        mark.iter().enumerate().filter(|(_, &m)| m).map(|(j, _)| j).collect()
    }

    /// Dense Bloch Hamiltonian `H(k) = H₀₀ + e^{ika} H₀₁ + e^{-ika} H₀₁†`
    /// for a real wave number `k` (1/bohr).  Only intended for the small
    /// grids used in tests and reference band structures.
    pub fn bloch_hamiltonian_dense(&self, k: f64) -> CMatrix {
        let a = self.grid.lz();
        let phase = Complex64::cis(k * a);
        let h00 = self.h00_csr().to_dense();
        let h01 = self.h01_csr().to_dense();
        let h10 = h01.adjoint();
        let mut h = h00;
        let n = self.dim();
        for i in 0..n {
            for j in 0..n {
                h[(i, j)] += phase * h01[(i, j)] + phase.conj() * h10[(i, j)];
            }
        }
        h
    }

    /// The lattice period `a` along the transport direction (bohr).
    pub fn period(&self) -> f64 {
        self.grid.lz()
    }
}

/// Suggest a grid for a structure given a target spacing (bohr): point
/// counts are rounded so the spacing is as close as possible to the target.
pub fn grid_for_structure(structure: &AtomicStructure, target_spacing: f64) -> Grid3 {
    let round_pts = |length: f64| -> usize { ((length / target_spacing).round() as usize).max(4) };
    let nx = round_pts(structure.lateral.0);
    let ny = round_pts(structure.lateral.1);
    let nz = round_pts(structure.period);
    Grid3::new(
        nx,
        ny,
        nz,
        structure.lateral.0 / nx as f64,
        structure.lateral.1 / ny as f64,
        structure.period / nz as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::{Atom, Element};
    use crate::structures::bulk_al_100;
    use cbs_sparse::adjoint_defect;
    use rand::SeedableRng;

    fn tiny_structure() -> AtomicStructure {
        AtomicStructure {
            name: "tiny".into(),
            atoms: vec![
                Atom::new(Element::C, [1.5, 1.5, 1.0]),
                Atom::new(Element::C, [1.5, 1.5, 2.6]),
            ],
            lateral: (3.0, 3.0),
            period: 3.6,
        }
    }

    fn tiny_hamiltonian(nonlocal: bool) -> BlockHamiltonian {
        let s = tiny_structure();
        let grid = Grid3::new(6, 6, 8, 0.5, 0.5, 0.45);
        BlockHamiltonian::build(
            grid,
            &s,
            HamiltonianParams { fd: FdOrder::new(2), include_nonlocal: nonlocal },
        )
    }

    #[test]
    fn h00_is_hermitian() {
        let h = tiny_hamiltonian(true);
        let d = h.h00_csr();
        assert!(d.hermiticity_defect() < 1e-12, "defect {}", d.hermiticity_defect());
    }

    #[test]
    fn blocks_satisfy_adjoint_identity() {
        let h = tiny_hamiltonian(true);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(101);
        assert!(adjoint_defect(&h.h00(), 5, &mut rng) < 1e-12);
        assert!(adjoint_defect(&h.h01(), 5, &mut rng) < 1e-12);
    }

    #[test]
    fn previous_cell_coupling_equals_h01_adjoint() {
        // Rebuild the H10 block explicitly from the stencil and compare with
        // the adjoint of the stored H01 (kinetic-only Hamiltonian).
        let s = tiny_structure();
        let grid = Grid3::new(5, 5, 7, 0.55, 0.55, 0.5);
        let fd = FdOrder::new(3);
        let h =
            BlockHamiltonian::build(grid, &s, HamiltonianParams { fd, include_nonlocal: false });
        let n = grid.npoints();
        let mut b10 = CooBuilder::new(n, n);
        let stencil = cbs_grid::laplacian_stencil_1d(fd.nf, grid.hz);
        for (i, j, k, row) in grid.iter_points() {
            for &(off, w) in &stencil {
                let (shift, kk) = grid.neighbor_z(k, off);
                if shift == CellShift::Previous {
                    b10.push(row, grid.index(i, j, kk), Complex64::real(KINETIC_PREFACTOR * w));
                }
            }
        }
        let h10 = b10.build();
        let defect = h10.add_scaled(-Complex64::ONE, &h.h01_csr().adjoint());
        assert!(defect.fro_norm() < 1e-12, "H10 != H01† (defect {})", defect.fro_norm());
    }

    #[test]
    fn matrix_free_matches_csr() {
        let h = tiny_hamiltonian(true);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(102);
        let x = cbs_linalg::CVector::random(h.dim(), &mut rng);
        let y_op = h.h00().apply_vec(&x);
        let y_csr = h.h00_csr().matvec(&x);
        assert!((&y_op - &y_csr).norm() < 1e-11);
        let z_op = h.h01().apply_vec(&x);
        let z_csr = h.h01_csr().matvec(&x);
        assert!((&z_op - &z_csr).norm() < 1e-11);
    }

    #[test]
    fn h01_couples_only_boundary_planes() {
        let h = tiny_hamiltonian(false);
        let nf = h.fd.nf;
        let grid = h.grid;
        for row in h.h01_row_support() {
            let (_, _, k) = grid.coords(row);
            assert!(k >= grid.nz - nf, "row {row} at plane {k} should not couple to the next cell");
        }
        for col in h.h01_col_support() {
            let (_, _, k) = grid.coords(col);
            assert!(
                k < nf,
                "column {col} at plane {k} should not be reachable from the previous cell"
            );
        }
    }

    #[test]
    fn bloch_hamiltonian_is_hermitian_for_real_k() {
        let h = tiny_hamiltonian(true);
        for &k in &[0.0, 0.3, std::f64::consts::PI / h.period()] {
            let hk = h.bloch_hamiltonian_dense(k);
            assert!(hk.hermiticity_defect() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn kinetic_energy_is_positive_definite_without_potential() {
        // With no atoms the Hamiltonian is the pure kinetic operator, whose
        // Bloch matrix at k=0 must be positive semi-definite.
        let empty = AtomicStructure {
            name: "empty".into(),
            atoms: vec![],
            lateral: (3.0, 3.0),
            period: 3.0,
        };
        let grid = Grid3::isotropic(5, 5, 6, 0.55);
        let h = BlockHamiltonian::build(grid, &empty, HamiltonianParams::default());
        let hk = h.bloch_hamiltonian_dense(0.0);
        let evals = cbs_linalg::eigenvalues(&hk).unwrap();
        for e in evals {
            assert!(e.re > -1e-9, "kinetic eigenvalue {e:?} should be non-negative");
            assert!(e.im.abs() < 1e-9);
        }
    }

    #[test]
    fn al_bulk_hamiltonian_assembles_with_expected_sparsity() {
        let s = bulk_al_100(1);
        let grid = grid_for_structure(&s, 0.9);
        let h = BlockHamiltonian::build(grid, &s, HamiltonianParams::default());
        let n = h.dim();
        // Kinetic stencil gives at most 3 * 2*nf + 1 entries per row in H00.
        let max_per_row = 3 * 2 * h.fd.nf + 1;
        assert!(h.h00_sparse.nnz() <= n * max_per_row);
        // At least the diagonal.
        assert!(h.h00_sparse.nnz() >= n);
        // Memory should be far below the dense storage.
        let dense_bytes = n * n * std::mem::size_of::<Complex64>();
        assert!(h.memory_bytes() * 10 < dense_bytes);
    }

    /// Strong consistency check of the block decomposition: a supercell of
    /// two unit cells must reproduce the single-cell blocks exactly,
    ///   H00_super = [[H00, H01], [H01†, H00]],   H01_super = [[0, 0], [H01, 0]].
    /// This exercises the kinetic z-splitting, the local-potential images and
    /// the straddling non-local projector terms all at once.
    #[test]
    fn doubled_supercell_reproduces_block_structure() {
        let s = tiny_structure();
        let grid = Grid3::new(5, 5, 8, 0.6, 0.6, 0.45);
        let params = HamiltonianParams { fd: FdOrder::new(2), include_nonlocal: true };
        let single = BlockHamiltonian::build(grid, &s, params);

        let s2 = crate::structures::supercell_z(&s, 2);
        let grid2 = Grid3::new(5, 5, 16, 0.6, 0.6, 0.45);
        let double = BlockHamiltonian::build(grid2, &s2, params);

        let n = single.dim();
        let h00 = single.h00_csr().to_dense();
        let h01 = single.h01_csr().to_dense();
        let h10 = h01.adjoint();
        let d00 = double.h00_csr().to_dense();
        let d01 = double.h01_csr().to_dense();

        let scale = h00.fro_norm();
        // Diagonal blocks of the supercell H00.
        assert!((&d00.block(0, 0, n, n) - &h00).fro_norm() < 1e-10 * scale);
        assert!((&d00.block(n, n, n, n) - &h00).fro_norm() < 1e-10 * scale);
        // Off-diagonal (internal boundary) blocks.
        assert!((&d00.block(0, n, n, n) - &h01).fro_norm() < 1e-10 * scale);
        assert!((&d00.block(n, 0, n, n) - &h10).fro_norm() < 1e-10 * scale);
        // Supercell coupling block: only its lower-left corner is populated.
        assert!((&d01.block(n, 0, n, n) - &h01).fro_norm() < 1e-10 * scale);
        assert!(d01.block(0, 0, n, n).fro_norm() < 1e-12 * scale);
        assert!(d01.block(0, n, n, n).fro_norm() < 1e-12 * scale);
        assert!(d01.block(n, n, n, n).fro_norm() < 1e-12 * scale);
    }

    #[test]
    fn grid_for_structure_matches_extents() {
        let s = bulk_al_100(1);
        let g = grid_for_structure(&s, 0.4);
        assert!((g.lx() - s.lateral.0).abs() < 1e-9);
        assert!((g.lz() - s.period).abs() < 1e-9);
        assert!(g.hx <= 0.5 && g.hx >= 0.3);
    }
}
