//! Generators for the atomic structures used in the paper's experiments:
//! bulk Al(100), armchair and zigzag carbon nanotubes, BN-doped nanotubes,
//! z-direction supercells, and nanotube bundles.
//!
//! Lengths are in bohr (1 Å = 1.8897259886 bohr).  Structures are returned
//! with a lateral cell large enough to decouple periodic images (vacuum
//! padding for isolated tubes) and with the crystalline period along `z`.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::atoms::{Atom, AtomicStructure, Element};

/// Bohr per angstrom.
pub const BOHR_PER_ANGSTROM: f64 = 1.889_725_988_6;

/// Graphene C-C bond length (angstrom).
const CC_BOND_ANGSTROM: f64 = 1.42;

/// Van der Waals gap between nanotube walls in a bundle (angstrom).
const BUNDLE_GAP_ANGSTROM: f64 = 3.35;

/// Bulk fcc aluminium oriented along (100): the conventional cubic cell with
/// 4 atoms, transport along the cube edge.  `repeat_z` stacks that cell along
/// z (the paper's serial test uses one cell, 4 atoms).
pub fn bulk_al_100(repeat_z: usize) -> AtomicStructure {
    assert!(repeat_z >= 1);
    // fcc lattice constant of Al.
    let a0 = 4.05 * BOHR_PER_ANGSTROM;
    // fcc conventional cell: corners + face centres, expressed in [0, a0).
    let frac = [[0.0, 0.0, 0.0], [0.5, 0.5, 0.0], [0.5, 0.0, 0.5], [0.0, 0.5, 0.5]];
    let mut atoms = Vec::new();
    for r in 0..repeat_z {
        for f in frac {
            atoms.push(Atom::new(
                Element::Al,
                [f[0] * a0 + 0.25 * a0, f[1] * a0 + 0.25 * a0, (f[2] + r as f64) * a0],
            ));
        }
    }
    AtomicStructure {
        name: if repeat_z == 1 { "Al(100)".to_string() } else { format!("Al(100) x{repeat_z}") },
        atoms,
        lateral: (a0, a0),
        period: a0 * repeat_z as f64,
    }
}

/// Ideal single-wall carbon nanotube `(n, m)` with `m = n` (armchair) or
/// `m = 0` (zigzag).  Chiral tubes are not needed by the paper and are
/// rejected.  `vacuum` is the lateral padding (bohr) added on each side of
/// the tube.
pub fn carbon_nanotube(n: usize, m: usize, vacuum: f64) -> AtomicStructure {
    assert!(m == n || m == 0, "only armchair (n,n) and zigzag (n,0) tubes are supported");
    assert!(n >= 2);
    let a_cc = CC_BOND_ANGSTROM * BOHR_PER_ANGSTROM;
    let a_g = a_cc * 3.0_f64.sqrt(); // graphene lattice constant
    let (radius, period, natoms) = if m == n {
        // Armchair: period a_g, 4n atoms.
        (a_g * (3.0 * (n * n) as f64).sqrt() / (2.0 * std::f64::consts::PI), a_g, 4 * n)
    } else {
        // Zigzag: period sqrt(3) a_g, 4n atoms.
        (a_g * n as f64 / (2.0 * std::f64::consts::PI), a_g * 3.0_f64.sqrt(), 4 * n)
    };

    // Build by rolling the graphene rectangle that tiles the tube surface.
    // For both achiral families the atoms can be written directly in
    // cylinder coordinates (φ, z).
    let mut sites: Vec<(f64, f64)> = Vec::with_capacity(natoms);
    if m == n {
        // Armchair (n,n): 2n dimers around the circumference, two rings per period.
        for i in 0..(2 * n) {
            let phi0 = 2.0 * std::f64::consts::PI * i as f64 / (2 * n) as f64;
            let dphi = a_cc / radius; // bond along circumference spans this angle
            if i % 2 == 0 {
                sites.push((phi0, 0.0));
                sites.push((phi0 + dphi, 0.0));
            } else {
                sites.push((phi0, period / 2.0));
                sites.push((phi0 + dphi, period / 2.0));
            }
        }
    } else {
        // Zigzag (n,0): n hexagon columns around the circumference, four
        // inequivalent z planes per period.
        let z1 = 0.0;
        let z2 = a_cc * 0.5;
        let z3 = a_cc * 1.5;
        let z4 = a_cc * 2.0;
        for i in 0..n {
            let phi0 = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            let half = std::f64::consts::PI / n as f64;
            sites.push((phi0, z1));
            sites.push((phi0 + half, z2));
            sites.push((phi0 + half, z3));
            sites.push((phi0, z4));
        }
    }

    let center = radius + vacuum;
    let lateral = 2.0 * (radius + vacuum);
    let atoms: Vec<Atom> = sites
        .into_iter()
        .map(|(phi, z)| {
            Atom::new(
                Element::C,
                [center + radius * phi.cos(), center + radius * phi.sin(), z.rem_euclid(period)],
            )
        })
        .collect();
    assert_eq!(atoms.len(), natoms);
    AtomicStructure { name: format!("({n},{m}) CNT"), atoms, lateral: (lateral, lateral), period }
}

/// Repeat a structure `times` along the transport direction, producing a
/// supercell with `times * natoms` atoms (used for the 1024- and 10240-atom
/// BN-doped tubes).
pub fn supercell_z(base: &AtomicStructure, times: usize) -> AtomicStructure {
    assert!(times >= 1);
    let mut atoms = Vec::with_capacity(base.atoms.len() * times);
    for r in 0..times {
        let shift = r as f64 * base.period;
        for a in &base.atoms {
            atoms.push(Atom::new(a.element, [a.position[0], a.position[1], a.position[2] + shift]));
        }
    }
    AtomicStructure {
        name: format!("{} x{times}", base.name),
        atoms,
        lateral: base.lateral,
        period: base.period * times as f64,
    }
}

/// Randomly substitute `n_pairs` boron-nitrogen pairs into a carbon
/// structure (the paper's BN-doped CNTs are made "by randomly inserting
/// boron and nitrogen into a pristine (8,0) CNT").
pub fn bn_dope(base: &AtomicStructure, n_pairs: usize, seed: u64) -> AtomicStructure {
    let carbon_sites: Vec<usize> = base
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, a)| a.element == Element::C)
        .map(|(i, _)| i)
        .collect();
    assert!(
        2 * n_pairs <= carbon_sites.len(),
        "not enough carbon sites to dope {n_pairs} B-N pairs"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut shuffled = carbon_sites;
    shuffled.shuffle(&mut rng);
    let mut atoms = base.atoms.clone();
    for (count, &site) in shuffled.iter().take(2 * n_pairs).enumerate() {
        atoms[site].element = if count % 2 == 0 { Element::B } else { Element::N };
    }
    AtomicStructure {
        name: format!("BN-doped {}", base.name),
        atoms,
        lateral: base.lateral,
        period: base.period,
    }
}

/// A bundle of seven parallel tubes (one central tube surrounded by six) in
/// a hexagonal arrangement, isolated by lateral vacuum — the "7 bundle" of
/// the paper's application section.
pub fn bundle7(n: usize, m: usize, vacuum: f64) -> AtomicStructure {
    let single = carbon_nanotube(n, m, 0.0);
    let radius = single.lateral.0 / 2.0;
    let spacing = 2.0 * radius + BUNDLE_GAP_ANGSTROM * BOHR_PER_ANGSTROM;
    // Hexagonal positions of the 7 tube axes, centred at the origin.
    let mut centers = vec![[0.0_f64, 0.0_f64]];
    for i in 0..6 {
        let ang = std::f64::consts::PI / 3.0 * i as f64;
        centers.push([spacing * ang.cos(), spacing * ang.sin()]);
    }
    let min_x = centers.iter().map(|c| c[0]).fold(f64::INFINITY, f64::min) - radius - vacuum;
    let max_x = centers.iter().map(|c| c[0]).fold(f64::NEG_INFINITY, f64::max) + radius + vacuum;
    let min_y = centers.iter().map(|c| c[1]).fold(f64::INFINITY, f64::min) - radius - vacuum;
    let max_y = centers.iter().map(|c| c[1]).fold(f64::NEG_INFINITY, f64::max) + radius + vacuum;

    let mut atoms = Vec::with_capacity(7 * single.atoms.len());
    for c in &centers {
        for a in &single.atoms {
            atoms.push(Atom::new(
                a.element,
                [
                    a.position[0] - radius + c[0] - min_x,
                    a.position[1] - radius + c[1] - min_y,
                    a.position[2],
                ],
            ));
        }
    }
    AtomicStructure {
        name: format!("({n},{m}) CNT 7-bundle"),
        atoms,
        lateral: (max_x - min_x, max_y - min_y),
        period: single.period,
    }
}

/// A crystalline bundle: tubes on a two-dimensional hexagonal lattice with a
/// two-tube rectangular unit cell (64 atoms for the (8,0) tube, matching the
/// paper's "crystalline bundle").
pub fn crystalline_bundle(n: usize, m: usize) -> AtomicStructure {
    let single = carbon_nanotube(n, m, 0.0);
    let radius = single.lateral.0 / 2.0;
    let spacing = 2.0 * radius + BUNDLE_GAP_ANGSTROM * BOHR_PER_ANGSTROM;
    // Rectangular cell of the 2-D hexagonal lattice: (spacing, sqrt(3)*spacing)
    // containing two tubes, one at the corner and one at the centre.
    let lx = spacing;
    let ly = spacing * 3.0_f64.sqrt();
    let centers = [[0.25 * lx, 0.25 * ly], [0.75 * lx, 0.75 * ly]];
    let mut atoms = Vec::with_capacity(2 * single.atoms.len());
    for c in centers {
        for a in &single.atoms {
            let mut x = a.position[0] - radius + c[0];
            let mut y = a.position[1] - radius + c[1];
            x = x.rem_euclid(lx);
            y = y.rem_euclid(ly);
            atoms.push(Atom::new(a.element, [x, y, a.position[2]]));
        }
    }
    AtomicStructure {
        name: format!("({n},{m}) CNT crystalline bundle"),
        atoms,
        lateral: (lx, ly),
        period: single.period,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn al_cell_has_four_atoms() {
        let s = bulk_al_100(1);
        assert_eq!(s.natoms(), 4);
        assert!(s.validate().is_ok());
        assert!((s.period - 4.05 * BOHR_PER_ANGSTROM).abs() < 1e-12);
        let s3 = bulk_al_100(3);
        assert_eq!(s3.natoms(), 12);
        assert!(s3.validate().is_ok());
    }

    #[test]
    fn armchair_66_has_24_atoms() {
        let s = carbon_nanotube(6, 6, 8.0);
        assert_eq!(s.natoms(), 24);
        assert!(s.validate().is_ok(), "{:?}", s.validate());
        // Armchair period is the graphene lattice constant (~2.46 A).
        assert!((s.period / BOHR_PER_ANGSTROM - 2.46).abs() < 0.02);
    }

    #[test]
    fn zigzag_80_has_32_atoms() {
        let s = carbon_nanotube(8, 0, 8.0);
        assert_eq!(s.natoms(), 32);
        assert!(s.validate().is_ok(), "{:?}", s.validate());
        // Zigzag period ~4.26 A.
        assert!((s.period / BOHR_PER_ANGSTROM - 4.26).abs() < 0.03);
    }

    #[test]
    fn tube_atoms_lie_on_a_cylinder() {
        let s = carbon_nanotube(8, 0, 6.0);
        let cx = s.lateral.0 / 2.0;
        let cy = s.lateral.1 / 2.0;
        let radii: Vec<f64> = s
            .atoms
            .iter()
            .map(|a| ((a.position[0] - cx).powi(2) + (a.position[1] - cy).powi(2)).sqrt())
            .collect();
        let rmin = radii.iter().copied().fold(f64::INFINITY, f64::min);
        let rmax = radii.iter().copied().fold(0.0, f64::max);
        assert!((rmax - rmin) < 1e-9, "radius spread {}", rmax - rmin);
    }

    #[test]
    fn nearest_neighbour_distance_is_a_bond_length() {
        let s = carbon_nanotube(6, 6, 6.0);
        let a_cc = CC_BOND_ANGSTROM * BOHR_PER_ANGSTROM;
        // For each atom find the nearest other atom (with z periodicity).
        for (i, a) in s.atoms.iter().enumerate() {
            let mut dmin = f64::INFINITY;
            for (j, b) in s.atoms.iter().enumerate() {
                if i == j {
                    continue;
                }
                for shift in [-1.0, 0.0, 1.0] {
                    let dz = b.position[2] + shift * s.period - a.position[2];
                    let dx = b.position[0] - a.position[0];
                    let dy = b.position[1] - a.position[1];
                    dmin = dmin.min((dx * dx + dy * dy + dz * dz).sqrt());
                }
            }
            // Curvature shortens chords slightly; allow 10%.
            assert!((dmin - a_cc).abs() / a_cc < 0.1, "atom {i}: nn distance {dmin} vs {a_cc}");
        }
    }

    #[test]
    fn supercell_scales_atom_count_and_period() {
        let base = carbon_nanotube(8, 0, 8.0);
        let sc = supercell_z(&base, 32);
        assert_eq!(sc.natoms(), 1024);
        assert!((sc.period - 32.0 * base.period).abs() < 1e-9);
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn bn_doping_preserves_atom_count_and_balances_species() {
        let base = supercell_z(&carbon_nanotube(8, 0, 8.0), 4);
        let doped = bn_dope(&base, 16, 42);
        assert_eq!(doped.natoms(), base.natoms());
        let comp = doped.composition();
        let count = |e: Element| comp.iter().find(|(el, _)| *el == e).map_or(0, |(_, c)| *c);
        assert_eq!(count(Element::B), 16);
        assert_eq!(count(Element::N), 16);
        assert_eq!(count(Element::C), base.natoms() - 32);
        // Deterministic for a fixed seed.
        let doped2 = bn_dope(&base, 16, 42);
        assert_eq!(doped, doped2);
        // Different seed gives a different arrangement.
        let doped3 = bn_dope(&base, 16, 43);
        assert_ne!(doped, doped3);
    }

    #[test]
    fn bundle_counts_match_paper() {
        let b7 = bundle7(8, 0, 8.0);
        assert_eq!(b7.natoms(), 7 * 32); // 224 atoms of (8,0) x 7 tubes
        assert!(b7.validate().is_ok(), "{:?}", b7.validate());
        let cb = crystalline_bundle(8, 0);
        assert_eq!(cb.natoms(), 64);
        assert!(cb.validate().is_ok(), "{:?}", cb.validate());
    }
}
