//! # cbs-dft
//!
//! Real-space pseudopotential Kohn-Sham substrate — the stand-in for the
//! RSPACE DFT code that produced the paper's Hamiltonians (see `DESIGN.md`
//! for the substitution rationale).
//!
//! The crate provides
//!
//! * [`Element`] / [`Atom`] / [`AtomicStructure`] — atoms and unit cells,
//! * structure generators for the paper's systems (bulk Al(100), (6,6) and
//!   (8,0) carbon nanotubes, BN-doped supercells, nanotube bundles),
//! * the empirical pseudopotential (Gaussian local part + separable
//!   Kleinman-Bylander s/p projectors),
//! * [`BlockHamiltonian`] — assembly of the periodic blocks `H₀₀`, `H₀₁`
//!   both matrix-free and in CSR form,
//! * conventional band structures and Fermi-level estimation
//!   ([`band_structure`], [`fermi_energy`]) used as the reference in the
//!   paper's Figure 6.

#![warn(missing_docs)]

pub mod atoms;
pub mod bands;
pub mod hamiltonian;
pub mod pseudopotential;
pub mod structures;

pub use atoms::{Atom, AtomicStructure, Element, KbChannel, PseudoParams};
pub use bands::{band_structure, edges_bracket, fermi_energy, BandStructure};
pub use hamiltonian::{grid_for_structure, BlockHamiltonian, BlockOp, HamiltonianParams};
pub use structures::{
    bn_dope, bulk_al_100, bundle7, carbon_nanotube, crystalline_bundle, supercell_z,
    BOHR_PER_ANGSTROM,
};
