//! Hermitian Lanczos with full reorthogonalization, used to obtain the
//! lowest eigenvalues of the Bloch Hamiltonian `H(k)` matrix-free.  This
//! provides the conventional band structure reference (the red curves of the
//! paper's Figure 6) for grids that are too large to diagonalize densely.

use cbs_linalg::{eigen, CMatrix, CVector, Complex64};
use cbs_sparse::LinearOperator;

/// Options for the Lanczos eigensolver.
#[derive(Clone, Copy, Debug)]
pub struct LanczosOptions {
    /// Number of lowest eigenvalues requested.
    pub n_eigenvalues: usize,
    /// Maximum Krylov subspace dimension.
    pub max_subspace: usize,
    /// Convergence tolerance on the residual estimate.
    pub tolerance: f64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        Self { n_eigenvalues: 6, max_subspace: 200, tolerance: 1e-9 }
    }
}

/// Result of a Lanczos run.
#[derive(Clone, Debug)]
pub struct LanczosResult {
    /// The converged (lowest) eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Ritz vectors corresponding to `eigenvalues`.
    pub eigenvectors: Vec<CVector>,
    /// Dimension of the Krylov space actually built.
    pub subspace_dim: usize,
    /// Number of operator applications.
    pub matvecs: usize,
}

/// Compute the lowest eigenvalues of a Hermitian operator by Lanczos with
/// full reorthogonalization.
///
/// The operator is *assumed* Hermitian; the routine does not verify it (the
/// Hamiltonian tests in `cbs-dft` do).
pub fn lanczos_lowest<A: LinearOperator + ?Sized, R: rand::Rng + ?Sized>(
    op: &A,
    opts: &LanczosOptions,
    rng: &mut R,
) -> LanczosResult {
    let n = op.dim();
    let m_max = opts.max_subspace.min(n);
    let want = opts.n_eigenvalues.min(n);

    // Krylov basis (full reorthogonalization keeps it numerically orthonormal).
    let mut basis: Vec<CVector> = Vec::with_capacity(m_max);
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let (mut v, _) = CVector::random(n, rng).normalized();
    basis.push(v.clone());
    let mut w = CVector::zeros(n);
    let mut matvecs = 0usize;
    let mut converged: Option<(Vec<f64>, CMatrix)> = None;

    for j in 0..m_max {
        op.apply(v.as_slice(), w.as_mut_slice());
        matvecs += 1;
        // alpha_j = <v_j, A v_j> (real for Hermitian A).
        let alpha = basis[j].dot(&w).re;
        alphas.push(alpha);
        // w <- w - alpha v_j - beta_{j-1} v_{j-1}, then full reorthogonalize.
        w.axpy(Complex64::real(-alpha), &basis[j]);
        if j > 0 {
            w.axpy(Complex64::real(-betas[j - 1]), &basis[j - 1]);
        }
        for vb in &basis {
            let c = vb.dot(&w);
            w.axpy(-c, vb);
        }
        let beta = w.norm();

        // Periodically (and at the end) check convergence of the lowest
        // `want` Ritz values via the last-row residual bound |beta * s_mj|.
        let done = j + 1 == m_max || beta < 1e-14;
        if done || (j + 1 >= want + 2 && (j + 1) % 10 == 0) {
            let (ritz_vals, ritz_vecs) = tridiag_eigen(&alphas, &betas);
            let all_tight = (0..want.min(ritz_vals.len())).all(|i| {
                let last = ritz_vecs[(alphas.len() - 1, i)].abs();
                beta * last <= opts.tolerance
            });
            if all_tight || done {
                converged = Some((ritz_vals, ritz_vecs));
                if all_tight {
                    break;
                }
            }
        }
        if beta < 1e-14 {
            // Invariant subspace found.
            if converged.is_none() {
                converged = Some(tridiag_eigen(&alphas, &betas));
            }
            break;
        }
        betas.push(beta);
        v = w.clone();
        v.scale(Complex64::real(1.0 / beta));
        basis.push(v.clone());
    }

    let (ritz_vals, ritz_vecs) = converged.unwrap_or_else(|| tridiag_eigen(&alphas, &betas));
    let m = alphas.len();
    let keep = want.min(ritz_vals.len());
    let mut eigenvalues = Vec::with_capacity(keep);
    let mut eigenvectors = Vec::with_capacity(keep);
    for i in 0..keep {
        eigenvalues.push(ritz_vals[i]);
        let mut x = CVector::zeros(n);
        for (j, vb) in basis.iter().enumerate().take(m) {
            let c = ritz_vecs[(j, i)];
            if c.abs() > 0.0 {
                x.axpy(c, vb);
            }
        }
        let (x, _) = x.normalized();
        eigenvectors.push(x);
    }
    LanczosResult { eigenvalues, eigenvectors, subspace_dim: m, matvecs }
}

/// Eigendecomposition of the real symmetric tridiagonal matrix defined by
/// `alphas` (diagonal) and `betas` (sub/super-diagonal), returning the
/// eigenvalues in ascending order and the corresponding eigenvector matrix.
fn tridiag_eigen(alphas: &[f64], betas: &[f64]) -> (Vec<f64>, CMatrix) {
    let m = alphas.len();
    let mut t = CMatrix::zeros(m, m);
    for i in 0..m {
        t[(i, i)] = Complex64::real(alphas[i]);
        if i + 1 < m && i < betas.len() {
            t[(i, i + 1)] = Complex64::real(betas[i]);
            t[(i + 1, i)] = Complex64::real(betas[i]);
        }
    }
    let e = eigen(&t).expect("tridiagonal eigendecomposition failed");
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&a, &b| e.values[a].re.partial_cmp(&e.values[b].re).unwrap());
    let vals: Vec<f64> = order.iter().map(|&i| e.values[i].re).collect();
    let mut vecs = CMatrix::zeros(m, m);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..m {
            vecs[(r, new_col)] = e.vectors[(r, old_col)];
        }
    }
    (vals, vecs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_linalg::c64;
    use cbs_sparse::{CooBuilder, DenseOp};
    use rand::SeedableRng;

    #[test]
    fn finds_lowest_eigenvalues_of_diagonal_operator() {
        let n = 50;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, c64(i as f64, 0.0));
        }
        let m = b.build();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(301);
        let res = lanczos_lowest(
            &m,
            &LanczosOptions { n_eigenvalues: 4, max_subspace: 50, tolerance: 1e-10 },
            &mut rng,
        );
        for (i, &ev) in res.eigenvalues.iter().enumerate() {
            assert!((ev - i as f64).abs() < 1e-7, "eigenvalue {i}: {ev}");
        }
    }

    #[test]
    fn matches_dense_hermitian_eigenvalues() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(302);
        let b = CMatrix::random(40, 40, &mut rng);
        let a = &b + &b.adjoint();
        let dense_vals = {
            let mut v: Vec<f64> =
                cbs_linalg::eigenvalues(&a).unwrap().into_iter().map(|z| z.re).collect();
            v.sort_by(|x, y| x.partial_cmp(y).unwrap());
            v
        };
        let op = DenseOp::new(a.clone());
        let res = lanczos_lowest(
            &op,
            &LanczosOptions { n_eigenvalues: 5, max_subspace: 40, tolerance: 1e-10 },
            &mut rng,
        );
        for (i, (got, want)) in res.eigenvalues.iter().zip(&dense_vals).take(5).enumerate() {
            assert!((got - want).abs() < 1e-6, "eigenvalue {i}: {} vs {}", got, want);
        }
        // Ritz pairs satisfy the eigen equation.
        for i in 0..res.eigenvalues.len() {
            let x = &res.eigenvectors[i];
            let ax = op.apply_vec(x);
            let r = (&ax - &(x * Complex64::real(res.eigenvalues[i]))).norm();
            assert!(r < 1e-6 * a.fro_norm(), "residual {r}");
        }
    }

    #[test]
    fn early_termination_on_small_operator() {
        // Operator of rank 3 embedded in dimension 20: Lanczos must stop at a
        // small subspace without panicking.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(303);
        let u = CMatrix::random(20, 3, &mut rng);
        let a = u.matmul(&u.adjoint());
        let op = DenseOp::new(a);
        let res = lanczos_lowest(
            &op,
            &LanczosOptions { n_eigenvalues: 3, max_subspace: 20, tolerance: 1e-9 },
            &mut rng,
        );
        assert_eq!(res.eigenvalues.len(), 3);
        // Lowest eigenvalues of a PSD rank-3 operator in dim 20 are zero.
        assert!(res.eigenvalues[0].abs() < 1e-8);
    }
}
