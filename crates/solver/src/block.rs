//! Batched dual BiCG: all right-hand sides of one shifted system advanced
//! in lockstep through **fused block matvecs**.
//!
//! The Sakurai-Sugiura contour solves are inherently blocked: every
//! quadrature node `z_j` owns `N_rh` independent systems `P(z_j) x = v_r`
//! that share the operator.  Solving them one at a time re-reads the sparse
//! operator storage `N_rh` times per iteration set; [`bicg_dual_block`]
//! instead keeps one BiCG recurrence per column (its own `α`, `β`, `ρ`)
//! and performs the primal and adjoint matvecs of all still-active columns
//! through a single [`LinearOperator::apply_block`] traversal.
//!
//! Two contracts make the block path freely substitutable for the
//! per-column one:
//!
//! * **Bitwise column parity.** Because `apply_block` is bit-identical to
//!   column-by-column `apply` and each column carries an independent
//!   recurrence, every column's solution, residual history, stop reason and
//!   matvec count are **bit-identical** to a standalone
//!   [`bicg_dual_seeded`](crate::bicg_dual_seeded) call on that column —
//!   deflation included (a converged column freezes at exactly the state
//!   the standalone solve would have returned).
//! * **Slot-stable deflation.** A converged (or broken-down, or externally
//!   stopped) column stops contributing work — it leaves the fused matvec —
//!   but keeps its slot in the result, so downstream reductions that walk
//!   the columns in order are independent of *when* each column converged.
//!
//! The real saving is operator traffic: the result reports `traversals`,
//! the number of operator storage walks performed (each block apply counts
//! one), which drops from `Σ_c matvecs_c` to roughly `2 · max_c iters_c`.

use cbs_linalg::{CVector, Complex64};
use cbs_sparse::{LinearOperator, Preconditioner};

use crate::bicg::BicgResult;
use crate::history::{ConvergenceHistory, SolverOptions, StopReason};

/// Result of a batched dual BiCG solve.
#[derive(Clone, Debug)]
pub struct BlockBicgResult {
    /// Per-column results in input order, each bit-identical to a
    /// standalone [`bicg_dual_seeded`](crate::bicg_dual_seeded) call on
    /// that column (matvec counts included).
    pub columns: Vec<BicgResult>,
    /// Number of operator-storage traversals performed: every fused block
    /// apply (primal or adjoint, any number of active columns) counts the
    /// operator's [`traversal_weight`](LinearOperator::traversal_weight) —
    /// 1 for single-store operators, 3 for the matrix-free QEP operator
    /// that walks `H₀₀`/`H₀₁`/`H₀₁†`.  The per-column path would have
    /// performed `Σ_c matvecs_c` weighted applies.
    pub traversals: usize,
}

impl BlockBicgResult {
    /// `true` when every column's primal and dual systems converged.
    pub fn all_converged(&self) -> bool {
        self.columns.iter().all(BicgResult::both_converged)
    }

    /// Total matvec-equivalents over the columns (what the per-column path
    /// would have reported).
    pub fn total_matvecs(&self) -> usize {
        self.columns.iter().map(|c| c.history.matvecs).sum()
    }
}

/// Per-column recurrence state.
struct Column {
    x: CVector,
    xt: CVector,
    r: CVector,
    rt: CVector,
    p: CVector,
    pt: CVector,
    q: CVector,
    qt: CVector,
    b_norm: f64,
    bt_norm: f64,
    res: f64,
    res_dual: f64,
    history: Vec<f64>,
    dual_history: Vec<f64>,
    rho: Complex64,
    matvecs: usize,
    stop: StopReason,
    active: bool,
}

/// Solve `A x_c = b_c` and `A† x̃_c = b̃_c` for all columns `c` in lockstep
/// with fused block matvecs.
///
/// `seeds`, when present, supplies an optional warm-start pair `(x₀, x̃₀)`
/// per column (same semantics as [`bicg_dual_seeded`](crate::bicg_dual_seeded);
/// `None` entries run cold, and the two seed-residual applications are
/// fused over the seeded columns).  `external_stop` is consulted once per
/// lockstep iteration for every still-active column, matching the
/// per-column solver's behaviour because all columns share the iteration
/// counter.
pub fn bicg_dual_block<A: LinearOperator + ?Sized>(
    a: &A,
    b: &[CVector],
    b_dual: &[CVector],
    seeds: Option<&[Option<(&CVector, &CVector)>]>,
    opts: &SolverOptions,
    external_stop: Option<&(dyn Fn(usize) -> bool + Sync)>,
) -> BlockBicgResult {
    let n = a.dim();
    let nvecs = b.len();
    assert_eq!(b_dual.len(), nvecs, "dual rhs count mismatch");
    if let Some(s) = seeds {
        assert_eq!(s.len(), nvecs, "seed count mismatch");
    }
    let weight = a.traversal_weight();
    let mut traversals = 0usize;

    // --- Initial state, with the seed residuals r₀ = b - A x₀ computed
    // through two fused block applies over the seeded columns. ------------
    let seeded: Vec<usize> =
        (0..nvecs).filter(|&c| seeds.is_some_and(|s| s[c].is_some())).collect();
    let mut seed_r: Vec<CVector> = Vec::new();
    let mut seed_rt: Vec<CVector> = Vec::new();
    if !seeded.is_empty() {
        let s = seeds.expect("seeded columns imply a seed table");
        let mut x_slab = vec![Complex64::ZERO; n * seeded.len()];
        let mut y_slab = vec![Complex64::ZERO; n * seeded.len()];
        for (slot, &c) in seeded.iter().enumerate() {
            let (x0, _) = s[c].expect("listed as seeded");
            assert_eq!(x0.len(), n, "primal seed length mismatch");
            x_slab[slot * n..(slot + 1) * n].copy_from_slice(x0.as_slice());
        }
        a.apply_block(&x_slab, &mut y_slab, seeded.len());
        traversals += weight;
        seed_r = seeded
            .iter()
            .enumerate()
            .map(|(slot, &c)| {
                let mut r = CVector::zeros(n);
                for i in 0..n {
                    r[i] = b[c][i] - y_slab[slot * n + i];
                }
                r
            })
            .collect();
        for (slot, &c) in seeded.iter().enumerate() {
            let (_, xt0) = s[c].expect("listed as seeded");
            assert_eq!(xt0.len(), n, "dual seed length mismatch");
            x_slab[slot * n..(slot + 1) * n].copy_from_slice(xt0.as_slice());
        }
        a.apply_adjoint_block(&x_slab, &mut y_slab, seeded.len());
        traversals += weight;
        seed_rt = seeded
            .iter()
            .enumerate()
            .map(|(slot, &c)| {
                let mut rt = CVector::zeros(n);
                for i in 0..n {
                    rt[i] = b_dual[c][i] - y_slab[slot * n + i];
                }
                rt
            })
            .collect();
    }

    let mut cols: Vec<Column> = (0..nvecs)
        .map(|c| {
            assert_eq!(b[c].len(), n, "rhs length mismatch");
            assert_eq!(b_dual[c].len(), n, "dual rhs length mismatch");
            let seed = seeds.and_then(|s| s[c]);
            let (x, xt, r, rt, matvecs) = match seed {
                None => (CVector::zeros(n), CVector::zeros(n), b[c].clone(), b_dual[c].clone(), 0),
                Some((x0, xt0)) => {
                    let slot = seeded.iter().position(|&s| s == c).expect("seeded slot");
                    (x0.clone(), xt0.clone(), seed_r[slot].clone(), seed_rt[slot].clone(), 2)
                }
            };
            let p = r.clone();
            let pt = rt.clone();
            let b_norm = b[c].norm().max(1e-300);
            let bt_norm = b_dual[c].norm().max(1e-300);
            let res = r.norm() / b_norm;
            let res_dual = rt.norm() / bt_norm;
            cbs_trace::record_iteration(Some(c), 0, res);
            let mut history = Vec::new();
            let mut dual_history = Vec::new();
            if opts.record_history {
                history.push(res);
                dual_history.push(res_dual);
            }
            let rho = rt.dot(&r);
            Column {
                x,
                xt,
                r,
                rt,
                p,
                pt,
                q: CVector::zeros(n),
                qt: CVector::zeros(n),
                b_norm,
                bt_norm,
                res,
                res_dual,
                history,
                dual_history,
                rho,
                matvecs,
                stop: StopReason::MaxIterations,
                active: true,
            }
        })
        .collect();

    // --- Lockstep iteration: per-column recurrences, fused matvecs. -------
    let mut p_slab: Vec<Complex64> = Vec::new();
    let mut q_slab: Vec<Complex64> = Vec::new();
    for iter in 0..opts.max_iterations {
        // Top-of-loop checks, in the exact order of the per-column solver:
        // convergence, external stop, ρ breakdown.  A column that trips one
        // freezes in place (deflation) but keeps its slot.
        for col in cols.iter_mut().filter(|c| c.active) {
            if col.res <= opts.tolerance && col.res_dual <= opts.tolerance {
                col.stop = StopReason::Converged;
                col.active = false;
            } else if external_stop.is_some_and(|cb| cb(iter)) {
                col.stop = StopReason::ExternalStop;
                col.active = false;
            } else if col.rho.abs() < 1e-290 {
                col.stop = StopReason::Breakdown;
                col.active = false;
            }
        }
        let active: Vec<usize> = (0..nvecs).filter(|&c| cols[c].active).collect();
        if active.is_empty() {
            break;
        }

        // Fused matvecs over the active columns only.
        let na = active.len();
        p_slab.clear();
        p_slab.resize(n * na, Complex64::ZERO);
        q_slab.clear();
        q_slab.resize(n * na, Complex64::ZERO);
        for (slot, &c) in active.iter().enumerate() {
            p_slab[slot * n..(slot + 1) * n].copy_from_slice(cols[c].p.as_slice());
        }
        a.apply_block(&p_slab, &mut q_slab, na);
        traversals += weight;
        for (slot, &c) in active.iter().enumerate() {
            cols[c].q.as_mut_slice().copy_from_slice(&q_slab[slot * n..(slot + 1) * n]);
        }
        for (slot, &c) in active.iter().enumerate() {
            p_slab[slot * n..(slot + 1) * n].copy_from_slice(cols[c].pt.as_slice());
        }
        a.apply_adjoint_block(&p_slab, &mut q_slab, na);
        traversals += weight;
        for (slot, &c) in active.iter().enumerate() {
            cols[c].qt.as_mut_slice().copy_from_slice(&q_slab[slot * n..(slot + 1) * n]);
        }

        // Per-column recurrence updates, identical to the scalar solver.
        for &c in &active {
            let col = &mut cols[c];
            col.matvecs += 2;
            let denom = col.pt.dot(&col.q);
            if denom.abs() < 1e-290 {
                col.stop = StopReason::Breakdown;
                col.active = false;
                continue;
            }
            let alpha = col.rho / denom;
            col.x.axpy(alpha, &col.p);
            col.xt.axpy(alpha.conj(), &col.pt);
            col.r.axpy(-alpha, &col.q);
            col.rt.axpy(-alpha.conj(), &col.qt);
            col.res = col.r.norm() / col.b_norm;
            col.res_dual = col.rt.norm() / col.bt_norm;
            cbs_trace::record_iteration(Some(c), iter + 1, col.res);
            if opts.record_history {
                col.history.push(col.res);
                col.dual_history.push(col.res_dual);
            }
            let rho_new = col.rt.dot(&col.r);
            let beta = rho_new / col.rho;
            col.rho = rho_new;
            for i in 0..n {
                col.p[i] = col.r[i] + beta * col.p[i];
                col.pt[i] = col.rt[i] + beta.conj() * col.pt[i];
            }
        }
    }

    // --- Epilogue, per column, mirroring the scalar solver exactly. -------
    let columns = cols
        .into_iter()
        .map(|mut col| {
            let mut stop = col.stop;
            if col.res <= opts.tolerance && col.res_dual <= opts.tolerance {
                stop = StopReason::Converged;
            }
            if !opts.record_history {
                col.history.push(col.res);
                col.dual_history.push(col.res_dual);
            }
            let primal_conv = col.res <= opts.tolerance;
            let dual_conv = col.res_dual <= opts.tolerance;
            BicgResult {
                x: col.x,
                dual_x: col.xt,
                history: ConvergenceHistory {
                    residuals: col.history,
                    stop_reason: if primal_conv { StopReason::Converged } else { stop },
                    matvecs: col.matvecs,
                },
                dual_history: ConvergenceHistory {
                    residuals: col.dual_history,
                    stop_reason: if dual_conv { StopReason::Converged } else { stop },
                    matvecs: col.matvecs,
                },
            }
        })
        .collect();
    BlockBicgResult { columns, traversals }
}

/// Per-column recurrence state of the preconditioned block solver: the
/// plain column state plus the preconditioned residuals `z = M⁻¹ r`,
/// `z̃ = M⁻† r̃`.
struct PrecondColumn {
    x: CVector,
    xt: CVector,
    r: CVector,
    rt: CVector,
    z: CVector,
    zt: CVector,
    p: CVector,
    pt: CVector,
    q: CVector,
    qt: CVector,
    b_norm: f64,
    bt_norm: f64,
    res: f64,
    res_dual: f64,
    history: Vec<f64>,
    dual_history: Vec<f64>,
    rho: Complex64,
    matvecs: usize,
    stop: StopReason,
    active: bool,
}

/// [`bicg_dual_block`] with an optional preconditioner `M ≈ A`.
///
/// With `m = None` this **delegates to [`bicg_dual_block`]** (bitwise
/// unchanged).  With a preconditioner every column runs the preconditioned
/// dual BiCG recurrence of
/// [`bicg_dual_precond_seeded`](crate::bicg_dual_precond_seeded) — per
/// column bit-identical to that standalone solver, because the fused
/// matvecs are bit-identical per column and the preconditioner applies run
/// through the blocked [`Preconditioner::solve_block`] /
/// [`Preconditioner::solve_adjoint_block`] entry points, whose contract
/// (and default) is bitwise equivalence to the per-column solves.
/// Deflation, seeding and the external stop behave exactly as in the
/// unpreconditioned block solver.
pub fn bicg_dual_block_precond<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: Option<&M>,
    b: &[CVector],
    b_dual: &[CVector],
    seeds: Option<&[Option<(&CVector, &CVector)>]>,
    opts: &SolverOptions,
    external_stop: Option<&(dyn Fn(usize) -> bool + Sync)>,
) -> BlockBicgResult {
    let Some(m) = m else {
        return bicg_dual_block(a, b, b_dual, seeds, opts, external_stop);
    };
    let n = a.dim();
    assert_eq!(m.dim(), n, "preconditioner dimension mismatch");
    let nvecs = b.len();
    assert_eq!(b_dual.len(), nvecs, "dual rhs count mismatch");
    if let Some(s) = seeds {
        assert_eq!(s.len(), nvecs, "seed count mismatch");
    }
    let weight = a.traversal_weight();
    let mut traversals = 0usize;

    // --- Seed residuals r₀ = b - A x₀ through fused block applies. --------
    let seeded: Vec<usize> =
        (0..nvecs).filter(|&c| seeds.is_some_and(|s| s[c].is_some())).collect();
    let mut seed_r: Vec<CVector> = Vec::new();
    let mut seed_rt: Vec<CVector> = Vec::new();
    if !seeded.is_empty() {
        let s = seeds.expect("seeded columns imply a seed table");
        let mut x_slab = vec![Complex64::ZERO; n * seeded.len()];
        let mut y_slab = vec![Complex64::ZERO; n * seeded.len()];
        for (slot, &c) in seeded.iter().enumerate() {
            let (x0, _) = s[c].expect("listed as seeded");
            assert_eq!(x0.len(), n, "primal seed length mismatch");
            x_slab[slot * n..(slot + 1) * n].copy_from_slice(x0.as_slice());
        }
        a.apply_block(&x_slab, &mut y_slab, seeded.len());
        traversals += weight;
        seed_r = seeded
            .iter()
            .enumerate()
            .map(|(slot, &c)| {
                let mut r = CVector::zeros(n);
                for i in 0..n {
                    r[i] = b[c][i] - y_slab[slot * n + i];
                }
                r
            })
            .collect();
        for (slot, &c) in seeded.iter().enumerate() {
            let (_, xt0) = s[c].expect("listed as seeded");
            assert_eq!(xt0.len(), n, "dual seed length mismatch");
            x_slab[slot * n..(slot + 1) * n].copy_from_slice(xt0.as_slice());
        }
        a.apply_adjoint_block(&x_slab, &mut y_slab, seeded.len());
        traversals += weight;
        seed_rt = seeded
            .iter()
            .enumerate()
            .map(|(slot, &c)| {
                let mut rt = CVector::zeros(n);
                for i in 0..n {
                    rt[i] = b_dual[c][i] - y_slab[slot * n + i];
                }
                rt
            })
            .collect();
    }

    // Initial states per column, then ONE blocked preconditioner pass over
    // all columns: `solve_block` / `solve_adjoint_block` stream the factor
    // once per level across the whole slab instead of once per column, and
    // are contractually bitwise equivalent to the per-column applies.
    let init: Vec<(CVector, CVector, CVector, CVector, usize)> = (0..nvecs)
        .map(|c| {
            assert_eq!(b[c].len(), n, "rhs length mismatch");
            assert_eq!(b_dual[c].len(), n, "dual rhs length mismatch");
            let seed = seeds.and_then(|s| s[c]);
            match seed {
                None => (CVector::zeros(n), CVector::zeros(n), b[c].clone(), b_dual[c].clone(), 0),
                Some((x0, xt0)) => {
                    let slot = seeded.iter().position(|&s| s == c).expect("seeded slot");
                    (x0.clone(), xt0.clone(), seed_r[slot].clone(), seed_rt[slot].clone(), 2)
                }
            }
        })
        .collect();
    let mut r_slab = vec![Complex64::ZERO; n * nvecs];
    let mut z_slab = vec![Complex64::ZERO; n * nvecs];
    let mut zt_slab = vec![Complex64::ZERO; n * nvecs];
    for (slot, (_, _, r, _, _)) in init.iter().enumerate() {
        r_slab[slot * n..(slot + 1) * n].copy_from_slice(r.as_slice());
    }
    m.solve_block(&r_slab, &mut z_slab, nvecs);
    for (slot, (_, _, _, rt, _)) in init.iter().enumerate() {
        r_slab[slot * n..(slot + 1) * n].copy_from_slice(rt.as_slice());
    }
    m.solve_adjoint_block(&r_slab, &mut zt_slab, nvecs);

    let mut cols: Vec<PrecondColumn> = init
        .into_iter()
        .enumerate()
        .map(|(c, (x, xt, r, rt, matvecs))| {
            let mut z = CVector::zeros(n);
            let mut zt = CVector::zeros(n);
            z.as_mut_slice().copy_from_slice(&z_slab[c * n..(c + 1) * n]);
            zt.as_mut_slice().copy_from_slice(&zt_slab[c * n..(c + 1) * n]);
            let p = z.clone();
            let pt = zt.clone();
            let b_norm = b[c].norm().max(1e-300);
            let bt_norm = b_dual[c].norm().max(1e-300);
            let res = r.norm() / b_norm;
            let res_dual = rt.norm() / bt_norm;
            cbs_trace::record_iteration(Some(c), 0, res);
            let mut history = Vec::new();
            let mut dual_history = Vec::new();
            if opts.record_history {
                history.push(res);
                dual_history.push(res_dual);
            }
            let rho = rt.dot(&z);
            PrecondColumn {
                x,
                xt,
                r,
                rt,
                z,
                zt,
                p,
                pt,
                q: CVector::zeros(n),
                qt: CVector::zeros(n),
                b_norm,
                bt_norm,
                res,
                res_dual,
                history,
                dual_history,
                rho,
                matvecs,
                stop: StopReason::MaxIterations,
                active: true,
            }
        })
        .collect();

    // --- Lockstep iteration: per-column recurrences, fused matvecs. -------
    let mut p_slab: Vec<Complex64> = Vec::new();
    let mut q_slab: Vec<Complex64> = Vec::new();
    for iter in 0..opts.max_iterations {
        for col in cols.iter_mut().filter(|c| c.active) {
            if col.res <= opts.tolerance && col.res_dual <= opts.tolerance {
                col.stop = StopReason::Converged;
                col.active = false;
            } else if external_stop.is_some_and(|cb| cb(iter)) {
                col.stop = StopReason::ExternalStop;
                col.active = false;
            } else if !(col.rho.re.is_finite() && col.rho.im.is_finite()) || col.rho.abs() < 1e-290
            {
                col.stop = StopReason::Breakdown;
                col.active = false;
            }
        }
        let active: Vec<usize> = (0..nvecs).filter(|&c| cols[c].active).collect();
        if active.is_empty() {
            break;
        }

        let na = active.len();
        p_slab.clear();
        p_slab.resize(n * na, Complex64::ZERO);
        q_slab.clear();
        q_slab.resize(n * na, Complex64::ZERO);
        for (slot, &c) in active.iter().enumerate() {
            p_slab[slot * n..(slot + 1) * n].copy_from_slice(cols[c].p.as_slice());
        }
        a.apply_block(&p_slab, &mut q_slab, na);
        traversals += weight;
        for (slot, &c) in active.iter().enumerate() {
            cols[c].q.as_mut_slice().copy_from_slice(&q_slab[slot * n..(slot + 1) * n]);
        }
        for (slot, &c) in active.iter().enumerate() {
            p_slab[slot * n..(slot + 1) * n].copy_from_slice(cols[c].pt.as_slice());
        }
        a.apply_adjoint_block(&p_slab, &mut q_slab, na);
        traversals += weight;
        for (slot, &c) in active.iter().enumerate() {
            cols[c].qt.as_mut_slice().copy_from_slice(&q_slab[slot * n..(slot + 1) * n]);
        }

        // Per-column recurrence updates, identical to the preconditioned
        // scalar solver, with the two triangular applies batched across the
        // columns that survive the breakdown check so the factor streams
        // once per iteration instead of once per column.
        for &c in &active {
            let col = &mut cols[c];
            col.matvecs += 2;
            let denom = col.pt.dot(&col.q);
            if !(denom.re.is_finite() && denom.im.is_finite()) || denom.abs() < 1e-290 {
                col.stop = StopReason::Breakdown;
                col.active = false;
                continue;
            }
            let alpha = col.rho / denom;
            col.x.axpy(alpha, &col.p);
            col.xt.axpy(alpha.conj(), &col.pt);
            col.r.axpy(-alpha, &col.q);
            col.rt.axpy(-alpha.conj(), &col.qt);
            col.res = col.r.norm() / col.b_norm;
            col.res_dual = col.rt.norm() / col.bt_norm;
            cbs_trace::record_iteration(Some(c), iter + 1, col.res);
            if opts.record_history {
                col.history.push(col.res);
                col.dual_history.push(col.res_dual);
            }
        }
        let live: Vec<usize> = active.iter().copied().filter(|&c| cols[c].active).collect();
        if live.is_empty() {
            continue;
        }
        let nl = live.len();
        p_slab.clear();
        p_slab.resize(n * nl, Complex64::ZERO);
        q_slab.clear();
        q_slab.resize(n * nl, Complex64::ZERO);
        for (slot, &c) in live.iter().enumerate() {
            p_slab[slot * n..(slot + 1) * n].copy_from_slice(cols[c].r.as_slice());
        }
        m.solve_block(&p_slab, &mut q_slab, nl);
        for (slot, &c) in live.iter().enumerate() {
            cols[c].z.as_mut_slice().copy_from_slice(&q_slab[slot * n..(slot + 1) * n]);
        }
        for (slot, &c) in live.iter().enumerate() {
            p_slab[slot * n..(slot + 1) * n].copy_from_slice(cols[c].rt.as_slice());
        }
        m.solve_adjoint_block(&p_slab, &mut q_slab, nl);
        for (slot, &c) in live.iter().enumerate() {
            cols[c].zt.as_mut_slice().copy_from_slice(&q_slab[slot * n..(slot + 1) * n]);
        }
        for &c in &live {
            let col = &mut cols[c];
            let rho_new = col.rt.dot(&col.z);
            let beta = rho_new / col.rho;
            col.rho = rho_new;
            for i in 0..n {
                col.p[i] = col.z[i] + beta * col.p[i];
                col.pt[i] = col.zt[i] + beta.conj() * col.pt[i];
            }
        }
    }

    // --- Epilogue, per column, mirroring the scalar solver exactly. -------
    let columns = cols
        .into_iter()
        .map(|mut col| {
            let mut stop = col.stop;
            if col.res <= opts.tolerance && col.res_dual <= opts.tolerance {
                stop = StopReason::Converged;
            }
            if !opts.record_history {
                col.history.push(col.res);
                col.dual_history.push(col.res_dual);
            }
            let primal_conv = col.res <= opts.tolerance;
            let dual_conv = col.res_dual <= opts.tolerance;
            BicgResult {
                x: col.x,
                dual_x: col.xt,
                history: ConvergenceHistory {
                    residuals: col.history,
                    stop_reason: if primal_conv { StopReason::Converged } else { stop },
                    matvecs: col.matvecs,
                },
                dual_history: ConvergenceHistory {
                    residuals: col.dual_history,
                    stop_reason: if dual_conv { StopReason::Converged } else { stop },
                    matvecs: col.matvecs,
                },
            }
        })
        .collect();
    BlockBicgResult { columns, traversals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicg::bicg_dual_seeded;
    use cbs_linalg::{c64, CMatrix};
    use cbs_sparse::DenseOp;
    use rand::SeedableRng;

    fn random_diag_dominant(n: usize, seed: u64) -> CMatrix {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut a = CMatrix::random(n, n, &mut rng);
        for i in 0..n {
            a[(i, i)] += c64(n as f64, 0.5);
        }
        a
    }

    fn rhs_block(n: usize, nvecs: usize, seed: u64) -> Vec<CVector> {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..nvecs).map(|_| CVector::random(n, &mut rng)).collect()
    }

    fn assert_bitwise_eq(a: &BicgResult, b: &BicgResult) {
        assert_eq!(a.x, b.x, "primal solutions differ");
        assert_eq!(a.dual_x, b.dual_x, "dual solutions differ");
        assert_eq!(a.history.residuals, b.history.residuals);
        assert_eq!(a.history.stop_reason, b.history.stop_reason);
        assert_eq!(a.history.matvecs, b.history.matvecs);
        assert_eq!(a.dual_history.residuals, b.dual_history.residuals);
        assert_eq!(a.dual_history.stop_reason, b.dual_history.stop_reason);
    }

    #[test]
    fn block_solve_is_bitwise_identical_to_per_column_solves() {
        let n = 30;
        let a = random_diag_dominant(n, 301);
        let op = DenseOp::new(a);
        let b = rhs_block(n, 4, 302);
        let bd = rhs_block(n, 4, 303);
        let opts = SolverOptions::default().with_tolerance(1e-11);
        let block = bicg_dual_block(&op, &b, &bd, None, &opts, None);
        assert!(block.all_converged());
        for (c, col) in block.columns.iter().enumerate() {
            let single = bicg_dual_seeded(&op, &b[c], &bd[c], None, &opts, None);
            assert_bitwise_eq(col, &single);
        }
        // Deflation: columns converge at different iterations, yet the
        // fused traversal count is bounded by the slowest column.
        let max_matvecs = block.columns.iter().map(|c| c.history.matvecs).max().unwrap();
        assert!(block.traversals <= max_matvecs + 2);
        assert!(block.traversals < block.total_matvecs());
    }

    #[test]
    fn seeded_block_solve_matches_seeded_per_column_solves() {
        let n = 24;
        let a = random_diag_dominant(n, 304);
        let op = DenseOp::new(a);
        let b = rhs_block(n, 3, 305);
        let opts = SolverOptions::default().with_tolerance(1e-11);
        // Mixed seeding: column 1 warm (from its own cold solution), the
        // rest cold.
        let cold = bicg_dual_block(&op, &b, &b, None, &opts, None);
        let donor = &cold.columns[1];
        let seeds: Vec<Option<(&CVector, &CVector)>> =
            vec![None, Some((&donor.x, &donor.dual_x)), None];
        let warm = bicg_dual_block(&op, &b, &b, Some(&seeds), &opts, None);
        for (c, col) in warm.columns.iter().enumerate() {
            let single = bicg_dual_seeded(&op, &b[c], &b[c], seeds[c], &opts, None);
            assert_bitwise_eq(col, &single);
        }
        // The exactly-seeded column converges without iterating.
        assert_eq!(warm.columns[1].history.iterations(), 0);
        assert_eq!(warm.columns[1].history.matvecs, 2);
    }

    #[test]
    fn external_stop_and_histories_mirror_per_column_behaviour() {
        let n = 26;
        let a = random_diag_dominant(n, 306);
        let op = DenseOp::new(a);
        let b = rhs_block(n, 3, 307);
        let opts = SolverOptions::default().with_tolerance(1e-14);
        let stop = |iter: usize| iter >= 4;
        let block = bicg_dual_block(&op, &b, &b, None, &opts, Some(&stop));
        for (c, col) in block.columns.iter().enumerate() {
            let single = bicg_dual_seeded(&op, &b[c], &b[c], None, &opts, Some(&stop));
            assert_bitwise_eq(col, &single);
            assert!(col.history.iterations() <= 5);
        }
    }

    #[test]
    fn traversal_count_is_nvecs_fold_smaller_at_fixed_iterations() {
        // With a tolerance no column can reach, every column runs exactly
        // `max_iterations` lockstep steps: the block path performs
        // `2 · max_iterations` traversals where the per-column path
        // performs `nvecs · 2 · max_iterations`.
        let n = 20;
        let nvecs = 5;
        let a = random_diag_dominant(n, 308);
        let op = DenseOp::new(a);
        let b = rhs_block(n, nvecs, 309);
        let opts = SolverOptions { tolerance: 1e-300, max_iterations: 12, record_history: false };
        let block = bicg_dual_block(&op, &b, &b, None, &opts, None);
        assert_eq!(block.traversals, 2 * 12);
        assert_eq!(block.total_matvecs(), nvecs * 2 * 12);
        assert_eq!(block.total_matvecs(), nvecs * block.traversals);
    }

    #[test]
    fn preconditioned_block_matches_preconditioned_per_column_solves() {
        use crate::bicg::bicg_dual_precond_seeded;
        use cbs_sparse::{CooBuilder, Ilu0};
        let n = 40;
        let mut bld = CooBuilder::new(n, n);
        for i in 0..n {
            bld.push(i, i, c64(3.0, 0.4));
            bld.push(i, (i + 1) % n, c64(-1.0, 0.1));
            bld.push(i, (i + n - 1) % n, c64(-0.9, -0.2));
        }
        let a = bld.build();
        let ilu = Ilu0::from_csr(&a);
        let b = rhs_block(n, 4, 311);
        let bd = rhs_block(n, 4, 312);
        let opts = SolverOptions::default().with_tolerance(1e-11);

        // Mixed seeding to exercise the seeded preconditioned start.
        let cold = bicg_dual_block_precond(&a, Some(&ilu), &b, &bd, None, &opts, None);
        assert!(cold.all_converged());
        let donor = &cold.columns[2];
        let seeds: Vec<Option<(&CVector, &CVector)>> =
            vec![None, None, Some((&donor.x, &donor.dual_x)), None];
        let warm = bicg_dual_block_precond(&a, Some(&ilu), &b, &bd, Some(&seeds), &opts, None);
        for (c, col) in warm.columns.iter().enumerate() {
            let single =
                bicg_dual_precond_seeded(&a, Some(&ilu), &b[c], &bd[c], seeds[c], &opts, None);
            assert_bitwise_eq(col, &single);
        }
        assert_eq!(warm.columns[2].history.iterations(), 0);
        // The block path still fuses matvecs: fewer traversals than the sum
        // of per-column matvecs.
        assert!(cold.traversals < cold.total_matvecs());
    }

    #[test]
    fn none_preconditioner_block_delegates_bitwise() {
        let a = random_diag_dominant(18, 313);
        let op = DenseOp::new(a);
        let b = rhs_block(18, 3, 314);
        let opts = SolverOptions::default();
        let plain = bicg_dual_block(&op, &b, &b, None, &opts, None);
        let via =
            bicg_dual_block_precond::<_, cbs_sparse::Ilu0>(&op, None, &b, &b, None, &opts, None);
        assert_eq!(plain.traversals, via.traversals);
        for (p, v) in plain.columns.iter().zip(&via.columns) {
            assert_bitwise_eq(p, v);
        }
    }

    #[test]
    fn traversal_weight_scales_the_traversal_count() {
        // A weight-3 wrapper (stand-in for the matrix-free QEP operator)
        // must report 3x the traversals of the same solve on the plain
        // operator, with identical matvec counts.
        struct Weighted<'a>(&'a DenseOp);
        impl cbs_sparse::LinearOperator for Weighted<'_> {
            fn nrows(&self) -> usize {
                self.0.nrows()
            }
            fn ncols(&self) -> usize {
                self.0.ncols()
            }
            fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
                self.0.apply(x, y);
            }
            fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
                self.0.apply_adjoint(x, y);
            }
            fn traversal_weight(&self) -> usize {
                3
            }
        }
        let a = random_diag_dominant(16, 315);
        let op = DenseOp::new(a);
        let b = rhs_block(16, 3, 316);
        let opts = SolverOptions { tolerance: 1e-300, max_iterations: 7, record_history: false };
        let plain = bicg_dual_block(&op, &b, &b, None, &opts, None);
        let weighted = bicg_dual_block(&Weighted(&op), &b, &b, None, &opts, None);
        assert_eq!(plain.traversals, 2 * 7);
        assert_eq!(weighted.traversals, 3 * 2 * 7);
        assert_eq!(plain.total_matvecs(), weighted.total_matvecs());
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let a = random_diag_dominant(8, 310);
        let op = DenseOp::new(a);
        let out = bicg_dual_block(&op, &[], &[], None, &SolverOptions::default(), None);
        assert!(out.columns.is_empty());
        assert_eq!(out.traversals, 0);
    }
}
