//! Convergence bookkeeping shared by all iterative solvers.

use serde::{Deserialize, Serialize};

/// Why an iterative solve stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The relative residual dropped below the tolerance.
    Converged,
    /// The iteration budget was exhausted.
    MaxIterations,
    /// The recurrence broke down (division by a vanishing inner product).
    Breakdown,
    /// An external controller requested an early stop (the paper's
    /// "half of the quadrature points have converged" load-balancing rule).
    ExternalStop,
}

/// Record of one linear solve: per-iteration relative residuals plus the
/// final state.  These are exactly the curves plotted in the paper's
/// Figure 5.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConvergenceHistory {
    /// Relative residual 2-norm after each iteration (index 0 = initial).
    pub residuals: Vec<f64>,
    /// Why the iteration stopped.
    pub stop_reason: StopReason,
    /// Number of operator applications performed (matrix-vector products).
    pub matvecs: usize,
}

impl ConvergenceHistory {
    /// Number of iterations actually performed.
    pub fn iterations(&self) -> usize {
        self.residuals.len().saturating_sub(1)
    }

    /// Final relative residual.
    pub fn final_residual(&self) -> f64 {
        self.residuals.last().copied().unwrap_or(f64::INFINITY)
    }

    /// `true` when the solve reached the requested tolerance.
    pub fn converged(&self) -> bool {
        self.stop_reason == StopReason::Converged
    }
}

/// Common knobs of the iterative solvers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SolverOptions {
    /// Relative residual tolerance (the paper uses 1e-10).
    pub tolerance: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Record the residual history (cheap; on by default).
    pub record_history: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self { tolerance: 1e-10, max_iterations: 10_000, record_history: true }
    }
}

impl SolverOptions {
    /// The settings used throughout the paper's experiments.
    pub fn paper() -> Self {
        Self { tolerance: 1e-10, max_iterations: 100_000, record_history: true }
    }

    /// Override the tolerance.
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Override the iteration budget.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_accessors() {
        let h = ConvergenceHistory {
            residuals: vec![1.0, 0.1, 1e-11],
            stop_reason: StopReason::Converged,
            matvecs: 4,
        };
        assert_eq!(h.iterations(), 2);
        assert!(h.converged());
        assert!((h.final_residual() - 1e-11).abs() < 1e-20);
    }

    #[test]
    fn options_builders() {
        let o = SolverOptions::paper().with_tolerance(1e-8).with_max_iterations(5);
        assert_eq!(o.max_iterations, 5);
        assert_eq!(o.tolerance, 1e-8);
        assert!(o.record_history);
    }
}
