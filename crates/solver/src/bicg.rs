//! The bi-conjugate gradient method for complex non-Hermitian systems, with
//! simultaneous solution of the adjoint ("dual") system.
//!
//! This is the workhorse of the paper: the shifted QEP systems
//! `P(z_j) Y = V` at the outer-circle quadrature points are solved with
//! BiCG, and because `P(z)† = P(1/z̄)`, the *dual* solution produced by the
//! same iteration is exactly the solution needed at the corresponding
//! inner-circle point — halving the number of linear solves (paper §3.2).
//!
//! The implementation follows Saad, *Iterative Methods for Sparse Linear
//! Systems*, Alg. 7.3 (BiCG), with the dual solution vector tracked using
//! the conjugated step sizes.

use cbs_linalg::{CVector, Complex64};
use cbs_sparse::{LinearOperator, Preconditioner};

use crate::history::{ConvergenceHistory, SolverOptions, StopReason};

/// Result of a dual BiCG solve.
#[derive(Clone, Debug)]
pub struct BicgResult {
    /// Solution of the primal system `A x = b`.
    pub x: CVector,
    /// Solution of the dual system `A† x̃ = b_dual`.
    pub dual_x: CVector,
    /// Convergence history of the primal residual.
    pub history: ConvergenceHistory,
    /// Convergence history of the dual residual.
    pub dual_history: ConvergenceHistory,
}

impl BicgResult {
    /// `true` when both the primal and dual systems reached the tolerance.
    pub fn both_converged(&self) -> bool {
        self.history.converged() && self.dual_history.converged()
    }
}

/// Solve `A x = b` and `A† x̃ = b_dual` simultaneously with BiCG.
///
/// `external_stop` is consulted once per iteration; returning `true` aborts
/// the solve with [`StopReason::ExternalStop`] (used to implement the
/// paper's "stop once half of the quadrature points have converged"
/// load-balancing rule).
pub fn bicg_dual<A: LinearOperator + ?Sized>(
    a: &A,
    b: &CVector,
    b_dual: &CVector,
    opts: &SolverOptions,
    external_stop: Option<&(dyn Fn(usize) -> bool + Sync)>,
) -> BicgResult {
    bicg_dual_seeded(a, b, b_dual, None, opts, external_stop)
}

/// [`bicg_dual`] with optional warm-start initial guesses `(x₀, x̃₀)` for
/// the primal and dual solutions.
///
/// With `seed = None` the iteration starts from zero and is **bit-identical
/// to [`bicg_dual`]** — no extra work is performed.  With a seed, the
/// initial residuals are `r₀ = b - A x₀` and `r̃₀ = b̃ - A† x̃₀` (two extra
/// operator applications, counted in `matvecs`); a good seed — e.g. the
/// solution of the same shifted system at a neighbouring scan energy, which
/// differs from the current operator only by `(E' - E) I` — typically cuts
/// the iteration count substantially.  This is the solver half of the
/// energy-sweep warm-start seam (the other half is the seed hook on
/// `cbs_core::ShiftedSolveEngine`).
pub fn bicg_dual_seeded<A: LinearOperator + ?Sized>(
    a: &A,
    b: &CVector,
    b_dual: &CVector,
    seed: Option<(&CVector, &CVector)>,
    opts: &SolverOptions,
    external_stop: Option<&(dyn Fn(usize) -> bool + Sync)>,
) -> BicgResult {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(b_dual.len(), n, "dual rhs length mismatch");

    let mut seed_matvecs = 0usize;
    let (mut x, mut xt, mut r, mut rt) = match seed {
        None => (CVector::zeros(n), CVector::zeros(n), b.clone(), b_dual.clone()),
        Some((x0, xt0)) => {
            assert_eq!(x0.len(), n, "primal seed length mismatch");
            assert_eq!(xt0.len(), n, "dual seed length mismatch");
            let mut r = CVector::zeros(n);
            let mut rt = CVector::zeros(n);
            a.apply(x0.as_slice(), r.as_mut_slice());
            a.apply_adjoint(xt0.as_slice(), rt.as_mut_slice());
            seed_matvecs = 2;
            for i in 0..n {
                r[i] = b[i] - r[i];
                rt[i] = b_dual[i] - rt[i];
            }
            (x0.clone(), xt0.clone(), r, rt)
        }
    };
    let mut p = r.clone();
    let mut pt = rt.clone();

    let b_norm = b.norm().max(1e-300);
    let bt_norm = b_dual.norm().max(1e-300);
    let mut res = r.norm() / b_norm;
    let mut res_dual = rt.norm() / bt_norm;
    cbs_trace::record_iteration(None, 0, res);

    let mut history = Vec::new();
    let mut dual_history = Vec::new();
    if opts.record_history {
        history.push(res);
        dual_history.push(res_dual);
    }

    let mut q = CVector::zeros(n);
    let mut qt = CVector::zeros(n);
    let mut rho = rt.dot(&r);
    let mut matvecs = seed_matvecs;
    let mut stop = StopReason::MaxIterations;

    for iter in 0..opts.max_iterations {
        if res <= opts.tolerance && res_dual <= opts.tolerance {
            stop = StopReason::Converged;
            break;
        }
        if let Some(cb) = external_stop {
            if cb(iter) {
                stop = StopReason::ExternalStop;
                break;
            }
        }
        if rho.abs() < 1e-290 {
            stop = StopReason::Breakdown;
            break;
        }

        a.apply(p.as_slice(), q.as_mut_slice());
        a.apply_adjoint(pt.as_slice(), qt.as_mut_slice());
        matvecs += 2;

        let denom = pt.dot(&q);
        if denom.abs() < 1e-290 {
            stop = StopReason::Breakdown;
            break;
        }
        let alpha = rho / denom;

        x.axpy(alpha, &p);
        xt.axpy(alpha.conj(), &pt);
        r.axpy(-alpha, &q);
        rt.axpy(-alpha.conj(), &qt);

        res = r.norm() / b_norm;
        res_dual = rt.norm() / bt_norm;
        cbs_trace::record_iteration(None, iter + 1, res);
        if opts.record_history {
            history.push(res);
            dual_history.push(res_dual);
        }

        let rho_new = rt.dot(&r);
        let beta = rho_new / rho;
        rho = rho_new;

        // p = r + beta p ; pt = rt + conj(beta) pt
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
            pt[i] = rt[i] + beta.conj() * pt[i];
        }
    }
    if res <= opts.tolerance && res_dual <= opts.tolerance {
        stop = StopReason::Converged;
    }
    if !opts.record_history {
        history.push(res);
        dual_history.push(res_dual);
    }

    let primal_conv = res <= opts.tolerance;
    let dual_conv = res_dual <= opts.tolerance;
    BicgResult {
        x,
        dual_x: xt,
        history: ConvergenceHistory {
            residuals: history,
            stop_reason: if primal_conv { StopReason::Converged } else { stop },
            matvecs,
        },
        dual_history: ConvergenceHistory {
            residuals: dual_history,
            stop_reason: if dual_conv { StopReason::Converged } else { stop },
            matvecs,
        },
    }
}

/// [`bicg_dual_seeded`] with an optional preconditioner `M ≈ A`.
///
/// With `m = None` this **delegates to [`bicg_dual_seeded`]** — the
/// unpreconditioned path stays bitwise unchanged.  With a preconditioner it
/// runs the standard preconditioned dual BiCG (Saad, *Iterative Methods*,
/// §9.x / the Templates "BiCG with preconditioning"): the search directions
/// are built from the preconditioned residuals `z = M⁻¹ r` and
/// `z̃ = M⁻† r̃`, while the *true* residuals `r`, `r̃` drive the stopping
/// test, so the convergence contract (relative residual ≤ tolerance) is the
/// same as the unpreconditioned solver's.
///
/// The adjoint solve `M⁻†` on the dual side is what preserves the paper's
/// dual-circle trick under preconditioning: with `M ≈ P(z)` (e.g.
/// `cbs_sparse::Ilu0` of the assembled operator, or `cbs_sparse::SmwPrecond`
/// completing it with the projector tail), `M† ≈ P(z)† = P(1/z̄)`, the
/// operator of the paired inner-circle node.
///
/// This scalar solver is the per-column bitwise reference for the block
/// solver [`bicg_dual_block_precond`](crate::bicg_dual_block_precond),
/// whose batched [`Preconditioner::solve_block`] applies are contractually
/// bit-identical to the `m.solve` / `m.solve_adjoint` calls here.
pub fn bicg_dual_precond_seeded<A: LinearOperator + ?Sized, M: Preconditioner + ?Sized>(
    a: &A,
    m: Option<&M>,
    b: &CVector,
    b_dual: &CVector,
    seed: Option<(&CVector, &CVector)>,
    opts: &SolverOptions,
    external_stop: Option<&(dyn Fn(usize) -> bool + Sync)>,
) -> BicgResult {
    let Some(m) = m else {
        return bicg_dual_seeded(a, b, b_dual, seed, opts, external_stop);
    };
    let n = a.dim();
    assert_eq!(m.dim(), n, "preconditioner dimension mismatch");
    assert_eq!(b.len(), n, "rhs length mismatch");
    assert_eq!(b_dual.len(), n, "dual rhs length mismatch");

    let mut seed_matvecs = 0usize;
    let (mut x, mut xt, mut r, mut rt) = match seed {
        None => (CVector::zeros(n), CVector::zeros(n), b.clone(), b_dual.clone()),
        Some((x0, xt0)) => {
            assert_eq!(x0.len(), n, "primal seed length mismatch");
            assert_eq!(xt0.len(), n, "dual seed length mismatch");
            let mut r = CVector::zeros(n);
            let mut rt = CVector::zeros(n);
            a.apply(x0.as_slice(), r.as_mut_slice());
            a.apply_adjoint(xt0.as_slice(), rt.as_mut_slice());
            seed_matvecs = 2;
            for i in 0..n {
                r[i] = b[i] - r[i];
                rt[i] = b_dual[i] - rt[i];
            }
            (x0.clone(), xt0.clone(), r, rt)
        }
    };

    let mut z = CVector::zeros(n);
    let mut zt = CVector::zeros(n);
    m.solve(r.as_slice(), z.as_mut_slice());
    m.solve_adjoint(rt.as_slice(), zt.as_mut_slice());
    let mut p = z.clone();
    let mut pt = zt.clone();

    let b_norm = b.norm().max(1e-300);
    let bt_norm = b_dual.norm().max(1e-300);
    let mut res = r.norm() / b_norm;
    let mut res_dual = rt.norm() / bt_norm;
    cbs_trace::record_iteration(None, 0, res);

    let mut history = Vec::new();
    let mut dual_history = Vec::new();
    if opts.record_history {
        history.push(res);
        dual_history.push(res_dual);
    }

    let mut q = CVector::zeros(n);
    let mut qt = CVector::zeros(n);
    let mut rho = rt.dot(&z);
    let mut matvecs = seed_matvecs;
    let mut stop = StopReason::MaxIterations;

    for iter in 0..opts.max_iterations {
        if res <= opts.tolerance && res_dual <= opts.tolerance {
            stop = StopReason::Converged;
            break;
        }
        if let Some(cb) = external_stop {
            if cb(iter) {
                stop = StopReason::ExternalStop;
                break;
            }
        }
        if !(rho.re.is_finite() && rho.im.is_finite()) || rho.abs() < 1e-290 {
            stop = StopReason::Breakdown;
            break;
        }

        a.apply(p.as_slice(), q.as_mut_slice());
        a.apply_adjoint(pt.as_slice(), qt.as_mut_slice());
        matvecs += 2;

        let denom = pt.dot(&q);
        if !(denom.re.is_finite() && denom.im.is_finite()) || denom.abs() < 1e-290 {
            stop = StopReason::Breakdown;
            break;
        }
        let alpha = rho / denom;

        x.axpy(alpha, &p);
        xt.axpy(alpha.conj(), &pt);
        r.axpy(-alpha, &q);
        rt.axpy(-alpha.conj(), &qt);

        res = r.norm() / b_norm;
        res_dual = rt.norm() / bt_norm;
        cbs_trace::record_iteration(None, iter + 1, res);
        if opts.record_history {
            history.push(res);
            dual_history.push(res_dual);
        }

        m.solve(r.as_slice(), z.as_mut_slice());
        m.solve_adjoint(rt.as_slice(), zt.as_mut_slice());
        let rho_new = rt.dot(&z);
        let beta = rho_new / rho;
        rho = rho_new;

        // p = z + beta p ; pt = zt + conj(beta) pt
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
            pt[i] = zt[i] + beta.conj() * pt[i];
        }
    }
    if res <= opts.tolerance && res_dual <= opts.tolerance {
        stop = StopReason::Converged;
    }
    if !opts.record_history {
        history.push(res);
        dual_history.push(res_dual);
    }

    let primal_conv = res <= opts.tolerance;
    let dual_conv = res_dual <= opts.tolerance;
    BicgResult {
        x,
        dual_x: xt,
        history: ConvergenceHistory {
            residuals: history,
            stop_reason: if primal_conv { StopReason::Converged } else { stop },
            matvecs,
        },
        dual_history: ConvergenceHistory {
            residuals: dual_history,
            stop_reason: if dual_conv { StopReason::Converged } else { stop },
            matvecs,
        },
    }
}

/// Solve a single system `A x = b` with BiCG (the dual right-hand side is
/// taken equal to `b`, as in the paper where both systems share `V`).
pub fn bicg<A: LinearOperator + ?Sized>(
    a: &A,
    b: &CVector,
    opts: &SolverOptions,
) -> (CVector, ConvergenceHistory) {
    let res = bicg_dual(a, b, b, opts, None);
    (res.x, res.history)
}

/// Stabilized bi-conjugate gradients (BiCGSTAB) for a single system; kept as
/// an alternative smoother-converging solver for diagnostics and ablations.
pub fn bicgstab<A: LinearOperator + ?Sized>(
    a: &A,
    b: &CVector,
    opts: &SolverOptions,
) -> (CVector, ConvergenceHistory) {
    let n = a.dim();
    assert_eq!(b.len(), n);
    let mut x = CVector::zeros(n);
    let mut r = b.clone();
    let r0 = r.clone();
    let mut p = r.clone();
    let mut v = CVector::zeros(n);
    let mut s = CVector::zeros(n);
    let mut t = CVector::zeros(n);
    let b_norm = b.norm().max(1e-300);
    let mut res = r.norm() / b_norm;
    let mut history = vec![res];
    let mut rho = r0.dot(&r);
    let mut matvecs = 0usize;
    let mut stop = StopReason::MaxIterations;

    for _ in 0..opts.max_iterations {
        if res <= opts.tolerance {
            stop = StopReason::Converged;
            break;
        }
        if rho.abs() < 1e-290 {
            stop = StopReason::Breakdown;
            break;
        }
        a.apply(p.as_slice(), v.as_mut_slice());
        matvecs += 1;
        let alpha = rho / r0.dot(&v);
        // s = r - alpha v
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        a.apply(s.as_slice(), t.as_mut_slice());
        matvecs += 1;
        let tt = t.dot(&t);
        let omega = if tt.abs() < 1e-290 { Complex64::ZERO } else { t.dot(&s) / tt };
        for i in 0..n {
            x[i] += alpha * p[i] + omega * s[i];
            r[i] = s[i] - omega * t[i];
        }
        res = r.norm() / b_norm;
        if opts.record_history {
            history.push(res);
        }
        if omega.abs() < 1e-290 {
            stop = StopReason::Breakdown;
            break;
        }
        let rho_new = r0.dot(&r);
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
    }
    if res <= opts.tolerance {
        stop = StopReason::Converged;
    }
    (x, ConvergenceHistory { residuals: history, stop_reason: stop, matvecs })
}

/// Conjugate gradients for Hermitian positive-definite systems (used by the
/// OBM baseline's Green-function columns, following the paper's choice).
pub fn cg<A: LinearOperator + ?Sized>(
    a: &A,
    b: &CVector,
    opts: &SolverOptions,
) -> (CVector, ConvergenceHistory) {
    let n = a.dim();
    assert_eq!(b.len(), n);
    let mut x = CVector::zeros(n);
    let mut r = b.clone();
    let mut p = r.clone();
    let mut q = CVector::zeros(n);
    let b_norm = b.norm().max(1e-300);
    let mut res = r.norm() / b_norm;
    let mut history = vec![res];
    let mut rho = r.dot(&r);
    let mut matvecs = 0usize;
    let mut stop = StopReason::MaxIterations;

    for _ in 0..opts.max_iterations {
        if res <= opts.tolerance {
            stop = StopReason::Converged;
            break;
        }
        a.apply(p.as_slice(), q.as_mut_slice());
        matvecs += 1;
        let denom = p.dot(&q);
        if denom.abs() < 1e-290 {
            stop = StopReason::Breakdown;
            break;
        }
        let alpha = rho / denom;
        x.axpy(alpha, &p);
        r.axpy(-alpha, &q);
        res = r.norm() / b_norm;
        if opts.record_history {
            history.push(res);
        }
        let rho_new = r.dot(&r);
        let beta = rho_new / rho;
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
    }
    if res <= opts.tolerance {
        stop = StopReason::Converged;
    }
    (x, ConvergenceHistory { residuals: history, stop_reason: stop, matvecs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_linalg::{c64, CMatrix};
    use cbs_sparse::{CsrMatrix, DenseOp, ShiftedOp};
    use rand::SeedableRng;

    fn random_diag_dominant(n: usize, seed: u64) -> CMatrix {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut a = CMatrix::random(n, n, &mut rng);
        for i in 0..n {
            a[(i, i)] += c64(n as f64, 0.5);
        }
        a
    }

    #[test]
    fn bicg_solves_primal_and_dual() {
        let n = 40;
        let a = random_diag_dominant(n, 201);
        let op = DenseOp::new(a.clone());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(202);
        let x_true = CVector::random(n, &mut rng);
        let b = a.matvec(&x_true);
        let xd_true = CVector::random(n, &mut rng);
        let bd = a.adjoint().matvec(&xd_true);

        let opts = SolverOptions::default().with_tolerance(1e-12);
        let res = bicg_dual(&op, &b, &bd, &opts, None);
        assert!(
            res.both_converged(),
            "primal {:?} dual {:?}",
            res.history.stop_reason,
            res.dual_history.stop_reason
        );
        assert!((&res.x - &x_true).norm() / x_true.norm() < 1e-8);
        assert!((&res.dual_x - &xd_true).norm() / xd_true.norm() < 1e-8);
        // Residual history is monotone-ish and ends tiny.
        assert!(res.history.final_residual() < 1e-12);
        assert!(res.history.iterations() <= n + 2);
    }

    #[test]
    fn bicg_on_sparse_shifted_laplacian() {
        // 1-D periodic Laplacian shifted into the complex plane: a simple
        // stand-in for P(z).
        let n = 60;
        let mut b = cbs_sparse::CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, c64(2.0, 0.0));
            b.push(i, (i + 1) % n, c64(-1.0, 0.0));
            b.push(i, (i + n - 1) % n, c64(-1.0, 0.0));
        }
        let lap: CsrMatrix = b.build();
        let shifted = ShiftedOp::new(&lap, c64(0.5, 0.8));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(203);
        let x_true = CVector::random(n, &mut rng);
        let rhs = shifted.apply_vec(&x_true);
        let (x, hist) = bicg(&shifted, &rhs, &SolverOptions::default());
        assert!(hist.converged());
        assert!((&x - &x_true).norm() / x_true.norm() < 1e-7);
    }

    #[test]
    fn seeded_solve_from_exact_solution_converges_instantly() {
        let n = 30;
        let a = random_diag_dominant(n, 212);
        let op = DenseOp::new(a.clone());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(213);
        let x_true = CVector::random(n, &mut rng);
        let b = a.matvec(&x_true);
        let xd_true = CVector::random(n, &mut rng);
        let bd = a.adjoint().matvec(&xd_true);
        let opts = SolverOptions::default().with_tolerance(1e-10);
        let res = bicg_dual_seeded(&op, &b, &bd, Some((&x_true, &xd_true)), &opts, None);
        assert!(res.both_converged());
        assert_eq!(res.history.iterations(), 0, "exact seed must converge without iterating");
        // The two seed-residual applications are accounted for.
        assert_eq!(res.history.matvecs, 2);
    }

    #[test]
    fn seeded_solve_near_solution_beats_cold_start() {
        let n = 40;
        let a = random_diag_dominant(n, 214);
        let op = DenseOp::new(a.clone());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(215);
        let x_true = CVector::random(n, &mut rng);
        let b = a.matvec(&x_true);
        let opts = SolverOptions::default().with_tolerance(1e-12);
        let cold = bicg_dual(&op, &b, &b, &opts, None);
        // Perturb the true solution slightly: a stand-in for the previous
        // scan energy's solution in a sweep.
        let mut near = x_true.clone();
        let noise = CVector::random(n, &mut rng);
        near.axpy(c64_small(), &noise);
        let dual_seed = cold.dual_x.clone();
        let warm = bicg_dual_seeded(&op, &b, &b, Some((&near, &dual_seed)), &opts, None);
        assert!(warm.both_converged());
        assert!(
            warm.history.iterations() < cold.history.iterations(),
            "warm {} vs cold {}",
            warm.history.iterations(),
            cold.history.iterations()
        );
        assert!((&warm.x - &x_true).norm() / x_true.norm() < 1e-8);
    }

    fn c64_small() -> Complex64 {
        c64(1e-4, 0.0)
    }

    #[test]
    fn unseeded_entry_points_are_bit_identical() {
        let a = random_diag_dominant(25, 216);
        let op = DenseOp::new(a);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(217);
        let b = CVector::random(25, &mut rng);
        let opts = SolverOptions::default();
        let via_dual = bicg_dual(&op, &b, &b, &opts, None);
        let via_seeded = bicg_dual_seeded(&op, &b, &b, None, &opts, None);
        assert_eq!(via_dual.x, via_seeded.x);
        assert_eq!(via_dual.dual_x, via_seeded.dual_x);
        assert_eq!(via_dual.history.residuals, via_seeded.history.residuals);
        assert_eq!(via_dual.history.matvecs, via_seeded.history.matvecs);
    }

    fn shifted_laplacian(n: usize, shift: Complex64) -> CsrMatrix {
        let mut b = cbs_sparse::CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, c64(2.0, 0.0) - shift);
            b.push(i, (i + 1) % n, c64(-1.0, 0.0));
            b.push(i, (i + n - 1) % n, c64(-1.0, 0.0));
        }
        b.build()
    }

    #[test]
    fn ilu_preconditioned_solve_cuts_iterations() {
        use cbs_sparse::Ilu0;
        let n = 80;
        let a = shifted_laplacian(n, c64(0.15, 0.35));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(218);
        let x_true = CVector::random(n, &mut rng);
        let b = a.matvec(&x_true);
        let xd_true = CVector::random(n, &mut rng);
        let bd = a.matvec_adjoint(&xd_true);
        let opts = SolverOptions::default().with_tolerance(1e-11);

        let plain = bicg_dual_seeded(&a, &b, &bd, None, &opts, None);
        assert!(plain.both_converged());

        let ilu = Ilu0::from_csr(&a);
        let pre = bicg_dual_precond_seeded(&a, Some(&ilu), &b, &bd, None, &opts, None);
        assert!(pre.both_converged());
        assert!(
            pre.history.iterations() < plain.history.iterations(),
            "preconditioned {} vs plain {} iterations",
            pre.history.iterations(),
            plain.history.iterations()
        );
        // Both the primal and the dual solutions solve their true systems.
        assert!((&pre.x - &x_true).norm() / x_true.norm() < 1e-7);
        assert!((&pre.dual_x - &xd_true).norm() / xd_true.norm() < 1e-7);
    }

    #[test]
    fn none_preconditioner_delegates_bitwise() {
        let a = random_diag_dominant(22, 219);
        let op = DenseOp::new(a);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(220);
        let b = CVector::random(22, &mut rng);
        let opts = SolverOptions::default();
        let plain = bicg_dual_seeded(&op, &b, &b, None, &opts, None);
        let via_precond =
            bicg_dual_precond_seeded::<_, cbs_sparse::Ilu0>(&op, None, &b, &b, None, &opts, None);
        assert_eq!(plain.x, via_precond.x);
        assert_eq!(plain.dual_x, via_precond.dual_x);
        assert_eq!(plain.history.residuals, via_precond.history.residuals);
        assert_eq!(plain.history.matvecs, via_precond.history.matvecs);
    }

    #[test]
    fn preconditioned_seeded_solve_from_exact_solution_converges_instantly() {
        use cbs_sparse::Ilu0;
        let n = 30;
        let a = shifted_laplacian(n, c64(0.2, 0.5));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(221);
        let x_true = CVector::random(n, &mut rng);
        let b = a.matvec(&x_true);
        let xd_true = CVector::random(n, &mut rng);
        let bd = a.matvec_adjoint(&xd_true);
        let ilu = Ilu0::from_csr(&a);
        let opts = SolverOptions::default().with_tolerance(1e-10);
        let res = bicg_dual_precond_seeded(
            &a,
            Some(&ilu),
            &b,
            &bd,
            Some((&x_true, &xd_true)),
            &opts,
            None,
        );
        assert!(res.both_converged());
        assert_eq!(res.history.iterations(), 0, "exact seed must converge without iterating");
        assert_eq!(res.history.matvecs, 2);
    }

    #[test]
    fn external_stop_is_honoured() {
        let a = random_diag_dominant(30, 204);
        let op = DenseOp::new(a);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(205);
        let b = CVector::random(30, &mut rng);
        let opts = SolverOptions::default().with_tolerance(1e-14);
        let res = bicg_dual(&op, &b, &b, &opts, Some(&|iter| iter >= 3));
        assert_eq!(res.history.stop_reason, StopReason::ExternalStop);
        assert!(res.history.iterations() <= 4);
    }

    #[test]
    fn max_iterations_reported() {
        let a = random_diag_dominant(30, 206);
        let op = DenseOp::new(a);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(207);
        let b = CVector::random(30, &mut rng);
        let opts = SolverOptions { tolerance: 1e-30, max_iterations: 2, record_history: true };
        let (_, hist) = bicg(&op, &b, &opts);
        assert_eq!(hist.stop_reason, StopReason::MaxIterations);
    }

    #[test]
    fn bicgstab_matches_bicg_solution() {
        let a = random_diag_dominant(35, 208);
        let op = DenseOp::new(a.clone());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(209);
        let x_true = CVector::random(35, &mut rng);
        let b = a.matvec(&x_true);
        let opts = SolverOptions::default().with_tolerance(1e-12);
        let (x1, h1) = bicg(&op, &b, &opts);
        let (x2, h2) = bicgstab(&op, &b, &opts);
        assert!(h1.converged() && h2.converged());
        assert!((&x1 - &x_true).norm() / x_true.norm() < 1e-8);
        assert!((&x2 - &x_true).norm() / x_true.norm() < 1e-8);
    }

    #[test]
    fn cg_solves_hermitian_positive_definite() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(210);
        let b0 = CMatrix::random(25, 25, &mut rng);
        // A = B B† + I is Hermitian positive definite.
        let mut a = b0.matmul(&b0.adjoint());
        for i in 0..25 {
            a[(i, i)] += c64(1.0, 0.0);
        }
        let op = DenseOp::new(a.clone());
        let x_true = CVector::random(25, &mut rng);
        let rhs = a.matvec(&x_true);
        let (x, hist) = cg(&op, &rhs, &SolverOptions::default().with_tolerance(1e-12));
        assert!(hist.converged());
        assert!((&x - &x_true).norm() / x_true.norm() < 1e-8);
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = random_diag_dominant(10, 211);
        let op = DenseOp::new(a);
        let b = CVector::zeros(10);
        let (x, hist) = bicg(&op, &b, &SolverOptions::default());
        assert!(hist.converged());
        assert!(x.norm() < 1e-14);
        assert_eq!(hist.iterations(), 0);
    }
}
