//! # cbs-solver
//!
//! Iterative solvers for the CBS workspace:
//!
//! * [`bicg_dual`] — BiCG solving `A x = b` *and* `A† x̃ = b̃` in one sweep;
//!   this is the kernel the paper uses to halve the cost of the contour
//!   quadrature (`P(z)† = P(1/z̄)`),
//! * [`bicg_dual_seeded`] — the same iteration warm-started from initial
//!   guesses (the energy-sweep cross-energy reuse seam),
//! * [`bicg_dual_precond_seeded`] — the preconditioned variant (`M⁻¹` on
//!   the primal residuals, `M⁻†` on the dual — e.g. `cbs_sparse::Ilu0` of
//!   the assembled `P(z)`, preserving the `P(z)† = P(1/z̄)` trick); `None`
//!   delegates to the unpreconditioned solver bitwise,
//! * [`bicg_dual_block`] — all right-hand sides of one shifted system
//!   advanced in lockstep through fused block matvecs, with per-column
//!   deflation and bitwise parity with the per-column solver,
//! * [`bicg_dual_block_precond`] — the block solver with the same optional
//!   preconditioner seam,
//! * [`bicg()`], [`bicgstab`], [`cg`] — single-system Krylov solvers,
//! * [`lanczos_lowest`] — Hermitian Lanczos with full reorthogonalization for
//!   the conventional band-structure reference,
//! * [`ConvergenceHistory`] / [`SolverOptions`] — the residual-history
//!   bookkeeping behind the paper's Figure 5 and Table 1.

#![warn(missing_docs)]

pub mod bicg;
pub mod block;
pub mod history;
pub mod lanczos;

pub use bicg::{
    bicg, bicg_dual, bicg_dual_precond_seeded, bicg_dual_seeded, bicgstab, cg, BicgResult,
};
pub use block::{bicg_dual_block, bicg_dual_block_precond, BlockBicgResult};
pub use history::{ConvergenceHistory, SolverOptions, StopReason};
pub use lanczos::{lanczos_lowest, LanczosOptions, LanczosResult};
