//! The overbridging-boundary-matching (OBM) / transfer-matrix baseline
//! (Fujimoto & Hirose 2003), the "conventional method" of the paper's
//! Figure 4 and Table 1.
//!
//! For the bulk QEP `[-λ⁻¹H₁₀ + (E-H₀₀) - λH₀₁]ψ = 0` write
//! `p = λ⁻¹ B† ψ_L`, `q = λ B ψ_F` where `B = H₀₁[L, F]` is the interface
//! coupling block and `F`/`L` are the lower/upper interface index sets.
//! With `G = (E - H₀₀)⁻¹` the full state is `ψ = G(R_F† p + R_L† q)` and the
//! interface amplitudes satisfy the `(|F|+|L|)`-dimensional generalized
//! eigenproblem
//!
//! ```text
//! ⎡ B†G_LF  B†G_LL ⎤         ⎡ I   0    ⎤
//! ⎢                ⎥  z  = λ ⎢          ⎥ z ,      z = [p; q].
//! ⎣   0       I    ⎦         ⎣ BG_FF BG_FL ⎦
//! ```
//!
//! The required columns of `G` (the first and last `Nx·Ny·N_f` columns in
//! the paper's language) are obtained iteratively, and the dense pencil is
//! solved with the generalized eigensolver of `cbs-linalg` (the stand-in for
//! LAPACK's `ZGGEV`).  The method is O(N³)-ish in time and O(N²) in memory,
//! which is exactly the behaviour the paper's Figure 4 contrasts against the
//! Sakurai-Sugiura approach.

use serde::{Deserialize, Serialize};

use cbs_linalg::{generalized_eigen, CMatrix, CVector, Complex64};
use cbs_solver::{bicg, SolverOptions};
use cbs_sparse::{CsrMatrix, LinearOperator};

use crate::interface::Interface;

/// Options of the OBM solve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ObmConfig {
    /// Inner radius of the reported annulus (matches the SS `λ_min`).
    pub lambda_min: f64,
    /// Tolerance of the iterative Green-function column solves.
    pub green_tolerance: f64,
    /// Iteration cap of the Green-function column solves.
    pub green_max_iterations: usize,
}

impl Default for ObmConfig {
    fn default() -> Self {
        Self { lambda_min: 0.5, green_tolerance: 1e-10, green_max_iterations: 50_000 }
    }
}

/// Result of an OBM calculation at one energy.
#[derive(Clone, Debug)]
pub struct ObmResult {
    /// Bloch factors inside the annulus, sorted by modulus.
    pub lambdas: Vec<Complex64>,
    /// Full-cell eigenvectors reconstructed through the Green function
    /// (parallel to `lambdas`).
    pub eigenvectors: Vec<CVector>,
    /// Size of the dense generalized eigenproblem that was solved.
    pub pencil_size: usize,
    /// Peak memory estimate in bytes (dense pencil + stored Green columns),
    /// the quantity compared in the paper's Figure 4(b).
    pub memory_bytes: usize,
    /// Total iterations spent computing Green-function columns.
    pub green_iterations: usize,
    /// Seconds spent on the Green-function columns ("matrix inversion").
    pub green_seconds: f64,
    /// Seconds spent on the dense generalized eigenproblem.
    pub eig_seconds: f64,
}

/// The shifted operator `E - H₀₀` applied matrix-free.
struct EnergyShifted<'a> {
    h00: &'a dyn LinearOperator,
    energy: f64,
}

impl LinearOperator for EnergyShifted<'_> {
    fn nrows(&self) -> usize {
        self.h00.nrows()
    }
    fn ncols(&self) -> usize {
        self.h00.ncols()
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.h00.apply(x, y);
        let e = Complex64::real(self.energy);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = e * *xi - *yi;
        }
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        // (E - H00)† = E - H00 for Hermitian H00 and real E; keep the general
        // form anyway.
        self.h00.apply_adjoint(x, y);
        let e = Complex64::real(self.energy);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = e * *xi - *yi;
        }
    }
}

/// Solve the CBS eigenvalue problem at one energy with the OBM method.
///
/// `h00` is the on-cell block (matrix-free is fine), `h01` must be given in
/// CSR form because the interface extraction needs its sparsity pattern.
pub fn obm_solve(
    h00: &dyn LinearOperator,
    h01: &CsrMatrix,
    energy: f64,
    config: &ObmConfig,
) -> ObmResult {
    let n = h00.nrows();
    assert_eq!(h01.nrows(), n);
    assert_eq!(h01.ncols(), n);
    let iface = Interface::from_h01(h01);
    let (dl, df) = (iface.dim_l(), iface.dim_f());
    assert!(dl > 0 && df > 0, "coupling block is empty — no transport direction coupling");

    let shifted = EnergyShifted { h00, energy };
    let opts = SolverOptions {
        tolerance: config.green_tolerance,
        max_iterations: config.green_max_iterations,
        record_history: false,
    };

    // --- Green-function columns at the interface indices. ---------------
    let t_green = std::time::Instant::now(); // cbs-audit: allow(D002) reason="OBM phase timing for the Fig. 9 comparison; never fingerprinted"
    let mut green_iterations = 0usize;
    let mut solve_columns = |indices: &[usize]| -> CMatrix {
        let mut cols = CMatrix::zeros(n, indices.len());
        for (c, &idx) in indices.iter().enumerate() {
            let e = CVector::unit(n, idx);
            let (x, hist) = bicg(&shifted, &e, &opts);
            // Residual histories are not recorded here; each BiCG iteration
            // performs two operator applications.
            green_iterations += hist.matvecs / 2;
            cols.set_column(c, &x);
        }
        cols
    };
    let g_cols_f = solve_columns(&iface.cols_f); // N x dF
    let g_cols_l = solve_columns(&iface.rows_l); // N x dL
    let green_seconds = t_green.elapsed().as_secs_f64();

    // Corner blocks of G.
    let restrict = |cols: &CMatrix, rows: &[usize]| -> CMatrix {
        CMatrix::from_fn(rows.len(), cols.ncols(), |r, c| cols[(rows[r], c)])
    };
    let g_ff = restrict(&g_cols_f, &iface.cols_f); // dF x dF
    let g_fl = restrict(&g_cols_l, &iface.cols_f); // dF x dL
    let g_lf = restrict(&g_cols_f, &iface.rows_l); // dL x dF
    let g_ll = restrict(&g_cols_l, &iface.rows_l); // dL x dL

    // --- Dense pencil assembly and solve. --------------------------------
    let t_eig = std::time::Instant::now(); // cbs-audit: allow(D002) reason="OBM phase timing for the Fig. 9 comparison; never fingerprinted"
    let b = &iface.coupling; // dL x dF
    let b_dag = b.adjoint(); // dF x dL
    let size = df + dl;
    let mut a_mat = CMatrix::zeros(size, size);
    let mut c_mat = CMatrix::zeros(size, size);
    // Row block 1 (dF): [B† G_LF, B† G_LL] = λ [I_F, 0]
    a_mat.set_block(0, 0, &b_dag.matmul(&g_lf));
    a_mat.set_block(0, df, &b_dag.matmul(&g_ll));
    c_mat.set_block(0, 0, &CMatrix::identity(df));
    // Row block 2 (dL): [0, I_L] = λ [B G_FF, B G_FL]
    a_mat.set_block(df, df, &CMatrix::identity(dl));
    c_mat.set_block(df, 0, &b.matmul(&g_ff));
    c_mat.set_block(df, df, &b.matmul(&g_fl));

    let pencil = generalized_eigen(&a_mat, &c_mat).expect("OBM pencil eigenproblem failed");
    let mut lambdas = Vec::new();
    let mut eigenvectors = Vec::new();
    for (lambda, z) in pencil.finite_pairs() {
        let r = lambda.abs();
        if r <= config.lambda_min || r >= 1.0 / config.lambda_min {
            continue;
        }
        // Reconstruct the full-cell state  ψ = Gcols_F p + Gcols_L q.
        let p: CVector = (0..df).map(|i| z[i]).collect();
        let q: CVector = (0..dl).map(|i| z[df + i]).collect();
        let mut psi = g_cols_f.matvec(&p);
        let psi_l = g_cols_l.matvec(&q);
        psi += &psi_l;
        let (psi, norm) = psi.normalized();
        if norm < 1e-14 {
            continue;
        }
        lambdas.push(lambda);
        eigenvectors.push(psi);
    }
    // Sort by modulus, then phase, for reproducible comparisons.
    let mut order: Vec<usize> = (0..lambdas.len()).collect();
    order.sort_by(|&i, &j| {
        (lambdas[i].abs(), lambdas[i].arg())
            .partial_cmp(&(lambdas[j].abs(), lambdas[j].arg()))
            .unwrap()
    });
    let lambdas: Vec<Complex64> = order.iter().map(|&i| lambdas[i]).collect();
    let eigenvectors: Vec<CVector> = order.iter().map(|&i| eigenvectors[i].clone()).collect();
    let eig_seconds = t_eig.elapsed().as_secs_f64();

    // Memory model: the two dense pencil matrices, the shift-invert work
    // matrix inside the generalized eigensolver, and the stored Green
    // columns.
    let cplx = std::mem::size_of::<Complex64>();
    let memory_bytes = 3 * size * size * cplx + 2 * n * (df + dl) * cplx / 2 * 2;

    ObmResult {
        lambdas,
        eigenvectors,
        pencil_size: size,
        memory_bytes,
        green_iterations,
        green_seconds,
        eig_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_core::{solve_qep_with, QepProblem, SsConfig};
    use cbs_dft::{BlockHamiltonian, HamiltonianParams};
    use cbs_grid::{FdOrder, Grid3};
    use cbs_parallel::RayonExecutor;
    use cbs_sparse::DenseOp;

    fn tiny_system() -> (BlockHamiltonian, f64) {
        use cbs_dft::{Atom, AtomicStructure, Element};
        let s = AtomicStructure {
            name: "tiny-chain".into(),
            atoms: vec![Atom::new(Element::C, [1.2, 1.2, 1.0])],
            lateral: (2.4, 2.4),
            period: 2.0,
        };
        let grid = Grid3::new(4, 4, 5, 0.6, 0.6, 0.4);
        let h = BlockHamiltonian::build(
            grid,
            &s,
            HamiltonianParams { fd: FdOrder::new(1), include_nonlocal: false },
        );
        (h, -0.3)
    }

    #[test]
    fn obm_matches_sakurai_sugiura_on_a_physical_hamiltonian() {
        let (h, energy) = tiny_system();
        let h00_csr = h.h00_csr();
        let h01_csr = h.h01_csr();
        let obm = obm_solve(&h00_csr, &h01_csr, energy, &ObmConfig::default());

        let op00 = DenseOp::new(h00_csr.to_dense());
        let op01 = DenseOp::new(h01_csr.to_dense());
        let qep = QepProblem::new(&op00, &op01, energy, h.period());
        // Cross-check through the threaded executor: the engine guarantees
        // results identical to the serial path, so this doubles as an
        // integration check of the fan-out.
        let ss = solve_qep_with(
            &qep,
            &SsConfig {
                n_int: 24,
                n_mm: 8,
                n_rh: 8,
                bicg_tolerance: 1e-12,
                residual_cutoff: 1e-5,
                majority_stop: false,
                ..SsConfig::paper()
            },
            &RayonExecutor,
        );

        // Every SS eigenvalue comfortably inside the annulus must be found by
        // OBM and vice versa.
        let close = |a: Complex64, b: Complex64| (a - b).abs() < 1e-5 * (1.0 + b.abs());
        let mut compared = 0;
        for p in &ss.eigenpairs {
            if p.lambda.abs() < 0.55 || p.lambda.abs() > 1.8 {
                continue;
            }
            assert!(
                obm.lambdas.iter().any(|&l| close(l, p.lambda)),
                "SS eigenvalue {:?} missing from OBM result {:?}",
                p.lambda,
                obm.lambdas
            );
            compared += 1;
        }
        for &l in &obm.lambdas {
            if l.abs() < 0.55 || l.abs() > 1.8 {
                continue;
            }
            assert!(
                ss.eigenpairs.iter().any(|p| close(p.lambda, l)),
                "OBM eigenvalue {l:?} missing from SS result"
            );
        }
        assert!(compared > 0, "no eigenvalues to compare");
    }

    #[test]
    fn obm_eigenvectors_solve_the_qep() {
        let (h, energy) = tiny_system();
        let h00_csr = h.h00_csr();
        let h01_csr = h.h01_csr();
        let obm = obm_solve(&h00_csr, &h01_csr, energy, &ObmConfig::default());
        assert!(!obm.lambdas.is_empty());
        let op00 = DenseOp::new(h00_csr.to_dense());
        let op01 = DenseOp::new(h01_csr.to_dense());
        let qep = QepProblem::new(&op00, &op01, energy, h.period());
        for (l, v) in obm.lambdas.iter().zip(&obm.eigenvectors) {
            // States very close to the contour can be slightly less accurate;
            // accept 1e-4 relative residual for this small grid.
            let r = qep.residual(*l, v);
            assert!(r < 1e-4, "λ = {l:?} residual {r}");
        }
        assert!(obm.pencil_size > 0);
        assert!(obm.memory_bytes > 0);
        assert!(obm.green_iterations > 0);
    }

    #[test]
    fn interface_size_matches_fd_order_for_kinetic_coupling() {
        let (h, _) = tiny_system();
        let iface = Interface::from_h01(&h.h01_csr());
        // Kinetic-only coupling with nf = 1: one plane of 4x4 points each side.
        assert_eq!(iface.dim_l(), 16);
        assert_eq!(iface.dim_f(), 16);
        assert_eq!(iface.problem_size(), 32);
    }
}
