//! # cbs-obm
//!
//! The overbridging-boundary-matching (OBM) / transfer-matrix baseline that
//! the paper compares against (Fujimoto & Hirose, Phys. Rev. B 67, 195315).
//!
//! Given the periodic blocks `H₀₀`, `H₀₁` and a scan energy, the method
//! computes the interface columns of the cell Green function
//! `(E - H₀₀)⁻¹` iteratively, assembles a dense generalized eigenproblem of
//! dimension `2·Nx·Ny·N_f` on the boundary planes, and solves it densely.
//! Its O(N²) memory and O(N³) time are the baseline costs of the paper's
//! Figure 4; the cross-validation against the Sakurai-Sugiura solver in the
//! tests doubles as a correctness check for both.

#![warn(missing_docs)]

pub mod interface;
pub mod solver;

pub use interface::Interface;
pub use solver::{obm_solve, ObmConfig, ObmResult};
