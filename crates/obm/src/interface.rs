//! Interface (boundary-plane) bookkeeping for the OBM / transfer-matrix
//! baseline.
//!
//! The coupling block `H₀₁` only connects the last `N_f` grid planes of one
//! cell (the "L" interface) to the first `N_f` planes of the next cell (the
//! "F" interface).  The OBM method works entirely on those interface degrees
//! of freedom; this module extracts the index sets and the dense coupling
//! block `B = H₀₁[L, F]`.

use cbs_linalg::CMatrix;
use cbs_sparse::CsrMatrix;

/// The interface structure extracted from a coupling block.
#[derive(Clone, Debug)]
pub struct Interface {
    /// Global indices of the "upper" interface rows (last planes of the cell).
    pub rows_l: Vec<usize>,
    /// Global indices of the "lower" interface columns (first planes of the
    /// next cell, expressed in home-cell indexing).
    pub cols_f: Vec<usize>,
    /// The dense coupling block `B = H₀₁[L, F]` of shape `(|L|, |F|)`.
    pub coupling: CMatrix,
}

impl Interface {
    /// Extract the interface of a coupling matrix.
    pub fn from_h01(h01: &CsrMatrix) -> Self {
        let nrows = h01.nrows();
        let mut row_used = vec![false; nrows];
        let mut col_used = vec![false; h01.ncols()];
        for (i, used) in row_used.iter_mut().enumerate() {
            for (j, _) in h01.row_entries(i) {
                *used = true;
                col_used[j] = true;
            }
        }
        let rows_l: Vec<usize> =
            row_used.iter().enumerate().filter(|(_, &u)| u).map(|(i, _)| i).collect();
        let cols_f: Vec<usize> =
            col_used.iter().enumerate().filter(|(_, &u)| u).map(|(j, _)| j).collect();
        let col_pos: std::collections::BTreeMap<usize, usize> =
            cols_f.iter().enumerate().map(|(p, &j)| (j, p)).collect();
        let mut coupling = CMatrix::zeros(rows_l.len(), cols_f.len());
        for (r, &i) in rows_l.iter().enumerate() {
            for (j, v) in h01.row_entries(i) {
                coupling[(r, col_pos[&j])] = v;
            }
        }
        Self { rows_l, cols_f, coupling }
    }

    /// Number of upper-interface degrees of freedom.
    pub fn dim_l(&self) -> usize {
        self.rows_l.len()
    }

    /// Number of lower-interface degrees of freedom.
    pub fn dim_f(&self) -> usize {
        self.cols_f.len()
    }

    /// Total size of the generalized eigenproblem the OBM method solves
    /// (`2 × Nx × Ny × N_f` in the paper for the kinetic-only coupling).
    pub fn problem_size(&self) -> usize {
        self.dim_l() + self.dim_f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_linalg::{c64, Complex64};
    use cbs_sparse::CooBuilder;

    #[test]
    fn extracts_support_and_coupling_block() {
        // 6x6 coupling with nonzeros linking rows {4,5} to cols {0,1}.
        let mut b = CooBuilder::new(6, 6);
        b.push(4, 0, c64(1.0, 0.0));
        b.push(5, 1, c64(0.0, 2.0));
        b.push(5, 0, c64(-1.0, 0.5));
        let h01 = b.build();
        let iface = Interface::from_h01(&h01);
        assert_eq!(iface.rows_l, vec![4, 5]);
        assert_eq!(iface.cols_f, vec![0, 1]);
        assert_eq!(iface.problem_size(), 4);
        assert_eq!(iface.coupling[(0, 0)], c64(1.0, 0.0));
        assert_eq!(iface.coupling[(1, 1)], c64(0.0, 2.0));
        assert_eq!(iface.coupling[(1, 0)], c64(-1.0, 0.5));
        assert_eq!(iface.coupling[(0, 1)], Complex64::ZERO);
    }
}
