//! Criterion microbenchmarks of the hot kernels behind the paper's serial
//! performance numbers: sparse matvec (single-vector and fused block), QEP
//! application, BiCG iterations (per-rhs and block), moment accumulation
//! and the Hankel post-processing.
use cbs_core::{solve_qep, QepProblem, SsConfig};
use cbs_dft::{bulk_al_100, grid_for_structure, BlockHamiltonian, HamiltonianParams};
use cbs_linalg::{c64, CVector, Complex64};
use cbs_solver::{bicg_dual, bicg_dual_block, SolverOptions};
use cbs_sparse::LinearOperator;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

fn small_hamiltonian() -> BlockHamiltonian {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, 1.1);
    BlockHamiltonian::build(grid, &s, HamiltonianParams::default())
}

fn bench_kernels(c: &mut Criterion) {
    let h = small_hamiltonian();
    let n = h.dim();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let x = CVector::random(n, &mut rng);
    let h00 = h.h00();
    let h01 = h.h01();

    c.bench_function("sparse_h00_matvec", |b| {
        let mut y = vec![Complex64::ZERO; n];
        b.iter(|| h00.apply(x.as_slice(), &mut y));
    });

    // Fused block kernels vs the per-column loop at the paper's N_rh scale.
    let nvecs = 8;
    let x_slab: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
    let mut group = c.benchmark_group("block_matvec");
    group.bench_function("h00_block_8", |b| {
        let mut y = vec![Complex64::ZERO; n * nvecs];
        b.iter(|| h00.apply_block(&x_slab, &mut y, nvecs));
    });
    group.bench_function("h00_column_loop_8", |b| {
        // The exact path the fused kernel replaces: per-column apply writing
        // into the same n*nvecs output slab.
        let mut y = vec![Complex64::ZERO; n * nvecs];
        b.iter(|| {
            for (xc, yc) in x_slab.chunks_exact(n).zip(y.chunks_exact_mut(n)) {
                h00.apply(xc, yc);
            }
        });
    });
    group.finish();

    let problem = QepProblem::new(&h00, &h01, 0.2, h.period());
    let z = c64(1.2, 1.1);
    c.bench_function("qep_operator_apply", |b| {
        let mut y = vec![Complex64::ZERO; n];
        b.iter(|| problem.apply(z, x.as_slice(), &mut y));
    });

    c.bench_function("qep_operator_apply_block_8", |b| {
        let mut y = vec![Complex64::ZERO; n * nvecs];
        b.iter(|| problem.apply_block(z, &x_slab, &mut y, nvecs));
    });

    c.bench_function("bicg_dual_20_iterations", |b| {
        let op = problem.operator(z);
        let opts = SolverOptions { tolerance: 1e-300, max_iterations: 20, record_history: false };
        b.iter(|| bicg_dual(&op, &x, &x, &opts, None));
    });

    c.bench_function("bicg_dual_block_4rhs_20_iterations", |b| {
        let op = problem.operator(z);
        let rhs: Vec<CVector> =
            (0..4).map(|c| CVector::from_vec(x_slab[c * n..(c + 1) * n].to_vec())).collect();
        let opts = SolverOptions { tolerance: 1e-300, max_iterations: 20, record_history: false };
        b.iter(|| bicg_dual_block(&op, &rhs, &rhs, None, &opts, None));
    });

    let mut group = c.benchmark_group("sakurai_sugiura");
    group.sample_size(10);
    group.bench_function("solve_qep_small", |b| {
        let config =
            SsConfig { n_int: 8, n_mm: 4, n_rh: 4, bicg_max_iterations: 400, ..SsConfig::small() };
        b.iter(|| solve_qep(&problem, &config));
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
