//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! the dual-BiCG trick (one solve serves both circles) vs independent
//! solves, and matrix-free vs explicit-CSR application of the QEP operator.
use cbs_core::QepProblem;
use cbs_dft::{bulk_al_100, grid_for_structure, BlockHamiltonian, HamiltonianParams};
use cbs_linalg::{c64, CVector, Complex64};
use cbs_solver::{bicg, bicg_dual, SolverOptions};
use cbs_sparse::LinearOperator;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

fn bench_ablations(c: &mut Criterion) {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, 1.1);
    let h = BlockHamiltonian::build(grid, &s, HamiltonianParams::default());
    let n = h.dim();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
    let v = CVector::random(n, &mut rng);
    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, 0.2, h.period());
    let z = c64(1.4, 1.4);
    let opts = SolverOptions { tolerance: 1e-300, max_iterations: 15, record_history: false };

    let mut group = c.benchmark_group("dual_system_trick");
    group.sample_size(10);
    group.bench_function("dual_bicg_single_sweep", |b| {
        let op = problem.operator(z);
        b.iter(|| bicg_dual(&op, &v, &v, &opts, None));
    });
    group.bench_function("two_independent_solves", |b| {
        let op_outer = problem.operator(z);
        let op_inner = problem.operator(Complex64::ONE / z.conj());
        b.iter(|| {
            let _ = bicg(&op_outer, &v, &opts);
            let _ = bicg(&op_inner, &v, &opts);
        });
    });
    group.finish();

    let mut group = c.benchmark_group("operator_representation");
    let h00_csr = h.h00_csr();
    group.bench_function("matrix_free_apply", |b| {
        let mut y = vec![Complex64::ZERO; n];
        b.iter(|| h00.apply(v.as_slice(), &mut y));
    });
    group.bench_function("merged_csr_apply", |b| {
        let mut y = vec![Complex64::ZERO; n];
        b.iter(|| h00_csr.matvec_into(v.as_slice(), &mut y));
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
