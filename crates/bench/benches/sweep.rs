//! Criterion benchmarks of the `cbs-sweep` orchestrator: the same small
//! Al(100) multi-energy scan run cold (flat pool, no seeding — the
//! per-energy-loop equivalent) and warm-started (dyadic wavefront with
//! cross-energy BiCG seeding), under both job granularities
//! (`BlockPolicy::PerNode` fused block solves vs `BlockPolicy::PerRhs`
//! single-vector solves), the operator-policy ladder
//! (`PrecondPolicy::MatrixFree` / `Assembled` / `AssembledIlu0` /
//! `AssembledIlu0Smw`), and the calibrated auto-tuned cell
//! (`SsConfig::auto()` — the probe commits a policy, and `bench_check`
//! holds the `_auto` rows to within 10% of the best fixed row).  The
//! committed baseline lives in `baselines/sweep_cbs.json`; regenerate with
//!
//! ```sh
//! CRITERION_JSON=$PWD/crates/bench/baselines/sweep_cbs.json \
//!     cargo bench -p cbs-bench --bench sweep
//! ```
//!
//! In addition to the criterion timings, every run writes a
//! machine-readable `BENCH_sweep.json` at the repository root — wall time,
//! operator traversals/assemblies, the cold/warm iteration split and the
//! per-stage nanosecond attribution (kernel / preconditioner / extraction)
//! per policy combination — which CI uploads as an artifact and diffs
//! against the committed copy so the perf trajectory is tracked across PRs.

use std::io::Write as _;
use std::time::Instant;

use cbs_core::{BlockPolicy, PrecondPolicy, SlicePolicy, SsConfig};
use cbs_dft::{bulk_al_100, grid_for_structure, BlockHamiltonian, HamiltonianParams};
use cbs_parallel::SerialExecutor;
use cbs_sweep::{EnergySweep, SweepConfig, SweepResult};
use criterion::{criterion_group, criterion_main, Criterion};

fn small_hamiltonian() -> BlockHamiltonian {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, 1.1);
    BlockHamiltonian::build(grid, &s, HamiltonianParams::default())
}

fn ss(block: BlockPolicy, precond: PrecondPolicy, slice: SlicePolicy, auto: bool) -> SsConfig {
    SsConfig {
        n_int: 8,
        n_mm: 4,
        n_rh: 4,
        bicg_max_iterations: 400,
        block,
        precond,
        slice,
        auto,
        ..SsConfig::small()
    }
}

/// The sliced-contour timing rows use a deliberately lean quadrature
/// (bench-scale accuracy): the row tracks the *cost shape* of slicing —
/// more independent solves against smaller per-slice extractions — across
/// PRs, not the 1e-10 cross-validation bound (that lives in
/// `tests/cross_validate.rs` with production node counts).
fn lean_sectors(s: usize) -> SlicePolicy {
    SlicePolicy { radial_nodes: 4, ..SlicePolicy::sectors(s) }
}

fn run_sweep(h: &BlockHamiltonian, energies: &[f64], config: SweepConfig) -> SweepResult {
    let h00 = h.h00();
    let h01 = h.h01();
    let mut sweep = EnergySweep::new(&h00, &h01, h.period(), config);
    // Auto-tuned rows need the factored operators too: the probe's
    // preconditioner ladder is only reachable with a pattern attached.
    if config.ss.precond.is_assembled() || config.ss.auto {
        // Factored attachment: sparse-only CSR pattern + low-rank projector
        // tail, so refills and ILU(0) sweeps never touch dense projector
        // fill-in.
        let (pattern, projector) = h.qep_factored();
        sweep = sweep.with_pattern(pattern).with_projector(projector);
    }
    sweep.run(energies, &SerialExecutor)
}

/// One row of the machine-readable report.
struct BenchRow {
    name: String,
    sweep: &'static str,
    block: BlockPolicy,
    precond: PrecondPolicy,
    slice: SlicePolicy,
    wall_seconds: f64,
    result: SweepResult,
}

/// Write `BENCH_sweep.json` at the repository root: one entry per policy
/// combination with wall time and the solver counters that track the perf
/// levers (traversals for the block/assembled data paths, iteration splits
/// for warm-starting and ILU preconditioning).
fn emit_bench_json(rows: &[BenchRow]) {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_sweep.json");
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"sweep_cbs\",\n  \"system\": \"Al(100) x 8 energies\",\n");
    out.push_str("  \"configs\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let s = &row.result.stats;
        // Auto rows report the cell the probe committed, fixed rows the
        // configured one.
        let (block, precond, slices) = match &row.result.auto {
            Some(d) => (
                d.block.name().to_string(),
                d.precond.name().to_string(),
                if d.slices > 1 { d.slices.to_string() } else { "single".to_string() },
            ),
            None => {
                (row.block.name().to_string(), row.precond.name().to_string(), row.slice.name())
            }
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"sweep\": \"{}\", \"auto\": {}, \"block\": \"{}\", \
             \"precond\": \"{}\", \"slices\": \"{}\", \"wall_seconds\": {:.6}, \
             \"bicg_iterations\": {}, \"cold_iterations\": {}, \
             \"warm_iterations\": {}, \"matvecs\": {}, \"traversals\": {}, \
             \"assemblies\": {}, \"accepted\": {}, \"kernel_ns\": {}, \
             \"precond_ns\": {}, \"extraction_ns\": {}, \"kernel_wall_ns\": {}, \
             \"precond_wall_ns\": {}, \"extraction_wall_ns\": {}}}{}\n",
            row.name,
            row.sweep,
            row.result.auto.is_some(),
            block,
            precond,
            slices,
            row.wall_seconds,
            s.total_bicg_iterations,
            s.cold_bicg_iterations,
            s.warm_bicg_iterations,
            s.total_matvecs,
            s.operator_traversals,
            s.operator_assemblies,
            s.accepted,
            s.kernel_ns,
            s.precond_ns,
            s.extraction_ns,
            s.kernel_wall_ns,
            s.precond_wall_ns,
            s.extraction_wall_ns,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

fn bench_sweep(c: &mut Criterion) {
    let h = small_hamiltonian();
    let energies: Vec<f64> = (0..8).map(|i| 0.05 + 0.02 * i as f64).collect();
    let cold = |b, p, s, a| SweepConfig::cold(ss(b, p, s, a));
    let warm = |b, p, s, a| SweepConfig { initial_round: 2, ..SweepConfig::new(ss(b, p, s, a)) };
    let single = SlicePolicy::single();

    // The benchmark matrix: (cold, warm) x per-node {matrix-free,
    // assembled, ilu0} plus the legacy per-rhs matrix-free shape, the
    // sliced-vs-single contour comparison (2-sector partition), and the
    // calibrated auto-tuned row (`SsConfig::auto()`: the probe picks the
    // cell; `bench_check` gates its wall to within 10% of the best fixed
    // row of the same sweep kind).
    let matrix: Vec<(&'static str, BlockPolicy, PrecondPolicy, SlicePolicy, bool)> = vec![
        ("", BlockPolicy::PerNode, PrecondPolicy::MatrixFree, single, false),
        ("_per_rhs", BlockPolicy::PerRhs, PrecondPolicy::MatrixFree, single, false),
        ("_assembled", BlockPolicy::PerNode, PrecondPolicy::Assembled, single, false),
        ("_ilu0", BlockPolicy::PerNode, PrecondPolicy::AssembledIlu0, single, false),
        // The auto row sits right after the ilu0 row it is expected to
        // commit to, so the gate's comparison pair shares machine state.
        ("_auto", BlockPolicy::PerNode, PrecondPolicy::MatrixFree, single, true),
        ("_ilu0_smw", BlockPolicy::PerNode, PrecondPolicy::AssembledIlu0Smw, single, false),
        ("_sliced2", BlockPolicy::PerNode, PrecondPolicy::MatrixFree, lean_sectors(2), false),
    ];

    // `CBS_BENCH_SMOKE=1` skips the sampled criterion group and keeps only
    // the one-timed-run row pass below — the CI regression gate runs in
    // this mode so the wall-clock ratios land in minutes, not an hour.
    let smoke = cbs_trace::knob_set("CBS_BENCH_SMOKE");
    if !smoke {
        let mut group = c.benchmark_group("sweep_cbs");
        group.sample_size(10);
        for &(tag, block, precond, slice, auto) in &matrix {
            group.bench_function(&format!("cold_8_energies{tag}"), |b| {
                let config = cold(block, precond, slice, auto);
                b.iter(|| run_sweep(&h, &energies, config));
            });
            group.bench_function(&format!("warm_8_energies{tag}"), |b| {
                let config = warm(block, precond, slice, auto);
                b.iter(|| run_sweep(&h, &energies, config));
            });
        }
        group.finish();
    }

    // Machine-readable perf trajectory: three timed runs per combination,
    // keeping the fastest (a separate pass so the counters come from
    // exactly the timed sweep).
    // With `CBS_TRACE=<path>` set, each timed run records under its own
    // trace session (warmups stay untraced), the wall-ns columns of
    // `BENCH_sweep.json` fill from the span aggregation, and the reference
    // `cold_8_energies` row's session exports as Chrome trace-event JSON to
    // the requested path (viewable in chrome://tracing / Perfetto, checked
    // by the `trace_check` binary).
    // A relative CBS_TRACE path is anchored at the repository root (cargo
    // runs benches with the package dir as cwd), matching BENCH_sweep.json.
    let trace_path = cbs_trace::trace_path_from_env().map(|p| {
        if p.is_absolute() {
            p
        } else {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(p)
        }
    });
    let mut rows = Vec::new();
    for &(tag, block, precond, slice, auto) in &matrix {
        for (sweep_kind, config) in [
            ("cold", cold(block, precond, slice, auto)),
            ("warm", warm(block, precond, slice, auto)),
        ] {
            let name = format!("{sweep_kind}_8_energies{tag}");
            let _warmup = run_sweep(&h, &energies, config);
            // Three timed runs, keeping the fastest (result, wall and
            // trace report travel together, so the attribution columns
            // stay consistent with the emitted wall clock).  The solver
            // counters are bit-deterministic, so the runs differ only by
            // scheduler noise — which the 10% auto gate in `bench_check`
            // is sensitive to.
            let timed_run = || {
                let session = trace_path.as_ref().and_then(|_| {
                    cbs_trace::TraceSession::begin(cbs_trace::TraceLevel::from_env())
                });
                let t = Instant::now();
                let result = run_sweep(&h, &energies, config);
                let wall = t.elapsed().as_secs_f64();
                (result, wall, session.map(cbs_trace::TraceSession::finish))
            };
            let mut best = timed_run();
            for _ in 0..2 {
                let next = timed_run();
                if next.1 < best.1 {
                    best = next;
                }
            }
            let (result, wall_seconds, report) = best;
            if let Some(report) = report {
                if name == "cold_8_energies" {
                    let path = trace_path.as_ref().expect("report implies a trace path");
                    match report.save_chrome_trace(path) {
                        Ok(()) => println!("wrote {}", path.display()),
                        Err(e) => eprintln!("could not write {}: {e}", path.display()),
                    }
                }
            }
            rows.push(BenchRow {
                name,
                sweep: sweep_kind,
                block,
                precond,
                slice,
                wall_seconds,
                result,
            });
        }
    }
    emit_bench_json(&rows);
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
