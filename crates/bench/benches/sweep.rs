//! Criterion benchmarks of the `cbs-sweep` orchestrator: the same small
//! Al(100) multi-energy scan run cold (flat pool, no seeding — the
//! per-energy-loop equivalent) and warm-started (dyadic wavefront with
//! cross-energy BiCG seeding), each under both job granularities
//! (`BlockPolicy::PerNode` fused block solves vs `BlockPolicy::PerRhs`
//! single-vector solves).  The committed baseline lives in
//! `baselines/sweep_cbs.json`; regenerate with
//!
//! ```sh
//! CRITERION_JSON=$PWD/crates/bench/baselines/sweep_cbs.json \
//!     cargo bench -p cbs-bench --bench sweep
//! ```

use cbs_core::{BlockPolicy, SsConfig};
use cbs_dft::{bulk_al_100, grid_for_structure, BlockHamiltonian, HamiltonianParams};
use cbs_parallel::SerialExecutor;
use cbs_sweep::{sweep_cbs, SweepConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn small_hamiltonian() -> BlockHamiltonian {
    let s = bulk_al_100(1);
    let grid = grid_for_structure(&s, 1.1);
    BlockHamiltonian::build(grid, &s, HamiltonianParams::default())
}

fn bench_sweep(c: &mut Criterion) {
    let h = small_hamiltonian();
    let h00 = h.h00();
    let h01 = h.h01();
    let energies: Vec<f64> = (0..8).map(|i| 0.05 + 0.02 * i as f64).collect();
    let ss = |block: BlockPolicy| SsConfig {
        n_int: 8,
        n_mm: 4,
        n_rh: 4,
        bicg_max_iterations: 400,
        block,
        ..SsConfig::small()
    };

    let mut group = c.benchmark_group("sweep_cbs");
    group.sample_size(10);
    for (policy, tag) in [(BlockPolicy::PerNode, ""), (BlockPolicy::PerRhs, "_per_rhs")] {
        group.bench_function(&format!("cold_8_energies{tag}"), |b| {
            let config = SweepConfig::cold(ss(policy));
            b.iter(|| sweep_cbs(&h00, &h01, h.period(), &energies, &config, &SerialExecutor));
        });
        group.bench_function(&format!("warm_8_energies{tag}"), |b| {
            let config = SweepConfig { initial_round: 2, ..SweepConfig::new(ss(policy)) };
            b.iter(|| sweep_cbs(&h00, &h01, h.period(), &energies, &config, &SerialExecutor));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
