//! # cbs-bench
//!
//! The experiment harness: one binary per table/figure of the paper (under
//! `src/bin/`), Criterion microbenchmarks for the hot kernels (under
//! `benches/`), and the shared system-construction / reporting code they all
//! use.
//!
//! Resolution is controlled by the `CBS_SCALE` environment variable
//! (`CBS_SCALE=1.0` reproduces the paper's 0.2 Å grids; the default 0.45
//! uses coarser grids suitable for a single core — see `EXPERIMENTS.md`).

#![warn(missing_docs)]

pub mod experiments;
pub mod systems;
