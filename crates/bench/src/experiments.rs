//! One function per paper table/figure; the `src/bin/*` harness binaries are
//! thin wrappers around these.  Every function prints a plain-text table to
//! stdout in the same layout as the corresponding figure/table of the paper
//! and returns the key numbers so integration tests can assert on them.

use cbs_core::{
    solve_qep_sliced_with, solve_qep_with, BlockPolicy, PrecondPolicy, QepProblem, SlicePolicy,
    SsConfig, SsResult,
};
use cbs_dft::{band_structure, BlockHamiltonian};
use cbs_linalg::Complex64;
use cbs_obm::{obm_solve, ObmConfig};
use cbs_parallel::{
    measure_bicg_iteration_cost, ExecutorChoice, MachineModel, ParallelLayout, PerformanceModel,
    RayonExecutor, ScalingLayer, SerialExecutor, WorkloadModel,
};
use cbs_sparse::{AssembledPattern, LinearOperator};
use cbs_sweep::{EnergySweep, SweepConfig, SweepResult};

use crate::systems::{self, BenchSystem};

/// Solve one QEP through the shifted-solve engine, with the executor chosen
/// by the `CBS_EXECUTOR` environment variable (`serial` default, `rayon`
/// for the threaded fan-out), the job granularity by `CBS_BLOCK`
/// (`per-node` block solves by default, `per-rhs` reverts to single-vector
/// jobs; the results are bit-identical whatever the combination) and the
/// operator representation by `CBS_PRECOND` (`matrix-free` default,
/// `assembled` for the single-CSR fast path, `ilu0` to add the ILU(0)
/// preconditioner; the assembled policies need a pattern on the problem —
/// see [`env_pattern`]) and the contour partitioning by `CBS_SLICES`
/// (`single` default; `S` or `AxR` runs the sliced pipeline with merged
/// extraction).
pub fn solve_qep_env(problem: &QepProblem<'_>, config: &SsConfig) -> SsResult {
    let config = SsConfig {
        block: block_policy_env(config.block),
        precond: precond_policy_env(config.precond),
        slice: slice_policy_env(config.slice),
        ..*config
    };
    match (ExecutorChoice::from_env("CBS_EXECUTOR"), config.slice.is_single()) {
        (ExecutorChoice::Serial, true) => solve_qep_with(problem, &config, &SerialExecutor),
        (ExecutorChoice::Rayon, true) => solve_qep_with(problem, &config, &RayonExecutor),
        (ExecutorChoice::Serial, false) => solve_qep_sliced_with(problem, &config, &SerialExecutor),
        (ExecutorChoice::Rayon, false) => solve_qep_sliced_with(problem, &config, &RayonExecutor),
    }
}

/// Energy-sweep twin of [`solve_qep_env`], running through the `cbs-sweep`
/// orchestrator: the energies of each release round share one flattened
/// task pool and (unless `CBS_SWEEP=cold`) each energy's solves are
/// warm-started from the nearest completed neighbour.  `CBS_SWEEP=cold`
/// reproduces the per-energy `compute_cbs` loop bit for bit.  Under an
/// assembled `CBS_PRECOND` policy the Hamiltonian's `qep_pattern` is built
/// once and shared across the whole sweep.
pub fn compute_cbs_env(h: &BlockHamiltonian, energies: &[f64], config: &SsConfig) -> SweepResult {
    let config = SsConfig {
        block: block_policy_env(config.block),
        precond: precond_policy_env(config.precond),
        slice: slice_policy_env(config.slice),
        ..*config
    };
    let sweep_config = match cbs_trace::knob("CBS_SWEEP") {
        Some(SweepMode::Cold) => SweepConfig::cold(config),
        Some(SweepMode::Warm) | None => SweepConfig::new(config),
    };
    let h00 = h.h00();
    let h01 = h.h01();
    let mut sweep = EnergySweep::new(&h00, &h01, h.period(), sweep_config);
    if config.precond.is_assembled() {
        sweep = sweep.with_pattern(h.qep_pattern());
    }
    match ExecutorChoice::from_env("CBS_EXECUTOR") {
        ExecutorChoice::Serial => sweep.run(energies, &SerialExecutor),
        ExecutorChoice::Rayon => sweep.run(energies, &RayonExecutor),
    }
}

fn ss_config() -> SsConfig {
    SsConfig {
        n_int: 32,
        n_mm: 8,
        n_rh: env_usize("CBS_NRH", 8),
        bicg_tolerance: 1e-10,
        residual_cutoff: 1e-4,
        ..SsConfig::paper()
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    cbs_trace::knob(key).unwrap_or(default)
}

/// Warm-start mode of the bench energy sweeps (`CBS_SWEEP`).
enum SweepMode {
    /// Cross-energy warm starting on (the default).
    Warm,
    /// Every energy solves cold — bit-identical to the per-energy loop.
    Cold,
}

impl cbs_trace::Knob for SweepMode {
    fn parse_knob(value: &str) -> Option<Self> {
        if value.eq_ignore_ascii_case("cold") {
            Some(Self::Cold)
        } else if value.eq_ignore_ascii_case("warm") {
            Some(Self::Warm)
        } else {
            None
        }
    }
}

/// `CBS_BLOCK` overrides the configured job granularity only when it is
/// set to a *valid* policy name; unset (or malformed, which warns once)
/// keeps the caller's choice — it can no longer silently snap to the hard
/// default the way the old `from_name` fallback did.
fn block_policy_env(configured: BlockPolicy) -> BlockPolicy {
    cbs_trace::knob("CBS_BLOCK").unwrap_or(configured)
}

/// `CBS_PRECOND` overrides the configured operator representation /
/// preconditioning only when it is set to a valid policy name (same
/// keep-the-configured-value contract as [`block_policy_env`]).
fn precond_policy_env(configured: PrecondPolicy) -> PrecondPolicy {
    cbs_trace::knob("CBS_PRECOND").unwrap_or(configured)
}

/// `CBS_SLICES` overrides the configured contour partitioning only when it
/// is set to a valid policy name (same keep-the-configured-value contract
/// as [`block_policy_env`]).
fn slice_policy_env(configured: SlicePolicy) -> SlicePolicy {
    cbs_trace::knob("CBS_SLICES").unwrap_or(configured)
}

/// The assembled pattern a single-energy harness should attach to its
/// [`QepProblem`] given the env-resolved policy over the harness's
/// `configured` default: `Some` when the effective policy is assembled,
/// `None` (no assembly cost) under matrix-free.
pub fn env_pattern(h: &BlockHamiltonian, configured: PrecondPolicy) -> Option<AssembledPattern> {
    precond_policy_env(configured).is_assembled().then(|| h.qep_pattern())
}

/// Serial head-to-head of QEP/SS vs OBM on one system (one bar group of
/// Figure 4).  Returns `(ss_seconds, obm_seconds, ss_bytes, obm_bytes)`.
pub fn fig4_compare(sys: &BenchSystem) -> (f64, f64, usize, usize) {
    let h = &sys.hamiltonian;
    let energy = sys.fermi;
    let h00 = h.h00();
    let h01 = h.h01();
    let pattern = env_pattern(h, ss_config().precond);
    let mut problem = QepProblem::new(&h00, &h01, energy, h.period());
    if let Some(p) = &pattern {
        problem = problem.with_pattern(p);
    }

    let t0 = std::time::Instant::now(); // cbs-audit: allow(D002) reason="bench wall-clock: reported runtime statistic, never fingerprinted"
    let ss = solve_qep_env(&problem, &ss_config());
    let ss_seconds = t0.elapsed().as_secs_f64();
    // SS memory: sparse blocks + the moment/source workspace O(M N).
    let m_hat = ss_config().subspace_size();
    let ss_bytes = h.memory_bytes()
        + (2 * ss_config().n_mm * ss_config().n_rh + ss_config().n_rh) * h.dim() * 16
        + m_hat * m_hat * 16;

    let h00_csr = h.h00_csr();
    let h01_csr = h.h01_csr();
    let t1 = std::time::Instant::now(); // cbs-audit: allow(D002) reason="bench wall-clock: reported runtime statistic, never fingerprinted"
    let obm = obm_solve(&h00_csr, &h01_csr, energy, &ObmConfig::default());
    let obm_seconds = t1.elapsed().as_secs_f64();

    println!("-- {} (N = {}, E = {:.4} Ha) --", sys.name, h.dim(), energy);
    println!("   method    runtime [s]   memory [MB]   eigenvalues in annulus");
    println!(
        "   OBM       {:>10.3}   {:>10.3}   {}",
        obm_seconds,
        obm.memory_bytes as f64 / 1e6,
        obm.lambdas.len()
    );
    println!(
        "   QEP/SS    {:>10.3}   {:>10.3}   {}",
        ss_seconds,
        ss_bytes as f64 / 1e6,
        ss.eigenpairs.len()
    );
    println!(
        "   speed-up x{:.1}, memory reduction x{:.1}",
        obm_seconds / ss_seconds.max(1e-12),
        obm.memory_bytes as f64 / ss_bytes.max(1) as f64
    );
    (ss_seconds, obm_seconds, ss_bytes, obm.memory_bytes)
}

/// Table 1: cost breakdown of the proposed method for one system.
pub fn table1_breakdown(sys: &BenchSystem) -> (f64, f64, f64) {
    let h = &sys.hamiltonian;
    let t0 = std::time::Instant::now(); // cbs-audit: allow(D002) reason="bench wall-clock: reported runtime statistic, never fingerprinted"
    let h00 = h.h00();
    let h01 = h.h01();
    let pattern = env_pattern(h, ss_config().precond);
    let setup = t0.elapsed().as_secs_f64();
    let mut problem = QepProblem::new(&h00, &h01, sys.fermi, h.period());
    if let Some(p) = &pattern {
        problem = problem.with_pattern(p);
    }
    let ss = solve_qep_env(&problem, &ss_config());
    println!("-- {} --", sys.name);
    println!("   read/setup matrix data [s]   {:>10.3}", setup);
    println!("   solve linear equations [s]   {:>10.3}", ss.timings.linear_solve_seconds);
    println!("   extract eigenpairs     [s]   {:>10.3}", ss.timings.extraction_seconds);
    (setup, ss.timings.linear_solve_seconds, ss.timings.extraction_seconds)
}

/// Figure 5: BiCG residual histories at every quadrature point (first RHS).
/// Returns the iteration counts per quadrature point.
pub fn fig5_convergence(sys: &BenchSystem) -> Vec<usize> {
    let h = &sys.hamiltonian;
    let h00 = h.h00();
    let h01 = h.h01();
    let pattern = env_pattern(h, ss_config().precond);
    let mut problem = QepProblem::new(&h00, &h01, sys.fermi, h.period());
    if let Some(p) = &pattern {
        problem = problem.with_pattern(p);
    }
    let config = ss_config();
    let ss = solve_qep_env(&problem, &config);
    println!("-- {}: BiCG convergence at each quadrature point z_j --", sys.name);
    println!("   j   iterations   final residual");
    let mut iters = Vec::new();
    for j in 0..config.n_int {
        let hist = &ss.solve_histories[j * config.n_rh];
        iters.push(hist.iterations());
        println!("  {:>2}   {:>10}   {:.3e}", j, hist.iterations(), hist.final_residual());
    }
    let max = iters.iter().max().copied().unwrap_or(0);
    let min = iters.iter().min().copied().unwrap_or(0);
    println!("   spread: min {min}, max {max} (uniform convergence across z_j)");
    iters
}

/// Figure 6: real-k CBS solutions vs the conventional band structure.
/// Returns the worst absolute energy-distance of a propagating CBS point to
/// the reference bands (hartree).
pub fn fig6_cbs_vs_bands(sys: &BenchSystem, n_energies: usize) -> f64 {
    let h = &sys.hamiltonian;
    let bands = band_structure(h, 21, 40.min(h.dim()));
    let (emin, emax) = (sys.fermi - 0.15, sys.fermi + 0.15);
    let energies: Vec<f64> = (0..n_energies)
        .map(|i| emin + (emax - emin) * i as f64 / (n_energies - 1).max(1) as f64)
        .collect();
    let run = compute_cbs_env(h, &energies, &ss_config());
    println!("-- {}: complex band structure --", sys.name);
    println!("   E [Ha]      Re k [1/bohr]   Im k [1/bohr]   |λ|        type");
    let mut worst = 0.0f64;
    for p in &run.cbs.points {
        let kind = if p.propagating { "propagating" } else { "evanescent" };
        println!(
            "   {:>8.4}   {:>12.6}   {:>12.6}   {:>8.5}   {}",
            p.energy,
            p.k_re,
            p.k_im,
            p.lambda.abs(),
            kind
        );
        if p.propagating {
            worst = worst.max(bands.distance_to_bands(p.k_re.abs(), p.energy));
        }
    }
    println!(
        "   propagating states: {}, evanescent: {}",
        run.cbs.propagating().count(),
        run.cbs.evanescent().count()
    );
    println!(
        "   BiCG iterations: {} total ({} warm-started over {} solves, {} cold over {})",
        run.stats.total_bicg_iterations,
        run.stats.warm_bicg_iterations,
        run.stats.warm_started_solves,
        run.stats.cold_bicg_iterations,
        run.stats.cold_solves,
    );
    println!("   worst distance of a real-k solution to the reference bands: {worst:.2e} Ha");
    worst
}

/// Calibrate a performance model from a real measurement on `sys`.
pub fn calibrated_model(sys: &BenchSystem, n_rh: usize, bicg_iterations: f64) -> PerformanceModel {
    let h = &sys.hamiltonian;
    let h00 = h.h00();
    let h01 = h.h01();
    let problem = QepProblem::new(&h00, &h01, sys.fermi, h.period());
    let contour = ss_config().contour();
    let z = contour.outer_points()[0].z;
    let op = problem.operator(z);
    let iters = 50;
    let seconds = measure_bicg_iteration_cost(&op, iters, 99);
    let per_point = seconds / (iters as f64 * h.dim() as f64);
    PerformanceModel {
        machine: MachineModel::oakforest_pacs(),
        workload: WorkloadModel {
            dimension: h.dim(),
            nnz_per_row: h.nnz() as f64 / h.dim() as f64,
            plane_size: h.grid.nx * h.grid.ny,
            nf: h.fd.nf,
            n_int: 32,
            n_rh,
            bicg_iterations,
            seconds_per_point_iteration: per_point,
            convergence_spread: 0.2,
        },
    }
}

/// Figures 8-10: strong scaling of one layer.  Prints measured-calibration
/// information plus the model prediction and returns `(processes, speedup)`.
pub fn scaling_figure(
    model: &PerformanceModel,
    label: &str,
    base: ParallelLayout,
    layer: ScalingLayer,
    counts: &[usize],
) -> Vec<(usize, f64)> {
    println!("-- {label}: strong scaling of the {:?} layer (performance model) --", layer);
    println!("   processes   time [s]    speed-up   ideal");
    let sweep = model.scaling_sweep(base, layer, counts);
    let mut out = Vec::new();
    for (i, &(p, t, s)) in sweep.iter().enumerate() {
        let ideal = p as f64 / sweep[0].0 as f64;
        println!("   {:>9}   {:>9.2}   {:>8.2}   {:>5.1}", p, t, s, ideal);
        let _ = i;
        out.push((p, s));
    }
    out
}

/// Table 2: intra-node split between threads and domains at a fixed core
/// count.  Returns `(threads, domains, seconds)` rows.
pub fn table2_intranode(model: &PerformanceModel, label: &str) -> Vec<(usize, usize, f64)> {
    println!("-- Table 2 ({label}): 1000 BiCG iterations on 64 cores --");
    println!("   #OpenMP   #N_dm   elapsed [s] (model)");
    let mut rows = Vec::new();
    for &(t, d) in &[(1usize, 64usize), (2, 32), (4, 16), (8, 8), (16, 4), (32, 2), (64, 1)] {
        let secs = model.intranode_time(t, d, 1000.0);
        println!("   {:>7}   {:>5}   {:>10.3}", t, d, secs);
        rows.push((t, d, secs));
    }
    let best = rows.iter().min_by(|a, b| a.2.partial_cmp(&b.2).unwrap()).unwrap();
    println!("   best split: {} threads x {} domains", best.0, best.1);
    rows
}

/// Figure 11: CBS of the isolated tube and the bundles around the Fermi
/// energy.  Returns the number of propagating channels found per system.
pub fn fig11_bundles(n_energies: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for sys in [systems::cnt80(), systems::crystalline_bundle_system()] {
        let h = &sys.hamiltonian;
        let energies: Vec<f64> = (0..n_energies)
            .map(|i| sys.fermi - 0.037 + 0.074 * i as f64 / (n_energies - 1).max(1) as f64)
            .collect();
        let config = SsConfig { n_rh: 4, ..ss_config() };
        let run = compute_cbs_env(h, &energies, &config);
        let channels = run.cbs.propagating().count();
        println!(
            "-- {}: {} atoms, {} propagating / {} evanescent states over {} energies --",
            sys.name,
            sys.structure.natoms(),
            channels,
            run.cbs.evanescent().count(),
            n_energies
        );
        println!(
            "   sweep: {} BiCG iterations ({} warm / {} cold)",
            run.stats.total_bicg_iterations,
            run.stats.warm_bicg_iterations,
            run.stats.cold_bicg_iterations,
        );
        out.push((sys.name.clone(), channels));
    }
    out
}

/// Helper shared by fig4/fig5/table1 binaries: the two serial-test systems.
pub fn serial_systems() -> Vec<BenchSystem> {
    vec![systems::al100(), systems::cnt66()]
}

/// Report a QEP operator's memory next to the dense equivalent (sanity print
/// used by several binaries).
pub fn memory_summary(sys: &BenchSystem) {
    let h = &sys.hamiltonian;
    let dense = h.dim() * h.dim() * std::mem::size_of::<Complex64>();
    println!(
        "   {}: sparse blocks {:.2} MB vs dense {:.2} MB ({} grid points)",
        sys.name,
        h.memory_bytes() as f64 / 1e6,
        dense as f64 / 1e6,
        h.dim()
    );
    let _ = h.h00().memory_bytes();
}
