//! Construction of the paper's test systems at a configurable resolution.
//!
//! The paper uses a 0.2 Å (≈ 0.38 bohr) grid; on a single core that is not
//! practical for the full experiment matrix, so every harness binary accepts
//! a `CBS_SCALE` environment variable: `1.0` reproduces the paper's grids,
//! the default `0.45` uses a coarser grid that preserves every code path and
//! the qualitative comparisons while keeping runtimes in seconds/minutes.

use cbs_dft::{
    bn_dope, bulk_al_100, bundle7, carbon_nanotube, crystalline_bundle, fermi_energy,
    grid_for_structure, supercell_z, AtomicStructure, BlockHamiltonian, HamiltonianParams,
};
use cbs_grid::FdOrder;

/// Paper grid spacing: 0.2 angstrom in bohr.
pub const PAPER_SPACING_BOHR: f64 = 0.2 * 1.889_725_988_6;

/// Resolution scale factor read from `CBS_SCALE` (1.0 = paper resolution);
/// values outside `(0.05, 1.0]` are rejected like malformed ones.
pub fn scale_factor() -> f64 {
    cbs_trace::knob::<f64>("CBS_SCALE").filter(|&v| v > 0.05 && v <= 1.0).unwrap_or(0.45)
}

/// Grid spacing implied by the current scale factor (coarser than the paper
/// for scale < 1).
pub fn spacing() -> f64 {
    PAPER_SPACING_BOHR / scale_factor()
}

/// A named, discretized system ready for the eigensolvers.
pub struct BenchSystem {
    /// Human-readable name matching the paper's tables.
    pub name: String,
    /// The atomic structure.
    pub structure: AtomicStructure,
    /// The assembled Hamiltonian blocks.
    pub hamiltonian: BlockHamiltonian,
    /// Estimated Fermi energy (hartree).
    pub fermi: f64,
}

fn build(structure: AtomicStructure, fd: FdOrder, estimate_fermi: bool) -> BenchSystem {
    let grid = grid_for_structure(&structure, spacing());
    let hamiltonian =
        BlockHamiltonian::build(grid, &structure, HamiltonianParams { fd, include_nonlocal: true });
    let fermi = if estimate_fermi && grid.npoints() <= 600 {
        fermi_energy(&hamiltonian, structure.valence_electrons(), 3)
    } else {
        // Mid-band heuristic for systems too large for the dense reference.
        0.2
    };
    BenchSystem { name: structure.name.clone(), structure, hamiltonian, fermi }
}

/// Bulk Al(100), 4 atoms per cell (paper §4.1).
pub fn al100() -> BenchSystem {
    build(bulk_al_100(1), FdOrder::PAPER, true)
}

/// (6,6) armchair CNT, 24 atoms per cell (paper §4.1).
pub fn cnt66() -> BenchSystem {
    build(carbon_nanotube(6, 6, 5.0), FdOrder::PAPER, true)
}

/// Pristine (8,0) zigzag CNT, 32 atoms per cell (paper §4.2.1).
pub fn cnt80() -> BenchSystem {
    build(carbon_nanotube(8, 0, 5.0), FdOrder::PAPER, true)
}

/// BN-doped (8,0) CNT with `repeats * 32` atoms (paper §4.2.2-4.2.3 uses 32
/// and 320 repeats for 1024 / 10240 atoms).
pub fn bn_doped_cnt(repeats: usize) -> AtomicStructure {
    let base = carbon_nanotube(8, 0, 5.0);
    let sc = supercell_z(&base, repeats);
    bn_dope(&sc, sc.natoms() / 16, 12345)
}

/// The 7-tube bundle of the application section (paper §5).
pub fn bundle7_system() -> BenchSystem {
    build(bundle7(8, 0, 5.0), FdOrder::PAPER, false)
}

/// The crystalline bundle (two tubes per cell) of the application section.
pub fn crystalline_bundle_system() -> BenchSystem {
    build(crystalline_bundle(8, 0), FdOrder::PAPER, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factor_is_sane() {
        let s = scale_factor();
        assert!(s > 0.0 && s <= 1.0);
        assert!(spacing() >= PAPER_SPACING_BOHR);
    }

    #[test]
    fn al_system_builds() {
        let sys = al100();
        assert_eq!(sys.structure.natoms(), 4);
        assert!(sys.hamiltonian.dim() > 0);
        assert!(sys.fermi.is_finite());
    }

    #[test]
    fn doped_supercell_counts() {
        let s = bn_doped_cnt(4);
        assert_eq!(s.natoms(), 128);
    }
}
