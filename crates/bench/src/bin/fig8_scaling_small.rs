//! Figure 8: strong scaling of the three parallel layers, (8,0) CNT, 32 atoms.
use cbs_parallel::{ParallelLayout, ScalingLayer};
fn main() {
    println!("=== Figure 8: three-layer strong scaling, (8,0) CNT (32 atoms) ===");
    let sys = cbs_bench::systems::cnt80();
    let model = cbs_bench::experiments::calibrated_model(&sys, 64, 400.0);
    println!(
        "calibrated per-point BiCG iteration cost: {:.3e} s",
        model.workload.seconds_per_point_iteration
    );
    let base =
        ParallelLayout { rhs_groups: 1, quadrature_groups: 2, domains: 1, threads_per_process: 68 };
    cbs_bench::experiments::scaling_figure(
        &model,
        "Fig 8(a)",
        base,
        ScalingLayer::RightHandSides,
        &[1, 2, 4, 8, 16, 32, 64],
    );
    let base =
        ParallelLayout { rhs_groups: 2, quadrature_groups: 1, domains: 1, threads_per_process: 68 };
    cbs_bench::experiments::scaling_figure(
        &model,
        "Fig 8(b)",
        base,
        ScalingLayer::Quadrature,
        &[1, 2, 4, 8, 16, 32],
    );
    let base =
        ParallelLayout { rhs_groups: 1, quadrature_groups: 2, domains: 1, threads_per_process: 68 };
    cbs_bench::experiments::scaling_figure(
        &model,
        "Fig 8(c)",
        base,
        ScalingLayer::Domain,
        &[1, 2, 4, 8, 16],
    );
}
