//! CI well-formedness gate for the Chrome trace-event JSON that the sweep
//! bench exports under `CBS_TRACE` (see `cbs-trace`'s hand-rolled writer).
//!
//! ```sh
//! trace_check <trace.json> [BENCH_sweep.json]
//! ```
//!
//! The first pass checks the structural contract of the writer: one
//! `traceEvents` array of flat objects, every event phase in `{M, X, i}`,
//! every event name drawn from the known stage / metadata / iteration set,
//! `ts`/`dur` parsable and non-negative, and timestamps monotone
//! non-decreasing in file order (the writer pre-sorts).  With the optional
//! second argument, a second pass re-aggregates the `X` spans into
//! per-stage merged-interval wall-ns and cross-checks them against the
//! `kernel_wall_ns` / `precond_wall_ns` / `extraction_wall_ns` columns of
//! the `cold_8_energies` row — the trace file and the stats table are two
//! exports of the same session, so they must agree (within 5%, with an
//! absolute floor for sub-millisecond stages).
//!
//! Like `bench_check`, the parser is a deliberate hand-rolled scanner: the
//! workspace vendors no JSON reader, and the event stream is flat enough
//! that a brace-depth splitter is exact.

use std::process::ExitCode;

/// Event names the `cbs-trace` Chrome writer may emit.
const KNOWN_NAMES: [&str; 10] = [
    "assemble",
    "ilu_factor",
    "tri_sweep",
    "kernel",
    "solve",
    "extraction",
    "merge",
    "bicg_iter",
    "process_name",
    "thread_name",
];

/// Stage names valid for `"ph": "X"` (complete span) events.
const SPAN_NAMES: [&str; 7] =
    ["assemble", "ilu_factor", "tri_sweep", "kernel", "solve", "extraction", "merge"];

/// Relative tolerance for the trace-vs-stats cross-check.
const CROSS_TOLERANCE: f64 = 0.05;

/// Absolute floor (ns) below which the relative cross-check is skipped —
/// sub-millisecond stages are dominated by clock-read granularity.
const CROSS_FLOOR_NS: f64 = 1e6;

/// Per-span-name interval lists (ns), the cross-check pass's input.
type StageIntervals = Vec<(String, Vec<(u64, u64)>)>;

/// Split the contents of a JSON array into its top-level `{...}` objects by
/// brace depth (string-aware, so names containing braces cannot confuse it).
fn split_events(array_body: &str) -> Vec<&str> {
    let mut events = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in array_body.char_indices() {
        if in_string {
            match c {
                _ if escaped => escaped = false,
                '\\' => escaped = true,
                '"' => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                if depth == 0 {
                    start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = start.take() {
                        events.push(&array_body[s..=i]);
                    }
                }
            }
            _ => {}
        }
    }
    events
}

/// Extract a `"key": "value"` string member from one event's text.
fn field_str<'a>(event: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let at = event.find(&pat)?;
    let rest = &event[at + pat.len()..];
    rest.find('"').map(|end| &rest[..end])
}

/// Extract a numeric member from one event's text.
fn field_f64(event: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let at = event.find(&pat)?;
    let rest = &event[at + pat.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Length of the union of `[start, end)` intervals, in ns.
fn merged_length_ns(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in intervals {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

/// Validate the trace file; on success return the per-span-name interval
/// lists (ns) for the cross-check pass.
fn check_trace(text: &str) -> Result<StageIntervals, String> {
    let array_start =
        text.find("\"traceEvents\": [").ok_or_else(|| "no \"traceEvents\" array".to_string())?;
    let body_start = array_start + "\"traceEvents\": [".len();
    let body_end = text.rfind(']').ok_or_else(|| "unterminated traceEvents array".to_string())?;
    if body_end < body_start {
        return Err("malformed traceEvents array".to_string());
    }
    let events = split_events(&text[body_start..body_end]);
    if events.is_empty() {
        return Err("traceEvents array holds no events".to_string());
    }

    let mut spans: StageIntervals = Vec::new();
    let mut last_ts = f64::NEG_INFINITY;
    let mut n_spans = 0usize;
    for (i, event) in events.iter().enumerate() {
        let ph = field_str(event, "ph").ok_or_else(|| format!("event {i}: missing \"ph\""))?;
        let name = field_str(event, "name").ok_or_else(|| format!("event {i}: missing name"))?;
        if !KNOWN_NAMES.contains(&name) {
            return Err(format!("event {i}: unknown event name {name:?}"));
        }
        match ph {
            "M" => {
                if name != "process_name" && name != "thread_name" {
                    return Err(format!("event {i}: metadata event named {name:?}"));
                }
                continue; // metadata carries no timestamp
            }
            "X" | "i" => {}
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
        let ts = field_f64(event, "ts")
            .filter(|t| t.is_finite() && *t >= 0.0)
            .ok_or_else(|| format!("event {i}: missing or negative \"ts\""))?;
        if ts < last_ts {
            return Err(format!("event {i}: timestamp {ts} us regresses below {last_ts} us"));
        }
        last_ts = ts;
        if ph == "i" {
            if name != "bicg_iter" {
                return Err(format!("event {i}: instant event named {name:?}"));
            }
            field_f64(event, "residual")
                .ok_or_else(|| format!("event {i}: bicg_iter without residual"))?;
            continue;
        }
        if !SPAN_NAMES.contains(&name) {
            return Err(format!("event {i}: span event named {name:?}"));
        }
        let dur = field_f64(event, "dur")
            .filter(|d| d.is_finite() && *d >= 0.0)
            .ok_or_else(|| format!("event {i}: missing or negative \"dur\""))?;
        n_spans += 1;
        let start = (ts * 1000.0).round() as u64;
        let end = start + (dur * 1000.0).round() as u64;
        match spans.iter_mut().find(|(n, _)| n == name) {
            Some((_, list)) => list.push((start, end)),
            None => spans.push((name.to_string(), vec![(start, end)])),
        }
    }
    if n_spans == 0 {
        return Err("trace holds no span (ph=X) events".to_string());
    }
    println!("trace_check: {} events ({n_spans} spans) well-formed", events.len());
    Ok(spans)
}

/// Pull a `u64` column of the `cold_8_energies` row out of
/// `BENCH_sweep.json` (same flat row scan as `bench_check`).
fn bench_column(text: &str, column: &str) -> Option<u64> {
    let row_at = text.find("\"name\": \"cold_8_energies\"")?;
    let row = &text[row_at..];
    let row = &row[..row.find('\n').unwrap_or(row.len())];
    let pat = format!("\"{column}\": ");
    let at = row.find(&pat)?;
    let rest = &row[at + pat.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Cross-check trace-derived per-stage wall-ns against the stats columns.
fn cross_check(spans: &[(String, Vec<(u64, u64)>)], bench_text: &str) -> Result<(), String> {
    let wall = |stage: &str| {
        spans.iter().find(|(n, _)| n == stage).map_or(0, |(_, list)| merged_length_ns(list.clone()))
    };
    // `precond_wall_ns` is the *sum* of the two per-stage unions (the stats
    // layer sums `wall(IluFactor) + wall(TriSweep)`), not a joint union.
    let pairs = [
        ("kernel_wall_ns", wall("kernel")),
        ("precond_wall_ns", wall("ilu_factor") + wall("tri_sweep")),
        ("extraction_wall_ns", wall("extraction")),
    ];
    let traced = bench_column(bench_text, "kernel_wall_ns").is_some_and(|v| v > 0);
    if !traced {
        println!("trace_check: bench row carries no traced wall columns; skipping cross-check");
        return Ok(());
    }
    for (column, from_trace) in pairs {
        let from_bench = bench_column(bench_text, column)
            .ok_or_else(|| format!("bench row lacks column {column:?}"))?;
        let hi = from_trace.max(from_bench) as f64;
        let lo = from_trace.min(from_bench) as f64;
        if hi < CROSS_FLOOR_NS {
            println!("  ok   {column}: {from_bench} ns vs {from_trace} ns (below floor)");
            continue;
        }
        let gap = (hi - lo) / hi;
        if gap > CROSS_TOLERANCE {
            return Err(format!(
                "{column}: bench reports {from_bench} ns but the trace aggregates to \
                 {from_trace} ns ({:.1}% apart)",
                100.0 * gap
            ));
        }
        println!("  ok   {column}: {from_bench} ns vs {from_trace} ns ({:.1}%)", 100.0 * gap);
    }
    println!("trace_check: trace aggregation matches bench stage columns");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (trace_path, bench_path) = match &args[..] {
        [_, trace] => (trace, None),
        [_, trace, bench] => (trace, Some(bench)),
        _ => {
            eprintln!("usage: trace_check <trace.json> [BENCH_sweep.json]");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(trace_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace_check: cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spans = match check_trace(&text) {
        Ok(spans) => spans,
        Err(e) => {
            eprintln!("trace_check: {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(bench_path) = bench_path {
        let bench_text = match std::fs::read_to_string(bench_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("trace_check: cannot read {bench_path}: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = cross_check(&spans, &bench_text) {
            eprintln!("trace_check: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
