//! Figure 9: strong scaling for the BN-doped (8,0) CNT with 1024 atoms.
use cbs_parallel::{ParallelLayout, ScalingLayer};
fn main() {
    println!("=== Figure 9: three-layer strong scaling, BN-doped (8,0) CNT (1024 atoms) ===");
    let sys = cbs_bench::systems::cnt80();
    let mut model = cbs_bench::experiments::calibrated_model(&sys, 16, 2000.0);
    // The 1024-atom supercell is 32 repeats of the 32-atom cell along z.
    model.workload.dimension = sys.hamiltonian.dim() * 32;
    println!("modelled dimension: {} grid points", model.workload.dimension);
    let base = ParallelLayout {
        rhs_groups: 1,
        quadrature_groups: 32,
        domains: 4,
        threads_per_process: 17,
    };
    cbs_bench::experiments::scaling_figure(
        &model,
        "Fig 9(a)",
        base,
        ScalingLayer::RightHandSides,
        &[1, 2, 4, 8, 16],
    );
    let base = ParallelLayout {
        rhs_groups: 16,
        quadrature_groups: 1,
        domains: 4,
        threads_per_process: 17,
    };
    cbs_bench::experiments::scaling_figure(
        &model,
        "Fig 9(b)",
        base,
        ScalingLayer::Quadrature,
        &[1, 2, 4, 8, 16, 32],
    );
    let base = ParallelLayout {
        rhs_groups: 16,
        quadrature_groups: 32,
        domains: 1,
        threads_per_process: 17,
    };
    cbs_bench::experiments::scaling_figure(
        &model,
        "Fig 9(c)",
        base,
        ScalingLayer::Domain,
        &[1, 2, 4, 8, 16],
    );
}
