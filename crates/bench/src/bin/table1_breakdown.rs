//! Table 1: breakdown of the computational cost of the proposed method.
fn main() {
    println!("=== Table 1: cost breakdown of the QEP/SS method ===");
    for sys in cbs_bench::experiments::serial_systems() {
        cbs_bench::experiments::table1_breakdown(&sys);
    }
}
