//! Figure 4: serial runtime and memory usage, OBM vs QEP/Sakurai-Sugiura,
//! for bulk Al(100) and the (6,6) CNT at E = EF.
fn main() {
    println!("=== Figure 4: serial performance, OBM vs QEP/SS ===");
    println!("(grid scale factor CBS_SCALE = {})", cbs_bench::systems::scale_factor());
    for sys in cbs_bench::experiments::serial_systems() {
        cbs_bench::experiments::fig4_compare(&sys);
    }
}
