//! Figure 6: complex band structure vs conventional band structure for
//! Al(100) and the (6,6) CNT.
fn main() {
    println!("=== Figure 6: CBS vs conventional band structure ===");
    let n_energies: usize = cbs_trace::knob("CBS_ENERGIES").unwrap_or(12);
    for sys in cbs_bench::experiments::serial_systems() {
        cbs_bench::experiments::fig6_cbs_vs_bands(&sys, n_energies);
    }
}
