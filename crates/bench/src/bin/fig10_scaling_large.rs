//! Figure 10: middle/bottom-layer scaling for the 10240-atom BN-doped CNT.
use cbs_parallel::{ParallelLayout, ScalingLayer};
fn main() {
    println!("=== Figure 10: scaling, BN-doped (8,0) CNT (10240 atoms) ===");
    let sys = cbs_bench::systems::cnt80();
    let mut model = cbs_bench::experiments::calibrated_model(&sys, 16, 6000.0);
    model.workload.dimension = sys.hamiltonian.dim() * 320;
    println!("modelled dimension: {} grid points", model.workload.dimension);
    let base = ParallelLayout {
        rhs_groups: 16,
        quadrature_groups: 1,
        domains: 64,
        threads_per_process: 4,
    };
    cbs_bench::experiments::scaling_figure(
        &model,
        "Fig 10(a)",
        base,
        ScalingLayer::Quadrature,
        &[1, 2, 4, 8, 16, 32],
    );
    let base = ParallelLayout {
        rhs_groups: 16,
        quadrature_groups: 32,
        domains: 1,
        threads_per_process: 4,
    };
    cbs_bench::experiments::scaling_figure(
        &model,
        "Fig 10(b)",
        base,
        ScalingLayer::Domain,
        &[2, 4, 8, 16, 32, 64],
    );
}
