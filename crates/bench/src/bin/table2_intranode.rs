//! Table 2: elapsed time of 1000 BiCG iterations when 64 cores are split
//! between OpenMP threads and bottom-layer domains.
fn main() {
    println!("=== Table 2: intra-node thread / domain split ===");
    let small = cbs_bench::systems::cnt80();
    let model = cbs_bench::experiments::calibrated_model(&small, 1, 1000.0);
    cbs_bench::experiments::table2_intranode(&model, "(8,0) CNT, 32 atoms");
    let mut medium = model;
    medium.workload.dimension = small.hamiltonian.dim() * 32;
    cbs_bench::experiments::table2_intranode(&medium, "BN-doped (8,0) CNT, 1024 atoms");
    let mut large = model;
    large.workload.dimension = small.hamiltonian.dim() * 320;
    cbs_bench::experiments::table2_intranode(&large, "BN-doped (8,0) CNT, 10240 atoms");
}
