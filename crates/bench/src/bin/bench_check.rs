//! CI bench smoke gate: diff a freshly produced `BENCH_sweep.json` against
//! the committed copy and fail on wall-clock **ratio** regressions.
//!
//! Absolute wall times are machine-dependent, so the check normalises every
//! policy row by the matrix-free reference row of its own file
//! (`cold_8_energies`): `ratio = wall(row) / wall(reference)`.  Machine
//! speed cancels and what remains is the relative cost of each policy —
//! exactly the quantity the assembled/ILU perf work moves.  A row fails
//! when its candidate ratio exceeds the baseline ratio by more than 25%.
//!
//! ```sh
//! bench_check <baseline.json> <candidate.json>
//! ```
//!
//! When the candidate rows carry the traced wall-ns attribution columns
//! (`kernel_wall_ns` / `precond_wall_ns` / `extraction_wall_ns`, filled only
//! for runs recorded under `CBS_TRACE`), the check also enforces
//! **attribution sanity**: the span-merged stage wall time of a row must not
//! exceed the row's total wall clock by more than 5% — a cheap structural
//! invariant that catches double-counted or mis-clipped spans the moment
//! they appear.  Untraced rows (all wall columns zero) skip this gate.
//!
//! Traced ILU rows (`*ilu0*`) additionally pass a **preconditioner-share**
//! gate: the fraction of the row's wall clock attributed to ILU
//! factorization + triangular sweeps (`precond_wall_ns / wall`) must not
//! grow by more than 25% over the committed baseline — the quantity the
//! blocked/parallel sweep work moves.  Rows untraced on either side skip
//! the gate.
//!
//! Candidate files carrying auto-tuned rows (`*_auto`, written when the
//! bench matrix includes the `SsConfig::auto()` cell) pass an
//! **auto-tuning** gate: per sweep kind, the auto row's wall clock must
//! land within 10% of the best fixed row of the same kind *in the same
//! file* — the probe's prediction, probe cost included, may not leave more
//! than 10% on the table.  Files without auto rows skip the gate.
//!
//! The parser is a deliberate hand-rolled scanner (the workspace vendors no
//! JSON reader) that understands exactly the flat row format
//! `emit_bench_json` writes: one object per line with `"name"` and
//! `"wall_seconds"` fields.

use std::process::ExitCode;

/// Maximum tolerated relative growth of a policy row's wall-clock ratio.
const TOLERANCE: f64 = 0.25;

/// Headroom on the attribution gate: stage wall-ns may exceed the measured
/// wall clock by at most this fraction (clock-read jitter on short stages).
const ATTRIBUTION_SLACK: f64 = 0.05;

/// Maximum tolerated excess of an auto-tuned row's wall clock over the best
/// fixed row of the same sweep kind (same file, so machine speed cancels).
const AUTO_TOLERANCE: f64 = 0.10;

/// The row every other row is normalised against: cold matrix-free per-node.
const REFERENCE: &str = "cold_8_energies";

/// One parsed `BENCH_sweep.json` row.
struct Row {
    name: String,
    wall_seconds: f64,
    /// Sum of the traced stage wall-ns columns; zero on untraced rows and on
    /// baseline files written before those columns existed.
    attributed_wall_ns: u64,
    /// The traced preconditioner stage alone (ILU factorization +
    /// triangular sweeps), for the share gate on the ILU rows.
    precond_wall_ns: u64,
}

/// Extract a `u64` field from one row's text; missing fields read as zero so
/// pre-tracing baseline files stay parsable.
fn field_u64(row: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let Some(at) = row.find(&pat) else { return 0 };
    let rest = &row[at + pat.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().unwrap_or(0)
}

/// Extract the policy rows from the `BENCH_sweep.json` format.
fn parse_rows(text: &str) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find("\"name\": \"") {
        rest = &rest[start + "\"name\": \"".len()..];
        let Some(name_end) = rest.find('"') else { break };
        let name = rest[..name_end].to_string();
        let row_end = rest.find('\n').unwrap_or(rest.len());
        let row_text = &rest[..row_end];
        let Some(ws) = row_text.find("\"wall_seconds\": ") else { break };
        let num = &row_text[ws + "\"wall_seconds\": ".len()..];
        let num_end = num.find([',', '}']).unwrap_or(num.len());
        match num[..num_end].trim().parse::<f64>() {
            Ok(wall) if wall.is_finite() && wall > 0.0 => rows.push(Row {
                name,
                wall_seconds: wall,
                attributed_wall_ns: field_u64(row_text, "kernel_wall_ns")
                    + field_u64(row_text, "precond_wall_ns")
                    + field_u64(row_text, "extraction_wall_ns"),
                precond_wall_ns: field_u64(row_text, "precond_wall_ns"),
            }),
            _ => eprintln!("bench_check: skipping row {name:?} with unparsable wall_seconds"),
        }
    }
    rows
}

fn reference_wall(rows: &[Row], label: &str) -> Option<f64> {
    let wall = rows.iter().find(|r| r.name == REFERENCE).map(|r| r.wall_seconds);
    if wall.is_none() {
        eprintln!("bench_check: {label} file has no reference row {REFERENCE:?}");
    }
    wall
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, candidate_path] = &args[..] else {
        eprintln!("usage: bench_check <baseline.json> <candidate.json>");
        return ExitCode::from(2);
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(candidate)) = (read(baseline_path), read(candidate_path)) else {
        return ExitCode::from(2);
    };

    let base_rows = parse_rows(&baseline);
    let cand_rows = parse_rows(&candidate);
    let (Some(base_ref), Some(cand_ref)) =
        (reference_wall(&base_rows, "baseline"), reference_wall(&cand_rows, "candidate"))
    else {
        return ExitCode::from(2);
    };

    let mut failed = false;
    let mut compared = 0usize;
    for row in &cand_rows {
        let name = &row.name;
        let Some(base_wall) = base_rows.iter().find(|r| &r.name == name).map(|r| r.wall_seconds)
        else {
            println!("  new   {name}: no baseline row, skipping");
            continue;
        };
        compared += 1;
        let base_ratio = base_wall / base_ref;
        let cand_ratio = row.wall_seconds / cand_ref;
        let growth = cand_ratio / base_ratio - 1.0;
        let verdict = if growth > TOLERANCE {
            failed = true;
            "FAIL "
        } else {
            "ok   "
        };
        println!(
            "  {verdict}{name}: ratio {base_ratio:.3} -> {cand_ratio:.3} ({:+.1}%)",
            100.0 * growth
        );
    }
    if compared == 0 {
        eprintln!("bench_check: no comparable rows between the two files");
        return ExitCode::from(2);
    }

    // Attribution sanity on traced candidate rows: span-merged stage wall
    // time must fit inside the measured wall clock (plus slack).  Stage
    // spans run on disjoint code paths of the same solve, so a sum that
    // overshoots the wall clock means spans were double-counted or clipped
    // to the wrong window.
    for row in &cand_rows {
        if row.attributed_wall_ns == 0 {
            continue; // untraced run — nothing to check
        }
        let budget_ns = row.wall_seconds * 1e9 * (1.0 + ATTRIBUTION_SLACK);
        let share = row.attributed_wall_ns as f64 / (row.wall_seconds * 1e9);
        if row.attributed_wall_ns as f64 > budget_ns {
            failed = true;
            println!(
                "  FAIL {}: attributed stage wall {} ns is {:.1}% of the {:.6}s wall clock",
                row.name,
                row.attributed_wall_ns,
                100.0 * share,
                row.wall_seconds
            );
        } else {
            println!(
                "  ok   {}: stage attribution covers {:.1}% of wall clock",
                row.name,
                100.0 * share
            );
        }
    }
    // Preconditioner-share gate on the traced ILU rows: the blocked and
    // parallel triangular sweeps exist to shrink the share of wall clock
    // the ILU apply path consumes, so a candidate whose share grows more
    // than TOLERANCE over the committed baseline regresses exactly the
    // quantity this perf work tracks.  Untraced rows on either side (zero
    // precond_wall_ns) skip the gate.
    for row in cand_rows.iter().filter(|r| r.name.contains("ilu0")) {
        let Some(base) = base_rows.iter().find(|r| r.name == row.name) else { continue };
        if row.precond_wall_ns == 0 || base.precond_wall_ns == 0 {
            continue;
        }
        let base_share = base.precond_wall_ns as f64 / (base.wall_seconds * 1e9);
        let cand_share = row.precond_wall_ns as f64 / (row.wall_seconds * 1e9);
        let growth = cand_share / base_share - 1.0;
        let verdict = if growth > TOLERANCE {
            failed = true;
            "FAIL "
        } else {
            "ok   "
        };
        println!(
            "  {verdict}{}: precond share {:.1}% -> {:.1}% ({:+.1}%)",
            row.name,
            100.0 * base_share,
            100.0 * cand_share,
            100.0 * growth
        );
    }

    // Auto-tuning gate: the `_auto` row of each sweep kind must land within
    // AUTO_TOLERANCE of the best fixed row of the same kind in the same
    // candidate file.  Wall clocks from one file share the machine, so the
    // comparison needs no baseline normalisation; pre-auto files simply
    // have no `_auto` rows and skip the gate.
    for kind in ["cold", "warm"] {
        let auto_name = format!("{kind}_8_energies_auto");
        let Some(auto_row) = cand_rows.iter().find(|r| r.name == auto_name) else { continue };
        let best_fixed = cand_rows
            .iter()
            .filter(|r| r.name.starts_with(kind) && !r.name.ends_with("_auto"))
            .map(|r| r.wall_seconds)
            .fold(f64::INFINITY, f64::min);
        if !best_fixed.is_finite() {
            continue;
        }
        let excess = auto_row.wall_seconds / best_fixed - 1.0;
        let verdict = if excess > AUTO_TOLERANCE {
            failed = true;
            "FAIL "
        } else {
            "ok   "
        };
        println!(
            "  {verdict}{auto_name}: {:.6}s vs best fixed {:.6}s ({:+.1}%)",
            auto_row.wall_seconds,
            best_fixed,
            100.0 * excess
        );
    }

    if failed {
        eprintln!(
            "bench_check: ratio regression beyond {:.0}%, stage attribution beyond the wall \
             clock, or an auto-tuned row beyond {:.0}% of the best fixed cell",
            100.0 * TOLERANCE,
            100.0 * AUTO_TOLERANCE
        );
        ExitCode::FAILURE
    } else {
        println!("bench_check: all {compared} policy rows within {:.0}%", 100.0 * TOLERANCE);
        ExitCode::SUCCESS
    }
}
