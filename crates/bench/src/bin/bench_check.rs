//! CI bench smoke gate: diff a freshly produced `BENCH_sweep.json` against
//! the committed copy and fail on wall-clock **ratio** regressions.
//!
//! Absolute wall times are machine-dependent, so the check normalises every
//! policy row by the matrix-free reference row of its own file
//! (`cold_8_energies`): `ratio = wall(row) / wall(reference)`.  Machine
//! speed cancels and what remains is the relative cost of each policy —
//! exactly the quantity the assembled/ILU perf work moves.  A row fails
//! when its candidate ratio exceeds the baseline ratio by more than 25%.
//!
//! ```sh
//! bench_check <baseline.json> <candidate.json>
//! ```
//!
//! The parser is a deliberate hand-rolled scanner (the workspace vendors no
//! JSON reader) that understands exactly the flat row format
//! `emit_bench_json` writes: one object per line with `"name"` and
//! `"wall_seconds"` fields.

use std::process::ExitCode;

/// Maximum tolerated relative growth of a policy row's wall-clock ratio.
const TOLERANCE: f64 = 0.25;

/// The row every other row is normalised against: cold matrix-free per-node.
const REFERENCE: &str = "cold_8_energies";

/// Extract `(name, wall_seconds)` pairs from the `BENCH_sweep.json` format.
fn parse_rows(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find("\"name\": \"") {
        rest = &rest[start + "\"name\": \"".len()..];
        let Some(name_end) = rest.find('"') else { break };
        let name = rest[..name_end].to_string();
        let Some(ws) = rest.find("\"wall_seconds\": ") else { break };
        rest = &rest[ws + "\"wall_seconds\": ".len()..];
        let num_end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        match rest[..num_end].trim().parse::<f64>() {
            Ok(wall) if wall.is_finite() && wall > 0.0 => rows.push((name, wall)),
            _ => eprintln!("bench_check: skipping row {name:?} with unparsable wall_seconds"),
        }
    }
    rows
}

fn reference_wall(rows: &[(String, f64)], label: &str) -> Option<f64> {
    let wall = rows.iter().find(|(n, _)| n == REFERENCE).map(|&(_, w)| w);
    if wall.is_none() {
        eprintln!("bench_check: {label} file has no reference row {REFERENCE:?}");
    }
    wall
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, baseline_path, candidate_path] = &args[..] else {
        eprintln!("usage: bench_check <baseline.json> <candidate.json>");
        return ExitCode::from(2);
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(candidate)) = (read(baseline_path), read(candidate_path)) else {
        return ExitCode::from(2);
    };

    let base_rows = parse_rows(&baseline);
    let cand_rows = parse_rows(&candidate);
    let (Some(base_ref), Some(cand_ref)) =
        (reference_wall(&base_rows, "baseline"), reference_wall(&cand_rows, "candidate"))
    else {
        return ExitCode::from(2);
    };

    let mut failed = false;
    let mut compared = 0usize;
    for (name, cand_wall) in &cand_rows {
        let Some(&(_, base_wall)) = base_rows.iter().find(|(n, _)| n == name) else {
            println!("  new   {name}: no baseline row, skipping");
            continue;
        };
        compared += 1;
        let base_ratio = base_wall / base_ref;
        let cand_ratio = cand_wall / cand_ref;
        let growth = cand_ratio / base_ratio - 1.0;
        let verdict = if growth > TOLERANCE {
            failed = true;
            "FAIL "
        } else {
            "ok   "
        };
        println!(
            "  {verdict}{name}: ratio {base_ratio:.3} -> {cand_ratio:.3} ({:+.1}%)",
            100.0 * growth
        );
    }
    if compared == 0 {
        eprintln!("bench_check: no comparable rows between the two files");
        return ExitCode::from(2);
    }
    if failed {
        eprintln!(
            "bench_check: wall-clock ratio regression beyond {:.0}% on at least one policy row",
            100.0 * TOLERANCE
        );
        ExitCode::FAILURE
    } else {
        println!("bench_check: all {compared} policy rows within {:.0}%", 100.0 * TOLERANCE);
        ExitCode::SUCCESS
    }
}
