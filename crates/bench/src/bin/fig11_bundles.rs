//! Figure 11: complex band structures of the isolated (8,0) tube and the
//! crystalline bundle around the Fermi energy.
fn main() {
    println!("=== Figure 11: CBS of carbon-nanotube bundles ===");
    let n_energies: usize =
        std::env::var("CBS_ENERGIES").ok().and_then(|s| s.parse().ok()).unwrap_or(5);
    cbs_bench::experiments::fig11_bundles(n_energies);
}
