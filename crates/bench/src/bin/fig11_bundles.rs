//! Figure 11: complex band structures of the isolated (8,0) tube and the
//! crystalline bundle around the Fermi energy.
fn main() {
    println!("=== Figure 11: CBS of carbon-nanotube bundles ===");
    let n_energies: usize = cbs_trace::knob("CBS_ENERGIES").unwrap_or(5);
    cbs_bench::experiments::fig11_bundles(n_energies);
}
