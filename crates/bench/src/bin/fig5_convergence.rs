//! Figure 5: BiCG residual histories at every quadrature point z_j.
fn main() {
    println!("=== Figure 5: BiCG convergence behaviour per quadrature point ===");
    for sys in cbs_bench::experiments::serial_systems() {
        cbs_bench::experiments::fig5_convergence(&sys);
    }
}
