//! The live workspace must stay audit-clean: this is the same check the
//! blocking CI gate runs, wired into `cargo test` so a hazard (or an
//! undocumented knob / unsafe site) fails locally before it reaches CI.

use std::path::Path;

#[test]
fn live_workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let audit = cbs_audit::audit_workspace(&root).expect("scan workspace");
    assert!(
        audit.is_clean(),
        "cbs-audit findings:\n{}",
        cbs_audit::report::findings_text(&audit.findings)
    );
    // The unsafe surface is small, fully documented, and inventoried.
    assert!(!audit.inventory.is_empty(), "expected the SIMD kernels' unsafe sites");
    for site in &audit.inventory {
        assert!(
            site.safety.contains("SAFETY:"),
            "{}:{} lost its SAFETY justification",
            site.path,
            site.line
        );
    }
}
