use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(n: &AtomicUsize) {
    n.fetch_add(1, Ordering::Relaxed);
}
