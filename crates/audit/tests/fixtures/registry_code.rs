pub fn knob() -> Option<String> {
    std::env::var("CBS_FIXA").ok()
}
