pub fn quiet() {
    // cbs-audit: allow(Z999) reason="no such lint"
    let _ = ();
}
