pub fn stamp() -> f64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_secs_f64()
}
