pub fn quiet() {
    // cbs-audit: allow(D002)
    let _ = ();
}
