pub fn apply(n: usize) -> Vec<f64> {
    let buf = vec![0.0f64; n];
    buf
}
