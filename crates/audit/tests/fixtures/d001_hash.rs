pub fn index() -> usize {
    let m = std::collections::HashMap::<u64, usize>::new();
    m.len()
}
