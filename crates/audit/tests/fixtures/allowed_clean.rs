pub fn timed(p: *const f64, n: usize) -> f64 {
    // cbs-audit: allow(D002) reason="fixture: reported statistic only"
    let t0 = std::time::Instant::now();
    // cbs-audit: allow(A001) reason="fixture: setup-time allocation"
    let buf = vec![0.0f64; n];
    // SAFETY: fixture — `p` is valid for reads by the caller's contract.
    let head = unsafe { *p };
    head + buf.len() as f64 + t0.elapsed().as_secs_f64()
}
