pub fn knob() -> Option<String> {
    std::env::var("CBS_TOTALLY_UNREGISTERED").ok()
}
