//! Fixture tests: every lint family has a known-bad snippet under
//! `tests/fixtures/` on which it fires **exactly once**, plus positive
//! fixtures showing the allowlist and a `SAFETY:` comment suppressing the
//! same patterns.  `scan_workspace` skips the fixture tree, so these
//! snippets never leak into the live audit.

use cbs_audit::{parse_registry, run_lints, scan_source, Registry};

/// Lint ids firing on `content` scanned as if it lived at `path`, against
/// an empty knob registry.
fn lints_for(path: &str, content: &str) -> Vec<&'static str> {
    let files = vec![scan_source(path, content)];
    let (findings, _) = run_lints(&files, &Registry::default());
    findings.iter().map(|f| f.lint).collect()
}

#[test]
fn d001_hash_collection_fires_exactly_once() {
    let got = lints_for("crates/core/src/bad.rs", include_str!("fixtures/d001_hash.rs"));
    assert_eq!(got, ["D001"]);
}

#[test]
fn d002_wall_clock_fires_exactly_once() {
    let got = lints_for("crates/core/src/bad.rs", include_str!("fixtures/d002_clock.rs"));
    assert_eq!(got, ["D002"]);
}

#[test]
fn d003_relaxed_atomic_fires_exactly_once() {
    let got = lints_for("crates/core/src/bad.rs", include_str!("fixtures/d003_relaxed.rs"));
    assert_eq!(got, ["D003"]);
}

#[test]
fn d004_parallel_float_reduction_fires_exactly_once() {
    let got = lints_for("crates/core/src/bad.rs", include_str!("fixtures/d004_par_reduce.rs"));
    assert_eq!(got, ["D004"]);
}

#[test]
fn u001_undocumented_unsafe_fires_exactly_once() {
    let got = lints_for("crates/core/src/bad.rs", include_str!("fixtures/u001_unsafe.rs"));
    assert_eq!(got, ["U001"]);
}

#[test]
fn a001_hot_allocation_fires_exactly_once() {
    // Only the hot kernel/assembled/SMW modules are in scope, so the same
    // snippet is clean elsewhere.
    let hot = lints_for("crates/sparse/src/kernels.rs", include_str!("fixtures/a001_alloc.rs"));
    assert_eq!(hot, ["A001"]);
    let cold = lints_for("crates/core/src/bad.rs", include_str!("fixtures/a001_alloc.rs"));
    assert!(cold.is_empty(), "A001 fired outside the hot modules: {cold:?}");
}

#[test]
fn k001_unregistered_knob_fires_exactly_once() {
    let got = lints_for("crates/core/src/bad.rs", include_str!("fixtures/k001_knob.rs"));
    assert_eq!(got, ["K001"]);
}

#[test]
fn k002_and_k003_fire_once_each_from_the_registry() {
    // `CBS_FIXA` is referenced by code but its class cell is junk (K002);
    // `CBS_FIXB` is classified but nothing references it (K003).
    let registry = parse_registry(include_str!("fixtures/registry_bad.md"));
    let files =
        vec![scan_source("crates/core/src/knob_ref.rs", include_str!("fixtures/registry_code.rs"))];
    let (findings, _) = run_lints(&files, &registry);
    let got: Vec<&str> = findings.iter().map(|f| f.lint).collect();
    assert_eq!(got, ["K002", "K003"]);
    assert!(findings[0].message.contains("CBS_FIXA"), "{}", findings[0].message);
    assert!(findings[1].message.contains("CBS_FIXB"), "{}", findings[1].message);
}

#[test]
fn m001_reasonless_allow_fires_exactly_once() {
    let got = lints_for("crates/core/src/bad.rs", include_str!("fixtures/m001_no_reason.rs"));
    assert_eq!(got, ["M001"]);
}

#[test]
fn m002_unknown_lint_allow_fires_exactly_once() {
    let got = lints_for("crates/core/src/bad.rs", include_str!("fixtures/m002_unknown_lint.rs"));
    assert_eq!(got, ["M002"]);
}

#[test]
fn allow_directives_and_safety_comment_suppress_everything() {
    // The same hazards as the bad fixtures — wall clock, hot allocation,
    // unsafe deref — each carrying its allow/SAFETY justification.
    let file =
        scan_source("crates/sparse/src/kernels.rs", include_str!("fixtures/allowed_clean.rs"));
    let (findings, inventory) = run_lints(&[file], &Registry::default());
    assert!(findings.is_empty(), "expected a clean fixture, got {findings:?}");
    assert_eq!(inventory.len(), 1);
    assert!(inventory[0].safety.contains("SAFETY:"), "inventory lost the justification");
}
