//! Findings, the unsafe inventory, and their plain-text / JSON renderings
//! (hand-rolled JSON — the crate is dependency-free).

use std::fmt::Write as _;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Lint id (`D001`, …).
    pub lint: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// One `unsafe` site of the workspace (documented or not).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the `unsafe` keyword.
    pub line: usize,
    /// Owning crate.
    pub crate_name: String,
    /// `fn` / `impl` / `trait` / `block`.
    pub kind: &'static str,
    /// `true` for sites inside test code.
    pub in_test: bool,
    /// The adjacent `SAFETY:` justification (empty = undocumented — which
    /// is also a U001 finding).
    pub safety: String,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON array (stable order: path, line, lint).
pub fn findings_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"path\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&f.path),
            f.line,
            f.lint,
            json_escape(&f.message)
        );
        out.push_str(if i + 1 == findings.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// Render the unsafe inventory as JSON (stable order: path, line).
pub fn inventory_json(sites: &[UnsafeSite]) -> String {
    let mut out = String::from("{\n  \"unsafe_sites\": [\n");
    for (i, s) in sites.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"crate\": \"{}\", \"path\": \"{}\", \"line\": {}, \"kind\": \"{}\", \"in_test\": {}, \"safety\": \"{}\"}}",
            json_escape(&s.crate_name),
            json_escape(&s.path),
            s.line,
            s.kind,
            s.in_test,
            json_escape(&s.safety)
        );
        out.push_str(if i + 1 == sites.len() { "\n" } else { ",\n" });
    }
    let _ = write!(out, "  ],\n  \"total\": {}\n}}\n", sites.len());
    out
}

/// Render findings as `path:line: LINT message` lines.
pub fn findings_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(out, "{}:{}: {} {}", f.path, f.line, f.lint, f.message);
    }
    out
}
