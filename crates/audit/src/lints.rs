//! The lint families.
//!
//! | Family | Id | Rejects |
//! |---|---|---|
//! | Determinism | `D001` | `HashMap` / `HashSet` in result-producing crates (unordered iteration can reach fingerprinted values) |
//! | Determinism | `D002` | `Instant::now` / `SystemTime` outside `cbs-trace` (wall-clock reads in product code) |
//! | Determinism | `D003` | `Ordering::Relaxed` atomics outside `cbs-trace` (unsynchronized values feeding results) |
//! | Determinism | `D004` | float reductions (`sum` / `reduce` / `fold`) chained onto rayon parallel iterators |
//! | Unsafe | `U001` | `unsafe` without an adjacent `// SAFETY:` justification |
//! | Knobs | `K001` | `"CBS_*"` literals naming a knob missing from the README registry |
//! | Knobs | `K002` | registry rows not classified `fingerprint` / `neutral` |
//! | Knobs | `K003` | registry rows no code references (stale docs) |
//! | Allocation | `A001` | raw `vec!` / `with_capacity` in the hot kernel / assembled / SMW modules (route through `cbs_sparse` scratch) |
//! | Meta | `M001` | allowlist directive without a `reason="..."` |
//! | Meta | `M002` | allowlist directive naming an unknown lint |
//!
//! Every site-level lint honors
//! `// cbs-audit: allow(<LINT>) reason="..."` on the same line or a
//! standalone comment directly above the site.

use crate::registry::{knob_names, KnobClass, Registry};
use crate::report::{Finding, UnsafeSite};
use crate::scan::{FileKind, SourceFile};

/// Crates whose outputs are fingerprinted (eigenvalues, moments, sweep
/// checkpoints) — the scope of D001.  `cbs-trace` observes, `cbs-bench`
/// reports, `cbs-audit` lints; everything else produces results.
const RESULT_CRATES: &[&str] = &[
    "cbs",
    "cbs-linalg",
    "cbs-sparse",
    "cbs-grid",
    "cbs-dft",
    "cbs-solver",
    "cbs-core",
    "cbs-obm",
    "cbs-parallel",
    "cbs-sweep",
];

/// The hot modules of the per-iteration solve path — the scope of A001.
const HOT_MODULES: &[&str] =
    &["crates/sparse/src/kernels.rs", "crates/sparse/src/assembled.rs", "crates/sparse/src/smw.rs"];

/// Every lint id the allowlist may name.
pub const LINT_IDS: &[&str] =
    &["D001", "D002", "D003", "D004", "U001", "K001", "K002", "K003", "A001", "M001", "M002"];

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// `true` when `needle` occurs in `hay` with no identifier characters
/// touching either end (a poor man's word-boundary match).
fn has_token(hay: &str, needle: &str) -> bool {
    let bytes = hay.as_bytes();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre_ok = start == 0 || !is_ident_char(bytes[start - 1]);
        let post_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

fn push(
    findings: &mut Vec<Finding>,
    file: &SourceFile,
    idx: usize,
    lint: &'static str,
    msg: String,
) {
    if file.allowed(lint, idx) {
        return;
    }
    findings.push(Finding { path: file.path.clone(), line: idx + 1, lint, message: msg });
}

/// D001 — hash collections in result-producing crates.
fn d001(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || !RESULT_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        // Imports are not the hazard — the use sites are, and each one is
        // flagged individually.
        if line.in_test || line.code.trim_start().starts_with("use ") {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if has_token(&line.code, ty) {
                push(
                    findings,
                    file,
                    idx,
                    "D001",
                    format!(
                        "`{ty}` in result-producing crate `{}`: unordered iteration is a determinism hazard — use `BTreeMap`/`BTreeSet`, or allow with a reason why this one is never iterated into results",
                        file.crate_name
                    ),
                );
            }
        }
    }
}

/// D002 — wall-clock reads outside `cbs-trace`.
fn d002(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || file.crate_name == "cbs-trace" {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.code.contains("Instant::now") || has_token(&line.code, "SystemTime") {
            push(
                findings,
                file,
                idx,
                "D002",
                "wall-clock read outside `cbs-trace`: route timing through `cbs_trace::timed`/span scopes, or allow with a reason why this timestamp never feeds results".to_string(),
            );
        }
    }
}

/// D003 — relaxed atomics outside `cbs-trace`.
fn d003(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib || file.crate_name == "cbs-trace" {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if line.code.contains("Ordering::Relaxed") {
            push(
                findings,
                file,
                idx,
                "D003",
                "`Ordering::Relaxed` outside `cbs-trace`: relaxed loads/stores feeding fingerprinted values are a determinism hazard — allow only with a reason (e.g. a commutative integer counter)".to_string(),
            );
        }
    }
}

/// D004 — float reductions chained onto rayon parallel iterators.
fn d004(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind != FileKind::Lib {
        return;
    }
    const PAR_ADAPTERS: &[&str] =
        &["par_iter", "into_par_iter", "par_iter_mut", "par_chunks", "par_bridge"];
    const REDUCERS: &[&str] = &[".sum(", ".sum::", ".reduce(", ".fold(", ".product("];
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if !PAR_ADAPTERS.iter().any(|a| has_token(&line.code, a)) {
            continue;
        }
        // Scan the rest of the statement (to the terminating `;` at or
        // below the starting nesting level, capped at 40 lines) for a
        // reduction adapter.
        let mut nest: i64 = 0;
        let mut hit: Option<usize> = None;
        'stmt: for (j, l) in file.lines.iter().enumerate().skip(idx).take(40) {
            if j > idx && l.in_test {
                break;
            }
            if REDUCERS.iter().any(|r| l.code.contains(r)) {
                hit = Some(j);
                break;
            }
            for c in l.code.chars() {
                match c {
                    '(' | '[' | '{' => nest += 1,
                    ')' | ']' | '}' => nest -= 1,
                    ';' if nest <= 0 => break 'stmt,
                    _ => {}
                }
            }
        }
        if hit.is_some() {
            push(
                findings,
                file,
                idx,
                "D004",
                "reduction chained onto a rayon parallel iterator: float accumulation order becomes scheduling-dependent — route through the deterministic-join executor seam, or allow with a reason (e.g. integer-only reduction)".to_string(),
            );
        }
    }
}

/// U001 + the unsafe inventory.
fn u001(file: &SourceFile, findings: &mut Vec<Finding>, inventory: &mut Vec<UnsafeSite>) {
    for (idx, line) in file.lines.iter().enumerate() {
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        // Classify the site from the tokens following `unsafe`.
        let after = line.code.split("unsafe").nth(1).unwrap_or("");
        let kind = match after.split_whitespace().next() {
            Some(w) if w.starts_with("fn") => "fn",
            Some(w) if w.starts_with("impl") => "impl",
            Some(w) if w.starts_with("trait") => "trait",
            _ => "block",
        };
        // Find the adjacent SAFETY justification: same-line comment, or
        // walk upward over comment/attribute/doc/empty lines.
        let mut safety = String::new();
        if line.comment.contains("SAFETY:") {
            safety = line.comment.trim().to_string();
        } else {
            let mut j = idx;
            while j > 0 {
                j -= 1;
                let prev = &file.lines[j];
                let code = prev.code.trim();
                if code.is_empty() || code.starts_with("#[") || code.starts_with("#![") {
                    if prev.comment.contains("SAFETY:") {
                        safety = prev.comment.trim().to_string();
                        break;
                    }
                    continue;
                }
                break;
            }
        }
        if safety.is_empty() && !file.allowed("U001", idx) {
            findings.push(Finding {
                path: file.path.clone(),
                line: idx + 1,
                lint: "U001",
                message: format!(
                    "`unsafe` {kind} without an adjacent `// SAFETY:` comment — every unsafe site must justify its soundness and lands in the unsafe-inventory JSON"
                ),
            });
        }
        inventory.push(UnsafeSite {
            path: file.path.clone(),
            line: idx + 1,
            crate_name: file.crate_name.clone(),
            kind,
            in_test: line.in_test,
            safety,
        });
    }
}

/// K001 — knob literals missing from the registry.
fn k001(file: &SourceFile, registry: &Registry, findings: &mut Vec<Finding>) {
    if file.kind == FileKind::Test {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let mut seen = Vec::new();
        for s in &line.strings {
            for name in knob_names(s) {
                if registry.get(&name).is_none() && !seen.contains(&name) {
                    push(
                        findings,
                        file,
                        idx,
                        "K001",
                        format!(
                            "`{name}` is not in the README env-knob table — register it (classified `fingerprint` or `neutral`) or allow with a reason"
                        ),
                    );
                    seen.push(name);
                }
            }
        }
    }
}

/// K002 / K003 — registry-side checks (anchored at README lines).
fn registry_lints(files: &[SourceFile], registry: &Registry, findings: &mut Vec<Finding>) {
    let mut referenced: Vec<&str> = Vec::new();
    for file in files {
        for line in &file.lines {
            for s in &line.strings {
                for name in knob_names(s) {
                    if let Some(row) = registry.get(&name) {
                        if !referenced.contains(&row.name.as_str()) {
                            referenced.push(row.name.as_str());
                        }
                    }
                }
            }
        }
    }
    for row in &registry.rows {
        if row.class == KnobClass::Unclassified {
            findings.push(Finding {
                path: "README.md".to_string(),
                line: row.line,
                lint: "K002",
                message: format!(
                    "knob `{}` is not classified: the second table cell must be exactly `fingerprint` or `neutral`",
                    row.name
                ),
            });
        }
        if !referenced.contains(&row.name.as_str()) {
            findings.push(Finding {
                path: "README.md".to_string(),
                line: row.line,
                lint: "K003",
                message: format!(
                    "knob `{}` is documented but no source references it — stale documentation",
                    row.name
                ),
            });
        }
    }
}

/// A001 — raw allocations in the hot modules.
fn a001(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !HOT_MODULES.contains(&file.path.as_str()) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for pat in ["vec!", "with_capacity("] {
            if line.code.contains(pat) {
                push(
                    findings,
                    file,
                    idx,
                    "A001",
                    format!(
                        "raw `{}` allocation in a hot module: per-apply buffers must route through the `cbs_sparse` thread-local scratch pool; allow only setup-time allocations, with a reason",
                        pat.trim_end_matches('(')
                    ),
                );
            }
        }
    }
}

/// M001 / M002 — allowlist hygiene.
fn meta_lints(file: &SourceFile, findings: &mut Vec<Finding>) {
    for allow in &file.allows {
        if !LINT_IDS.contains(&allow.lint.as_str()) {
            findings.push(Finding {
                path: file.path.clone(),
                line: allow.line + 1,
                lint: "M002",
                message: format!("allow directive names unknown lint `{}`", allow.lint),
            });
        }
        if allow.reason.is_empty() {
            findings.push(Finding {
                path: file.path.clone(),
                line: allow.line + 1,
                lint: "M001",
                message: "allow directive without a `reason=\"...\"` — every exemption must say why it is sound".to_string(),
            });
        }
    }
}

/// Run every lint over the scanned files against the knob registry.
pub fn run_lints(files: &[SourceFile], registry: &Registry) -> (Vec<Finding>, Vec<UnsafeSite>) {
    let mut findings = Vec::new();
    let mut inventory = Vec::new();
    for file in files {
        d001(file, &mut findings);
        d002(file, &mut findings);
        d003(file, &mut findings);
        d004(file, &mut findings);
        u001(file, &mut findings, &mut inventory);
        k001(file, registry, &mut findings);
        a001(file, &mut findings);
        meta_lints(file, &mut findings);
    }
    registry_lints(files, registry, &mut findings);
    findings.sort();
    inventory.sort();
    (findings, inventory)
}
