//! The `cbs-audit` command-line gate.
//!
//! ```text
//! cargo run -p cbs-audit -- check [--json] [--root <dir>]
//!                                 [--inventory <path>] [--no-inventory]
//! ```
//!
//! Exit status: `0` clean, `1` findings, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use cbs_audit::report::{findings_json, findings_text, inventory_json};

fn usage() -> ExitCode {
    eprintln!(
        "usage: cbs-audit check [--json] [--root <dir>] [--inventory <path>] [--no-inventory]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() != Some("check") {
        return usage();
    }
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut inventory_path: Option<PathBuf> = None;
    let mut write_inventory = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            "--inventory" => match args.next() {
                Some(path) => inventory_path = Some(PathBuf::from(path)),
                None => return usage(),
            },
            "--no-inventory" => write_inventory = false,
            _ => return usage(),
        }
    }

    let audit = match cbs_audit::audit_workspace(&root) {
        Ok(audit) => audit,
        Err(e) => {
            eprintln!("cbs-audit: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if write_inventory {
        let path = inventory_path.unwrap_or_else(|| root.join("UNSAFE_inventory.json"));
        if let Err(e) = std::fs::write(&path, inventory_json(&audit.inventory)) {
            eprintln!("cbs-audit: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if json {
        print!("{}", findings_json(&audit.findings));
    } else {
        print!("{}", findings_text(&audit.findings));
        if audit.is_clean() {
            println!(
                "cbs-audit: clean ({} unsafe sites inventoried, all documented)",
                audit.inventory.len()
            );
        } else {
            println!("cbs-audit: {} finding(s)", audit.findings.len());
        }
    }
    if audit.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
