//! Workspace walking and the hand-rolled line/token scanner.
//!
//! The scanner does **not** parse Rust — it runs a small character-level
//! state machine over each source file that is just smart enough to
//! separate, per line, (a) code with comments stripped and string
//! *contents* blanked, (b) comment text, and (c) the contents of string
//! literals.  On top of that a second pass tracks brace depth to mark
//! `#[cfg(test)]` / `#[test]` regions, so lints can distinguish product
//! code from test code without a type checker.

use std::fs;
use std::path::{Path, PathBuf};

/// Which target directory a file came from — decides which lints apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// `src/` — library / binary product code.
    Lib,
    /// `tests/` — integration-test code (test rules apply to every line).
    Test,
    /// `benches/` — bench harness code.
    Bench,
    /// `examples/` — runnable examples.
    Example,
}

/// One scanned source line, split into its lint-relevant views.
#[derive(Clone, Debug, Default)]
pub struct Line {
    /// Code with comments removed and string-literal contents blanked
    /// (delimiters kept, so token shapes survive).
    pub code: String,
    /// Plain comment text of the line (`//`, `/* .. */`) — the channel
    /// `SAFETY:` justifications and allow directives live in.
    pub comment: String,
    /// Doc-comment text (`///`, `//!`) — never parsed for directives, so
    /// documentation *about* the allowlist syntax cannot trigger it.
    pub doc: String,
    /// Contents of string literals that *start* on this line.
    pub strings: Vec<String>,
    /// `true` inside a `#[cfg(test)]` / `#[test]` item (or anywhere in a
    /// `tests/` / `benches/` file).
    pub in_test: bool,
}

/// A `// cbs-audit: allow(<LINT>) reason="..."` directive.
#[derive(Clone, Debug)]
pub struct Allow {
    /// 0-based line of the directive comment.
    pub line: usize,
    /// The allowed lint id, upper-cased (`D001`, `U001`, …).
    pub lint: String,
    /// The mandatory justification text (empty = missing → meta finding).
    pub reason: String,
    /// 0-based lines the directive covers: itself, skipped attribute
    /// lines, and the next code line.
    pub covers: Vec<usize>,
}

/// One scanned file: workspace-relative path, owning crate, and lines.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate name (`cbs-sparse`, …; the facade and its `tests/` are `cbs`).
    pub crate_name: String,
    /// Originating target directory.
    pub kind: FileKind,
    /// Per-line scan results.
    pub lines: Vec<Line>,
    /// Parsed allowlist directives.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// `true` when `line` (0-based) is excused from `lint` by an allowlist
    /// directive with a non-empty reason.
    pub fn allowed(&self, lint: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.lint.eq_ignore_ascii_case(lint) && !a.reason.is_empty() && a.covers.contains(&line)
        })
    }
}

/// Character-level scanner state.
enum State {
    Code,
    LineComment,
    DocComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Scan file `content` presented under the workspace-relative `path`.
pub fn scan_source(path: &str, content: &str) -> SourceFile {
    let kind = kind_of(path);
    let crate_name = crate_of(path);
    let mut lines: Vec<Line> = Vec::new();

    let mut state = State::Code;
    for raw in content.lines() {
        let mut line = Line::default();
        // A line comment never continues across lines.
        if matches!(state, State::LineComment | State::DocComment) {
            state = State::Code;
        }
        let b: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        let mut cur_string = String::new();
        while i < b.len() {
            let c = b[i];
            let next = b.get(i + 1).copied();
            match state {
                State::Code => {
                    if c == '/' && next == Some('/') {
                        i += 2;
                        let is_doc = b.get(i) == Some(&'/') || b.get(i) == Some(&'!');
                        while b.get(i) == Some(&'/') || b.get(i) == Some(&'!') {
                            i += 1;
                        }
                        state = if is_doc { State::DocComment } else { State::LineComment };
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(1);
                        i += 2;
                        continue;
                    }
                    if c == 'r' && (next == Some('"') || next == Some('#')) {
                        // Possible raw string: r"..." or r#"..."# (any hashes).
                        let mut j = i + 1;
                        let mut hashes = 0u32;
                        while b.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if b.get(j) == Some(&'"') {
                            line.code.push('"');
                            state = State::RawStr(hashes);
                            cur_string.clear();
                            i = j + 1;
                            continue;
                        }
                    }
                    if c == '"' {
                        line.code.push('"');
                        state = State::Str;
                        cur_string.clear();
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        // Char literal or lifetime.  `'a` (lifetime) has no
                        // closing quote nearby; a char literal closes after
                        // one (possibly escaped) char.
                        let is_char_lit = match next {
                            Some('\\') => true,
                            Some(_) => b.get(i + 2) == Some(&'\''),
                            None => false,
                        };
                        if is_char_lit {
                            line.code.push('\'');
                            state = State::Char;
                            i += 1;
                            continue;
                        }
                        line.code.push(c);
                        i += 1;
                        continue;
                    }
                    line.code.push(c);
                    i += 1;
                }
                State::LineComment => {
                    line.comment.push(c);
                    i += 1;
                }
                State::DocComment => {
                    line.doc.push(c);
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        state =
                            if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                        continue;
                    }
                    line.comment.push(c);
                    i += 1;
                }
                State::Str => {
                    if c == '\\' {
                        // Keep the escaped char in the literal text (enough
                        // for knob-name extraction), skip both.
                        if let Some(n) = next {
                            cur_string.push(n);
                        }
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        line.code.push('"');
                        line.strings.push(std::mem::take(&mut cur_string));
                        state = State::Code;
                        i += 1;
                        continue;
                    }
                    cur_string.push(c);
                    i += 1;
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut j = i + 1;
                        let mut seen = 0u32;
                        while seen < hashes && b.get(j) == Some(&'#') {
                            seen += 1;
                            j += 1;
                        }
                        if seen == hashes {
                            line.code.push('"');
                            line.strings.push(std::mem::take(&mut cur_string));
                            state = State::Code;
                            i = j;
                            continue;
                        }
                    }
                    cur_string.push(c);
                    i += 1;
                }
                State::Char => {
                    if c == '\\' {
                        i += 2;
                        continue;
                    }
                    if c == '\'' {
                        line.code.push('\'');
                        state = State::Code;
                        i += 1;
                        continue;
                    }
                    i += 1;
                }
            }
        }
        // Unterminated string at end of line (multi-line literal): record
        // what we have so far so knob names in it are still seen.
        if matches!(state, State::Str | State::RawStr(_)) && !cur_string.is_empty() {
            line.strings.push(cur_string.clone());
            cur_string.clear();
        }
        lines.push(line);
    }

    mark_test_regions(&mut lines, kind);
    let allows = parse_allows(&lines);
    SourceFile { path: path.to_string(), crate_name, kind, lines, allows }
}

/// Mark `#[cfg(test)]` / `#[test]` items via brace-depth tracking.
fn mark_test_regions(lines: &mut [Line], kind: FileKind) {
    if matches!(kind, FileKind::Test | FileKind::Bench) {
        for l in lines.iter_mut() {
            l.in_test = true;
        }
        return;
    }
    let mut depth = 0usize;
    let mut pending = false;
    let mut test_depth: Option<usize> = None;
    for line in lines.iter_mut() {
        if test_depth.is_some() || pending {
            line.in_test = true;
        }
        let code = line.code.clone();
        if code.contains("#[cfg(test")
            || code.contains("#[test]")
            || code.contains("#[cfg(all(test")
        {
            pending = true;
            line.in_test = true;
        }
        let mut opened_in_line = false;
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened_in_line = true;
                    if pending && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending = false;
                        line.in_test = true;
                    }
                }
                '}' => {
                    if test_depth == Some(depth) {
                        test_depth = None;
                        line.in_test = true;
                    }
                    depth = depth.saturating_sub(1);
                }
                _ => {}
            }
        }
        // `#[cfg(test)] use foo;` — a braceless cfg'd item ends the pending
        // region at its semicolon.
        if pending && !opened_in_line && code.trim_end().ends_with(';') {
            pending = false;
        }
    }
}

fn is_attr_only(code: &str) -> bool {
    let t = code.trim();
    t.starts_with("#[") || t.starts_with("#![")
}

/// Parse `cbs-audit: allow(<LINT>) reason="..."` directives out of the
/// comment text and compute the lines each one covers.
fn parse_allows(lines: &[Line]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(pos) = line.comment.find("cbs-audit:") else { continue };
        let rest = &line.comment[pos + "cbs-audit:".len()..];
        let Some(open) = rest.find("allow(") else { continue };
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else { continue };
        let lint = after[..close].trim().to_ascii_uppercase();
        let tail = &after[close + 1..];
        let reason = tail
            .find("reason=\"")
            .map(|r| &tail[r + "reason=\"".len()..])
            .and_then(|r| r.find('"').map(|end| r[..end].trim().to_string()))
            .unwrap_or_default();
        // Coverage: the directive's own line; if it is a standalone
        // comment, extend over following attribute/empty lines to the next
        // code line.
        let mut covers = vec![idx];
        if line.code.trim().is_empty() {
            let mut j = idx + 1;
            let mut budget = 10usize;
            while j < lines.len() && budget > 0 {
                covers.push(j);
                let code = lines[j].code.trim();
                if !code.is_empty() && !is_attr_only(&lines[j].code) {
                    break;
                }
                j += 1;
                budget -= 1;
            }
        }
        allows.push(Allow { line: idx, lint, reason, covers });
    }
    allows
}

fn kind_of(path: &str) -> FileKind {
    let mut parts = path.split('/');
    // Either `src|tests|...` at the root or `crates/<name>/<dir>/...`.
    let first = parts.next().unwrap_or("");
    let dir = if first == "crates" {
        parts.next();
        parts.next().unwrap_or("")
    } else {
        first
    };
    match dir {
        "tests" => FileKind::Test,
        "benches" => FileKind::Bench,
        "examples" => FileKind::Example,
        _ => FileKind::Lib,
    }
}

fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return format!("cbs-{name}");
        }
    }
    "cbs".to_string()
}

/// Walk the workspace rooted at `root` and scan every `.rs` source under
/// the standard target directories, skipping `vendor/`, `target/` and the
/// audit fixtures tree.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut rel_dirs: Vec<PathBuf> =
        ["src", "tests", "examples", "benches"].iter().map(PathBuf::from).collect();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<_> = fs::read_dir(&crates_dir)?
            .filter_map(std::result::Result::ok)
            .filter(|e| e.path().is_dir())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        for name in names {
            for sub in ["src", "tests", "examples", "benches"] {
                rel_dirs.push(PathBuf::from("crates").join(&name).join(sub));
            }
        }
    }
    let mut files = Vec::new();
    for rel in rel_dirs {
        let abs = root.join(&rel);
        if !abs.is_dir() {
            continue;
        }
        collect_rs(&abs, &mut files)?;
    }
    files.sort();
    let mut scanned = Vec::new();
    for abs in files {
        let rel = abs
            .strip_prefix(root)
            .unwrap_or(&abs)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        if rel.starts_with("crates/audit/tests/fixtures/") {
            continue;
        }
        let content = fs::read_to_string(&abs)?;
        scanned.push(scan_source(&rel, &content));
    }
    Ok(scanned)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == "vendor" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
