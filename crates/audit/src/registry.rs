//! The machine-checkable env-knob registry: the README's knob table.
//!
//! The K-lints parse the same markdown table the README shows readers, so
//! documentation and code cannot drift apart: every `"CBS_*"` string
//! literal in the workspace must name a registered knob ([`super::lints`]
//! K001), every registered knob must be classified `fingerprint` or
//! `neutral` (K002), and every registered knob must still be referenced by
//! code (K003).
//!
//! Expected row shape (a GitHub-flavored markdown table):
//!
//! ```text
//! | `CBS_PRECOND=assembled` … | fingerprint | effect text … |
//! ```
//!
//! The knob name is the first `CBS_[A-Z0-9_]+` token of the first cell;
//! the class is the full text of the second cell.

/// How a knob relates to the repo's bit-reproducibility contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KnobClass {
    /// Changes the floating-point trajectory or the computed system, so it
    /// participates in result fingerprints / sweep checkpoints.
    Fingerprint,
    /// Bitwise-neutral: a speed / observability / harness dial that never
    /// changes fingerprinted values.
    Neutral,
    /// The class cell did not say `fingerprint` or `neutral` — a K002
    /// finding.
    Unclassified,
}

/// One registered knob row.
#[derive(Clone, Debug)]
pub struct KnobRow {
    /// Knob name (`CBS_PRECOND`, …).
    pub name: String,
    /// Parsed classification.
    pub class: KnobClass,
    /// 1-based README line of the row.
    pub line: usize,
}

/// The parsed registry.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    /// Rows in README order.
    pub rows: Vec<KnobRow>,
}

impl Registry {
    /// Look up a knob row by name.
    pub fn get(&self, name: &str) -> Option<&KnobRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Extract every `CBS_[A-Z0-9_]+` token from `text`.
pub fn knob_names(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("CBS_") {
        let start = i + pos;
        let mut end = start + "CBS_".len();
        while end < bytes.len()
            && (bytes[end].is_ascii_uppercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        // Require at least one character after the prefix and no
        // identifier character immediately before (so `MY_CBS_X` or
        // `CBS_` alone do not count).
        let prefixed =
            start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        if end > start + "CBS_".len() && !prefixed {
            out.push(text[start..end].trim_end_matches('_').to_string());
        }
        i = end;
    }
    out
}

/// Parse the knob registry out of README markdown.
pub fn parse_registry(readme: &str) -> Registry {
    let mut rows = Vec::new();
    for (idx, line) in readme.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
        if cells.len() < 2 {
            continue;
        }
        let first = cells[0];
        // Only rows whose first cell *starts* with a backticked CBS knob
        // are registry rows (prose tables mentioning knobs elsewhere in a
        // later cell are not).
        if !first.trim().starts_with("`CBS_") {
            continue;
        }
        let Some(name) = knob_names(first).into_iter().next() else { continue };
        let class = match cells[1].trim() {
            "fingerprint" => KnobClass::Fingerprint,
            "neutral" => KnobClass::Neutral,
            _ => KnobClass::Unclassified,
        };
        rows.push(KnobRow { name, class, line: idx + 1 });
    }
    Registry { rows }
}
