//! `cbs-audit`: the repo-invariant static-analysis pass.
//!
//! The workspace's headline guarantee — bit-identical results across the
//! `{executor} × {block} × {precond} × {slices}` policy matrix, resumable
//! checkpoints, SIMD lanes bitwise-equal to scalar — is enforced
//! dynamically by the test suite.  This crate adds the static half: a
//! dependency-free line/token scanner (no `syn`, no regex) that rejects
//! determinism hazards, undocumented `unsafe`, unregistered environment
//! knobs and hot-path allocations *before* they reach a bench run, wired
//! as a blocking CI gate:
//!
//! ```text
//! cargo run -p cbs-audit -- check [--json]
//! ```
//!
//! See [`lints`] for the lint families and [`scan`] for the allowlist
//! syntax (`// cbs-audit: allow(<LINT>) reason="..."`).  `check` also
//! emits the machine-readable unsafe-inventory JSON
//! (`UNSAFE_inventory.json`, next to `BENCH_sweep.json` at the repo root)
//! that CI uploads as an artifact.

#![warn(missing_docs)]

pub mod lints;
pub mod registry;
pub mod report;
pub mod scan;

pub use lints::run_lints;
pub use registry::{parse_registry, Registry};
pub use report::{Finding, UnsafeSite};
pub use scan::{scan_source, scan_workspace, SourceFile};

use std::path::Path;

/// The result of one full `check` run.
#[derive(Clone, Debug)]
pub struct Audit {
    /// Lint findings (empty = the workspace is clean).
    pub findings: Vec<Finding>,
    /// Every `unsafe` site of the workspace, for the inventory JSON.
    pub inventory: Vec<UnsafeSite>,
}

impl Audit {
    /// `true` when no lint fired.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Scan the workspace rooted at `root` (its `README.md` is the knob
/// registry) and run every lint.
pub fn audit_workspace(root: &Path) -> std::io::Result<Audit> {
    let files = scan_workspace(root)?;
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let registry = parse_registry(&readme);
    let (findings, inventory) = run_lints(&files, &registry);
    Ok(Audit { findings, inventory })
}
