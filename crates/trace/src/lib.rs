//! `cbs-trace`: lock-free, thread-local span tracing and per-solve cost
//! attribution for the CBS workspace.
//!
//! # Span model
//!
//! Every instrumented scope of the pipeline — numeric pattern refill
//! ([`Stage::Assemble`]), ILU(0) factorization ([`Stage::IluFactor`]),
//! triangular sweeps ([`Stage::TriSweep`]), sparse/low-rank operator
//! application ([`Stage::Kernel`]), one dual-BiCG solve ([`Stage::Solve`]),
//! eigenpair extraction ([`Stage::Extraction`]) and sliced-contour merging
//! ([`Stage::Merge`]) — records `(stage, start_ns, end_ns, thread, context)`
//! where the context ([`SpanCtx`]) carries the scan-energy index, contour
//! slice, quadrature node and operator policy of the enclosing solve.
//!
//! Recording is two-tier:
//!
//! * **Always on** — per-stage CPU-nanosecond counters accumulate in plain
//!   thread-local cells and drain into process-global atomics when the
//!   thread exits (the vendored rayon shim joins its scoped workers before
//!   each dispatch returns, so a caller reading [`cpu_totals`] after a
//!   parallel region sees every worker's contribution).  These counters
//!   are the source of `cbs_sparse::stage_snapshot` and therefore of
//!   `CbsStatistics::{kernel_ns, precond_ns}` — CPU-ns summed across
//!   threads, **not** wall time, under a parallel executor.
//! * **Session-gated** — full span buffers are recorded only while a
//!   [`TraceSession`] is active; the disabled hot path pays one relaxed
//!   atomic load per instrumented scope.  Buffers are thread-local and
//!   lock-free on the hot path; they drain into the global session store
//!   when they fill, when the thread exits, and when the session finishes.
//!
//! A finished session yields a [`TraceReport`] exporting (a) Chrome
//! trace-event JSON (hand-rolled writer, no JSON dependency) viewable in
//! `chrome://tracing` / [Perfetto](https://ui.perfetto.dev), and (b) an
//! aggregated per-stage × per-context table ([`TraceReport::aggregate`])
//! with both CPU-ns (summed span durations) and wall-ns (span intervals
//! merged per stage across threads) — the `(stage, context) → cost` samples
//! a performance-model calibration probe consumes.
//!
//! # Determinism
//!
//! Nothing in this crate feeds back into the numerical pipeline: spans and
//! iteration events are pure observations, so tracing on/off is bitwise
//! neutral on results (locked by `tests/trace.rs` at the workspace root).
//!
//! # Environment knobs
//!
//! * `CBS_TRACE=<path>` — drivers that honor it (the sweep bench, the CI
//!   smoke job) begin a session and export the Chrome trace to `<path>`.
//! * `CBS_TRACE_LEVEL=iter` — additionally record one event per BiCG
//!   iteration (residual trajectories per solve); any other value (or
//!   unset) records stage spans only.

mod aggregate;
mod chrome;
pub mod knob;

pub use aggregate::{AggRow, StageAgg};
pub use knob::{knob, knob_path, knob_set, Knob};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One instrumented pipeline stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// Numeric refill of the assembled `P(z)` pattern.
    Assemble = 0,
    /// ILU(0) factorization of an assembled operator.
    IluFactor = 1,
    /// ILU(0) triangular solves (forward/backward sweeps).
    TriSweep = 2,
    /// Sparse / low-rank operator application (CSR gather-scatter, block
    /// SpMM tiles, projector terms).
    Kernel = 3,
    /// One dual-BiCG solve (a `(node, rhs)` job or a fused per-node block
    /// job).
    Solve = 4,
    /// Eigenpair extraction from accumulated moments (Hankel SVD, projected
    /// eigenproblem, residual filtering).
    Extraction = 5,
    /// Deterministic merge of sliced-contour extractions.
    Merge = 6,
}

/// Number of [`Stage`] variants (array-table size).
pub const STAGE_COUNT: usize = 7;

impl Stage {
    /// Every stage, in `repr` order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Assemble,
        Stage::IluFactor,
        Stage::TriSweep,
        Stage::Kernel,
        Stage::Solve,
        Stage::Extraction,
        Stage::Merge,
    ];

    /// Stable name (the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Assemble => "assemble",
            Stage::IluFactor => "ilu_factor",
            Stage::TriSweep => "tri_sweep",
            Stage::Kernel => "kernel",
            Stage::Solve => "solve",
            Stage::Extraction => "extraction",
            Stage::Merge => "merge",
        }
    }

    /// Inverse of [`name`](Self::name) (used by the trace checker).
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.iter().copied().find(|s| s.name() == name)
    }
}

/// Unset marker for the `u32` context keys.
pub const CTX_UNSET: u32 = u32::MAX;
/// Unset marker for the policy context key.
pub const POLICY_UNSET: u8 = u8::MAX;

/// The attribution context of a span: which solve it belongs to.
///
/// Fields are set to [`CTX_UNSET`] / [`POLICY_UNSET`] when unknown (e.g.
/// spans recorded outside any solve).  The policy byte uses the encoding of
/// `cbs_core::PrecondPolicy::trace_code` (0 = matrix-free, 1 = assembled,
/// 2 = assembled-ilu0).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanCtx {
    /// Scan-energy index within the sweep grid.
    pub energy: u32,
    /// Contour-slice index (0 for the single-contour policy).
    pub slice: u32,
    /// Quadrature-node index on the contour.
    pub node: u32,
    /// Operator/preconditioner policy code.
    pub policy: u8,
}

impl SpanCtx {
    /// The empty context.
    pub const NONE: SpanCtx =
        SpanCtx { energy: CTX_UNSET, slice: CTX_UNSET, node: CTX_UNSET, policy: POLICY_UNSET };

    /// Set the scan-energy index.
    pub fn with_energy(mut self, e: usize) -> Self {
        self.energy = e as u32;
        self
    }

    /// Set the contour-slice index.
    pub fn with_slice(mut self, s: usize) -> Self {
        self.slice = s as u32;
        self
    }

    /// Set the quadrature-node index.
    pub fn with_node(mut self, n: usize) -> Self {
        self.node = n as u32;
        self
    }

    /// Set the policy code.
    pub fn with_policy(mut self, p: u8) -> Self {
        self.policy = p;
        self
    }
}

impl Default for SpanCtx {
    fn default() -> Self {
        SpanCtx::NONE
    }
}

/// Known policy codes (the contract with `cbs_core::PrecondPolicy`).
pub fn policy_name(code: u8) -> Option<&'static str> {
    match code {
        0 => Some("matrix-free"),
        1 => Some("assembled"),
        2 => Some("assembled-ilu0"),
        3 => Some("assembled-ilu0-smw"),
        _ => None,
    }
}

/// One recorded span.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// The instrumented stage.
    pub stage: Stage,
    /// Start, nanoseconds on the process-global monotonic clock
    /// ([`now_ns`]).
    pub start_ns: u64,
    /// End, same clock.
    pub end_ns: u64,
    /// Recording thread (trace-local id, see [`TraceReport::threads`]).
    pub thread: u32,
    /// Attribution context.
    pub ctx: SpanCtx,
}

/// One per-iteration BiCG residual event (`CBS_TRACE_LEVEL=iter`).
#[derive(Clone, Copy, Debug)]
pub struct IterEvent {
    /// Event time on the [`now_ns`] clock.
    pub t_ns: u64,
    /// Recording thread.
    pub thread: u32,
    /// Context of the enclosing solve.
    pub ctx: SpanCtx,
    /// Right-hand-side (column) index within the solve, [`CTX_UNSET`] for a
    /// single-vector solve whose rhs index the solver does not know.
    pub rhs: u32,
    /// Iteration number (0 = initial residual).
    pub iteration: u32,
    /// Relative residual of the primal recurrence after this iteration.
    pub residual: f64,
}

/// How much a session records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum TraceLevel {
    /// No span recording (the always-on CPU counters still accumulate).
    #[default]
    Off = 0,
    /// Stage spans only.
    Stage = 1,
    /// Stage spans plus per-iteration BiCG residual events.
    Iter = 2,
}

impl TraceLevel {
    /// The level requested by `CBS_TRACE_LEVEL` (`"iter"` — case-insensitive
    /// — selects [`Iter`](Self::Iter); anything else, including unset, is
    /// [`Stage`](Self::Stage)).  This is the level a driver passes to
    /// [`TraceSession::begin`] once it has decided to trace at all.
    pub fn from_env() -> TraceLevel {
        knob::knob("CBS_TRACE_LEVEL").unwrap_or(TraceLevel::Stage)
    }
}

impl knob::Knob for TraceLevel {
    fn parse_knob(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "iter" | "iteration" => Some(TraceLevel::Iter),
            "stage" | "span" => Some(TraceLevel::Stage),
            _ => None,
        }
    }
}

/// The Chrome-trace export path requested by `CBS_TRACE`, if any.
pub fn trace_path_from_env() -> Option<std::path::PathBuf> {
    knob::knob_path("CBS_TRACE")
}

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds on the process-global monotonic clock shared by every span
/// (first call pins the epoch).
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static SESSION_ACTIVE: AtomicBool = AtomicBool::new(false);
static SESSION_LEVEL: AtomicU8 = AtomicU8::new(0);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

static CPU_TOTALS: [AtomicU64; STAGE_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// The global session store thread buffers drain into.
#[derive(Default)]
struct SessionStore {
    spans: Vec<Span>,
    iters: Vec<IterEvent>,
    threads: Vec<(u32, &'static str)>,
}

static STORE: Mutex<SessionStore> =
    Mutex::new(SessionStore { spans: Vec::new(), iters: Vec::new(), threads: Vec::new() });

fn store() -> std::sync::MutexGuard<'static, SessionStore> {
    STORE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `true` while a [`TraceSession`] is recording.
#[inline]
pub fn session_active() -> bool {
    SESSION_ACTIVE.load(Ordering::Relaxed)
}

/// The active session's level ([`TraceLevel::Off`] when no session runs).
pub fn session_level() -> TraceLevel {
    if !session_active() {
        return TraceLevel::Off;
    }
    match SESSION_LEVEL.load(Ordering::Relaxed) {
        2 => TraceLevel::Iter,
        1 => TraceLevel::Stage,
        _ => TraceLevel::Off,
    }
}

// ---------------------------------------------------------------------------
// Thread-local recording
// ---------------------------------------------------------------------------

/// Spans buffered per thread before an incremental drain.
const SPAN_FLUSH_THRESHOLD: usize = 16 * 1024;

struct ThreadBuf {
    tid: u32,
    label: &'static str,
    registered: bool,
    cpu: [u64; STAGE_COUNT],
    spans: Vec<Span>,
    iters: Vec<IterEvent>,
    ctx: SpanCtx,
    iter_events: bool,
}

impl ThreadBuf {
    fn new() -> Self {
        ThreadBuf {
            tid: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            label: "thread",
            registered: false,
            cpu: [0; STAGE_COUNT],
            spans: Vec::new(),
            iters: Vec::new(),
            ctx: SpanCtx::NONE,
            iter_events: false,
        }
    }

    /// Drain the session-gated event buffers into the global store.
    fn flush_events(&mut self) {
        if self.spans.is_empty() && self.iters.is_empty() {
            return;
        }
        let mut s = store();
        if !self.registered {
            s.threads.push((self.tid, self.label));
            self.registered = true;
        }
        s.spans.append(&mut self.spans);
        s.iters.append(&mut self.iters);
    }

    /// Drain the always-on CPU counters into the global atomics.
    fn flush_cpu(&mut self) {
        for (total, cell) in CPU_TOTALS.iter().zip(self.cpu.iter_mut()) {
            if *cell > 0 {
                total.fetch_add(*cell, Ordering::Relaxed);
                *cell = 0;
            }
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush_events();
        self.flush_cpu();
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

/// Label the current thread for trace exports (`"main"`, `"rayon"`, …).
/// Idempotent and cheap; executors call it from inside dispatched tasks so
/// short-lived workers name themselves before their buffers drain.
pub fn label_thread(label: &'static str) {
    let _ = TLS.try_with(|b| b.borrow_mut().label = label);
}

/// Record a completed `[start_ns, end_ns]` scope of `stage`: always adds to
/// the CPU counters, and buffers a full [`Span`] (with the thread's current
/// [`SpanCtx`]) when a session is active.
#[inline]
pub fn record_span(stage: Stage, start_ns: u64, end_ns: u64) {
    let _ = TLS.try_with(|b| {
        let mut b = b.borrow_mut();
        b.cpu[stage as usize] += end_ns.saturating_sub(start_ns);
        if SESSION_ACTIVE.load(Ordering::Relaxed) {
            let span = Span { stage, start_ns, end_ns, thread: b.tid, ctx: b.ctx };
            b.spans.push(span);
            if b.spans.len() >= SPAN_FLUSH_THRESHOLD {
                b.flush_events();
            }
        }
    });
}

/// Run `f` as one span of `stage` (see [`record_span`]).
#[inline]
pub fn timed<R>(stage: Stage, f: impl FnOnce() -> R) -> R {
    let t0 = now_ns();
    let out = f();
    let t1 = now_ns();
    record_span(stage, t0, t1);
    out
}

/// Record one BiCG iteration of the enclosing solve.  No-op unless the
/// enclosing [`SolveScope`] enabled iteration events
/// (`CBS_TRACE_LEVEL=iter` / [`TraceLevel::Iter`]); solvers call this
/// unconditionally wherever they record their residual history.
#[inline]
pub fn record_iteration(rhs: Option<usize>, iteration: usize, residual: f64) {
    let _ = TLS.try_with(|b| {
        let mut b = b.borrow_mut();
        if b.iter_events {
            let ev = IterEvent {
                t_ns: now_ns(),
                thread: b.tid,
                ctx: b.ctx,
                rhs: rhs.map_or(CTX_UNSET, |r| r as u32),
                iteration: iteration as u32,
                residual,
            };
            b.iters.push(ev);
            if b.iters.len() >= SPAN_FLUSH_THRESHOLD {
                b.flush_events();
            }
        }
    });
}

/// The always-on per-stage CPU-nanosecond totals: global (flushed) counters
/// plus the calling thread's unflushed cells.  Under a parallel executor
/// these are CPU seconds summed across workers, not wall time; workers of
/// the vendored rayon shim are joined (and therefore flushed) before any
/// dispatch returns, so post-dispatch reads are complete.
pub fn cpu_totals() -> [u64; STAGE_COUNT] {
    let mut t = [0u64; STAGE_COUNT];
    for (out, total) in t.iter_mut().zip(CPU_TOTALS.iter()) {
        *out = total.load(Ordering::Relaxed);
    }
    let _ = TLS.try_with(|b| {
        let b = b.borrow();
        for (out, cell) in t.iter_mut().zip(b.cpu.iter()) {
            *out += cell;
        }
    });
    t
}

// ---------------------------------------------------------------------------
// Context scopes and the plumbed handle
// ---------------------------------------------------------------------------

/// RAII guard restoring the thread's previous [`SpanCtx`].
pub struct CtxScope {
    prev: SpanCtx,
}

/// Set the calling thread's span context, restoring the previous one when
/// the guard drops.  Used by drivers that know a coarse context (the scan
/// energy of the per-energy loop) on the thread that also records
/// extraction/merge spans.
pub fn ctx_scope(ctx: SpanCtx) -> CtxScope {
    let prev = TLS.try_with(|b| {
        let mut b = b.borrow_mut();
        let prev = b.ctx;
        b.ctx = ctx;
        prev
    });
    CtxScope { prev: prev.unwrap_or(SpanCtx::NONE) }
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        let _ = TLS.try_with(|b| b.borrow_mut().ctx = self.prev);
    }
}

/// The tracing capability plumbed through `ShiftedSolveEngine`,
/// `solve_pool` and `EnergySweep`: a `Copy` context carrier that is a
/// no-op when tracing is disabled.
///
/// A handle is resolved once per solve ([`TraceHandle::resolve`]) on the
/// dispatching thread and then moved into job closures, where
/// [`solve_scope`](TraceHandle::solve_scope) installs the per-job context
/// on whichever worker thread runs the job.
#[derive(Clone, Copy, Debug)]
pub struct TraceHandle {
    level: TraceLevel,
    base: SpanCtx,
}

impl TraceHandle {
    /// The no-op handle (also what [`resolve`](Self::resolve) returns when
    /// no session is active).
    pub const fn disabled() -> Self {
        TraceHandle { level: TraceLevel::Off, base: SpanCtx::NONE }
    }

    /// Resolve the effective handle for one solve: disabled when no session
    /// is active, otherwise the stronger of the session level and
    /// `requested` (a config can raise a stage-level session to
    /// per-iteration detail for its own solves, but cannot start recording
    /// on its own).  The base context inherits the calling thread's current
    /// [`SpanCtx`], so a driver that set an energy scope hands it down to
    /// every worker automatically.
    pub fn resolve(requested: TraceLevel) -> Self {
        let session = session_level();
        if session == TraceLevel::Off {
            return Self::disabled();
        }
        let base = TLS.try_with(|b| b.borrow().ctx).unwrap_or(SpanCtx::NONE);
        TraceHandle { level: session.max(requested), base }
    }

    /// `true` when this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// The base context jobs inherit.
    pub fn ctx(&self) -> SpanCtx {
        self.base
    }

    /// Override the scan-energy index of the base context.
    pub fn with_energy(mut self, e: usize) -> Self {
        self.base = self.base.with_energy(e);
        self
    }

    /// Override the contour-slice index of the base context.
    pub fn with_slice(mut self, s: usize) -> Self {
        self.base = self.base.with_slice(s);
        self
    }

    /// Override the policy code of the base context.
    pub fn with_policy(mut self, p: u8) -> Self {
        self.base = self.base.with_policy(p);
        self
    }

    /// Install this handle's context on the calling thread (for scopes that
    /// are not solves: extraction, merge).
    pub fn enter(&self) -> CtxScope {
        if self.is_enabled() {
            ctx_scope(self.base)
        } else {
            CtxScope { prev: TLS.try_with(|b| b.borrow().ctx).unwrap_or(SpanCtx::NONE) }
        }
    }

    /// Open the span of one dual-BiCG solve at quadrature node `node`: sets
    /// the worker thread's context to the handle's base plus the node,
    /// arms per-iteration events when the level asks for them, and records
    /// a [`Stage::Solve`] span when the guard drops.  No-op (and
    /// allocation-free) when the handle is disabled.
    pub fn solve_scope(&self, node: usize) -> SolveScope {
        if !self.is_enabled() {
            return SolveScope {
                enabled: false,
                start_ns: 0,
                prev: SpanCtx::NONE,
                prev_iter: false,
            };
        }
        let ctx = self.base.with_node(node);
        let iter = self.level >= TraceLevel::Iter;
        let prev = TLS.try_with(|b| {
            let mut b = b.borrow_mut();
            let prev = (b.ctx, b.iter_events);
            b.ctx = ctx;
            b.iter_events = iter;
            prev
        });
        let (prev, prev_iter) = prev.unwrap_or((SpanCtx::NONE, false));
        SolveScope { enabled: true, start_ns: now_ns(), prev, prev_iter }
    }
}

impl Default for TraceHandle {
    fn default() -> Self {
        Self::disabled()
    }
}

/// RAII guard of one solve span (see [`TraceHandle::solve_scope`]).
pub struct SolveScope {
    enabled: bool,
    start_ns: u64,
    prev: SpanCtx,
    prev_iter: bool,
}

impl Drop for SolveScope {
    fn drop(&mut self) {
        if !self.enabled {
            return;
        }
        let end = now_ns();
        let _ = TLS.try_with(|b| {
            let mut b = b.borrow_mut();
            let span = Span {
                stage: Stage::Solve,
                start_ns: self.start_ns,
                end_ns: end,
                thread: b.tid,
                ctx: b.ctx,
            };
            b.cpu[Stage::Solve as usize] += end.saturating_sub(self.start_ns);
            b.spans.push(span);
            b.ctx = self.prev;
            b.iter_events = self.prev_iter;
            if b.spans.len() >= SPAN_FLUSH_THRESHOLD {
                b.flush_events();
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Sessions and reports
// ---------------------------------------------------------------------------

/// An exclusive process-wide recording session.  At most one can be active;
/// [`begin`](Self::begin) returns `None` while another runs.
pub struct TraceSession {
    t0_ns: u64,
}

impl TraceSession {
    /// Start recording at `level` ([`TraceLevel::Off`] is promoted to
    /// [`TraceLevel::Stage`] — beginning a session means recording spans).
    pub fn begin(level: TraceLevel) -> Option<TraceSession> {
        if SESSION_ACTIVE.compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst).is_err()
        {
            return None;
        }
        // Discard anything still buffered from before this session (stale
        // spans of long-lived threads are filtered by start time at finish;
        // the store itself starts empty).
        let _ = TLS.try_with(|b| b.borrow_mut().flush_events());
        {
            let mut s = store();
            s.spans.clear();
            s.iters.clear();
            s.threads.clear();
        }
        SESSION_LEVEL.store(level.max(TraceLevel::Stage) as u8, Ordering::Relaxed);
        Some(TraceSession { t0_ns: now_ns() })
    }

    /// Begin a session as requested by the environment: `Some` when
    /// `CBS_TRACE` is set (level from `CBS_TRACE_LEVEL`), paired with the
    /// export path.
    pub fn begin_from_env() -> Option<(TraceSession, std::path::PathBuf)> {
        let path = trace_path_from_env()?;
        TraceSession::begin(TraceLevel::from_env()).map(|s| (s, path))
    }

    /// The session's start time on the [`now_ns`] clock.
    pub fn t0_ns(&self) -> u64 {
        self.t0_ns
    }

    /// Stop recording and drain every flushed buffer into a report.
    /// (Worker threads of the vendored rayon shim are scoped, hence joined
    /// — and flushed — before their dispatch returned; the calling thread
    /// flushes here.)
    pub fn finish(self) -> TraceReport {
        let t1 = now_ns();
        let _ = TLS.try_with(|b| b.borrow_mut().flush_events());
        let (mut spans, mut iters, threads) = {
            let mut s = store();
            (
                std::mem::take(&mut s.spans),
                std::mem::take(&mut s.iters),
                std::mem::take(&mut s.threads),
            )
        };
        SESSION_ACTIVE.store(false, Ordering::SeqCst);
        // Long-lived foreign threads (test harness peers) may have flushed
        // spans that predate this session; keep the report self-consistent.
        spans.retain(|s| s.start_ns >= self.t0_ns);
        iters.retain(|e| e.t_ns >= self.t0_ns);
        TraceReport { spans, iters, threads, t0_ns: self.t0_ns, t1_ns: t1 }
    }
}

/// Windowed per-stage aggregation over the *live* session: CPU-ns and
/// merged wall-ns of every span intersecting `[t0_ns, t1_ns]`, clipped to
/// the window.  `None` when no session is active.  Callers use this to
/// attribute one solve's window without finishing the session (e.g.
/// `CbsStatistics`' wall-ns fields).
pub fn aggregate_window(t0_ns: u64, t1_ns: u64) -> Option<StageAgg> {
    if !session_active() {
        return None;
    }
    let _ = TLS.try_with(|b| b.borrow_mut().flush_events());
    let s = store();
    Some(aggregate::aggregate_spans(s.spans.iter(), t0_ns, t1_ns))
}

/// Everything a finished session recorded.
pub struct TraceReport {
    /// All spans, unsorted (export sorts by start time).
    pub spans: Vec<Span>,
    /// Per-iteration events (empty below [`TraceLevel::Iter`]).
    pub iters: Vec<IterEvent>,
    /// `(thread id, label)` of every thread that recorded events.
    pub threads: Vec<(u32, &'static str)>,
    /// Session start on the [`now_ns`] clock.
    pub t0_ns: u64,
    /// Session end.
    pub t1_ns: u64,
}

impl TraceReport {
    /// Per-stage totals over the whole session window.
    pub fn stage_totals(&self) -> StageAgg {
        aggregate::aggregate_spans(self.spans.iter(), self.t0_ns, self.t1_ns)
    }

    /// The per-stage × per-context aggregation table, sorted by stage then
    /// context — the cost-model calibration samples.
    pub fn aggregate(&self) -> Vec<AggRow> {
        aggregate::aggregate_by_context(&self.spans)
    }

    /// Write the Chrome trace-event JSON (viewable in `chrome://tracing` /
    /// Perfetto).
    pub fn write_chrome_trace(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        chrome::write_chrome_trace(self, w)
    }

    /// [`write_chrome_trace`](Self::write_chrome_trace) to a file.
    pub fn save_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.write_chrome_trace(&mut w)?;
        use std::io::Write as _;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sessions are process-global; serialize the tests that use one.
    static SESSION_GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn cpu_totals_accumulate_without_a_session() {
        let before = cpu_totals();
        timed(Stage::Kernel, || std::hint::black_box((0..4096).sum::<u64>()));
        let after = cpu_totals();
        assert!(after[Stage::Kernel as usize] > before[Stage::Kernel as usize]);
    }

    #[test]
    fn session_records_spans_with_context() {
        let _gate = SESSION_GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let session = TraceSession::begin(TraceLevel::Stage).expect("no concurrent session");
        let handle = TraceHandle::resolve(TraceLevel::Off).with_energy(3).with_policy(2);
        {
            let _solve = handle.solve_scope(5);
            timed(Stage::Kernel, || std::hint::black_box((0..512).product::<u64>()));
        }
        let report = session.finish();
        let kernel: Vec<_> = report.spans.iter().filter(|s| s.stage == Stage::Kernel).collect();
        assert!(!kernel.is_empty());
        assert_eq!(kernel[0].ctx.energy, 3);
        assert_eq!(kernel[0].ctx.node, 5);
        assert_eq!(kernel[0].ctx.policy, 2);
        let solve: Vec<_> = report.spans.iter().filter(|s| s.stage == Stage::Solve).collect();
        assert_eq!(solve.len(), 1);
        assert!(solve[0].start_ns <= kernel[0].start_ns);
        assert!(solve[0].end_ns >= kernel[0].end_ns);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let handle = TraceHandle::disabled();
        assert!(!handle.is_enabled());
        let _scope = handle.solve_scope(0);
        // No session: record_span must not buffer anything observable.
        timed(Stage::Merge, || ());
        assert!(!session_active());
    }

    #[test]
    fn iteration_events_only_inside_armed_scopes() {
        let _gate = SESSION_GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let session = TraceSession::begin(TraceLevel::Iter).expect("no concurrent session");
        record_iteration(None, 0, 1.0); // outside any solve scope: dropped
        let handle = TraceHandle::resolve(TraceLevel::Off);
        {
            let _solve = handle.solve_scope(1);
            record_iteration(Some(2), 7, 1e-3);
        }
        let report = session.finish();
        assert_eq!(report.iters.len(), 1);
        assert_eq!(report.iters[0].iteration, 7);
        assert_eq!(report.iters[0].rhs, 2);
        assert_eq!(report.iters[0].ctx.node, 1);
    }

    #[test]
    fn stage_names_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::from_name("nope"), None);
    }
}
