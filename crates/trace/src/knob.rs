//! Typed environment-knob parsing — the single front door for every
//! `CBS_*` environment variable in the workspace.
//!
//! Before this module existed each crate hand-rolled its own
//! `std::env::var(..)` + parse + fallback chain, and the fallbacks had
//! quietly diverged: the bench harness would drop a *configured*
//! `PrecondPolicy` back to the hard default on a typo'd `CBS_PRECOND`,
//! while the library's `from_env` would never have looked at the
//! configured value in the first place.  [`knob`] fixes both problems at
//! once:
//!
//! * **Unset** variables return `None` — the caller keeps whatever default
//!   it already had (a configured policy, a hard-coded constant, …).
//! * **Malformed** values warn once per variable on stderr and then
//!   behave exactly like unset — they can no longer silently select a
//!   *different* non-default behavior than the caller intended.
//! * **Well-formed** values parse through the [`Knob`] trait, which each
//!   policy enum implements next to its `from_name` so the accepted
//!   syntax stays in one place per type.
//!
//! The `cbs-audit` K-lints close the loop: every `"CBS_*"` string literal
//! in the workspace must appear, classified as `fingerprint` or `neutral`,
//! in the README's env-knob table.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// A type that can be parsed from an environment-knob value.
///
/// Implementations must be *strict*: return `None` for anything that is
/// not a recognized spelling, so [`knob`] can warn instead of silently
/// snapping to a default the user did not ask for.
pub trait Knob: Sized {
    /// Parse a knob value; `None` means "not a recognized spelling".
    fn parse_knob(value: &str) -> Option<Self>;
}

impl Knob for usize {
    fn parse_knob(value: &str) -> Option<Self> {
        value.trim().parse().ok()
    }
}

impl Knob for u64 {
    fn parse_knob(value: &str) -> Option<Self> {
        value.trim().parse().ok()
    }
}

impl Knob for f64 {
    fn parse_knob(value: &str) -> Option<Self> {
        value.trim().parse().ok()
    }
}

impl Knob for String {
    fn parse_knob(value: &str) -> Option<Self> {
        Some(value.to_owned())
    }
}

/// Names that have already produced a malformed-value warning; each knob
/// warns at most once per process so per-call parse sites (benches, tight
/// config loops) do not spam stderr.
fn warned() -> &'static Mutex<BTreeSet<String>> {
    static WARNED: std::sync::OnceLock<Mutex<BTreeSet<String>>> = std::sync::OnceLock::new();
    WARNED.get_or_init(|| Mutex::new(BTreeSet::new()))
}

fn warn_once(name: &str, detail: &str) {
    let mut set = warned().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if set.insert(name.to_owned()) {
        eprintln!("cbs: warning: ignoring {detail}; {name} falls back to its default");
    }
}

/// Read and parse the environment knob `name`.
///
/// Returns `Some` only for a set, valid-unicode, well-formed value.  An
/// unset variable is silently `None`; a malformed or non-unicode value
/// warns once per process on stderr and is then treated as unset, so the
/// caller's default (hard-coded or configured) always wins over garbage.
pub fn knob<T: Knob>(name: &str) -> Option<T> {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(_)) => {
            warn_once(name, &format!("non-unicode value of {name}"));
            None
        }
        Ok(value) => match T::parse_knob(&value) {
            Some(parsed) => Some(parsed),
            None => {
                warn_once(name, &format!("malformed {name}={value:?}"));
                None
            }
        },
    }
}

/// Read the knob `name` as a filesystem path (no parsing — any non-empty
/// value is a path, including non-unicode ones).
pub fn knob_path(name: &str) -> Option<std::path::PathBuf> {
    std::env::var_os(name).filter(|v| !v.is_empty()).map(std::path::PathBuf::from)
}

/// `true` when the knob `name` is set at all — presence flags like
/// `CBS_BENCH_SMOKE=1`, where any value (even empty) enables the behavior.
pub fn knob_set(name: &str) -> bool {
    std::env::var_os(name).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_none() {
        assert_eq!(knob::<usize>("CBS_KNOB_TEST_UNSET"), None);
        assert!(!knob_set("CBS_KNOB_TEST_UNSET"));
        assert_eq!(knob_path("CBS_KNOB_TEST_UNSET"), None);
    }

    #[test]
    fn set_parses_and_malformed_defaults() {
        std::env::set_var("CBS_KNOB_TEST_USIZE", " 42 ");
        assert_eq!(knob::<usize>("CBS_KNOB_TEST_USIZE"), Some(42));
        std::env::set_var("CBS_KNOB_TEST_USIZE", "forty-two");
        assert_eq!(knob::<usize>("CBS_KNOB_TEST_USIZE"), None);
        std::env::set_var("CBS_KNOB_TEST_F64", "0.5");
        assert_eq!(knob::<f64>("CBS_KNOB_TEST_F64"), Some(0.5));
        std::env::set_var("CBS_KNOB_TEST_FLAG", "");
        assert!(knob_set("CBS_KNOB_TEST_FLAG"));
        assert_eq!(knob_path("CBS_KNOB_TEST_FLAG"), None, "empty path knob is unset");
        std::env::set_var("CBS_KNOB_TEST_PATH", "out/trace.json");
        assert_eq!(knob_path("CBS_KNOB_TEST_PATH"), Some("out/trace.json".into()));
    }

    #[test]
    fn warns_once_per_name() {
        std::env::set_var("CBS_KNOB_TEST_WARN", "bogus");
        assert_eq!(knob::<usize>("CBS_KNOB_TEST_WARN"), None);
        assert_eq!(knob::<usize>("CBS_KNOB_TEST_WARN"), None);
        let set = warned().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(set.contains("CBS_KNOB_TEST_WARN"));
    }
}
