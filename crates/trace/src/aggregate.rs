//! Span aggregation: per-stage totals (CPU-ns vs merged wall-ns) and the
//! per-stage × per-context table that feeds cost-model calibration.

use crate::{Span, SpanCtx, Stage, STAGE_COUNT};

/// Per-stage totals over a time window.
///
/// * `cpu_ns` — span durations summed across threads (equals the always-on
///   counter deltas when the window covers the same scopes).
/// * `wall_ns` — the measure of the *union* of the stage's span intervals
///   across all threads: how long at least one thread was inside the stage.
///   Under a serial executor `wall_ns == cpu_ns`; under a parallel executor
///   `wall_ns <= cpu_ns` with the ratio measuring the stage's effective
///   parallelism.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageAgg {
    /// Summed span durations per stage (CPU-ns).
    pub cpu_ns: [u64; STAGE_COUNT],
    /// Merged span-interval length per stage (wall-ns).
    pub wall_ns: [u64; STAGE_COUNT],
    /// Number of spans per stage.
    pub count: [u64; STAGE_COUNT],
}

impl StageAgg {
    /// CPU-ns of one stage.
    pub fn cpu(&self, stage: Stage) -> u64 {
        self.cpu_ns[stage as usize]
    }

    /// Merged wall-ns of one stage.
    pub fn wall(&self, stage: Stage) -> u64 {
        self.wall_ns[stage as usize]
    }

    /// Span count of one stage.
    pub fn spans(&self, stage: Stage) -> u64 {
        self.count[stage as usize]
    }
}

/// One row of the per-context aggregation table.
#[derive(Clone, Copy, Debug)]
pub struct AggRow {
    /// The stage.
    pub stage: Stage,
    /// The context all aggregated spans share.
    pub ctx: SpanCtx,
    /// Number of spans.
    pub count: u64,
    /// Summed durations (CPU-ns).
    pub cpu_ns: u64,
    /// Merged interval length (wall-ns).
    pub wall_ns: u64,
}

/// Length of the union of `intervals` (each `(start, end)`), destructively
/// sorting the scratch slice.
fn merged_length(intervals: &mut [(u64, u64)]) -> u64 {
    if intervals.is_empty() {
        return 0;
    }
    intervals.sort_unstable();
    let mut total = 0u64;
    let (mut cur_s, mut cur_e) = intervals[0];
    for &(s, e) in intervals.iter().skip(1) {
        if s > cur_e {
            total += cur_e - cur_s;
            (cur_s, cur_e) = (s, e);
        } else if e > cur_e {
            cur_e = e;
        }
    }
    total + (cur_e - cur_s)
}

/// Aggregate spans intersecting `[t0_ns, t1_ns]` per stage, clipping each
/// span to the window.
pub(crate) fn aggregate_spans<'a>(
    spans: impl Iterator<Item = &'a Span>,
    t0_ns: u64,
    t1_ns: u64,
) -> StageAgg {
    let mut agg = StageAgg::default();
    let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); STAGE_COUNT];
    for span in spans {
        let s = span.start_ns.max(t0_ns);
        let e = span.end_ns.min(t1_ns);
        if e <= s {
            continue;
        }
        let i = span.stage as usize;
        agg.cpu_ns[i] += e - s;
        agg.count[i] += 1;
        intervals[i].push((s, e));
    }
    for (i, iv) in intervals.iter_mut().enumerate() {
        agg.wall_ns[i] = merged_length(iv);
    }
    agg
}

/// Group spans by `(stage, context)`, producing one [`AggRow`] per group,
/// sorted by stage then context.
pub(crate) fn aggregate_by_context(spans: &[Span]) -> Vec<AggRow> {
    let mut keyed: Vec<(Stage, SpanCtx, u64, u64)> =
        spans.iter().map(|s| (s.stage, s.ctx, s.start_ns, s.end_ns)).collect();
    keyed.sort_unstable_by_key(|&(stage, ctx, start, _)| (stage, ctx, start));
    let mut rows: Vec<AggRow> = Vec::new();
    let mut intervals: Vec<(u64, u64)> = Vec::new();
    let flush = |rows: &mut Vec<AggRow>, intervals: &mut Vec<(u64, u64)>| {
        if let Some(row) = rows.last_mut() {
            row.wall_ns = merged_length(intervals);
        }
        intervals.clear();
    };
    for (stage, ctx, start, end) in keyed {
        match rows.last_mut() {
            Some(row) if row.stage == stage && row.ctx == ctx => {
                row.count += 1;
                row.cpu_ns += end - start;
            }
            _ => {
                flush(&mut rows, &mut intervals);
                rows.push(AggRow { stage, ctx, count: 1, cpu_ns: end - start, wall_ns: 0 });
            }
        }
        intervals.push((start, end));
    }
    flush(&mut rows, &mut intervals);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: Stage, start: u64, end: u64, ctx: SpanCtx) -> Span {
        Span { stage, start_ns: start, end_ns: end, thread: 0, ctx }
    }

    #[test]
    fn window_clips_and_merges() {
        let c = SpanCtx::NONE;
        let spans = [
            span(Stage::Kernel, 0, 100, c),
            span(Stage::Kernel, 50, 150, c),  // overlaps the first
            span(Stage::Kernel, 300, 400, c), // disjoint
            span(Stage::Merge, 120, 130, c),
        ];
        let agg = aggregate_spans(spans.iter(), 0, 1000);
        assert_eq!(agg.cpu(Stage::Kernel), 100 + 100 + 100);
        assert_eq!(agg.wall(Stage::Kernel), 150 + 100);
        assert_eq!(agg.spans(Stage::Kernel), 3);
        assert_eq!(agg.cpu(Stage::Merge), 10);
        // Clipped window: only the tail of the last kernel span survives.
        let clipped = aggregate_spans(spans.iter(), 350, 1000);
        assert_eq!(clipped.cpu(Stage::Kernel), 50);
        assert_eq!(clipped.wall(Stage::Kernel), 50);
        assert_eq!(clipped.spans(Stage::Kernel), 1);
    }

    #[test]
    fn context_table_groups_and_orders() {
        let a = SpanCtx::NONE.with_energy(0).with_node(1);
        let b = SpanCtx::NONE.with_energy(1).with_node(1);
        let spans = vec![
            span(Stage::Kernel, 0, 10, b),
            span(Stage::Kernel, 20, 30, a),
            span(Stage::Kernel, 25, 40, a),
            span(Stage::Solve, 0, 50, a),
        ];
        let rows = aggregate_by_context(&spans);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].stage, Stage::Kernel);
        assert_eq!(rows[0].ctx, a);
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].cpu_ns, 10 + 15);
        assert_eq!(rows[0].wall_ns, 20); // [20,30] ∪ [25,40]
        assert_eq!(rows[1].ctx, b);
        assert_eq!(rows[2].stage, Stage::Solve);
        assert_eq!(rows[2].wall_ns, 50);
    }
}
