//! Hand-rolled Chrome trace-event JSON writer (the workspace vendors no
//! JSON library — same constraint `bench_check` honors).
//!
//! The format is the ["Trace Event Format"] consumed by `chrome://tracing`
//! and Perfetto: one `"X"` (complete) event per span with microsecond
//! `ts`/`dur`, `"M"` metadata events naming the process and threads, and —
//! at [`TraceLevel::Iter`](crate::TraceLevel::Iter) — one `"i"` (instant)
//! event per BiCG iteration carrying the residual.  Timestamps are relative
//! to the session start and written with nanosecond precision
//! (`123.456` µs), so a reader parsing them as `f64` recovers the exact
//! nanosecond values.
//!
//! ["Trace Event Format"]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::io::{self, Write};

use crate::{policy_name, IterEvent, Span, SpanCtx, TraceReport, CTX_UNSET, POLICY_UNSET};

/// Nanoseconds → exact decimal microseconds.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Append the context keys of `ctx` as JSON object members (no leading
/// comma; returns whether anything was written).
fn push_ctx_args(out: &mut String, ctx: &SpanCtx) -> bool {
    let mut any = false;
    let sep = |out: &mut String, any: &mut bool| {
        if *any {
            out.push_str(", ");
        }
        *any = true;
    };
    if ctx.energy != CTX_UNSET {
        sep(out, &mut any);
        out.push_str(&format!("\"energy\": {}", ctx.energy));
    }
    if ctx.slice != CTX_UNSET {
        sep(out, &mut any);
        out.push_str(&format!("\"slice\": {}", ctx.slice));
    }
    if ctx.node != CTX_UNSET {
        sep(out, &mut any);
        out.push_str(&format!("\"node\": {}", ctx.node));
    }
    if ctx.policy != POLICY_UNSET {
        sep(out, &mut any);
        match policy_name(ctx.policy) {
            Some(name) => out.push_str(&format!("\"policy\": \"{name}\"")),
            None => out.push_str(&format!("\"policy\": {}", ctx.policy)),
        }
    }
    any
}

fn span_line(span: &Span, t0_ns: u64) -> String {
    let mut line = format!(
        "{{\"ph\": \"X\", \"name\": \"{}\", \"cat\": \"cbs\", \"pid\": 1, \"tid\": {}, \
         \"ts\": {}, \"dur\": {}",
        span.stage.name(),
        span.thread,
        us(span.start_ns - t0_ns),
        us(span.end_ns - span.start_ns),
    );
    let mut args = String::new();
    if push_ctx_args(&mut args, &span.ctx) {
        line.push_str(", \"args\": {");
        line.push_str(&args);
        line.push('}');
    }
    line.push('}');
    line
}

fn iter_line(ev: &IterEvent, t0_ns: u64) -> String {
    // JSON has no NaN/Infinity literals; clamp pathological residuals.
    let residual = if ev.residual.is_finite() { ev.residual } else { -1.0 };
    let mut line = format!(
        "{{\"ph\": \"i\", \"name\": \"bicg_iter\", \"cat\": \"cbs\", \"pid\": 1, \
         \"tid\": {}, \"ts\": {}, \"s\": \"t\", \"args\": {{",
        ev.thread,
        us(ev.t_ns - t0_ns),
    );
    let mut any = push_ctx_args(&mut line, &ev.ctx);
    let sep = |line: &mut String, any: &mut bool| {
        if *any {
            line.push_str(", ");
        }
        *any = true;
    };
    if ev.rhs != CTX_UNSET {
        sep(&mut line, &mut any);
        line.push_str(&format!("\"rhs\": {}", ev.rhs));
    }
    sep(&mut line, &mut any);
    line.push_str(&format!("\"iteration\": {}, \"residual\": {:e}}}}}", ev.iteration, residual));
    line
}

/// Write `report` as Chrome trace-event JSON.
pub(crate) fn write_chrome_trace(report: &TraceReport, w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [")?;
    let mut first = true;
    let mut emit = |w: &mut dyn Write, line: &str| -> io::Result<()> {
        if first {
            first = false;
            writeln!(w, "{line}")
        } else {
            writeln!(w, ",{line}")
        }
    };
    emit(
        w,
        "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"cbs\"}}",
    )?;
    let mut threads = report.threads.clone();
    threads.sort_unstable();
    for (tid, label) in &threads {
        emit(
            w,
            &format!(
                "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{label}-{tid}\"}}}}"
            ),
        )?;
    }
    // Merge spans and iteration events into one stream sorted by timestamp
    // (ties: spans first, then file-stable order), so readers see monotone
    // `ts` without sorting themselves.
    let mut order: Vec<(u64, u8, usize)> = report
        .spans
        .iter()
        .enumerate()
        .map(|(i, s)| (s.start_ns, 0u8, i))
        .chain(report.iters.iter().enumerate().map(|(i, e)| (e.t_ns, 1u8, i)))
        .collect();
    order.sort_unstable();
    for (_, kind, i) in order {
        let line = if kind == 0 {
            span_line(&report.spans[i], report.t0_ns)
        } else {
            iter_line(&report.iters[i], report.t0_ns)
        };
        emit(w, &line)?;
    }
    writeln!(w, "]}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stage;

    #[test]
    fn writer_emits_sorted_balanced_json() {
        let ctx = SpanCtx::NONE.with_energy(2).with_node(1).with_policy(0);
        let report = TraceReport {
            spans: vec![
                Span { stage: Stage::Solve, start_ns: 1000, end_ns: 9000, thread: 1, ctx },
                Span { stage: Stage::Kernel, start_ns: 2000, end_ns: 3500, thread: 1, ctx },
            ],
            iters: vec![IterEvent {
                t_ns: 2500,
                thread: 1,
                ctx,
                rhs: 0,
                iteration: 1,
                residual: 1e-4,
            }],
            threads: vec![(1, "main")],
            t0_ns: 1000,
            t1_ns: 10_000,
        };
        let mut buf = Vec::new();
        report.write_chrome_trace(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"name\": \"solve\""));
        assert!(text.contains("\"name\": \"kernel\""));
        assert!(text.contains("\"name\": \"bicg_iter\""));
        assert!(text.contains("\"policy\": \"matrix-free\""));
        assert!(text.contains("\"ts\": 0.000, \"dur\": 8.000"));
        // Balanced braces/brackets overall.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
        // Solve (earlier start) precedes kernel precedes the instant event.
        let solve = text.find("\"solve\"").unwrap();
        let kernel = text.find("\"kernel\"").unwrap();
        let iter = text.find("\"bicg_iter\"").unwrap();
        assert!(solve < kernel && kernel < iter);
    }
}
