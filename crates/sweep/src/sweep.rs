//! The multi-energy sweep orchestrator.
//!
//! [`EnergySweep`] owns the whole Figures-6/11 workload: it plans the scan
//! energies into release rounds ([`cbs_parallel::SweepSchedule`]), solves
//! each round's per-energy groups through one flattened task pool
//! (the `pool` module), warm-starts every group from the nearest
//! already-completed energy's solutions, adaptively bisects intervals where
//! the propagating-channel count changes (or a caller-supplied predicate
//! fires), and checkpoints after every completed energy so a killed sweep
//! resumes bit-identically.
//!
//! Determinism invariants, locked in by `tests/sweep_determinism.rs` at the
//! workspace root:
//!
//! * serial and rayon executors produce bit-identical results for any
//!   fixed configuration (warm or cold);
//! * a cold sweep ([`SweepConfig::cold`]) on an ascending grid is
//!   bit-identical to the per-energy `compute_cbs` loop;
//! * a resumed sweep reproduces the uninterrupted one bit-for-bit
//!   (counters included; wall-clock timings are per-run).

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

use cbs_core::{
    classify_point, extract_from_moments, extract_sliced, solve_qep_with, BlockPolicy, CbsPoint,
    CbsStatistics, ComplexBandStructure, PrecondPolicy, QepProblem, SlicedPlan, SsConfig,
};
use cbs_dft::BandStructure;
use cbs_linalg::CVector;
use cbs_parallel::{
    CalibrationSample, CellId, CostModel, SerialExecutor, TaskExecutor, WorkloadSpec,
};
use cbs_sparse::{AssembledPattern, FactoredProjector, KernelLayout, LinearOperator};
use cbs_trace::TraceHandle;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{AutoDecision, CheckpointError, ProbeSample, SweepCheckpoint};
use crate::config::SweepConfig;
use crate::pool::{solve_round, SolveGroup};

/// Hysteresis margin of the auto-tuning decision: a challenger cell only
/// displaces the incumbent when its predicted wall-clock wins by this
/// fraction, so probe timing jitter below the margin cannot flip the
/// committed decision (the measured gaps between cells — ILU(0) roughly
/// halving the assembled wall, per-node ~20% under per-rhs — are well
/// above it).
const AUTO_MARGIN: f64 = 0.10;

/// Largest slice count the auto-tuning slice tuner will consider.
const AUTO_MAX_SLICES: u32 = 4;

/// Process-wide memo of probe measurements ("wisdom", FFTW-style), keyed
/// by everything the probe counters depend on (system identity, probe
/// configuration, candidate set).  Two sweeps of the same workload in one
/// process — serial and rayon, or back-to-back runs in a test — reuse the
/// first probe's samples and therefore commit the *same* decision; without
/// the memo, millisecond-scale wall jitter could rank two near-tied cells
/// differently between runs.  Across processes the checkpoint replay (not
/// the memo) is what pins a resumed sweep's decision.
#[allow(clippy::type_complexity)]
fn probe_memo(
) -> &'static std::sync::Mutex<Vec<(Vec<u64>, Vec<CalibrationSample>, Vec<ProbeSample>)>> {
    static MEMO: std::sync::OnceLock<
        std::sync::Mutex<Vec<(Vec<u64>, Vec<CalibrationSample>, Vec<ProbeSample>)>>,
    > = std::sync::OnceLock::new();
    MEMO.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// A full `(x, x̃)` solution table in engine job order
/// (`point_index * N_rh + rhs_index`) — the currency of warm-starting: each
/// completed energy donates its table, each new energy seeds from the
/// nearest donor.
pub type SeedTable = Vec<(CVector, CVector)>;

/// Where a scan energy came from.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum EnergyOrigin {
    /// Member of the caller's initial grid (position in the ascending,
    /// deduplicated grid).
    Initial(usize),
    /// Inserted by adaptive refinement as the midpoint of a flagged
    /// interval.
    Refined {
        /// Lower endpoint of the bisected interval.
        lo: f64,
        /// Upper endpoint of the bisected interval.
        hi: f64,
    },
}

/// Per-energy solver counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyStats {
    /// Primal BiCG iterations over the energy's solves.
    pub bicg_iterations: usize,
    /// Operator applications over the energy's solves (matvec-equivalents;
    /// identical under every `BlockPolicy`).
    pub matvecs: usize,
    /// Operator-storage traversals actually performed (fused block applies
    /// count the operator's `traversal_weight`; up to `N_rh`x below
    /// [`matvecs`](Self::matvecs) under `BlockPolicy::PerNode`, and 3x
    /// fewer per apply under the assembled operator).
    pub operator_traversals: usize,
    /// Numeric refills of the assembled `P(z)` pattern (ILU(0)
    /// factorizations included); zero under `PrecondPolicy::MatrixFree`.
    pub operator_assemblies: usize,
    /// Solves that started from a donor seed.
    pub warm_solves: usize,
    /// Solves that started cold.
    pub cold_solves: usize,
    /// Iterations spent in warm-started solves.
    pub warm_iterations: usize,
    /// Iterations spent in cold solves.
    pub cold_iterations: usize,
    /// Solves run under the majority-stop cap.
    pub capped_solves: usize,
    /// Eigenpairs accepted by the residual filter.
    pub accepted: usize,
    /// Candidates discarded by the residual filter.
    pub discarded: usize,
    /// Numerical rank selected by the Hankel SVD.
    pub numerical_rank: usize,
}

/// One completed scan energy: its classified CBS points plus provenance and
/// counters.  The unit of checkpointing.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EnergyRecord {
    /// The scan energy (hartree).
    pub energy: f64,
    /// Where this energy came from.
    pub origin: EnergyOrigin,
    /// Energy of the warm-start donor, if the solves were seeded.
    pub seeded_from: Option<f64>,
    /// Solver counters.
    pub stats: EnergyStats,
    /// Classified solutions at this energy (`energy_index` is assigned at
    /// assembly time, once the final grid is known).
    pub points: Vec<CbsPoint>,
}

impl EnergyRecord {
    /// Number of propagating channels at this energy.
    pub fn channel_count(&self) -> usize {
        self.points.iter().filter(|p| p.propagating).count()
    }
}

/// Decides whether the interval between two completed neighbouring energies
/// deserves bisection, *in addition to* the built-in channel-count-change
/// rule.  Implementations must be pure functions of their arguments so
/// refinement stays deterministic across executors and resumes.
pub trait RefinementPredicate: Sync {
    /// `true` to bisect the interval `(lo.energy, hi.energy)`.
    fn should_refine(&self, lo: &EnergyRecord, hi: &EnergyRecord) -> bool;
}

/// Bisect intervals that bracket a band edge of a reference (real-k) band
/// structure — the `cbs-dft` predicate for resolving channel openings
/// cheaply: band edges are exactly where the CBS channel count jumps.
///
/// The (sorted) edge list is extracted once at construction, so each
/// interval query is a scan of a small precomputed vector rather than a
/// rescan of the full band structure.
pub struct BandEdgeRefiner {
    edges: Vec<f64>,
}

impl BandEdgeRefiner {
    /// Precompute the band edges of `bands` (see
    /// [`BandStructure::band_edges`]).
    pub fn new(bands: &BandStructure) -> Self {
        Self { edges: bands.band_edges(0.0) }
    }
}

impl RefinementPredicate for BandEdgeRefiner {
    fn should_refine(&self, lo: &EnergyRecord, hi: &EnergyRecord) -> bool {
        // The shared half-open `(a, b]` convention of
        // `BandStructure::brackets_band_edge`: an edge landing exactly on a
        // completed grid energy triggers the interval below it instead of
        // silently slipping between two strict inequalities.
        cbs_dft::edges_bracket(&self.edges, lo.energy, hi.energy)
    }
}

/// Result of a completed sweep.
#[derive(Clone, Debug)]
pub struct SweepResult {
    /// The band structure: energies ascending (refined energies merged in),
    /// every point carrying its `energy_index`.
    pub cbs: ComplexBandStructure,
    /// Aggregate statistics, including the cold/warm iteration split and
    /// the number of refined energies.
    pub stats: CbsStatistics,
    /// Per-energy records, ascending in energy.
    pub records: Vec<EnergyRecord>,
    /// The committed auto-tuning decision, when the sweep ran with
    /// `SsConfig::auto()` / `CBS_AUTO=1` (`None` for fixed configurations).
    pub auto: Option<AutoDecision>,
}

/// Optional knobs of [`EnergySweep::run_with`].
#[derive(Default)]
pub struct RunOptions<'p> {
    /// Write a [`SweepCheckpoint`] here after every completed energy
    /// (atomically: temp file + rename).
    pub checkpoint_path: Option<&'p Path>,
    /// Resume from a previously saved checkpoint.  The configuration,
    /// period and initial grid must match bit-exactly.
    pub resume: Option<SweepCheckpoint>,
    /// Stop (checkpointably) after this many *newly solved* energies — the
    /// test hook that simulates a killed sweep.
    pub max_new_energies: Option<usize>,
    /// Extra refinement trigger, OR-ed with the channel-count-change rule.
    pub predicate: Option<&'p dyn RefinementPredicate>,
}

/// What [`EnergySweep::run_with`] came back with.
pub enum RunOutcome {
    /// The sweep ran to completion.
    Complete(SweepResult),
    /// The `max_new_energies` budget ran out; the checkpoint resumes it.
    Interrupted(SweepCheckpoint),
}

impl RunOutcome {
    /// Unwrap a completed sweep.
    pub fn expect_complete(self, msg: &str) -> SweepResult {
        match self {
            RunOutcome::Complete(r) => r,
            RunOutcome::Interrupted(_) => panic!("{msg}"),
        }
    }
}

/// Warm-start donor bank: completed energies' solution tables in completion
/// order, evicting the oldest beyond the configured capacity.
struct SeedBank {
    entries: VecDeque<(f64, SeedTable)>,
}

impl SeedBank {
    fn new() -> Self {
        Self { entries: VecDeque::new() }
    }

    fn insert(&mut self, energy: f64, table: SeedTable, capacity: usize) {
        self.entries.push_back((energy, table));
        while self.entries.len() > capacity.max(1) {
            self.entries.pop_front();
        }
    }

    /// Nearest donor by `|ΔE|`; ties resolved toward the lower energy so
    /// the choice is deterministic.
    fn nearest(&self, energy: f64) -> Option<(f64, &SeedTable)> {
        self.entries
            .iter()
            .min_by(|a, b| {
                let da = (a.0 - energy).abs();
                let db = (b.0 - energy).abs();
                da.partial_cmp(&db).unwrap().then(a.0.partial_cmp(&b.0).unwrap())
            })
            .map(|(e, t)| (*e, t))
    }
}

/// Mutable progress of one run (completed records, donor bank, counters).
struct State {
    records: Vec<EnergyRecord>,
    /// Bits of completed energies → index into `records`.
    done: BTreeMap<u64, usize>,
    /// Committed donor tables: only *fully completed* batches.  Donor
    /// selection reads exclusively from here, so the donors of a batch are
    /// a pure function of the batches before it — which is what keeps a
    /// mid-batch kill/resume bit-identical even once capacity eviction
    /// starts (the in-flight batch's donations live in `pending` until the
    /// batch completes, and are carried by the checkpoint).
    bank: SeedBank,
    /// Donations of the batch currently in flight, in completion order,
    /// committed to `bank` when the batch's last energy finishes.
    pending: Vec<(f64, SeedTable)>,
    new_energies: usize,
    linear_solve_seconds: f64,
    extraction_seconds: f64,
}

enum BatchStatus {
    Done,
    BudgetExhausted,
}

/// The batched, warm-started, adaptive multi-energy CBS driver.
pub struct EnergySweep<'a> {
    h00: &'a dyn LinearOperator,
    h01: &'a dyn LinearOperator,
    period: f64,
    config: SweepConfig,
    /// Assembled-operator pattern shared by every scan energy (the pattern
    /// is energy-independent); required for the assembled `PrecondPolicy`
    /// variants, which fall back to matrix-free without it.
    pattern: Option<AssembledPattern>,
    /// Factored non-local projector paired with the pattern (see
    /// `QepProblem::with_projector`): when present, the pattern is expected
    /// to cover the sparse-only blocks and the projector tail is applied in
    /// factored form by every assembled node.
    projector: Option<FactoredProjector>,
}

impl<'a> EnergySweep<'a> {
    /// Build a sweep over the block Hamiltonian `h00`/`h01` with lattice
    /// period `period` (bohr).
    pub fn new(
        h00: &'a dyn LinearOperator,
        h01: &'a dyn LinearOperator,
        period: f64,
        config: SweepConfig,
    ) -> Self {
        assert_eq!(h00.nrows(), h00.ncols(), "H00 must be square");
        assert_eq!(h01.nrows(), h01.ncols(), "H01 must be square");
        assert_eq!(h00.nrows(), h01.nrows(), "H00 and H01 must have the same size");
        assert!(period > 0.0, "period must be positive");
        assert!(config.ss.n_rh > 0, "need at least one right-hand side");
        Self { h00, h01, period, config, pattern: None, projector: None }
    }

    /// Attach the assembled-operator pattern
    /// (`cbs_sparse::AssembledPattern::build` over the CSR forms of the
    /// blocks).  One symbolic analysis serves the whole sweep: the
    /// structure is shared across every `(energy x node)` job of the
    /// flattened pool, refined energies included.
    pub fn with_pattern(mut self, pattern: AssembledPattern) -> Self {
        assert_eq!(pattern.dim(), self.h00.nrows(), "pattern dimension mismatch");
        self.pattern = Some(pattern);
        self
    }

    /// Attach a factored non-local projector to pair with the pattern
    /// (`cbs_dft::BlockHamiltonian::qep_factored` produces a matched pair).
    /// The pattern must then cover the sparse-only blocks — the projector
    /// contribution is accumulated on top by every assembled node.
    pub fn with_projector(mut self, projector: FactoredProjector) -> Self {
        assert_eq!(projector.dim(), self.h00.nrows(), "projector dimension mismatch");
        self.projector = Some(projector);
        self
    }

    /// The sweep's configuration.
    pub fn config(&self) -> &SweepConfig {
        &self.config
    }

    /// Run the sweep to completion with no checkpointing.
    pub fn run<E: TaskExecutor>(&self, energies: &[f64], executor: &E) -> SweepResult {
        self.run_with(energies, executor, RunOptions::default())
            .expect("no checkpoint I/O involved")
            .expect_complete("no energy budget set")
    }

    /// Run with checkpointing, resume, an energy budget, or an extra
    /// refinement predicate.
    pub fn run_with<E: TaskExecutor>(
        &self,
        energies: &[f64],
        executor: &E,
        opts: RunOptions<'_>,
    ) -> Result<RunOutcome, CheckpointError> {
        let mut opts = opts;
        let n = self.h00.dim();
        let stage_start = cbs_sparse::stage_snapshot();
        let cpu_start = cbs_trace::cpu_totals();
        let trace_t0 = cbs_trace::now_ns();

        // Ascending, bit-deduplicated grid: the canonical processing order.
        let mut grid: Vec<f64> = energies.to_vec();
        grid.sort_by(|a, b| a.partial_cmp(b).expect("scan energies must not be NaN"));
        grid.dedup_by(|a, b| a.to_bits() == b.to_bits());
        assert!(!grid.is_empty(), "need at least one scan energy");

        // Calibrated auto-tuning: decide the policy cell *before* the
        // fingerprint, because the fingerprint carries the effective
        // (post-decision) policy.  A resumed sweep replays the checkpoint's
        // committed decision instead of re-probing — probe wall-clocks are
        // not reproducible, the recorded decision is.
        let auto_enabled = self.config.ss.auto_enabled();
        let decision: Option<AutoDecision> = if auto_enabled {
            match opts.resume.as_ref() {
                Some(cp) => Some(cp.auto.clone().ok_or_else(|| {
                    CheckpointError::Mismatch(
                        "checkpoint carries no auto-tuning decision: cannot resume a \
                         fixed-policy checkpoint into an auto-tuned sweep"
                            .into(),
                    )
                })?),
                None => Some(self.calibration_probe(grid[0], grid.len())),
            }
        } else {
            None
        };
        let ss_eff: SsConfig = match &decision {
            Some(d) => self.config.ss.resolve_auto(Some(d.cell())),
            None => self.config.ss,
        };

        let mut fingerprint = self.config.fingerprint(self.period);
        // The *effective* operator policy is part of the resume contract:
        // an assembled `PrecondPolicy` without an attached pattern silently
        // falls back to matrix-free arithmetic, so a checkpoint written in
        // that state must not be resumable by a sweep that does carry a
        // pattern (or vice versa) — the two trajectories differ bitwise.
        let assembled_effective = ss_eff.precond.is_assembled() && self.pattern.is_some();
        fingerprint.push(assembled_effective as u64);
        // Two further arithmetic-changing knobs of the assembled path: a
        // non-empty factored projector (CSR + low-rank split instead of the
        // expanded pattern) and the planar kernel layout (non-bitwise FMA
        // kernels).  Either one changes the trajectory bitwise, so both are
        // part of the resume contract.
        fingerprint.push(
            (assembled_effective && self.projector.as_ref().is_some_and(|p| !p.is_empty())) as u64,
        );
        fingerprint.push(
            (assembled_effective
                && self.pattern.as_ref().is_some_and(|p| p.layout() == KernelLayout::Split))
                as u64,
        );
        // Auto-tuning joins the resume contract: the flag itself (an auto
        // and a fixed sweep of the same nominal config must not share
        // checkpoints), and, when on, the committed arithmetic-changing
        // policies (precond, slices — block is bitwise-interchangeable and
        // stays out, matching the fixed-config fingerprint rules).
        fingerprint.push(auto_enabled as u64);
        if let Some(d) = &decision {
            fingerprint.push(d.precond.trace_code() as u64);
            fingerprint.push(d.slices as u64);
        }

        let mut st = State {
            records: Vec::new(),
            done: BTreeMap::new(),
            bank: SeedBank::new(),
            pending: Vec::new(),
            new_energies: 0,
            linear_solve_seconds: 0.0,
            extraction_seconds: 0.0,
        };
        if let Some(cp) = opts.resume.take() {
            if cp.fingerprint != fingerprint {
                return Err(CheckpointError::Mismatch(
                    "configuration fingerprint mismatch: cannot resume".into(),
                ));
            }
            let grid_bits: Vec<u64> = grid.iter().map(|e| e.to_bits()).collect();
            let cp_bits: Vec<u64> = cp.initial_energies.iter().map(|e| e.to_bits()).collect();
            if grid_bits != cp_bits {
                return Err(CheckpointError::Mismatch(
                    "energy grid mismatch: cannot resume".into(),
                ));
            }
            for (i, r) in cp.records.iter().enumerate() {
                st.done.insert(r.energy.to_bits(), i);
            }
            st.records = cp.records;
            for (e, t) in cp.seed_bank {
                st.bank.entries.push_back((e, t));
            }
            st.pending = cp.pending_donations;
        }

        // The sliced plan (partition geometry, per-slice configurations and
        // source blocks) depends only on the dimension and the *effective*
        // configuration, so one instance serves every scan energy of the
        // sweep — the single-contour policy yields a trivial one-slice
        // plan whose source block is bitwise the historical `source_block`.
        let plan =
            SlicedPlan::build(n, &ss_eff).expect("invalid slice policy in sweep configuration");
        let checkpoint = |st: &State| SweepCheckpoint {
            fingerprint: fingerprint.clone(),
            auto: decision.clone(),
            initial_energies: grid.clone(),
            records: st.records.clone(),
            seed_bank: st.bank.entries.iter().cloned().collect(),
            pending_donations: st.pending.clone(),
        };

        // --- Initial grid, released round by round. -----------------------
        for round in self.config.schedule().rounds(grid.len()) {
            let batch: Vec<(f64, EnergyOrigin)> =
                round.into_iter().map(|i| (grid[i], EnergyOrigin::Initial(i))).collect();
            match self.solve_batch(batch, &plan, &ss_eff, executor, &mut st, &opts, &checkpoint)? {
                BatchStatus::Done => {}
                BatchStatus::BudgetExhausted => {
                    return Ok(RunOutcome::Interrupted(checkpoint(&st)))
                }
            }
        }

        // --- Adaptive refinement, generation by generation. ---------------
        //
        // Each generation's candidate list is a pure function of the records
        // *visible* to it (initial grid + earlier generations), replayed
        // from completed records on resume — so an interrupted sweep makes
        // exactly the same refinement decisions as an uninterrupted one.
        if self.config.max_refinements > 0 {
            let mut visible: Vec<usize> = (0..st.records.len())
                .filter(|&i| matches!(st.records[i].origin, EnergyOrigin::Initial(_)))
                .collect();
            loop {
                // Replay invariant: only *earlier generations* (the visible
                // refined records) count against this generation's budget,
                // so a resumed sweep recomputes exactly the candidate list
                // the uninterrupted sweep acted on.
                let visible_refined = visible
                    .iter()
                    .filter(|&&i| matches!(st.records[i].origin, EnergyOrigin::Refined { .. }))
                    .count();
                let candidates = self.refinement_candidates(
                    &st,
                    &visible,
                    self.config.max_refinements.saturating_sub(visible_refined),
                    opts.predicate,
                );
                if candidates.is_empty() {
                    break;
                }
                match self.solve_batch(
                    candidates.clone(),
                    &plan,
                    &ss_eff,
                    executor,
                    &mut st,
                    &opts,
                    &checkpoint,
                )? {
                    BatchStatus::Done => {}
                    BatchStatus::BudgetExhausted => {
                        return Ok(RunOutcome::Interrupted(checkpoint(&st)))
                    }
                }
                for (e, _) in &candidates {
                    let idx = st.done[&e.to_bits()];
                    visible.push(idx);
                }
            }
        }

        let extraction_ns = cbs_trace::cpu_totals()[cbs_trace::Stage::Extraction as usize]
            .wrapping_sub(cpu_start[cbs_trace::Stage::Extraction as usize]);
        // Span-merged wall attribution is available only while a trace
        // session records; `None` leaves the wall fields zero.
        let wall = cbs_trace::aggregate_window(trace_t0, cbs_trace::now_ns());
        Ok(RunOutcome::Complete(self.assemble(
            st,
            cbs_sparse::stage_delta(stage_start),
            extraction_ns,
            wall,
            decision,
        )))
    }

    /// Run the calibration probe: solve the first scan energy under 2-3
    /// candidate policy cells with a reduced configuration, fit a
    /// [`CostModel`] from the measured counters + stage wall-ns, and commit
    /// the predicted winner (slice count included).
    ///
    /// Determinism of the committed decision rests on four legs: the probe
    /// always runs on the [`SerialExecutor`] (so its counters are identical
    /// whatever executor drives the sweep); candidate order is fixed and
    /// the model only switches cells past the [`AUTO_MARGIN`] hysteresis
    /// (so timing jitter cannot flip a ranking with a real gap); probe
    /// measurements are memoized per process ([`probe_memo`]) so every
    /// sweep of the same workload in a process derives its decision from
    /// one consistent sample set — serial and rayon runs of the same
    /// system commit the *same* cell; and the decision is recorded in the
    /// v5 checkpoint (so kill/resume *replays* it rather than re-probing,
    /// across process boundaries where the memo cannot reach).  Probe
    /// solves are throwaway — their solutions never enter the warm-start
    /// bank, so an auto sweep stays bit-identical to the fixed
    /// configuration it selects.
    fn calibration_probe(&self, energy: f64, n_energies: usize) -> AutoDecision {
        let n = self.h00.dim();
        let nominal = self.config.ss;
        let nnz = self.pattern.as_ref().map_or(n * n, cbs_sparse::AssembledPattern::nnz);
        // Candidate cells, cheapest-to-assemble first (the fixed priority
        // order the hysteresis respects).  With a pattern attached the
        // interesting axis is the preconditioner ladder; without one every
        // assembled policy would silently fall back to matrix-free, so the
        // axis left is the block granularity.
        let candidates: Vec<(BlockPolicy, PrecondPolicy)> = if self.pattern.is_some() {
            vec![
                (nominal.block, PrecondPolicy::MatrixFree),
                (nominal.block, PrecondPolicy::Assembled),
                (nominal.block, PrecondPolicy::AssembledIlu0),
            ]
        } else {
            vec![
                (BlockPolicy::PerNode, PrecondPolicy::MatrixFree),
                (BlockPolicy::PerRhs, PrecondPolicy::MatrixFree),
            ]
        };
        // The reduced probe configuration: enough quadrature and sources to
        // exercise the real kernels, cheap enough that the probe stays a
        // few percent of the sweep (the bench gate holds the auto row to
        // within 10% of the best fixed row, probe included).
        let probe_ss = SsConfig {
            n_int: (nominal.n_int / 2).max(4),
            n_rh: (nominal.n_rh / 2).max(2),
            bicg_tolerance: nominal.bicg_tolerance.max(1e-6),
            slice: cbs_core::SlicePolicy::single(),
            auto: false,
            ..nominal
        };
        // Everything the probe's counters and walls can depend on goes
        // into the memo key: system identity (dimension, pattern nnz,
        // probe energy, period), the reduced configuration, and the
        // candidate set.
        let mut key: Vec<u64> = vec![
            n as u64,
            nnz as u64,
            probe_ss.n_int as u64,
            probe_ss.n_mm as u64,
            probe_ss.n_rh as u64,
            probe_ss.bicg_max_iterations as u64,
            probe_ss.bicg_tolerance.to_bits(),
            probe_ss.seed,
            energy.to_bits(),
            self.period.to_bits(),
        ];
        for &(block, precond) in &candidates {
            key.push(block as u64);
            key.push(precond.trace_code() as u64);
        }
        let memoized = probe_memo()
            .lock()
            .unwrap()
            .iter()
            .find(|(k, _, _)| *k == key)
            .map(|(_, s, p)| (s.clone(), p.clone()));
        let (samples, probe) = match memoized {
            Some(hit) => hit,
            None => self.measure_probe_candidates(energy, &candidates, &probe_ss, n, nnz, key),
        };
        let workload =
            WorkloadSpec { dimension: n, nnz, n_rh: nominal.n_rh, energies: n_energies.max(1) };
        let cell = CostModel::fit(&samples).and_then(|model| {
            let best = model.best_cell(&workload, AUTO_MARGIN)?;
            let slices = model.tune_slices(best, &workload, AUTO_MAX_SLICES, AUTO_MARGIN);
            Some(cbs_core::AutoCell {
                block: if best.per_rhs { BlockPolicy::PerRhs } else { BlockPolicy::PerNode },
                precond: PrecondPolicy::from_index(best.precond as u64)?,
                slices: slices as usize,
            })
        });
        // `resolve_auto` handles the degenerate-probe fallback (default
        // policy cell, warn-once); either way the *resolved* cell is what
        // the checkpoint commits, so resume replays exactly what ran.
        let resolved = nominal.resolve_auto(cell);
        AutoDecision {
            block: resolved.block,
            precond: resolved.precond,
            slices: resolved.slice.slice_count(),
            probe,
        }
    }

    /// Measure every candidate cell with one throwaway probe solve each and
    /// record the resulting samples in the process-wide [`probe_memo`]
    /// under `key`.
    fn measure_probe_candidates(
        &self,
        energy: f64,
        candidates: &[(BlockPolicy, PrecondPolicy)],
        probe_ss: &SsConfig,
        n: usize,
        nnz: usize,
        key: Vec<u64>,
    ) -> (Vec<CalibrationSample>, Vec<ProbeSample>) {
        let mut samples = Vec::with_capacity(candidates.len());
        let mut probe = Vec::with_capacity(candidates.len());
        for &(block, precond) in candidates {
            let cfg = SsConfig { block, precond, ..*probe_ss };
            let problem = QepProblem::new(self.h00, self.h01, energy, self.period);
            let problem = match &self.pattern {
                Some(pattern) => problem.with_pattern(pattern),
                None => problem,
            };
            let problem = match &self.projector {
                Some(proj) => problem.with_projector(proj),
                None => problem,
            };
            // Stage wall-ns needs a recording session; when an outer one is
            // already active we piggyback on it, otherwise we open our own
            // for the duration of the probe solve.
            let own_session = cbs_trace::TraceSession::begin(cbs_trace::TraceLevel::Stage);
            let t0_ns = cbs_trace::now_ns();
            let t0 = std::time::Instant::now(); // cbs-audit: allow(D002) reason="probe wall feeds the cost model; the committed decision is checkpoint-recorded so resume replays it bit-identically"
            let result = solve_qep_with(&problem, &cfg, &SerialExecutor);
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let agg = cbs_trace::aggregate_window(t0_ns, cbs_trace::now_ns());
            if let Some(s) = own_session {
                s.finish();
            }
            let stage_wall = |stage: cbs_trace::Stage| agg.as_ref().map_or(0, |a| a.wall(stage));
            samples.push(CalibrationSample {
                cell: CellId {
                    per_rhs: block == BlockPolicy::PerRhs,
                    precond: precond.trace_code(),
                    slices: 1,
                },
                dimension: n,
                nnz,
                n_rh: cfg.n_rh,
                energies: 1,
                iterations: result.total_bicg_iterations as u64,
                traversals: result.total_traversals as u64,
                assemblies: result.operator_assemblies as u64,
                wall_ns,
                kernel_wall_ns: stage_wall(cbs_trace::Stage::Kernel),
                precond_wall_ns: stage_wall(cbs_trace::Stage::IluFactor)
                    + stage_wall(cbs_trace::Stage::TriSweep),
                extraction_wall_ns: stage_wall(cbs_trace::Stage::Extraction),
            });
            probe.push(ProbeSample {
                block,
                precond,
                iterations: result.total_bicg_iterations as u64,
                traversals: result.total_traversals as u64,
                assemblies: result.operator_assemblies as u64,
                wall_ns,
            });
        }
        probe_memo().lock().unwrap().push((key, samples.clone(), probe.clone()));
        (samples, probe)
    }

    /// Solve one *logical* batch of energies (a release round or refinement
    /// generation) through a single flattened task pool and fold the
    /// outcomes into the state, checkpointing after each energy.
    ///
    /// `batch` is the full batch including energies a resumed run already
    /// completed; only the missing ones are solved.  Donor tables are read
    /// from the committed bank only, and the batch's own donations are
    /// committed together once its last energy finishes — so donors depend
    /// solely on which *batches* completed, never on where inside a batch a
    /// previous run was killed.
    #[allow(clippy::too_many_arguments)]
    fn solve_batch<E: TaskExecutor>(
        &self,
        batch: Vec<(f64, EnergyOrigin)>,
        plan: &SlicedPlan,
        ss: &SsConfig,
        executor: &E,
        st: &mut State,
        opts: &RunOptions<'_>,
        checkpoint: &dyn Fn(&State) -> SweepCheckpoint,
    ) -> Result<BatchStatus, CheckpointError> {
        let batch_bits: std::collections::BTreeSet<u64> =
            batch.iter().map(|(e, _)| e.to_bits()).collect();
        let mut to_solve: Vec<(f64, EnergyOrigin)> =
            batch.into_iter().filter(|(e, _)| !st.done.contains_key(&e.to_bits())).collect();
        let mut truncated = false;
        if let Some(max_new) = opts.max_new_energies {
            let allowed = max_new.saturating_sub(st.new_energies);
            if allowed < to_solve.len() {
                to_solve.truncate(allowed);
                truncated = true;
            }
        }
        let warm = self.config.warm_start;
        // Trace context: each energy of the batch is tagged with the record
        // index it is about to receive (completion order; `assemble`'s final
        // ascending `energy_index` is only known at the end).  The handle
        // resolves to a no-op when no `cbs_trace::TraceSession` records.
        let record_base = st.records.len();
        let trace = TraceHandle::resolve(ss.trace).with_policy(ss.precond.trace_code());

        if !to_solve.is_empty() {
            let problems: Vec<QepProblem<'_>> = to_solve
                .iter()
                .map(|&(e, _)| {
                    let p = QepProblem::new(self.h00, self.h01, e, self.period);
                    let p = match &self.pattern {
                        Some(pattern) => p.with_pattern(pattern),
                        None => p,
                    };
                    match &self.projector {
                        Some(proj) => p.with_projector(proj),
                        None => p,
                    }
                })
                .collect();
            let donors: Vec<Option<(f64, &SeedTable)>> = to_solve
                .iter()
                .map(|&(e, _)| if warm { st.bank.nearest(e) } else { None })
                .collect();
            let donor_energies: Vec<Option<f64>> =
                donors.iter().map(|d| d.map(|(e, _)| e)).collect();
            let groups: Vec<SolveGroup<'_, '_>> = problems
                .iter()
                .zip(&donors)
                .enumerate()
                .map(|(i, (p, d))| SolveGroup {
                    problem: p,
                    seeds: d.map(|(_, t)| t),
                    // Cold sweeps never consult the bank, so don't pay the
                    // memory of retaining every solution vector.
                    keep_solutions: warm,
                    trace: trace.with_energy(record_base + i),
                })
                .collect();

            let t0 = std::time::Instant::now(); // cbs-audit: allow(D002) reason="per-run wall-clock counter; resume stays bit-identical (timings are per-run)"
            let outcomes = solve_round(&groups, plan, ss, executor);
            st.linear_solve_seconds += t0.elapsed().as_secs_f64();
            drop(groups);
            drop(donors);

            for (i, ((energy, origin), mut outcome)) in
                to_solve.into_iter().zip(outcomes).enumerate()
            {
                // Single-contour energies run the historical extraction
                // (bitwise unchanged); partitioned contours extract per
                // slice and merge under the deterministic claim dedup.
                let _extract_ctx = trace.with_energy(record_base + i).enter();
                let result = if plan.is_single() {
                    let slice_outcome =
                        outcome.slices.pop().expect("single-slice plan yields one outcome");
                    extract_from_moments(
                        &problems[i],
                        ss,
                        &plan.v_cols[0],
                        slice_outcome.acc,
                        outcome.iterations,
                        outcome.matvecs,
                        outcome.traversals,
                        outcome.assemblies,
                        0.0,
                    )
                } else {
                    extract_sliced(&problems[i], ss, plan, std::mem::take(&mut outcome.slices), 0.0)
                };
                st.extraction_seconds += result.timings.extraction_seconds;
                // `energy_index` is a placeholder until assembly fixes the
                // grid.
                let points: Vec<CbsPoint> =
                    result.eigenpairs.iter().map(|p| classify_point(&problems[i], 0, p)).collect();
                let seeded = donor_energies[i];
                // Matvec / traversal totals come from the extraction result
                // so they include the metered residual-check applications,
                // matching `SsResult`'s accounting.
                let stats = EnergyStats {
                    bicg_iterations: outcome.iterations,
                    matvecs: result.total_matvecs,
                    operator_traversals: result.total_traversals,
                    operator_assemblies: result.operator_assemblies,
                    warm_solves: if seeded.is_some() { outcome.solves } else { 0 },
                    cold_solves: if seeded.is_some() { 0 } else { outcome.solves },
                    warm_iterations: if seeded.is_some() { outcome.iterations } else { 0 },
                    cold_iterations: if seeded.is_some() { 0 } else { outcome.iterations },
                    capped_solves: outcome.capped_solves,
                    accepted: result.eigenpairs.len(),
                    discarded: result.discarded,
                    numerical_rank: result.numerical_rank,
                };
                st.done.insert(energy.to_bits(), st.records.len());
                st.records.push(EnergyRecord {
                    energy,
                    origin,
                    seeded_from: seeded,
                    stats,
                    points,
                });
                if warm {
                    st.pending.push((energy, outcome.solutions));
                }
                st.new_energies += 1;
                if let Some(path) = opts.checkpoint_path {
                    checkpoint(st)
                        .save(path)
                        .map_err(|e| CheckpointError::Io(format!("checkpoint save failed: {e}")))?;
                }
            }
        }

        if !truncated {
            // The logical batch is complete: commit its donations (restored
            // prefix + freshly solved suffix, in completion order) to the
            // donor bank.  Donations of a *different* in-flight batch — a
            // resumed checkpoint replaying earlier, already-complete rounds
            // — stay pending until their own batch comes around.
            let mut i = 0;
            while i < st.pending.len() {
                if batch_bits.contains(&st.pending[i].0.to_bits()) {
                    let (e, t) = st.pending.remove(i);
                    st.bank.insert(e, t, self.config.seed_bank_capacity);
                } else {
                    i += 1;
                }
            }
        }
        Ok(if truncated { BatchStatus::BudgetExhausted } else { BatchStatus::Done })
    }

    /// One generation of refinement candidates: midpoints of visible
    /// adjacent intervals that are wide enough and flagged by the
    /// channel-count rule or the extra predicate, truncated to `remaining`.
    fn refinement_candidates(
        &self,
        st: &State,
        visible: &[usize],
        remaining: usize,
        predicate: Option<&dyn RefinementPredicate>,
    ) -> Vec<(f64, EnergyOrigin)> {
        if remaining == 0 {
            return Vec::new();
        }
        let mut sorted: Vec<&EnergyRecord> = visible.iter().map(|&i| &st.records[i]).collect();
        sorted.sort_by(|a, b| a.energy.partial_cmp(&b.energy).unwrap());
        let mut out = Vec::new();
        for w in sorted.windows(2) {
            if out.len() == remaining {
                break;
            }
            let (lo, hi) = (w[0], w[1]);
            if hi.energy - lo.energy <= self.config.min_refine_spacing {
                continue;
            }
            let trigger = lo.channel_count() != hi.channel_count()
                || predicate.is_some_and(|p| p.should_refine(lo, hi));
            if !trigger {
                continue;
            }
            let mid = 0.5 * (lo.energy + hi.energy);
            if mid <= lo.energy || mid >= hi.energy {
                continue; // interval too narrow for a representable midpoint
            }
            out.push((mid, EnergyOrigin::Refined { lo: lo.energy, hi: hi.energy }));
        }
        out
    }

    /// Sort the records into the final ascending grid, assign
    /// `energy_index` and aggregate the statistics.
    fn assemble(
        &self,
        st: State,
        stage: cbs_sparse::StageTimes,
        extraction_ns: u64,
        wall: Option<cbs_trace::StageAgg>,
        auto: Option<AutoDecision>,
    ) -> SweepResult {
        let mut records = st.records;
        records.sort_by(|a, b| a.energy.partial_cmp(&b.energy).unwrap());
        let energies: Vec<f64> = records.iter().map(|r| r.energy).collect();
        let mut points = Vec::new();
        let mut stats = CbsStatistics {
            linear_solve_seconds: st.linear_solve_seconds,
            extraction_seconds: st.extraction_seconds,
            // Per-stage nanosecond counters: the CPU-ns stage counters cover
            // this run only (a resumed sweep reports post-resume time, like
            // the wall-clock fields).
            kernel_ns: stage.kernel_ns,
            precond_ns: stage.precond_ns,
            extraction_ns,
            kernel_wall_ns: wall.map_or(0, |w| w.wall(cbs_trace::Stage::Kernel)),
            precond_wall_ns: wall.map_or(0, |w| {
                w.wall(cbs_trace::Stage::IluFactor) + w.wall(cbs_trace::Stage::TriSweep)
            }),
            extraction_wall_ns: wall.map_or(0, |w| w.wall(cbs_trace::Stage::Extraction)),
            ..CbsStatistics::default()
        };
        for (index, rec) in records.iter_mut().enumerate() {
            for p in rec.points.iter_mut() {
                p.energy_index = index;
            }
            points.extend(rec.points.iter().copied());
            stats.total_bicg_iterations += rec.stats.bicg_iterations;
            stats.total_matvecs += rec.stats.matvecs;
            stats.operator_traversals += rec.stats.operator_traversals;
            stats.operator_assemblies += rec.stats.operator_assemblies;
            stats.cold_bicg_iterations += rec.stats.cold_iterations;
            stats.warm_bicg_iterations += rec.stats.warm_iterations;
            stats.cold_solves += rec.stats.cold_solves;
            stats.warm_started_solves += rec.stats.warm_solves;
            stats.accepted += rec.stats.accepted;
            stats.discarded += rec.stats.discarded;
            if matches!(rec.origin, EnergyOrigin::Refined { .. }) {
                stats.refined_energies += 1;
            }
        }
        SweepResult { cbs: ComplexBandStructure { points, energies }, stats, records, auto }
    }
}

/// Convenience wrapper: sweep the given energies with `config`, mirroring
/// `cbs_core::compute_cbs_with`'s signature.
pub fn sweep_cbs<E: TaskExecutor>(
    h00: &dyn LinearOperator,
    h01: &dyn LinearOperator,
    period: f64,
    energies: &[f64],
    config: &SweepConfig,
    executor: &E,
) -> SweepResult {
    EnergySweep::new(h00, h01, period, *config).run(energies, executor)
}
