//! # cbs-sweep
//!
//! Batched, warm-started, adaptive orchestration of multi-energy complex
//! band structure scans — the production driver for the paper's headline
//! workloads (Figures 6 and 11), which are hundreds of independent
//! Sakurai-Sugiura QEP solves, one per scan energy.
//!
//! The per-energy loop in `cbs_core::compute_cbs` runs those solves cold
//! and serially across energies; this crate exploits the cross-energy
//! structure instead:
//!
//! * **Flattening** — a release round's solve grid becomes one task pool
//!   dispatched through the `cbs_parallel::TaskExecutor` seam — `(energy ×
//!   quadrature-node)` block jobs under the default
//!   `cbs_core::BlockPolicy::PerNode` (each advancing all `N_rh`
//!   right-hand sides through fused block matvecs), `(energy ×
//!   quadrature-node × rhs)` single-vector jobs under `PerRhs` — so a
//!   sweep saturates a wide executor even when one energy's grid is small.
//!   Under a partitioned contour (`cbs_core::SlicePolicy`) the grid
//!   flattens further to `(energy × slice × node)`, each energy merging
//!   its per-slice extractions; the `pool` module adapts the shared
//!   `cbs_core::solve_pool`.
//! * **Warm starting** — each energy's dual-BiCG solves are seeded from
//!   the nearest already-completed energy's solutions (`P(z; E')` differs
//!   from `P(z; E)` only by `(E' − E) I`), via
//!   `cbs_solver::bicg_dual_seeded`; the dyadic wavefront schedule
//!   (`cbs_parallel::SweepSchedule`) keeps donors close while releasing
//!   geometrically growing rounds.  Cold-vs-warm iteration counts land in
//!   `cbs_core::CbsStatistics`.
//! * **Adaptive refinement** — intervals where the propagating-channel
//!   count changes (or a [`RefinementPredicate`] such as the
//!   band-edge-bracketing [`BandEdgeRefiner`] fires) are bisected up to a
//!   configurable budget, resolving band edges cheaply.
//! * **Checkpointing** — a [`SweepCheckpoint`] is written after every
//!   completed energy with bit-exact float encoding; a killed sweep
//!   resumes bit-identically ([`checkpoint`]).
//!
//! Entry points: [`EnergySweep`] (driver) and [`sweep_cbs`] (one-call
//! convenience).  Determinism — serial/rayon bit-identity, cold-sweep
//! equivalence with `compute_cbs`, and resume bit-identity — is locked in
//! by `tests/sweep_determinism.rs` at the workspace root.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
mod pool;
pub mod sweep;

pub use checkpoint::{AutoDecision, CheckpointError, ProbeSample, SweepCheckpoint};
pub use config::SweepConfig;
pub use sweep::{
    sweep_cbs, BandEdgeRefiner, EnergyOrigin, EnergyRecord, EnergyStats, EnergySweep,
    RefinementPredicate, RunOptions, RunOutcome, SeedTable, SweepResult,
};

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_core::{compute_cbs, SsConfig};
    use cbs_linalg::{c64, CMatrix};
    use cbs_parallel::SerialExecutor;
    use cbs_sparse::DenseOp;
    use rand::SeedableRng;

    fn random_blocks(n: usize, seed: u64) -> (CMatrix, CMatrix) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let a = CMatrix::random(n, n, &mut rng);
        let h00 = (&a + &a.adjoint()).scale(c64(0.5, 0.0));
        let h01 = CMatrix::random(n, n, &mut rng).scale(c64(0.35, 0.0));
        (h00, h01)
    }

    fn small_ss() -> SsConfig {
        SsConfig {
            n_int: 16,
            n_mm: 4,
            n_rh: 6,
            bicg_tolerance: 1e-11,
            residual_cutoff: 1e-6,
            ..SsConfig::small()
        }
    }

    #[test]
    fn cold_sweep_matches_per_energy_loop_bitwise() {
        let (h00, h01) = random_blocks(10, 1201);
        let op00 = DenseOp::new(h00);
        let op01 = DenseOp::new(h01);
        let energies = [-0.25, -0.05, 0.1, 0.3];
        let config = SweepConfig::cold(small_ss());
        let sweep = sweep_cbs(&op00, &op01, 1.4, &energies, &config, &SerialExecutor);
        let loop_run = compute_cbs(&op00, &op01, 1.4, &energies, &small_ss());
        assert_eq!(sweep.cbs.energies, loop_run.cbs.energies);
        assert_eq!(sweep.cbs.points.len(), loop_run.cbs.points.len());
        assert!(!sweep.cbs.points.is_empty());
        for (a, b) in sweep.cbs.points.iter().zip(&loop_run.cbs.points) {
            assert_eq!(a.energy_index, b.energy_index);
            assert_eq!(a.lambda.re.to_bits(), b.lambda.re.to_bits());
            assert_eq!(a.lambda.im.to_bits(), b.lambda.im.to_bits());
            assert_eq!(a.k_re.to_bits(), b.k_re.to_bits());
            assert_eq!(a.k_im.to_bits(), b.k_im.to_bits());
            assert_eq!(a.residual.to_bits(), b.residual.to_bits());
        }
        assert_eq!(sweep.stats.total_bicg_iterations, loop_run.stats.total_bicg_iterations);
        assert_eq!(sweep.stats.total_matvecs, loop_run.stats.total_matvecs);
        assert_eq!(sweep.stats.warm_started_solves, 0);
        assert_eq!(sweep.stats.refined_energies, 0);
    }

    #[test]
    fn warm_sweep_records_donors_and_split_counters() {
        let (h00, h01) = random_blocks(10, 1202);
        let op00 = DenseOp::new(h00);
        let op01 = DenseOp::new(h01);
        let energies: Vec<f64> = (0..10).map(|i| -0.2 + 0.05 * i as f64).collect();
        let config = SweepConfig { initial_round: 2, ..SweepConfig::new(small_ss()) };
        let run = sweep_cbs(&op00, &op01, 1.4, &energies, &config, &SerialExecutor);
        assert_eq!(run.records.len(), 10);
        let warm_records = run.records.iter().filter(|r| r.seeded_from.is_some()).count();
        assert!(warm_records >= 8, "only {warm_records} records were seeded");
        // Donors are completed energies distinct from the seeded one.
        for r in &run.records {
            if let Some(d) = r.seeded_from {
                assert!(d != r.energy);
                assert!(run.records.iter().any(|q| q.energy == d));
                assert_eq!(r.stats.cold_iterations, 0);
                assert_eq!(r.stats.warm_iterations, r.stats.bicg_iterations);
            }
        }
        assert_eq!(
            run.stats.warm_bicg_iterations + run.stats.cold_bicg_iterations,
            run.stats.total_bicg_iterations
        );
        assert!(run.stats.warm_started_solves > 0);
        assert!(run.stats.cold_solves > 0);
    }

    #[test]
    fn seed_bank_capacity_keeps_sweep_running() {
        let (h00, h01) = random_blocks(8, 1203);
        let op00 = DenseOp::new(h00);
        let op01 = DenseOp::new(h01);
        let energies: Vec<f64> = (0..8).map(|i| -0.1 + 0.04 * i as f64).collect();
        let config =
            SweepConfig { initial_round: 2, seed_bank_capacity: 2, ..SweepConfig::new(small_ss()) };
        let run = sweep_cbs(&op00, &op01, 1.2, &energies, &config, &SerialExecutor);
        assert_eq!(run.records.len(), 8);
        // With a tiny bank everything still completes and some solves warm.
        assert!(run.stats.warm_started_solves > 0);
    }
}
