//! The flattened cross-energy (and cross-slice) task pool.
//!
//! One round of a sweep holds several per-energy solve groups; under a
//! partitioned contour ([`SlicePolicy`](cbs_core::SlicePolicy)) each energy
//! further splits into per-slice sub-groups with their own node sets and
//! source blocks.  This module flattens the whole
//! `(energy x slice x node [x rhs])` grid of one round into a single batch
//! per majority-stop stage through the **shared multi-group pool of
//! `cbs-core`** (`cbs_core::solve_pool`, which this crate's round pool
//! originally pioneered and which now also powers
//! `cbs_core::solve_qep_sliced_with`) — so a wide executor stays saturated
//! even when a single energy's grid is smaller than the machine.
//!
//! Determinism contract: unchanged from the engine — jobs are listed
//! group-major (energy-major, then slice, then engine job order), executors
//! return results in input order, and each `(energy, slice)` accumulator
//! folds only its own outcomes in that order, so the accumulated moments
//! are bit-identical to running each group alone, on every executor and
//! under either block policy.  The majority-stop cap is evaluated per
//! `(energy, slice)` group from that group's own first-stage results.
//!
//! Warm-start seed tables are stored **concatenated slice-major** per
//! energy (slice 0's `n_nodes x n_rh` job-order table, then slice 1's, …),
//! which is exactly the layout [`GroupOutcome::solutions`] comes back in —
//! one energy's donor table seeds another energy's solves slice by slice.

use cbs_core::{solve_pool, PoolGroup, PoolOutcome, PoolPolicy, QepProblem, SlicedPlan, SsConfig};
use cbs_parallel::TaskExecutor;
use cbs_trace::TraceHandle;

use crate::sweep::SeedTable;

/// One per-energy solve group entering a round.
pub(crate) struct SolveGroup<'a, 'p> {
    /// The QEP at this group's scan energy.
    pub problem: &'p QepProblem<'a>,
    /// Full slice-major job-order warm-start table
    /// (`Σ_s n_nodes(s) * n_rh(s)` pairs), or `None` for a cold group.
    pub seeds: Option<&'p SeedTable>,
    /// Retain the group's solutions as a donor table.  `false` (cold
    /// sweeps, or a bank that will not be consulted) drops each solution
    /// after its moment contribution, keeping the cold sweep's footprint at
    /// the per-energy loop's level.
    pub keep_solutions: bool,
    /// Trace handle carrying the group's scan-energy context; the pool adds
    /// the slice (for partitioned contours) and node per job.
    pub trace: TraceHandle,
}

/// Everything the round solve produces for one energy.
pub(crate) struct GroupOutcome {
    /// Per-slice pool outcomes (accumulated moments, counters), in slice
    /// order; a single entry under the single-contour policy.
    pub slices: Vec<PoolOutcome>,
    /// Primal BiCG iterations summed over the energy's solves.
    pub iterations: usize,
    /// Operator applications (matvec-equivalents) summed over the energy.
    pub matvecs: usize,
    /// Operator-storage traversals actually performed for the energy.
    pub traversals: usize,
    /// Numeric refills of the assembled pattern performed for the energy.
    pub assemblies: usize,
    /// Solves that ran under the majority-stop cap.
    pub capped_solves: usize,
    /// Number of solves (each = one primal+dual pair).
    pub solves: usize,
    /// `(x, x̃)` solutions, slice-major in job order — the energy's donor
    /// table (empty unless `keep_solutions`).
    pub solutions: SeedTable,
}

/// Solve all groups of one round through a single flattened task pool.
///
/// Returns one [`GroupOutcome`] per group, in group order.
pub(crate) fn solve_round<E: TaskExecutor>(
    groups: &[SolveGroup<'_, '_>],
    plan: &SlicedPlan,
    config: &SsConfig,
    executor: &E,
) -> Vec<GroupOutcome> {
    let n_slices = plan.len();
    // Slice-major offsets into a concatenated per-energy seed table.
    let mut offsets = Vec::with_capacity(n_slices + 1);
    offsets.push(0usize);
    for s in 0..n_slices {
        offsets.push(offsets[s] + plan.seed_table_len(s));
    }

    let n = groups.first().map_or(0, |g| g.problem.dim());
    let mut pool_groups = Vec::with_capacity(groups.len() * n_slices);
    let mut accs = Vec::with_capacity(groups.len() * n_slices);
    for g in groups {
        for (s, acc) in plan.accumulators(n).into_iter().enumerate() {
            pool_groups.push(PoolGroup {
                problem: g.problem,
                v_cols: &plan.v_cols[s],
                seeds: g.seeds.map(|t| &t[offsets[s]..offsets[s + 1]]),
                keep_solutions: g.keep_solutions,
                // The slice index only means something on a partitioned
                // contour; single-contour spans stay slice-less.
                trace: if n_slices > 1 { g.trace.with_slice(s) } else { g.trace },
            });
            accs.push(acc);
        }
    }

    let outcomes = solve_pool(&pool_groups, accs, &PoolPolicy::from_config(config), executor);

    // Regroup (energy-major) pool outcomes into per-energy bundles.
    let mut out = Vec::with_capacity(groups.len());
    let mut iter = outcomes.into_iter();
    for _ in groups {
        let mut bundle = GroupOutcome {
            slices: Vec::with_capacity(n_slices),
            iterations: 0,
            matvecs: 0,
            traversals: 0,
            assemblies: 0,
            capped_solves: 0,
            solves: 0,
            solutions: Vec::new(),
        };
        for _ in 0..n_slices {
            let mut o = iter.next().expect("pool returns one outcome per group");
            bundle.iterations += o.iterations;
            bundle.matvecs += o.matvecs;
            bundle.traversals += o.traversals;
            bundle.assemblies += o.assemblies;
            bundle.capped_solves += o.capped_solves;
            bundle.solves += o.solves;
            bundle.solutions.append(&mut o.solutions);
            bundle.slices.push(o);
        }
        out.push(bundle);
    }
    out
}
