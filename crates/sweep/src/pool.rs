//! The flattened cross-energy task pool.
//!
//! One round of a sweep holds several per-energy solve groups; each group is
//! an `N_int x N_rh` grid of shifted dual-BiCG systems.  Instead of running
//! the groups one after another (each dispatching its own small batch, as
//! the per-energy `compute_cbs` loop does), this module concatenates the
//! jobs of **all** groups of the round into a single batch per majority-stop
//! stage and dispatches that through the [`TaskExecutor`] seam — so a wide
//! executor stays saturated even when a single energy's grid is smaller
//! than the machine.
//!
//! The job granularity follows the engine's
//! [`BlockPolicy`](cbs_core::BlockPolicy): under `PerRhs` the pool flattens
//! `(energy x node x rhs)` single-vector solves, under the default
//! `PerNode` it flattens `(energy x node)` **block** jobs — each advancing
//! all `N_rh` right-hand sides of one node in lockstep through
//! `cbs_solver::bicg_dual_block`'s fused block matvecs.
//!
//! The operator representation follows `SsConfig::precond`
//! ([`PrecondPolicy`](cbs_core::PrecondPolicy)): each job resolves its
//! node operator through `QepProblem::node_solve`, so the assembled
//! policies refill the problem's shared `cbs_sparse::AssembledPattern` —
//! the symbolic union analysis is done **once per Hamiltonian** and reused
//! across the whole flattened `(energy x node)` pool, every sweep energy
//! included.
//!
//! Determinism contract: jobs are listed group-major in engine job order
//! (`j * N_rh + rhs`; a block job unpacks its outcomes in rhs order),
//! executors return results in input order, and each group's
//! [`MomentAccumulator`] folds only its own outcomes in that order — so the
//! accumulated moments (and everything extracted from them) are
//! bit-identical to running each group alone through
//! [`cbs_core::ShiftedSolveEngine`], on every executor and under either
//! block policy.  The per-group majority-stop rule is the engine's
//! two-stage form evaluated per group: the cap is a pure function of the
//! group's own first-stage results.

use cbs_core::{BlockPolicy, MomentAccumulator, QepProblem, ShiftedSolveOutcome, SsConfig};
use cbs_linalg::CVector;
use cbs_parallel::TaskExecutor;
use cbs_solver::{bicg_dual_block_precond, bicg_dual_precond_seeded};
use cbs_sparse::LinearOperator;

use crate::sweep::SeedTable;

/// One per-energy solve group entering a round.
pub(crate) struct SolveGroup<'a, 'p> {
    /// The QEP at this group's scan energy.
    pub problem: &'p QepProblem<'a>,
    /// Full job-order warm-start table (`n_int * n_rh` pairs), or `None`
    /// for a cold group.
    pub seeds: Option<&'p SeedTable>,
    /// Retain the group's solutions as a donor table.  `false` (cold
    /// sweeps, or a bank that will not be consulted) drops each solution
    /// after its moment contribution, keeping the cold sweep's footprint at
    /// the per-energy loop's level.
    pub keep_solutions: bool,
}

/// Everything the round solve produces for one group.
pub(crate) struct GroupOutcome {
    /// The group's accumulated moments and histories.
    pub acc: MomentAccumulator,
    /// Primal BiCG iterations summed over the group's solves.
    pub iterations: usize,
    /// Operator applications (matvec-equivalents) summed over the group's
    /// solves.
    pub matvecs: usize,
    /// Operator-storage traversals actually performed for the group (fused
    /// block applies count the operator's `traversal_weight`: 3 matrix-free,
    /// 1 assembled).
    pub traversals: usize,
    /// Numeric refills of the assembled pattern (ILU factorizations
    /// included) performed for the group; zero under
    /// `PrecondPolicy::MatrixFree`.  Under `BlockPolicy::PerNode` this is
    /// one per quadrature node; the legacy `PerRhs` flattening assembles
    /// per job (`N_int x N_rh`) because the pool shares no per-node cell —
    /// the counter reports what actually happened.
    pub assemblies: usize,
    /// Solves that ran under the majority-stop cap.
    pub capped_solves: usize,
    /// Number of solves (each = one primal+dual pair).
    pub solves: usize,
    /// `(x, x̃)` solutions in job order — the group's donor table for
    /// later energies.
    pub solutions: SeedTable,
}

/// Majority-stop bookkeeping for one group (the engine's rule, per group).
struct GroupTracking {
    point_converged: Vec<bool>,
    converged_iter_max: usize,
}

impl GroupTracking {
    fn new(n_int: usize) -> Self {
        Self { point_converged: vec![true; n_int], converged_iter_max: 0 }
    }

    fn record(&mut self, o: &ShiftedSolveOutcome) {
        self.point_converged[o.point_index] &= o.history.converged() && o.dual_history.converged();
        if o.history.converged() {
            self.converged_iter_max = self.converged_iter_max.max(o.history.iterations());
        }
    }

    fn converged_among(&self, n_points: usize) -> usize {
        self.point_converged[..n_points].iter().filter(|&&c| c).count()
    }
}

/// One single-vector job of the flattened `PerRhs` pool.
#[derive(Clone, Copy)]
struct FlatJob {
    group: usize,
    point_index: usize,
    rhs_index: usize,
    cap: Option<usize>,
}

/// One block job of the flattened `PerNode` pool: a whole quadrature node
/// of one group (all right-hand sides).
#[derive(Clone, Copy)]
struct FlatNodeJob {
    group: usize,
    point_index: usize,
    cap: Option<usize>,
}

/// Solve all groups of one round through a single flattened task pool.
///
/// Returns one [`GroupOutcome`] per group, in group order.
pub(crate) fn solve_round<E: TaskExecutor>(
    groups: &[SolveGroup<'_, '_>],
    config: &SsConfig,
    v_cols: &[CVector],
    executor: &E,
) -> Vec<GroupOutcome> {
    let n = v_cols.first().map_or(0, |v| v.len());
    let contour = config.contour();
    let outer = contour.outer_points();
    let n_int = config.n_int;
    let n_rh = config.n_rh;
    let options = config.solver_options();

    let run_job = |job: FlatJob| -> (usize, usize, usize, Vec<ShiftedSolveOutcome>) {
        let group = &groups[job.group];
        let (op, prec) = group.problem.node_solve(config.precond, outer[job.point_index].z);
        let assemblies = op.is_assembled() as usize;
        let v = &v_cols[job.rhs_index];
        let stop_at = job.cap.map(|c| c.max(1));
        let stop_cb = move |iter: usize| stop_at.is_some_and(|c| iter >= c);
        let external: Option<&(dyn Fn(usize) -> bool + Sync)> =
            if stop_at.is_some() { Some(&stop_cb) } else { None };
        let seed =
            group.seeds.map(|t| &t[job.point_index * n_rh + job.rhs_index]).map(|(x, xt)| (x, xt));
        let res = bicg_dual_precond_seeded(&op, prec.as_ref(), v, v, seed, &options, external);
        let traversals = res.history.matvecs * op.traversal_weight();
        (
            job.group,
            traversals,
            assemblies,
            vec![ShiftedSolveOutcome {
                point_index: job.point_index,
                rhs_index: job.rhs_index,
                x: res.x,
                dual_x: res.dual_x,
                history: res.history,
                dual_history: res.dual_history,
            }],
        )
    };

    let run_node_job = |job: FlatNodeJob| -> (usize, usize, usize, Vec<ShiftedSolveOutcome>) {
        let group = &groups[job.group];
        let (op, prec) = group.problem.node_solve(config.precond, outer[job.point_index].z);
        let assemblies = op.is_assembled() as usize;
        let stop_at = job.cap.map(|c| c.max(1));
        let stop_cb = move |iter: usize| stop_at.is_some_and(|c| iter >= c);
        let external: Option<&(dyn Fn(usize) -> bool + Sync)> =
            if stop_at.is_some() { Some(&stop_cb) } else { None };
        let seed_vec: Vec<Option<(&CVector, &CVector)>> = (0..n_rh)
            .map(|r| group.seeds.map(|t| &t[job.point_index * n_rh + r]).map(|(x, xt)| (x, xt)))
            .collect();
        let res = bicg_dual_block_precond(
            &op,
            prec.as_ref(),
            v_cols,
            v_cols,
            Some(&seed_vec),
            &options,
            external,
        );
        let traversals = res.traversals;
        let outcomes = res
            .columns
            .into_iter()
            .enumerate()
            .map(|(rhs_index, col)| ShiftedSolveOutcome {
                point_index: job.point_index,
                rhs_index,
                x: col.x,
                dual_x: col.dual_x,
                history: col.history,
                dual_history: col.dual_history,
            })
            .collect();
        (job.group, traversals, assemblies, outcomes)
    };

    let mut outcomes: Vec<GroupOutcome> = groups
        .iter()
        .map(|g| GroupOutcome {
            acc: MomentAccumulator::new(n, config),
            iterations: 0,
            matvecs: 0,
            traversals: 0,
            assemblies: 0,
            capped_solves: 0,
            solves: 0,
            solutions: if g.keep_solutions { Vec::with_capacity(n_int * n_rh) } else { Vec::new() },
        })
        .collect();
    let mut tracking: Vec<GroupTracking> =
        groups.iter().map(|_| GroupTracking::new(n_int)).collect();

    // Fold step shared by both stages and both policies: runs on the
    // calling thread in input (= group-major job) order on every executor.
    // Takes its state explicitly so the borrows end with each stage.
    let record = |tracking: &mut [GroupTracking],
                  outcomes: &mut [GroupOutcome],
                  (g, traversals, assemblies, job_outcomes): (
        usize,
        usize,
        usize,
        Vec<ShiftedSolveOutcome>,
    )| {
        outcomes[g].traversals += traversals;
        outcomes[g].assemblies += assemblies;
        for outcome in job_outcomes {
            tracking[g].record(&outcome);
            let out = &mut outcomes[g];
            out.iterations += outcome.history.iterations();
            out.matvecs += outcome.history.matvecs;
            out.solves += 1;
            let pair = out.acc.record(outcome);
            if groups[g].keep_solutions {
                out.solutions.push(pair);
            }
        }
    };

    // Dispatch one majority-stop stage over `points` at the configured
    // granularity.
    let run_stage = |points: std::ops::Range<usize>,
                     caps: &[Option<usize>],
                     tracking: &mut Vec<GroupTracking>,
                     outcomes: &mut Vec<GroupOutcome>| {
        match config.block {
            BlockPolicy::PerRhs => {
                let mut jobs = Vec::new();
                for (g, _) in groups.iter().enumerate() {
                    for point_index in points.clone() {
                        for rhs_index in 0..n_rh {
                            jobs.push(FlatJob { group: g, point_index, rhs_index, cap: caps[g] });
                        }
                    }
                }
                executor.execute_fold(jobs, run_job, (), |(), o| record(tracking, outcomes, o));
            }
            BlockPolicy::PerNode => {
                let mut jobs = Vec::new();
                for (g, _) in groups.iter().enumerate() {
                    for point_index in points.clone() {
                        jobs.push(FlatNodeJob { group: g, point_index, cap: caps[g] });
                    }
                }
                executor
                    .execute_fold(jobs, run_node_job, (), |(), o| record(tracking, outcomes, o));
            }
        }
    };

    if !config.majority_stop {
        let caps = vec![None; groups.len()];
        run_stage(0..n_int, &caps, &mut tracking, &mut outcomes);
    } else {
        // Stage 1: strictly more than half of each group's quadrature
        // points run to convergence, uncapped.
        let stage1_points = (n_int / 2 + 1).min(n_int);
        let caps = vec![None; groups.len()];
        run_stage(0..stage1_points, &caps, &mut tracking, &mut outcomes);

        // Per-group cap: the engine's rule, from the group's own stage-1
        // results only.
        let caps: Vec<Option<usize>> = tracking
            .iter()
            .map(|t| {
                let converged = t.converged_among(stage1_points);
                if converged * 2 > n_int && t.converged_iter_max > 0 {
                    Some(t.converged_iter_max)
                } else {
                    None
                }
            })
            .collect();
        let stage2_per_group = (n_int - stage1_points) * n_rh;
        for (g, cap) in caps.iter().enumerate() {
            if cap.is_some() {
                outcomes[g].capped_solves = stage2_per_group;
            }
        }
        run_stage(stage1_points..n_int, &caps, &mut tracking, &mut outcomes);
    }

    outcomes
}
