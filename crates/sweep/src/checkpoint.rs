//! Incremental sweep checkpointing.
//!
//! A [`SweepCheckpoint`] is written after every completed scan energy and
//! restores a killed sweep **bit-identically**: it carries the completed
//! [`EnergyRecord`]s (in completion order), the warm-start seed bank (the
//! donor solution vectors later energies would have been seeded from), and
//! a bit-exact fingerprint of the configuration and energy grid, verified
//! on resume.
//!
//! The on-disk format is a line-oriented text file in which every `f64` is
//! stored as the 16-hex-digit bit pattern of `f64::to_bits` — exact
//! round-tripping is what makes resumed sweeps reproduce uninterrupted ones
//! down to the last bit.  (The workspace's vendored `serde` is a marker-only
//! shim, so the actual encoding is hand-rolled here; the structs still
//! derive the markers like every other wire-ready type in the tree.)

use std::fmt::Write as _;
use std::path::Path;

use cbs_core::{AutoCell, BlockPolicy, CbsPoint, PrecondPolicy};
use cbs_linalg::{c64, CVector};

use crate::sweep::{EnergyOrigin, EnergyRecord, EnergyStats, SeedTable};

/// One probe measurement of a candidate policy cell, recorded in the
/// checkpoint for inspection and for BENCH provenance.  The counters are
/// bit-deterministic per cell; only `wall_ns` is a measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeSample {
    /// Probed job granularity.
    pub block: BlockPolicy,
    /// Probed operator representation.
    pub precond: PrecondPolicy,
    /// BiCG iterations of the probe solve.
    pub iterations: u64,
    /// Operator-storage traversals of the probe solve.
    pub traversals: u64,
    /// Numeric pattern refills of the probe solve.
    pub assemblies: u64,
    /// Measured wall-clock of the probe solve (nanoseconds).
    pub wall_ns: u64,
}

/// The committed auto-tuning decision of a sweep: the selected policy cell
/// plus the probe measurements it was derived from.  Serialized in the v5
/// checkpoint so kill/resume *replays* the decision instead of re-probing
/// — the replayed sweep is bit-identical to the uninterrupted one even
/// though probe wall-clocks are not reproducible.
#[derive(Clone, Debug, PartialEq)]
pub struct AutoDecision {
    /// Committed job granularity.
    pub block: BlockPolicy,
    /// Committed operator representation / preconditioning.
    pub precond: PrecondPolicy,
    /// Committed slice count (1 = single contour).
    pub slices: usize,
    /// The probe measurements behind the decision, in probe order.
    pub probe: Vec<ProbeSample>,
}

impl AutoDecision {
    /// The committed policy cell, in the form
    /// [`cbs_core::SsConfig::resolve_auto`] consumes.
    pub fn cell(&self) -> AutoCell {
        AutoCell { block: self.block, precond: self.precond, slices: self.slices }
    }
}

/// Everything needed to resume a killed sweep bit-identically.
#[derive(Clone, Debug, Default)]
pub struct SweepCheckpoint {
    /// Bit-exact configuration + period fingerprint
    /// ([`crate::SweepConfig::fingerprint`]).
    pub fingerprint: Vec<u64>,
    /// The committed auto-tuning decision, when the sweep ran with
    /// `SsConfig::auto()` / `CBS_AUTO=1` (v5).  Resume replays this cell
    /// instead of re-probing.
    pub auto: Option<AutoDecision>,
    /// The initial (pre-refinement) energy grid, ascending.
    pub initial_energies: Vec<f64>,
    /// Completed energies, in completion order.
    pub records: Vec<EnergyRecord>,
    /// The warm-start donor bank at checkpoint time, in completion order
    /// (oldest first), after capacity eviction.  Holds only fully completed
    /// batches — donor selection reads exclusively from here.
    pub seed_bank: Vec<(f64, SeedTable)>,
    /// Donations of the batch in flight when the checkpoint was written, in
    /// completion order; committed to the bank once that batch completes.
    /// Keeping them out of the bank until then is what makes a mid-batch
    /// kill/resume bit-identical even under capacity eviction.
    pub pending_donations: Vec<(f64, SeedTable)>,
}

/// Why a checkpoint could not be used.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Truncated, corrupt or otherwise unparseable checkpoint text.
    Malformed(String),
    /// A checkpoint written by an older (or newer) incompatible on-disk
    /// format — the counters it carries cannot be restored faithfully.
    /// Delete the checkpoint and re-sweep.
    IncompatibleVersion {
        /// The magic line found in the file.
        found: String,
    },
    /// The checkpoint parses but does not match the sweep being resumed
    /// (configuration fingerprint or energy grid differ).
    Mismatch(String),
    /// Filesystem error while reading or writing the checkpoint.
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Malformed(m) => write!(f, "sweep checkpoint error: {m}"),
            Self::IncompatibleVersion { found } => write!(
                f,
                "sweep checkpoint error: incompatible checkpoint version (found `{found}`, \
                 expected `{MAGIC}`) — delete the checkpoint and re-sweep"
            ),
            Self::Mismatch(m) => write!(f, "sweep checkpoint error: {m}"),
            Self::Io(m) => write!(f, "sweep checkpoint error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

// Version history of the on-disk format (the magic line):
//   v1  pre-`operator_traversals` per-record counters,
//   v2  added `operator_traversals` (the block-solve data path),
//   v3  added `operator_assemblies` (the assembled-operator fast path),
//   v4  contour partitioning: the `SlicePolicy` knobs joined the
//       fingerprint and seed tables became slice-major concatenations
//       whose length depends on the partition — a v3 bank restored into a
//       sliced sweep would mis-split, so the version gates it.
//   v5  calibrated auto-tuning: an `auto` section (the committed policy
//       cell + the probe samples behind it) between fingerprint and grid,
//       and the fingerprint gained the auto-enabled bit plus, when
//       auto-tuning, the committed cell — a v4 reader would choke on the
//       section and a v4 writer cannot carry the decision resume needs to
//       replay, so the version gates both directions.
// Older checkpoints are rejected with a dedicated
// [`CheckpointError::IncompatibleVersion`] rather than read with silently
// zeroed or misaligned counters.
const MAGIC: &str = "cbs-sweep-checkpoint v5";

/// Prefix shared by every version's magic line; anything with this prefix
/// but the wrong version is an incompatible (not malformed) checkpoint.
const MAGIC_PREFIX: &str = "cbs-sweep-checkpoint v";

fn hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn err(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Malformed(msg.into())
}

struct Tokens<'s> {
    line_no: usize,
    toks: std::str::SplitWhitespace<'s>,
}

impl<'s> Tokens<'s> {
    fn next(&mut self) -> Result<&'s str, CheckpointError> {
        self.toks.next().ok_or_else(|| err(format!("line {}: missing token", self.line_no)))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        let t = self.next()?;
        u64::from_str_radix(t, 16)
            .map(f64::from_bits)
            .map_err(|_| err(format!("line {}: bad f64 bits `{t}`", self.line_no)))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let t = self.next()?;
        u64::from_str_radix(t, 16).map_err(|_| err(format!("line {}: bad u64 `{t}`", self.line_no)))
    }

    fn usize(&mut self) -> Result<usize, CheckpointError> {
        Ok(self.u64()? as usize)
    }

    fn bool(&mut self) -> Result<bool, CheckpointError> {
        Ok(self.u64()? != 0)
    }
}

fn push_vector(out: &mut String, v: &CVector) {
    for z in v.iter() {
        let _ = write!(out, " {} {}", hex(z.re), hex(z.im));
    }
}

fn read_vector(t: &mut Tokens<'_>, dim: usize) -> Result<CVector, CheckpointError> {
    let mut data = Vec::with_capacity(dim);
    for _ in 0..dim {
        let re = t.f64()?;
        let im = t.f64()?;
        data.push(c64(re, im));
    }
    Ok(CVector::from_vec(data))
}

impl SweepCheckpoint {
    /// Serialize to the line-oriented bit-exact text format.
    pub fn serialize_to_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{MAGIC}");
        let _ = write!(out, "fingerprint {:x}", self.fingerprint.len());
        for f in &self.fingerprint {
            let _ = write!(out, " {f:016x}");
        }
        out.push('\n');
        match &self.auto {
            None => {
                let _ = writeln!(out, "auto 0");
            }
            Some(d) => {
                let _ = writeln!(out, "auto 1");
                let _ = writeln!(
                    out,
                    "cell {:x} {:x} {:x}",
                    d.block as u64,
                    d.precond.trace_code(),
                    d.slices
                );
                let _ = writeln!(out, "probe {:x}", d.probe.len());
                for s in &d.probe {
                    let _ = writeln!(
                        out,
                        "sample {:x} {:x} {:x} {:x} {:x} {:x}",
                        s.block as u64,
                        s.precond.trace_code(),
                        s.iterations,
                        s.traversals,
                        s.assemblies,
                        s.wall_ns,
                    );
                }
            }
        }
        let _ = write!(out, "grid {:x}", self.initial_energies.len());
        for &e in &self.initial_energies {
            let _ = write!(out, " {}", hex(e));
        }
        out.push('\n');
        let _ = writeln!(out, "records {:x}", self.records.len());
        for r in &self.records {
            let origin = match r.origin {
                EnergyOrigin::Initial(i) => format!("i {i:x} {} {}", hex(0.0), hex(0.0)),
                EnergyOrigin::Refined { lo, hi } => format!("r 0 {} {}", hex(lo), hex(hi)),
            };
            let seeded = match r.seeded_from {
                Some(e) => format!("1 {}", hex(e)),
                None => format!("0 {}", hex(0.0)),
            };
            let s = &r.stats;
            let _ = writeln!(
                out,
                "record {} {origin} {seeded} {:x} {:x} {:x} {:x} {:x} {:x} {:x} {:x} {:x} {:x} {:x} {:x} {:x}",
                hex(r.energy),
                s.bicg_iterations,
                s.matvecs,
                s.operator_traversals,
                s.operator_assemblies,
                s.warm_solves,
                s.cold_solves,
                s.warm_iterations,
                s.cold_iterations,
                s.capped_solves,
                s.accepted,
                s.discarded,
                s.numerical_rank,
                r.points.len(),
            );
            for p in &r.points {
                let _ = writeln!(
                    out,
                    "point {} {} {} {} {} {:x} {}",
                    hex(p.energy),
                    hex(p.lambda.re),
                    hex(p.lambda.im),
                    hex(p.k_re),
                    hex(p.k_im),
                    p.propagating as u8,
                    hex(p.residual),
                );
            }
        }
        for (section, bank) in [("seeds", &self.seed_bank), ("pending", &self.pending_donations)] {
            let _ = writeln!(out, "{section} {:x}", bank.len());
            for (energy, table) in bank {
                let dim = table.first().map_or(0, |(x, _)| x.len());
                let _ = writeln!(out, "seed {} {:x} {:x}", hex(*energy), table.len(), dim);
                for (x, xt) in table {
                    let mut line = String::from("pair");
                    push_vector(&mut line, x);
                    push_vector(&mut line, xt);
                    out.push_str(&line);
                    out.push('\n');
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Parse the format produced by [`serialize_to_string`](Self::serialize_to_string).
    pub fn parse(text: &str) -> Result<Self, CheckpointError> {
        struct LineReader<'s> {
            inner: std::iter::Enumerate<std::str::Lines<'s>>,
        }
        impl<'s> LineReader<'s> {
            fn expect(&mut self, tag: &str) -> Result<Tokens<'s>, CheckpointError> {
                let (i, line) =
                    self.inner.next().ok_or_else(|| err(format!("truncated: expected `{tag}`")))?;
                let line_no = i + 1;
                let mut toks = Tokens { line_no, toks: line.split_whitespace() };
                let head = toks.next()?;
                if head != tag {
                    return Err(err(format!("line {line_no}: expected `{tag}`, found `{head}`")));
                }
                Ok(toks)
            }
        }
        let mut lines = LineReader { inner: text.lines().enumerate() };

        let (_, magic) = lines.inner.next().ok_or_else(|| err("empty checkpoint"))?;
        let magic = magic.trim();
        if magic != MAGIC {
            // An old (or future) format announces itself through the shared
            // magic prefix: report it as a version problem, not a parse
            // error, so the caller can tell the user to delete and re-sweep.
            if magic.starts_with(MAGIC_PREFIX) {
                return Err(CheckpointError::IncompatibleVersion { found: magic.to_string() });
            }
            return Err(err(format!("bad magic line `{magic}`")));
        }

        let mut t = lines.expect("fingerprint")?;
        let nf = t.usize()?;
        let fingerprint = (0..nf).map(|_| t.u64()).collect::<Result<Vec<_>, _>>()?;

        let mut t = lines.expect("auto")?;
        let auto = if t.bool()? {
            let mut t = lines.expect("cell")?;
            let block_idx = t.u64()?;
            let block = BlockPolicy::from_index(block_idx)
                .ok_or_else(|| err(format!("unknown block policy index `{block_idx}`")))?;
            let precond_idx = t.u64()?;
            let precond = PrecondPolicy::from_index(precond_idx)
                .ok_or_else(|| err(format!("unknown precond policy index `{precond_idx}`")))?;
            let slices = t.usize()?.max(1);
            let mut t = lines.expect("probe")?;
            let np = t.usize()?;
            let mut probe = Vec::with_capacity(np);
            for _ in 0..np {
                let mut t = lines.expect("sample")?;
                let block_idx = t.u64()?;
                let block = BlockPolicy::from_index(block_idx)
                    .ok_or_else(|| err(format!("unknown block policy index `{block_idx}`")))?;
                let precond_idx = t.u64()?;
                let precond = PrecondPolicy::from_index(precond_idx)
                    .ok_or_else(|| err(format!("unknown precond policy index `{precond_idx}`")))?;
                probe.push(ProbeSample {
                    block,
                    precond,
                    iterations: t.u64()?,
                    traversals: t.u64()?,
                    assemblies: t.u64()?,
                    wall_ns: t.u64()?,
                });
            }
            Some(AutoDecision { block, precond, slices, probe })
        } else {
            None
        };

        let mut t = lines.expect("grid")?;
        let ng = t.usize()?;
        let initial_energies = (0..ng).map(|_| t.f64()).collect::<Result<Vec<_>, _>>()?;

        let mut t = lines.expect("records")?;
        let nr = t.usize()?;
        let mut records = Vec::with_capacity(nr);
        for _ in 0..nr {
            let mut t = lines.expect("record")?;
            let energy = t.f64()?;
            let origin_tag = t.next()?;
            let origin_idx = t.usize()?;
            let origin_lo = t.f64()?;
            let origin_hi = t.f64()?;
            let origin = match origin_tag {
                "i" => EnergyOrigin::Initial(origin_idx),
                "r" => EnergyOrigin::Refined { lo: origin_lo, hi: origin_hi },
                other => return Err(err(format!("unknown origin tag `{other}`"))),
            };
            let has_seed = t.bool()?;
            let seed_energy = t.f64()?;
            let seeded_from = has_seed.then_some(seed_energy);
            let stats = EnergyStats {
                bicg_iterations: t.usize()?,
                matvecs: t.usize()?,
                operator_traversals: t.usize()?,
                operator_assemblies: t.usize()?,
                warm_solves: t.usize()?,
                cold_solves: t.usize()?,
                warm_iterations: t.usize()?,
                cold_iterations: t.usize()?,
                capped_solves: t.usize()?,
                accepted: t.usize()?,
                discarded: t.usize()?,
                numerical_rank: t.usize()?,
            };
            let npoints = t.usize()?;
            let mut points = Vec::with_capacity(npoints);
            for _ in 0..npoints {
                let mut t = lines.expect("point")?;
                points.push(CbsPoint {
                    energy: t.f64()?,
                    energy_index: 0,
                    lambda: c64(t.f64()?, t.f64()?),
                    k_re: t.f64()?,
                    k_im: t.f64()?,
                    propagating: t.bool()?,
                    residual: t.f64()?,
                });
            }
            records.push(EnergyRecord { energy, origin, seeded_from, stats, points });
        }

        let mut banks: Vec<Vec<(f64, SeedTable)>> = Vec::with_capacity(2);
        for section in ["seeds", "pending"] {
            let mut t = lines.expect(section)?;
            let nb = t.usize()?;
            let mut bank = Vec::with_capacity(nb);
            for _ in 0..nb {
                let mut t = lines.expect("seed")?;
                let energy = t.f64()?;
                let npairs = t.usize()?;
                let dim = t.usize()?;
                let mut table = Vec::with_capacity(npairs);
                for _ in 0..npairs {
                    let mut t = lines.expect("pair")?;
                    let x = read_vector(&mut t, dim)?;
                    let xt = read_vector(&mut t, dim)?;
                    table.push((x, xt));
                }
                bank.push((energy, table));
            }
            banks.push(bank);
        }
        let pending_donations = banks.pop().unwrap();
        let seed_bank = banks.pop().unwrap();
        lines.expect("end")?;

        Ok(Self { fingerprint, auto, initial_energies, records, seed_bank, pending_donations })
    }

    /// Write atomically (temp file + rename) so a kill mid-save leaves the
    /// previous checkpoint intact.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.serialize_to_string())?;
        std::fs::rename(&tmp, path)
    }

    /// Load and parse a checkpoint file.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_linalg::Complex64;

    fn sample() -> SweepCheckpoint {
        let p = CbsPoint {
            energy: 0.125,
            energy_index: 0,
            lambda: c64(0.5, -0.25),
            k_re: 1.5,
            k_im: -0.75,
            propagating: true,
            residual: 1e-9,
        };
        let rec = EnergyRecord {
            energy: 0.125,
            origin: EnergyOrigin::Initial(3),
            seeded_from: Some(-0.5),
            stats: EnergyStats {
                bicg_iterations: 10,
                matvecs: 22,
                operator_traversals: 6,
                operator_assemblies: 3,
                warm_solves: 4,
                cold_solves: 0,
                warm_iterations: 10,
                cold_iterations: 0,
                capped_solves: 2,
                accepted: 1,
                discarded: 3,
                numerical_rank: 5,
            },
            points: vec![p],
        };
        let rec2 = EnergyRecord {
            energy: 0.3,
            origin: EnergyOrigin::Refined { lo: 0.125, hi: 0.475 },
            seeded_from: None,
            stats: EnergyStats::default(),
            points: Vec::new(),
        };
        let table = vec![(
            CVector::from_vec(vec![c64(1.0, 2.0), c64(-0.5, 1e-300)]),
            CVector::from_vec(vec![Complex64::ZERO, c64(f64::MIN_POSITIVE, -0.0)]),
        )];
        let pending_table = vec![(
            CVector::from_vec(vec![c64(3.5, -4.25)]),
            CVector::from_vec(vec![c64(0.0, 1.0)]),
        )];
        SweepCheckpoint {
            fingerprint: vec![1, 2, 0xdeadbeef],
            auto: None,
            initial_energies: vec![-0.5, 0.125, 0.475],
            records: vec![rec, rec2],
            seed_bank: vec![(0.125, table)],
            pending_donations: vec![(0.475, pending_table)],
        }
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let cp = sample();
        let text = cp.serialize_to_string();
        let back = SweepCheckpoint::parse(&text).expect("parse");
        assert_eq!(back.fingerprint, cp.fingerprint);
        assert_eq!(back.initial_energies.len(), cp.initial_energies.len());
        for (a, b) in back.initial_energies.iter().zip(&cp.initial_energies) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(back.records.len(), 2);
        let (r0, c0) = (&back.records[0], &cp.records[0]);
        assert_eq!(r0.energy.to_bits(), c0.energy.to_bits());
        assert!(matches!(r0.origin, EnergyOrigin::Initial(3)));
        assert_eq!(r0.seeded_from.map(f64::to_bits), c0.seeded_from.map(f64::to_bits));
        assert_eq!(r0.stats, c0.stats);
        assert_eq!(r0.points.len(), 1);
        let (p, q) = (&r0.points[0], &c0.points[0]);
        assert_eq!(p.lambda.re.to_bits(), q.lambda.re.to_bits());
        assert_eq!(p.lambda.im.to_bits(), q.lambda.im.to_bits());
        assert_eq!(p.k_im.to_bits(), q.k_im.to_bits());
        assert_eq!(p.propagating, q.propagating);
        match back.records[1].origin {
            EnergyOrigin::Refined { lo, hi } => {
                assert_eq!(lo.to_bits(), (0.125f64).to_bits());
                assert_eq!(hi.to_bits(), (0.475f64).to_bits());
            }
            _ => panic!("wrong origin"),
        }
        // Seed vectors round-trip exactly, including -0.0 and subnormal-scale values.
        let (e, table) = &back.seed_bank[0];
        assert_eq!(e.to_bits(), (0.125f64).to_bits());
        let (x, xt) = &table[0];
        let (cx, cxt) = &cp.seed_bank[0].1[0];
        assert_eq!(x, cx);
        for (a, b) in xt.iter().zip(cxt.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
        // In-flight donations round-trip separately from the committed bank.
        assert_eq!(back.pending_donations.len(), 1);
        let (pe, ptable) = &back.pending_donations[0];
        assert_eq!(pe.to_bits(), (0.475f64).to_bits());
        assert_eq!(ptable[0].0, cp.pending_donations[0].1[0].0);
    }

    #[test]
    fn save_and_load_via_file() {
        let cp = sample();
        let dir = std::env::temp_dir().join("cbs_sweep_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.txt");
        cp.save(&path).unwrap();
        let back = SweepCheckpoint::load(&path).unwrap();
        assert_eq!(back.records.len(), cp.records.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(SweepCheckpoint::parse("").is_err());
        assert!(SweepCheckpoint::parse("not a checkpoint\n").is_err());
        let text = sample().serialize_to_string();
        // Truncation (drop the trailing `end`) must be detected.
        let truncated = text.trim_end().trim_end_matches("end").to_string();
        assert!(SweepCheckpoint::parse(&truncated).is_err());
        // Corrupt a hex token.
        let corrupt = text.replacen("record", "rekord", 1);
        assert!(SweepCheckpoint::parse(&corrupt).is_err());
        // An arbitrary bad first line is malformed, not a version problem.
        match SweepCheckpoint::parse("garbage v2\nrest\n") {
            Err(CheckpointError::Malformed(_)) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn old_checkpoint_versions_are_reported_as_incompatible() {
        // A v1 checkpoint (pre-`operator_traversals`): the body does not
        // matter — the magic line alone must produce the dedicated
        // incompatible-version error, not a generic parse failure.
        let v1 = "cbs-sweep-checkpoint v1\nfingerprint 0\ngrid 0\nrecords 0\nseeds 0\nend\n";
        match SweepCheckpoint::parse(v1) {
            Err(CheckpointError::IncompatibleVersion { found }) => {
                assert_eq!(found, "cbs-sweep-checkpoint v1");
            }
            other => panic!("expected IncompatibleVersion, got {other:?}"),
        }
        // The v2 layout (pre-`operator_assemblies`) is likewise refused up
        // front instead of being parsed with misaligned counters.
        let v2 = sample().serialize_to_string().replacen("v5", "v2", 1);
        let err = SweepCheckpoint::parse(&v2).unwrap_err();
        assert!(matches!(err, CheckpointError::IncompatibleVersion { .. }));
        // And v3 (pre-slicing): its fingerprint lacks the slice-policy
        // fields and its seed tables predate the slice-major layout.
        let v3 = sample().serialize_to_string().replacen("v5", "v3", 1);
        let err = SweepCheckpoint::parse(&v3).unwrap_err();
        assert!(matches!(err, CheckpointError::IncompatibleVersion { .. }));
        // The message tells the operator what to do.
        let msg = err.to_string();
        assert!(msg.contains("incompatible checkpoint version"), "{msg}");
        assert!(msg.contains("delete the checkpoint and re-sweep"), "{msg}");
    }

    #[test]
    fn v4_checkpoints_are_refused_and_the_message_names_the_version() {
        // v4 predates the auto section (and the auto fingerprint bits): it
        // must hit the dedicated incompatible-version path, and the error
        // message must name the version found so the operator knows which
        // file is stale.
        let v4 = sample().serialize_to_string().replacen("v5", "v4", 1);
        match SweepCheckpoint::parse(&v4) {
            Err(CheckpointError::IncompatibleVersion { ref found }) => {
                assert_eq!(found, "cbs-sweep-checkpoint v4");
                let msg = CheckpointError::IncompatibleVersion { found: found.clone() }.to_string();
                assert!(msg.contains("cbs-sweep-checkpoint v4"), "{msg}");
                assert!(msg.contains("cbs-sweep-checkpoint v5"), "{msg}");
            }
            other => panic!("expected IncompatibleVersion, got {other:?}"),
        }
    }

    #[test]
    fn auto_decision_round_trips_exactly() {
        let mut cp = sample();
        cp.auto = Some(AutoDecision {
            block: BlockPolicy::PerNode,
            precond: PrecondPolicy::AssembledIlu0,
            slices: 1,
            probe: vec![
                ProbeSample {
                    block: BlockPolicy::PerNode,
                    precond: PrecondPolicy::MatrixFree,
                    iterations: 3090,
                    traversals: 4686,
                    assemblies: 0,
                    wall_ns: 120_000_000,
                },
                ProbeSample {
                    block: BlockPolicy::PerNode,
                    precond: PrecondPolicy::AssembledIlu0,
                    iterations: 1033,
                    traversals: 533,
                    assemblies: 8,
                    wall_ns: 55_000_000,
                },
            ],
        });
        let text = cp.serialize_to_string();
        let back = SweepCheckpoint::parse(&text).expect("parse");
        assert_eq!(back.auto, cp.auto);
        assert_eq!(back.auto.as_ref().unwrap().cell().precond, PrecondPolicy::AssembledIlu0);
        // A corrupted policy discriminant is malformed, not silently mapped.
        let bad = text.replacen("cell 1 2 1", "cell 1 9 1", 1);
        assert!(matches!(SweepCheckpoint::parse(&bad), Err(CheckpointError::Malformed(_))));
    }
}
