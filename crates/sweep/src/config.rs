//! Knobs of the multi-energy sweep orchestrator.

use serde::{Deserialize, Serialize};

use cbs_core::SsConfig;
use cbs_parallel::SweepSchedule;

/// Configuration of a [`crate::EnergySweep`].
///
/// The per-energy eigensolver parameters live in [`ss`](Self::ss); the rest
/// controls *orchestration*: how the per-energy solve groups are released
/// into the flattened task pool, whether their BiCG solves are warm-started
/// from a neighbouring energy's solutions, how the energy grid is refined
/// adaptively, and how many donor solution sets are retained for seeding.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SweepConfig {
    /// The Sakurai-Sugiura parameters applied at every scan energy.
    pub ss: SsConfig,
    /// Seed each energy's dual-BiCG solves from the nearest
    /// already-completed energy (dyadic wavefront scheduling).  When off,
    /// all energies run cold in a single maximally flattened round —
    /// bit-identical to the per-energy `compute_cbs` loop.
    pub warm_start: bool,
    /// Upper bound on the size of the first (cold) wavefront round; only
    /// meaningful with [`warm_start`](Self::warm_start).  `0` degenerates
    /// to the flat schedule.
    pub initial_round: usize,
    /// Budget of extra scan energies the adaptive refinement may insert
    /// (`0` disables refinement).
    pub max_refinements: usize,
    /// Minimum width (hartree) of an interval the refinement will bisect.
    pub min_refine_spacing: f64,
    /// Maximum number of completed energies whose solutions are retained
    /// as warm-start donors; the oldest completion is evicted first.  Each
    /// entry holds `2 · N_int · N_rh` length-`N` vectors, so this bounds
    /// the sweep's dominant memory cost.
    pub seed_bank_capacity: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self::new(SsConfig::default())
    }
}

impl SweepConfig {
    /// Warm-started defaults around the given per-energy solver parameters.
    pub fn new(ss: SsConfig) -> Self {
        Self {
            ss,
            warm_start: true,
            initial_round: 8,
            max_refinements: 0,
            min_refine_spacing: 1e-6,
            seed_bank_capacity: 16,
        }
    }

    /// A cold sweep: one flat round, no seeding, no refinement.  Produces
    /// output bit-identical to the per-energy `compute_cbs` loop on the
    /// same (ascending) grid.
    pub fn cold(ss: SsConfig) -> Self {
        Self { warm_start: false, ..Self::new(ss) }
    }

    /// Enable adaptive refinement with the given extra-energy budget.
    pub fn with_refinement(mut self, budget: usize) -> Self {
        self.max_refinements = budget;
        self
    }

    /// The release schedule implied by this configuration.
    pub fn schedule(&self) -> SweepSchedule {
        if self.warm_start && self.initial_round > 0 {
            SweepSchedule::Wavefront { initial_round: self.initial_round }
        } else {
            SweepSchedule::Flat
        }
    }

    /// Bit-exact fingerprint of every physics-relevant knob, stored in
    /// checkpoints and verified on resume: resuming under a different
    /// configuration would silently change the results, so it is an error.
    pub fn fingerprint(&self, period: f64) -> Vec<u64> {
        // `None` node-count / subspace overrides encode as `u64::MAX`
        // (distinct from any explicit value).
        let opt = |o: Option<usize>| o.map_or(u64::MAX, |v| v as u64);
        vec![
            self.ss.n_int as u64,
            self.ss.n_mm as u64,
            self.ss.n_rh as u64,
            self.ss.delta.to_bits(),
            self.ss.lambda_min.to_bits(),
            self.ss.bicg_tolerance.to_bits(),
            self.ss.bicg_max_iterations as u64,
            self.ss.residual_cutoff.to_bits(),
            self.ss.seed,
            self.ss.majority_stop as u64,
            // The precond policy changes the floating-point trajectory
            // (assembled arithmetic, ILU-preconditioned recurrences), so a
            // resume across it would silently change results; the block
            // policy stays excluded because its results are bitwise
            // policy-invariant.
            self.ss.precond as u64,
            // The slice policy likewise changes the trajectory for S > 1
            // (different node sets, per-slice subspaces and source blocks)
            // — every field of it is part of the resume contract.  This is
            // what bumped the checkpoint format to v4.
            self.ss.slice.angular as u64,
            self.ss.slice.radial as u64,
            self.ss.slice.guard.to_bits(),
            self.ss.slice.radial_guard.to_bits(),
            opt(self.ss.slice.arc_nodes),
            self.ss.slice.radial_nodes as u64,
            opt(self.ss.slice.slice_n_mm),
            opt(self.ss.slice.slice_n_rh),
            self.ss.slice.merge_tol.to_bits(),
            self.warm_start as u64,
            self.initial_round as u64,
            self.max_refinements as u64,
            self.min_refine_spacing.to_bits(),
            self.seed_bank_capacity as u64,
            period.to_bits(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_follows_warm_start() {
        let cfg = SweepConfig::new(SsConfig::small());
        assert_eq!(cfg.schedule(), SweepSchedule::Wavefront { initial_round: 8 });
        assert_eq!(SweepConfig::cold(SsConfig::small()).schedule(), SweepSchedule::Flat);
        let zero = SweepConfig { initial_round: 0, ..cfg };
        assert_eq!(zero.schedule(), SweepSchedule::Flat);
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = SweepConfig::new(SsConfig::small());
        let mut b = a;
        assert_eq!(a.fingerprint(1.0), b.fingerprint(1.0));
        assert_ne!(a.fingerprint(1.0), a.fingerprint(2.0));
        b.ss.n_rh += 1;
        assert_ne!(a.fingerprint(1.0), b.fingerprint(1.0));
        let c = SweepConfig { warm_start: false, ..a };
        assert_ne!(a.fingerprint(1.0), c.fingerprint(1.0));
    }
}
