//! # cbs-grid
//!
//! Real-space grid substrate: uniform 3-D grids for one-dimensionally
//! periodic cells, high-order central finite-difference stencils for the
//! Laplacian, and the domain-decomposition geometry used by the bottom layer
//! of the paper's hierarchical parallelism.
//!
//! Everything here is pure geometry/bookkeeping; the Hamiltonian assembly
//! lives in `cbs-dft` and the threaded execution in `cbs-parallel`.

#![warn(missing_docs)]

pub mod domain;
pub mod grid3d;
pub mod stencil;

pub use domain::{Domain, DomainDecomposition, HaloMessage};
pub use grid3d::{CellShift, Grid3};
pub use stencil::{laplacian_stencil_1d, second_derivative_weights, FdOrder, KINETIC_PREFACTOR};
