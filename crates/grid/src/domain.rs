//! Domain decomposition of the real-space grid for the bottom layer of the
//! paper's hierarchical parallelism.
//!
//! The grid is split into `ndx × ndy × ndz` box-shaped domains.  Each domain
//! owns a contiguous index range of grid points; applying the
//! finite-difference Laplacian near a domain boundary requires "halo" points
//! owned by neighbouring domains.  This module only computes the geometry —
//! which points each domain owns and which halo points it must receive from
//! whom — so that the threaded executor in `cbs-parallel` and the analytic
//! communication model can share one source of truth.

use serde::{Deserialize, Serialize};

use crate::grid3d::Grid3;
use crate::stencil::FdOrder;

/// One box-shaped domain of the decomposition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Domain {
    /// Domain id in `0..n_domains`.
    pub id: usize,
    /// Owned index range along x: `[x0, x1)`.
    pub xr: (usize, usize),
    /// Owned index range along y: `[y0, y1)`.
    pub yr: (usize, usize),
    /// Owned index range along z: `[z0, z1)`.
    pub zr: (usize, usize),
}

impl Domain {
    /// Number of grid points owned by this domain.
    pub fn npoints(&self) -> usize {
        (self.xr.1 - self.xr.0) * (self.yr.1 - self.yr.0) * (self.zr.1 - self.zr.0)
    }

    /// Whether the global point `(i, j, k)` is owned by this domain.
    pub fn contains(&self, i: usize, j: usize, k: usize) -> bool {
        i >= self.xr.0
            && i < self.xr.1
            && j >= self.yr.0
            && j < self.yr.1
            && k >= self.zr.0
            && k < self.zr.1
    }
}

/// A message in the halo-exchange plan: `from` sends the listed global grid
/// indices to `to` before a stencil application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HaloMessage {
    /// Sending domain id.
    pub from: usize,
    /// Receiving domain id.
    pub to: usize,
    /// Global linear indices of the grid points to transfer.
    pub indices: Vec<usize>,
}

/// A full domain decomposition of a grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DomainDecomposition {
    /// The decomposed grid.
    pub grid: Grid3,
    /// Number of domains along each axis.
    pub shape: (usize, usize, usize),
    /// The domains, indexed by id.
    pub domains: Vec<Domain>,
    /// Owner domain of every global grid point.
    owner: Vec<usize>,
}

impl DomainDecomposition {
    /// Split `grid` into `ndx × ndy × ndz` domains of (near-)equal size.
    ///
    /// Each axis is divided into contiguous chunks whose lengths differ by at
    /// most one; this mirrors the paper's grid-point domain decomposition
    /// along the z direction for the large systems.
    pub fn new(grid: Grid3, ndx: usize, ndy: usize, ndz: usize) -> Self {
        assert!(ndx >= 1 && ndy >= 1 && ndz >= 1, "need at least one domain per axis");
        assert!(
            ndx <= grid.nx && ndy <= grid.ny && ndz <= grid.nz,
            "cannot have more domains than grid points along an axis"
        );
        let splits = |n: usize, parts: usize| -> Vec<(usize, usize)> {
            let base = n / parts;
            let extra = n % parts;
            let mut out = Vec::with_capacity(parts);
            let mut start = 0;
            for p in 0..parts {
                let len = base + usize::from(p < extra);
                out.push((start, start + len));
                start += len;
            }
            out
        };
        let xs = splits(grid.nx, ndx);
        let ys = splits(grid.ny, ndy);
        let zs = splits(grid.nz, ndz);
        let mut domains = Vec::with_capacity(ndx * ndy * ndz);
        for &zr in &zs {
            for &yr in &ys {
                for &xr in &xs {
                    let id = domains.len();
                    domains.push(Domain { id, xr, yr, zr });
                }
            }
        }
        let mut owner = vec![0usize; grid.npoints()];
        for d in &domains {
            for k in d.zr.0..d.zr.1 {
                for j in d.yr.0..d.yr.1 {
                    for i in d.xr.0..d.xr.1 {
                        owner[grid.index(i, j, k)] = d.id;
                    }
                }
            }
        }
        Self { grid, shape: (ndx, ndy, ndz), domains, owner }
    }

    /// Decompose along z only (the paper's choice for the CNT systems).
    pub fn along_z(grid: Grid3, ndz: usize) -> Self {
        Self::new(grid, 1, 1, ndz)
    }

    /// Number of domains.
    pub fn n_domains(&self) -> usize {
        self.domains.len()
    }

    /// Owner domain id of a global linear index.
    pub fn owner_of(&self, idx: usize) -> usize {
        self.owner[idx]
    }

    /// Global linear indices owned by domain `id`, in grid order.
    pub fn owned_indices(&self, id: usize) -> Vec<usize> {
        let d = &self.domains[id];
        let mut out = Vec::with_capacity(d.npoints());
        for k in d.zr.0..d.zr.1 {
            for j in d.yr.0..d.yr.1 {
                for i in d.xr.0..d.xr.1 {
                    out.push(self.grid.index(i, j, k));
                }
            }
        }
        out
    }

    /// Halo points that domain `id` needs from other domains to apply a
    /// finite-difference stencil of half-width `fd.nf`.
    ///
    /// Lateral (x, y) directions wrap periodically; the z direction is open
    /// within the cell (inter-cell coupling is handled by the `H₀₁` block,
    /// not by halo exchange).
    pub fn halo_indices(&self, id: usize, fd: FdOrder) -> Vec<usize> {
        let d = &self.domains[id];
        let nf = fd.nf as isize;
        let g = &self.grid;
        let mut needed: Vec<usize> = Vec::new();
        let mut mark = vec![false; g.npoints()];
        for k in d.zr.0..d.zr.1 {
            for j in d.yr.0..d.yr.1 {
                for i in d.xr.0..d.xr.1 {
                    for o in -nf..=nf {
                        if o == 0 {
                            continue;
                        }
                        // x neighbour (periodic)
                        let xi = g.wrap_x(i as isize + o);
                        let xidx = g.index(xi, j, k);
                        if self.owner[xidx] != id && !mark[xidx] {
                            mark[xidx] = true;
                            needed.push(xidx);
                        }
                        // y neighbour (periodic)
                        let yj = g.wrap_y(j as isize + o);
                        let yidx = g.index(i, yj, k);
                        if self.owner[yidx] != id && !mark[yidx] {
                            mark[yidx] = true;
                            needed.push(yidx);
                        }
                        // z neighbour (open within the cell)
                        let kk = k as isize + o;
                        if kk >= 0 && kk < g.nz as isize {
                            let zidx = g.index(i, j, kk as usize);
                            if self.owner[zidx] != id && !mark[zidx] {
                                mark[zidx] = true;
                                needed.push(zidx);
                            }
                        }
                    }
                }
            }
        }
        needed.sort_unstable();
        needed
    }

    /// The full halo-exchange plan for a stencil of half-width `fd.nf`:
    /// one message per (sender, receiver) pair that actually transfers data.
    pub fn halo_plan(&self, fd: FdOrder) -> Vec<HaloMessage> {
        let mut plan = Vec::new();
        for to in 0..self.n_domains() {
            let halo = self.halo_indices(to, fd);
            // Group by owner.
            let mut by_owner: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for idx in halo {
                by_owner.entry(self.owner[idx]).or_default().push(idx);
            }
            for (from, indices) in by_owner {
                plan.push(HaloMessage { from, to, indices });
            }
        }
        plan
    }

    /// Total number of grid-point values exchanged per stencil application —
    /// the communication volume that feeds the performance model.
    pub fn halo_volume(&self, fd: FdOrder) -> usize {
        self.halo_plan(fd).iter().map(|m| m.indices.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domains_partition_the_grid() {
        let g = Grid3::isotropic(7, 6, 10, 0.5);
        let dd = DomainDecomposition::new(g, 2, 3, 4);
        assert_eq!(dd.n_domains(), 24);
        let total: usize = dd.domains.iter().map(super::Domain::npoints).sum();
        assert_eq!(total, g.npoints());
        // Every point owned by exactly one domain, consistent with contains().
        for idx in 0..g.npoints() {
            let (i, j, k) = g.coords(idx);
            let owners: Vec<usize> =
                dd.domains.iter().filter(|d| d.contains(i, j, k)).map(|d| d.id).collect();
            assert_eq!(owners.len(), 1);
            assert_eq!(owners[0], dd.owner_of(idx));
        }
    }

    #[test]
    fn owned_indices_match_owner_map() {
        let g = Grid3::isotropic(4, 4, 8, 0.5);
        let dd = DomainDecomposition::along_z(g, 4);
        for id in 0..dd.n_domains() {
            for idx in dd.owned_indices(id) {
                assert_eq!(dd.owner_of(idx), id);
            }
        }
    }

    #[test]
    fn single_domain_has_no_halo() {
        let g = Grid3::isotropic(6, 6, 6, 0.5);
        let dd = DomainDecomposition::new(g, 1, 1, 1);
        assert!(dd.halo_indices(0, FdOrder::new(4)).is_empty());
        assert_eq!(dd.halo_volume(FdOrder::new(4)), 0);
    }

    #[test]
    fn z_split_halo_is_plane_shaped() {
        let g = Grid3::isotropic(4, 4, 12, 0.5);
        let dd = DomainDecomposition::along_z(g, 3);
        let fd = FdOrder::new(2);
        // Middle domain needs nf planes from each side: 2 * 2 * (4*4) points.
        let halo = dd.halo_indices(1, fd);
        assert_eq!(halo.len(), 2 * fd.nf * 16);
        // End domains touch only one neighbour in z.
        assert_eq!(dd.halo_indices(0, fd).len(), fd.nf * 16);
        assert_eq!(dd.halo_indices(2, fd).len(), fd.nf * 16);
    }

    #[test]
    fn halo_plan_messages_are_consistent() {
        let g = Grid3::isotropic(6, 6, 9, 0.5);
        let dd = DomainDecomposition::new(g, 2, 1, 3);
        let fd = FdOrder::new(1);
        let plan = dd.halo_plan(fd);
        for msg in &plan {
            assert_ne!(msg.from, msg.to);
            for &idx in &msg.indices {
                assert_eq!(dd.owner_of(idx), msg.from);
            }
        }
        let volume: usize = plan.iter().map(|m| m.indices.len()).sum();
        assert_eq!(volume, dd.halo_volume(fd));
        assert!(volume > 0);
    }

    #[test]
    fn lateral_periodic_wrap_creates_halo_between_edge_domains() {
        let g = Grid3::isotropic(8, 4, 4, 0.5);
        let dd = DomainDecomposition::new(g, 2, 1, 1);
        let fd = FdOrder::new(1);
        // Domain 0 owns x in [0,4), domain 1 owns [4,8); the periodic wrap in
        // x means each needs points from the other on both faces.
        let halo0 = dd.halo_indices(0, fd);
        assert!(halo0.iter().all(|&idx| dd.owner_of(idx) == 1));
        let expected = 2 * 4 * 4; // two faces of ny*nz points at nf=1
        assert_eq!(halo0.len(), expected);
    }

    #[test]
    #[should_panic]
    fn too_many_domains_rejected() {
        let g = Grid3::isotropic(4, 4, 4, 0.5);
        let _ = DomainDecomposition::along_z(g, 5);
    }
}
