//! Uniform real-space grids for one-dimensionally periodic systems.
//!
//! The simulation cell is a box of `nx × ny × nz` points with spacings
//! `(hx, hy, hz)`.  Following the paper, the `z` axis is the transport /
//! periodicity direction of the 1-D crystal: the cell repeats with period
//! `a = nz * hz` along `z`, while `x` and `y` are treated as periodic
//! lateral directions sampled at the Γ point (bulk) or padded with vacuum
//! (isolated wires such as carbon nanotubes).

use serde::{Deserialize, Serialize};

/// Identifies which unit cell a stencil neighbour falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellShift {
    /// The previous unit cell (`n-1`); contributes to `H_{n,n-1}`.
    Previous,
    /// The same unit cell; contributes to `H_{n,n}`.
    Same,
    /// The next unit cell (`n+1`); contributes to `H_{n,n+1}`.
    Next,
}

/// A uniform 3-D grid over one unit cell.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Grid3 {
    /// Number of grid points along x.
    pub nx: usize,
    /// Number of grid points along y.
    pub ny: usize,
    /// Number of grid points along z (the periodic transport direction).
    pub nz: usize,
    /// Grid spacing along x (bohr).
    pub hx: f64,
    /// Grid spacing along y (bohr).
    pub hy: f64,
    /// Grid spacing along z (bohr).
    pub hz: f64,
}

impl Grid3 {
    /// Create a grid with the given point counts and spacings.
    pub fn new(nx: usize, ny: usize, nz: usize, hx: f64, hy: f64, hz: f64) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid must have at least one point per axis");
        assert!(hx > 0.0 && hy > 0.0 && hz > 0.0, "grid spacings must be positive");
        Self { nx, ny, nz, hx, hy, hz }
    }

    /// Isotropic grid (same spacing in all directions).
    pub fn isotropic(nx: usize, ny: usize, nz: usize, h: f64) -> Self {
        Self::new(nx, ny, nz, h, h, h)
    }

    /// Total number of points per unit cell (the Hamiltonian dimension in a
    /// single-component, Γ-point calculation).
    pub fn npoints(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Cell extent along x (bohr).
    pub fn lx(&self) -> f64 {
        self.nx as f64 * self.hx
    }

    /// Cell extent along y (bohr).
    pub fn ly(&self) -> f64 {
        self.ny as f64 * self.hy
    }

    /// Period of the crystal along z (bohr).  This is the lattice constant
    /// `a` entering `λ = exp(i k a)`.
    pub fn lz(&self) -> f64 {
        self.nz as f64 * self.hz
    }

    /// Volume element `hx hy hz` (bohr³) for grid integrations.
    pub fn dv(&self) -> f64 {
        self.hx * self.hy * self.hz
    }

    /// Linear index of the grid point `(i, j, k)`; x varies fastest.
    #[inline(always)]
    pub fn index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// Inverse of [`index`](Self::index).
    #[inline(always)]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.npoints());
        let i = idx % self.nx;
        let j = (idx / self.nx) % self.ny;
        let k = idx / (self.nx * self.ny);
        (i, j, k)
    }

    /// Cartesian position (bohr) of a grid point, with the cell spanning
    /// `[0, L)` in each direction.
    pub fn position(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        [i as f64 * self.hx, j as f64 * self.hy, k as f64 * self.hz]
    }

    /// Wrap a (possibly negative) lateral index periodically.
    #[inline(always)]
    pub fn wrap_x(&self, i: isize) -> usize {
        i.rem_euclid(self.nx as isize) as usize
    }

    /// Wrap a (possibly negative) lateral index periodically.
    #[inline(always)]
    pub fn wrap_y(&self, j: isize) -> usize {
        j.rem_euclid(self.ny as isize) as usize
    }

    /// Resolve a z-offset neighbour: returns the local z index and the unit
    /// cell it belongs to.  Offsets larger than one cell are rejected (the
    /// finite-difference half-width must satisfy `nf <= nz`).
    #[inline]
    pub fn neighbor_z(&self, k: usize, offset: isize) -> (CellShift, usize) {
        let kk = k as isize + offset;
        let nz = self.nz as isize;
        if kk < 0 {
            debug_assert!(kk >= -nz, "stencil reaches beyond the previous cell");
            (CellShift::Previous, (kk + nz) as usize)
        } else if kk >= nz {
            debug_assert!(kk < 2 * nz, "stencil reaches beyond the next cell");
            (CellShift::Next, (kk - nz) as usize)
        } else {
            (CellShift::Same, kk as usize)
        }
    }

    /// Minimum-image displacement from `from` to `to` treating x and y as
    /// periodic and z as open (within one cell).  Used when evaluating
    /// atom-centred quantities on the grid.
    pub fn min_image_xy(&self, from: [f64; 3], to: [f64; 3]) -> [f64; 3] {
        let mut d = [to[0] - from[0], to[1] - from[1], to[2] - from[2]];
        let lx = self.lx();
        let ly = self.ly();
        d[0] -= lx * (d[0] / lx).round();
        d[1] -= ly * (d[1] / ly).round();
        d
    }

    /// Iterate over all grid points as `(i, j, k, linear_index)`.
    pub fn iter_points(&self) -> impl Iterator<Item = (usize, usize, usize, usize)> + '_ {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        (0..nz).flat_map(move |k| {
            (0..ny).flat_map(move |j| (0..nx).map(move |i| (i, j, k, i + nx * (j + ny * k))))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let g = Grid3::isotropic(4, 5, 6, 0.4);
        assert_eq!(g.npoints(), 120);
        for idx in 0..g.npoints() {
            let (i, j, k) = g.coords(idx);
            assert_eq!(g.index(i, j, k), idx);
        }
    }

    #[test]
    fn ordering_is_x_fastest() {
        let g = Grid3::isotropic(3, 3, 3, 1.0);
        assert_eq!(g.index(1, 0, 0), 1);
        assert_eq!(g.index(0, 1, 0), 3);
        assert_eq!(g.index(0, 0, 1), 9);
    }

    #[test]
    fn lateral_wrapping() {
        let g = Grid3::isotropic(5, 4, 3, 1.0);
        assert_eq!(g.wrap_x(-1), 4);
        assert_eq!(g.wrap_x(5), 0);
        assert_eq!(g.wrap_y(-2), 2);
        assert_eq!(g.wrap_y(7), 3);
    }

    #[test]
    fn z_neighbors_classify_cells() {
        let g = Grid3::isotropic(2, 2, 6, 1.0);
        assert_eq!(g.neighbor_z(3, 2), (CellShift::Same, 5));
        assert_eq!(g.neighbor_z(5, 1), (CellShift::Next, 0));
        assert_eq!(g.neighbor_z(0, -1), (CellShift::Previous, 5));
        assert_eq!(g.neighbor_z(0, -4), (CellShift::Previous, 2));
        assert_eq!(g.neighbor_z(5, 4), (CellShift::Next, 3));
    }

    #[test]
    fn geometry_quantities() {
        let g = Grid3::new(10, 20, 30, 0.3, 0.2, 0.1);
        assert!((g.lx() - 3.0).abs() < 1e-14);
        assert!((g.ly() - 4.0).abs() < 1e-14);
        assert!((g.lz() - 3.0).abs() < 1e-14);
        assert!((g.dv() - 0.006).abs() < 1e-14);
        let p = g.position(1, 2, 3);
        for (got, want) in p.iter().zip(&[0.3, 0.4, 0.3]) {
            assert!((got - want).abs() < 1e-12);
        }
    }

    #[test]
    fn min_image_wraps_lateral_directions_only() {
        let g = Grid3::isotropic(10, 10, 10, 1.0);
        let d = g.min_image_xy([9.0, 0.5, 0.0], [0.0, 9.5, 8.0]);
        assert!((d[0] - 1.0).abs() < 1e-12);
        assert!((d[1] + 1.0).abs() < 1e-12);
        assert!((d[2] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn iter_points_covers_grid_once() {
        let g = Grid3::isotropic(3, 2, 2, 1.0);
        let mut seen = vec![false; g.npoints()];
        for (i, j, k, idx) in g.iter_points() {
            assert_eq!(g.index(i, j, k), idx);
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
