//! Central finite-difference stencils for the Laplacian on a uniform grid.
//!
//! The paper uses the real-space finite-difference scheme of Chelikowsky,
//! Troullier and Saad with a nine-point (N_f = 4) approximation of the
//! Laplacian in each direction.  The coefficients below are the standard
//! central-difference weights for the second derivative at orders
//! `2 N_f = 2, 4, 6, 8`.

/// Central finite-difference weights for d²/dx² with half-width `nf`.
///
/// Returns `2*nf + 1` coefficients `c_{-nf} ... c_{+nf}` to be divided by
/// `h²`; the approximation is accurate to order `2*nf`.
pub fn second_derivative_weights(nf: usize) -> Vec<f64> {
    match nf {
        1 => vec![1.0, -2.0, 1.0],
        2 => vec![-1.0 / 12.0, 4.0 / 3.0, -5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0],
        3 => vec![
            1.0 / 90.0,
            -3.0 / 20.0,
            3.0 / 2.0,
            -49.0 / 18.0,
            3.0 / 2.0,
            -3.0 / 20.0,
            1.0 / 90.0,
        ],
        4 => vec![
            -1.0 / 560.0,
            8.0 / 315.0,
            -1.0 / 5.0,
            8.0 / 5.0,
            -205.0 / 72.0,
            8.0 / 5.0,
            -1.0 / 5.0,
            8.0 / 315.0,
            -1.0 / 560.0,
        ],
        _ => panic!("finite-difference half-width {nf} not supported (1..=4)"),
    }
}

/// One-dimensional Laplacian stencil: the second-derivative weights divided
/// by `h²`, returned as `(offset, weight)` pairs with `offset ∈ [-nf, nf]`.
pub fn laplacian_stencil_1d(nf: usize, h: f64) -> Vec<(isize, f64)> {
    let w = second_derivative_weights(nf);
    let inv_h2 = 1.0 / (h * h);
    w.iter().enumerate().map(|(i, &c)| (i as isize - nf as isize, c * inv_h2)).collect()
}

/// The kinetic-energy prefactor in Hartree atomic units: `T = -½ ∇²`, so the
/// stencil weights are multiplied by `-0.5`.
pub const KINETIC_PREFACTOR: f64 = -0.5;

/// Description of the finite-difference order used by a Hamiltonian.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FdOrder {
    /// Half width `N_f` of the stencil (the paper uses 4, i.e. nine points).
    pub nf: usize,
}

impl FdOrder {
    /// The paper's nine-point stencil.
    pub const PAPER: FdOrder = FdOrder { nf: 4 };

    /// Construct, validating the supported range.
    pub fn new(nf: usize) -> Self {
        assert!((1..=4).contains(&nf), "N_f must be in 1..=4");
        Self { nf }
    }

    /// Number of points in the 1-D stencil.
    pub fn points(&self) -> usize {
        2 * self.nf + 1
    }
}

impl Default for FdOrder {
    fn default() -> Self {
        FdOrder::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each stencil must annihilate constants (weights sum to zero) and
    /// reproduce the second derivative of x² exactly (Σ c_j j² = 2).
    #[test]
    fn weights_satisfy_moment_conditions() {
        for nf in 1..=4usize {
            let w = second_derivative_weights(nf);
            assert_eq!(w.len(), 2 * nf + 1);
            let sum: f64 = w.iter().sum();
            assert!(sum.abs() < 1e-12, "nf={nf}: weights sum {sum}");
            let mut second_moment = 0.0;
            let mut first_moment = 0.0;
            for (i, &c) in w.iter().enumerate() {
                let j = i as f64 - nf as f64;
                first_moment += c * j;
                second_moment += c * j * j;
            }
            assert!(first_moment.abs() < 1e-12, "nf={nf}: odd moment {first_moment}");
            assert!((second_moment - 2.0).abs() < 1e-12, "nf={nf}: second moment {second_moment}");
        }
    }

    /// Convergence order check on sin(x): the error of the nf-point stencil
    /// must drop by ~2^(2 nf) when the spacing is halved.
    #[test]
    fn convergence_order_on_sine() {
        for nf in 1..=4usize {
            let exact = -(0.7f64).sin();
            let err = |h: f64| {
                let s = laplacian_stencil_1d(nf, h);
                let val: f64 = s.iter().map(|&(o, w)| w * (0.7 + o as f64 * h).sin()).sum();
                (val - exact).abs()
            };
            // Spacings chosen large enough that truncation error dominates
            // round-off even for the eighth-order stencil.
            let e1 = err(0.3);
            let e2 = err(0.15);
            let order = (e1 / e2).log2();
            assert!(
                order > 2.0 * nf as f64 - 0.7,
                "nf={nf}: observed order {order}, expected ≈ {}",
                2 * nf
            );
        }
    }

    #[test]
    fn stencil_offsets_are_symmetric() {
        let s = laplacian_stencil_1d(4, 0.5);
        assert_eq!(s.len(), 9);
        for k in 0..s.len() {
            let (o1, w1) = s[k];
            let (o2, w2) = s[s.len() - 1 - k];
            assert_eq!(o1, -o2);
            assert!((w1 - w2).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn unsupported_order_panics() {
        let _ = second_derivative_weights(5);
    }

    #[test]
    fn fd_order_helpers() {
        assert_eq!(FdOrder::PAPER.points(), 9);
        assert_eq!(FdOrder::default(), FdOrder::PAPER);
        assert_eq!(FdOrder::new(2).points(), 5);
    }
}
