//! The `LinearOperator` abstraction: everything the iterative solvers and the
//! Sakurai-Sugiura method need from a matrix is "apply it (and its adjoint)
//! to a vector".
//!
//! The paper's central performance claim rests on never forming the
//! Kohn-Sham Hamiltonian densely: the QEP operator `P(z)` is only ever
//! applied matrix-free.  This trait is the seam that makes the eigensolver
//! generic over explicit CSR matrices, stencil operators, low-rank projector
//! sums and domain-decomposed (parallel) operators.

use cbs_linalg::{CVector, Complex64};

/// A complex linear operator `A : C^ncols -> C^nrows` that can be applied to
/// vectors, together with its Hermitian adjoint.
pub trait LinearOperator: Sync {
    /// Number of rows (length of the output of [`apply`](Self::apply)).
    fn nrows(&self) -> usize;

    /// Number of columns (length of the input of [`apply`](Self::apply)).
    fn ncols(&self) -> usize;

    /// `y = A x`.  `y` is fully overwritten.
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]);

    /// `y = A† x`.  `y` is fully overwritten.
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]);

    /// `Y = A X` for a block of `nvecs` vectors stored column-major in
    /// contiguous slabs: column `c` of `X` is `x[c * ncols .. (c+1) * ncols]`
    /// and column `c` of `Y` is `y[c * nrows .. (c+1) * nrows]`.
    ///
    /// The default loops [`apply`](Self::apply) over the columns, so every
    /// implementation gets the block entry point for free.  Operators whose
    /// storage traversal dominates (CSR matrices, factored projector sums,
    /// compositions of them) override this with a **fused** kernel that
    /// walks the operator once for all columns; overrides must produce
    /// results **bit-identical** to the per-column default — the block data
    /// path of the solvers relies on that equivalence for its determinism
    /// guarantees (`tests/properties.rs` locks it in).
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        let (nc, nr) = (self.ncols(), self.nrows());
        assert_eq!(x.len(), nc * nvecs, "apply_block: x slab length mismatch");
        assert_eq!(y.len(), nr * nvecs, "apply_block: y slab length mismatch");
        for (xc, yc) in x.chunks_exact(nc).zip(y.chunks_exact_mut(nr)) {
            self.apply(xc, yc);
        }
    }

    /// `Y = A† X` over column-major slabs; the adjoint twin of
    /// [`apply_block`](Self::apply_block) (column `c` of `X` has length
    /// `nrows`, column `c` of `Y` has length `ncols`).  Overrides must stay
    /// bit-identical to the per-column default.
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        let (nc, nr) = (self.ncols(), self.nrows());
        assert_eq!(x.len(), nr * nvecs, "apply_adjoint_block: x slab length mismatch");
        assert_eq!(y.len(), nc * nvecs, "apply_adjoint_block: y slab length mismatch");
        for (xc, yc) in x.chunks_exact(nr).zip(y.chunks_exact_mut(nc)) {
            self.apply_adjoint(xc, yc);
        }
    }

    /// Convenience wrapper allocating the output.
    fn apply_vec(&self, x: &CVector) -> CVector {
        let mut y = CVector::zeros(self.nrows());
        self.apply(x.as_slice(), y.as_mut_slice());
        y
    }

    /// Convenience wrapper allocating the output of the adjoint.
    fn apply_adjoint_vec(&self, x: &CVector) -> CVector {
        let mut y = CVector::zeros(self.ncols());
        self.apply_adjoint(x.as_slice(), y.as_mut_slice());
        y
    }

    /// Dimension of a square operator (panics if not square).
    fn dim(&self) -> usize {
        assert_eq!(self.nrows(), self.ncols(), "operator is not square");
        self.nrows()
    }

    /// Approximate memory footprint of the operator's storage in bytes.
    /// Used for the paper's Figure 4(b) memory comparison.
    fn memory_bytes(&self) -> usize {
        0
    }

    /// How many operator-*storage* traversals one [`apply`](Self::apply) (or
    /// fused [`apply_block`](Self::apply_block)) performs — the unit of the
    /// solvers' traversal accounting.
    ///
    /// Most operators walk one backing store per application and keep the
    /// default of `1`.  Compositions that stream several stores override it:
    /// the matrix-free QEP operator `P(z)` reads `H₀₀`, `H₀₁` and `H₀₁†`
    /// (weight 3), while its assembled single-CSR form is back to 1 — which
    /// is exactly the ratio the assembled fast path exists to win.
    fn traversal_weight(&self) -> usize {
        1
    }
}

/// Approximate inverse `M ≈ A⁻¹` applied as a solve, together with its
/// adjoint — the seam the preconditioned dual-BiCG variants consume.
///
/// The adjoint solve is what keeps the paper's dual trick intact: with
/// `M ≈ P(z)` (e.g. an ILU(0) of the assembled operator), `M† ≈ P(z)† =
/// P(1/z̄)`, so the same factorization preconditions both the outer-circle
/// system and its inner-circle dual.
pub trait Preconditioner: Sync {
    /// Dimension of the (square) preconditioned operator.
    fn dim(&self) -> usize;

    /// `z = M⁻¹ r`.  `z` is fully overwritten.
    fn solve(&self, r: &[Complex64], z: &mut [Complex64]);

    /// `z = M⁻† r`.  `z` is fully overwritten.
    fn solve_adjoint(&self, r: &[Complex64], z: &mut [Complex64]);

    /// Multi-RHS solve over `nvecs` column-major vectors: column `c` lives
    /// at `r[c*n..(c+1)*n]` / `z[c*n..(c+1)*n]` (the same slab convention
    /// as [`LinearOperator::apply_block`]).
    ///
    /// The default loops [`Preconditioner::solve`] per column, so every
    /// implementation is *bitwise* equivalent to the per-column path out of
    /// the box.  Implementations that override it (the level-scheduled
    /// ILU(0) blocked sweeps) must preserve that bitwise equivalence — the
    /// block solver's parity contract with the per-column reference solver
    /// is test-locked on top of this seam.
    fn solve_block(&self, r: &[Complex64], z: &mut [Complex64], nvecs: usize) {
        let n = self.dim();
        for (rc, zc) in r.chunks_exact(n).zip(z.chunks_exact_mut(n)).take(nvecs) {
            self.solve(rc, zc);
        }
    }

    /// Multi-RHS adjoint solve; slab layout and bitwise contract as in
    /// [`Preconditioner::solve_block`].
    fn solve_adjoint_block(&self, r: &[Complex64], z: &mut [Complex64], nvecs: usize) {
        let n = self.dim();
        for (rc, zc) in r.chunks_exact(n).zip(z.chunks_exact_mut(n)).take(nvecs) {
            self.solve_adjoint(rc, zc);
        }
    }
}

impl<T: LinearOperator + ?Sized> LinearOperator for &T {
    fn nrows(&self) -> usize {
        (**self).nrows()
    }
    fn ncols(&self) -> usize {
        (**self).ncols()
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        (**self).apply(x, y);
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        (**self).apply_adjoint(x, y);
    }
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        (**self).apply_block(x, y, nvecs);
    }
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        (**self).apply_adjoint_block(x, y, nvecs);
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
    fn traversal_weight(&self) -> usize {
        (**self).traversal_weight()
    }
}

impl<T: LinearOperator + ?Sized> LinearOperator for Box<T> {
    fn nrows(&self) -> usize {
        (**self).nrows()
    }
    fn ncols(&self) -> usize {
        (**self).ncols()
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        (**self).apply(x, y);
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        (**self).apply_adjoint(x, y);
    }
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        (**self).apply_block(x, y, nvecs);
    }
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        (**self).apply_adjoint_block(x, y, nvecs);
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
    fn traversal_weight(&self) -> usize {
        (**self).traversal_weight()
    }
}

/// The identity operator of a given dimension.
#[derive(Clone, Copy, Debug)]
pub struct IdentityOp {
    n: usize,
}

impl IdentityOp {
    /// Identity on `C^n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl LinearOperator for IdentityOp {
    fn nrows(&self) -> usize {
        self.n
    }
    fn ncols(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        y.copy_from_slice(x);
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        y.copy_from_slice(x);
    }
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        assert_eq!(x.len(), self.n * nvecs, "apply_block: x slab length mismatch");
        assert_eq!(y.len(), self.n * nvecs, "apply_block: y slab length mismatch");
        y.copy_from_slice(x);
    }
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        assert_eq!(x.len(), self.n * nvecs, "apply_adjoint_block: x slab length mismatch");
        assert_eq!(y.len(), self.n * nvecs, "apply_adjoint_block: y slab length mismatch");
        y.copy_from_slice(x);
    }
}

/// A scaled operator `alpha * A`.
pub struct ScaledOp<A> {
    alpha: Complex64,
    inner: A,
}

impl<A: LinearOperator> ScaledOp<A> {
    /// Wrap `inner` as `alpha * inner`.
    pub fn new(alpha: Complex64, inner: A) -> Self {
        Self { alpha, inner }
    }
}

impl<A: LinearOperator> LinearOperator for ScaledOp<A> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }
    fn ncols(&self) -> usize {
        self.inner.ncols()
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.inner.apply(x, y);
        for v in y.iter_mut() {
            *v *= self.alpha;
        }
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.inner.apply_adjoint(x, y);
        let ac = self.alpha.conj();
        for v in y.iter_mut() {
            *v *= ac;
        }
    }
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        self.inner.apply_block(x, y, nvecs);
        for v in y.iter_mut() {
            *v *= self.alpha;
        }
    }
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        self.inner.apply_adjoint_block(x, y, nvecs);
        let ac = self.alpha.conj();
        for v in y.iter_mut() {
            *v *= ac;
        }
    }
    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

/// A linear combination `alpha * A + beta * B` of two same-shaped operators.
pub struct SumOp<A, B> {
    alpha: Complex64,
    a: A,
    beta: Complex64,
    b: B,
}

impl<A: LinearOperator, B: LinearOperator> SumOp<A, B> {
    /// Build `alpha * a + beta * b`.
    pub fn new(alpha: Complex64, a: A, beta: Complex64, b: B) -> Self {
        assert_eq!(a.nrows(), b.nrows(), "SumOp: row mismatch");
        assert_eq!(a.ncols(), b.ncols(), "SumOp: col mismatch");
        Self { alpha, a, beta, b }
    }
}

impl<A: LinearOperator, B: LinearOperator> LinearOperator for SumOp<A, B> {
    fn nrows(&self) -> usize {
        self.a.nrows()
    }
    fn ncols(&self) -> usize {
        self.a.ncols()
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.apply_block(x, y, 1);
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.apply_adjoint_block(x, y, 1);
    }
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        self.a.apply_block(x, y, nvecs);
        crate::scratch::with_scratch(self.b.nrows() * nvecs, |tmp| {
            self.b.apply_block(x, tmp, nvecs);
            for (yi, ti) in y.iter_mut().zip(tmp.iter()) {
                *yi = self.alpha * *yi + self.beta * *ti;
            }
        });
    }
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        self.a.apply_adjoint_block(x, y, nvecs);
        let (ac, bc) = (self.alpha.conj(), self.beta.conj());
        crate::scratch::with_scratch(self.b.ncols() * nvecs, |tmp| {
            self.b.apply_adjoint_block(x, tmp, nvecs);
            for (yi, ti) in y.iter_mut().zip(tmp.iter()) {
                *yi = ac * *yi + bc * *ti;
            }
        });
    }
    fn memory_bytes(&self) -> usize {
        self.a.memory_bytes() + self.b.memory_bytes()
    }
}

/// `A - sigma * I` for a square operator: the shifted operator that appears
/// throughout contour-integral eigensolvers.
pub struct ShiftedOp<A> {
    sigma: Complex64,
    inner: A,
}

impl<A: LinearOperator> ShiftedOp<A> {
    /// Build `inner - sigma * I`.
    pub fn new(inner: A, sigma: Complex64) -> Self {
        assert_eq!(inner.nrows(), inner.ncols(), "ShiftedOp requires a square operator");
        Self { sigma, inner }
    }
}

impl<A: LinearOperator> LinearOperator for ShiftedOp<A> {
    fn nrows(&self) -> usize {
        self.inner.nrows()
    }
    fn ncols(&self) -> usize {
        self.inner.ncols()
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.inner.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi -= self.sigma * *xi;
        }
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.inner.apply_adjoint(x, y);
        let sc = self.sigma.conj();
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi -= sc * *xi;
        }
    }
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        self.inner.apply_block(x, y, nvecs);
        // Square operator: the x and y slabs align elementwise, so one flat
        // pass equals the per-column shift subtraction.
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi -= self.sigma * *xi;
        }
    }
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        self.inner.apply_adjoint_block(x, y, nvecs);
        let sc = self.sigma.conj();
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi -= sc * *xi;
        }
    }
    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

/// Wrap a dense matrix as a `LinearOperator` (used in tests and for the
/// small dense blocks of the OBM baseline).
pub struct DenseOp {
    m: cbs_linalg::CMatrix,
}

impl DenseOp {
    /// Wrap the given dense matrix.
    pub fn new(m: cbs_linalg::CMatrix) -> Self {
        Self { m }
    }

    /// Access the wrapped matrix.
    pub fn matrix(&self) -> &cbs_linalg::CMatrix {
        &self.m
    }
}

impl LinearOperator for DenseOp {
    fn nrows(&self) -> usize {
        self.m.nrows()
    }
    fn ncols(&self) -> usize {
        self.m.ncols()
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.m.row(i);
            let mut acc = Complex64::ZERO;
            for (a, b) in row.iter().zip(x) {
                acc += *a * *b;
            }
            *yi = acc;
        }
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        for v in y.iter_mut() {
            *v = Complex64::ZERO;
        }
        for (i, &xi) in x.iter().enumerate() {
            let row = self.m.row(i);
            for (a, yj) in row.iter().zip(y.iter_mut()) {
                *yj += a.conj() * xi;
            }
        }
    }
    fn memory_bytes(&self) -> usize {
        self.m.memory_bytes()
    }
}

/// Measure the largest relative defect of the adjoint identity
/// `⟨A x, y⟩ = ⟨x, A† y⟩` over `trials` random vector pairs; a cheap sanity
/// check for hand-written operators.
pub fn adjoint_defect<A: LinearOperator, R: rand::Rng + ?Sized>(
    op: &A,
    trials: usize,
    rng: &mut R,
) -> f64 {
    let mut worst = 0.0f64;
    for _ in 0..trials {
        let x = CVector::random(op.ncols(), rng);
        let y = CVector::random(op.nrows(), rng);
        let ax = op.apply_vec(&x);
        let aty = op.apply_adjoint_vec(&y);
        let lhs = ax.dot(&y);
        let rhs = x.dot(&aty);
        let scale = ax.norm() * y.norm() + 1e-300;
        worst = worst.max((lhs - rhs).abs() / scale);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_linalg::{c64, CMatrix};
    use rand::SeedableRng;

    #[test]
    fn identity_and_scaled() {
        let id = IdentityOp::new(4);
        let x = CVector::from_vec(vec![c64(1.0, 1.0); 4]);
        assert_eq!(id.apply_vec(&x), x);
        let s = ScaledOp::new(c64(0.0, 2.0), id);
        let y = s.apply_vec(&x);
        assert_eq!(y[0], c64(-2.0, 2.0));
        // adjoint of alpha*I is conj(alpha)*I
        let z = s.apply_adjoint_vec(&x);
        assert_eq!(z[0], c64(2.0, -2.0));
    }

    #[test]
    fn dense_op_matches_matrix() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(61);
        let m = CMatrix::random(5, 7, &mut rng);
        let op = DenseOp::new(m.clone());
        let x = CVector::random(7, &mut rng);
        assert!((&op.apply_vec(&x) - &m.matvec(&x)).norm() < 1e-13);
        let y = CVector::random(5, &mut rng);
        assert!((&op.apply_adjoint_vec(&y) - &m.adjoint().matvec(&y)).norm() < 1e-13);
    }

    #[test]
    fn sum_and_shift_compose() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(62);
        let a = CMatrix::random(6, 6, &mut rng);
        let b = CMatrix::random(6, 6, &mut rng);
        let sum = SumOp::new(
            c64(2.0, 0.0),
            DenseOp::new(a.clone()),
            c64(0.0, 1.0),
            DenseOp::new(b.clone()),
        );
        let x = CVector::random(6, &mut rng);
        let expected = &(&a.matvec(&x) * c64(2.0, 0.0)) + &(&b.matvec(&x) * c64(0.0, 1.0));
        assert!((&sum.apply_vec(&x) - &expected).norm() < 1e-12);

        let shifted = ShiftedOp::new(DenseOp::new(a.clone()), c64(1.5, -0.5));
        let got = shifted.apply_vec(&x);
        let want = &a.matvec(&x) - &(&x * c64(1.5, -0.5));
        assert!((&got - &want).norm() < 1e-12);
    }

    #[test]
    fn combinator_block_apply_is_bitwise_column_equivalent() {
        // A composed operator exercising SumOp + ScaledOp + ShiftedOp fused
        // block kernels: the slab result must equal column-by-column apply
        // down to the last bit.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(64);
        let a = CMatrix::random(7, 7, &mut rng);
        let b = CMatrix::random(7, 7, &mut rng);
        let sum = SumOp::new(c64(1.2, -0.3), DenseOp::new(a), c64(0.0, 0.7), DenseOp::new(b));
        let op = ShiftedOp::new(ScaledOp::new(c64(0.5, 0.5), sum), c64(0.9, -0.1));
        let nvecs = 3;
        let x: Vec<Complex64> = (0..7 * nvecs).map(|_| CVector::random(1, &mut rng)[0]).collect();
        let mut y_block = vec![Complex64::ZERO; 7 * nvecs];
        op.apply_block(&x, &mut y_block, nvecs);
        let mut y_adj = vec![Complex64::ZERO; 7 * nvecs];
        op.apply_adjoint_block(&x, &mut y_adj, nvecs);
        for c in 0..nvecs {
            let mut col = vec![Complex64::ZERO; 7];
            op.apply(&x[c * 7..(c + 1) * 7], &mut col);
            assert_eq!(&y_block[c * 7..(c + 1) * 7], &col[..]);
            op.apply_adjoint(&x[c * 7..(c + 1) * 7], &mut col);
            assert_eq!(&y_adj[c * 7..(c + 1) * 7], &col[..]);
        }
    }

    #[test]
    fn adjoint_defect_is_small_for_consistent_ops() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(63);
        let a = CMatrix::random(8, 8, &mut rng);
        let op = ShiftedOp::new(DenseOp::new(a), c64(0.3, 0.7));
        assert!(adjoint_defect(&op, 10, &mut rng) < 1e-12);
    }
}
