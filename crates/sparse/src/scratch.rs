//! A per-thread pool of reusable `Complex64` scratch buffers.
//!
//! Operator compositions (`SumOp`, the QEP operator `P(z)`, the Hamiltonian
//! block views) need temporary vectors inside every application.  Allocating
//! them per matvec puts an allocator round-trip on the hottest path of the
//! whole method; this pool hands out zeroed buffers that are returned and
//! reused, so steady-state operator application performs no allocation.
//!
//! The pool is a thread-local stack, which makes nested borrows (an operator
//! whose scratch-using `apply` calls another scratch-using operator) safe:
//! each nesting level pops its own buffer and pushes it back on exit.

use std::cell::RefCell;

use cbs_linalg::Complex64;

thread_local! {
    static POOL: RefCell<Vec<Vec<Complex64>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a zeroed scratch slice of length `len` drawn from the
/// thread-local pool (allocating only if the pool is empty), returning the
/// buffer to the pool afterwards.
///
/// The slice is guaranteed to be all-zero on entry, so callers may rely on
/// the same initial state as a freshly allocated `vec![Complex64::ZERO; len]`.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Complex64]) -> R) -> R {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, Complex64::ZERO);
    let out = f(&mut buf);
    POOL.with(|p| p.borrow_mut().push(buf));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_linalg::c64;

    #[test]
    fn scratch_is_zeroed_and_reused() {
        with_scratch(4, |s| {
            assert_eq!(s.len(), 4);
            assert!(s.iter().all(|&z| z == Complex64::ZERO));
            s[0] = c64(1.0, 2.0);
        });
        // The dirtied buffer comes back zeroed, at any size.
        with_scratch(6, |s| {
            assert_eq!(s.len(), 6);
            assert!(s.iter().all(|&z| z == Complex64::ZERO));
        });
        with_scratch(2, |s| {
            assert!(s.iter().all(|&z| z == Complex64::ZERO));
        });
    }

    #[test]
    fn nested_borrows_get_distinct_buffers() {
        with_scratch(3, |outer| {
            outer[0] = c64(5.0, 0.0);
            with_scratch(3, |inner| {
                assert!(inner.iter().all(|&z| z == Complex64::ZERO));
                inner[1] = c64(7.0, 0.0);
            });
            // The outer buffer is untouched by the nested use.
            assert_eq!(outer[0], c64(5.0, 0.0));
        });
    }
}
