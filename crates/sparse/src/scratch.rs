//! A per-thread pool of reusable `Complex64` scratch buffers.
//!
//! Operator compositions (`SumOp`, the QEP operator `P(z)`, the Hamiltonian
//! block views) need temporary vectors inside every application.  Allocating
//! them per matvec puts an allocator round-trip on the hottest path of the
//! whole method; this pool hands out zeroed buffers that are returned and
//! reused, so steady-state operator application performs no allocation.
//!
//! The pool is a thread-local stack, which makes nested borrows (an operator
//! whose scratch-using `apply` calls another scratch-using operator) safe:
//! each nesting level pops its own buffer and pushes it back on exit.

use std::cell::RefCell;

use cbs_linalg::Complex64;

thread_local! {
    static POOL: RefCell<Vec<Vec<Complex64>>> = const { RefCell::new(Vec::new()) };
    static POOL_USIZE: RefCell<Vec<Vec<usize>>> = const { RefCell::new(Vec::new()) };
    static POOL_F64: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with a zeroed scratch slice of length `len` drawn from the
/// thread-local pool (allocating only if the pool is empty), returning the
/// buffer to the pool afterwards.
///
/// The slice is guaranteed to be all-zero on entry, so callers may rely on
/// the same initial state as a freshly allocated `vec![Complex64::ZERO; len]`.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Complex64]) -> R) -> R {
    let mut buf = take_scratch(len);
    let out = f(&mut buf);
    recycle_scratch(buf);
    out
}

/// Take an owned, zeroed scratch buffer of length `len` from the
/// thread-local pool — the owned twin of [`with_scratch`] for buffers whose
/// lifetime is tied to a value rather than a call scope (the assembled
/// operator's per-node value array, an ILU factor's `lu` array).  Return it
/// with [`recycle_scratch`]; dropping it instead merely forfeits the reuse.
pub fn take_scratch(len: usize) -> Vec<Complex64> {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, Complex64::ZERO);
    buf
}

/// Return a buffer obtained from [`take_scratch`] (or any `Vec<Complex64>`
/// whose allocation is worth keeping) to the current thread's pool.
pub fn recycle_scratch(buf: Vec<Complex64>) {
    POOL.with(|p| p.borrow_mut().push(buf));
}

/// Owned `usize` scratch of length `len`, every element set to `fill`
/// (crate-internal: the ILU factorization's column-position map).
pub(crate) fn take_usize_scratch(len: usize, fill: usize) -> Vec<usize> {
    let mut buf = POOL_USIZE.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, fill);
    buf
}

/// Return a `usize` scratch buffer to the current thread's pool.
pub(crate) fn recycle_usize_scratch(buf: Vec<usize>) {
    POOL_USIZE.with(|p| p.borrow_mut().push(buf));
}

/// Owned, emptied `f64` scratch (crate-internal: the planar value planes of
/// the split kernel layout; callers `extend` it to the length they need).
pub(crate) fn take_f64_scratch() -> Vec<f64> {
    let mut buf = POOL_F64.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf
}

/// Return an `f64` scratch buffer to the current thread's pool.
pub(crate) fn recycle_f64_scratch(buf: Vec<f64>) {
    POOL_F64.with(|p| p.borrow_mut().push(buf));
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_linalg::c64;

    #[test]
    fn scratch_is_zeroed_and_reused() {
        with_scratch(4, |s| {
            assert_eq!(s.len(), 4);
            assert!(s.iter().all(|&z| z == Complex64::ZERO));
            s[0] = c64(1.0, 2.0);
        });
        // The dirtied buffer comes back zeroed, at any size.
        with_scratch(6, |s| {
            assert_eq!(s.len(), 6);
            assert!(s.iter().all(|&z| z == Complex64::ZERO));
        });
        with_scratch(2, |s| {
            assert!(s.iter().all(|&z| z == Complex64::ZERO));
        });
    }

    #[test]
    fn owned_take_recycle_roundtrip() {
        let mut b = take_scratch(5);
        assert!(b.iter().all(|&z| z == Complex64::ZERO));
        b[2] = c64(3.0, 4.0);
        recycle_scratch(b);
        // A recycled (dirtied, longer) buffer comes back zeroed at any size.
        let b2 = take_scratch(3);
        assert_eq!(b2.len(), 3);
        assert!(b2.iter().all(|&z| z == Complex64::ZERO));
        recycle_scratch(b2);
        let mut u = take_usize_scratch(4, usize::MAX);
        assert!(u.iter().all(|&v| v == usize::MAX));
        u[0] = 7;
        recycle_usize_scratch(u);
        let u2 = take_usize_scratch(6, usize::MAX);
        assert!(u2.iter().all(|&v| v == usize::MAX));
        recycle_usize_scratch(u2);
    }

    #[test]
    fn nested_borrows_get_distinct_buffers() {
        with_scratch(3, |outer| {
            outer[0] = c64(5.0, 0.0);
            with_scratch(3, |inner| {
                assert!(inner.iter().all(|&z| z == Complex64::ZERO));
                inner[1] = c64(7.0, 0.0);
            });
            // The outer buffer is untouched by the nested use.
            assert_eq!(outer[0], c64(5.0, 0.0));
        });
    }
}
