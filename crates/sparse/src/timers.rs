//! Stage timing for the kernel tier, backed by the `cbs-trace` recorder.
//!
//! The sweep-level statistics want the cost of one solve *attributed* to
//! the stages that actually burn it: CSR/low-rank kernel application
//! (`kernel_ns`) and preconditioner work — ILU(0) factorization plus
//! triangular solves (`precond_ns`).  Threading per-call timing results
//! through the `LinearOperator` trait would contaminate every signature on
//! the hot path, so the kernels instead record into `cbs-trace`'s
//! thread-local recorder; callers take a [`stage_snapshot`] before a solve
//! and fold the delta into their statistics afterwards.
//!
//! **Semantics:** the counters are monotone **CPU-nanosecond** totals over
//! the whole process — a rayon-parallel kernel adds each worker's time, so
//! the numbers are CPU seconds, not wall seconds, under the parallel
//! executor (the workers of the vendored rayon shim are joined before any
//! dispatch returns, so post-dispatch reads are complete).  Wall-clock
//! per-stage attribution (span-merged across threads) is available from
//! `cbs_trace::aggregate_window` while a `cbs_trace::TraceSession` is
//! active.  The counters are diagnostics only: nothing in the numerical
//! pipeline reads them, so the bitwise determinism contracts are
//! unaffected.

use cbs_trace::Stage;

/// A point-in-time reading of the per-stage CPU counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// CPU nanoseconds spent inside sparse/low-rank operator application
    /// kernels (CSR gather/scatter, block SpMM tiles, projector terms).
    pub kernel_ns: u64,
    /// CPU nanoseconds spent inside ILU(0) factorization and triangular
    /// solves.
    pub precond_ns: u64,
}

/// Read the current totals of the stage counters.
pub fn stage_snapshot() -> StageTimes {
    let t = cbs_trace::cpu_totals();
    StageTimes {
        kernel_ns: t[Stage::Kernel as usize],
        precond_ns: t[Stage::IluFactor as usize] + t[Stage::TriSweep as usize],
    }
}

/// The counter increments since `since` (a previous [`stage_snapshot`]).
pub fn stage_delta(since: StageTimes) -> StageTimes {
    let now = stage_snapshot();
    StageTimes {
        kernel_ns: now.kernel_ns.wrapping_sub(since.kernel_ns),
        precond_ns: now.precond_ns.wrapping_sub(since.precond_ns),
    }
}

/// Run `f` as one [`Stage::Kernel`] span (operator application).
#[inline]
pub(crate) fn time_kernel<R>(f: impl FnOnce() -> R) -> R {
    cbs_trace::timed(Stage::Kernel, f)
}

/// Run `f` as one [`Stage::IluFactor`] span (ILU(0) factorization).
#[inline]
pub(crate) fn time_ilu_factor<R>(f: impl FnOnce() -> R) -> R {
    cbs_trace::timed(Stage::IluFactor, f)
}

/// Run `f` as one [`Stage::TriSweep`] span (triangular solves).
#[inline]
pub(crate) fn time_tri_sweep<R>(f: impl FnOnce() -> R) -> R {
    cbs_trace::timed(Stage::TriSweep, f)
}

/// Run `f` as one [`Stage::Assemble`] span (numeric pattern refill).
#[inline]
pub(crate) fn time_assemble<R>(f: impl FnOnce() -> R) -> R {
    cbs_trace::timed(Stage::Assemble, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_monotone_and_attributed() {
        let before = stage_snapshot();
        time_kernel(|| std::hint::black_box((0..512).sum::<u64>()));
        let mid = stage_delta(before);
        assert!(mid.kernel_ns > 0);
        time_tri_sweep(|| std::hint::black_box((0..512).product::<u64>()));
        let after = stage_delta(before);
        assert!(after.precond_ns > 0);
        assert!(after.kernel_ns >= mid.kernel_ns);
    }

    #[test]
    fn factor_and_sweep_both_charge_precond() {
        let before = stage_snapshot();
        time_ilu_factor(|| std::hint::black_box((0..256).sum::<u64>()));
        let factored = stage_delta(before).precond_ns;
        assert!(factored > 0);
        time_tri_sweep(|| std::hint::black_box((0..256).sum::<u64>()));
        assert!(stage_delta(before).precond_ns > factored);
        // Assembly is its own stage: it must not leak into kernel/precond.
        let pre = stage_delta(before);
        time_assemble(|| std::hint::black_box((0..256).sum::<u64>()));
        let post = stage_delta(before);
        assert_eq!(pre, post);
    }
}
