//! Lightweight global stage timers for the kernel tier.
//!
//! The sweep-level statistics want the wall-clock of one solve *attributed*
//! to the stages that actually burn it: CSR/low-rank kernel application
//! (`kernel_ns`) and preconditioner work — ILU(0) factorization plus
//! triangular solves (`precond_ns`).  Threading per-call timing results
//! through the `LinearOperator` trait would contaminate every signature on
//! the hot path, so the kernels instead accumulate into process-global
//! relaxed atomics; callers take a [`stage_snapshot`] before a solve and
//! fold the delta into their statistics afterwards.
//!
//! The counters are monotone totals over the whole process (all threads —
//! a rayon-parallel kernel adds each worker's time, so the numbers are CPU
//! seconds, not wall seconds, under the parallel executor).  They are
//! diagnostics only: nothing in the numerical pipeline reads them, so the
//! bitwise determinism contracts are unaffected.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static KERNEL_NS: AtomicU64 = AtomicU64::new(0);
static PRECOND_NS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the global stage counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Nanoseconds spent inside sparse/low-rank operator application
    /// kernels (CSR gather/scatter, block SpMM tiles, projector terms).
    pub kernel_ns: u64,
    /// Nanoseconds spent inside ILU(0) factorization and triangular solves.
    pub precond_ns: u64,
}

/// Read the current totals of the global stage counters.
pub fn stage_snapshot() -> StageTimes {
    StageTimes {
        kernel_ns: KERNEL_NS.load(Ordering::Relaxed),
        precond_ns: PRECOND_NS.load(Ordering::Relaxed),
    }
}

/// The counter increments since `since` (a previous [`stage_snapshot`]).
pub fn stage_delta(since: StageTimes) -> StageTimes {
    let now = stage_snapshot();
    StageTimes {
        kernel_ns: now.kernel_ns.wrapping_sub(since.kernel_ns),
        precond_ns: now.precond_ns.wrapping_sub(since.precond_ns),
    }
}

/// Run `f`, charging its wall time to the kernel-stage counter.
#[inline]
pub(crate) fn time_kernel<R>(f: impl FnOnce() -> R) -> R {
    let t = Instant::now();
    let out = f();
    KERNEL_NS.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

/// Run `f`, charging its wall time to the preconditioner-stage counter.
#[inline]
pub(crate) fn time_precond<R>(f: impl FnOnce() -> R) -> R {
    let t = Instant::now();
    let out = f();
    PRECOND_NS.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_monotone_and_attributed() {
        let before = stage_snapshot();
        time_kernel(|| std::hint::black_box((0..512).sum::<u64>()));
        let mid = stage_delta(before);
        assert!(mid.kernel_ns > 0);
        time_precond(|| std::hint::black_box((0..512).product::<u64>()));
        let after = stage_delta(before);
        assert!(after.precond_ns > 0);
        assert!(after.kernel_ns >= mid.kernel_ns);
    }
}
