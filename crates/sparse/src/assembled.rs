//! The assembled shifted operator: `P(z) = -z⁻¹H₀₁† + (E−H₀₀) − zH₀₁` as a
//! single CSR matrix with a shared symbolic pattern.
//!
//! The matrix-free QEP operator walks three sparse stores per application
//! (`H₀₀`, `H₀₁`, `H₀₁†`).  Since the contour solves apply `P(z)` thousands
//! of times per quadrature node, those traversals dominate the whole
//! Sakurai-Sugiura run.  This module trades one symbolic analysis per
//! Hamiltonian for a 3×-cheaper matvec:
//!
//! * [`AssembledPattern::build`] computes the **union pattern** of
//!   `H₀₀ ∪ H₀₁ ∪ H₀₁† ∪ diag` once and stores the three source value
//!   streams aligned to it.  The pattern depends only on the Hamiltonian —
//!   it is shared across *all* quadrature nodes and *all* scan energies of a
//!   sweep.
//! * [`AssembledPattern::assemble`] materializes `P(z)` for one `(E, z)` by
//!   a **numeric refill only**: one fused O(nnz) pass over the three
//!   streams (into a scratch-pooled value buffer — steady state performs no
//!   allocation), no symbolic work, no index duplication.  The resulting
//!   [`AssembledOp`] applies `P(z)` (and its exact adjoint) in a single CSR
//!   traversal via the same fused kernels `CsrMatrix` uses — or via the
//!   planar FMA kernels when the pattern's
//!   [`KernelLayout`] is `Split`.
//! * [`Ilu0`] factors the assembled CSR in place (no fill-in) and exposes
//!   forward/backward triangular solves *and their adjoints*, so one
//!   factorization `M ≈ P(z)` also preconditions the dual system through
//!   `M† ≈ P(z)† = P(1/z̄)` — the paper's dual-circle trick survives
//!   preconditioning.  Through the assembled path the solves run as
//!   **level-scheduled sweeps** over a [`TriSchedule`] computed once per
//!   pattern (the levels are symbolic, shared by every quadrature node and
//!   sweep energy), with the adjoint sweeps converted from column scatters
//!   to transposed-index gathers — bit-identical to the sequential loops.

use std::borrow::Cow;
use std::sync::OnceLock;

use cbs_linalg::{CVector, Complex64};

use crate::csr::{
    spmv_adjoint_block_into, spmv_adjoint_into, spmv_block_into, spmv_into, CsrMatrix,
};
use crate::kernels::{
    spmv_split_adjoint_block_into, spmv_split_adjoint_into, spmv_split_block_into, spmv_split_into,
    KernelLayout, SplitValues,
};
use crate::ops::{LinearOperator, Preconditioner};
use crate::projector::FactoredProjector;
use crate::timers::{time_assemble, time_ilu_factor, time_kernel, time_tri_sweep};

/// The shared symbolic structure of `P(z)`: the union sparsity pattern of
/// `H₀₀`, `H₀₁`, `H₀₁†` (plus an explicit diagonal for the `E` shift), with
/// the three source value streams stored aligned to it so a refill is one
/// fused pass.
#[derive(Clone, Debug)]
pub struct AssembledPattern {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    /// `H₀₀` values scattered onto the union pattern (zero where absent).
    h00_vals: Vec<Complex64>,
    /// `H₀₁` values scattered onto the union pattern.
    h01_vals: Vec<Complex64>,
    /// `H₁₀ = H₀₁†` values scattered onto the union pattern.
    h10_vals: Vec<Complex64>,
    /// Position of the diagonal entry of each row in `col_idx`/values.
    diag_idx: Vec<usize>,
    /// Value layout the assembled operators of this pattern run their
    /// kernels in (captured from `CBS_KERNEL_LAYOUT` at build time).
    layout: KernelLayout,
    /// Triangular-solve schedule, computed lazily on first ILU(0) use and
    /// shared by every node/energy factored on this pattern.
    schedule: OnceLock<TriSchedule>,
}

impl AssembledPattern {
    /// Compute the union pattern of the two Hamiltonian blocks (both square,
    /// same size).  The diagonal is always part of the pattern, so the
    /// energy shift `E` and the ILU(0) pivots have a home even where the
    /// blocks store no diagonal entry.
    ///
    /// The kernel layout of the pattern's assembled operators is read from
    /// the `CBS_KERNEL_LAYOUT` environment variable here (override with
    /// [`with_layout`](Self::with_layout)).
    pub fn build(h00: &CsrMatrix, h01: &CsrMatrix) -> Self {
        assert_eq!(h00.nrows(), h00.ncols(), "H00 must be square");
        assert_eq!(h01.nrows(), h01.ncols(), "H01 must be square");
        assert_eq!(h00.nrows(), h01.nrows(), "H00 and H01 must have the same size");
        let n = h00.nrows();
        let h10 = h01.adjoint();

        let mut row_ptr = Vec::with_capacity(n + 1); // cbs-audit: allow(A001) reason="pattern assembly, once per operator -- not on the per-apply path"
        row_ptr.push(0usize);
        let mut col_idx: Vec<usize> = Vec::new();
        let mut h00_vals: Vec<Complex64> = Vec::new();
        let mut h01_vals: Vec<Complex64> = Vec::new();
        let mut h10_vals: Vec<Complex64> = Vec::new();
        let mut diag_idx = Vec::with_capacity(n); // cbs-audit: allow(A001) reason="pattern assembly, once per operator -- not on the per-apply path"

        let mut cols: Vec<usize> = Vec::new();
        for i in 0..n {
            cols.clear();
            cols.extend(h00.row_entries(i).map(|(j, _)| j));
            cols.extend(h01.row_entries(i).map(|(j, _)| j));
            cols.extend(h10.row_entries(i).map(|(j, _)| j));
            cols.push(i);
            cols.sort_unstable();
            cols.dedup();

            let base = col_idx.len();
            col_idx.extend_from_slice(&cols);
            h00_vals.resize(col_idx.len(), Complex64::ZERO);
            h01_vals.resize(col_idx.len(), Complex64::ZERO);
            h10_vals.resize(col_idx.len(), Complex64::ZERO);
            for (j, v) in h00.row_entries(i) {
                h00_vals[base + cols.binary_search(&j).expect("union pattern covers H00")] = v;
            }
            for (j, v) in h01.row_entries(i) {
                h01_vals[base + cols.binary_search(&j).expect("union pattern covers H01")] = v;
            }
            for (j, v) in h10.row_entries(i) {
                h10_vals[base + cols.binary_search(&j).expect("union pattern covers H10")] = v;
            }
            diag_idx.push(base + cols.binary_search(&i).expect("diagonal is in the pattern"));
            row_ptr.push(col_idx.len());
        }

        Self {
            n,
            row_ptr,
            col_idx,
            h00_vals,
            h01_vals,
            h10_vals,
            diag_idx,
            layout: KernelLayout::from_env(),
            schedule: OnceLock::new(),
        }
    }

    /// Override the kernel layout captured at build time (tests / explicit
    /// configuration; resets nothing else — the symbolic structure and any
    /// computed [`TriSchedule`] are layout-independent).
    pub fn with_layout(mut self, layout: KernelLayout) -> Self {
        self.layout = layout;
        self
    }

    /// The kernel layout the pattern's assembled operators run.
    pub fn layout(&self) -> KernelLayout {
        self.layout
    }

    /// Dimension of the (square) operator.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries of the union pattern.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Storage footprint of the pattern (indices + the three value streams).
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<usize>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.diag_idx.len() * std::mem::size_of::<usize>()
            + 3 * self.h00_vals.len() * std::mem::size_of::<Complex64>()
    }

    /// The level-scheduled triangular-solve structure of this pattern,
    /// computed on first use and shared by every ILU(0) factorization on
    /// the pattern (all quadrature nodes, all sweep energies).
    pub fn tri_schedule(&self) -> &TriSchedule {
        self.schedule
            .get_or_init(|| TriSchedule::build(&self.row_ptr, &self.col_idx, &self.diag_idx))
    }

    /// Materialize `P(z) = -z⁻¹H₀₁† + (E−H₀₀) − zH₀₁` at one `(E, z)` pair
    /// by numeric refill: a single fused pass over the three value streams
    /// plus the diagonal shift.  The symbolic structure is borrowed, not
    /// copied — every node of every sweep energy shares it — and the value
    /// buffer is drawn from (and on drop returned to) the thread-local
    /// scratch pool, so per-node assembly performs no steady-state
    /// allocation.
    pub fn assemble(&self, energy: f64, z: Complex64) -> AssembledOp<'_> {
        time_assemble(|| {
            let zinv = z.inv();
            let mut values = crate::scratch::take_scratch(0);
            values.reserve(self.nnz());
            values.extend(
                self.h00_vals
                    .iter()
                    .zip(&self.h01_vals)
                    .zip(&self.h10_vals)
                    .map(|((&v00, &v01), &v10)| -v00 - z * v01 - zinv * v10),
            );
            let e = Complex64::real(energy);
            for &d in &self.diag_idx {
                values[d] += e;
            }
            let split = match self.layout {
                KernelLayout::Interleaved => None,
                KernelLayout::Split => {
                    let mut s = SplitValues::take();
                    s.refill(&values);
                    Some(s)
                }
            };
            AssembledOp { pattern: self, z, values, split }
        })
    }
}

/// One materialized `P(z)`: the pattern's indices plus a private value
/// array.  Applies in a single CSR traversal ([`traversal_weight`] 1, vs 3
/// for the matrix-free QEP operator) through the same fused kernels as
/// [`CsrMatrix`], adjoint included (exact conjugate-transpose scatter, no
/// Hermiticity assumption).  Under [`KernelLayout::Split`] the applies run
/// the planar FMA kernels instead (≤ 1e-14 columnwise agreement, not
/// bitwise — see [`crate::kernels`]).
///
/// [`traversal_weight`]: LinearOperator::traversal_weight
pub struct AssembledOp<'p> {
    pattern: &'p AssembledPattern,
    z: Complex64,
    values: Vec<Complex64>,
    /// Planar twin of `values`, present iff the pattern's layout is `Split`.
    split: Option<SplitValues>,
}

impl<'p> AssembledOp<'p> {
    /// The shift this operator was assembled at.
    pub fn shift(&self) -> Complex64 {
        self.z
    }

    /// The assembled entry values (aligned with the pattern's indices).
    pub fn values(&self) -> &[Complex64] {
        &self.values
    }

    /// The shared symbolic pattern.
    pub fn pattern(&self) -> &'p AssembledPattern {
        self.pattern
    }

    /// ILU(0)-factor this operator.  The factorization borrows the shared
    /// pattern (reusing its precomputed diagonal positions — no per-node
    /// rescan) and its once-per-pattern [`TriSchedule`], and owns only its
    /// `nnz` factor values (scratch-pooled across nodes).
    pub fn ilu0(&self) -> Ilu0<'p> {
        Ilu0::factor_inner(
            &self.pattern.row_ptr,
            &self.pattern.col_idx,
            Cow::Borrowed(&self.pattern.diag_idx[..]),
            &self.values,
            Some(self.pattern.tri_schedule()),
        )
    }

    /// [`ilu0`](Self::ilu0) plus the Sherman-Morrison-Woodbury completion:
    /// fold `projector`'s low-rank tail at this operator's shift into the
    /// apply, so the preconditioner approximates the *full* `P(z)` instead
    /// of its CSR part (see [`SmwPrecond`](crate::SmwPrecond)).  An empty
    /// projector degrades to the plain ILU(0) apply bitwise.
    pub fn ilu0_smw(&self, projector: &FactoredProjector) -> crate::smw::SmwPrecond<'p> {
        crate::smw::SmwPrecond::new(self.ilu0(), projector, self.z)
    }
}

impl Drop for AssembledOp<'_> {
    fn drop(&mut self) {
        crate::scratch::recycle_scratch(std::mem::take(&mut self.values));
        if let Some(s) = self.split.take() {
            s.recycle();
        }
    }
}

impl LinearOperator for AssembledOp<'_> {
    fn nrows(&self) -> usize {
        self.pattern.n
    }
    fn ncols(&self) -> usize {
        self.pattern.n
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.pattern.n, "assembled apply: x length mismatch");
        assert_eq!(y.len(), self.pattern.n, "assembled apply: y length mismatch");
        time_kernel(|| match &self.split {
            Some(s) => spmv_split_into(&self.pattern.row_ptr, &self.pattern.col_idx, s, x, y),
            None => spmv_into(&self.pattern.row_ptr, &self.pattern.col_idx, &self.values, x, y),
        });
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.pattern.n, "assembled adjoint: x length mismatch");
        assert_eq!(y.len(), self.pattern.n, "assembled adjoint: y length mismatch");
        time_kernel(|| match &self.split {
            Some(s) => {
                spmv_split_adjoint_into(&self.pattern.row_ptr, &self.pattern.col_idx, s, x, y);
            }
            None => {
                spmv_adjoint_into(&self.pattern.row_ptr, &self.pattern.col_idx, &self.values, x, y);
            }
        });
    }
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        let n = self.pattern.n;
        assert_eq!(x.len(), n * nvecs, "assembled block apply: x slab length mismatch");
        assert_eq!(y.len(), n * nvecs, "assembled block apply: y slab length mismatch");
        time_kernel(|| match &self.split {
            Some(s) => spmv_split_block_into(
                &self.pattern.row_ptr,
                &self.pattern.col_idx,
                s,
                n,
                n,
                x,
                y,
                nvecs,
            ),
            None => spmv_block_into(
                &self.pattern.row_ptr,
                &self.pattern.col_idx,
                &self.values,
                n,
                n,
                x,
                y,
                nvecs,
            ),
        });
    }
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        let n = self.pattern.n;
        assert_eq!(x.len(), n * nvecs, "assembled block adjoint: x slab length mismatch");
        assert_eq!(y.len(), n * nvecs, "assembled block adjoint: y slab length mismatch");
        time_kernel(|| match &self.split {
            Some(s) => spmv_split_adjoint_block_into(
                &self.pattern.row_ptr,
                &self.pattern.col_idx,
                s,
                n,
                n,
                x,
                y,
                nvecs,
            ),
            None => spmv_adjoint_block_into(
                &self.pattern.row_ptr,
                &self.pattern.col_idx,
                &self.values,
                n,
                n,
                x,
                y,
                nvecs,
            ),
        });
    }
    fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Complex64>() + self.pattern.memory_bytes()
    }
    fn traversal_weight(&self) -> usize {
        1
    }
}

/// The symbolic triangular-solve structure of one assembled pattern,
/// computed once ([`AssembledPattern::tri_schedule`]) and shared by every
/// ILU(0) factorization on the pattern.
///
/// Two ingredients, both pattern-only (no values):
///
/// * **Level schedules** — for each of the four sweeps (forward `L`,
///   backward `U`, adjoint-forward `U†`, adjoint-backward `L†`) the rows
///   (resp. columns) grouped into dependency levels: every row of level
///   `ℓ` depends only on rows of levels `< ℓ`.  Executing level by level,
///   ascending rows within a level, performs each row's own gather in the
///   exact order of the sequential loop, so the sweeps are **bit-identical**
///   to the unscheduled substitutions.
/// * **Transposed triangle indices** — the adjoint solves are column
///   scatters in row-major storage; the strict-upper and strict-lower
///   transpose lists (`(row, position-in-lu)` pairs per column) convert
///   them into gathers with unit-stride accumulator writes.  Iterating the
///   `U†` lists in ascending row order and the `L†` lists in descending row
///   order replays the scatter update order of each output element exactly,
///   zero-skip guards included.
#[derive(Clone, Debug)]
pub struct TriSchedule {
    /// Forward (`L y = r`) levels: `fwd_rows[fwd_level_ptr[l]..fwd_level_ptr[l+1]]`.
    fwd_level_ptr: Vec<usize>,
    fwd_rows: Vec<usize>,
    /// Backward (`U x = y`) levels.
    bwd_level_ptr: Vec<usize>,
    bwd_rows: Vec<usize>,
    /// Adjoint-forward (`U† w = r`) levels over columns.
    utf_level_ptr: Vec<usize>,
    utf_cols: Vec<usize>,
    /// Adjoint-backward (`L† x = w`) levels over columns.
    ltb_level_ptr: Vec<usize>,
    ltb_cols: Vec<usize>,
    /// Strict-upper transpose: for column `j`, the rows `i < j` with
    /// `(i, j) ∈ U` (ascending `i`) and the position of `U[i,j]` in `lu`.
    ut_ptr: Vec<usize>,
    ut_row: Vec<usize>,
    ut_pos: Vec<usize>,
    /// Strict-lower transpose: for column `j`, the rows `i > j` with
    /// `(i, j) ∈ L` (ascending `i`) and the position of `L[i,j]` in `lu`.
    lt_ptr: Vec<usize>,
    lt_row: Vec<usize>,
    lt_pos: Vec<usize>,
}

/// Group `0..n` into levels by `lvl` (counting sort; ascending within level).
fn bucket_levels(lvl: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n = lvl.len();
    let n_levels = lvl.iter().copied().max().map_or(0, |m| m + 1);
    let mut ptr = vec![0usize; n_levels + 1]; // cbs-audit: allow(A001) reason="level-schedule counting sort, once per pattern"
    for &l in lvl {
        ptr[l + 1] += 1;
    }
    for l in 0..n_levels {
        ptr[l + 1] += ptr[l];
    }
    let mut rows = vec![0usize; n]; // cbs-audit: allow(A001) reason="level-schedule counting sort, once per pattern"
    let mut next = ptr.clone();
    for (i, &l) in lvl.iter().enumerate() {
        rows[next[l]] = i;
        next[l] += 1;
    }
    (ptr, rows)
}

impl TriSchedule {
    /// Analyze a CSR triangle pattern (columns sorted within each row,
    /// every diagonal stored at `diag_idx`).
    pub fn build(row_ptr: &[usize], col_idx: &[usize], diag_idx: &[usize]) -> Self {
        let n = row_ptr.len() - 1;

        // Forward (L): row i depends on its sub-diagonal columns.
        let mut lvl = vec![0usize; n]; // cbs-audit: allow(A001) reason="schedule analysis scratch, once per pattern"
        for i in 0..n {
            let mut m = 0usize;
            for k in row_ptr[i]..diag_idx[i] {
                m = m.max(lvl[col_idx[k]] + 1);
            }
            lvl[i] = m;
        }
        let (fwd_level_ptr, fwd_rows) = bucket_levels(&lvl);

        // Backward (U): row i depends on its super-diagonal columns.
        for i in (0..n).rev() {
            let mut m = 0usize;
            for k in (diag_idx[i] + 1)..row_ptr[i + 1] {
                m = m.max(lvl[col_idx[k]] + 1);
            }
            lvl[i] = m;
        }
        let (bwd_level_ptr, bwd_rows) = bucket_levels(&lvl);

        // Strict-triangle transposes (counting sort; pushing rows in
        // ascending i keeps each column's list sorted by row).
        let mut ut_ptr = vec![0usize; n + 1]; // cbs-audit: allow(A001) reason="strict-triangle transpose build, once per pattern"
        let mut lt_ptr = vec![0usize; n + 1]; // cbs-audit: allow(A001) reason="strict-triangle transpose build, once per pattern"
        for i in 0..n {
            for k in row_ptr[i]..diag_idx[i] {
                lt_ptr[col_idx[k] + 1] += 1;
            }
            for k in (diag_idx[i] + 1)..row_ptr[i + 1] {
                ut_ptr[col_idx[k] + 1] += 1;
            }
        }
        for j in 0..n {
            ut_ptr[j + 1] += ut_ptr[j];
            lt_ptr[j + 1] += lt_ptr[j];
        }
        let mut ut_row = vec![0usize; ut_ptr[n]]; // cbs-audit: allow(A001) reason="strict-triangle transpose build, once per pattern"
        let mut ut_pos = vec![0usize; ut_ptr[n]]; // cbs-audit: allow(A001) reason="strict-triangle transpose build, once per pattern"
        let mut lt_row = vec![0usize; lt_ptr[n]]; // cbs-audit: allow(A001) reason="strict-triangle transpose build, once per pattern"
        let mut lt_pos = vec![0usize; lt_ptr[n]]; // cbs-audit: allow(A001) reason="strict-triangle transpose build, once per pattern"
        let mut ut_next = ut_ptr.clone();
        let mut lt_next = lt_ptr.clone();
        for i in 0..n {
            for (k, &j) in col_idx.iter().enumerate().take(diag_idx[i]).skip(row_ptr[i]) {
                lt_row[lt_next[j]] = i;
                lt_pos[lt_next[j]] = k;
                lt_next[j] += 1;
            }
            for (k, &j) in col_idx.iter().enumerate().take(row_ptr[i + 1]).skip(diag_idx[i] + 1) {
                ut_row[ut_next[j]] = i;
                ut_pos[ut_next[j]] = k;
                ut_next[j] += 1;
            }
        }

        // Adjoint-forward (U† w = r): column j depends on rows i < j with
        // (i, j) ∈ U — exactly its strict-upper transpose list.
        for j in 0..n {
            let mut m = 0usize;
            for t in ut_ptr[j]..ut_ptr[j + 1] {
                m = m.max(lvl[ut_row[t]] + 1);
            }
            lvl[j] = m;
        }
        let (utf_level_ptr, utf_cols) = bucket_levels(&lvl);

        // Adjoint-backward (L† x = w): column j depends on rows i > j with
        // (i, j) ∈ L — its strict-lower transpose list.
        for j in (0..n).rev() {
            let mut m = 0usize;
            for t in lt_ptr[j]..lt_ptr[j + 1] {
                m = m.max(lvl[lt_row[t]] + 1);
            }
            lvl[j] = m;
        }
        let (ltb_level_ptr, ltb_cols) = bucket_levels(&lvl);

        Self {
            fwd_level_ptr,
            fwd_rows,
            bwd_level_ptr,
            bwd_rows,
            utf_level_ptr,
            utf_cols,
            ltb_level_ptr,
            ltb_cols,
            ut_ptr,
            ut_row,
            ut_pos,
            lt_ptr,
            lt_row,
            lt_pos,
        }
    }

    /// Number of dependency levels of the forward (`L`) sweep.
    pub fn forward_levels(&self) -> usize {
        self.fwd_level_ptr.len().saturating_sub(1)
    }

    /// Number of dependency levels of the backward (`U`) sweep.
    pub fn backward_levels(&self) -> usize {
        self.bwd_level_ptr.len().saturating_sub(1)
    }

    /// Storage footprint of the schedule in bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<usize>()
            * (self.fwd_level_ptr.len()
                + self.fwd_rows.len()
                + self.bwd_level_ptr.len()
                + self.bwd_rows.len()
                + self.utf_level_ptr.len()
                + self.utf_cols.len()
                + self.ltb_level_ptr.len()
                + self.ltb_cols.len()
                + self.ut_ptr.len()
                + self.ut_row.len()
                + self.ut_pos.len()
                + self.lt_ptr.len()
                + self.lt_row.len()
                + self.lt_pos.len())
    }

    fn levels<'a>(ptr: &'a [usize], items: &'a [usize]) -> impl Iterator<Item = &'a [usize]> {
        ptr.windows(2).map(move |w| &items[w[0]..w[1]])
    }
}

/// Floor applied to vanishing ILU(0) pivots, *relative to the matrix
/// scale*, so a (near-)singular pivot row degrades the preconditioner
/// gracefully instead of poisoning it: an absolute floor like 1e-300 would
/// produce ~1e300-scale factors that overflow to Inf in the update sweep
/// and turn into NaN downstream.  With `floor = 1e-14 · max|aᵢⱼ|` the
/// substituted pivot keeps every factor finite (≲ 1e14× the matrix scale),
/// and the preconditioned BiCG's non-finite breakdown checks catch any
/// remaining degeneracy as [`Breakdown`](../../cbs_solver) rather than
/// iterating on garbage.
fn pivot_floor(values: &[Complex64]) -> f64 {
    let scale = values.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
    (scale * 1e-14).max(1e-300)
}

fn guarded(pivot: Complex64, floor: f64) -> Complex64 {
    if pivot.abs() < floor {
        Complex64::real(floor)
    } else {
        pivot
    }
}

/// Parse the `CBS_TRI_PAR` level-width threshold once per process: levels
/// with at least this many rows run their independent gathers through the
/// rayon fork-join (the same order-preserving, join-before-return backend
/// the `RayonExecutor` dispatches node solves through), narrower levels
/// stay serial.  Unset, `0`, or unparsable keeps every level serial.
///
/// Parallel level execution is **bitwise identical** to serial (each row's
/// gather chain is unchanged; writes are scattered after the join), so the
/// knob is *not* part of the sweep-resume fingerprint.
fn tri_par_threshold() -> Option<usize> {
    static THRESHOLD: OnceLock<Option<usize>> = OnceLock::new();
    *THRESHOLD.get_or_init(|| cbs_trace::knob::<usize>("CBS_TRI_PAR").filter(|&t| t > 0))
}

/// A complex ILU(0) factorization `M = L U ≈ A` on the sparsity pattern of
/// `A` (no fill-in): `L` unit lower triangular, `U` upper triangular, both
/// stored in one value array over the borrowed pattern.
///
/// [`solve`](Preconditioner::solve) runs the forward/backward substitutions
/// `z = U⁻¹ L⁻¹ r`; [`solve_adjoint`](Preconditioner::solve_adjoint) runs
/// the exact adjoint `z = L⁻† U⁻† r` — which is what preconditions the dual
/// BiCG system `P(z)† x̃ = ṽ` with the *same* factorization.
///
/// Factorizations obtained through [`AssembledOp::ilu0`] carry the
/// pattern's [`TriSchedule`] and run all four substitutions as
/// level-scheduled sweeps (adjoints as transposed gathers) — bit-identical
/// to the sequential loops, which remain in place for factorizations built
/// without a schedule ([`factor`](Self::factor) / [`from_csr`](Self::from_csr)).
///
/// Two further execution modes stack on the schedule, both bit-identical:
///
/// * **Blocked multi-RHS sweeps** ([`solve_block`](Preconditioner::solve_block)
///   / [`solve_adjoint_block`](Preconditioner::solve_adjoint_block)) advance
///   all columns of a slab through each level together, so a row's `lu`
///   values and column indices stream once per level instead of once per
///   column — the block solver's per-iteration preconditioner path.
/// * **Parallel levels** (`CBS_TRI_PAR=<width>`): levels at least that wide
///   compute their independent row gathers through the rayon fork-join and
///   scatter the results after the join (`CBS_TRI_PAR`).
pub struct Ilu0<'p> {
    n: usize,
    row_ptr: &'p [usize],
    col_idx: &'p [usize],
    diag_idx: Cow<'p, [usize]>,
    lu: Vec<Complex64>,
    /// Scale-relative pivot floor fixed at factor time (see [`pivot_floor`]).
    floor: f64,
    /// Once-per-pattern level schedule; `None` runs the sequential sweeps.
    schedule: Option<&'p TriSchedule>,
    /// Minimum level width for parallel level execution (`CBS_TRI_PAR`);
    /// `None` keeps every level serial.
    par_threshold: Option<usize>,
}

impl<'p> Ilu0<'p> {
    /// Factor a CSR triple in place (columns sorted within each row, every
    /// diagonal entry stored — the assembled pattern guarantees both).
    ///
    /// Standard IKJ ILU(0): for each row `i`, eliminate its sub-diagonal
    /// entries against the already-factored pivot rows, updating only
    /// positions inside the pattern.
    pub fn factor(row_ptr: &'p [usize], col_idx: &'p [usize], values: &[Complex64]) -> Self {
        let n = row_ptr.len() - 1;
        let mut diag_idx = vec![usize::MAX; n]; // cbs-audit: allow(A001) reason="factorization-time workspace, once per numeric refill"
        for i in 0..n {
            for (k, &c) in (row_ptr[i]..row_ptr[i + 1]).zip(&col_idx[row_ptr[i]..row_ptr[i + 1]]) {
                if c == i {
                    diag_idx[i] = k;
                }
            }
            assert!(
                diag_idx[i] != usize::MAX,
                "ILU(0) requires a stored diagonal in every row (row {i})"
            );
        }
        Self::factor_with_diag(row_ptr, col_idx, diag_idx, values)
    }

    /// [`factor`](Self::factor) with the diagonal positions already known
    /// (e.g. the ones [`AssembledPattern`] validated at build time), so
    /// per-node factorizations skip the diagonal rescan.
    pub fn factor_with_diag(
        row_ptr: &'p [usize],
        col_idx: &'p [usize],
        diag_idx: Vec<usize>,
        values: &[Complex64],
    ) -> Self {
        Self::factor_inner(row_ptr, col_idx, Cow::Owned(diag_idx), values, None)
    }

    /// The factorization kernel: numeric IKJ elimination over the pattern,
    /// with the factor array and the column-position scatter map drawn from
    /// the thread-local scratch pools (returned on drop), so per-node
    /// factorizations perform no steady-state allocation.
    fn factor_inner(
        row_ptr: &'p [usize],
        col_idx: &'p [usize],
        diag_idx: Cow<'p, [usize]>,
        values: &[Complex64],
        schedule: Option<&'p TriSchedule>,
    ) -> Self {
        let n = row_ptr.len() - 1;
        assert_eq!(col_idx.len(), values.len(), "ILU(0): pattern/value length mismatch");
        assert_eq!(diag_idx.len(), n, "ILU(0): diagonal index length mismatch");
        time_ilu_factor(|| {
            let floor = pivot_floor(values);

            let mut lu = crate::scratch::take_scratch(0);
            lu.extend_from_slice(values);
            // Scatter map column -> position within the current row.
            let mut pos = crate::scratch::take_usize_scratch(n, usize::MAX);
            for i in 0..n {
                let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
                for k in lo..hi {
                    pos[col_idx[k]] = k;
                }
                for kk in lo..hi {
                    let kcol = col_idx[kk];
                    if kcol >= i {
                        break; // columns are sorted: the L part comes first
                    }
                    let factor = lu[kk] / guarded(lu[diag_idx[kcol]], floor);
                    lu[kk] = factor;
                    for jj in (diag_idx[kcol] + 1)..row_ptr[kcol + 1] {
                        let p = pos[col_idx[jj]];
                        if p != usize::MAX {
                            let update = factor * lu[jj];
                            lu[p] -= update;
                        }
                    }
                }
                for k in lo..hi {
                    pos[col_idx[k]] = usize::MAX;
                }
            }
            crate::scratch::recycle_usize_scratch(pos);
            Self {
                n,
                row_ptr,
                col_idx,
                diag_idx,
                lu,
                floor,
                schedule,
                par_threshold: tri_par_threshold(),
            }
        })
    }

    /// Factor an explicit CSR matrix (tests / standalone preconditioning).
    pub fn from_csr(m: &'p CsrMatrix) -> Self {
        assert_eq!(m.nrows(), m.ncols(), "ILU(0) requires a square matrix");
        Self::factor(m.row_ptr(), m.col_idx(), m.values())
    }

    /// Attach a level schedule to an existing factorization (the schedule
    /// must describe the same pattern).  The scheduled sweeps are
    /// bit-identical to the sequential ones; this is how the equivalence is
    /// tested.
    pub fn with_schedule(mut self, schedule: &'p TriSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Override the `CBS_TRI_PAR` parallel level-width threshold (tests
    /// exercise both executors regardless of the environment).  Parallel
    /// levels are bitwise identical to serial ones, so this never changes
    /// results — only which backend walks the wide levels.
    pub fn with_tri_par(mut self, threshold: Option<usize>) -> Self {
        self.par_threshold = threshold;
        self
    }

    /// Should a level of `width` rows run through the parallel backend?
    #[inline]
    fn par_level(&self, width: usize) -> bool {
        self.par_threshold.is_some_and(|t| width >= t)
    }

    /// Storage footprint of the factor values (the pattern is shared).
    pub fn memory_bytes(&self) -> usize {
        self.lu.len() * std::mem::size_of::<Complex64>()
            + self.diag_idx.len() * std::mem::size_of::<usize>()
    }

    /// Apply `M⁻¹` to a [`CVector`] (allocating convenience wrapper).
    pub fn solve_vec(&self, r: &CVector) -> CVector {
        let mut z = CVector::zeros(self.n);
        self.solve(r.as_slice(), z.as_mut_slice());
        z
    }

    /// One forward-substitution row: `z[i] = r[i] - Σ_L lu·z` (unit diag).
    #[inline(always)]
    fn forward_row(&self, i: usize, r: &[Complex64], z: &mut [Complex64]) {
        let v = self.fwd_gather(i, r[i], z);
        z[i] = v;
    }

    /// One backward-substitution row: `z[i] = (z[i] - Σ_U lu·z) / pivot`.
    #[inline(always)]
    fn backward_row(&self, i: usize, z: &mut [Complex64]) {
        let v = self.bwd_gather(i, z);
        z[i] = v;
    }

    /// The forward-substitution gather: `rhs - Σ_L lu·z` (unit diagonal).
    #[inline(always)]
    fn fwd_gather(&self, i: usize, rhs: Complex64, z: &[Complex64]) -> Complex64 {
        let mut acc = rhs;
        for k in self.row_ptr[i]..self.diag_idx[i] {
            acc -= self.lu[k] * z[self.col_idx[k]];
        }
        acc
    }

    /// The backward-substitution gather: `(z_i - Σ_U lu·z) / pivot`.
    #[inline(always)]
    fn bwd_gather(&self, i: usize, z: &[Complex64]) -> Complex64 {
        let mut acc = z[i];
        for k in (self.diag_idx[i] + 1)..self.row_ptr[i + 1] {
            acc -= self.lu[k] * z[self.col_idx[k]];
        }
        acc / guarded(self.lu[self.diag_idx[i]], self.floor)
    }

    /// One `U†` column gather (ascending rows, zero-skip) with the conjugate
    /// pivot division — replays the sequential scatter order exactly.
    #[inline(always)]
    fn utf_gather(&self, s: &TriSchedule, j: usize, rhs: Complex64, z: &[Complex64]) -> Complex64 {
        let mut acc = rhs;
        for t in s.ut_ptr[j]..s.ut_ptr[j + 1] {
            let wi = z[s.ut_row[t]];
            if wi != Complex64::ZERO {
                acc -= self.lu[s.ut_pos[t]].conj() * wi;
            }
        }
        acc / guarded(self.lu[self.diag_idx[j]], self.floor).conj()
    }

    /// One `L†` column gather (descending rows, zero-skip, unit diagonal).
    #[inline(always)]
    fn ltb_gather(&self, s: &TriSchedule, j: usize, z: &[Complex64]) -> Complex64 {
        let mut acc = z[j];
        for t in (s.lt_ptr[j]..s.lt_ptr[j + 1]).rev() {
            let xi = z[s.lt_row[t]];
            if xi != Complex64::ZERO {
                acc -= self.lu[s.lt_pos[t]].conj() * xi;
            }
        }
        acc
    }

    /// Stream one forward level over a chunk of exactly `W` columns:
    /// entry-outer / column-inner, so each row's `lu` value and column index
    /// load once for the whole chunk, while every column replays its
    /// sequential gather chain in the exact per-entry order — bitwise
    /// identical to [`fwd_gather`](Self::fwd_gather) per column.
    #[inline(always)]
    fn fwd_level_chunk<const W: usize>(
        &self,
        level: &[usize],
        rs: &[&[Complex64]],
        zs: &mut [&mut [Complex64]],
    ) {
        debug_assert_eq!(zs.len(), W);
        for &i in level {
            let mut acc = [Complex64::ZERO; W];
            for (a, rc) in acc.iter_mut().zip(rs) {
                *a = rc[i];
            }
            for k in self.row_ptr[i]..self.diag_idx[i] {
                let v = self.lu[k];
                let j = self.col_idx[k];
                for (a, zc) in acc.iter_mut().zip(zs.iter()) {
                    *a -= v * zc[j];
                }
            }
            for (zc, a) in zs.iter_mut().zip(acc) {
                zc[i] = a;
            }
        }
    }

    /// Execute one forward level over `zs.len()` columns.  Serial mode
    /// streams each row's `lu` entries once per column chunk
    /// (entry-outer / column-inner with fixed-width accumulators); parallel
    /// mode computes every `(row, column)` gather from the pre-level state
    /// (rows within a level never depend on each other) and scatters the
    /// results after the join.  Both replay the per-column sequential gather
    /// chains exactly — bitwise identical.
    fn fwd_level(
        &self,
        level: &[usize],
        par: bool,
        rs: &[&[Complex64]],
        zs: &mut [&mut [Complex64]],
    ) {
        let w = zs.len();
        if par {
            let vals: Vec<Complex64> = {
                let shared: Vec<&[Complex64]> = zs.iter().map(|zc| &**zc).collect();
                use rayon::prelude::*;
                (0..level.len() * w)
                    .into_par_iter()
                    .map(|t| self.fwd_gather(level[t / w], rs[t % w][level[t / w]], shared[t % w]))
                    .collect()
            };
            for (t, &v) in vals.iter().enumerate() {
                zs[t % w][level[t / w]] = v;
            }
        } else {
            for (zch, rch) in zs.chunks_mut(4).zip(rs.chunks(4)) {
                match zch.len() {
                    4 => self.fwd_level_chunk::<4>(level, rch, zch),
                    3 => {
                        let (z2, z1) = zch.split_at_mut(2);
                        self.fwd_level_chunk::<2>(level, &rch[..2], z2);
                        self.fwd_level_chunk::<1>(level, &rch[2..], z1);
                    }
                    2 => self.fwd_level_chunk::<2>(level, rch, zch),
                    _ => self.fwd_level_chunk::<1>(level, rch, zch),
                }
            }
        }
    }

    /// The backward streaming chunk: as
    /// [`fwd_level_chunk`](Self::fwd_level_chunk) over the `U` part, with the
    /// guarded pivot loaded once per row (the division order per column is
    /// unchanged — bitwise identical to [`bwd_gather`](Self::bwd_gather)).
    #[inline(always)]
    fn bwd_level_chunk<const W: usize>(&self, level: &[usize], zs: &mut [&mut [Complex64]]) {
        debug_assert_eq!(zs.len(), W);
        for &i in level {
            let mut acc = [Complex64::ZERO; W];
            for (a, zc) in acc.iter_mut().zip(zs.iter()) {
                *a = zc[i];
            }
            for k in (self.diag_idx[i] + 1)..self.row_ptr[i + 1] {
                let v = self.lu[k];
                let j = self.col_idx[k];
                for (a, zc) in acc.iter_mut().zip(zs.iter()) {
                    *a -= v * zc[j];
                }
            }
            let piv = guarded(self.lu[self.diag_idx[i]], self.floor);
            for (zc, a) in zs.iter_mut().zip(acc) {
                zc[i] = a / piv;
            }
        }
    }

    /// Execute one backward level; modes as in [`fwd_level`](Self::fwd_level).
    fn bwd_level(&self, level: &[usize], par: bool, zs: &mut [&mut [Complex64]]) {
        let w = zs.len();
        if par {
            let vals: Vec<Complex64> = {
                let shared: Vec<&[Complex64]> = zs.iter().map(|zc| &**zc).collect();
                use rayon::prelude::*;
                (0..level.len() * w)
                    .into_par_iter()
                    .map(|t| self.bwd_gather(level[t / w], shared[t % w]))
                    .collect()
            };
            for (t, &v) in vals.iter().enumerate() {
                zs[t % w][level[t / w]] = v;
            }
        } else {
            for zch in zs.chunks_mut(4) {
                match zch.len() {
                    4 => self.bwd_level_chunk::<4>(level, zch),
                    3 => {
                        let (z2, z1) = zch.split_at_mut(2);
                        self.bwd_level_chunk::<2>(level, z2);
                        self.bwd_level_chunk::<1>(level, z1);
                    }
                    2 => self.bwd_level_chunk::<2>(level, zch),
                    _ => self.bwd_level_chunk::<1>(level, zch),
                }
            }
        }
    }

    /// Execute one `U†` adjoint-forward level; modes as in
    /// [`fwd_level`](Self::fwd_level).
    fn utf_level(
        &self,
        s: &TriSchedule,
        level: &[usize],
        par: bool,
        rs: &[&[Complex64]],
        zs: &mut [&mut [Complex64]],
    ) {
        let w = zs.len();
        if par {
            let vals: Vec<Complex64> = {
                let shared: Vec<&[Complex64]> = zs.iter().map(|zc| &**zc).collect();
                use rayon::prelude::*;
                (0..level.len() * w)
                    .into_par_iter()
                    .map(|t| {
                        self.utf_gather(s, level[t / w], rs[t % w][level[t / w]], shared[t % w])
                    })
                    .collect()
            };
            for (t, &v) in vals.iter().enumerate() {
                zs[t % w][level[t / w]] = v;
            }
        } else {
            for (zch, rch) in zs.chunks_mut(4).zip(rs.chunks(4)) {
                match zch.len() {
                    4 => self.utf_level_chunk::<4>(s, level, rch, zch),
                    3 => {
                        let (z2, z1) = zch.split_at_mut(2);
                        self.utf_level_chunk::<2>(s, level, &rch[..2], z2);
                        self.utf_level_chunk::<1>(s, level, &rch[2..], z1);
                    }
                    2 => self.utf_level_chunk::<2>(s, level, rch, zch),
                    _ => self.utf_level_chunk::<1>(s, level, rch, zch),
                }
            }
        }
    }

    /// The `U†` streaming chunk: the conjugated factor value and row index
    /// load once per entry for the whole chunk; the zero-skip stays a
    /// per-(entry, column) decision on that column's multiplicand, and the
    /// conjugate pivot division closes each column's chain — bitwise
    /// identical to [`utf_gather`](Self::utf_gather) per column.
    #[inline(always)]
    fn utf_level_chunk<const W: usize>(
        &self,
        s: &TriSchedule,
        level: &[usize],
        rs: &[&[Complex64]],
        zs: &mut [&mut [Complex64]],
    ) {
        debug_assert_eq!(zs.len(), W);
        for &j in level {
            let mut acc = [Complex64::ZERO; W];
            for (a, rc) in acc.iter_mut().zip(rs) {
                *a = rc[j];
            }
            for t in s.ut_ptr[j]..s.ut_ptr[j + 1] {
                let lc = self.lu[s.ut_pos[t]].conj();
                let row = s.ut_row[t];
                for (a, zc) in acc.iter_mut().zip(zs.iter()) {
                    let wi = zc[row];
                    if wi != Complex64::ZERO {
                        *a -= lc * wi;
                    }
                }
            }
            let piv = guarded(self.lu[self.diag_idx[j]], self.floor).conj();
            for (zc, a) in zs.iter_mut().zip(acc) {
                zc[j] = a / piv;
            }
        }
    }

    /// Execute one `L†` adjoint-backward level; modes as in
    /// [`fwd_level`](Self::fwd_level).
    fn ltb_level(&self, s: &TriSchedule, level: &[usize], par: bool, zs: &mut [&mut [Complex64]]) {
        let w = zs.len();
        if par {
            let vals: Vec<Complex64> = {
                let shared: Vec<&[Complex64]> = zs.iter().map(|zc| &**zc).collect();
                use rayon::prelude::*;
                (0..level.len() * w)
                    .into_par_iter()
                    .map(|t| self.ltb_gather(s, level[t / w], shared[t % w]))
                    .collect()
            };
            for (t, &v) in vals.iter().enumerate() {
                zs[t % w][level[t / w]] = v;
            }
        } else {
            for zch in zs.chunks_mut(4) {
                match zch.len() {
                    4 => self.ltb_level_chunk::<4>(s, level, zch),
                    3 => {
                        let (z2, z1) = zch.split_at_mut(2);
                        self.ltb_level_chunk::<2>(s, level, z2);
                        self.ltb_level_chunk::<1>(s, level, z1);
                    }
                    2 => self.ltb_level_chunk::<2>(s, level, zch),
                    _ => self.ltb_level_chunk::<1>(s, level, zch),
                }
            }
        }
    }

    /// The `L†` streaming chunk: descending entry order, per-(entry, column)
    /// zero-skip, unit diagonal — bitwise identical to
    /// [`ltb_gather`](Self::ltb_gather) per column.
    #[inline(always)]
    fn ltb_level_chunk<const W: usize>(
        &self,
        s: &TriSchedule,
        level: &[usize],
        zs: &mut [&mut [Complex64]],
    ) {
        debug_assert_eq!(zs.len(), W);
        for &j in level {
            let mut acc = [Complex64::ZERO; W];
            for (a, zc) in acc.iter_mut().zip(zs.iter()) {
                *a = zc[j];
            }
            for t in (s.lt_ptr[j]..s.lt_ptr[j + 1]).rev() {
                let lc = self.lu[s.lt_pos[t]].conj();
                let row = s.lt_row[t];
                for (a, zc) in acc.iter_mut().zip(zs.iter()) {
                    let xi = zc[row];
                    if xi != Complex64::ZERO {
                        *a -= lc * xi;
                    }
                }
            }
            for (zc, a) in zs.iter_mut().zip(acc) {
                zc[j] = a;
            }
        }
    }

    /// The four scheduled sweeps over a column slab (forward then backward).
    fn scheduled_solve_slab(
        &self,
        s: &TriSchedule,
        rs: &[&[Complex64]],
        zs: &mut [&mut [Complex64]],
    ) {
        for level in TriSchedule::levels(&s.fwd_level_ptr, &s.fwd_rows) {
            self.fwd_level(level, self.par_level(level.len()), rs, zs);
        }
        for level in TriSchedule::levels(&s.bwd_level_ptr, &s.bwd_rows) {
            self.bwd_level(level, self.par_level(level.len()), zs);
        }
    }

    /// The scheduled adjoint sweeps over a column slab (`U†` then `L†`).
    fn scheduled_adjoint_slab(
        &self,
        s: &TriSchedule,
        rs: &[&[Complex64]],
        zs: &mut [&mut [Complex64]],
    ) {
        for level in TriSchedule::levels(&s.utf_level_ptr, &s.utf_cols) {
            self.utf_level(s, level, self.par_level(level.len()), rs, zs);
        }
        for level in TriSchedule::levels(&s.ltb_level_ptr, &s.ltb_cols) {
            self.ltb_level(s, level, self.par_level(level.len()), zs);
        }
    }
}

impl Drop for Ilu0<'_> {
    fn drop(&mut self) {
        crate::scratch::recycle_scratch(std::mem::take(&mut self.lu));
        const EMPTY: &[usize] = &[];
        if let Cow::Owned(v) = std::mem::replace(&mut self.diag_idx, Cow::Borrowed(EMPTY)) {
            crate::scratch::recycle_usize_scratch(v);
        }
    }
}

impl Preconditioner for Ilu0<'_> {
    fn dim(&self) -> usize {
        self.n
    }

    fn solve(&self, r: &[Complex64], z: &mut [Complex64]) {
        assert_eq!(r.len(), self.n, "ILU solve: r length mismatch");
        assert_eq!(z.len(), self.n, "ILU solve: z length mismatch");
        time_tri_sweep(|| match self.schedule {
            Some(s) => {
                // Level-scheduled sweeps: every row's own gather runs in
                // sequential order (serial or parallel per level), so the
                // result is bit-identical to the `None` branch below.
                let rs = [r];
                let mut zs = [&mut *z];
                self.scheduled_solve_slab(s, &rs, &mut zs);
            }
            None => {
                // Forward: L y = r (unit diagonal).
                for i in 0..self.n {
                    self.forward_row(i, r, z);
                }
                // Backward: U x = y.
                for i in (0..self.n).rev() {
                    self.backward_row(i, z);
                }
            }
        });
    }

    fn solve_adjoint(&self, r: &[Complex64], z: &mut [Complex64]) {
        assert_eq!(r.len(), self.n, "ILU adjoint solve: r length mismatch");
        assert_eq!(z.len(), self.n, "ILU adjoint solve: z length mismatch");
        time_tri_sweep(|| match self.schedule {
            Some(s) => {
                // Gather form over the transposed triangle lists.  Per
                // output element the update order and zero-skip guards
                // replay the sequential scatter exactly (ascending rows for
                // U†, descending for L†), so the result is bit-identical
                // to the `None` branch below.
                let rs = [r];
                let mut zs = [&mut *z];
                self.scheduled_adjoint_slab(s, &rs, &mut zs);
            }
            None => {
                z.copy_from_slice(r);
                // Forward: U† w = r.  U† is lower triangular; process
                // columns of U ascending, scattering each finalized w_j
                // down its row of U.
                for j in 0..self.n {
                    let wj = z[j] / guarded(self.lu[self.diag_idx[j]], self.floor).conj();
                    z[j] = wj;
                    if wj != Complex64::ZERO {
                        for k in (self.diag_idx[j] + 1)..self.row_ptr[j + 1] {
                            z[self.col_idx[k]] -= self.lu[k].conj() * wj;
                        }
                    }
                }
                // Backward: L† x = w.  L† is unit upper triangular; process
                // columns of L descending.
                for j in (0..self.n).rev() {
                    let xj = z[j];
                    if xj != Complex64::ZERO {
                        for k in self.row_ptr[j]..self.diag_idx[j] {
                            z[self.col_idx[k]] -= self.lu[k].conj() * xj;
                        }
                    }
                }
            }
        });
    }

    fn solve_block(&self, r: &[Complex64], z: &mut [Complex64], nvecs: usize) {
        assert!(r.len() >= self.n * nvecs, "ILU block solve: r slab too short");
        assert!(z.len() >= self.n * nvecs, "ILU block solve: z slab too short");
        let Some(s) = self.schedule else {
            // No level schedule: the sequential per-column sweeps.
            for (rc, zc) in r.chunks_exact(self.n).zip(z.chunks_exact_mut(self.n)).take(nvecs) {
                self.solve(rc, zc);
            }
            return;
        };
        time_tri_sweep(|| {
            // Blocked sweeps: all columns advance through each level
            // together, so a row's `lu` values and indices stream once per
            // level instead of once per column.  Per column the gather
            // chains are the sequential ones — bitwise identical to the
            // per-column default.
            let rs: Vec<&[Complex64]> = r.chunks_exact(self.n).take(nvecs).collect();
            let mut zs: Vec<&mut [Complex64]> = z.chunks_exact_mut(self.n).take(nvecs).collect();
            self.scheduled_solve_slab(s, &rs, &mut zs);
        });
    }

    fn solve_adjoint_block(&self, r: &[Complex64], z: &mut [Complex64], nvecs: usize) {
        assert!(r.len() >= self.n * nvecs, "ILU adjoint block solve: r slab too short");
        assert!(z.len() >= self.n * nvecs, "ILU adjoint block solve: z slab too short");
        let Some(s) = self.schedule else {
            for (rc, zc) in r.chunks_exact(self.n).zip(z.chunks_exact_mut(self.n)).take(nvecs) {
                self.solve_adjoint(rc, zc);
            }
            return;
        };
        time_tri_sweep(|| {
            let rs: Vec<&[Complex64]> = r.chunks_exact(self.n).take(nvecs).collect();
            let mut zs: Vec<&mut [Complex64]> = z.chunks_exact_mut(self.n).take(nvecs).collect();
            self.scheduled_adjoint_slab(s, &rs, &mut zs);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;
    use crate::ops::adjoint_defect;
    use cbs_linalg::{c64, CMatrix};
    use rand::SeedableRng;

    fn random_blocks(n: usize, density: f64, seed: u64) -> (CsrMatrix, CsrMatrix) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut b00 = CooBuilder::new(n, n);
        let mut b01 = CooBuilder::new(n, n);
        for i in 0..n {
            for j in 0..n {
                if rand::Rng::gen_bool(&mut rng, density) {
                    let v = c64(
                        rand::Rng::gen_range(&mut rng, -1.0..1.0),
                        rand::Rng::gen_range(&mut rng, -1.0..1.0),
                    );
                    // Hermitian H00.
                    b00.push(i, j, v);
                    b00.push(j, i, v.conj());
                }
                if rand::Rng::gen_bool(&mut rng, density) {
                    b01.push(
                        i,
                        j,
                        c64(
                            rand::Rng::gen_range(&mut rng, -0.5..0.5),
                            rand::Rng::gen_range(&mut rng, -0.5..0.5),
                        ),
                    );
                }
            }
        }
        (b00.build(), b01.build())
    }

    fn dense_p(h00: &CsrMatrix, h01: &CsrMatrix, energy: f64, z: Complex64) -> CMatrix {
        let n = h00.nrows();
        let mut p = CMatrix::identity(n).scale(c64(energy, 0.0));
        p = &p - &h00.to_dense();
        p = &p - &h01.to_dense().scale(z);
        p = &p - &h01.to_dense().adjoint().scale(z.inv());
        p
    }

    #[test]
    fn assembled_operator_matches_dense_expression() {
        let (h00, h01) = random_blocks(14, 0.2, 901);
        let pattern = AssembledPattern::build(&h00, &h01);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(902);
        for &(e, z) in &[(0.3, c64(1.7, 0.9)), (-0.1, c64(0.4, -0.3)), (0.0, c64(2.0, 0.0))] {
            let op = pattern.assemble(e, z);
            assert_eq!(op.shift(), z);
            let p = dense_p(&h00, &h01, e, z);
            let x = CVector::random(14, &mut rng);
            let got = op.apply_vec(&x);
            let want = p.matvec(&x);
            assert!((&got - &want).norm() < 1e-12 * (1.0 + want.norm()), "P(z) refill wrong");
            let got_adj = op.apply_adjoint_vec(&x);
            let want_adj = p.adjoint().matvec(&x);
            assert!((&got_adj - &want_adj).norm() < 1e-12 * (1.0 + want_adj.norm()));
        }
    }

    #[test]
    fn pattern_is_shared_and_diagonal_is_always_stored() {
        let (h00, h01) = random_blocks(10, 0.15, 903);
        let pattern = AssembledPattern::build(&h00, &h01);
        // Two refills at different (E, z) report the same structure.
        let a = pattern.assemble(0.1, c64(1.2, 0.4));
        let b = pattern.assemble(-0.7, c64(0.3, -0.9));
        assert_eq!(a.values().len(), b.values().len());
        assert_eq!(a.values().len(), pattern.nnz());
        assert!(std::ptr::eq(a.pattern(), b.pattern()), "refills must share the pattern");
        // Every diagonal is stored (required by the E shift and by ILU(0)).
        for i in 0..pattern.dim() {
            assert_eq!(pattern.col_idx[pattern.diag_idx[i]], i);
        }
        assert!(pattern.memory_bytes() > 0);
    }

    #[test]
    fn assembled_block_apply_is_bitwise_column_equivalent() {
        let (h00, h01) = random_blocks(11, 0.25, 904);
        let pattern = AssembledPattern::build(&h00, &h01);
        let op = pattern.assemble(0.2, c64(0.8, 0.5));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(905);
        let nvecs = 5;
        let n = 11;
        let x: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
        let mut y = vec![Complex64::ZERO; n * nvecs];
        op.apply_block(&x, &mut y, nvecs);
        let mut ya = vec![Complex64::ZERO; n * nvecs];
        op.apply_adjoint_block(&x, &mut ya, nvecs);
        for c in 0..nvecs {
            let mut col = vec![Complex64::ZERO; n];
            op.apply(&x[c * n..(c + 1) * n], &mut col);
            assert_eq!(&y[c * n..(c + 1) * n], &col[..], "column {c} differs");
            op.apply_adjoint(&x[c * n..(c + 1) * n], &mut col);
            assert_eq!(&ya[c * n..(c + 1) * n], &col[..], "adjoint column {c} differs");
        }
    }

    #[test]
    fn split_layout_agrees_columnwise_with_interleaved() {
        let (h00, h01) = random_blocks(17, 0.25, 912);
        let pattern = AssembledPattern::build(&h00, &h01).with_layout(KernelLayout::Interleaved);
        let split = pattern.clone().with_layout(KernelLayout::Split);
        assert_eq!(split.layout(), KernelLayout::Split);
        let op_i = pattern.assemble(0.12, c64(1.3, -0.8));
        let op_s = split.assemble(0.12, c64(1.3, -0.8));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(913);
        let n = 17;
        for nvecs in [1usize, 3, 5, 8] {
            let x: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
            let mut yi = vec![Complex64::ZERO; n * nvecs];
            let mut ys = vec![Complex64::ZERO; n * nvecs];
            op_i.apply_block(&x, &mut yi, nvecs);
            op_s.apply_block(&x, &mut ys, nvecs);
            for c in 0..nvecs {
                let norm: f64 =
                    yi[c * n..(c + 1) * n].iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
                let err: f64 = yi[c * n..(c + 1) * n]
                    .iter()
                    .zip(&ys[c * n..(c + 1) * n])
                    .map(|(a, b)| (*a - *b).norm_sqr())
                    .sum::<f64>()
                    .sqrt();
                assert!(err <= 1e-14 * (1.0 + norm), "split column {c} err {err}");
            }
            op_i.apply_adjoint_block(&x, &mut yi, nvecs);
            op_s.apply_adjoint_block(&x, &mut ys, nvecs);
            for c in 0..nvecs {
                let norm: f64 =
                    yi[c * n..(c + 1) * n].iter().map(|v| v.norm_sqr()).sum::<f64>().sqrt();
                let err: f64 = yi[c * n..(c + 1) * n]
                    .iter()
                    .zip(&ys[c * n..(c + 1) * n])
                    .map(|(a, b)| (*a - *b).norm_sqr())
                    .sum::<f64>()
                    .sqrt();
                assert!(err <= 1e-14 * (1.0 + norm), "split adjoint column {c} err {err}");
            }
        }
    }

    #[test]
    fn assembled_adjoint_is_exact_and_weight_is_one() {
        let (h00, h01) = random_blocks(12, 0.2, 906);
        let pattern = AssembledPattern::build(&h00, &h01);
        let op = pattern.assemble(0.15, c64(1.1, -0.6));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(907);
        // The adjoint is the exact conjugate transpose (scatter kernel), so
        // the defect is at rounding level regardless of block Hermiticity.
        assert!(adjoint_defect(&op, 8, &mut rng) < 1e-13);
        assert_eq!(op.traversal_weight(), 1);
    }

    #[test]
    fn ilu0_is_exact_on_a_tridiagonal_matrix() {
        // A tridiagonal pattern is closed under LU, so ILU(0) == LU and the
        // solve must reproduce A⁻¹ r to rounding accuracy.
        let n = 24;
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, c64(4.0, 0.7));
            if i + 1 < n {
                b.push(i, i + 1, c64(-1.0, 0.3));
                b.push(i + 1, i, c64(-1.0, -0.2));
            }
        }
        let a = b.build();
        let ilu = Ilu0::from_csr(&a);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(908);
        let x_true = CVector::random(n, &mut rng);
        let r = a.matvec(&x_true);
        let x = ilu.solve_vec(&r);
        assert!((&x - &x_true).norm() < 1e-10 * x_true.norm(), "ILU(0) != LU on tridiagonal");
        // Adjoint solve: A† x̃ = r̃ through the same factors.
        let rt = a.matvec_adjoint(&x_true);
        let mut xt = CVector::zeros(n);
        ilu.solve_adjoint(rt.as_slice(), xt.as_mut_slice());
        assert!((&xt - &x_true).norm() < 1e-10 * x_true.norm(), "adjoint ILU solve wrong");
    }

    #[test]
    fn scheduled_solves_are_bitwise_identical_to_sequential() {
        let (h00, h01) = random_blocks(19, 0.2, 914);
        let pattern = AssembledPattern::build(&h00, &h01);
        let op = pattern.assemble(0.07, c64(1.4, 0.6));
        // `ilu0()` carries the pattern's schedule; a schedule-free twin
        // factored from the same values runs the sequential loops.
        let scheduled = op.ilu0();
        let sequential =
            Ilu0::factor(pattern.row_ptr.as_slice(), pattern.col_idx.as_slice(), op.values());
        assert_eq!(scheduled.lu, sequential.lu, "factor values must agree bitwise");
        let schedule = pattern.tri_schedule();
        assert!(schedule.forward_levels() >= 1);
        assert!(schedule.backward_levels() >= 1);
        assert!(schedule.memory_bytes() > 0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(915);
        let n = pattern.dim();
        for _ in 0..4 {
            let mut r = CVector::random(n, &mut rng).into_vec();
            r[2] = Complex64::ZERO; // exercise the zero-skip guards
            let mut z_sched = vec![Complex64::ZERO; n];
            let mut z_seq = vec![Complex64::ZERO; n];
            scheduled.solve(&r, &mut z_sched);
            sequential.solve(&r, &mut z_seq);
            assert_eq!(z_sched, z_seq, "scheduled forward/backward differs");
            scheduled.solve_adjoint(&r, &mut z_sched);
            sequential.solve_adjoint(&r, &mut z_seq);
            assert_eq!(z_sched, z_seq, "scheduled adjoint differs");
        }
        // `with_schedule` upgrades a sequential factorization in place.
        let upgraded =
            Ilu0::factor(pattern.row_ptr.as_slice(), pattern.col_idx.as_slice(), op.values())
                .with_schedule(schedule);
        let mut r2 = vec![Complex64::ZERO; n];
        r2[0] = c64(1.0, -2.0);
        let mut za = vec![Complex64::ZERO; n];
        let mut zb = vec![Complex64::ZERO; n];
        upgraded.solve_adjoint(&r2, &mut za);
        sequential.solve_adjoint(&r2, &mut zb);
        assert_eq!(za, zb);
    }

    #[test]
    fn ilu0_adjoint_solve_is_the_adjoint_of_the_solve() {
        let (h00, h01) = random_blocks(13, 0.2, 909);
        let pattern = AssembledPattern::build(&h00, &h01);
        let op = pattern.assemble(0.05, c64(1.9, 0.4));
        let ilu = op.ilu0();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(910);
        let n = 13;
        for _ in 0..6 {
            let x = CVector::random(n, &mut rng);
            let y = CVector::random(n, &mut rng);
            let mut mx = CVector::zeros(n);
            ilu.solve(x.as_slice(), mx.as_mut_slice());
            let mut mty = CVector::zeros(n);
            ilu.solve_adjoint(y.as_slice(), mty.as_mut_slice());
            // ⟨M⁻¹ x, y⟩ = ⟨x, M⁻† y⟩
            let lhs = mx.dot(&y);
            let rhs = x.dot(&mty);
            let scale = 1.0 + lhs.abs().max(rhs.abs());
            assert!((lhs - rhs).abs() < 1e-10 * scale, "adjoint identity violated");
        }
    }

    #[test]
    fn ilu0_approximates_the_assembled_operator() {
        // On a diagonally dominant P(z), M⁻¹ P(z) x should be much closer to
        // x than P(z) x is (scaled): the whole point of preconditioning.
        let n = 20;
        let mut b00 = CooBuilder::new(n, n);
        let mut b01 = CooBuilder::new(n, n);
        for i in 0..n {
            b00.push(i, i, c64(-6.0, 0.0));
            if i + 1 < n {
                b00.push(i, i + 1, c64(0.8, 0.2));
                b00.push(i + 1, i, c64(0.8, -0.2));
            }
            b01.push(i, (i + 3) % n, c64(0.3, -0.1));
        }
        let (h00, h01) = (b00.build(), b01.build());
        let pattern = AssembledPattern::build(&h00, &h01);
        let op = pattern.assemble(0.2, c64(1.5, 1.0));
        let ilu = op.ilu0();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(911);
        let x = CVector::random(n, &mut rng);
        let px = op.apply_vec(&x);
        let mpx = ilu.solve_vec(&px);
        assert!(
            (&mpx - &x).norm() < 0.3 * x.norm(),
            "M⁻¹P(z) far from identity: defect {}",
            (&mpx - &x).norm() / x.norm()
        );
    }
}
