//! Split-layout (planar) complex CSR kernels — the `KernelLayout`
//! experiment.
//!
//! A complex CSR matrix can store its entries two ways:
//!
//! * **Interleaved** — one `Vec<Complex64>` with `re, im` adjacent in
//!   memory.  This is the historical layout; every kernel that reads it
//!   reproduces the exact accumulation order of the original scalar loops,
//!   so results are **bitwise identical** to every previously shipped
//!   release.  It stays the default.
//! * **Split** — two parallel `f64` planes (`re[]`, `im[]`).  The complex
//!   multiply-accumulate then decomposes into four independent real FMA
//!   chains per entry (`f64::mul_add`), which the compiler can keep in
//!   vector registers without the shuffle traffic interleaved complex
//!   arithmetic needs.  Fused rounding makes the results differ from the
//!   interleaved kernels in the last bits — agreement is guaranteed to
//!   `≤ 1e-14` columnwise (relative to the column norm), **not** bitwise,
//!   which is why the layout is opt-in (`CBS_KERNEL_LAYOUT=split`).
//!
//! Both layouts share the same traversal schedule: row-blocked outer loops
//! (one block of rows' index/value stream stays cache-hot across all
//! column groups of a block right-hand side) around 4/2/1-wide column-group
//! SpMM tiles.  The raw interleaved kernels live in [`crate::csr`]; this
//! module holds the planar value store and its kernels.

use std::sync::OnceLock;

use cbs_linalg::{c64, Complex64};

/// Rows per cache block of the blocked SpMV/SpMM traversals.  One block's
/// index + value stream (≈ `ROW_BLOCK · nnz/row · 24 B` interleaved) fits
/// comfortably in L2 for the stencil-dominated operators of this crate, so
/// re-streaming it once per column group is served from cache.
pub(crate) const ROW_BLOCK: usize = 512;

/// Which value layout the assembled-operator kernels run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelLayout {
    /// Interleaved `Complex64` values — bitwise-compatible default.
    #[default]
    Interleaved,
    /// Planar `re[]` / `im[]` values with FMA-chain kernels (`≤ 1e-14`
    /// columnwise agreement, not bitwise).
    Split,
}

impl KernelLayout {
    /// Parse a layout name: `interleaved` | `split`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "interleaved" | "default" => Some(Self::Interleaved),
            "split" | "planar" => Some(Self::Split),
            _ => None,
        }
    }

    /// Read the layout from the `CBS_KERNEL_LAYOUT` environment variable,
    /// falling back to the bitwise-compatible [`Interleaved`](Self::Interleaved)
    /// default when unset (an unrecognized value warns once and does the
    /// same, via [`cbs_trace::knob()`]).
    pub fn from_env() -> Self {
        cbs_trace::knob("CBS_KERNEL_LAYOUT").unwrap_or_default()
    }

    /// Canonical knob value of this layout.
    pub fn name(self) -> &'static str {
        match self {
            Self::Interleaved => "interleaved",
            Self::Split => "split",
        }
    }
}

impl cbs_trace::Knob for KernelLayout {
    fn parse_knob(value: &str) -> Option<Self> {
        Self::from_name(value)
    }
}

/// Planar storage of a CSR value array: two `f64` planes parallel to the
/// pattern's `col_idx`.
#[derive(Clone, Debug, Default)]
pub struct SplitValues {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SplitValues {
    /// Empty planes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Split an interleaved value array into planes.
    pub fn from_values(values: &[Complex64]) -> Self {
        let mut s = Self::new();
        s.refill(values);
        s
    }

    /// Refill the planes from an interleaved value array, reusing the
    /// existing allocations.
    pub fn refill(&mut self, values: &[Complex64]) {
        self.re.clear();
        self.im.clear();
        self.re.extend(values.iter().map(|v| v.re));
        self.im.extend(values.iter().map(|v| v.im));
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// The two planes `(re, im)`.
    pub fn planes(&self) -> (&[f64], &[f64]) {
        (&self.re, &self.im)
    }

    /// Empty planes backed by recycled allocations from the thread-local
    /// scratch pool (refill before use).
    pub(crate) fn take() -> Self {
        Self { re: crate::scratch::take_f64_scratch(), im: crate::scratch::take_f64_scratch() }
    }

    /// Return the plane allocations to the thread-local scratch pool.
    pub(crate) fn recycle(self) {
        crate::scratch::recycle_f64_scratch(self.re);
        crate::scratch::recycle_f64_scratch(self.im);
    }
}

/// SIMD dispatch mode of the split-layout tile kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdMode {
    /// Explicit AVX2+FMA vector tiles (x86-64 with runtime support): the
    /// 4-wide and 2-wide column-group SpMM tiles run their FMA chains
    /// 4/2 lanes at a time.  Each lane executes the *same* fused chain as
    /// the scalar tile (`fmadd`/`fnmadd` per entry, one rounding each), so
    /// `Wide` is **bit-identical** to `Scalar` — the dispatch is a speed
    /// knob, never a results knob.
    Wide,
    /// Portable scalar `f64::mul_add` chains — the only mode on non-x86-64
    /// targets, on CPUs without AVX2/FMA, or when forced via
    /// `CBS_SIMD=scalar`.
    Scalar,
}

impl SimdMode {
    /// Canonical knob value.
    pub fn name(self) -> &'static str {
        match self {
            Self::Wide => "wide",
            Self::Scalar => "scalar",
        }
    }
}

impl cbs_trace::Knob for SimdMode {
    fn parse_knob(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "scalar" | "portable" => Some(Self::Scalar),
            "wide" | "auto" | "avx2" => Some(Self::Wide),
            _ => None,
        }
    }
}

/// Runtime-detected SIMD mode, cached once per process.  `CBS_SIMD=scalar`
/// forces the portable chains (for debugging or perf A/B runs); `wide`,
/// unset, or a malformed value (warned once) auto-detects `avx2`+`fma` via
/// `is_x86_feature_detected!` with the scalar chains as the portable
/// fallback — `wide` is a detection *request*, never an unchecked override.
pub fn simd_mode() -> SimdMode {
    static MODE: OnceLock<SimdMode> = OnceLock::new();
    *MODE.get_or_init(|| {
        if cbs_trace::knob("CBS_SIMD") == Some(SimdMode::Scalar) {
            return SimdMode::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdMode::Wide;
            }
        }
        SimdMode::Scalar
    })
}

// Four real FMA chains accumulating `acc += v * x` with `v = (vr, vi)`:
//   re += vr·x.re − vi·x.im,   im += vr·x.im + vi·x.re
#[inline(always)]
fn fma_mul(vr: f64, vi: f64, x: Complex64, ar: &mut f64, ai: &mut f64) {
    *ar = vr.mul_add(x.re, *ar);
    *ar = (-vi).mul_add(x.im, *ar);
    *ai = vr.mul_add(x.im, *ai);
    *ai = vi.mul_add(x.re, *ai);
}

// `acc += conj(v) * x` with `conj(v) = (vr, −vi)`:
//   re += vr·x.re + vi·x.im,   im += vr·x.im − vi·x.re
#[inline(always)]
fn fma_mul_conj(vr: f64, vi: f64, x: Complex64, ar: &mut f64, ai: &mut f64) {
    *ar = vr.mul_add(x.re, *ar);
    *ar = vi.mul_add(x.im, *ar);
    *ai = vr.mul_add(x.im, *ai);
    *ai = (-vi).mul_add(x.re, *ai);
}

/// `y = A x` over a raw CSR pattern with planar values (serial kernel).
pub(crate) fn spmv_split_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &SplitValues,
    x: &[Complex64],
    y: &mut [Complex64],
) {
    let (re, im) = vals.planes();
    for (i, yi) in y.iter_mut().enumerate() {
        let (mut ar, mut ai) = (0.0f64, 0.0f64);
        for k in row_ptr[i]..row_ptr[i + 1] {
            fma_mul(re[k], im[k], x[col_idx[k]], &mut ar, &mut ai);
        }
        *yi = c64(ar, ai);
    }
}

/// `y = A† x` over a raw CSR pattern with planar values (serial scatter
/// kernel).
pub(crate) fn spmv_split_adjoint_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &SplitValues,
    x: &[Complex64],
    y: &mut [Complex64],
) {
    let (re, im) = vals.planes();
    for v in y.iter_mut() {
        *v = Complex64::ZERO;
    }
    for (i, &xi) in x.iter().enumerate() {
        if xi == Complex64::ZERO {
            continue;
        }
        for k in row_ptr[i]..row_ptr[i + 1] {
            let c = col_idx[k];
            let (mut ar, mut ai) = (y[c].re, y[c].im);
            fma_mul_conj(re[k], im[k], xi, &mut ar, &mut ai);
            y[c] = c64(ar, ai);
        }
    }
}

/// The scalar 4-wide column-group tile over rows `r0..r1` (reference
/// implementation; the AVX2 twin in [`avx2`] is bit-identical per lane).
#[allow(clippy::too_many_arguments)]
fn tile4_scalar(
    row_ptr: &[usize],
    col_idx: &[usize],
    re: &[f64],
    im: &[f64],
    r0: usize,
    r1: usize,
    x: (&[Complex64], &[Complex64], &[Complex64], &[Complex64]),
    y: (&mut [Complex64], &mut [Complex64], &mut [Complex64], &mut [Complex64]),
) {
    let (x0, x1, x2, x3) = x;
    let (y0, y1, y2, y3) = y;
    for i in r0..r1 {
        let (mut a0r, mut a0i, mut a1r, mut a1i) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let (mut a2r, mut a2i, mut a3r, mut a3i) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for k in row_ptr[i]..row_ptr[i + 1] {
            let (vr, vi) = (re[k], im[k]);
            let c = col_idx[k];
            fma_mul(vr, vi, x0[c], &mut a0r, &mut a0i);
            fma_mul(vr, vi, x1[c], &mut a1r, &mut a1i);
            fma_mul(vr, vi, x2[c], &mut a2r, &mut a2i);
            fma_mul(vr, vi, x3[c], &mut a3r, &mut a3i);
        }
        y0[i] = c64(a0r, a0i);
        y1[i] = c64(a1r, a1i);
        y2[i] = c64(a2r, a2i);
        y3[i] = c64(a3r, a3i);
    }
}

/// The scalar 2-wide column-group tile over rows `r0..r1`.
#[allow(clippy::too_many_arguments)]
fn tile2_scalar(
    row_ptr: &[usize],
    col_idx: &[usize],
    re: &[f64],
    im: &[f64],
    r0: usize,
    r1: usize,
    x: (&[Complex64], &[Complex64]),
    y: (&mut [Complex64], &mut [Complex64]),
) {
    let (x0, x1) = x;
    let (y0, y1) = y;
    for i in r0..r1 {
        let (mut a0r, mut a0i, mut a1r, mut a1i) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for k in row_ptr[i]..row_ptr[i + 1] {
            let (vr, vi) = (re[k], im[k]);
            let c = col_idx[k];
            fma_mul(vr, vi, x0[c], &mut a0r, &mut a0i);
            fma_mul(vr, vi, x1[c], &mut a1r, &mut a1i);
        }
        y0[i] = c64(a0r, a0i);
        y1[i] = c64(a1r, a1i);
    }
}

/// Explicit AVX2+FMA twins of the scalar column-group tiles.
///
/// Per CSR entry the scalar tile runs, for each column lane, the chain
/// `ar = fma(vr, xr, ar); ar = fma(-vi, xi, ar); ai = fma(vr, xi, ai);
/// ai = fma(vi, xr, ai)` — four fused operations with one rounding each.
/// The vector tiles broadcast `(vr, vi)`, transpose the lanes' interleaved
/// `x` values into planar registers (`unpacklo`/`unpackhi`), and run the
/// *same* chain with `vfmadd`/`vfnmadd` across all lanes at once.  Because
/// FMA negation is exact and each lane's operation order is unchanged, the
/// results are **bit-identical** to the scalar tiles — locked by a test.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{c64, Complex64};
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure `avx2` and `fma` are supported at runtime.
    // SAFETY: the only unsafe operations in the body are the AVX2/FMA
    // intrinsics enabled by `target_feature`; they are sound exactly when
    // the caller upholds the documented runtime-support contract, and all
    // loads/stores go through `&`/`&mut` slice elements (no raw-pointer
    // arithmetic beyond the element address itself).
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn tile4(
        row_ptr: &[usize],
        col_idx: &[usize],
        re: &[f64],
        im: &[f64],
        r0: usize,
        r1: usize,
        x: (&[Complex64], &[Complex64], &[Complex64], &[Complex64]),
        y: (&mut [Complex64], &mut [Complex64], &mut [Complex64], &mut [Complex64]),
    ) {
        // SAFETY: the body only calls the AVX2/FMA intrinsics the
        // `target_feature` attribute enables (the caller upholds the
        // runtime-detection contract documented on the fn), and every
        // load/store goes through bounds-checked slice indexing.
        unsafe {
            let (x0, x1, x2, x3) = x;
            let (y0, y1, y2, y3) = y;
            for i in r0..r1 {
                let mut ar = _mm256_setzero_pd();
                let mut ai = _mm256_setzero_pd();
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let vr = _mm256_set1_pd(re[k]);
                    let vi = _mm256_set1_pd(im[k]);
                    let c = col_idx[k];
                    let p0 = _mm_loadu_pd((&x0[c] as *const Complex64).cast::<f64>());
                    let p1 = _mm_loadu_pd((&x1[c] as *const Complex64).cast::<f64>());
                    let p2 = _mm_loadu_pd((&x2[c] as *const Complex64).cast::<f64>());
                    let p3 = _mm_loadu_pd((&x3[c] as *const Complex64).cast::<f64>());
                    let xr = _mm256_set_m128d(_mm_unpacklo_pd(p2, p3), _mm_unpacklo_pd(p0, p1));
                    let xi = _mm256_set_m128d(_mm_unpackhi_pd(p2, p3), _mm_unpackhi_pd(p0, p1));
                    ar = _mm256_fmadd_pd(vr, xr, ar);
                    ar = _mm256_fnmadd_pd(vi, xi, ar);
                    ai = _mm256_fmadd_pd(vr, xi, ai);
                    ai = _mm256_fmadd_pd(vi, xr, ai);
                }
                let mut rs = [0.0f64; 4];
                let mut is = [0.0f64; 4];
                _mm256_storeu_pd(rs.as_mut_ptr(), ar);
                _mm256_storeu_pd(is.as_mut_ptr(), ai);
                y0[i] = c64(rs[0], is[0]);
                y1[i] = c64(rs[1], is[1]);
                y2[i] = c64(rs[2], is[2]);
                y3[i] = c64(rs[3], is[3]);
            }
        }
    }

    /// # Safety
    /// Caller must ensure `avx2` and `fma` are supported at runtime.
    // SAFETY: same contract as `tile4` — the body's unsafety is the
    // feature-gated intrinsics plus 128-bit unaligned loads of `Complex64`
    // slice elements (`repr(C)` pair of `f64`, so the cast is layout-sound);
    // runtime `avx2`+`fma` support is the caller's obligation.
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn tile2(
        row_ptr: &[usize],
        col_idx: &[usize],
        re: &[f64],
        im: &[f64],
        r0: usize,
        r1: usize,
        x: (&[Complex64], &[Complex64]),
        y: (&mut [Complex64], &mut [Complex64]),
    ) {
        // SAFETY: same contract as `tile4` — the body only calls the SSE2/FMA
        // intrinsics the `target_feature` attribute enables (the caller upholds
        // the runtime-detection contract documented on the fn), and every
        // load/store goes through bounds-checked slice indexing.
        unsafe {
            let (x0, x1) = x;
            let (y0, y1) = y;
            for i in r0..r1 {
                let mut ar = _mm_setzero_pd();
                let mut ai = _mm_setzero_pd();
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let vr = _mm_set1_pd(re[k]);
                    let vi = _mm_set1_pd(im[k]);
                    let c = col_idx[k];
                    let p0 = _mm_loadu_pd((&x0[c] as *const Complex64).cast::<f64>());
                    let p1 = _mm_loadu_pd((&x1[c] as *const Complex64).cast::<f64>());
                    let xr = _mm_unpacklo_pd(p0, p1);
                    let xi = _mm_unpackhi_pd(p0, p1);
                    ar = _mm_fmadd_pd(vr, xr, ar);
                    ar = _mm_fnmadd_pd(vi, xi, ar);
                    ai = _mm_fmadd_pd(vr, xi, ai);
                    ai = _mm_fmadd_pd(vi, xr, ai);
                }
                let mut rs = [0.0f64; 2];
                let mut is = [0.0f64; 2];
                _mm_storeu_pd(rs.as_mut_ptr(), ar);
                _mm_storeu_pd(is.as_mut_ptr(), ai);
                y0[i] = c64(rs[0], is[0]);
                y1[i] = c64(rs[1], is[1]);
            }
        }
    }
}

/// Row-blocked fused block kernel `Y = A X` with planar values: 4/2/1-wide
/// column-group tiles inside [`ROW_BLOCK`]-row cache blocks, FMA-chain
/// accumulators per (row, column).  The 4- and 2-wide tiles dispatch on
/// [`simd_mode`] between the explicit AVX2+FMA vector tiles and the
/// portable scalar chains (bit-identical — see [`SimdMode`]); the 1-wide
/// remainder is always scalar.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmv_split_block_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &SplitValues,
    nc: usize,
    nr: usize,
    x: &[Complex64],
    y: &mut [Complex64],
    nvecs: usize,
) {
    let (re, im) = vals.planes();
    let wide = simd_mode() == SimdMode::Wide;
    let mut r0 = 0;
    while r0 < nr {
        let r1 = (r0 + ROW_BLOCK).min(nr);
        let mut j = 0;
        while j + 4 <= nvecs {
            let (x0, rest) = x[j * nc..].split_at(nc);
            let (x1, rest) = rest.split_at(nc);
            let (x2, rest) = rest.split_at(nc);
            let x3 = &rest[..nc];
            let (y0, rest) = y[j * nr..].split_at_mut(nr);
            let (y1, rest) = rest.split_at_mut(nr);
            let (y2, rest) = rest.split_at_mut(nr);
            let y3 = &mut rest[..nr];
            #[cfg(target_arch = "x86_64")]
            if wide {
                // SAFETY: `wide` implies runtime avx2+fma support.
                unsafe {
                    avx2::tile4(
                        row_ptr,
                        col_idx,
                        re,
                        im,
                        r0,
                        r1,
                        (x0, x1, x2, x3),
                        (y0, y1, y2, y3),
                    );
                }
                j += 4;
                continue;
            }
            tile4_scalar(row_ptr, col_idx, re, im, r0, r1, (x0, x1, x2, x3), (y0, y1, y2, y3));
            j += 4;
        }
        if j + 2 <= nvecs {
            let (x0, rest) = x[j * nc..].split_at(nc);
            let x1 = &rest[..nc];
            let (y0, rest) = y[j * nr..].split_at_mut(nr);
            let y1 = &mut rest[..nr];
            let mut done = false;
            #[cfg(target_arch = "x86_64")]
            if wide {
                // SAFETY: `wide` implies runtime avx2+fma support.
                unsafe {
                    avx2::tile2(row_ptr, col_idx, re, im, r0, r1, (x0, x1), (y0, y1));
                }
                done = true;
            }
            if !done {
                tile2_scalar(row_ptr, col_idx, re, im, r0, r1, (x0, x1), (y0, y1));
            }
            j += 2;
        }
        if j < nvecs {
            let xj = &x[j * nc..(j + 1) * nc];
            let yj = &mut y[j * nr..(j + 1) * nr];
            for i in r0..r1 {
                let (mut ar, mut ai) = (0.0f64, 0.0f64);
                for k in row_ptr[i]..row_ptr[i + 1] {
                    fma_mul(re[k], im[k], xj[col_idx[k]], &mut ar, &mut ai);
                }
                yj[i] = c64(ar, ai);
            }
        }
        r0 = r1;
    }
}

/// Row-blocked fused block kernel `Y = A† X` with planar values; the
/// adjoint twin of [`spmv_split_block_into`], with the same per-column
/// zero-skip guards as the interleaved scatter kernels.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmv_split_adjoint_block_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &SplitValues,
    nc: usize,
    nr: usize,
    x: &[Complex64],
    y: &mut [Complex64],
    nvecs: usize,
) {
    let (re, im) = vals.planes();
    for v in y.iter_mut() {
        *v = Complex64::ZERO;
    }
    let mut r0 = 0;
    while r0 < nr {
        let r1 = (r0 + ROW_BLOCK).min(nr);
        let mut j = 0;
        while j + 4 <= nvecs {
            let (x0, rest) = x[j * nr..].split_at(nr);
            let (x1, rest) = rest.split_at(nr);
            let (x2, rest) = rest.split_at(nr);
            let x3 = &rest[..nr];
            let (y0, rest) = y[j * nc..].split_at_mut(nc);
            let (y1, rest) = rest.split_at_mut(nc);
            let (y2, rest) = rest.split_at_mut(nc);
            let y3 = &mut rest[..nc];
            for i in r0..r1 {
                let (x0i, x1i, x2i, x3i) = (x0[i], x1[i], x2[i], x3[i]);
                let any = x0i != Complex64::ZERO
                    || x1i != Complex64::ZERO
                    || x2i != Complex64::ZERO
                    || x3i != Complex64::ZERO;
                if !any {
                    continue;
                }
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let (vr, vi) = (re[k], im[k]);
                    let c = col_idx[k];
                    if x0i != Complex64::ZERO {
                        let (mut ar, mut ai) = (y0[c].re, y0[c].im);
                        fma_mul_conj(vr, vi, x0i, &mut ar, &mut ai);
                        y0[c] = c64(ar, ai);
                    }
                    if x1i != Complex64::ZERO {
                        let (mut ar, mut ai) = (y1[c].re, y1[c].im);
                        fma_mul_conj(vr, vi, x1i, &mut ar, &mut ai);
                        y1[c] = c64(ar, ai);
                    }
                    if x2i != Complex64::ZERO {
                        let (mut ar, mut ai) = (y2[c].re, y2[c].im);
                        fma_mul_conj(vr, vi, x2i, &mut ar, &mut ai);
                        y2[c] = c64(ar, ai);
                    }
                    if x3i != Complex64::ZERO {
                        let (mut ar, mut ai) = (y3[c].re, y3[c].im);
                        fma_mul_conj(vr, vi, x3i, &mut ar, &mut ai);
                        y3[c] = c64(ar, ai);
                    }
                }
            }
            j += 4;
        }
        while j < nvecs {
            let xj = &x[j * nr..(j + 1) * nr];
            let yj = &mut y[j * nc..(j + 1) * nc];
            for i in r0..r1 {
                let xi = xj[i];
                if xi == Complex64::ZERO {
                    continue;
                }
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let c = col_idx[k];
                    let (mut ar, mut ai) = (yj[c].re, yj[c].im);
                    fma_mul_conj(re[k], im[k], xi, &mut ar, &mut ai);
                    yj[c] = c64(ar, ai);
                }
            }
            j += 1;
        }
        r0 = r1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_knob_parses() {
        assert_eq!(KernelLayout::from_name("interleaved"), Some(KernelLayout::Interleaved));
        assert_eq!(KernelLayout::from_name("SPLIT"), Some(KernelLayout::Split));
        assert_eq!(KernelLayout::from_name("planar"), Some(KernelLayout::Split));
        assert_eq!(KernelLayout::from_name("bogus"), None);
        assert_eq!(KernelLayout::default(), KernelLayout::Interleaved);
        assert_eq!(KernelLayout::Split.name(), "split");
    }

    #[test]
    fn simd_mode_reports_a_name() {
        // The resolved mode is environment/CPU dependent; only the knob
        // surface is asserted here.  Bit-identity of Wide vs Scalar is
        // locked below on x86-64.
        assert!(matches!(simd_mode().name(), "wide" | "scalar"));
        assert_eq!(SimdMode::Wide.name(), "wide");
        assert_eq!(SimdMode::Scalar.name(), "scalar");
    }

    /// A little random CSR + slab fixture (deterministic, no RNG dep).
    fn fixture(n: usize, nvecs: usize) -> (Vec<usize>, Vec<usize>, SplitValues, Vec<Complex64>) {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if (i + 3 * j) % 4 == 0 || i == j {
                    col_idx.push(j);
                    vals.push(c64(next(), next()));
                }
            }
            row_ptr.push(col_idx.len());
        }
        let x: Vec<Complex64> = (0..n * nvecs).map(|_| c64(next(), next())).collect();
        (row_ptr, col_idx, SplitValues::from_values(&vals), x)
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_tiles_are_bitwise_identical_to_scalar_tiles() {
        if !(std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma"))
        {
            eprintln!("avx2/fma not available; skipping SIMD bit-identity check");
            return;
        }
        let n = 37;
        let (row_ptr, col_idx, vals, x) = fixture(n, 4);
        let (re, im) = vals.planes();
        let (x0, rest) = x.split_at(n);
        let (x1, rest) = rest.split_at(n);
        let (x2, x3) = rest.split_at(n);

        let mut ys = vec![Complex64::ZERO; 4 * n];
        {
            let (y0, rest) = ys.split_at_mut(n);
            let (y1, rest) = rest.split_at_mut(n);
            let (y2, y3) = rest.split_at_mut(n);
            tile4_scalar(&row_ptr, &col_idx, re, im, 0, n, (x0, x1, x2, x3), (y0, y1, y2, y3));
        }
        let mut yw = vec![Complex64::ZERO; 4 * n];
        {
            let (y0, rest) = yw.split_at_mut(n);
            let (y1, rest) = rest.split_at_mut(n);
            let (y2, y3) = rest.split_at_mut(n);
            // SAFETY: feature support checked above.
            unsafe {
                avx2::tile4(&row_ptr, &col_idx, re, im, 0, n, (x0, x1, x2, x3), (y0, y1, y2, y3));
            }
        }
        assert_eq!(ys, yw, "avx2 tile4 must be bitwise identical to the scalar tile");

        let mut ys2 = vec![Complex64::ZERO; 2 * n];
        {
            let (y0, y1) = ys2.split_at_mut(n);
            tile2_scalar(&row_ptr, &col_idx, re, im, 0, n, (x0, x1), (y0, y1));
        }
        let mut yw2 = vec![Complex64::ZERO; 2 * n];
        {
            let (y0, y1) = yw2.split_at_mut(n);
            // SAFETY: feature support checked above.
            unsafe {
                avx2::tile2(&row_ptr, &col_idx, re, im, 0, n, (x0, x1), (y0, y1));
            }
        }
        assert_eq!(ys2, yw2, "avx2 tile2 must be bitwise identical to the scalar tile");
    }

    #[test]
    fn split_values_refill_reuses_planes() {
        let vals = [c64(1.0, 2.0), c64(-3.0, 0.5)];
        let mut s = SplitValues::from_values(&vals);
        assert_eq!(s.len(), 2);
        let (re, im) = s.planes();
        assert_eq!(re, &[1.0, -3.0]);
        assert_eq!(im, &[2.0, 0.5]);
        s.refill(&vals[..1]);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
