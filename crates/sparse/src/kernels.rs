//! Split-layout (planar) complex CSR kernels — the `KernelLayout`
//! experiment.
//!
//! A complex CSR matrix can store its entries two ways:
//!
//! * **Interleaved** — one `Vec<Complex64>` with `re, im` adjacent in
//!   memory.  This is the historical layout; every kernel that reads it
//!   reproduces the exact accumulation order of the original scalar loops,
//!   so results are **bitwise identical** to every previously shipped
//!   release.  It stays the default.
//! * **Split** — two parallel `f64` planes (`re[]`, `im[]`).  The complex
//!   multiply-accumulate then decomposes into four independent real FMA
//!   chains per entry (`f64::mul_add`), which the compiler can keep in
//!   vector registers without the shuffle traffic interleaved complex
//!   arithmetic needs.  Fused rounding makes the results differ from the
//!   interleaved kernels in the last bits — agreement is guaranteed to
//!   `≤ 1e-14` columnwise (relative to the column norm), **not** bitwise,
//!   which is why the layout is opt-in (`CBS_KERNEL_LAYOUT=split`).
//!
//! Both layouts share the same traversal schedule: row-blocked outer loops
//! (one block of rows' index/value stream stays cache-hot across all
//! column groups of a block right-hand side) around 4/2/1-wide column-group
//! SpMM tiles.  The raw interleaved kernels live in [`crate::csr`]; this
//! module holds the planar value store and its kernels.

use cbs_linalg::{c64, Complex64};

/// Rows per cache block of the blocked SpMV/SpMM traversals.  One block's
/// index + value stream (≈ `ROW_BLOCK · nnz/row · 24 B` interleaved) fits
/// comfortably in L2 for the stencil-dominated operators of this crate, so
/// re-streaming it once per column group is served from cache.
pub(crate) const ROW_BLOCK: usize = 512;

/// Which value layout the assembled-operator kernels run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelLayout {
    /// Interleaved `Complex64` values — bitwise-compatible default.
    #[default]
    Interleaved,
    /// Planar `re[]` / `im[]` values with FMA-chain kernels (`≤ 1e-14`
    /// columnwise agreement, not bitwise).
    Split,
}

impl KernelLayout {
    /// Parse a layout name: `interleaved` | `split`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "interleaved" | "default" => Some(Self::Interleaved),
            "split" | "planar" => Some(Self::Split),
            _ => None,
        }
    }

    /// Read the layout from the `CBS_KERNEL_LAYOUT` environment variable,
    /// falling back to the bitwise-compatible [`Interleaved`](Self::Interleaved)
    /// default when unset or unrecognized.
    pub fn from_env() -> Self {
        std::env::var("CBS_KERNEL_LAYOUT")
            .ok()
            .and_then(|v| Self::from_name(&v))
            .unwrap_or_default()
    }

    /// Canonical knob value of this layout.
    pub fn name(self) -> &'static str {
        match self {
            Self::Interleaved => "interleaved",
            Self::Split => "split",
        }
    }
}

/// Planar storage of a CSR value array: two `f64` planes parallel to the
/// pattern's `col_idx`.
#[derive(Clone, Debug, Default)]
pub struct SplitValues {
    re: Vec<f64>,
    im: Vec<f64>,
}

impl SplitValues {
    /// Empty planes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Split an interleaved value array into planes.
    pub fn from_values(values: &[Complex64]) -> Self {
        let mut s = Self::new();
        s.refill(values);
        s
    }

    /// Refill the planes from an interleaved value array, reusing the
    /// existing allocations.
    pub fn refill(&mut self, values: &[Complex64]) {
        self.re.clear();
        self.im.clear();
        self.re.extend(values.iter().map(|v| v.re));
        self.im.extend(values.iter().map(|v| v.im));
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.re.len()
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// The two planes `(re, im)`.
    pub fn planes(&self) -> (&[f64], &[f64]) {
        (&self.re, &self.im)
    }

    /// Empty planes backed by recycled allocations from the thread-local
    /// scratch pool (refill before use).
    pub(crate) fn take() -> Self {
        Self { re: crate::scratch::take_f64_scratch(), im: crate::scratch::take_f64_scratch() }
    }

    /// Return the plane allocations to the thread-local scratch pool.
    pub(crate) fn recycle(self) {
        crate::scratch::recycle_f64_scratch(self.re);
        crate::scratch::recycle_f64_scratch(self.im);
    }
}

// Four real FMA chains accumulating `acc += v * x` with `v = (vr, vi)`:
//   re += vr·x.re − vi·x.im,   im += vr·x.im + vi·x.re
#[inline(always)]
fn fma_mul(vr: f64, vi: f64, x: Complex64, ar: &mut f64, ai: &mut f64) {
    *ar = vr.mul_add(x.re, *ar);
    *ar = (-vi).mul_add(x.im, *ar);
    *ai = vr.mul_add(x.im, *ai);
    *ai = vi.mul_add(x.re, *ai);
}

// `acc += conj(v) * x` with `conj(v) = (vr, −vi)`:
//   re += vr·x.re + vi·x.im,   im += vr·x.im − vi·x.re
#[inline(always)]
fn fma_mul_conj(vr: f64, vi: f64, x: Complex64, ar: &mut f64, ai: &mut f64) {
    *ar = vr.mul_add(x.re, *ar);
    *ar = vi.mul_add(x.im, *ar);
    *ai = vr.mul_add(x.im, *ai);
    *ai = (-vi).mul_add(x.re, *ai);
}

/// `y = A x` over a raw CSR pattern with planar values (serial kernel).
pub(crate) fn spmv_split_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &SplitValues,
    x: &[Complex64],
    y: &mut [Complex64],
) {
    let (re, im) = vals.planes();
    for (i, yi) in y.iter_mut().enumerate() {
        let (mut ar, mut ai) = (0.0f64, 0.0f64);
        for k in row_ptr[i]..row_ptr[i + 1] {
            fma_mul(re[k], im[k], x[col_idx[k]], &mut ar, &mut ai);
        }
        *yi = c64(ar, ai);
    }
}

/// `y = A† x` over a raw CSR pattern with planar values (serial scatter
/// kernel).
pub(crate) fn spmv_split_adjoint_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &SplitValues,
    x: &[Complex64],
    y: &mut [Complex64],
) {
    let (re, im) = vals.planes();
    for v in y.iter_mut() {
        *v = Complex64::ZERO;
    }
    for (i, &xi) in x.iter().enumerate() {
        if xi == Complex64::ZERO {
            continue;
        }
        for k in row_ptr[i]..row_ptr[i + 1] {
            let c = col_idx[k];
            let (mut ar, mut ai) = (y[c].re, y[c].im);
            fma_mul_conj(re[k], im[k], xi, &mut ar, &mut ai);
            y[c] = c64(ar, ai);
        }
    }
}

/// Row-blocked fused block kernel `Y = A X` with planar values: 4/2/1-wide
/// column-group tiles inside [`ROW_BLOCK`]-row cache blocks, FMA-chain
/// accumulators per (row, column).
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmv_split_block_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &SplitValues,
    nc: usize,
    nr: usize,
    x: &[Complex64],
    y: &mut [Complex64],
    nvecs: usize,
) {
    let (re, im) = vals.planes();
    let mut r0 = 0;
    while r0 < nr {
        let r1 = (r0 + ROW_BLOCK).min(nr);
        let mut j = 0;
        while j + 4 <= nvecs {
            let (x0, rest) = x[j * nc..].split_at(nc);
            let (x1, rest) = rest.split_at(nc);
            let (x2, rest) = rest.split_at(nc);
            let x3 = &rest[..nc];
            let (y0, rest) = y[j * nr..].split_at_mut(nr);
            let (y1, rest) = rest.split_at_mut(nr);
            let (y2, rest) = rest.split_at_mut(nr);
            let y3 = &mut rest[..nr];
            for i in r0..r1 {
                let (mut a0r, mut a0i, mut a1r, mut a1i) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                let (mut a2r, mut a2i, mut a3r, mut a3i) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let (vr, vi) = (re[k], im[k]);
                    let c = col_idx[k];
                    fma_mul(vr, vi, x0[c], &mut a0r, &mut a0i);
                    fma_mul(vr, vi, x1[c], &mut a1r, &mut a1i);
                    fma_mul(vr, vi, x2[c], &mut a2r, &mut a2i);
                    fma_mul(vr, vi, x3[c], &mut a3r, &mut a3i);
                }
                y0[i] = c64(a0r, a0i);
                y1[i] = c64(a1r, a1i);
                y2[i] = c64(a2r, a2i);
                y3[i] = c64(a3r, a3i);
            }
            j += 4;
        }
        if j + 2 <= nvecs {
            let (x0, rest) = x[j * nc..].split_at(nc);
            let x1 = &rest[..nc];
            let (y0, rest) = y[j * nr..].split_at_mut(nr);
            let y1 = &mut rest[..nr];
            for i in r0..r1 {
                let (mut a0r, mut a0i, mut a1r, mut a1i) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let (vr, vi) = (re[k], im[k]);
                    let c = col_idx[k];
                    fma_mul(vr, vi, x0[c], &mut a0r, &mut a0i);
                    fma_mul(vr, vi, x1[c], &mut a1r, &mut a1i);
                }
                y0[i] = c64(a0r, a0i);
                y1[i] = c64(a1r, a1i);
            }
            j += 2;
        }
        if j < nvecs {
            let xj = &x[j * nc..(j + 1) * nc];
            let yj = &mut y[j * nr..(j + 1) * nr];
            for i in r0..r1 {
                let (mut ar, mut ai) = (0.0f64, 0.0f64);
                for k in row_ptr[i]..row_ptr[i + 1] {
                    fma_mul(re[k], im[k], xj[col_idx[k]], &mut ar, &mut ai);
                }
                yj[i] = c64(ar, ai);
            }
        }
        r0 = r1;
    }
}

/// Row-blocked fused block kernel `Y = A† X` with planar values; the
/// adjoint twin of [`spmv_split_block_into`], with the same per-column
/// zero-skip guards as the interleaved scatter kernels.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmv_split_adjoint_block_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    vals: &SplitValues,
    nc: usize,
    nr: usize,
    x: &[Complex64],
    y: &mut [Complex64],
    nvecs: usize,
) {
    let (re, im) = vals.planes();
    for v in y.iter_mut() {
        *v = Complex64::ZERO;
    }
    let mut r0 = 0;
    while r0 < nr {
        let r1 = (r0 + ROW_BLOCK).min(nr);
        let mut j = 0;
        while j + 4 <= nvecs {
            let (x0, rest) = x[j * nr..].split_at(nr);
            let (x1, rest) = rest.split_at(nr);
            let (x2, rest) = rest.split_at(nr);
            let x3 = &rest[..nr];
            let (y0, rest) = y[j * nc..].split_at_mut(nc);
            let (y1, rest) = rest.split_at_mut(nc);
            let (y2, rest) = rest.split_at_mut(nc);
            let y3 = &mut rest[..nc];
            for i in r0..r1 {
                let (x0i, x1i, x2i, x3i) = (x0[i], x1[i], x2[i], x3[i]);
                let any = x0i != Complex64::ZERO
                    || x1i != Complex64::ZERO
                    || x2i != Complex64::ZERO
                    || x3i != Complex64::ZERO;
                if !any {
                    continue;
                }
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let (vr, vi) = (re[k], im[k]);
                    let c = col_idx[k];
                    if x0i != Complex64::ZERO {
                        let (mut ar, mut ai) = (y0[c].re, y0[c].im);
                        fma_mul_conj(vr, vi, x0i, &mut ar, &mut ai);
                        y0[c] = c64(ar, ai);
                    }
                    if x1i != Complex64::ZERO {
                        let (mut ar, mut ai) = (y1[c].re, y1[c].im);
                        fma_mul_conj(vr, vi, x1i, &mut ar, &mut ai);
                        y1[c] = c64(ar, ai);
                    }
                    if x2i != Complex64::ZERO {
                        let (mut ar, mut ai) = (y2[c].re, y2[c].im);
                        fma_mul_conj(vr, vi, x2i, &mut ar, &mut ai);
                        y2[c] = c64(ar, ai);
                    }
                    if x3i != Complex64::ZERO {
                        let (mut ar, mut ai) = (y3[c].re, y3[c].im);
                        fma_mul_conj(vr, vi, x3i, &mut ar, &mut ai);
                        y3[c] = c64(ar, ai);
                    }
                }
            }
            j += 4;
        }
        while j < nvecs {
            let xj = &x[j * nr..(j + 1) * nr];
            let yj = &mut y[j * nc..(j + 1) * nc];
            for i in r0..r1 {
                let xi = xj[i];
                if xi == Complex64::ZERO {
                    continue;
                }
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let c = col_idx[k];
                    let (mut ar, mut ai) = (yj[c].re, yj[c].im);
                    fma_mul_conj(re[k], im[k], xi, &mut ar, &mut ai);
                    yj[c] = c64(ar, ai);
                }
            }
            j += 1;
        }
        r0 = r1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_knob_parses() {
        assert_eq!(KernelLayout::from_name("interleaved"), Some(KernelLayout::Interleaved));
        assert_eq!(KernelLayout::from_name("SPLIT"), Some(KernelLayout::Split));
        assert_eq!(KernelLayout::from_name("planar"), Some(KernelLayout::Split));
        assert_eq!(KernelLayout::from_name("bogus"), None);
        assert_eq!(KernelLayout::default(), KernelLayout::Interleaved);
        assert_eq!(KernelLayout::Split.name(), "split");
    }

    #[test]
    fn split_values_refill_reuses_planes() {
        let vals = [c64(1.0, 2.0), c64(-3.0, 0.5)];
        let mut s = SplitValues::from_values(&vals);
        assert_eq!(s.len(), 2);
        let (re, im) = s.planes();
        assert_eq!(re, &[1.0, -3.0]);
        assert_eq!(im, &[2.0, 0.5]);
        s.refill(&vals[..1]);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
