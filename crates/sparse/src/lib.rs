//! # cbs-sparse
//!
//! Sparse matrices and matrix-free linear operators for the CBS workspace.
//!
//! The paper's eigensolver never forms the Kohn-Sham Hamiltonian densely: it
//! only needs `H x` (and `H† x`).  This crate provides
//!
//! * [`LinearOperator`] — the matrix-free operator trait all solvers consume,
//! * [`CsrMatrix`] / [`CooBuilder`] — complex compressed-sparse-row storage,
//! * [`LowRankOp`] / [`SparseVec`] — factored non-local projector operators,
//! * [`AssembledPattern`] / [`AssembledOp`] — the shifted QEP operator
//!   `P(z)` materialized as one CSR by numeric refill of a shared symbolic
//!   union pattern (one storage traversal per matvec instead of three),
//! * [`Ilu0`] / [`Preconditioner`] — complex ILU(0) with level-scheduled
//!   forward/backward and adjoint triangular solves for the preconditioned
//!   dual BiCG,
//! * [`FactoredProjector`] — the non-local projector part of `P(z)` kept in
//!   factored low-rank form alongside an assembled CSR part,
//! * [`SmwPrecond`] — the Sherman-Morrison-Woodbury completion folding that
//!   low-rank tail into the ILU(0) apply (`M ≈ P(z)` in full),
//! * [`KernelLayout`] / [`SplitValues`] — the interleaved-vs-planar value
//!   layout experiment of the CSR kernels (`CBS_KERNEL_LAYOUT`),
//! * composition helpers ([`SumOp`], [`ScaledOp`], [`ShiftedOp`], [`DenseOp`],
//!   [`IdentityOp`]) used to build the QEP operator `P(z)`.

#![warn(missing_docs)]

pub mod assembled;
pub mod csr;
pub mod kernels;
pub mod lowrank;
pub mod ops;
pub mod projector;
pub mod scratch;
pub mod smw;
pub mod timers;

pub use assembled::{AssembledOp, AssembledPattern, Ilu0, TriSchedule};
pub use csr::{CooBuilder, CsrMatrix};
pub use kernels::{simd_mode, KernelLayout, SimdMode, SplitValues};
pub use lowrank::{LowRankOp, RankOneTerm, SparseVec};
pub use ops::{
    adjoint_defect, DenseOp, IdentityOp, LinearOperator, Preconditioner, ScaledOp, ShiftedOp, SumOp,
};
pub use projector::FactoredProjector;
pub use scratch::{recycle_scratch, take_scratch, with_scratch};
pub use smw::SmwPrecond;
pub use timers::{stage_delta, stage_snapshot, StageTimes};
