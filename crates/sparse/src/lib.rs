//! # cbs-sparse
//!
//! Sparse matrices and matrix-free linear operators for the CBS workspace.
//!
//! The paper's eigensolver never forms the Kohn-Sham Hamiltonian densely: it
//! only needs `H x` (and `H† x`).  This crate provides
//!
//! * [`LinearOperator`] — the matrix-free operator trait all solvers consume,
//! * [`CsrMatrix`] / [`CooBuilder`] — complex compressed-sparse-row storage,
//! * [`LowRankOp`] / [`SparseVec`] — factored non-local projector operators,
//! * [`AssembledPattern`] / [`AssembledOp`] — the shifted QEP operator
//!   `P(z)` materialized as one CSR by numeric refill of a shared symbolic
//!   union pattern (one storage traversal per matvec instead of three),
//! * [`Ilu0`] / [`Preconditioner`] — complex ILU(0) with forward/backward
//!   and adjoint triangular solves for the preconditioned dual BiCG,
//! * composition helpers ([`SumOp`], [`ScaledOp`], [`ShiftedOp`], [`DenseOp`],
//!   [`IdentityOp`]) used to build the QEP operator `P(z)`.

#![warn(missing_docs)]

pub mod assembled;
pub mod csr;
pub mod lowrank;
pub mod ops;
pub mod scratch;

pub use assembled::{AssembledOp, AssembledPattern, Ilu0};
pub use csr::{CooBuilder, CsrMatrix};
pub use lowrank::{LowRankOp, RankOneTerm, SparseVec};
pub use ops::{
    adjoint_defect, DenseOp, IdentityOp, LinearOperator, Preconditioner, ScaledOp, ShiftedOp, SumOp,
};
pub use scratch::with_scratch;
