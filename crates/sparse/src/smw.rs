//! Sherman-Morrison-Woodbury completion of the assembled-ILU(0)
//! preconditioner: fold the [`FactoredProjector`] low-rank tail into the
//! triangular solves so `M` approximates the *full* shifted operator
//! `P(z)`, not just its sparse CSR part.
//!
//! The factored data path keeps `P(z) = A(z) + T(z)` with `A(z)` the
//! assembled CSR over the sparse Hamiltonian blocks and
//! `T(z) = −V₀₀ − z·V₀₁ − z⁻¹·V₀₁†` the rank-`k` projector tail.  The plain
//! `AssembledIlu0` policy factors `A(z)` only, so every Kleinman-Bylander
//! projector the ILU never sees costs BiCG iterations.  Writing the tail as
//! `T = U V†` (each rank-one term `α·c·|u⟩⟨v|` contributes the scaled ket
//! `α·c·u` as a column of `U` and the bra `v` as a column of `V`), the
//! Sherman-Morrison-Woodbury identity gives an exact apply of the completed
//! preconditioner `M = LU + U V†`:
//!
//! ```text
//! M⁻¹ r = A⁻¹r − (A⁻¹U) · C⁻¹ · V†(A⁻¹r),     C = I + V†A⁻¹U  (k×k)
//! ```
//!
//! with `A⁻¹` the ILU(0) sweeps.  `A⁻¹U`, `A⁻†V` and the LU factorization
//! of the capacitance `C` (via [`cbs_linalg::LuDecomposition`]) are computed
//! **once per quadrature node** at factor time — through the *blocked*
//! multi-RHS sweeps ([`Preconditioner::solve_block`]), so the `2k` setup
//! solves stream the factor values per level instead of per column.  Each
//! apply then costs the usual triangular sweeps plus the correction:
//! `V†z` / `U†z` accumulate over the **sparse** Kleinman-Bylander bras and
//! kets (`O(nnz(V))`, not `O(nk)`), a `k×k` capacitance solve, and one
//! `O(nk)` dense rank update.  The adjoint apply reuses the *same*
//! capacitance factorization through `(C)† = I + U†A⁻†V` — the paper's
//! dual-circle trick survives the completion just like it survives the ILU
//! itself.
//!
//! Degenerate cases degrade gracefully to the plain ILU(0) apply: an empty
//! projector (rank 0, e.g. the pattern-only attachments of the policy
//! matrix) or a singular capacitance matrix simply drop the correction.

use cbs_linalg::{CMatrix, CVector, Complex64, LuDecomposition};

use crate::assembled::Ilu0;
use crate::ops::Preconditioner;
use crate::projector::FactoredProjector;
use crate::timers::time_ilu_factor;

/// The SMW-completed ILU(0) preconditioner `M = LU + U V†` (see the module
/// docs).  Built per quadrature node via
/// [`AssembledOp::ilu0_smw`](crate::AssembledOp::ilu0_smw); applies through
/// the [`Preconditioner`] seam, including the blocked multi-RHS entry points
/// (ILU blocked sweeps plus per-column corrections — bitwise identical to
/// the per-column path).
pub struct SmwPrecond<'p> {
    ilu: Ilu0<'p>,
    tail: Option<SmwTail>,
}

/// The low-rank completion data, owned (nothing borrows the projector
/// after construction).  `U`/`V` keep their projector sparsity (the
/// apply-side `V†z` / `U†z` products walk only the stored entries); the
/// solved factors `A⁻¹U` / `A⁻†V` are dense column-major slabs.
struct SmwTail {
    /// Rank of the folded tail.
    k: usize,
    /// Sparse columns of `U` (the scaled kets of `T(z) = U V†`), ascending
    /// row index per column.
    u_cols: Vec<Vec<(usize, Complex64)>>,
    /// Sparse columns of `V` (the bras), ascending row index per column.
    v_cols: Vec<Vec<(usize, Complex64)>>,
    /// `A⁻¹U` as a column-major `n×k` slab, precomputed with the blocked
    /// ILU sweeps.
    aiu: Vec<Complex64>,
    /// `A⁻†V` as a column-major `n×k` slab, precomputed with the blocked
    /// adjoint ILU sweeps.
    adv: Vec<Complex64>,
    /// LU factorization of the capacitance `C = I + V†A⁻¹U`.
    cap: LuDecomposition,
}

impl<'p> SmwPrecond<'p> {
    /// Fold `projector`'s tail at shift `z` into `ilu`.  Counts toward the
    /// `IluFactor` trace stage (it is per-node factorization work); the `k`
    /// embedded triangular sweeps count toward `TriSweep` as usual.
    pub fn new(ilu: Ilu0<'p>, projector: &FactoredProjector, z: Complex64) -> Self {
        let n = ilu.dim();
        let k = projector.rank();
        if k == 0 {
            return Self { ilu, tail: None };
        }
        assert_eq!(projector.dim(), n, "SMW: projector/ILU dimension mismatch");
        let (u_cols, v_cols, u_slab, v_slab) = time_ilu_factor(|| {
            // Scatter the rank-one terms into sparse factor columns (the
            // apply-side products walk these) and column-major dense slabs
            // (the blocked setup sweeps consume these), in the same
            // factor-and-term order the hot-loop accumulators stream:
            // V₀₀ (scale −1), V₀₁ (−z), V₀₁† (−z⁻¹).
            let mut u_cols: Vec<Vec<(usize, Complex64)>> = Vec::with_capacity(k); // cbs-audit: allow(A001) reason="SMW factor setup, memoized once per (pattern, z) node"
            let mut v_cols: Vec<Vec<(usize, Complex64)>> = Vec::with_capacity(k); // cbs-audit: allow(A001) reason="SMW factor setup, memoized once per (pattern, z) node"
            let mut u_slab = vec![Complex64::ZERO; n * k]; // cbs-audit: allow(A001) reason="SMW factor setup, memoized once per (pattern, z) node"
            let mut v_slab = vec![Complex64::ZERO; n * k]; // cbs-audit: allow(A001) reason="SMW factor setup, memoized once per (pattern, z) node"
            let mut m = 0;
            let factors = [
                (projector.vnl00(), Complex64::real(-1.0)),
                (projector.vnl01(), -z),
                (projector.vnl10(), -z.inv()),
            ];
            for (op, alpha) in factors {
                for term in op.terms() {
                    let s = alpha * term.coeff;
                    let uc: Vec<(usize, Complex64)> =
                        term.ket.iter().map(|(i, val)| (i, s * val)).collect();
                    let vc: Vec<(usize, Complex64)> = term.bra.iter().collect();
                    for &(i, val) in &uc {
                        u_slab[m * n + i] = val;
                    }
                    for &(i, val) in &vc {
                        v_slab[m * n + i] = val;
                    }
                    u_cols.push(uc);
                    v_cols.push(vc);
                    m += 1;
                }
            }
            debug_assert_eq!(m, k, "SMW: term count drifted from projector rank");
            (u_cols, v_cols, u_slab, v_slab)
        });
        // A⁻¹U and A⁻†V through the blocked multi-RHS sweeps: the factor
        // values stream once per level across all k columns instead of
        // re-walking the pattern 2k times.
        let mut aiu = vec![Complex64::ZERO; n * k]; // cbs-audit: allow(A001) reason="once per (pattern, z) factorization; k << n dense slabs"
        let mut adv = vec![Complex64::ZERO; n * k]; // cbs-audit: allow(A001) reason="once per (pattern, z) factorization; k << n dense slabs"
        ilu.solve_block(&u_slab, &mut aiu, k);
        ilu.solve_adjoint_block(&v_slab, &mut adv, k);
        let tail = time_ilu_factor(|| {
            // Capacitance C = I + V†·(A⁻¹U), factored once per node; the
            // V† rows contract over the sparse bra entries only.
            let mut cap = CMatrix::zeros(k, k);
            for (m1, vc) in v_cols.iter().enumerate() {
                let row = cap.row_mut(m1);
                for (m2, ac) in aiu.chunks_exact(n).enumerate() {
                    let mut acc = Complex64::ZERO;
                    for &(i, val) in vc {
                        acc += val.conj() * ac[i];
                    }
                    row[m2] = acc;
                }
                row[m1] += Complex64::real(1.0);
            }
            // A singular capacitance means the completed M is singular at
            // this shift; dropping the correction keeps the (nonsingular)
            // plain ILU apply rather than poisoning the solve.
            LuDecomposition::new(&cap).ok().map(|cap| SmwTail { k, u_cols, v_cols, aiu, adv, cap })
        });
        Self { ilu, tail }
    }

    /// Rank of the folded tail (0 when the correction is inactive).
    pub fn rank(&self) -> usize {
        self.tail.as_ref().map_or(0, |t| t.k)
    }

    /// `true` when the low-rank completion is active (non-empty projector
    /// and nonsingular capacitance); `false` means plain ILU(0) behavior.
    pub fn is_complete(&self) -> bool {
        self.tail.is_some()
    }

    /// Subtract the low-rank correction from an ILU solve result in place:
    /// `z ← z − (A⁻¹U)·C⁻¹·(V†z)`.  `V†z` walks only the sparse bra
    /// entries; the rank update streams the solved slab column by column.
    fn correct(&self, z: &mut [Complex64]) {
        let Some(t) = &self.tail else { return };
        let n = z.len();
        let mut w = CVector::zeros(t.k);
        for (wm, vc) in w.as_mut_slice().iter_mut().zip(&t.v_cols) {
            let mut acc = Complex64::ZERO;
            for &(i, val) in vc {
                acc += val.conj() * z[i];
            }
            *wm = acc;
        }
        let tv = t.cap.solve(&w);
        for (&tm, ac) in tv.as_slice().iter().zip(t.aiu.chunks_exact(n)) {
            if tm != Complex64::ZERO {
                for (zi, &a) in z.iter_mut().zip(ac) {
                    *zi -= a * tm;
                }
            }
        }
    }

    /// The adjoint correction: `z ← z − (A⁻†V)·C⁻†·(U†z)`, with the same
    /// sparse-contraction / slab-streaming shape as
    /// [`correct`](Self::correct).
    fn correct_adjoint(&self, z: &mut [Complex64]) {
        let Some(t) = &self.tail else { return };
        let n = z.len();
        let mut w = CVector::zeros(t.k);
        for (wm, uc) in w.as_mut_slice().iter_mut().zip(&t.u_cols) {
            let mut acc = Complex64::ZERO;
            for &(i, val) in uc {
                acc += val.conj() * z[i];
            }
            *wm = acc;
        }
        let tv = t.cap.solve_adjoint(&w);
        for (&tm, ac) in tv.as_slice().iter().zip(t.adv.chunks_exact(n)) {
            if tm != Complex64::ZERO {
                for (zi, &a) in z.iter_mut().zip(ac) {
                    *zi -= a * tm;
                }
            }
        }
    }
}

impl Preconditioner for SmwPrecond<'_> {
    fn dim(&self) -> usize {
        self.ilu.dim()
    }

    fn solve(&self, r: &[Complex64], z: &mut [Complex64]) {
        self.ilu.solve(r, z);
        self.correct(z);
    }

    fn solve_adjoint(&self, r: &[Complex64], z: &mut [Complex64]) {
        self.ilu.solve_adjoint(r, z);
        self.correct_adjoint(z);
    }

    fn solve_block(&self, r: &[Complex64], z: &mut [Complex64], nvecs: usize) {
        self.ilu.solve_block(r, z, nvecs);
        if self.tail.is_some() {
            let n = self.ilu.dim();
            for zc in z.chunks_exact_mut(n).take(nvecs) {
                self.correct(zc);
            }
        }
    }

    fn solve_adjoint_block(&self, r: &[Complex64], z: &mut [Complex64], nvecs: usize) {
        self.ilu.solve_adjoint_block(r, z, nvecs);
        if self.tail.is_some() {
            let n = self.ilu.dim();
            for zc in z.chunks_exact_mut(n).take(nvecs) {
                self.correct_adjoint(zc);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CooBuilder;
    use crate::lowrank::{LowRankOp, SparseVec};
    use cbs_linalg::{c64, inverse, solve};
    use rand::SeedableRng;

    /// A random diagonally-dominant sparse matrix with a full diagonal
    /// (sorted columns), ILU-friendly.
    fn random_csr(n: usize, seed: u64) -> crate::CsrMatrix {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut b = CooBuilder::new(n, n);
        for i in 0..n {
            b.push(i, i, c64(3.0 + rand::Rng::gen_range(&mut rng, 0.0..1.0), 0.5));
            for _ in 0..3 {
                let j = rand::Rng::gen_range(&mut rng, 0..n);
                if j != i {
                    b.push(
                        i,
                        j,
                        c64(
                            rand::Rng::gen_range(&mut rng, -0.4..0.4),
                            rand::Rng::gen_range(&mut rng, -0.4..0.4),
                        ),
                    );
                }
            }
        }
        b.build()
    }

    fn sample_projector(n: usize, seed: u64) -> FactoredProjector {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut sparse_vec = |nnz: usize| {
            let entries: Vec<(usize, Complex64)> = (0..nnz)
                .map(|_| {
                    (
                        rand::Rng::gen_range(&mut rng, 0..n),
                        c64(
                            rand::Rng::gen_range(&mut rng, -0.5..0.5),
                            rand::Rng::gen_range(&mut rng, -0.5..0.5),
                        ),
                    )
                })
                .collect();
            SparseVec::new(entries)
        };
        let mut vnl00 = LowRankOp::new(n, n);
        let p = sparse_vec(3);
        vnl00.push(p.clone(), p, c64(0.9, 0.0));
        let mut vnl01 = LowRankOp::new(n, n);
        vnl01.push(sparse_vec(2), sparse_vec(3), c64(0.4, -0.2));
        FactoredProjector::new(vnl00, vnl01)
    }

    /// Recover the dense matrix whose inverse action `ilu.solve` applies.
    fn dense_from_inverse_action(ilu: &Ilu0, n: usize) -> CMatrix {
        let mut minv = CMatrix::zeros(n, n);
        let mut e = vec![Complex64::ZERO; n];
        let mut col = vec![Complex64::ZERO; n];
        for j in 0..n {
            e[j] = Complex64::real(1.0);
            ilu.solve(&e, &mut col);
            e[j] = Complex64::ZERO;
            for (i, &ci) in col.iter().enumerate() {
                minv.row_mut(i)[j] = ci;
            }
        }
        inverse(&minv).expect("ILU action must be invertible")
    }

    /// Dense `U V†` tail in the same scale convention as `SmwPrecond`.
    fn dense_tail(p: &FactoredProjector, z: Complex64, n: usize) -> CMatrix {
        let mut t = CMatrix::zeros(n, n);
        let factors = [(p.vnl00(), Complex64::real(-1.0)), (p.vnl01(), -z), (p.vnl10(), -z.inv())];
        for (op, alpha) in factors {
            for term in op.terms() {
                let s = alpha * term.coeff;
                for (i, ui) in term.ket.iter() {
                    for (j, vj) in term.bra.iter() {
                        t.row_mut(i)[j] += s * ui * vj.conj();
                    }
                }
            }
        }
        t
    }

    #[test]
    fn smw_solve_matches_dense_woodbury() {
        let n = 12;
        let a = random_csr(n, 7);
        let proj = sample_projector(n, 11);
        let z = c64(0.8, 0.6);
        let ilu_ref = Ilu0::from_csr(&a);
        let lu_dense = dense_from_inverse_action(&ilu_ref, n);
        let mut m_full = lu_dense.clone();
        let tail = dense_tail(&proj, z, n);
        for i in 0..n {
            for j in 0..n {
                m_full.row_mut(i)[j] += tail.row(i)[j];
            }
        }

        let smw = SmwPrecond::new(Ilu0::from_csr(&a), &proj, z);
        assert!(smw.is_complete());
        assert_eq!(smw.rank(), proj.rank());
        assert_eq!(smw.dim(), n);

        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let r = CVector::random(n, &mut rng);
        let mut got = vec![Complex64::ZERO; n];
        smw.solve(r.as_slice(), &mut got);
        let want = solve(&m_full, &r).expect("dense M solve");
        for (i, (&g, &w)) in got.iter().zip(want.as_slice()).enumerate() {
            assert!(
                (g - w).abs() < 1e-9,
                "SMW solve deviates from dense Woodbury at {i}: {g:?} vs {w:?}"
            );
        }

        // Adjoint: x solving M† x = r.
        let m_adj = m_full.adjoint();
        let mut got_adj = vec![Complex64::ZERO; n];
        smw.solve_adjoint(r.as_slice(), &mut got_adj);
        let want_adj = solve(&m_adj, &r).expect("dense M† solve");
        for (i, (&g, &w)) in got_adj.iter().zip(want_adj.as_slice()).enumerate() {
            assert!((g - w).abs() < 1e-9, "SMW adjoint solve deviates from dense Woodbury at {i}");
        }
    }

    #[test]
    fn smw_block_solves_are_bitwise_per_column() {
        let n = 10;
        let a = random_csr(n, 21);
        let proj = sample_projector(n, 5);
        let smw = SmwPrecond::new(Ilu0::from_csr(&a), &proj, c64(1.1, -0.3));
        let nvecs = 3;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let r: Vec<Complex64> = CVector::random(n * nvecs, &mut rng).into_vec();
        let mut z_block = vec![Complex64::ZERO; n * nvecs];
        smw.solve_block(&r, &mut z_block, nvecs);
        let mut z_adj_block = vec![Complex64::ZERO; n * nvecs];
        smw.solve_adjoint_block(&r, &mut z_adj_block, nvecs);
        for c in 0..nvecs {
            let mut z_col = vec![Complex64::ZERO; n];
            smw.solve(&r[c * n..(c + 1) * n], &mut z_col);
            assert_eq!(&z_block[c * n..(c + 1) * n], &z_col[..], "solve_block col {c}");
            smw.solve_adjoint(&r[c * n..(c + 1) * n], &mut z_col);
            assert_eq!(&z_adj_block[c * n..(c + 1) * n], &z_col[..], "adjoint block col {c}");
        }
    }

    #[test]
    fn empty_projector_degrades_to_plain_ilu_bitwise() {
        let n = 9;
        let a = random_csr(n, 33);
        let proj = FactoredProjector::new(LowRankOp::new(n, n), LowRankOp::new(n, n));
        let smw = SmwPrecond::new(Ilu0::from_csr(&a), &proj, c64(0.7, 0.4));
        assert!(!smw.is_complete());
        assert_eq!(smw.rank(), 0);
        let plain = Ilu0::from_csr(&a);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let r: Vec<Complex64> = CVector::random(n, &mut rng).into_vec();
        let (mut zs, mut zp) = (vec![Complex64::ZERO; n], vec![Complex64::ZERO; n]);
        smw.solve(&r, &mut zs);
        plain.solve(&r, &mut zp);
        assert_eq!(zs, zp, "rank-0 SMW must be bitwise the plain ILU solve");
        smw.solve_adjoint(&r, &mut zs);
        plain.solve_adjoint(&r, &mut zp);
        assert_eq!(zs, zp, "rank-0 SMW adjoint must be bitwise the plain ILU adjoint");
    }
}
