//! Low-rank operators `Σ_i c_i |u_i⟩⟨v_i|` with sparsely supported factors.
//!
//! This is the natural representation of the separable (Kleinman-Bylander)
//! non-local pseudopotential: each projector lives on the grid points inside
//! a cutoff sphere around its atom, so both the "ket" and "bra" factors are
//! sparse vectors.  Keeping the operator in factored form preserves the
//! O(N) application cost that the paper's Hamiltonian-times-vector kernel
//! depends on.

use serde::{Deserialize, Serialize};

use cbs_linalg::Complex64;

use crate::ops::LinearOperator;

/// A sparse vector: sorted indices with matching values.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SparseVec {
    indices: Vec<usize>,
    values: Vec<Complex64>,
}

impl SparseVec {
    /// Build from parallel index/value lists (indices need not be sorted;
    /// duplicates are summed).
    pub fn new(mut entries: Vec<(usize, Complex64)>) -> Self {
        entries.sort_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(entries.len());
        let mut values: Vec<Complex64> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            if v == Complex64::ZERO {
                continue;
            }
            if indices.last() == Some(&i) {
                *values.last_mut().expect("values parallel to indices") += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        Self { indices, values }
    }

    /// Empty sparse vector.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterate over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Complex64)> + '_ {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// Conjugated dot product with a dense slice: `Σ conj(v_k) x[i_k]`.
    #[inline]
    pub fn dotc_dense(&self, x: &[Complex64]) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for (i, v) in self.iter() {
            acc += v.conj() * x[i];
        }
        acc
    }

    /// Scatter-add `alpha * self` into a dense slice.
    #[inline]
    pub fn axpy_into_dense(&self, alpha: Complex64, y: &mut [Complex64]) {
        for (i, v) in self.iter() {
            y[i] += alpha * v;
        }
    }

    /// Squared 2-norm.
    pub fn norm_sqr(&self) -> f64 {
        self.values.iter().map(|v| v.norm_sqr()).sum()
    }

    /// Memory footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.indices.len() * std::mem::size_of::<usize>()
            + self.values.len() * std::mem::size_of::<Complex64>()
    }
}

/// One rank-one term `c |u⟩⟨v|`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RankOneTerm {
    /// The output-side factor `u`.
    pub ket: SparseVec,
    /// The input-side factor `v` (applied conjugated).
    pub bra: SparseVec,
    /// The coupling coefficient `c`.
    pub coeff: Complex64,
}

/// A sum of rank-one terms acting between `C^ncols` and `C^nrows`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LowRankOp {
    nrows: usize,
    ncols: usize,
    terms: Vec<RankOneTerm>,
}

impl LowRankOp {
    /// Empty operator of the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, terms: Vec::new() }
    }

    /// Add a term `coeff * |ket⟩⟨bra|`.
    pub fn push(&mut self, ket: SparseVec, bra: SparseVec, coeff: Complex64) {
        debug_assert!(ket.indices.iter().all(|&i| i < self.nrows), "ket index out of range");
        debug_assert!(bra.indices.iter().all(|&i| i < self.ncols), "bra index out of range");
        if ket.is_empty() || bra.is_empty() || coeff == Complex64::ZERO {
            return;
        }
        self.terms.push(RankOneTerm { ket, bra, coeff });
    }

    /// Number of rank-one terms.
    pub fn rank(&self) -> usize {
        self.terms.len()
    }

    /// Iterate over the stored terms.
    pub fn terms(&self) -> &[RankOneTerm] {
        &self.terms
    }

    /// The adjoint operator in factored form: `(Σ c |u⟩⟨v|)† =
    /// Σ conj(c) |v⟩⟨u|`.  Rank and factor sparsity are preserved, so the
    /// adjoint applies at the same O(rank · nnz) cost — this is what lets
    /// the dual-system projector stay factored instead of being expanded
    /// into a dense-ish CSR block.
    pub fn adjoint(&self) -> Self {
        Self {
            nrows: self.ncols,
            ncols: self.nrows,
            terms: self
                .terms
                .iter()
                .map(|t| RankOneTerm {
                    ket: t.bra.clone(),
                    bra: t.ket.clone(),
                    coeff: t.coeff.conj(),
                })
                .collect(),
        }
    }

    /// Accumulate `y_c += alpha · (A x_c)` for each of the `nvecs` columns
    /// without zeroing `y` — the kernel the factored projector uses to add
    /// the low-rank part of `P(z)` on top of the assembled CSR part.
    /// Column accumulation order matches [`apply_block`](LinearOperator::apply_block)
    /// (terms outer, columns inner, slot-stable scatter).
    pub fn apply_block_accumulate(
        &self,
        alpha: Complex64,
        x: &[Complex64],
        y: &mut [Complex64],
        nvecs: usize,
    ) {
        assert_eq!(x.len(), self.ncols * nvecs, "lowrank accumulate: x slab length mismatch");
        assert_eq!(y.len(), self.nrows * nvecs, "lowrank accumulate: y slab length mismatch");
        if alpha == Complex64::ZERO {
            return;
        }
        crate::timers::time_kernel(|| {
            for t in &self.terms {
                let scaled = alpha * t.coeff;
                for j in 0..nvecs {
                    let amp = scaled * t.bra.dotc_dense(&x[j * self.ncols..(j + 1) * self.ncols]);
                    if amp != Complex64::ZERO {
                        t.ket.axpy_into_dense(amp, &mut y[j * self.nrows..(j + 1) * self.nrows]);
                    }
                }
            }
        });
    }

    /// Accumulate `y_c += alpha · (A† x_c)` per column without zeroing `y`
    /// (the dual-system twin of [`apply_block_accumulate`](Self::apply_block_accumulate)).
    pub fn apply_adjoint_block_accumulate(
        &self,
        alpha: Complex64,
        x: &[Complex64],
        y: &mut [Complex64],
        nvecs: usize,
    ) {
        assert_eq!(x.len(), self.nrows * nvecs, "lowrank adj accumulate: x slab length mismatch");
        assert_eq!(y.len(), self.ncols * nvecs, "lowrank adj accumulate: y slab length mismatch");
        if alpha == Complex64::ZERO {
            return;
        }
        crate::timers::time_kernel(|| {
            for t in &self.terms {
                let scaled = alpha * t.coeff.conj();
                for j in 0..nvecs {
                    let amp = scaled * t.ket.dotc_dense(&x[j * self.nrows..(j + 1) * self.nrows]);
                    if amp != Complex64::ZERO {
                        t.bra.axpy_into_dense(amp, &mut y[j * self.ncols..(j + 1) * self.ncols]);
                    }
                }
            }
        });
    }

    /// Convert to an explicit CSR matrix (used by the OBM baseline and the
    /// dense cross-checks in tests).
    pub fn to_csr(&self) -> crate::csr::CsrMatrix {
        let mut b = crate::csr::CooBuilder::new(self.nrows, self.ncols);
        for t in &self.terms {
            for (i, u) in t.ket.iter() {
                for (j, v) in t.bra.iter() {
                    b.push(i, j, t.coeff * u * v.conj());
                }
            }
        }
        b.build()
    }

    /// Total storage of all factors in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.terms
            .iter()
            .map(|t| {
                t.ket.storage_bytes() + t.bra.storage_bytes() + std::mem::size_of::<Complex64>()
            })
            .sum()
    }
}

impl LinearOperator for LowRankOp {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        crate::timers::time_kernel(|| {
            for v in y.iter_mut() {
                *v = Complex64::ZERO;
            }
            for t in &self.terms {
                let amp = t.coeff * t.bra.dotc_dense(x);
                if amp != Complex64::ZERO {
                    t.ket.axpy_into_dense(amp, y);
                }
            }
        });
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        // (c |u⟩⟨v|)† = conj(c) |v⟩⟨u|
        assert_eq!(x.len(), self.nrows);
        assert_eq!(y.len(), self.ncols);
        crate::timers::time_kernel(|| {
            for v in y.iter_mut() {
                *v = Complex64::ZERO;
            }
            for t in &self.terms {
                let amp = t.coeff.conj() * t.ket.dotc_dense(x);
                if amp != Complex64::ZERO {
                    t.bra.axpy_into_dense(amp, y);
                }
            }
        });
    }
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        assert_eq!(x.len(), self.ncols * nvecs);
        assert_eq!(y.len(), self.nrows * nvecs);
        crate::timers::time_kernel(|| {
            for v in y.iter_mut() {
                *v = Complex64::ZERO;
            }
            // Fused over columns: each term's factors are walked once per
            // term while the projector inner products `⟨bra|x_c⟩` run over
            // all columns — a (1 × nnz)·(nnz × nvecs) mini-GEMM kept as
            // explicit loops so each column accumulates in exactly the
            // order of the single-vector kernel (bit-identical results).
            for t in &self.terms {
                for j in 0..nvecs {
                    let amp = t.coeff * t.bra.dotc_dense(&x[j * self.ncols..(j + 1) * self.ncols]);
                    if amp != Complex64::ZERO {
                        t.ket.axpy_into_dense(amp, &mut y[j * self.nrows..(j + 1) * self.nrows]);
                    }
                }
            }
        });
    }
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        assert_eq!(x.len(), self.nrows * nvecs);
        assert_eq!(y.len(), self.ncols * nvecs);
        crate::timers::time_kernel(|| {
            for v in y.iter_mut() {
                *v = Complex64::ZERO;
            }
            for t in &self.terms {
                for j in 0..nvecs {
                    let amp =
                        t.coeff.conj() * t.ket.dotc_dense(&x[j * self.nrows..(j + 1) * self.nrows]);
                    if amp != Complex64::ZERO {
                        t.bra.axpy_into_dense(amp, &mut y[j * self.ncols..(j + 1) * self.ncols]);
                    }
                }
            }
        });
    }
    fn memory_bytes(&self) -> usize {
        self.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::adjoint_defect;
    use cbs_linalg::{c64, CVector};
    use rand::SeedableRng;

    fn sv(entries: &[(usize, Complex64)]) -> SparseVec {
        SparseVec::new(entries.to_vec())
    }

    #[test]
    fn sparse_vec_dedup_and_dot() {
        let v = sv(&[(3, c64(1.0, 0.0)), (1, c64(0.0, 2.0)), (3, c64(1.0, 1.0))]);
        assert_eq!(v.nnz(), 2);
        let x = vec![Complex64::ZERO, c64(1.0, 0.0), Complex64::ZERO, c64(0.0, 1.0)];
        // conj((2,1)) * x[3] + conj((0,2)) * x[1] = (2-1i)(i) + (-2i)(1) = (1+2i) - 2i = 1
        assert!((v.dotc_dense(&x) - c64(1.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn apply_matches_csr_expansion() {
        let mut op = LowRankOp::new(6, 6);
        op.push(
            sv(&[(0, c64(1.0, 0.0)), (2, c64(0.5, -0.5))]),
            sv(&[(1, c64(0.0, 1.0)), (3, c64(2.0, 0.0))]),
            c64(1.5, 0.25),
        );
        op.push(
            sv(&[(4, c64(-1.0, 0.0))]),
            sv(&[(4, c64(1.0, 1.0)), (5, c64(0.0, -1.0))]),
            c64(0.0, 2.0),
        );
        let csr = op.to_csr();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(91);
        let x = CVector::random(6, &mut rng);
        let y_lr = op.apply_vec(&x);
        let y_csr = csr.matvec(&x);
        assert!((&y_lr - &y_csr).norm() < 1e-13);
        let z = CVector::random(6, &mut rng);
        let a_lr = op.apply_adjoint_vec(&z);
        let a_csr = csr.matvec_adjoint(&z);
        assert!((&a_lr - &a_csr).norm() < 1e-13);
    }

    #[test]
    fn adjoint_identity_holds() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(92);
        let mut op = LowRankOp::new(12, 10);
        for _ in 0..5 {
            let ket = sv(&[
                (
                    rand::Rng::gen_range(&mut rng, 0..12),
                    c64(rand::Rng::gen_range(&mut rng, -1.0..1.0), 0.3),
                ),
                (
                    rand::Rng::gen_range(&mut rng, 0..12),
                    c64(0.2, rand::Rng::gen_range(&mut rng, -1.0..1.0)),
                ),
            ]);
            let bra = sv(&[(
                rand::Rng::gen_range(&mut rng, 0..10),
                c64(rand::Rng::gen_range(&mut rng, -1.0..1.0), -0.1),
            )]);
            op.push(ket, bra, c64(rand::Rng::gen_range(&mut rng, -1.0..1.0), 0.5));
        }
        assert!(adjoint_defect(&op, 8, &mut rng) < 1e-13);
    }

    #[test]
    fn block_apply_is_bitwise_column_equivalent() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(93);
        let mut op = LowRankOp::new(9, 7);
        for _ in 0..4 {
            let ket = sv(&[
                (rand::Rng::gen_range(&mut rng, 0..9), c64(0.4, -0.2)),
                (rand::Rng::gen_range(&mut rng, 0..9), c64(-0.1, 0.9)),
            ]);
            let bra = sv(&[(rand::Rng::gen_range(&mut rng, 0..7), c64(0.8, 0.3))]);
            op.push(ket, bra, c64(rand::Rng::gen_range(&mut rng, -1.0..1.0), 0.2));
        }
        let nvecs = 3;
        let x: Vec<Complex64> = CVector::random(7 * nvecs, &mut rng).into_vec();
        let mut y = vec![Complex64::ZERO; 9 * nvecs];
        op.apply_block(&x, &mut y, nvecs);
        for c in 0..nvecs {
            let mut col = vec![Complex64::ZERO; 9];
            op.apply(&x[c * 7..(c + 1) * 7], &mut col);
            assert_eq!(&y[c * 9..(c + 1) * 9], &col[..]);
        }
        let xa: Vec<Complex64> = CVector::random(9 * nvecs, &mut rng).into_vec();
        let mut ya = vec![Complex64::ZERO; 7 * nvecs];
        op.apply_adjoint_block(&xa, &mut ya, nvecs);
        for c in 0..nvecs {
            let mut col = vec![Complex64::ZERO; 7];
            op.apply_adjoint(&xa[c * 9..(c + 1) * 9], &mut col);
            assert_eq!(&ya[c * 7..(c + 1) * 7], &col[..]);
        }
    }

    #[test]
    fn empty_terms_are_skipped() {
        let mut op = LowRankOp::new(4, 4);
        op.push(SparseVec::empty(), sv(&[(0, Complex64::ONE)]), Complex64::ONE);
        op.push(sv(&[(0, Complex64::ONE)]), sv(&[(1, Complex64::ONE)]), Complex64::ZERO);
        assert_eq!(op.rank(), 0);
    }

    #[test]
    fn hermitian_when_bra_equals_ket_and_coeff_real() {
        // V = Σ c_i |p_i⟩⟨p_i| with real c_i is Hermitian.
        let mut op = LowRankOp::new(8, 8);
        let p = sv(&[(1, c64(0.3, 0.1)), (5, c64(-0.2, 0.7)), (6, c64(1.0, 0.0))]);
        op.push(p.clone(), p, c64(2.5, 0.0));
        let d = op.to_csr().to_dense();
        assert!(d.hermiticity_defect() < 1e-14);
    }
}
