//! Compressed sparse row (CSR) storage for complex matrices.
//!
//! The real-space Kohn-Sham blocks `H₀₀` and `H₀₁` are assembled once into
//! CSR and then only ever applied to vectors, which is the O(N) memory /
//! O(nnz) time behaviour the paper's method relies on.

use serde::{Deserialize, Serialize};

use cbs_linalg::{CMatrix, CVector, Complex64};

use crate::ops::LinearOperator;

/// Triplet (COO) accumulator used while assembling a sparse matrix.
///
/// Duplicate entries are summed when converting to CSR, which makes stencil
/// and projector assembly straightforward.
#[derive(Clone, Debug, Default)]
pub struct CooBuilder {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<Complex64>,
}

impl CooBuilder {
    /// New empty builder for an `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Reserve space for `n` additional entries.
    pub fn reserve(&mut self, n: usize) {
        self.rows.reserve(n);
        self.cols.reserve(n);
        self.vals.reserve(n);
    }

    /// Add `value` at `(row, col)` (accumulated with any existing entry).
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: Complex64) {
        debug_assert!(row < self.nrows && col < self.ncols, "COO entry out of bounds");
        if value == Complex64::ZERO {
            return;
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(value);
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// `true` when no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// Finalize into CSR, summing duplicates and dropping exact zeros.
    pub fn build(self) -> CsrMatrix {
        let nrows = self.nrows;
        let ncols = self.ncols;
        // Count entries per row.
        let mut counts = vec![0usize; nrows];
        for &r in &self.rows {
            counts[r] += 1;
        }
        let mut row_ptr = vec![0usize; nrows + 1];
        for i in 0..nrows {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        // Scatter into per-row buckets.
        let mut col_idx = vec![0usize; self.vals.len()];
        let mut values = vec![Complex64::ZERO; self.vals.len()];
        let mut next = row_ptr.clone();
        for ((&r, &c), &v) in self.rows.iter().zip(&self.cols).zip(&self.vals) {
            let dst = next[r];
            col_idx[dst] = c;
            values[dst] = v;
            next[r] += 1;
        }
        // Sort each row by column and merge duplicates in place.
        let mut out_ptr = vec![0usize; nrows + 1];
        let mut out_cols = Vec::with_capacity(col_idx.len());
        let mut out_vals = Vec::with_capacity(values.len());
        for r in 0..nrows {
            let lo = row_ptr[r];
            let hi = row_ptr[r + 1];
            let mut entries: Vec<(usize, Complex64)> =
                col_idx[lo..hi].iter().copied().zip(values[lo..hi].iter().copied()).collect();
            entries.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < entries.len() {
                let c = entries[i].0;
                let mut acc = entries[i].1;
                let mut j = i + 1;
                while j < entries.len() && entries[j].0 == c {
                    acc += entries[j].1;
                    j += 1;
                }
                if acc != Complex64::ZERO {
                    out_cols.push(c);
                    out_vals.push(acc);
                }
                i = j;
            }
            out_ptr[r + 1] = out_cols.len();
        }
        CsrMatrix { nrows, ncols, row_ptr: out_ptr, col_idx: out_cols, values: out_vals }
    }
}

/// A complex sparse matrix in compressed-sparse-row format.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<Complex64>,
}

impl CsrMatrix {
    /// An all-zero sparse matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self { nrows, ncols, row_ptr: vec![0; nrows + 1], col_idx: vec![], values: vec![] }
    }

    /// Sparse identity.
    pub fn identity(n: usize) -> Self {
        Self {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![Complex64::ONE; n],
        }
    }

    /// Convert a dense matrix, dropping entries with modulus below `tol`.
    pub fn from_dense(m: &CMatrix, tol: f64) -> Self {
        let mut b = CooBuilder::new(m.nrows(), m.ncols());
        for i in 0..m.nrows() {
            for j in 0..m.ncols() {
                let v = m[(i, j)];
                if v.abs() > tol {
                    b.push(i, j, v);
                }
            }
        }
        b.build()
    }

    /// Densify (tests / small blocks only).
    pub fn to_dense(&self) -> CMatrix {
        let mut m = CMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                m[(i, self.col_idx[k])] = self.values[k];
            }
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Storage footprint in bytes (values + column indices + row pointers).
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Complex64>()
            + self.col_idx.len() * std::mem::size_of::<usize>()
            + self.row_ptr.len() * std::mem::size_of::<usize>()
    }

    /// Iterate over the stored entries of one row as `(col, value)` pairs.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, Complex64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Look up a single entry (O(row nnz)).
    pub fn get(&self, i: usize, j: usize) -> Complex64 {
        self.row_entries(i).find(|&(c, _)| c == j).map_or(Complex64::ZERO, |(_, v)| v)
    }

    /// Row pointers (length `nrows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices of the stored entries (sorted within each row).
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// The stored entry values, parallel to [`col_idx`](Self::col_idx).
    pub fn values(&self) -> &[Complex64] {
        &self.values
    }

    /// `y = A x` (serial kernel).
    pub fn matvec_into(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "matvec: y length mismatch");
        crate::timers::time_kernel(|| spmv_into(&self.row_ptr, &self.col_idx, &self.values, x, y));
    }

    /// `y = A† x` (serial kernel).
    pub fn matvec_adjoint_into(&self, x: &[Complex64], y: &mut [Complex64]) {
        assert_eq!(x.len(), self.nrows, "adjoint matvec: x length mismatch");
        assert_eq!(y.len(), self.ncols, "adjoint matvec: y length mismatch");
        crate::timers::time_kernel(|| {
            spmv_adjoint_into(&self.row_ptr, &self.col_idx, &self.values, x, y);
        });
    }

    /// The value array split into planar `re[]` / `im[]` form, for the
    /// [`KernelLayout::Split`](crate::KernelLayout::Split) kernels (tests
    /// and benches; the assembled operator refills its planes per node).
    pub fn split_values(&self) -> crate::SplitValues {
        crate::SplitValues::from_values(&self.values)
    }

    /// Fused block kernel `Y = A X` over column-major slabs (column `c` of
    /// `X` is `x[c * ncols .. (c+1) * ncols]`): the CSR values and indices
    /// are streamed once per group of up to four columns instead of once
    /// per column, with the per-column accumulators held in registers.  Per
    /// column the accumulation order equals
    /// [`matvec_into`](Self::matvec_into), making the result bit-identical
    /// to the column-by-column loop.
    pub fn matvec_block_into(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        assert_eq!(x.len(), self.ncols * nvecs, "block matvec: x slab length mismatch");
        assert_eq!(y.len(), self.nrows * nvecs, "block matvec: y slab length mismatch");
        crate::timers::time_kernel(|| {
            spmv_block_into(
                &self.row_ptr,
                &self.col_idx,
                &self.values,
                self.ncols,
                self.nrows,
                x,
                y,
                nvecs,
            );
        });
    }

    /// Fused block kernel `Y = A† X`; the adjoint twin of
    /// [`matvec_block_into`](Self::matvec_block_into), bit-identical to
    /// column-by-column [`matvec_adjoint_into`](Self::matvec_adjoint_into)
    /// (the zero-skip guard is applied per column, so signed zeros
    /// propagate identically).
    pub fn matvec_adjoint_block_into(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        assert_eq!(x.len(), self.nrows * nvecs, "block adjoint matvec: x slab length mismatch");
        assert_eq!(y.len(), self.ncols * nvecs, "block adjoint matvec: y slab length mismatch");
        crate::timers::time_kernel(|| {
            spmv_adjoint_block_into(
                &self.row_ptr,
                &self.col_idx,
                &self.values,
                self.ncols,
                self.nrows,
                x,
                y,
                nvecs,
            );
        });
    }

    /// Allocating `A x`.
    pub fn matvec(&self, x: &CVector) -> CVector {
        let mut y = CVector::zeros(self.nrows);
        self.matvec_into(x.as_slice(), y.as_mut_slice());
        y
    }

    /// Allocating `A† x`.
    pub fn matvec_adjoint(&self, x: &CVector) -> CVector {
        let mut y = CVector::zeros(self.ncols);
        self.matvec_adjoint_into(x.as_slice(), y.as_mut_slice());
        y
    }

    /// Row-parallel `y = A x` using rayon (bottom-layer threading inside one
    /// domain).  Falls back to the serial kernel for small matrices where the
    /// fork-join overhead dominates.
    pub fn matvec_par_into(&self, x: &[Complex64], y: &mut [Complex64]) {
        use rayon::prelude::*;
        if self.nrows < 4096 {
            self.matvec_into(x, y);
            return;
        }
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        crate::timers::time_kernel(|| {
            y.par_iter_mut().enumerate().for_each(|(i, yi)| {
                let lo = self.row_ptr[i];
                let hi = self.row_ptr[i + 1];
                let mut acc = Complex64::ZERO;
                for k in lo..hi {
                    acc += self.values[k] * x[self.col_idx[k]];
                }
                *yi = acc;
            });
        });
    }

    /// Explicit Hermitian adjoint as a new CSR matrix.
    pub fn adjoint(&self) -> CsrMatrix {
        let mut b = CooBuilder::new(self.ncols, self.nrows);
        b.reserve(self.nnz());
        for i in 0..self.nrows {
            for (j, v) in self.row_entries(i) {
                b.push(j, i, v.conj());
            }
        }
        b.build()
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&self, alpha: Complex64) -> CsrMatrix {
        let mut out = self.clone();
        for v in out.values.iter_mut() {
            *v *= alpha;
        }
        out
    }

    /// Sparse sum `self + alpha * other` (shapes must match).
    pub fn add_scaled(&self, alpha: Complex64, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.nrows, other.nrows);
        assert_eq!(self.ncols, other.ncols);
        let mut b = CooBuilder::new(self.nrows, self.ncols);
        b.reserve(self.nnz() + other.nnz());
        for i in 0..self.nrows {
            for (j, v) in self.row_entries(i) {
                b.push(i, j, v);
            }
            for (j, v) in other.row_entries(i) {
                b.push(i, j, alpha * v);
            }
        }
        b.build()
    }

    /// `||A - A†||_F / ||A||_F`; zero for Hermitian matrices.
    pub fn hermiticity_defect(&self) -> f64 {
        assert_eq!(self.nrows, self.ncols);
        let diff = self.add_scaled(-Complex64::ONE, &self.adjoint());
        let num: f64 = diff.values.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        let den: f64 = self.values.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.values.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// The diagonal entries (length `min(nrows, ncols)`).
    pub fn diagonal(&self) -> Vec<Complex64> {
        (0..self.nrows.min(self.ncols)).map(|i| self.get(i, i)).collect()
    }
}

impl LinearOperator for CsrMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }
    fn ncols(&self) -> usize {
        self.ncols
    }
    fn apply(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.matvec_into(x, y);
    }
    fn apply_adjoint(&self, x: &[Complex64], y: &mut [Complex64]) {
        self.matvec_adjoint_into(x, y);
    }
    fn apply_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        self.matvec_block_into(x, y, nvecs);
    }
    fn apply_adjoint_block(&self, x: &[Complex64], y: &mut [Complex64], nvecs: usize) {
        self.matvec_adjoint_block_into(x, y, nvecs);
    }
    fn memory_bytes(&self) -> usize {
        self.storage_bytes()
    }
}

// --- Shared CSR kernels on raw (row_ptr, col_idx, values) triples. ---------
//
// `CsrMatrix` delegates here, and so does the assembled shifted operator
// (`crate::assembled`), whose many per-node value arrays share one symbolic
// pattern: both storage layouts run the exact same loops, so the bitwise
// column-equivalence guarantees of the block kernels hold for either.
//
// Layout / bitwise contract: these are the **interleaved**
// (`KernelLayout::Interleaved`) kernels — the values array is one
// `&[Complex64]`.  Every kernel here reproduces, per output element, the
// exact accumulation order of the original scalar loops (`spmv_into` /
// `spmv_adjoint_into`), so results are bit-identical to the column-by-column
// reference regardless of row blocking or column-group width:
//
// * gather kernels accumulate each row's entries in ascending `k`, so
//   blocking the row loop (`kernels::ROW_BLOCK`) only reorders *between*
//   independent output elements;
// * scatter (adjoint) kernels zero the whole output slab once up front and
//   then visit rows in ascending order within and across row blocks, so
//   every `y[c]` receives its updates in the same ascending-row order as
//   the unblocked loop, with the same per-column zero-skip guards.
//
// The planar-value (`KernelLayout::Split`) twins live in `crate::kernels`;
// those trade the bitwise guarantee for FMA chains (≤ 1e-14 columnwise).

/// `y = A x` over a raw CSR triple (serial kernel).
pub(crate) fn spmv_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[Complex64],
    x: &[Complex64],
    y: &mut [Complex64],
) {
    for (i, yi) in y.iter_mut().enumerate() {
        let lo = row_ptr[i];
        let hi = row_ptr[i + 1];
        let mut acc = Complex64::ZERO;
        for k in lo..hi {
            acc += values[k] * x[col_idx[k]];
        }
        *yi = acc;
    }
}

/// `y = A† x` over a raw CSR triple (serial scatter kernel).
pub(crate) fn spmv_adjoint_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[Complex64],
    x: &[Complex64],
    y: &mut [Complex64],
) {
    for v in y.iter_mut() {
        *v = Complex64::ZERO;
    }
    for (i, &xi) in x.iter().enumerate() {
        if xi == Complex64::ZERO {
            continue;
        }
        for k in row_ptr[i]..row_ptr[i + 1] {
            y[col_idx[k]] += values[k].conj() * xi;
        }
    }
}

/// Fused block kernel `Y = A X` over a raw CSR triple; see
/// [`CsrMatrix::matvec_block_into`] for the layout and bitwise contract.
///
/// Row-blocked traversal: the outer loop walks [`crate::kernels::ROW_BLOCK`]
/// rows at a time and re-streams that block's index/value stream across all
/// 4/2/1-wide column groups while it is cache-hot.  Per (row, column) the
/// accumulation order is unchanged, so the blocking is bitwise-invisible.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmv_block_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[Complex64],
    nc: usize,
    nr: usize,
    x: &[Complex64],
    y: &mut [Complex64],
    nvecs: usize,
) {
    let mut r0 = 0;
    while r0 < nr {
        let r1 = (r0 + crate::kernels::ROW_BLOCK).min(nr);
        let mut j = 0;
        while j + 4 <= nvecs {
            let (x0, rest) = x[j * nc..].split_at(nc);
            let (x1, rest) = rest.split_at(nc);
            let (x2, rest) = rest.split_at(nc);
            let x3 = &rest[..nc];
            let (y0, rest) = y[j * nr..].split_at_mut(nr);
            let (y1, rest) = rest.split_at_mut(nr);
            let (y2, rest) = rest.split_at_mut(nr);
            let y3 = &mut rest[..nr];
            for i in r0..r1 {
                let (mut a0, mut a1, mut a2, mut a3) =
                    (Complex64::ZERO, Complex64::ZERO, Complex64::ZERO, Complex64::ZERO);
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let v = values[k];
                    let c = col_idx[k];
                    a0 += v * x0[c];
                    a1 += v * x1[c];
                    a2 += v * x2[c];
                    a3 += v * x3[c];
                }
                y0[i] = a0;
                y1[i] = a1;
                y2[i] = a2;
                y3[i] = a3;
            }
            j += 4;
        }
        if j + 2 <= nvecs {
            let (x0, rest) = x[j * nc..].split_at(nc);
            let x1 = &rest[..nc];
            let (y0, rest) = y[j * nr..].split_at_mut(nr);
            let y1 = &mut rest[..nr];
            for i in r0..r1 {
                let (mut a0, mut a1) = (Complex64::ZERO, Complex64::ZERO);
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let v = values[k];
                    let c = col_idx[k];
                    a0 += v * x0[c];
                    a1 += v * x1[c];
                }
                y0[i] = a0;
                y1[i] = a1;
            }
            j += 2;
        }
        if j < nvecs {
            // 1-wide tail over this row block — the `spmv_into` body.
            let xj = &x[j * nc..(j + 1) * nc];
            let yj = &mut y[j * nr..(j + 1) * nr];
            for i in r0..r1 {
                let mut acc = Complex64::ZERO;
                for k in row_ptr[i]..row_ptr[i + 1] {
                    acc += values[k] * xj[col_idx[k]];
                }
                yj[i] = acc;
            }
        }
        r0 = r1;
    }
}

/// Fused block kernel `Y = A† X` over a raw CSR triple; the adjoint twin of
/// [`spmv_block_into`], bit-identical to column-by-column
/// [`spmv_adjoint_into`].
///
/// Row blocking is bitwise-invisible here too: the output slab is zeroed
/// once up front (same initial state as the per-column zero fill), and each
/// `y[c]` then receives its scatter updates in ascending-row order within
/// and across row blocks — exactly the order of the unblocked loop — with
/// the per-column zero-skip guards applied identically.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmv_adjoint_block_into(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[Complex64],
    nc: usize,
    nr: usize,
    x: &[Complex64],
    y: &mut [Complex64],
    nvecs: usize,
) {
    for v in y.iter_mut() {
        *v = Complex64::ZERO;
    }
    let mut r0 = 0;
    while r0 < nr {
        let r1 = (r0 + crate::kernels::ROW_BLOCK).min(nr);
        let mut j = 0;
        while j + 4 <= nvecs {
            let (x0, rest) = x[j * nr..].split_at(nr);
            let (x1, rest) = rest.split_at(nr);
            let (x2, rest) = rest.split_at(nr);
            let x3 = &rest[..nr];
            let (y0, rest) = y[j * nc..].split_at_mut(nc);
            let (y1, rest) = rest.split_at_mut(nc);
            let (y2, rest) = rest.split_at_mut(nc);
            let y3 = &mut rest[..nc];
            for i in r0..r1 {
                let (x0i, x1i, x2i, x3i) = (x0[i], x1[i], x2[i], x3[i]);
                let any = x0i != Complex64::ZERO
                    || x1i != Complex64::ZERO
                    || x2i != Complex64::ZERO
                    || x3i != Complex64::ZERO;
                if !any {
                    continue;
                }
                for k in row_ptr[i]..row_ptr[i + 1] {
                    let vc = values[k].conj();
                    let c = col_idx[k];
                    if x0i != Complex64::ZERO {
                        y0[c] += vc * x0i;
                    }
                    if x1i != Complex64::ZERO {
                        y1[c] += vc * x1i;
                    }
                    if x2i != Complex64::ZERO {
                        y2[c] += vc * x2i;
                    }
                    if x3i != Complex64::ZERO {
                        y3[c] += vc * x3i;
                    }
                }
            }
            j += 4;
        }
        while j < nvecs {
            // 1-wide tail over this row block — the `spmv_adjoint_into`
            // scatter body without the zero fill (done once above).
            let xj = &x[j * nr..(j + 1) * nr];
            let yj = &mut y[j * nc..(j + 1) * nc];
            for i in r0..r1 {
                let xi = xj[i];
                if xi == Complex64::ZERO {
                    continue;
                }
                for k in row_ptr[i]..row_ptr[i + 1] {
                    yj[col_idx[k]] += values[k].conj() * xi;
                }
            }
            j += 1;
        }
        r0 = r1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbs_linalg::c64;
    use rand::SeedableRng;

    fn random_sparse(nrows: usize, ncols: usize, density: f64, seed: u64) -> (CsrMatrix, CMatrix) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut dense = CMatrix::zeros(nrows, ncols);
        let mut b = CooBuilder::new(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                if rand::Rng::gen_bool(&mut rng, density) {
                    let v = c64(
                        rand::Rng::gen_range(&mut rng, -1.0..1.0),
                        rand::Rng::gen_range(&mut rng, -1.0..1.0),
                    );
                    dense[(i, j)] += v;
                    b.push(i, j, v);
                }
            }
        }
        (b.build(), dense)
    }

    #[test]
    fn coo_duplicates_are_summed() {
        let mut b = CooBuilder::new(2, 2);
        b.push(0, 0, c64(1.0, 0.0));
        b.push(0, 0, c64(2.0, 1.0));
        b.push(1, 1, c64(-1.0, 0.0));
        b.push(1, 1, c64(1.0, 0.0)); // cancels to zero and is dropped
        let m = b.build();
        assert_eq!(m.get(0, 0), c64(3.0, 1.0));
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn matvec_matches_dense() {
        let (s, d) = random_sparse(30, 20, 0.15, 71);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(72);
        let x = CVector::random(20, &mut rng);
        assert!((&s.matvec(&x) - &d.matvec(&x)).norm() < 1e-12);
        let y = CVector::random(30, &mut rng);
        assert!((&s.matvec_adjoint(&y) - &d.adjoint().matvec(&y)).norm() < 1e-12);
    }

    #[test]
    fn dense_roundtrip() {
        let (s, d) = random_sparse(12, 12, 0.3, 73);
        assert!((&s.to_dense() - &d).fro_norm() < 1e-14);
        let s2 = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(s2.nnz(), s.nnz());
    }

    #[test]
    fn adjoint_and_add_scaled() {
        let (s, d) = random_sparse(10, 14, 0.2, 74);
        assert!((&s.adjoint().to_dense() - &d.adjoint()).fro_norm() < 1e-13);
        let (s2, d2) = random_sparse(10, 14, 0.2, 75);
        let sum = s.add_scaled(c64(0.0, 2.0), &s2);
        let dsum = &d + &d2.scale(c64(0.0, 2.0));
        assert!((&sum.to_dense() - &dsum).fro_norm() < 1e-13);
    }

    #[test]
    fn hermiticity_defect_zero_for_hermitian() {
        let (s, _) = random_sparse(16, 16, 0.2, 76);
        let h = s.add_scaled(Complex64::ONE, &s.adjoint());
        assert!(h.hermiticity_defect() < 1e-14);
        assert!(s.hermiticity_defect() > 1e-2);
    }

    #[test]
    fn identity_matvec() {
        let i = CsrMatrix::identity(5);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let x = CVector::random(5, &mut rng);
        assert_eq!(i.matvec(&x), x);
        assert_eq!(i.nnz(), 5);
    }

    #[test]
    fn storage_accounting_scales_with_nnz() {
        let (s, _) = random_sparse(40, 40, 0.05, 78);
        let per_entry = std::mem::size_of::<Complex64>() + std::mem::size_of::<usize>();
        assert!(s.storage_bytes() >= s.nnz() * per_entry);
        assert!(
            s.storage_bytes()
                <= s.nnz() * per_entry + (s.nrows() + 1) * std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn parallel_matvec_matches_serial() {
        let (s, _) = random_sparse(50, 50, 0.1, 79);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(80);
        let x = CVector::random(50, &mut rng);
        let mut y1 = vec![Complex64::ZERO; 50];
        let mut y2 = vec![Complex64::ZERO; 50];
        s.matvec_into(x.as_slice(), &mut y1);
        s.matvec_par_into(x.as_slice(), &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((*a - *b).abs() < 1e-14);
        }
    }

    #[test]
    fn block_matvec_is_bitwise_column_equivalent() {
        let (s, _) = random_sparse(23, 17, 0.2, 83);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(84);
        let nvecs = 5;
        let x: Vec<Complex64> = CVector::random(17 * nvecs, &mut rng).into_vec();
        let mut y = vec![Complex64::ZERO; 23 * nvecs];
        s.matvec_block_into(&x, &mut y, nvecs);
        for c in 0..nvecs {
            let mut col = vec![Complex64::ZERO; 23];
            s.matvec_into(&x[c * 17..(c + 1) * 17], &mut col);
            assert_eq!(&y[c * 23..(c + 1) * 23], &col[..], "column {c} differs");
        }

        let mut xa: Vec<Complex64> = CVector::random(23 * nvecs, &mut rng).into_vec();
        xa[3] = Complex64::ZERO; // exercise the zero-skip guard
        let mut ya = vec![Complex64::ZERO; 17 * nvecs];
        s.matvec_adjoint_block_into(&xa, &mut ya, nvecs);
        for c in 0..nvecs {
            let mut col = vec![Complex64::ZERO; 17];
            s.matvec_adjoint_into(&xa[c * 23..(c + 1) * 23], &mut col);
            assert_eq!(&ya[c * 17..(c + 1) * 17], &col[..], "adjoint column {c} differs");
        }
    }

    #[test]
    fn linear_operator_impl() {
        let (s, d) = random_sparse(9, 9, 0.25, 81);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(82);
        let x = CVector::random(9, &mut rng);
        let y = LinearOperator::apply_vec(&s, &x);
        assert!((&y - &d.matvec(&x)).norm() < 1e-13);
        assert!(crate::ops::adjoint_defect(&s, 5, &mut rng) < 1e-13);
    }
}
